// Package sbitmap is a production-oriented Go implementation of the
// Self-Learning Bitmap (S-bitmap) of Chen, Cao, Shepp & Nguyen ("Distinct
// Counting with a Self-Learning Bitmap", ICDE 2009; arXiv:1107.1697),
// together with the classic distinct-counting sketches the paper compares
// against.
//
// # The problem
//
// Given a data stream with duplicates, estimate the number of DISTINCT
// items using a few kilobits of state and one hash per item. The S-bitmap's
// distinguishing property is scale-invariance: configured for a range
// [1, N] and a target relative root-mean-square error ε, its error is ε for
// EVERY cardinality in the range — not just asymptotically, and without the
// small-range/large-range mode switches of LogLog-family estimators.
//
// # Quick start
//
//	sk, err := sbitmap.New(1e6, 0.01) // count up to 1M distinct, ±1%
//	if err != nil { ... }
//	for _, item := range stream {
//		sk.Add(item)
//	}
//	fmt.Println(sk.Estimate())
//
// New(1e6, 0.01) allocates about 30 kilobits (3.7 KiB) of bitmap — less
// than HyperLogLog needs for the same guarantee at this scale (see Table 2
// of the paper, reproduced in this module's EXPERIMENTS.md).
//
// # How it works
//
// An S-bitmap is a plain bitmap of m bits, but a new item only sets a bit
// with probability p_{L+1}, where L is the number of bits already set, and
// the rates p_1 ≥ p_2 ≥ … are precomputed so that the relative error of
// the fill-time process is constant (the paper's Theorem 2):
//
//	p_k = m/(m+1−k) · (1+1/C) · r^k,    r = 1 − 2/(C+1).
//
// Because the rates are monotone non-increasing and the sampling decision
// is a deterministic function of the item's hash, a duplicate can never
// change the state: if an item was rejected at fill level L it is rejected
// at every later level too. The estimate is the expected number of
// distinct items needed to reach the observed fill, n̂ = t_B =
// C/2·(r^{−B}−1), which is unbiased with RRMSE (C−1)^{−1/2} (Theorem 3).
//
// # Package layout
//
// This root package is the public facade. The full implementations live in
// internal packages (internal/core for the S-bitmap, one package per
// baseline, and the simulation substrates used by the experiment harness);
// cmd/sbench regenerates every table and figure of the paper.
package sbitmap

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/uhash"
)

// Counter is the interface shared by every distinct-counting sketch in
// this module: offer items, read an estimate, account memory.
//
// The Add methods report whether the sketch's state changed. AddUint64 is
// always equivalent to Add of the item's 8-byte little-endian encoding,
// and AddString to Add of the string's bytes — both allocation-free.
// Implementations are not safe for concurrent use unless documented
// otherwise (Sharded is).
//
// Counters may additionally implement Mergeable (union aggregation),
// Saturable (operating-range overflow reporting), and
// encoding.BinaryMarshaler/BinaryUnmarshaler (snapshots via Marshal /
// Unmarshal); every counter constructed by this module's constructors or
// by Spec.New implements the marshaling interfaces.
type Counter interface {
	Add(item []byte) bool
	AddUint64(item uint64) bool
	AddString(item string) bool
	Estimate() float64
	// SizeBits is the summary-statistic memory in bits — the paper's
	// accounting (bitmap bits or registers; side state and object headers
	// excluded). Use it to reproduce the paper's comparisons.
	SizeBits() int
	// Footprint is the sketch's resident process memory in bytes —
	// everything the counter actually holds: structs, bitmap/register
	// storage at capacity, schedule state, and batch scratch. Use it for
	// Table 2-style comparisons that must reflect real deployments.
	Footprint() int
	Reset()
}

// SBitmap is the paper's sketch: a scale-invariant distinct counter for
// cardinalities in [1, N]. Create one with New, NewWithMemory, or
// Unmarshal. Not safe for concurrent use.
type SBitmap struct {
	sk *core.Sketch
}

var _ Counter = (*SBitmap)(nil)

// Option configures optional SBitmap behaviour.
type Option func(*options)

type options struct {
	seed     uint64
	mkHasher func(seed uint64) uhash.Hasher
	dBits    uint
}

// WithSeed selects the hash seed (default 1). Two sketches must share a
// seed (or a hasher) for their states to be comparable.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithCarterWegman selects the classic ((a·x+b) mod p) 2-universal hash
// family instead of the default mixing hash. Estimation quality is
// indistinguishable (see the ablation_hash experiment); this exists for
// studies of hash sensitivity.
func WithCarterWegman() Option {
	return func(o *options) {
		o.mkHasher = func(seed uint64) uhash.Hasher { return uhash.NewCarterWegman(seed) }
	}
}

// WithTabulation selects simple tabulation hashing (3-independent).
func WithTabulation() Option {
	return func(o *options) {
		o.mkHasher = func(seed uint64) uhash.Hasher { return uhash.NewTabulation(seed) }
	}
}

// WithSamplingResolution limits sampling decisions to d bits of hash,
// 1 ≤ d ≤ 64, as in the paper's Algorithm 2 (d = 30 there). The default 64
// is effectively continuous.
func WithSamplingResolution(d uint) Option { return func(o *options) { o.dBits = d } }

// New returns an S-bitmap that counts distinct items in [1, n] with
// theoretical RRMSE eps, using the smallest sufficient bitmap
// (Equation 7 of the paper).
func New(n float64, eps float64, opts ...Option) (*SBitmap, error) {
	cfg, err := core.NewConfigNE(n, eps)
	if err != nil {
		return nil, err
	}
	return fromConfig(cfg, opts...)
}

// NewWithMemory returns an S-bitmap that spends exactly mbits bits of
// bitmap to count distinct items in [1, n], achieving the best error the
// budget allows (the error is reported by Epsilon).
func NewWithMemory(mbits int, n float64, opts ...Option) (*SBitmap, error) {
	cfg, err := core.NewConfigMN(mbits, n)
	if err != nil {
		return nil, err
	}
	return fromConfig(cfg, opts...)
}

// Memory returns the bitmap size in bits that an S-bitmap needs for range
// [1, n] at RRMSE eps, without allocating one.
func Memory(n float64, eps float64) (int, error) { return core.MemoryForNE(n, eps) }

func buildOptions(opts []Option) options {
	o := options{seed: 1, dBits: 64}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// newHasher materializes the options' hash configuration: the selected
// family seeded with the selected seed, defaulting to the Mixer.
func (o options) newHasher() uhash.Hasher {
	if o.mkHasher != nil {
		return o.mkHasher(o.seed)
	}
	return uhash.NewMixer(o.seed)
}

func fromConfig(cfg *core.Config, opts ...Option) (*SBitmap, error) {
	o := buildOptions(opts)
	coreOpts := []core.Option{core.WithResolution(o.dBits)}
	if o.mkHasher != nil {
		coreOpts = append(coreOpts, core.WithHasher(o.mkHasher(o.seed)))
	}
	return &SBitmap{sk: core.NewSketch(cfg, o.seed, coreOpts...)}, nil
}

// Add offers an item; it reports whether the sketch state changed.
func (s *SBitmap) Add(item []byte) bool { return s.sk.Add(item) }

// AddString offers a string item.
func (s *SBitmap) AddString(item string) bool { return s.sk.AddString(item) }

// AddUint64 offers a 64-bit item.
func (s *SBitmap) AddUint64(item uint64) bool { return s.sk.AddUint64(item) }

// Estimate returns the current distinct-count estimate n̂ = t_B.
func (s *SBitmap) Estimate() float64 { return s.sk.Estimate() }

// Epsilon returns the configured theoretical RRMSE (C−1)^{−1/2}; the
// estimate's error has this magnitude for every cardinality in [1, N].
func (s *SBitmap) Epsilon() float64 { return s.sk.Config().Epsilon() }

// N returns the configured cardinality upper bound.
func (s *SBitmap) N() float64 { return s.sk.Config().N() }

// SizeBits returns the bitmap size in bits (the summary-statistic memory
// footprint; hash seeds excluded, as in the paper's accounting).
func (s *SBitmap) SizeBits() int { return s.sk.SizeBits() }

// Footprint returns the sketch's resident process memory in bytes. Because
// the sampling-rate schedule is evaluated in closed form, this is the
// bitmap (m/8 bytes) plus a small constant — the paper's "about 30
// kilobits" claim holds of the process, not just the bitmap.
func (s *SBitmap) Footprint() int { return s.sk.Footprint() }

// FillLevel returns L, the number of set bits.
func (s *SBitmap) FillLevel() int { return s.sk.L() }

// Saturated reports whether the sketch has reached the truncation point
// k* = m − C/2: the stream's cardinality is at or beyond N and Estimate is
// pinned near N.
func (s *SBitmap) Saturated() bool { return s.sk.Saturated() }

// Reset clears the sketch for reuse under the same configuration.
func (s *SBitmap) Reset() { s.sk.Reset() }

// MarshalBinary serializes the sketch (configuration + bitmap) into the
// module's tagged envelope. The hash seed is not serialized; a
// deserialized sketch can Estimate immediately but needs the original seed
// (via Unmarshal's options) to keep counting.
func (s *SBitmap) MarshalBinary() ([]byte, error) {
	return marshalEnvelope(KindSBitmap, s.sk)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler with the default
// hash configuration; use the package-level Unmarshal with options to
// restore under a custom seed or hash family.
func (s *SBitmap) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, KindSBitmap)
	if err != nil {
		return err
	}
	sk, err := core.UnmarshalSketch(payload, core.WithHasher(uhash.NewMixer(1)))
	if err != nil {
		return fmt.Errorf("sbitmap: %w", err)
	}
	s.sk = sk
	return nil
}
