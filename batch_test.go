package sbitmap

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

// batchSpecs dimensions one Spec per Kind for the equivalence tests
// (small enough to run fast, large enough that thousands of items change
// state).
func batchSpecs(t testing.TB) map[Kind]Spec {
	t.Helper()
	specs := make(map[Kind]Spec)
	for _, kind := range Kinds() {
		spec := Spec{Kind: kind, Seed: 7}
		switch kind {
		case KindSBitmap:
			spec.N, spec.Eps = 50_000, 0.03
		case KindExact:
			// no dimensioning
		default:
			spec.N, spec.MemoryBits = 50_000, 4096
		}
		specs[kind] = spec
	}
	return specs
}

// batchItems is a duplicate-heavy shuffled workload: first occurrences and
// duplicates interleave, so batch paths must reproduce order-dependent
// state transitions exactly.
func batchItems() []uint64 {
	var items []uint64
	stream.ForEach(stream.NewInterleaved(8_000, 20_000, stream.DupZipf, 11), func(x uint64) {
		items = append(items, x)
	})
	return items
}

// oddBatches splits items into deliberately ragged batch sizes (including
// size 1 and bigger-than-chunk sizes) to exercise chunk boundaries.
func oddBatches(items []uint64) [][]uint64 {
	sizes := []int{1, 3, 17, 255, 256, 257, 1000, 4096}
	var out [][]uint64
	for i, k := 0, 0; i < len(items); k++ {
		n := min(sizes[k%len(sizes)], len(items)-i)
		out = append(out, items[i:i+n])
		i += n
	}
	return out
}

// marshalState serializes a counter, failing the test on error.
func marshalState(t *testing.T, c Counter) []byte {
	t.Helper()
	blob, err := Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return blob
}

// TestAddBatch64EquivalenceAllKinds: for every Kind, the native batch path
// must leave the sketch in a bit-identical state to item-at-a-time
// AddUint64, and report the same changed count.
func TestAddBatch64EquivalenceAllKinds(t *testing.T) {
	items := batchItems()
	for kind, spec := range batchSpecs(t) {
		t.Run(string(kind), func(t *testing.T) {
			ref, err := spec.New()
			if err != nil {
				t.Fatal(err)
			}
			got, err := spec.New()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := got.(BulkAdder); !ok {
				t.Fatalf("%T does not implement BulkAdder natively", got)
			}
			wantChanged := 0
			for _, x := range items {
				if ref.AddUint64(x) {
					wantChanged++
				}
			}
			gotChanged := 0
			for _, b := range oddBatches(items) {
				gotChanged += AddBatch64(got, b)
			}
			if gotChanged != wantChanged {
				t.Errorf("batch changed %d items, per-item %d", gotChanged, wantChanged)
			}
			if ref.Estimate() != got.Estimate() {
				t.Errorf("estimates diverge: batch %v, per-item %v", got.Estimate(), ref.Estimate())
			}
			if !bytes.Equal(marshalState(t, ref), marshalState(t, got)) {
				t.Error("serialized states differ between batch and per-item ingestion")
			}
		})
	}
}

// TestAddBatchStringEquivalenceAllKinds is the string-key variant; batch
// ingestion must also match the byte-slice Add path (the hashing contract).
func TestAddBatchStringEquivalenceAllKinds(t *testing.T) {
	var keys []string
	stream.ForEach(stream.NewInterleaved(3_000, 8_000, stream.DupUniform, 13), func(x uint64) {
		keys = append(keys, fmt.Sprintf("user-%x", x))
	})
	for kind, spec := range batchSpecs(t) {
		t.Run(string(kind), func(t *testing.T) {
			ref, err := spec.New()
			if err != nil {
				t.Fatal(err)
			}
			got, err := spec.New()
			if err != nil {
				t.Fatal(err)
			}
			wantChanged := 0
			for _, k := range keys {
				if ref.Add([]byte(k)) {
					wantChanged++
				}
			}
			gotChanged := 0
			const bs = 300 // ragged: 8000 % 300 != 0
			for i := 0; i < len(keys); i += bs {
				gotChanged += AddBatchString(got, keys[i:min(i+bs, len(keys))])
			}
			if gotChanged != wantChanged {
				t.Errorf("batch changed %d items, per-item %d", gotChanged, wantChanged)
			}
			if !bytes.Equal(marshalState(t, ref), marshalState(t, got)) {
				t.Error("serialized states differ between AddBatchString and Add")
			}
		})
	}
}

// TestShardedBatchEquivalence: the routed batch path must be bit-identical
// to per-item ingestion for a decorated counter of every mergeable layout,
// including the routing (same items to same shards).
func TestShardedBatchEquivalence(t *testing.T) {
	items := batchItems()
	for _, kind := range []Kind{KindSBitmap, KindHLL, KindLinearCount} {
		t.Run(string(kind), func(t *testing.T) {
			spec := batchSpecs(t)[kind]
			ref, err := NewShardedSpec(5, spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewShardedSpec(5, spec)
			if err != nil {
				t.Fatal(err)
			}
			wantChanged := 0
			for _, x := range items {
				if ref.AddUint64(x) {
					wantChanged++
				}
			}
			gotChanged := 0
			for _, b := range oddBatches(items) {
				gotChanged += got.AddBatch64(b)
			}
			if gotChanged != wantChanged {
				t.Errorf("batch changed %d items, per-item %d", gotChanged, wantChanged)
			}
			refBlob, err := ref.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			gotBlob, err := got.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refBlob, gotBlob) {
				t.Error("sharded snapshots differ between batch and per-item ingestion")
			}

			// String keys route identically too.
			keys := make([]string, 2000)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%d", i%700) // duplicates included
			}
			for _, k := range keys {
				ref.AddString(k)
			}
			for i := 0; i < len(keys); i += 333 {
				got.AddBatchString(keys[i:min(i+333, len(keys))])
			}
			if ref.Estimate() != got.Estimate() {
				t.Errorf("string estimates diverge: batch %v, per-item %v", got.Estimate(), ref.Estimate())
			}
		})
	}
}

// TestWindowedBatchEquivalence: one rotation check per batch must produce
// the same windows, estimates, and serialized state as per-item adds with
// the same timestamps.
func TestWindowedBatchEquivalence(t *testing.T) {
	spec := MustSpec("sbitmap:n=20000,eps=0.05,seed=3")
	var refWins, gotWins []WindowResult
	ref, err := NewWindowedSpec(time.Minute, spec, func(w WindowResult) { refWins = append(refWins, w) })
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewWindowedSpec(time.Minute, spec, func(w WindowResult) { gotWins = append(gotWins, w) })
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	items := batchItems()
	// 10 windows of ragged batches; all items of one batch share a timestamp,
	// which is the batch API's contract.
	perWin := len(items) / 10
	for w := 0; w < 10; w++ {
		ts := base.Add(time.Duration(w) * time.Minute).Add(7 * time.Second)
		win := items[w*perWin : (w+1)*perWin]
		for _, x := range win {
			ref.AddUint64(ts, x)
		}
		for i := 0; i < len(win); i += 173 {
			got.AddBatch64(ts, win[i:min(i+173, len(win))])
		}
	}
	if len(refWins) != len(gotWins) {
		t.Fatalf("window counts diverge: per-item %d, batch %d", len(refWins), len(gotWins))
	}
	for i := range refWins {
		if refWins[i] != gotWins[i] {
			t.Errorf("window %d diverges: per-item %+v, batch %+v", i, refWins[i], gotWins[i])
		}
	}
	refBlob, err := ref.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	gotBlob, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBlob, gotBlob) {
		t.Error("windowed snapshots differ between batch and per-item ingestion")
	}
}

// fallbackOnly wraps a Counter, hiding its BulkAdder implementation so the
// package-level helpers must take the per-item fallback.
type fallbackOnly struct{ c Counter }

func (f fallbackOnly) Add(item []byte) bool       { return f.c.Add(item) }
func (f fallbackOnly) AddUint64(item uint64) bool { return f.c.AddUint64(item) }
func (f fallbackOnly) AddString(item string) bool { return f.c.AddString(item) }
func (f fallbackOnly) Estimate() float64          { return f.c.Estimate() }
func (f fallbackOnly) SizeBits() int              { return f.c.SizeBits() }
func (f fallbackOnly) Footprint() int             { return f.c.Footprint() }
func (f fallbackOnly) Reset()                     { f.c.Reset() }

// TestAddBatchFallback: a foreign Counter without a native batch path goes
// through the item-at-a-time fallback with identical results.
func TestAddBatchFallback(t *testing.T) {
	spec := MustSpec("hll:mbits=4096,seed=9")
	native, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	items := batchItems()[:5000]
	nativeChanged := AddBatch64(native, items)
	fallbackChanged := AddBatch64(fallbackOnly{wrapped}, items)
	if nativeChanged != fallbackChanged {
		t.Errorf("native batch changed %d, fallback %d", nativeChanged, fallbackChanged)
	}
	if native.Estimate() != wrapped.Estimate() {
		t.Errorf("estimates diverge: native %v, fallback %v", native.Estimate(), wrapped.Estimate())
	}

	keys := []string{"a", "b", "a", "c", "b", ""}
	n1 := AddBatchString(native, keys)
	n2 := AddBatchString(fallbackOnly{wrapped}, keys)
	if n1 != n2 {
		t.Errorf("string batch: native changed %d, fallback %d", n1, n2)
	}
}

// TestShardedBatchConcurrentStress hammers one Sharded counter with
// concurrent batch and per-item writers plus estimate/snapshot readers;
// run under -race (CI does) it checks the locking of the batch path, and
// the final state must equal a sequential reference over the union of all
// items.
func TestShardedBatchConcurrentStress(t *testing.T) {
	spec := MustSpec("sbitmap:n=1e6,eps=0.03,seed=5")
	s, err := NewShardedSpec(8, spec)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 20_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []uint64
			stream.ForEach(stream.NewDistinct(perWorker, uint64(w)), func(x uint64) {
				buf = append(buf, x)
			})
			if w%2 == 0 {
				for i := 0; i < len(buf); i += 1024 {
					s.AddBatch64(buf[i:min(i+1024, len(buf))])
				}
			} else {
				for _, x := range buf {
					s.AddUint64(x)
				}
			}
		}(w)
	}
	// Concurrent readers: estimates and snapshots must not race with the
	// batch path's grouped locking.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Estimate()
				if fp := s.Footprint(); fp <= 0 {
					t.Errorf("concurrent footprint %d", fp)
					return
				}
				if _, err := s.MarshalBinary(); err != nil {
					t.Errorf("concurrent marshal: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	// Interleaving is nondeterministic, so exact state cannot be compared
	// to a sequential reference (an S-bitmap's state is order-dependent);
	// the estimate over the known distinct population must still land.
	truth := float64(workers * perWorker)
	if est := s.Estimate(); est < 0.85*truth || est > 1.15*truth {
		t.Errorf("estimate %v after concurrent ingest, want within 15%% of %v", est, truth)
	}
}

// TestBatchAllocFree: steady-state uint64 batch ingest must not allocate —
// neither the fused single-sketch path nor the pooled Sharded partition
// path.
func TestBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race (sync.Pool drops entries at random)")
	}
	items := make([]uint64, 4096)
	for i := range items {
		items[i] = uint64(i) * 0x9e3779b97f4a7c15
	}

	sb, err := New(1e6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sb.AddBatch64(items) // warm the hash scratch
	if n := testing.AllocsPerRun(50, func() { sb.AddBatch64(items) }); n != 0 {
		t.Errorf("SBitmap.AddBatch64 allocates %v per call, want 0", n)
	}

	sh, err := NewSharded(8, 1e6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sh.AddBatch64(items) // warm the partition scratch pool
	if n := testing.AllocsPerRun(50, func() { sh.AddBatch64(items) }); n != 0 {
		t.Errorf("Sharded.AddBatch64 allocates %v per call, want 0", n)
	}
}

// TestBatchEmptyAndTiny: zero-length and single-item batches are valid.
func TestBatchEmptyAndTiny(t *testing.T) {
	sb, err := New(1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n := sb.AddBatch64(nil); n != 0 {
		t.Errorf("empty batch changed %d", n)
	}
	h, err := MustSpec("hll:mbits=4096").New()
	if err != nil {
		t.Fatal(err)
	}
	if n := AddBatch64(h, []uint64{42}); n != 1 {
		t.Errorf("first single-item batch changed %d, want 1", n)
	}
	sh, err := NewSharded(3, 1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n := sh.AddBatch64(nil); n != 0 {
		t.Errorf("empty sharded batch changed %d", n)
	}
	if n := sh.AddBatchString(nil); n != 0 {
		t.Errorf("empty sharded string batch changed %d", n)
	}
}
