package sbitmap

import (
	"fmt"
	"math"
)

// Interval is a two-sided confidence interval for a distinct count.
type Interval struct {
	Estimate float64
	Lo, Hi   float64
	Level    float64 // the confidence level the interval was built for
}

// String renders the interval compactly. The confidence level prints with
// full precision (%g, not a rounded %.0f): a 99.5% interval must not
// masquerade as "@100%".
func (iv Interval) String() string {
	return fmt.Sprintf("%.0f [%.0f, %.0f] @%g%%", iv.Estimate, iv.Lo, iv.Hi, 100*iv.Level)
}

// ConfidenceInterval returns an approximate two-sided confidence interval
// for the true cardinality at the given level (e.g. 0.95).
//
// Theorem 3 gives the estimator's exact relative standard deviation
// ε = (C−1)^(−1/2); for cardinalities beyond a few dozen the estimate is
// approximately normal (it is a monotone function of a sum of independent
// geometric fill times), so n̂·(1 ± z·ε) is a usable interval. Both ends
// are clamped to the configured range [0, N]; near saturation the upper
// end is pinned at N, reflecting that the sketch cannot distinguish
// cardinalities beyond its configured bound.
//
// It panics if level is outside (0, 1).
func (s *SBitmap) ConfidenceInterval(level float64) Interval {
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("sbitmap: confidence level %v outside (0, 1)", level))
	}
	est := s.Estimate()
	z := normalQuantile(0.5 + level/2)
	eps := s.Epsilon()
	lo := est * (1 - z*eps)
	hi := est * (1 + z*eps)
	if lo < 0 {
		lo = 0
	}
	if s.Saturated() || hi > s.N() {
		hi = s.N()
	}
	if lo > hi {
		lo = hi
	}
	return Interval{Estimate: est, Lo: lo, Hi: hi, Level: level}
}

// normalQuantile returns the standard normal quantile Φ⁻¹(p) using the
// Acklam rational approximation (absolute error < 1.15e-9 over (0, 1)),
// implemented here because math/rand's ziggurat tables are not exposed and
// the standard library has no inverse CDF.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := [...]float64{-39.69683028665376, 220.9460984245205, -275.9285104469687,
		138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := [...]float64{-54.47609879822406, 161.5858368580409, -155.6989798598866,
		66.80131188771972, -13.28068155288572}
	c := [...]float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
		-2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := [...]float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996,
		3.754408661907416}

	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
