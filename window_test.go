package sbitmap

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/xrand"
)

// at builds the record timestamp that lands in sub-window widx of the
// given width (its midpoint, so off-by-one boundary bugs show).
func at(widx int64, width time.Duration) time.Time {
	return time.Unix(0, widx*int64(width)+int64(width)/2)
}

func TestWindowedSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: KindHLL, MemoryBits: 2048, Window: time.Minute, Ring: 5},
		{Kind: KindHLL, MemoryBits: 2048, Window: 30 * time.Second, Ring: 1},
		{Kind: KindSBitmap, N: 1e6, Eps: 0.01, Window: time.Minute, Ring: 60},
		{Kind: KindLogLog, MemoryBits: 1536, Seed: 7, Window: 90 * time.Second, Ring: 12},
		{Kind: KindExact, Window: time.Hour, Ring: 24},
		{Kind: KindMRBitmap, N: 1e5, MemoryBits: 4000, Window: 1500 * time.Millisecond, Ring: 3},
	}
	for _, want := range specs {
		s := want.String()
		got, err := ParseSpec(s)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("round trip %q: got %+v, want %+v", s, got, want)
		}
		if got.String() != s {
			t.Errorf("String not canonical: %q reparses to %q", s, got.String())
		}
		if !got.Windowed() {
			t.Errorf("%q: Windowed() = false", s)
		}
		if want := want.Window * time.Duration(want.Ring); got.Retention() != want {
			t.Errorf("%q: Retention() = %v, want %v", s, got.Retention(), want)
		}
	}
	// Omitted ring defaults to DefaultWindowRing at parse time.
	got, err := ParseSpec("hll:mbits=2048/windowed(width=1m)")
	if err != nil {
		t.Fatal(err)
	}
	if got.Ring != DefaultWindowRing {
		t.Errorf("default ring = %d, want %d", got.Ring, DefaultWindowRing)
	}
	if ParseSpecMust := MustSpec(got.String()); ParseSpecMust != got {
		t.Errorf("defaulted spec does not round-trip: %+v vs %+v", ParseSpecMust, got)
	}
}

func TestWindowedSpecErrors(t *testing.T) {
	bad := []string{
		"hll:mbits=2048/windowed",                            // no parenthesized body
		"hll:mbits=2048/windowed()",                          // empty: width missing
		"hll:mbits=2048/windowed(ring=5)",                    // width missing
		"hll:mbits=2048/windowed(width=0s)",                  // width not positive
		"hll:mbits=2048/windowed(width=-1m)",                 // width negative
		"hll:mbits=2048/windowed(width=nope)",                // width not a duration
		"hll:mbits=2048/windowed(width=1m,width=2m)",         // duplicate width
		"hll:mbits=2048/windowed(width=1m,ring=2,ring=2)",    // duplicate ring
		"hll:mbits=2048/windowed(width=1m,ring=0)",           // ring below 1
		"hll:mbits=2048/windowed(width=1m,ring=-3)",          // ring negative
		"hll:mbits=2048/windowed(width=1m,ring=65537)",       // ring above cap
		"hll:mbits=2048/windowed(width=1m,ring=1.5)",         // ring not integer
		"hll:mbits=2048/windowed(width=1m,depth=3)",          // unknown parameter
		"hll:mbits=2048/windowed(width=1m",                   // unterminated
		"hll:mbits=2048/windowed(width)",                     // not key=value
		"hll:mbits=2048/tumbling(width=1m)",                  // unknown modifier
		"hll:mbits=2048/windowed(width=2562047h,ring=65536)", // retention overflows
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestWindowedSpecConstruction(t *testing.T) {
	spec := MustSpec("hll:mbits=2048/windowed(width=1s,ring=3)")
	// A windowed spec is a Store-only shape: a single Counter has no keys
	// to hang rings off.
	if _, err := spec.New(); err == nil {
		t.Error("Spec.New accepted a windowed spec")
	}
	if _, err := NewStore[string](spec); err != nil {
		t.Errorf("NewStore refused a windowed spec: %v", err)
	}
	// Ring without Window is an invalid hand-built Spec.
	if _, err := NewStore[string](Spec{Kind: KindHLL, MemoryBits: 2048, Ring: 4}); err == nil {
		t.Error("NewStore accepted Ring without Window")
	}
	if _, err := (Spec{Kind: KindHLL, MemoryBits: 2048, Ring: 4}).New(); err == nil {
		t.Error("Spec.New accepted Ring without Window")
	}
	if _, err := NewStore[string](Spec{Kind: KindHLL, MemoryBits: 2048, Window: -time.Second}); err == nil {
		t.Error("NewStore accepted a negative Window")
	}
}

func TestEstimateWindowMergeOnQuery(t *testing.T) {
	// Merge-on-query must agree with a hand-built union of the covering
	// sub-windows: same seed, same items, merged through the same Merge
	// helper.
	const width = time.Second
	spec := MustSpec("hll:mbits=2048,seed=9/windowed(width=1s,ring=4)")
	s, err := NewStore[string](spec, WithStripes(3))
	if err != nil {
		t.Fatal(err)
	}
	base := spec
	base.Window, base.Ring = 0, 0
	perWindow := make(map[int64]Counter)
	for widx := int64(0); widx < 4; widx++ {
		c, err := base.New()
		if err != nil {
			t.Fatal(err)
		}
		perWindow[widx] = c
		for i := 0; i < 300; i++ {
			item := fmt.Sprintf("item-%d-%d", widx, i%200) // duplicates inside a window
			s.AddStringAt(at(widx, width), "k", item)
			c.AddString(item)
		}
	}
	for span := time.Second; span <= 4*time.Second; span += time.Second {
		we, ok, err := s.EstimateWindow("k", span)
		if err != nil || !ok {
			t.Fatalf("EstimateWindow(%v): ok=%v err=%v", span, ok, err)
		}
		n := int64(span / width)
		ref, err := base.New()
		if err != nil {
			t.Fatal(err)
		}
		for widx := 4 - n; widx < 4; widx++ {
			if err := Merge(ref, perWindow[widx]); err != nil {
				t.Fatal(err)
			}
		}
		if we.Estimate != ref.Estimate() {
			t.Errorf("span %v: estimate %.3f, reference union %.3f", span, we.Estimate, ref.Estimate())
		}
		if we.Tumbling {
			t.Errorf("span %v: mergeable kind marked tumbling", span)
		}
		if we.Windows != int(n) {
			t.Errorf("span %v: Windows = %d, want %d", span, we.Windows, n)
		}
		if want := time.Unix(0, (4-n)*int64(width)); !we.Start.Equal(want) {
			t.Errorf("span %v: Start = %v, want %v", span, we.Start, want)
		}
		if want := time.Unix(0, 4*int64(width)); !we.End.Equal(want) {
			t.Errorf("span %v: End = %v, want %v", span, we.End, want)
		}
		// A sub-second span still needs one whole sub-window.
		if n == 1 {
			half, _, err := s.EstimateWindow("k", width/2)
			if err != nil {
				t.Fatal(err)
			}
			if half.Estimate != we.Estimate {
				t.Errorf("ceil(span/width): %v estimate %.3f != %v estimate %.3f", width/2, half.Estimate, span, we.Estimate)
			}
		}
	}
}

func TestEstimateWindowErrors(t *testing.T) {
	s, err := NewStore[string](MustSpec("hll:mbits=2048/windowed(width=1s,ring=3)"))
	if err != nil {
		t.Fatal(err)
	}
	s.AddStringAt(at(0, time.Second), "k", "x")
	if _, _, err := s.EstimateWindow("k", 0); !errors.Is(err, ErrWindowSpan) {
		t.Errorf("span 0: err = %v, want ErrWindowSpan", err)
	}
	if _, _, err := s.EstimateWindow("k", -time.Second); !errors.Is(err, ErrWindowSpan) {
		t.Errorf("negative span: err = %v, want ErrWindowSpan", err)
	}
	if _, _, err := s.EstimateWindow("k", 4*time.Second); !errors.Is(err, ErrWindowSpan) {
		t.Errorf("span beyond retention: err = %v, want ErrWindowSpan", err)
	}
	if we, ok, err := s.EstimateWindow("k", 3*time.Second); err != nil || !ok || we.Estimate <= 0 {
		t.Errorf("full-retention span: %+v ok=%v err=%v", we, ok, err)
	}
	if _, ok, err := s.EstimateWindow("unseen", time.Second); err != nil || ok {
		t.Errorf("unseen key: ok=%v err=%v, want false,nil", ok, err)
	}

	flat, err := NewStore[string](MustSpec("hll:mbits=2048"))
	if err != nil {
		t.Fatal(err)
	}
	flat.AddString("k", "x")
	if _, _, err := flat.EstimateWindow("k", time.Second); !errors.Is(err, ErrNotWindowed) {
		t.Errorf("unwindowed store: err = %v, want ErrNotWindowed", err)
	}
	if _, _, ok := flat.WindowState(); ok {
		t.Error("unwindowed WindowState ok = true")
	}
}

func TestWindowTumblingFallback(t *testing.T) {
	// The paper's S-bitmap cannot union sub-windows; a windowed S-bitmap
	// store answers every span with the last complete sub-window's
	// estimate, marked tumbling — Section 7's every-interval reporting.
	const width = time.Second
	spec := MustSpec("sbitmap:n=1e4,eps=0.1,seed=3/windowed(width=1s,ring=3)")
	s, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	base := spec
	base.Window, base.Ring = 0, 0
	ref, err := base.New()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		item := fmt.Sprintf("old-%d", i)
		s.AddStringAt(at(6, width), "k", item)
		ref.AddString(item) // sub-window 6 becomes the last complete one
	}
	for i := 0; i < 80; i++ {
		s.AddStringAt(at(7, width), "k", fmt.Sprintf("new-%d", i))
	}
	for _, span := range []time.Duration{time.Second, 3 * time.Second} {
		we, ok, err := s.EstimateWindow("k", span)
		if err != nil || !ok {
			t.Fatalf("EstimateWindow(%v): ok=%v err=%v", span, ok, err)
		}
		if !we.Tumbling {
			t.Errorf("span %v: Tumbling = false for S-bitmap", span)
		}
		if we.Windows != 1 {
			t.Errorf("span %v: Windows = %d, want 1", span, we.Windows)
		}
		if we.Estimate != ref.Estimate() {
			t.Errorf("span %v: estimate %.3f, last complete sub-window holds %.3f", span, we.Estimate, ref.Estimate())
		}
		if want := time.Unix(0, 6*int64(width)); !we.Start.Equal(want) {
			t.Errorf("span %v: Start = %v, want %v", span, we.Start, want)
		}
		if want := time.Unix(0, 7*int64(width)); !we.End.Equal(want) {
			t.Errorf("span %v: End = %v, want %v", span, we.End, want)
		}
	}
}

func TestWindowRotationExpiresOldSubWindows(t *testing.T) {
	const width = time.Second
	spec := MustSpec("hll:mbits=2048,seed=4/windowed(width=1s,ring=2)")
	s, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	base := spec
	base.Window, base.Ring = 0, 0
	ref, err := base.New()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.AddStringAt(at(0, width), "k", fmt.Sprintf("w0-%d", i))
	}
	s.AddStringAt(at(1, width), "k", "w1-a")
	// Jump far ahead: both resident sub-windows (0, 1) are now outside the
	// horizon; their slots must have been reset in place, not merged.
	for _, item := range []string{"w9-a", "w9-b"} {
		s.AddStringAt(at(9, width), "k", item)
		ref.AddString(item)
	}
	we, ok, err := s.EstimateWindow("k", 2*time.Second)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if we.Estimate != ref.Estimate() {
		t.Errorf("estimate after expiry = %.3f, want %.3f (only sub-window 9's items)", we.Estimate, ref.Estimate())
	}
	if we.Windows != 1 {
		t.Errorf("Windows = %d, want 1 (sub-window 8 never existed)", we.Windows)
	}
	if wm, _, ok := s.WindowState(); !ok || wm != 9 {
		t.Errorf("watermark = %d ok=%v, want 9", wm, ok)
	}
}

func TestWindowLateRecordsFoldIntoWatermark(t *testing.T) {
	const width = time.Second
	spec := MustSpec("hll:mbits=2048,seed=6/windowed(width=1s,ring=3)")
	s, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	base := spec
	base.Window, base.Ring = 0, 0
	ref, err := base.New()
	if err != nil {
		t.Fatal(err)
	}
	s.AddStringAt(at(10, width), "k", "current")
	ref.AddString("current")
	// widx 8 and 9 are within the horizon (> wm-ring = 7): placed, not late.
	s.AddStringAt(at(8, width), "k", "recent")
	if got := s.LateRecords(); got != 0 {
		t.Fatalf("in-horizon record counted late: %d", got)
	}
	// widx 7 == wm-ring: its slot is the watermark's — lost. Folds forward.
	s.AddStringAt(at(7, width), "k", "late-one")
	ref.AddString("late-one")
	if got := s.LateRecords(); got != 1 {
		t.Fatalf("LateRecords = %d, want 1", got)
	}
	// Batched late records count per record, and land in the watermark
	// sub-window (visible to a 1-sub-window query).
	s.AddBatchStringAt(at(1, width), []string{"k", "k", "k"}, []string{"a", "b", "c"})
	for _, item := range []string{"a", "b", "c"} {
		ref.AddString(item)
	}
	if got := s.LateRecords(); got != 4 {
		t.Fatalf("LateRecords = %d, want 4", got)
	}
	we, ok, err := s.EstimateWindow("k", time.Second)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// current, late-one, a, b, c — all folded into sub-window 10.
	if we.Estimate != ref.Estimate() {
		t.Errorf("watermark sub-window estimate = %.3f, want %.3f", we.Estimate, ref.Estimate())
	}
	// Late ingest never moves the watermark backwards.
	if wm, late, ok := s.WindowState(); !ok || wm != 10 || late != 4 {
		t.Errorf("WindowState = (%d, %d, %v), want (10, 4, true)", wm, late, ok)
	}
}

func TestWindowedTimestampedBatchEquivalence(t *testing.T) {
	// Timestamped batched ingest must be bit-identical to per-item
	// timestamped ingest — the twin-store acceptance invariant at the
	// library layer.
	const width = 50 * time.Millisecond
	spec := MustSpec("loglog:mbits=1536,seed=5/windowed(width=50ms,ring=4)")
	one, err := NewStore[uint64](spec, WithStripes(5))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewStore[uint64](spec, WithStripes(5))
	if err != nil {
		t.Fatal(err)
	}
	keys, items := keyedWorkload(53, 6000, 11)
	r := xrand.New(17)
	// Mostly-forward timestamps with occasional back-steps, in batched
	// runs of one shared timestamp (the frame model).
	widx := int64(0)
	for i := 0; i < len(keys); {
		end := min(i+97, len(keys))
		switch r.Intn(5) {
		case 0: // stay
		case 1:
			widx = max(widx-1, 0) // one step back (in horizon)
		default:
			widx++
		}
		ts := at(widx, width)
		for j := i; j < end; j++ {
			one.AddUint64At(ts, keys[j], items[j])
		}
		batch.AddBatch64At(ts, keys[i:end], items[i:end])
		i = end
	}
	assertStoresIdentical(t, one, batch)
	aw, al, _ := one.WindowState()
	bw, bl, _ := batch.WindowState()
	if aw != bw || al != bl {
		t.Errorf("window state diverged: (%d,%d) vs (%d,%d)", aw, al, bw, bl)
	}
}

func TestWindowedStoreSnapshotRoundTrip(t *testing.T) {
	const width = time.Second
	for _, specStr := range []string{
		"hll:mbits=2048,seed=7/windowed(width=1s,ring=3)",
		"sbitmap:n=1e4,eps=0.1,seed=7/windowed(width=1s,ring=3)",
	} {
		t.Run(specStr, func(t *testing.T) {
			spec := MustSpec(specStr)
			s, err := NewStore[string](spec)
			if err != nil {
				t.Fatal(err)
			}
			for widx := int64(3); widx <= 5; widx++ {
				for i := 0; i < 200; i++ {
					for k := 0; k < 4; k++ {
						s.AddStringAt(at(widx, width), fmt.Sprintf("key-%d", k), fmt.Sprintf("i-%d-%d", widx, i))
					}
				}
			}
			blob, err := s.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnmarshalStore[string](blob)
			if err != nil {
				t.Fatal(err)
			}
			if got.Spec() != spec {
				t.Fatalf("restored spec %s, want %s", got.Spec(), spec)
			}
			assertStoresIdentical(t, s, got)
			// The watermark survives (container field and ring re-derivation
			// agree), so every windowed estimate is reproduced exactly.
			sw, _, _ := s.WindowState()
			gw, _, _ := got.WindowState()
			if sw != gw {
				t.Fatalf("watermark: restored %d, want %d", gw, sw)
			}
			for span := time.Second; span <= 3*time.Second; span += time.Second {
				a, aok, aerr := s.EstimateWindow("key-2", span)
				b, bok, berr := got.EstimateWindow("key-2", span)
				if aok != bok || (aerr == nil) != (berr == nil) || a != b {
					t.Errorf("span %v: original (%+v,%v,%v) restored (%+v,%v,%v)", span, a, aok, aerr, b, bok, berr)
				}
			}
			// Restored with the original seed, counting continues identically.
			s.AddStringAt(at(6, width), "key-0", "post")
			got.AddStringAt(at(6, width), "key-0", "post")
			assertStoresIdentical(t, s, got)
		})
	}
}

func TestWindowedStoreStripeSnapshotRoundTrip(t *testing.T) {
	const width = time.Second
	spec := MustSpec("hll:mbits=2048,seed=3/windowed(width=1s,ring=4)")
	s, err := NewStore[string](spec, WithStripes(4))
	if err != nil {
		t.Fatal(err)
	}
	for widx := int64(0); widx < 6; widx++ {
		for i := 0; i < 150; i++ {
			s.AddStringAt(at(widx, width), fmt.Sprintf("key-%d", i%9), fmt.Sprintf("i-%d-%d", widx, i))
		}
	}
	blobs, _, err := s.MarshalStripes(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewStore[string](spec, WithStripes(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, blob := range blobs {
		if _, err := got.RestoreStripe(blob); err != nil {
			t.Fatal(err)
		}
	}
	assertStoresIdentical(t, s, got)
	// Stripe snapshots carry no container watermark; it must re-derive
	// from ring contents.
	sw, _, _ := s.WindowState()
	gw, _, _ := got.WindowState()
	if sw != gw {
		t.Fatalf("re-derived watermark %d, want %d", gw, sw)
	}
	a, _, _ := s.EstimateWindow("key-4", 3*time.Second)
	b, _, _ := got.EstimateWindow("key-4", 3*time.Second)
	if a != b {
		t.Errorf("stripe-restored estimate %+v, want %+v", b, a)
	}
}

func TestPreWindowSnapshotsStillDecode(t *testing.T) {
	// An unwindowed store container is byte-for-byte the pre-window
	// format (no watermark field) — it must keep decoding, and a windowed
	// blob must refuse to restore into this build only if malformed, not
	// silently drop ring state.
	s, err := NewStore[string](MustSpec("hll:mbits=2048,seed=1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s.AddString(fmt.Sprintf("key-%d", i%7), fmt.Sprintf("item-%d", i))
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalStore[string](blob)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresIdentical(t, s, got)
	if _, _, ok := got.WindowState(); ok {
		t.Error("unwindowed snapshot restored as windowed")
	}
	// A bare ring envelope is not a Counter snapshot this build hands out.
	ring := newWindowRing(&windowShared{width: int64(time.Second), ring: 2, mergeable: true,
		newCounter: func() Counter { c, _ := MustSpec("hll:mbits=2048").New(); return c }})
	ring.slot(1).AddString("x")
	rblob, err := ring.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(rblob); err == nil {
		t.Error("Unmarshal accepted a bare ring envelope")
	}
}

func TestWindowedStoreMerge(t *testing.T) {
	const width = time.Second
	spec := MustSpec("hll:mbits=2048,seed=5/windowed(width=1s,ring=3)")
	a, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		item := fmt.Sprintf("a-%d", i)
		a.AddStringAt(at(4, width), "k", item)
		want.AddStringAt(at(4, width), "k", item)
	}
	for i := 0; i < 400; i++ {
		item := fmt.Sprintf("b-%d", i)
		b.AddStringAt(at(5, width), "k", item)
		want.AddStringAt(at(5, width), "k", item)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	aw, _, _ := a.WindowState()
	ww, _, _ := want.WindowState()
	if aw != ww {
		t.Errorf("merged watermark %d, want %d", aw, ww)
	}
	for span := time.Second; span <= 3*time.Second; span += time.Second {
		got, _, _ := a.EstimateWindow("k", span)
		ref, _, _ := want.EstimateWindow("k", span)
		if got != ref {
			t.Errorf("span %v: merged %+v, want %+v", span, got, ref)
		}
	}

	// Windowed S-bitmap refuses union merge even though the ring type is
	// structurally mergeable.
	sa, err := NewStore[string](MustSpec("sbitmap:n=1e4,eps=0.1/windowed(width=1s,ring=2)"))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStore[string](MustSpec("sbitmap:n=1e4,eps=0.1/windowed(width=1s,ring=2)"))
	if err != nil {
		t.Fatal(err)
	}
	sb.AddString("k", "x")
	if err := sa.Merge(sb); !errors.Is(err, ErrNotMergeable) {
		t.Errorf("windowed S-bitmap merge err = %v, want ErrNotMergeable", err)
	}
}

func TestWindowedStoreConcurrentRotation(t *testing.T) {
	// -race stress: writers advance time (rotating rings under stripe
	// locks, racing on the watermark CAS) while readers run window
	// queries, all-time estimates, TopK, and stats across stripes.
	const width = time.Millisecond
	s, err := NewStore[uint64](MustSpec("hll:mbits=1024,seed=2/windowed(width=1ms,ring=4)"), WithStripes(8))
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		readers = 3
		batches = 120
	)
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			r := xrand.New(uint64(w) + 1)
			keys := make([]uint64, 64)
			items := make([]uint64, 64)
			for b := 0; b < batches; b++ {
				// Each writer walks its own mostly-forward clock; the store
				// watermark is the max across writers, so late folds and
				// out-of-order placement both happen under contention.
				widx := int64(b / 2)
				if r.Intn(8) == 0 {
					widx -= int64(r.Intn(6)) // sometimes far behind: late path
				}
				for i := range keys {
					keys[i] = uint64(r.Intn(512))
					items[i] = xrand.Mix64(uint64(b*64 + i))
				}
				if b%2 == 0 {
					s.AddBatch64At(at(widx, width), keys, items)
				} else {
					for i := range keys {
						s.AddUint64At(at(widx, width), keys[i], items[i])
					}
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		readWG.Add(1)
		go func(rd int) {
			defer readWG.Done()
			r := xrand.New(uint64(rd) + 100)
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(r.Intn(512))
				if _, _, err := s.EstimateWindow(key, time.Duration(1+r.Intn(4))*width); err != nil {
					t.Errorf("EstimateWindow: %v", err)
					return
				}
				s.Estimate(key)
				s.TopK(3)
				s.LateRecords()
				s.WindowState()
			}
		}(rd)
	}
	// Writers do bounded work; readers spin until they finish.
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if s.Len() == 0 {
		t.Error("no keys after concurrent ingest")
	}
	if wm, _, ok := s.WindowState(); !ok || wm < 0 {
		t.Errorf("watermark after stress = %d ok=%v", wm, ok)
	}
}

func TestWindowWatermarkSentinel(t *testing.T) {
	s, err := NewStore[string](MustSpec("hll:mbits=1024/windowed(width=1s,ring=2)"))
	if err != nil {
		t.Fatal(err)
	}
	if wm, late, ok := s.WindowState(); !ok || wm != WindowWatermarkNone || late != 0 {
		t.Errorf("fresh WindowState = (%d, %d, %v), want (WindowWatermarkNone, 0, true)", wm, late, ok)
	}
	if WindowWatermarkNone != math.MinInt64 {
		t.Errorf("WindowWatermarkNone = %d", int64(WindowWatermarkNone))
	}
	// SetWindowState advances, never regresses.
	s.SetWindowState(7, 2)
	s.SetWindowState(3, -1)
	if wm, late, _ := s.WindowState(); wm != 7 || late != 2 {
		t.Errorf("WindowState after SetWindowState = (%d, %d), want (7, 2)", wm, late)
	}
}
