package sbitmap

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/exact"
	"repro/internal/fm"
	"repro/internal/hyperloglog"
	"repro/internal/linearcount"
	"repro/internal/loglog"
	"repro/internal/mrbitmap"
	"repro/internal/virtualbitmap"
)

// This file wraps each baseline sketch in a thin exported type so that the
// whole zoo shares one capability surface: every counter satisfies Counter,
// every counter serializes through the tagged envelope of marshal.go, the
// union-capable ones implement Mergeable, and the saturating ones implement
// Saturable. The wrappers add no state beyond the internal sketch; they
// exist so capabilities can be attached uniformly without leaking the
// internal packages into the public API.

// Saturable is implemented by counters that have a configured operating
// range and can report having run past it (their estimate is then a pinned
// lower bound rather than an unbiased value).
type Saturable interface {
	Saturated() bool
}

// HyperLogLog is the root-package face of the Flajolet et al. (2007)
// HyperLogLog counter. Create one with NewHyperLogLog or Unmarshal.
type HyperLogLog struct{ sk *hyperloglog.Sketch }

// Add offers an item; it reports whether a register grew.
func (c *HyperLogLog) Add(item []byte) bool { return c.sk.Add(item) }

// AddUint64 offers a 64-bit item.
func (c *HyperLogLog) AddUint64(item uint64) bool { return c.sk.AddUint64(item) }

// AddString offers a string item without a []byte conversion.
func (c *HyperLogLog) AddString(item string) bool { return c.sk.AddString(item) }

// Estimate returns the bias-corrected HyperLogLog estimate.
func (c *HyperLogLog) Estimate() float64 { return c.sk.Estimate() }

// SizeBits returns the summary memory footprint in bits.
func (c *HyperLogLog) SizeBits() int { return c.sk.SizeBits() }

// Footprint returns the counter's resident process memory in bytes.
func (c *HyperLogLog) Footprint() int { return c.sk.Footprint() }

// Reset clears the counter for reuse.
func (c *HyperLogLog) Reset() { c.sk.Reset() }

// Merge implements Mergeable by register-wise maximum: the result
// summarizes the union of the two streams. The other counter must be a
// HyperLogLog with the same register count (and hash function).
func (c *HyperLogLog) Merge(other Counter) error {
	o, ok := other.(*HyperLogLog)
	if !ok {
		return fmt.Errorf("sbitmap: cannot merge %T into *HyperLogLog: %w", other, ErrNotMergeable)
	}
	return c.sk.Merge(o.sk)
}

// MarshalBinary implements encoding.BinaryMarshaler via the envelope.
func (c *HyperLogLog) MarshalBinary() ([]byte, error) {
	return marshalEnvelope(KindHLL, c.sk)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The restored
// counter hashes with the default seed; use Unmarshal with options to
// restore under a different hash configuration.
func (c *HyperLogLog) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, KindHLL)
	if err != nil {
		return err
	}
	if c.sk == nil {
		c.sk = &hyperloglog.Sketch{}
	}
	return c.sk.UnmarshalBinary(payload)
}

// LogLog is the root-package face of the Durand–Flajolet (2003) LogLog
// counter. Create one with NewLogLog or Unmarshal.
type LogLog struct{ sk *loglog.Sketch }

// Add offers an item; it reports whether a register grew.
func (c *LogLog) Add(item []byte) bool { return c.sk.Add(item) }

// AddUint64 offers a 64-bit item.
func (c *LogLog) AddUint64(item uint64) bool { return c.sk.AddUint64(item) }

// AddString offers a string item without a []byte conversion.
func (c *LogLog) AddString(item string) bool { return c.sk.AddString(item) }

// Estimate returns the bias-corrected LogLog estimate.
func (c *LogLog) Estimate() float64 { return c.sk.Estimate() }

// SizeBits returns the summary memory footprint in bits.
func (c *LogLog) SizeBits() int { return c.sk.SizeBits() }

// Footprint returns the counter's resident process memory in bytes.
func (c *LogLog) Footprint() int { return c.sk.Footprint() }

// Reset clears the counter for reuse.
func (c *LogLog) Reset() { c.sk.Reset() }

// Merge implements Mergeable by register-wise maximum (union semantics).
func (c *LogLog) Merge(other Counter) error {
	o, ok := other.(*LogLog)
	if !ok {
		return fmt.Errorf("sbitmap: cannot merge %T into *LogLog: %w", other, ErrNotMergeable)
	}
	return c.sk.Merge(o.sk)
}

// MarshalBinary implements encoding.BinaryMarshaler via the envelope.
func (c *LogLog) MarshalBinary() ([]byte, error) {
	return marshalEnvelope(KindLogLog, c.sk)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *LogLog) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, KindLogLog)
	if err != nil {
		return err
	}
	if c.sk == nil {
		c.sk = &loglog.Sketch{}
	}
	return c.sk.UnmarshalBinary(payload)
}

// FM is the root-package face of the Flajolet–Martin (1985) PCSA counter.
// Create one with NewFM or Unmarshal.
type FM struct{ sk *fm.Sketch }

// Add offers an item; it reports whether any register bit changed.
func (c *FM) Add(item []byte) bool { return c.sk.Add(item) }

// AddUint64 offers a 64-bit item.
func (c *FM) AddUint64(item uint64) bool { return c.sk.AddUint64(item) }

// AddString offers a string item without a []byte conversion.
func (c *FM) AddString(item string) bool { return c.sk.AddString(item) }

// Estimate returns the PCSA estimate.
func (c *FM) Estimate() float64 { return c.sk.Estimate() }

// SizeBits returns the summary memory footprint in bits.
func (c *FM) SizeBits() int { return c.sk.SizeBits() }

// Footprint returns the counter's resident process memory in bytes.
func (c *FM) Footprint() int { return c.sk.Footprint() }

// Reset clears the counter for reuse.
func (c *FM) Reset() { c.sk.Reset() }

// Merge implements Mergeable by register-wise OR (union semantics).
func (c *FM) Merge(other Counter) error {
	o, ok := other.(*FM)
	if !ok {
		return fmt.Errorf("sbitmap: cannot merge %T into *FM: %w", other, ErrNotMergeable)
	}
	return c.sk.Merge(o.sk)
}

// MarshalBinary implements encoding.BinaryMarshaler via the envelope.
func (c *FM) MarshalBinary() ([]byte, error) {
	return marshalEnvelope(KindFM, c.sk)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *FM) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, KindFM)
	if err != nil {
		return err
	}
	if c.sk == nil {
		c.sk = &fm.Sketch{}
	}
	return c.sk.UnmarshalBinary(payload)
}

// LinearCounting is the root-package face of the Whang et al. (1990)
// linear-counting sketch. Create one with NewLinearCounting or Unmarshal.
type LinearCounting struct{ sk *linearcount.Sketch }

// Add offers an item; it reports whether a bucket changed.
func (c *LinearCounting) Add(item []byte) bool { return c.sk.Add(item) }

// AddUint64 offers a 64-bit item.
func (c *LinearCounting) AddUint64(item uint64) bool { return c.sk.AddUint64(item) }

// AddString offers a string item without a []byte conversion.
func (c *LinearCounting) AddString(item string) bool { return c.sk.AddString(item) }

// Estimate returns n̂ = m·ln(m/Z).
func (c *LinearCounting) Estimate() float64 { return c.sk.Estimate() }

// SizeBits returns the summary memory footprint in bits.
func (c *LinearCounting) SizeBits() int { return c.sk.SizeBits() }

// Footprint returns the counter's resident process memory in bytes.
func (c *LinearCounting) Footprint() int { return c.sk.Footprint() }

// Reset clears the counter for reuse.
func (c *LinearCounting) Reset() { c.sk.Reset() }

// Saturated implements Saturable: a full bitmap caps the estimate.
func (c *LinearCounting) Saturated() bool { return c.sk.Saturated() }

// Merge implements Mergeable by bitmap OR (union semantics). The bitmaps
// must have equal size (and hash function).
func (c *LinearCounting) Merge(other Counter) error {
	o, ok := other.(*LinearCounting)
	if !ok {
		return fmt.Errorf("sbitmap: cannot merge %T into *LinearCounting: %w", other, ErrNotMergeable)
	}
	return c.sk.Merge(o.sk)
}

// MarshalBinary implements encoding.BinaryMarshaler via the envelope.
func (c *LinearCounting) MarshalBinary() ([]byte, error) {
	return marshalEnvelope(KindLinearCount, c.sk)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *LinearCounting) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, KindLinearCount)
	if err != nil {
		return err
	}
	if c.sk == nil {
		c.sk = &linearcount.Sketch{}
	}
	return c.sk.UnmarshalBinary(payload)
}

// VirtualBitmap is the root-package face of the Estan et al. (2006)
// virtual bitmap. Create one with NewVirtualBitmap or Unmarshal.
type VirtualBitmap struct{ sk *virtualbitmap.Sketch }

// Add offers an item; it reports whether the underlying bitmap changed.
func (c *VirtualBitmap) Add(item []byte) bool { return c.sk.Add(item) }

// AddUint64 offers a 64-bit item.
func (c *VirtualBitmap) AddUint64(item uint64) bool { return c.sk.AddUint64(item) }

// AddString offers a string item without a []byte conversion.
func (c *VirtualBitmap) AddString(item string) bool { return c.sk.AddString(item) }

// Estimate returns the rate-scaled linear-counting estimate.
func (c *VirtualBitmap) Estimate() float64 { return c.sk.Estimate() }

// SizeBits returns the summary memory footprint in bits.
func (c *VirtualBitmap) SizeBits() int { return c.sk.SizeBits() }

// Footprint returns the counter's resident process memory in bytes.
func (c *VirtualBitmap) Footprint() int { return c.sk.Footprint() }

// Reset clears the counter for reuse.
func (c *VirtualBitmap) Reset() { c.sk.Reset() }

// Saturated implements Saturable: a full bitmap caps the estimate.
func (c *VirtualBitmap) Saturated() bool { return c.sk.Saturated() }

// MarshalBinary implements encoding.BinaryMarshaler via the envelope.
func (c *VirtualBitmap) MarshalBinary() ([]byte, error) {
	return marshalEnvelope(KindVirtualBitmap, c.sk)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *VirtualBitmap) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, KindVirtualBitmap)
	if err != nil {
		return err
	}
	if c.sk == nil {
		c.sk = &virtualbitmap.Sketch{}
	}
	return c.sk.UnmarshalBinary(payload)
}

// MRBitmap is the root-package face of the Estan et al. (2006)
// multiresolution bitmap. Create one with NewMRBitmap or Unmarshal.
type MRBitmap struct{ sk *mrbitmap.Sketch }

// Add offers an item; it reports whether a bucket changed.
func (c *MRBitmap) Add(item []byte) bool { return c.sk.Add(item) }

// AddUint64 offers a 64-bit item.
func (c *MRBitmap) AddUint64(item uint64) bool { return c.sk.AddUint64(item) }

// AddString offers a string item without a []byte conversion.
func (c *MRBitmap) AddString(item string) bool { return c.sk.AddString(item) }

// Estimate returns the multiresolution estimate.
func (c *MRBitmap) Estimate() float64 { return c.sk.Estimate() }

// SizeBits returns the summary memory footprint in bits.
func (c *MRBitmap) SizeBits() int { return c.sk.SizeBits() }

// Footprint returns the counter's resident process memory in bytes.
func (c *MRBitmap) Footprint() int { return c.sk.Footprint() }

// Reset clears the counter for reuse.
func (c *MRBitmap) Reset() { c.sk.Reset() }

// Saturated implements Saturable: even the coarsest component is past its
// usable load and the estimate blows up.
func (c *MRBitmap) Saturated() bool { return c.sk.Saturated() }

// Merge implements Mergeable by component-wise bitmap OR (union
// semantics). The layouts must be identical (and the hash functions equal).
func (c *MRBitmap) Merge(other Counter) error {
	o, ok := other.(*MRBitmap)
	if !ok {
		return fmt.Errorf("sbitmap: cannot merge %T into *MRBitmap: %w", other, ErrNotMergeable)
	}
	return c.sk.Merge(o.sk)
}

// MarshalBinary implements encoding.BinaryMarshaler via the envelope.
func (c *MRBitmap) MarshalBinary() ([]byte, error) {
	return marshalEnvelope(KindMRBitmap, c.sk)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *MRBitmap) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, KindMRBitmap)
	if err != nil {
		return err
	}
	if c.sk == nil {
		c.sk = &mrbitmap.Sketch{}
	}
	return c.sk.UnmarshalBinary(payload)
}

// AdaptiveSampler is the root-package face of Wegman's adaptive sampler.
// Create one with NewAdaptiveSampler or Unmarshal.
type AdaptiveSampler struct{ sk *adaptive.Sampler }

// Add offers an item; it reports whether the sample changed.
func (c *AdaptiveSampler) Add(item []byte) bool { return c.sk.Add(item) }

// AddUint64 offers a 64-bit item.
func (c *AdaptiveSampler) AddUint64(item uint64) bool { return c.sk.AddUint64(item) }

// AddString offers a string item without a []byte conversion.
func (c *AdaptiveSampler) AddString(item string) bool { return c.sk.AddString(item) }

// Estimate returns n̂ = |S|·2^d.
func (c *AdaptiveSampler) Estimate() float64 { return c.sk.Estimate() }

// SizeBits returns the memory footprint under the comparison accounting.
func (c *AdaptiveSampler) SizeBits() int { return c.sk.SizeBits() }

// Footprint returns the counter's resident process memory in bytes.
func (c *AdaptiveSampler) Footprint() int { return c.sk.Footprint() }

// Reset clears the counter for reuse.
func (c *AdaptiveSampler) Reset() { c.sk.Reset() }

// MarshalBinary implements encoding.BinaryMarshaler via the envelope.
func (c *AdaptiveSampler) MarshalBinary() ([]byte, error) {
	return marshalEnvelope(KindAdaptive, c.sk)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *AdaptiveSampler) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, KindAdaptive)
	if err != nil {
		return err
	}
	if c.sk == nil {
		c.sk = &adaptive.Sampler{}
	}
	return c.sk.UnmarshalBinary(payload)
}

// Exact is the root-package face of the exact (linear-memory) counter.
// Create one with NewExact or Unmarshal.
type Exact struct{ c *exact.Counter }

// Add offers an item and reports whether it was new.
func (c *Exact) Add(item []byte) bool { return c.c.Add(item) }

// AddUint64 offers a 64-bit item.
func (c *Exact) AddUint64(item uint64) bool { return c.c.AddUint64(item) }

// AddString offers a string item without a []byte conversion.
func (c *Exact) AddString(item string) bool { return c.c.AddString(item) }

// Estimate returns the exact distinct count.
func (c *Exact) Estimate() float64 { return c.c.Estimate() }

// Count returns the exact distinct count as an int.
func (c *Exact) Count() int { return c.c.Count() }

// SizeBits returns the fingerprint-storage footprint (128 bits per item).
func (c *Exact) SizeBits() int { return c.c.SizeBits() }

// Footprint returns the counter's resident process memory in bytes.
func (c *Exact) Footprint() int { return c.c.Footprint() }

// Reset clears the counter for reuse.
func (c *Exact) Reset() { c.c.Reset() }

// MarshalBinary implements encoding.BinaryMarshaler via the envelope.
func (c *Exact) MarshalBinary() ([]byte, error) {
	return marshalEnvelope(KindExact, c.c)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Exact) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, KindExact)
	if err != nil {
		return err
	}
	if c.c == nil {
		c.c = &exact.Counter{}
	}
	return c.c.UnmarshalBinary(payload)
}

var (
	_ Counter   = (*HyperLogLog)(nil)
	_ Counter   = (*LogLog)(nil)
	_ Counter   = (*FM)(nil)
	_ Counter   = (*LinearCounting)(nil)
	_ Counter   = (*VirtualBitmap)(nil)
	_ Counter   = (*MRBitmap)(nil)
	_ Counter   = (*AdaptiveSampler)(nil)
	_ Counter   = (*Exact)(nil)
	_ Mergeable = (*HyperLogLog)(nil)
	_ Mergeable = (*LogLog)(nil)
	_ Mergeable = (*FM)(nil)
	_ Mergeable = (*LinearCounting)(nil)
	_ Mergeable = (*MRBitmap)(nil)
	_ Saturable = (*SBitmap)(nil)
	_ Saturable = (*LinearCounting)(nil)
	_ Saturable = (*VirtualBitmap)(nil)
	_ Saturable = (*MRBitmap)(nil)
)
