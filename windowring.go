package sbitmap

// Sliding-window keyed counting: the per-key machinery behind the
// "/windowed(width=…,ring=…)" Spec modifier. A windowed Store
// materializes, per key, a windowRing — a fixed ring of sub-window
// sketches, each counting the records whose timestamps fall inside one
// width-sized interval of absolute time. Record timestamps are
// caller-supplied (never wall-clock), so replayed traces, WAL recovery,
// and twin stores fed the same records produce bit-identical state.
//
// Time is discretized into sub-window indices ("widx"): record ts lands
// in widx = floor(ts / width). Slot widx%ring holds that sub-window's
// sketch, so rotation is O(1) and in place — advancing into a new
// sub-window Resets whatever expired sketch occupied the slot instead
// of allocating. A Store-global watermark (the highest widx any record
// has reached) defines "now": queries cover the half-open past from the
// watermark backwards, and records more than ring sub-windows behind it
// have lost their slot — they fold into the watermark window and are
// surfaced via the Store's late-record counter.
//
// Queries merge on demand. For Mergeable kinds (HLL, LogLog, FM,
// LinearCount, MRBitmap, Exact) EstimateWindow unions the covering
// sub-window sketches into a scratch counter at query time. The paper's
// S-bitmap is deliberately not union-mergeable (see ErrNotMergeable),
// so windowed S-bitmap stores fall back to tumbling semantics: the
// estimate of the last *complete* sub-window, marked Tumbling in the
// result — exactly the paper's Section 7 deployment, which reports
// per-link spreads "every minute interval".

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"
	"unsafe"
)

var (
	// ErrNotWindowed reports a window query against a Store whose Spec has
	// no windowed(...) modifier.
	ErrNotWindowed = errors.New("sbitmap: store is not windowed (spec has no windowed(...) modifier)")
	// ErrWindowSpan reports an EstimateWindow span that the retained
	// sub-windows cannot cover (non-positive, or beyond Spec.Retention).
	ErrWindowSpan = errors.New("sbitmap: window span")
)

// WindowWatermarkNone is the watermark WindowState reports before any
// record has been ingested into a windowed Store — callers compare
// against it to tell "no record yet" from a real sub-window index.
const WindowWatermarkNone = math.MinInt64

// wmNone marks a watermark (or ring slot) that has never seen a record.
const wmNone = WindowWatermarkNone

// windowShared is the per-Store window configuration every ring points
// at, so a ring costs one pointer beyond its slots.
type windowShared struct {
	width      int64 // sub-window width in nanoseconds, > 0
	ring       int   // slots per key, ≥ 1
	mergeable  bool  // base kind supports merge-on-query
	newCounter func() Counter
	wm         *atomic.Int64 // the Store's watermark sub-window index
}

// widthDur returns the sub-window width as a duration.
func (w *windowShared) widthDur() time.Duration { return time.Duration(w.width) }

// coveringWindows maps a query span onto the number of sub-windows that
// cover it: ceil(span/width), which must fit the ring.
func (w *windowShared) coveringWindows(span time.Duration) (int, error) {
	if span <= 0 {
		return 0, fmt.Errorf("%w %s is not positive", ErrWindowSpan, span)
	}
	n := int((int64(span) + w.width - 1) / w.width)
	if n > w.ring {
		return 0, fmt.Errorf("%w %s exceeds the retention %s (windowed(width=%s,ring=%d))",
			ErrWindowSpan, span, time.Duration(w.width*int64(w.ring)), w.widthDur(), w.ring)
	}
	return n, nil
}

// widxOf discretizes a unix-nanosecond timestamp into its sub-window
// index: floor division, so pre-epoch timestamps round down, not toward
// zero.
func widxOf(tsNanos, width int64) int64 {
	q := tsNanos / width
	if tsNanos < 0 && tsNanos%width != 0 {
		q--
	}
	return q
}

// ringSlot is one sub-window: the sketch plus the absolute sub-window
// index its contents belong to. c == nil until the slot is first used;
// widx == wmNone after a Reset. Rotation reuses c in place.
type ringSlot struct {
	widx int64
	c    Counter
}

// windowRing is a key's sub-window ring. All mutation happens under the
// key's stripe lock (the Store's usual contract); sh.wm is atomic so
// estimate paths may read the watermark without it.
type windowRing struct {
	sh    *windowShared
	slots []ringSlot
}

func newWindowRing(sh *windowShared) *windowRing {
	return &windowRing{sh: sh, slots: make([]ringSlot, sh.ring)}
}

// slot rotates the ring to sub-window widx and returns its sketch,
// allocating the slot's counter on first use and Resetting an expired
// occupant in place otherwise — the O(1), steady-state-alloc-free
// rotation. The caller has already clamped widx into the retention
// horizon (Store.resolveWidx), so an occupant with a different widx is
// always older.
func (r *windowRing) slot(widx int64) Counter {
	i := widx % int64(len(r.slots))
	if i < 0 {
		i += int64(len(r.slots))
	}
	sl := &r.slots[i]
	if sl.c == nil {
		sl.c = r.sh.newCounter()
		sl.widx = widx
	} else if sl.widx != widx {
		sl.c.Reset()
		sl.widx = widx
	}
	return sl.c
}

// cur returns the watermark sub-window's sketch (sub-window 0 before
// any record has carried a timestamp) — the target of the Counter
// interface's own Add methods.
func (r *windowRing) cur() Counter {
	wm := r.sh.wm.Load()
	if wm == wmNone {
		wm = 0
	}
	return r.slot(wm)
}

// estimateRange estimates the union of the live sub-windows with widx
// in [lo, hi]: zero slots estimate 0, one slot answers directly, more
// merge into a scratch counter. n reports how many sub-windows
// contributed.
func (r *windowRing) estimateRange(lo, hi int64) (est float64, n int, err error) {
	var dst Counter
	var single Counter
	for i := range r.slots {
		sl := &r.slots[i]
		if sl.c == nil || sl.widx < lo || sl.widx > hi {
			continue
		}
		n++
		switch n {
		case 1:
			single = sl.c
			continue
		case 2:
			dst = r.sh.newCounter()
			if err := Merge(dst, single); err != nil {
				return 0, n, err
			}
		}
		if err := Merge(dst, sl.c); err != nil {
			return 0, n, err
		}
	}
	switch n {
	case 0:
		return 0, 0, nil
	case 1:
		return single.Estimate(), 1, nil
	default:
		return dst.Estimate(), n, nil
	}
}

// estimateWindow answers a window query given the Store watermark wm
// and the covering sub-window count n (both resolved by the Store):
// merge-on-query over (wm−n, wm] for mergeable kinds, the last complete
// sub-window (wm−1) for the tumbling fallback. Start/End are filled in
// by the Store.
func (r *windowRing) estimateWindow(wm int64, n int) (WindowEstimate, error) {
	if !r.sh.mergeable {
		est, _, err := r.estimateRange(wm-1, wm-1)
		return WindowEstimate{Estimate: est, Windows: 1, Tumbling: true}, err
	}
	est, merged, err := r.estimateRange(wm-int64(n)+1, wm)
	return WindowEstimate{Estimate: est, Windows: merged}, err
}

// Add implements Counter: records without timestamps land in the
// watermark sub-window. The Store's ingest paths never call these — they
// rotate via slot directly — but the ring is a well-behaved Counter for
// code that reaches one through ForEach or a snapshot.
func (r *windowRing) Add(item []byte) bool       { return r.cur().Add(item) }
func (r *windowRing) AddUint64(item uint64) bool { return r.cur().AddUint64(item) }
func (r *windowRing) AddString(item string) bool { return r.cur().AddString(item) }

// Estimate implements Counter: the full-retention estimate — the union
// of every in-horizon sub-window for mergeable kinds, the last complete
// sub-window under the tumbling fallback. TopK on a windowed store
// therefore ranks keys by their current sliding-window spread.
func (r *windowRing) Estimate() float64 {
	wm := r.sh.wm.Load()
	if wm == wmNone {
		wm = 0
	}
	var est float64
	if r.sh.mergeable {
		est, _, _ = r.estimateRange(wm-int64(len(r.slots))+1, wm)
	} else {
		est, _, _ = r.estimateRange(wm-1, wm-1)
	}
	return est
}

// SizeBits implements Counter: the summed summary bits of every
// materialized sub-window sketch.
func (r *windowRing) SizeBits() int {
	total := 0
	for i := range r.slots {
		if r.slots[i].c != nil {
			total += r.slots[i].c.SizeBits()
		}
	}
	return total
}

// Footprint implements Counter.
func (r *windowRing) Footprint() int {
	total := int(unsafe.Sizeof(*r)) + cap(r.slots)*int(unsafe.Sizeof(ringSlot{}))
	for i := range r.slots {
		if r.slots[i].c != nil {
			total += r.slots[i].c.Footprint()
		}
	}
	return total
}

// Reset implements Counter: every sub-window empties; allocated slot
// counters are kept for reuse.
func (r *windowRing) Reset() {
	for i := range r.slots {
		if r.slots[i].c != nil {
			r.slots[i].c.Reset()
		}
		r.slots[i].widx = wmNone
	}
}

// Merge implements Mergeable by aligning sub-windows: same-widx slots
// union, a newer incoming sub-window replaces an older resident
// (Reset + absorb, in place), and an older incoming one is dropped —
// its data has expired relative to the destination ring. Merging is
// only reachable for mergeable base kinds (Store.Merge refuses
// otherwise).
func (r *windowRing) Merge(other Counter) error {
	o, ok := other.(*windowRing)
	if !ok {
		return fmt.Errorf("sbitmap: cannot merge %T into a windowed ring", other)
	}
	if len(o.slots) != len(r.slots) {
		return fmt.Errorf("sbitmap: cannot merge ring of %d sub-windows into %d", len(o.slots), len(r.slots))
	}
	for i := range o.slots {
		os := &o.slots[i]
		if os.c == nil || os.widx == wmNone {
			continue
		}
		sl := &r.slots[i]
		switch {
		case sl.c == nil:
			sl.c = r.sh.newCounter()
			sl.widx = os.widx
		case sl.widx == wmNone || sl.widx < os.widx:
			sl.c.Reset()
			sl.widx = os.widx
		case sl.widx > os.widx:
			continue
		}
		if err := Merge(sl.c, os.c); err != nil {
			return err
		}
	}
	return nil
}

// maxWidx returns the highest sub-window index the ring holds data for
// (wmNone when empty) — restore paths use it to re-derive the Store
// watermark from snapshot contents.
func (r *windowRing) maxWidx() int64 {
	maxW := int64(wmNone)
	for i := range r.slots {
		if r.slots[i].c != nil && r.slots[i].widx != wmNone && r.slots[i].widx > maxW {
			maxW = r.slots[i].widx
		}
	}
	return maxW
}

// Ring snapshot payload (envelope kind kindWindowRing):
//
//	[0:2]  ring size (little-endian uint16)
//	[2:4]  live sub-window count (little-endian uint16)
//	per live sub-window:
//	       int64 widx (8 bytes LE), blob length (uint32 LE), counter envelope
//
// The width does not appear — a ring blob is only meaningful inside a
// store container or stripe snapshot whose spec carries it.

// MarshalBinary implements encoding.BinaryMarshaler.
func (r *windowRing) MarshalBinary() ([]byte, error) {
	payload := make([]byte, 4, 4+64*len(r.slots))
	binary.LittleEndian.PutUint16(payload, uint16(len(r.slots)))
	live := 0
	for i := range r.slots {
		sl := &r.slots[i]
		if sl.c == nil || sl.widx == wmNone {
			continue
		}
		blob, err := Marshal(sl.c)
		if err != nil {
			return nil, fmt.Errorf("sbitmap: ring sub-window %d: %w", sl.widx, err)
		}
		payload = binary.LittleEndian.AppendUint64(payload, uint64(sl.widx))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(blob)))
		payload = append(payload, blob...)
		live++
	}
	binary.LittleEndian.PutUint16(payload[2:], uint16(live))
	return appendEnvelope(kindWindowRing, payload), nil
}

// unmarshalWindowRing reconstructs a ring snapshot under a store's
// window configuration; the snapshot's ring size must match the spec's.
func unmarshalWindowRing(sh *windowShared, data []byte, specOpts []Option) (*windowRing, error) {
	payload, err := payloadOfKind(data, kindWindowRing)
	if err != nil {
		return nil, err
	}
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: ring header", ErrTruncated)
	}
	ringSize := int(binary.LittleEndian.Uint16(payload))
	live := int(binary.LittleEndian.Uint16(payload[2:]))
	if ringSize != sh.ring {
		return nil, fmt.Errorf("sbitmap: ring snapshot has %d sub-windows, store is configured for %d", ringSize, sh.ring)
	}
	payload = payload[4:]
	r := newWindowRing(sh)
	for j := 0; j < live; j++ {
		if len(payload) < 12 {
			return nil, fmt.Errorf("%w: ring sub-window %d header", ErrTruncated, j)
		}
		widx := int64(binary.LittleEndian.Uint64(payload))
		blen := int(binary.LittleEndian.Uint32(payload[8:]))
		payload = payload[12:]
		if blen > len(payload) {
			return nil, fmt.Errorf("%w: ring sub-window %d", ErrTruncated, j)
		}
		if widx == wmNone {
			return nil, fmt.Errorf("sbitmap: ring snapshot sub-window %d has a reserved index", j)
		}
		c, err := Unmarshal(payload[:blen], specOpts...)
		if err != nil {
			return nil, fmt.Errorf("sbitmap: ring sub-window %d: %w", widx, err)
		}
		i := widx % int64(ringSize)
		if i < 0 {
			i += int64(ringSize)
		}
		if r.slots[i].c != nil {
			return nil, fmt.Errorf("sbitmap: ring snapshot repeats slot %d (sub-windows %d and %d)", i, r.slots[i].widx, widx)
		}
		r.slots[i] = ringSlot{widx: widx, c: c}
		payload = payload[blen:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("sbitmap: %d trailing bytes after last ring sub-window", len(payload))
	}
	return r, nil
}
