// Eventreport: the Gibbons (2001) distinct-sampling use case the paper
// reviews in Section 2.4 — beyond the distinct COUNT, keep a uniform
// sample OF the distinct items (with multiplicities) so "event report"
// questions can be answered: which hosts are these flows, and how much
// traffic does the sampled subpopulation carry?
//
// The example monitors a peer-to-peer-like workload (Section 1's
// "number of distinct peers each host communicates with"): one host
// talks to many peers with Zipf-skewed packet counts. A DistinctSampler
// answers both the cardinality question and "show me representative
// peers", while the S-bitmap answers only — but more accurately and in
// far less memory — the cardinality question.
//
// Run with: go run ./examples/eventreport
package main

import (
	"fmt"
	"log"
	"sort"

	sbitmap "repro"
	"repro/internal/adaptive"
	"repro/internal/xrand"
)

func main() {
	const peers = 120_000 // distinct peers the host talks to
	const packets = 600_000

	sampler := adaptive.NewDistinctSampler(256, 1) // 256-item distinct sample
	sketch, err := sbitmap.New(1e6, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	// Zipf packet counts over peers: a few peers dominate traffic but
	// every peer counts once toward the distinct total.
	r := xrand.New(99)
	z := xrand.NewZipf(r, 1.2, peers)
	traffic := make(map[uint64]int)
	for i := 0; i < packets; i++ {
		peer := z.Next()
		key := fmt.Sprintf("peer-%d", peer)
		sampler.AddString(key)
		sketch.AddString(key)
		traffic[peer]++
	}
	// Ensure every peer appears at least once (tail peers the Zipf draw
	// may have missed send one keep-alive each).
	keepalives := 0
	for p := uint64(0); p < peers; p++ {
		if traffic[p] == 0 {
			key := fmt.Sprintf("peer-%d", p)
			sampler.AddString(key)
			sketch.AddString(key)
			traffic[p] = 1
			keepalives++
		}
	}

	fmt.Printf("ground truth: %d distinct peers, %d packets\n\n", len(traffic), packets+keepalives)

	fmt.Printf("S-bitmap:          distinct ≈ %8.0f   (%5d bits, ±%.1f%%)\n",
		sketch.Estimate(), sketch.SizeBits(), 100*sketch.Epsilon())
	fmt.Printf("distinct sampler:  distinct ≈ %8.0f   (%5d bits, sampling depth 2^-%d)\n\n",
		sampler.Estimate(), sampler.SizeBits(), sampler.Depth())

	// The event report: the sampler's retained items are a uniform sample
	// of the DISTINCT peers (not of packets!), so tail peers are fairly
	// represented — exactly what packet sampling cannot give you.
	sample := sampler.Sample()
	sort.Slice(sample, func(i, j int) bool { return sample[i].Count > sample[j].Count })
	fmt.Printf("event report — %d sampled peers (uniform over distinct peers):\n", len(sample))
	fmt.Println("  heaviest sampled peers      packets-in-sample")
	for i := 0; i < 5 && i < len(sample); i++ {
		fmt.Printf("  %-26s %d\n", sample[i].Key, sample[i].Count)
	}
	light := 0
	for _, it := range sample {
		if it.Count <= 2 {
			light++
		}
	}
	fmt.Printf("  ...and %d of %d sampled peers have ≤ 2 packets — the long tail is visible.\n\n",
		light, len(sample))

	fmt.Println("takeaway: pair them. The S-bitmap gives the tight count per host in a few")
	fmt.Println("kilobits; the distinct sampler, where deployed, names representative peers.")
}
