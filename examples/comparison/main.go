// Comparison: every sketch in the module on one workload, with the
// memory-accuracy trade-off made visible — a miniature of the paper's
// Section 6 study.
//
// All budget-based sketches share the S-bitmap's memory budget, then count
// the same stream of 200k distinct items (drawn with Zipf duplication);
// the table shows estimate, error, and memory.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	sbitmap "repro"
	"repro/internal/stream"
)

func main() {
	const (
		nBound   = 1e6 // dimension sketches for up to 1M
		distinct = 200_000
		records  = 800_000
		eps      = 0.02
	)

	budget, err := sbitmap.Memory(nBound, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared memory budget: %d bits (what the S-bitmap needs for N=%.0e, ε=%.0f%%)\n\n",
		budget, nBound, 100*eps)

	// Every sketch is named in the module's shared spec vocabulary — the
	// same strings a config file or `distinct -spec` would carry.
	specs := []struct {
		name string
		spec string
	}{
		{"S-bitmap", fmt.Sprintf("sbitmap:n=%g,eps=%g", float64(nBound), eps)},
		{"HyperLogLog", fmt.Sprintf("hll:mbits=%d", budget)},
		{"LogLog", fmt.Sprintf("loglog:mbits=%d", budget)},
		{"mr-bitmap", fmt.Sprintf("mr:n=%g,mbits=%d", float64(nBound), budget)},
		{"linear counting", fmt.Sprintf("lc:mbits=%d", budget)},
		{"FM/PCSA", fmt.Sprintf("fm:mbits=%d", budget)},
		{"adaptive sampling", fmt.Sprintf("adaptive:mbits=%d", budget)},
		{"exact (reference)", "exact"},
	}
	counters := make([]struct {
		name string
		c    sbitmap.Counter
	}, len(specs))
	for i, s := range specs {
		spec, err := sbitmap.ParseSpec(s.spec)
		if err != nil {
			log.Fatal(err)
		}
		c, err := spec.New()
		if err != nil {
			log.Fatal(err)
		}
		counters[i].name, counters[i].c = s.name, c
	}

	// One pass over a duplicated, shuffled stream feeds every sketch.
	s := stream.NewInterleaved(distinct, records, stream.DupZipf, 20260612)
	stream.ForEach(s, func(x uint64) {
		for _, c := range counters {
			c.c.AddUint64(x)
		}
	})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "sketch\testimate\trel.err\tmemory(bits)")
	for _, c := range counters {
		est := c.c.Estimate()
		fmt.Fprintf(w, "%s\t%.0f\t%+.2f%%\t%d\n",
			c.name, est, 100*(est/float64(distinct)-1), c.c.SizeBits())
	}
	w.Flush()

	fmt.Printf("\n(stream: %d records covering %d distinct items, Zipf-duplicated)\n", records, distinct)
	fmt.Println("note how the exact counter's memory is ~3 orders of magnitude larger —")
	fmt.Println("the gap that motivates sketching in the first place.")
}
