// Quickstart: count distinct items in a duplicated stream with an
// S-bitmap, compare against the exact answer, and show serialization.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	sbitmap "repro"
)

func main() {
	// Dimension the sketch: cardinalities up to one million, ±1% RRMSE.
	// Equation (7) of the paper makes this ~31.5 kilobits (< 4 KiB).
	sk, err := sbitmap.New(1e6, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S-bitmap dimensioned: %d bits for N=1e6 at ±%.1f%%\n\n",
		sk.SizeBits(), 100*sk.Epsilon())

	// Feed a stream with heavy duplication: 250k distinct user IDs, each
	// appearing 1-8 times (2M stream records overall).
	exact := sbitmap.NewExact()
	records := 0
	for user := uint64(0); user < 250_000; user++ {
		times := int(user%8) + 1
		for i := 0; i < times; i++ {
			sk.AddUint64(user)
			exact.AddUint64(user)
			records++
		}
	}

	est := sk.Estimate()
	truth := exact.Estimate()
	fmt.Printf("stream records:       %d\n", records)
	fmt.Printf("exact distinct users: %.0f (memory %d bits)\n", truth, exact.SizeBits())
	fmt.Printf("S-bitmap estimate:    %.0f (memory %d bits)\n", est, sk.SizeBits())
	fmt.Printf("relative error:       %+.3f%%\n\n", 100*(est/truth-1))

	// Sketches serialize; a receiver can estimate without the hash seed.
	blob, err := sk.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	restored, err := sbitmap.Unmarshal(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized to %d bytes; restored estimate %.0f\n", len(blob), restored.Estimate())

	// The same sketch is one declarative Spec away — the form CLI flags
	// and config files use. ParseSpec/String round-trip, and every Kind
	// (hll, loglog, fm, linearcount, ...) constructs the same way.
	spec, err := sbitmap.ParseSpec("sbitmap:n=1e6,eps=0.01")
	if err != nil {
		log.Fatal(err)
	}
	fromSpec, err := spec.New()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec %q builds the same sketch: %d bits\n", spec, fromSpec.SizeBits())

	// String keys work too (and AddString avoids the []byte conversion).
	words, _ := sbitmap.New(1e4, 0.03)
	for _, w := range []string{"to", "be", "or", "not", "to", "be"} {
		words.AddString(w)
	}
	fmt.Printf("\ndistinct words in 'to be or not to be': %.0f (exact: 4)\n", words.Estimate())
}
