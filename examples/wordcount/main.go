// Wordcount: the paper's Section 2.1 example — "if x_i is the i-th word in
// a book, then n is the number of unique words in the book" — plus the
// merge/serialize workflow a distributed word-count would use.
//
// Two "volumes" of a synthetic book are counted by independent workers
// with mergeable HyperLogLog sketches — worker 2 ships its sketch as a
// serialized snapshot, the way a distributed word-count would — while an
// S-bitmap counts the whole stream (demonstrating the one-pass,
// single-stream design point: the S-bitmap trades mergeability for
// scale-invariant accuracy).
//
// Run with: go run ./examples/wordcount
package main

import (
	"fmt"
	"log"

	sbitmap "repro"
	"repro/internal/stream"
)

func main() {
	const vocab = 60_000 // realistic book vocabulary
	const wordsPerVolume = 400_000

	// Worker sketches must share a configuration (and seed) to be merged
	// meaningfully; one Spec pins both down.
	workerSpec := sbitmap.MustSpec("hll:mbits=20480,seed=97") // 4096 registers
	worker1, err := workerSpec.New()
	if err != nil {
		log.Fatal(err)
	}
	worker2, err := workerSpec.New()
	if err != nil {
		log.Fatal(err)
	}

	// The S-bitmap sees the concatenated stream (single-pass design).
	whole, err := sbitmap.New(2*vocab, 0.01, sbitmap.WithSeed(97))
	if err != nil {
		log.Fatal(err)
	}
	truth := sbitmap.NewExact()

	// Volume 1 and volume 2 draw from the same vocabulary with Zipf token
	// frequencies, so their word sets overlap heavily (but not totally) —
	// the case where naive "count each, add the counts" fails and union
	// semantics matter.
	vol1 := stream.NewWordsShared(vocab, wordsPerVolume, 1, 101)
	for {
		w, ok := vol1.NextWord()
		if !ok {
			break
		}
		worker1.AddString(w)
		whole.AddString(w)
		truth.AddString(w)
	}
	vol1Distinct := vol1.DistinctSoFar()

	vol2 := stream.NewWordsShared(vocab, wordsPerVolume, 1, 202) // same vocabulary, fresh draws
	for {
		w, ok := vol2.NextWord()
		if !ok {
			break
		}
		worker2.AddString(w)
		whole.AddString(w)
		truth.AddString(w)
	}

	fmt.Printf("volume 1: %d tokens, %d distinct words (exact)\n", wordsPerVolume, vol1Distinct)
	fmt.Printf("volume 2: %d tokens\n\n", wordsPerVolume)

	naiveSum := worker1.Estimate() + worker2.Estimate()

	// Worker 2 ships its sketch; the coordinator restores and merges it.
	blob, err := sbitmap.Marshal(worker2)
	if err != nil {
		log.Fatal(err)
	}
	shipped, err := sbitmap.Unmarshal(blob, sbitmap.WithSeed(97))
	if err != nil {
		log.Fatal(err)
	}
	if err := sbitmap.Merge(worker1, shipped); err != nil {
		log.Fatal(err)
	}
	merged := worker1.Estimate()
	exactUnion := truth.Estimate()

	fmt.Printf("exact distinct words across both volumes: %.0f\n\n", exactUnion)
	fmt.Printf("HLL worker estimates added naively:  %.0f  (%+.1f%% — double-counts the overlap)\n",
		naiveSum, 100*(naiveSum/exactUnion-1))
	fmt.Printf("HLL sketches merged (worker 2 shipped as a %d-byte snapshot): %.0f  (%+.1f%%)\n",
		len(blob), merged, 100*(merged/exactUnion-1))
	fmt.Printf("S-bitmap over the whole stream:      %.0f  (%+.1f%%, with %d bits)\n",
		whole.Estimate(), 100*(whole.Estimate()/exactUnion-1), whole.SizeBits())

	fmt.Println("\ntakeaway: HLL merges (register-max is a union); the S-bitmap does not merge")
	fmt.Println("(sbitmap.Merge fails with ErrNotMergeable — partition and sum instead), but on")
	fmt.Println("a single stream it holds the same error from 1 word to the full book.")
}
