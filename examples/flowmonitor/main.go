// Flowmonitor: the paper's motivating application (Section 1) — per-minute
// distinct network-flow counting on a high-speed link during a worm
// outbreak, where flow-count spikes are the alarm signal.
//
// A fresh S-bitmap per minute counts distinct flows from packet streams
// with heavy duplication; a trivial threshold detector flags minutes whose
// flow count jumps an order of magnitude, emulating the worm-scan
// detection use case of Bu et al. (2006) cited in the paper.
//
// Run with: go run ./examples/flowmonitor
package main

import (
	"fmt"
	"log"
	"math"

	sbitmap "repro"
	"repro/internal/netflow"
	"repro/internal/stream"
)

func main() {
	// The paper's Section 7.1 configuration: N = 10^6, m = 8000 bits,
	// expected std dev ≈ 2.2% — written as the spec string an ops config
	// would carry, then narrowed to the concrete type for Epsilon().
	counter, err := sbitmap.MustSpec("sbitmap:n=1e6,mbits=8000").New()
	if err != nil {
		log.Fatal(err)
	}
	sk := counter.(*sbitmap.SBitmap)
	fmt.Printf("per-minute flow counter: %d bits, ±%.1f%% — monitoring link 1 during the outbreak\n\n",
		sk.SizeBits(), 100*sk.Epsilon())

	trace := netflow.Slammer(1, 2026)

	// Streaming loop: one sketch reset per minute, alarm on 4× the
	// trailing geometric-mean baseline.
	fmt.Println("minute  est.flows  true.flows  err%    status")
	baselineLog := math.Log(float64(trace.Counts[0]))
	alarms, shown := 0, 0
	for minute := 0; minute < netflow.SlammerMinutes; minute++ {
		sk.Reset()
		packets := 0
		stream.ForEach(trace.IntervalStream(minute), func(flowKey uint64) {
			sk.AddUint64(flowKey)
			packets++
		})
		est := sk.Estimate()
		truth := float64(trace.Counts[minute])

		status := ""
		if est > 4*math.Exp(baselineLog) {
			status = "ALARM: flow-count spike (worm scan?)"
			alarms++
		} else {
			// Update the baseline only on calm minutes.
			baselineLog = 0.97*baselineLog + 0.03*math.Log(est)
		}

		// Print a sample of minutes plus every alarm.
		if status != "" || minute%60 == 0 {
			fmt.Printf("%6d  %9.0f  %10.0f  %+5.2f  %s\n",
				minute, est, truth, 100*(est/truth-1), status)
			shown++
		}
	}
	fmt.Printf("\n%d alarmed minutes across %d hours; the sketch processed duplicated packet\n",
		alarms, netflow.SlammerMinutes/60)
	fmt.Printf("streams (~3 packets/flow) in %d bits per minute — the exact counter would\n", sk.SizeBits())
	fmt.Printf("have needed several megabits per minute at these rates.\n")
}
