package sbitmap_test

// This file is the benchmark face of the reproduction harness: one
// Benchmark per table/figure of the paper (each invocation regenerates the
// artifact at smoke fidelity and reports sketch updates/sec through the
// whole experiment pipeline), plus per-sketch update-throughput benches
// that back the paper's "similar or less computational cost" claim
// (Section 3, last paragraph).
//
// Full-fidelity regeneration is cmd/sbench's job (`sbench -run all -full`);
// benches keep b.N iterations meaningful by fixing the per-iteration work.

import (
	"fmt"
	"io"
	"testing"

	sbitmap "repro"
	"repro/internal/experiment"
)

// benchOptions keeps one bench iteration around a second of work.
func benchOptions() experiment.Options {
	return experiment.Options{Seed: 1, CellBudget: 150_000, MinReps: 10, MaxReps: 60}
}

// runExperiment is the shared body of the per-artifact benches.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }

func BenchmarkAsymptotics(b *testing.B) { runExperiment(b, "asymptotics") }
func BenchmarkTheoryExact(b *testing.B) { runExperiment(b, "theory_exact") }

func BenchmarkAblationRates(b *testing.B) { runExperiment(b, "ablation_rates") }
func BenchmarkAblationTrunc(b *testing.B) { runExperiment(b, "ablation_trunc") }
func BenchmarkAblationHash(b *testing.B)  { runExperiment(b, "ablation_hash") }
func BenchmarkAblationD(b *testing.B)     { runExperiment(b, "ablation_d") }

// --- update-throughput benches (the computational-cost comparison) ---

// benchCounters builds every sketch under the Section 7.1 configuration
// (m = 8000 bits, N = 10^6).
func benchCounters(b *testing.B) map[string]sbitmap.Counter {
	b.Helper()
	sb, err := sbitmap.NewWithMemory(8000, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	mr, err := sbitmap.NewMRBitmap(8000, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	return map[string]sbitmap.Counter{
		"SBitmap":     sb,
		"HyperLogLog": sbitmap.NewHyperLogLog(8000),
		"LogLog":      sbitmap.NewLogLog(8000),
		"MRBitmap":    mr,
		"LinearCount": sbitmap.NewLinearCounting(8000),
		"FM":          sbitmap.NewFM(8000),
	}
}

// BenchmarkUpdateDistinct measures Add cost on an all-distinct stream
// (every item is new — the worst case for bucket updates).
func BenchmarkUpdateDistinct(b *testing.B) {
	for name, c := range benchCounters(b) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.AddUint64(uint64(i))
			}
		})
	}
}

// BenchmarkUpdateDuplicates measures Add cost on an all-duplicate stream
// (the common case on real traffic: one hash, one probe, no write).
func BenchmarkUpdateDuplicates(b *testing.B) {
	for name, c := range benchCounters(b) {
		b.Run(name, func(b *testing.B) {
			for i := uint64(0); i < 100_000; i++ {
				c.AddUint64(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.AddUint64(uint64(i) % 100_000)
			}
		})
	}
}

// BenchmarkUpdateBytes measures the byte-key path with realistic key sizes
// (16-byte flow tuples).
func BenchmarkUpdateBytes(b *testing.B) {
	for name, c := range benchCounters(b) {
		b.Run(name, func(b *testing.B) {
			key := make([]byte, 16)
			b.ReportAllocs()
			b.SetBytes(16)
			for i := 0; i < b.N; i++ {
				key[0] = byte(i)
				key[1] = byte(i >> 8)
				key[2] = byte(i >> 16)
				c.Add(key)
			}
		})
	}
}

// BenchmarkEstimate measures estimate extraction (done once per reporting
// interval in production).
func BenchmarkEstimate(b *testing.B) {
	for name, c := range benchCounters(b) {
		b.Run(name, func(b *testing.B) {
			for i := uint64(0); i < 100_000; i++ {
				c.AddUint64(i)
			}
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = c.Estimate()
			}
			_ = sink
		})
	}
}

// BenchmarkDimensioning measures the one-time configuration cost of
// solving Equation (7) and building the rate/estimator tables.
func BenchmarkDimensioning(b *testing.B) {
	for _, n := range []float64{1e4, 1e6} {
		b.Run(fmt.Sprintf("N=%.0e", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sbitmap.New(n, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMarshal measures sketch serialization round-trips.
func BenchmarkMarshal(b *testing.B) {
	sk, err := sbitmap.NewWithMemory(8000, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 100_000; i++ {
		sk.AddUint64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blob, err := sk.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sbitmap.Unmarshal(blob); err != nil {
			b.Fatal(err)
		}
	}
}
