package sbitmap

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Spec is the declarative face of the module: one value that names a
// sketch kind and dimensions it from the paper's shared (memory, N, ε)
// vocabulary. The same Spec works as a library call (Spec.New), a CLI flag
// or config-file string (ParseSpec / Spec.String), and a decorator input
// (NewShardedSpec, NewWindowedSpec), so every layer of a deployment names
// sketches the same way.
//
// Dimensioning rules:
//
//   - sbitmap: exactly two of {N, Eps, MemoryBits} — the third follows from
//     Equation (7) of the paper, as in the New / NewWithMemory constructors
//     and the sbdim tool.
//   - hll, loglog, fm, linearcount, adaptive: a memory budget. If
//     MemoryBits is zero, the budget defaults to what an S-bitmap needs for
//     (N, Eps) — the like-for-like accounting of the paper's Section 6.2.
//   - virtualbitmap, mrbitmap: a budget (as above) plus N, which centers
//     (respectively bounds) their accurate band.
//   - exact: no dimensioning; every field except Kind/Seed/Hash is ignored.
type Spec struct {
	// Kind selects the sketch algorithm.
	Kind Kind
	// N is the cardinality upper bound the sketch is dimensioned for.
	N float64
	// Eps is the target relative error (RRMSE) used for dimensioning.
	Eps float64
	// MemoryBits is an explicit memory budget in bits; zero derives the
	// budget from (N, Eps) where the kind needs one.
	MemoryBits int
	// Seed selects the hash seed; zero means the default seed 1.
	Seed uint64
	// Hash selects the hash family: "" or "mixer" (default),
	// "carterwegman", or "tabulation".
	Hash string
	// Resolution limits S-bitmap sampling decisions to d bits of hash
	// (the paper's Algorithm 2 uses d = 30); zero means the default 64.
	// Only valid for Kind sbitmap.
	Resolution uint
	// Window, when non-zero, is the sub-window width of the
	// "/windowed(width=…,ring=…)" modifier: a keyed Store built from the
	// Spec materializes per key a ring of Ring sub-window sketches of
	// width Window each and answers EstimateWindow by merging the
	// covering sub-windows on query. Zero means no time windowing.
	Window time.Duration
	// Ring is the number of sub-windows retained per key; the sliding
	// retention horizon is Window×Ring. Zero means DefaultWindowRing.
	// Only valid together with Window.
	Ring int
}

// DefaultWindowRing is the per-key sub-window count used when a
// windowed(...) modifier omits ring.
const DefaultWindowRing = 5

// Kind names a sketch algorithm constructible from a Spec.
type Kind string

// The sketch kinds of the module: the paper's S-bitmap plus every baseline
// of its Section 6 comparison and the exact reference counter.
const (
	KindSBitmap       Kind = "sbitmap"
	KindHLL           Kind = "hll"
	KindLogLog        Kind = "loglog"
	KindFM            Kind = "fm"
	KindLinearCount   Kind = "linearcount"
	KindVirtualBitmap Kind = "virtualbitmap"
	KindMRBitmap      Kind = "mrbitmap"
	KindAdaptive      Kind = "adaptive"
	KindExact         Kind = "exact"
)

// kindAliases maps accepted spellings (canonical names included) to
// canonical kinds, so CLI flags can use the short names of the paper's
// tables.
var kindAliases = map[string]Kind{
	"sbitmap":       KindSBitmap,
	"sb":            KindSBitmap,
	"hll":           KindHLL,
	"hyperloglog":   KindHLL,
	"loglog":        KindLogLog,
	"llog":          KindLogLog,
	"fm":            KindFM,
	"pcsa":          KindFM,
	"linearcount":   KindLinearCount,
	"lc":            KindLinearCount,
	"virtualbitmap": KindVirtualBitmap,
	"vb":            KindVirtualBitmap,
	"mrbitmap":      KindMRBitmap,
	"mr":            KindMRBitmap,
	"adaptive":      KindAdaptive,
	"exact":         KindExact,
}

// Kinds returns every constructible kind in deterministic order.
func Kinds() []Kind {
	return []Kind{
		KindSBitmap, KindHLL, KindLogLog, KindFM, KindLinearCount,
		KindVirtualBitmap, KindMRBitmap, KindAdaptive, KindExact,
	}
}

// ParseKind resolves a kind name or alias ("hll", "hyperloglog", "mr", …).
func ParseKind(name string) (Kind, error) {
	k, ok := kindAliases[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		known := make([]string, 0, len(kindAliases))
		for a := range kindAliases {
			known = append(known, a)
		}
		sort.Strings(known)
		return "", fmt.Errorf("sbitmap: unknown sketch kind %q (known: %s)", name, strings.Join(known, ", "))
	}
	return k, nil
}

// ParseSpec parses the string form of a Spec:
//
//	kind[:key=value[,key=value...]][/windowed(width=DUR[,ring=K])]
//
// e.g. "sbitmap:n=1e6,eps=0.01", "hll:mbits=4096,seed=7", "exact", or
// "hll:mbits=2048/windowed(width=1m,ring=5)". Keys are n, eps, mbits,
// seed, hash, and d (sampling resolution); kind accepts the aliases of
// ParseKind. The windowed(...) modifier takes a width duration (required,
// time.ParseDuration syntax) and a ring size (optional, default
// DefaultWindowRing). ParseSpec(s.String()) == s for every valid Spec.
func ParseSpec(s string) (Spec, error) {
	base, modifier, hasModifier := strings.Cut(s, "/")
	kindPart, params, _ := strings.Cut(base, ":")
	kind, err := ParseKind(kindPart)
	if err != nil {
		return Spec{}, err
	}
	spec := Spec{Kind: kind}
	if hasModifier {
		if err := spec.parseWindowModifier(modifier); err != nil {
			return Spec{}, err
		}
	}
	if strings.TrimSpace(params) == "" {
		return spec, nil
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if !ok || val == "" {
			return Spec{}, fmt.Errorf("sbitmap: spec parameter %q is not key=value", kv)
		}
		if seen[key] {
			// Silently letting the last duplicate win would make e.g.
			// "hll:mbits=64,mbits=128" a quiet configuration surprise.
			return Spec{}, fmt.Errorf("sbitmap: duplicate spec parameter %q", key)
		}
		seen[key] = true
		switch key {
		case "n":
			if spec.N, err = strconv.ParseFloat(val, 64); err != nil || !(spec.N > 0) || math.IsInf(spec.N, 0) {
				return Spec{}, fmt.Errorf("sbitmap: spec n=%q is not a positive number", val)
			}
		case "eps":
			if spec.Eps, err = strconv.ParseFloat(val, 64); err != nil || !(spec.Eps > 0) || math.IsInf(spec.Eps, 0) {
				return Spec{}, fmt.Errorf("sbitmap: spec eps=%q is not a positive number", val)
			}
		case "mbits":
			// Parsed as float so budgets can be written "4e3".
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || !(f > 0) || f != math.Trunc(f) || f > math.MaxInt32 {
				return Spec{}, fmt.Errorf("sbitmap: spec mbits=%q is not a positive bit count", val)
			}
			spec.MemoryBits = int(f)
		case "seed":
			if spec.Seed, err = strconv.ParseUint(val, 0, 64); err != nil {
				return Spec{}, fmt.Errorf("sbitmap: spec seed=%q is not an unsigned integer", val)
			}
		case "hash":
			spec.Hash = strings.ToLower(val)
			if _, err := hashOption(spec.Hash); err != nil {
				return Spec{}, err
			}
		case "d":
			d, err := strconv.ParseUint(val, 10, 8)
			if err != nil || d < 1 || d > 64 {
				return Spec{}, fmt.Errorf("sbitmap: spec d=%q is not a resolution in [1, 64]", val)
			}
			spec.Resolution = uint(d)
		default:
			return Spec{}, fmt.Errorf("sbitmap: unknown spec parameter %q (known: n, eps, mbits, seed, hash, d)", key)
		}
	}
	return spec, nil
}

// parseWindowModifier parses the "windowed(width=…,ring=…)" suffix of a
// spec string into the receiver's Window/Ring fields.
func (s *Spec) parseWindowModifier(mod string) error {
	body, ok := strings.CutPrefix(strings.TrimSpace(mod), "windowed(")
	if !ok {
		return fmt.Errorf("sbitmap: unknown spec modifier %q (known: windowed(width=…,ring=…))", mod)
	}
	body, ok = strings.CutSuffix(body, ")")
	if !ok {
		return fmt.Errorf("sbitmap: spec modifier %q is missing its closing parenthesis", mod)
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(body, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if !ok || val == "" {
			return fmt.Errorf("sbitmap: windowed parameter %q is not key=value", kv)
		}
		if seen[key] {
			return fmt.Errorf("sbitmap: duplicate windowed parameter %q", key)
		}
		seen[key] = true
		switch key {
		case "width":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return fmt.Errorf("sbitmap: windowed width=%q is not a positive duration", val)
			}
			s.Window = d
		case "ring":
			r, err := strconv.Atoi(val)
			if err != nil || r < 1 || r > maxWindowRing {
				return fmt.Errorf("sbitmap: windowed ring=%q is not an integer in [1, %d]", val, maxWindowRing)
			}
			s.Ring = r
		default:
			return fmt.Errorf("sbitmap: unknown windowed parameter %q (known: width, ring)", key)
		}
	}
	if s.Window == 0 {
		return fmt.Errorf("sbitmap: windowed modifier needs a width")
	}
	if s.Ring == 0 {
		s.Ring = DefaultWindowRing
	}
	if s.Window > math.MaxInt64/time.Duration(s.Ring) {
		return fmt.Errorf("sbitmap: windowed retention %s×%d overflows a duration", s.Window, s.Ring)
	}
	return nil
}

// MustSpec is ParseSpec for compile-time-constant strings; it panics on
// error.
func MustSpec(s string) Spec {
	spec, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// String renders the Spec in the canonical form accepted by ParseSpec,
// omitting zero-valued (defaulted) fields.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(string(s.Kind))
	sep := byte(':')
	put := func(key, val string) {
		b.WriteByte(sep)
		sep = ','
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	if s.N > 0 {
		put("n", strconv.FormatFloat(s.N, 'g', -1, 64))
	}
	if s.Eps > 0 {
		put("eps", strconv.FormatFloat(s.Eps, 'g', -1, 64))
	}
	if s.MemoryBits > 0 {
		put("mbits", strconv.Itoa(s.MemoryBits))
	}
	if s.Seed != 0 {
		put("seed", strconv.FormatUint(s.Seed, 10))
	}
	if s.Hash != "" {
		put("hash", s.Hash)
	}
	if s.Resolution != 0 {
		put("d", strconv.FormatUint(uint64(s.Resolution), 10))
	}
	if s.Window != 0 {
		b.WriteString("/windowed(width=")
		b.WriteString(s.Window.String())
		if s.Ring != 0 {
			b.WriteString(",ring=")
			b.WriteString(strconv.Itoa(s.Ring))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// maxWindowRing bounds the per-key sub-window count; beyond this the
// per-key footprint, not the windowing, is the problem.
const maxWindowRing = 1 << 16

// Windowed reports whether the Spec carries a windowed(...) modifier,
// i.e. whether a Store built from it keeps per-key sub-window rings.
func (s Spec) Windowed() bool { return s.Window != 0 }

// Retention returns the sliding retention horizon of a windowed Spec:
// Window × Ring (Ring defaulting to DefaultWindowRing). Records older
// than the horizon are no longer queryable; zero for unwindowed specs.
func (s Spec) Retention() time.Duration {
	if s.Window == 0 {
		return 0
	}
	r := s.Ring
	if r == 0 {
		r = DefaultWindowRing
	}
	return s.Window * time.Duration(r)
}

// base strips the windowed modifier: the Spec of one sub-window sketch.
func (s Spec) base() Spec {
	s.Window, s.Ring = 0, 0
	return s
}

// hashOption maps a hash-family name to its Option; "" and "mixer" mean
// the default (no option).
func hashOption(name string) (Option, error) {
	switch name {
	case "", "mixer":
		return nil, nil
	case "carterwegman", "cw":
		return WithCarterWegman(), nil
	case "tabulation":
		return WithTabulation(), nil
	default:
		return nil, fmt.Errorf("sbitmap: unknown hash family %q (known: mixer, carterwegman, tabulation)", name)
	}
}

// options materializes the Spec's seed/hash/resolution fields as
// constructor options.
func (s Spec) options() ([]Option, error) {
	var opts []Option
	if s.Seed != 0 {
		opts = append(opts, WithSeed(s.Seed))
	}
	hashOpt, err := hashOption(s.Hash)
	if err != nil {
		return nil, err
	}
	if hashOpt != nil {
		opts = append(opts, hashOpt)
	}
	if s.Resolution != 0 {
		if s.Kind != KindSBitmap {
			return nil, fmt.Errorf("sbitmap: spec %s: sampling resolution d applies only to sbitmap", s.Kind)
		}
		opts = append(opts, WithSamplingResolution(s.Resolution))
	}
	return opts, nil
}

// budget returns the Spec's memory budget in bits: MemoryBits when set,
// otherwise the S-bitmap-equivalent budget for (N, Eps) — the shared
// accounting under which the paper's Section 6.2 compares all sketches.
func (s Spec) budget() (int, error) {
	if s.MemoryBits > 0 {
		return s.MemoryBits, nil
	}
	if s.N > 0 && s.Eps > 0 {
		return Memory(s.N, s.Eps)
	}
	return 0, fmt.Errorf("sbitmap: spec %s needs mbits or both n and eps to fix a memory budget", s.Kind)
}

// New constructs the counter the Spec describes. A windowed Spec does
// not describe a single counter — build a keyed Store from it instead.
func (s Spec) New() (Counter, error) {
	if s.Window != 0 {
		return nil, fmt.Errorf("sbitmap: spec %s is windowed; build a keyed Store from it (NewStore / NewStoreUint64)", s)
	}
	if s.Ring != 0 {
		return nil, fmt.Errorf("sbitmap: spec ring=%d without a window width", s.Ring)
	}
	opts, err := s.options()
	if err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindSBitmap:
		return s.newSBitmap(opts)
	case KindHLL:
		b, err := s.budget()
		if err != nil {
			return nil, err
		}
		return NewHyperLogLog(b, opts...), nil
	case KindLogLog:
		b, err := s.budget()
		if err != nil {
			return nil, err
		}
		return NewLogLog(b, opts...), nil
	case KindFM:
		b, err := s.budget()
		if err != nil {
			return nil, err
		}
		return NewFM(b, opts...), nil
	case KindLinearCount:
		b, err := s.budget()
		if err != nil {
			return nil, err
		}
		return NewLinearCounting(b, opts...), nil
	case KindAdaptive:
		b, err := s.budget()
		if err != nil {
			return nil, err
		}
		return NewAdaptiveSampler(b, opts...), nil
	case KindVirtualBitmap:
		if !(s.N > 0) {
			return nil, fmt.Errorf("sbitmap: spec virtualbitmap needs n (the center of its accurate band)")
		}
		b, err := s.budget()
		if err != nil {
			return nil, err
		}
		return NewVirtualBitmap(b, s.N, opts...), nil
	case KindMRBitmap:
		if !(s.N > 0) {
			return nil, fmt.Errorf("sbitmap: spec mrbitmap needs n (its coverage bound)")
		}
		b, err := s.budget()
		if err != nil {
			return nil, err
		}
		return NewMRBitmap(b, s.N, opts...)
	case KindExact:
		return NewExact(), nil
	case "":
		return nil, fmt.Errorf("sbitmap: spec has no kind")
	default:
		return nil, fmt.Errorf("sbitmap: unknown sketch kind %q", s.Kind)
	}
}

// newSBitmap dimensions an S-bitmap from exactly two of {N, Eps,
// MemoryBits}, mirroring the sbdim calculator.
func (s Spec) newSBitmap(opts []Option) (Counter, error) {
	cfg, err := s.sbitmapConfig()
	if err != nil {
		return nil, err
	}
	return fromConfig(cfg, opts...)
}

// sbitmapConfig resolves the Spec's S-bitmap dimensioning — the pure math
// of newSBitmap, shared with the arena allocator so a keyed Store computes
// the Config once instead of once per materialized key.
func (s Spec) sbitmapConfig() (*core.Config, error) {
	given := 0
	for _, set := range []bool{s.N > 0, s.Eps > 0, s.MemoryBits > 0} {
		if set {
			given++
		}
	}
	if given != 2 {
		return nil, fmt.Errorf("sbitmap: spec sbitmap needs exactly two of n, eps, mbits (got %d)", given)
	}
	switch {
	case s.N > 0 && s.Eps > 0:
		return core.NewConfigNE(s.N, s.Eps)
	case s.MemoryBits > 0 && s.N > 0:
		return core.NewConfigMN(s.MemoryBits, s.N)
	default: // MemoryBits + Eps: derive N from Equation (6) via C = 1 + ε⁻².
		return core.NewConfigMC(s.MemoryBits, 1+1/(s.Eps*s.Eps))
	}
}
