package sbitmap

import (
	"fmt"
	"testing"
)

// TestStoreStripeSnapshotRoundtrip: a full MarshalStripes pass restored
// stripe-by-stripe rebuilds a store bit-identical (MarshalBinary) to the
// original, even across a different stripe count.
func TestStoreStripeSnapshotRoundtrip(t *testing.T) {
	spec := MustSpec("sbitmap:n=1e4,eps=0.1")
	for _, restoreStripes := range []int{16, 64, 128} {
		t.Run(fmt.Sprintf("stripes=%d", restoreStripes), func(t *testing.T) {
			src, err := NewStore[uint64](spec, WithStripes(64))
			if err != nil {
				t.Fatal(err)
			}
			keys, items := keyedWorkload(200, 5000, 11)
			src.AddBatch64(keys, items)

			blobs, cut, err := src.MarshalStripes(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(blobs) != 64 {
				t.Fatalf("full pass encoded %d stripes, want 64", len(blobs))
			}
			if cut != src.Generation() {
				t.Fatalf("cut %d != generation %d", cut, src.Generation())
			}

			dst, err := NewStore[uint64](spec, WithStripes(restoreStripes))
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, blob := range blobs {
				n, err := dst.RestoreStripe(blob)
				if err != nil {
					t.Fatal(err)
				}
				total += n
			}
			if total != src.Len() || dst.Len() != src.Len() {
				t.Fatalf("restored %d keys (store holds %d), want %d", total, dst.Len(), src.Len())
			}
			assertStoresIdentical(t, src, dst)
		})
	}
}

func TestStoreStripeSnapshotStringKeys(t *testing.T) {
	spec := MustSpec("hll:mbits=1536")
	src, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		src.AddString(fmt.Sprintf("key-%d", i%40), fmt.Sprintf("item-%d", i))
	}
	blobs, _, err := src.MarshalStripes(0)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := NewStore[string](spec)
	for _, blob := range blobs {
		if _, err := dst.RestoreStripe(blob); err != nil {
			t.Fatal(err)
		}
	}
	assertStoresIdentical(t, src, dst)
}

// TestStoreDirtyStripeTracking: an incremental pass encodes only stripes
// touched since the cut, and the cost therefore scales with the write
// footprint, not the key population.
func TestStoreDirtyStripeTracking(t *testing.T) {
	spec := MustSpec("sbitmap:n=1e4,eps=0.1")
	s, err := NewStore[uint64](spec, WithStripes(64))
	if err != nil {
		t.Fatal(err)
	}
	keys, items := keyedWorkload(500, 20000, 3)
	s.AddBatch64(keys, items)

	// Full pass establishes the baseline cut.
	full, cut, err := s.MarshalStripes(0)
	if err != nil {
		t.Fatal(err)
	}
	fullBytes := 0
	for _, b := range full {
		fullBytes += len(b)
	}

	// Nothing touched since the cut: the incremental pass is empty.
	if d := s.DirtyStripes(cut); d != 0 {
		t.Fatalf("%d stripes dirty immediately after a cut", d)
	}
	inc, cut2, err := s.MarshalStripes(cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != 0 {
		t.Fatalf("quiescent incremental pass encoded %d stripes", len(inc))
	}

	// Touch one key: exactly one stripe re-encodes, far below the full
	// pass in bytes.
	s.AddUint64(keys[0], 42)
	if d := s.DirtyStripes(cut2); d != 1 {
		t.Fatalf("%d stripes dirty after one add, want 1", d)
	}
	inc2, _, err := s.MarshalStripes(cut2)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc2) != 1 {
		t.Fatalf("incremental pass encoded %d stripes, want 1", len(inc2))
	}
	incBytes := 0
	for _, b := range inc2 {
		incBytes += len(b)
	}
	if incBytes*4 > fullBytes {
		t.Fatalf("single-stripe increment %d bytes vs full %d: not scaling with dirt", incBytes, fullBytes)
	}
}

// TestStoreDirtyStripeMutationPaths: every mutating entry point marks its
// stripe dirty — including eviction, which victimizes stripes other than
// the one being inserted into.
func TestStoreDirtyStripeMutationPaths(t *testing.T) {
	spec := MustSpec("sbitmap:n=1e4,eps=0.1")
	newQuiesced := func(t *testing.T) (*Store[uint64], uint64) {
		s, err := NewStore[uint64](spec, WithStripes(8))
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 100; i++ {
			s.AddUint64(i, i)
		}
		_, cut, err := s.MarshalStripes(0)
		if err != nil {
			t.Fatal(err)
		}
		return s, cut
	}
	t.Run("remove", func(t *testing.T) {
		s, cut := newQuiesced(t)
		if !s.Remove(5) {
			t.Fatal("key 5 missing")
		}
		if d := s.DirtyStripes(cut); d != 1 {
			t.Fatalf("Remove dirtied %d stripes, want 1", d)
		}
	})
	t.Run("reset", func(t *testing.T) {
		s, cut := newQuiesced(t)
		s.Reset()
		if d := s.DirtyStripes(cut); d != s.StripeCount() {
			t.Fatalf("Reset dirtied %d of %d stripes", d, s.StripeCount())
		}
	})
	t.Run("merge", func(t *testing.T) {
		mergeable := MustSpec("hll:mbits=1536")
		s, err := NewStore[uint64](mergeable, WithStripes(8))
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 100; i++ {
			s.AddUint64(i, i)
		}
		_, cut, err := s.MarshalStripes(0)
		if err != nil {
			t.Fatal(err)
		}
		other, _ := NewStore[uint64](mergeable, WithStripes(8))
		other.AddUint64(7, 99)
		if err := s.Merge(other); err != nil {
			t.Fatal(err)
		}
		if d := s.DirtyStripes(cut); d != 1 {
			t.Fatalf("Merge dirtied %d stripes, want 1", d)
		}
	})
	t.Run("eviction marks victim stripe", func(t *testing.T) {
		s, err := NewStore[uint64](spec, WithStripes(8), WithMaxKeys(50))
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 50; i++ {
			s.AddUint64(i, i)
		}
		_, cut, err := s.MarshalStripes(0)
		if err != nil {
			t.Fatal(err)
		}
		// The 51st key evicts some victim; both the victim's stripe and
		// the inserted key's stripe must re-encode, and restoring the
		// incremental pass on top of the full one must reproduce the
		// store exactly.
		s.AddUint64(999_999, 1)
		if d := s.DirtyStripes(cut); d < 1 {
			t.Fatal("eviction left no stripe dirty")
		}
		inc, _, err := s.MarshalStripes(cut)
		if err != nil {
			t.Fatal(err)
		}
		if len(inc) == 0 {
			t.Fatal("eviction produced an empty incremental pass")
		}
	})
}

// TestStoreSetGeneration: a restore fast-forwarded to the manifest's
// generation stays clean until mutated, then dirties normally.
func TestStoreSetGeneration(t *testing.T) {
	spec := MustSpec("sbitmap:n=1e4,eps=0.1")
	src, _ := NewStore[uint64](spec)
	src.AddUint64(1, 1)
	blobs, cut, err := src.MarshalStripes(0)
	if err != nil {
		t.Fatal(err)
	}

	dst, _ := NewStore[uint64](spec)
	for _, b := range blobs {
		if _, err := dst.RestoreStripe(b); err != nil {
			t.Fatal(err)
		}
	}
	dst.SetGeneration(cut)
	if g := dst.Generation(); g != cut {
		t.Fatalf("generation %d after SetGeneration(%d)", g, cut)
	}
	if d := dst.DirtyStripes(cut); d != 0 {
		t.Fatalf("restored store has %d dirty stripes before any mutation", d)
	}
	dst.AddUint64(2, 2)
	if d := dst.DirtyStripes(cut); d != 1 {
		t.Fatalf("post-restore add dirtied %d stripes, want 1", d)
	}
}

func TestRestoreStripeRejects(t *testing.T) {
	spec := MustSpec("sbitmap:n=1e4,eps=0.1")
	src, _ := NewStore[uint64](spec)
	for i := uint64(0); i < 10; i++ {
		src.AddUint64(i, i)
	}
	blobs, _, err := src.MarshalStripes(0)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	for _, b := range blobs {
		if len(b) > stripeSnapHeader { // a stripe that actually holds keys
			blob = b
			break
		}
	}

	t.Run("short header", func(t *testing.T) {
		s, _ := NewStore[uint64](spec)
		if _, err := s.RestoreStripe(blob[:5]); err == nil {
			t.Fatal("short blob accepted")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		s, _ := NewStore[uint64](spec)
		bad := append([]byte("XXXX"), blob[4:]...)
		if _, err := s.RestoreStripe(bad); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("key type mismatch", func(t *testing.T) {
		s, _ := NewStore[string](spec)
		if _, err := s.RestoreStripe(blob); err == nil {
			t.Fatal("uint64 stripe restored into string store")
		}
	})
	t.Run("truncated entries", func(t *testing.T) {
		s, _ := NewStore[uint64](spec)
		if _, err := s.RestoreStripe(blob[:len(blob)-3]); err == nil {
			t.Fatal("truncated blob accepted")
		}
	})
	t.Run("duplicate key across restores", func(t *testing.T) {
		s, _ := NewStore[uint64](spec)
		if _, err := s.RestoreStripe(blob); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RestoreStripe(blob); err == nil {
			t.Fatal("re-restoring the same stripe accepted")
		}
	})
	t.Run("over key limit", func(t *testing.T) {
		s, err := NewStore[uint64](spec, WithMaxKeys(1))
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, b := range blobs {
			if _, err := s.RestoreStripe(b); err != nil {
				ok = false
				break
			}
		}
		if ok {
			t.Fatal("restore past WithMaxKeys accepted")
		}
	})
}
