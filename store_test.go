package sbitmap

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/xrand"
)

// storeTestSpecs dimensions one modest per-key counter per kind; keyed
// stores are exactly the "millions of tiny sketches" workload, so the
// per-key budgets stay small.
func storeTestSpecs() []Spec {
	return []Spec{
		MustSpec("sbitmap:n=1e4,eps=0.1"),
		MustSpec("hll:mbits=1536"),
		MustSpec("loglog:mbits=1536"),
		MustSpec("fm:mbits=1024"),
		MustSpec("linearcount:mbits=4000"),
		MustSpec("virtualbitmap:n=1e4,mbits=2000"),
		MustSpec("mrbitmap:n=1e4,mbits=4000"),
		MustSpec("adaptive:mbits=4096"),
		MustSpec("exact"),
	}
}

// keyedWorkload returns a deterministic keyed record batch: nRecs records
// over nKeys keys with duplicated items, adversarially interleaved.
func keyedWorkload(nKeys, nRecs int, seed uint64) (keys []uint64, items []uint64) {
	r := xrand.New(seed)
	keys = make([]uint64, nRecs)
	items = make([]uint64, nRecs)
	for i := range keys {
		k := uint64(r.Intn(nKeys))
		keys[i] = xrand.Mix64(0xfee1 + k)
		// Small per-key item universe so duplicates actually occur.
		items[i] = xrand.Mix64(keys[i] ^ uint64(r.Intn(50)))
	}
	return keys, items
}

func TestStoreBatchEquivalenceAllKinds(t *testing.T) {
	// Acceptance criterion: keyed-batch ingestion is bit-identical to
	// per-item ingestion for every kind. Two stores ingest the same
	// records — one item at a time, one in batches of mixed sizes — and
	// must marshal to identical bytes.
	keys, items := keyedWorkload(37, 4000, 7)
	strKeys := make([]string, len(keys))
	strItems := make([]string, len(items))
	for i := range keys {
		strKeys[i] = fmt.Sprintf("key-%x", keys[i])
		strItems[i] = fmt.Sprintf("item-%x", items[i])
	}
	for _, spec := range storeTestSpecs() {
		t.Run(string(spec.Kind)+"/uint64", func(t *testing.T) {
			one, err := NewStore[uint64](spec, WithStripes(7))
			if err != nil {
				t.Fatal(err)
			}
			batch, err := NewStore[uint64](spec, WithStripes(7))
			if err != nil {
				t.Fatal(err)
			}
			oneChanged := 0
			for i := range keys {
				if one.AddUint64(keys[i], items[i]) {
					oneChanged++
				}
			}
			batchChanged := 0
			for i := 0; i < len(keys); {
				end := min(i+257, len(keys))
				batchChanged += batch.AddBatch64(keys[i:end], items[i:end])
				i = end
			}
			if oneChanged != batchChanged {
				t.Errorf("changed counts: per-item %d, batch %d", oneChanged, batchChanged)
			}
			assertStoresIdentical(t, one, batch)
		})
		t.Run(string(spec.Kind)+"/string", func(t *testing.T) {
			one, err := NewStore[string](spec)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := NewStore[string](spec)
			if err != nil {
				t.Fatal(err)
			}
			oneChanged := 0
			for i := range strKeys {
				if one.AddString(strKeys[i], strItems[i]) {
					oneChanged++
				}
			}
			batchChanged := 0
			for i := 0; i < len(strKeys); {
				end := min(i+311, len(strKeys))
				batchChanged += batch.AddBatchString(strKeys[i:end], strItems[i:end])
				i = end
			}
			if oneChanged != batchChanged {
				t.Errorf("changed counts: per-item %d, batch %d", oneChanged, batchChanged)
			}
			assertStoresIdentical(t, one, batch)
		})
	}
}

// assertStoresIdentical requires the stores to hold the same keys with
// bit-identical counter states.
func assertStoresIdentical[K StoreKey](t *testing.T, a, b *Store[K]) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("key counts differ: %d vs %d", a.Len(), b.Len())
	}
	a.ForEach(func(key K, c Counter) bool {
		blobA, err := Marshal(c)
		if err != nil {
			t.Fatalf("key %v: %v", key, err)
		}
		// Look the key up without Store methods (ForEach holds the
		// stripe lock of a, not b — b is a different store, no deadlock).
		estB, ok := b.Estimate(key)
		if !ok {
			t.Fatalf("key %v missing from second store", key)
		}
		st := &b.stripes[b.stripeIndex(b.hashKey(key))]
		blobB, err := Marshal(st.m[key])
		if err != nil {
			t.Fatalf("key %v: %v", key, err)
		}
		if !bytes.Equal(blobA, blobB) {
			t.Fatalf("key %v: counter states differ (%d vs %d bytes)", key, len(blobA), len(blobB))
		}
		if estA := c.Estimate(); estA != estB {
			t.Fatalf("key %v: estimates differ: %v vs %v", key, estA, estB)
		}
		return true
	})
}

func TestStoreEstimateAccuracy(t *testing.T) {
	// Per-key estimates must track per-key ground truth.
	st, err := NewStore[uint64](MustSpec("sbitmap:n=1e5,eps=0.05"))
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]int{10: 100, 20: 5000, 30: 40000, 40: 1}
	for key, n := range truth {
		for i := 0; i < n; i++ {
			item := key<<32 + uint64(i%((n+1)/2+1)) // duplicates included
			st.AddUint64(key, xrand.Mix64(item))
		}
	}
	if st.Len() != len(truth) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(truth))
	}
	for key, n := range truth {
		distinct := float64(n%((n+1)/2+1) + (n+1)/2)
		_ = distinct // exact dup math is fiddly; bound loosely below
		est, ok := st.Estimate(key)
		if !ok {
			t.Fatalf("key %d missing", key)
		}
		lo, hi := 0.5*float64((n+1)/2), 1.6*float64(n)
		if est < lo || est > hi {
			t.Errorf("key %d: estimate %.0f outside [%.0f, %.0f] (n=%d)", key, est, lo, hi, n)
		}
	}
	if _, ok := st.Estimate(99); ok {
		t.Error("estimate for unseen key reported ok")
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	// Acceptance criterion: snapshot → restore → identical estimates for
	// every key, for uint64 and string keys, and the restored store keeps
	// counting identically (the spec string carries seed and hash).
	for _, spec := range []Spec{
		MustSpec("sbitmap:n=1e4,eps=0.1,seed=9"),
		MustSpec("hll:mbits=1536,hash=tabulation"),
		MustSpec("exact"),
	} {
		keys, items := keyedWorkload(23, 1500, 11)
		st, err := NewStore[uint64](spec, WithStripes(5))
		if err != nil {
			t.Fatal(err)
		}
		st.AddBatch64(keys, items)
		blob, err := st.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalStore[uint64](blob)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got.Spec() != spec {
			t.Errorf("restored spec %+v, want %+v", got.Spec(), spec)
		}
		assertStoresIdentical(t, st, got)

		// Continued ingestion must stay bit-identical: same hash config.
		more, moreItems := keyedWorkload(23, 500, 13)
		st.AddBatch64(more, moreItems)
		got.AddBatch64(more, moreItems)
		assertStoresIdentical(t, st, got)

		// Marshal also routes through the package-level Marshal, and
		// Unmarshal refuses it with direction to UnmarshalStore.
		if _, err := Marshal(st); err != nil {
			t.Errorf("Marshal(store): %v", err)
		}
		if _, err := Unmarshal(blob); err == nil {
			t.Error("Unmarshal accepted a store snapshot")
		}
	}

	// String keys round-trip byte-for-byte (incl. empty and non-UTF8).
	ss, err := NewStore[string](MustSpec("exact"))
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{"", "alpha", "k\x00\xff", "日本"}
	for i, k := range wantKeys {
		ss.AddString(k, fmt.Sprintf("item%d", i))
		ss.AddString(k, "shared")
	}
	blob, err := ss.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalStore[string](blob)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresIdentical(t, ss, back)
	for _, k := range wantKeys {
		if est, ok := back.Estimate(k); !ok || est != 2 {
			t.Errorf("key %q: estimate %v ok=%v, want 2", k, est, ok)
		}
	}

	// Key-type mismatch is refused.
	if _, err := UnmarshalStore[uint64](blob); err == nil {
		t.Error("UnmarshalStore[uint64] accepted string-keyed snapshot")
	}

	// A restore limit below the snapshot's key count is refused rather
	// than silently dropping keys; an adequate limit restores fine.
	if _, err := UnmarshalStore[string](blob, WithMaxKeys(2)); err == nil {
		t.Error("UnmarshalStore accepted a limit below the snapshot's key count")
	}
	limited, err := UnmarshalStore[string](blob, WithMaxKeys(len(wantKeys)))
	if err != nil {
		t.Fatalf("restore at exact limit: %v", err)
	}
	if limited.Len() != len(wantKeys) {
		t.Errorf("restored %d keys, want %d", limited.Len(), len(wantKeys))
	}
}

func TestStoreSnapshotCorruption(t *testing.T) {
	st, err := NewStore[string](MustSpec("exact"))
	if err != nil {
		t.Fatal(err)
	}
	st.AddString("k1", "a")
	st.AddString("k2", "b")
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut += 3 {
		if _, err := UnmarshalStore[string](blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	grown := append(append([]byte{}, blob...), 0xEE)
	if _, err := UnmarshalStore[string](grown); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestStoreConcurrentKeyedIngest(t *testing.T) {
	// Acceptance criterion: a -race concurrent keyed-ingest stress test.
	// Mixed per-item and batch writers over a shared key space, with
	// concurrent readers (Estimate / TopK / Footprint / snapshot).
	st, err := NewStore[uint64](MustSpec("hll:mbits=512"), WithStripes(8))
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		recs    = 6000
		nKeys   = 101
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys, items := keyedWorkload(nKeys, recs, uint64(w+1))
			if w%2 == 0 {
				for i := 0; i < len(keys); {
					end := min(i+119, len(keys))
					st.AddBatch64(keys[i:end], items[i:end])
					i = end
				}
			} else {
				for i := range keys {
					st.AddUint64(keys[i], items[i])
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	stop := make(chan struct{})
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.Estimate(xrand.Mix64(0xfee1 + 5))
			st.TopK(3)
			st.Footprint()
			if _, err := st.MarshalBinary(); err != nil {
				t.Errorf("concurrent marshal: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if st.Len() == 0 || st.Len() > nKeys {
		t.Errorf("Len = %d, want (0, %d]", st.Len(), nKeys)
	}
	// Every writer fed the same key population; all keys must exist.
	if st.Len() != nKeys {
		t.Logf("note: %d of %d keys materialized (workload randomness)", st.Len(), nKeys)
	}
}

func TestStoreTopKAndForEach(t *testing.T) {
	st, err := NewStore[string](MustSpec("exact"))
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{"a": 5, "b": 50, "c": 500, "d": 1, "e": 50}
	for key, n := range sizes {
		for i := 0; i < n; i++ {
			st.AddUint64(key, uint64(i))
		}
	}
	top := st.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d entries", len(top))
	}
	if top[0].Key != "c" || top[0].Estimate != 500 {
		t.Errorf("top[0] = %+v, want c/500", top[0])
	}
	// Tie between b and e (both 50): ascending key breaks it.
	if top[1].Key != "b" || top[2].Key != "e" {
		t.Errorf("tie order = %s, %s; want b, e", top[1].Key, top[2].Key)
	}
	if got := st.TopK(100); len(got) != len(sizes) {
		t.Errorf("TopK(100) returned %d entries, want %d", len(got), len(sizes))
	}
	if got := st.TopK(0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}

	seen := map[string]float64{}
	st.ForEach(func(key string, c Counter) bool {
		seen[key] = c.Estimate()
		return true
	})
	if len(seen) != len(sizes) {
		t.Errorf("ForEach visited %d keys, want %d", len(seen), len(sizes))
	}
	for key, n := range sizes {
		if seen[key] != float64(n) {
			t.Errorf("key %s: %v, want %d", key, seen[key], n)
		}
	}
	visited := 0
	st.ForEach(func(string, Counter) bool { visited++; return false })
	if visited != 1 {
		t.Errorf("early-stop ForEach visited %d keys", visited)
	}
}

func TestStoreEviction(t *testing.T) {
	st, err := NewStore[uint64](MustSpec("exact"), WithStripes(1), WithMaxKeys(3))
	if err != nil {
		t.Fatal(err)
	}
	var evicted []uint64
	st.OnEvict(func(key uint64, c Counter) {
		evicted = append(evicted, key)
		if c == nil {
			t.Error("eviction hook got nil counter")
		}
	})
	for k := uint64(1); k <= 10; k++ {
		st.AddUint64(k, k)
	}
	if st.Len() != 3 {
		t.Errorf("Len = %d, want 3 (limit)", st.Len())
	}
	if len(evicted) != 7 {
		t.Errorf("%d evictions, want 7", len(evicted))
	}
	// Re-adding an evicted key counts from scratch (its history is gone).
	key := evicted[0]
	st.AddUint64(key, 123)
	if est, ok := st.Estimate(key); !ok || est != 1 {
		t.Errorf("re-materialized key estimate %v ok=%v, want 1", est, ok)
	}

	// Remove does not fire the hook.
	hooks := len(evicted)
	if !st.Remove(key) {
		t.Error("Remove of live key returned false")
	}
	if st.Remove(key) {
		t.Error("Remove of dead key returned true")
	}
	if len(evicted) != hooks {
		t.Error("Remove fired the eviction hook")
	}

	// With many stripes and a tiny limit, eviction must reach across
	// stripes (single-threaded, so no overshoot is tolerated).
	wide, err := NewStore[uint64](MustSpec("exact"), WithStripes(64), WithMaxKeys(2))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 50; k++ {
		wide.AddUint64(k, k)
	}
	if wide.Len() != 2 {
		t.Errorf("cross-stripe eviction: Len = %d, want 2", wide.Len())
	}
}

func TestStoreMerge(t *testing.T) {
	spec := MustSpec("hll:mbits=1024")
	a, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping and disjoint keys with overlapping item sets.
	for i := uint64(0); i < 3000; i++ {
		a.AddUint64("both", i)
		b.AddUint64("both", i+1500) // half overlap → union 4500
		a.AddUint64("onlyA", i)
		b.AddUint64("onlyB", i)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Fatalf("merged Len = %d, want 3", a.Len())
	}
	est, _ := a.Estimate("both")
	if math.Abs(est/4500-1) > 0.25 {
		t.Errorf("union estimate %.0f, want ≈4500", est)
	}
	estB, _ := a.Estimate("onlyB")
	if math.Abs(estB/3000-1) > 0.25 {
		t.Errorf("adopted-key estimate %.0f, want ≈3000", estB)
	}

	// Self-merge is a no-op.
	before, _ := a.Estimate("both")
	if err := a.Merge(a); err != nil {
		t.Fatal(err)
	}
	if after, _ := a.Estimate("both"); after != before {
		t.Errorf("self-merge changed estimate %v -> %v", before, after)
	}

	// Spec mismatch refused.
	c, _ := NewStore[string](MustSpec("hll:mbits=2048"))
	if err := a.Merge(c); err == nil {
		t.Error("merge across specs accepted")
	}

	// Non-mergeable kind refused with ErrNotMergeable — and refused
	// BEFORE any mutation: no adopted keys, no half-merged state.
	sa, _ := NewStore[string](MustSpec("sbitmap:n=1e4,eps=0.1"))
	sb, _ := NewStore[string](MustSpec("sbitmap:n=1e4,eps=0.1"))
	sa.AddUint64("k", 1)
	sb.AddUint64("k", 2)
	sb.AddUint64("only-b", 3)
	if err := sa.Merge(sb); !errors.Is(err, ErrNotMergeable) {
		t.Errorf("sbitmap store merge error = %v, want ErrNotMergeable", err)
	}
	if sa.Len() != 1 {
		t.Errorf("refused merge mutated the store: Len = %d, want 1", sa.Len())
	}
	if _, ok := sa.Estimate("only-b"); ok {
		t.Error("refused merge adopted a key")
	}
}

func TestStoreFootprintAndSizeBits(t *testing.T) {
	st, err := NewStore[string](MustSpec("hll:mbits=1024"))
	if err != nil {
		t.Fatal(err)
	}
	empty := st.Footprint()
	if empty <= 0 {
		t.Fatalf("empty footprint %d", empty)
	}
	for i := 0; i < 100; i++ {
		st.AddUint64(fmt.Sprintf("key-%03d", i), uint64(i))
	}
	full := st.Footprint()
	if full <= empty {
		t.Errorf("footprint did not grow: %d -> %d", empty, full)
	}
	perKey := (full - empty) / 100
	// Each key holds a 1024-bit HLL (≥128 B) plus key and map overhead.
	if perKey < 128 || perKey > 4096 {
		t.Errorf("per-key footprint %d B implausible", perKey)
	}
	one, err := st.Spec().New()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.SizeBits(), 100*one.SizeBits(); got != want {
		t.Errorf("SizeBits = %d, want %d", got, want)
	}
	st.Reset()
	if st.Len() != 0 {
		t.Errorf("Len after Reset = %d", st.Len())
	}
	if st.Footprint() > empty+1024 {
		t.Errorf("footprint after Reset = %d, empty was %d", st.Footprint(), empty)
	}
}

func TestStoreConstructionErrors(t *testing.T) {
	if _, err := NewStore[uint64](MustSpec("sbitmap:n=1e4,eps=0.1"), WithStripes(0)); err == nil {
		t.Error("0 stripes accepted")
	}
	if _, err := NewStore[uint64](MustSpec("sbitmap:n=1e4,eps=0.1"), WithMaxKeys(-1)); err == nil {
		t.Error("negative key limit accepted")
	}
	if _, err := NewStore[uint64](Spec{Kind: KindSBitmap}); err == nil {
		t.Error("underdetermined spec accepted")
	}
	st, err := NewStore[uint64](MustSpec("exact"))
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on length mismatch", name)
			}
		}()
		fn()
	}
	mustPanic("AddBatch64", func() { st.AddBatch64([]uint64{1}, nil) })
	mustPanic("AddBatchString", func() { st.AddBatchString([]uint64{1}, []string{"a", "b"}) })
}

func TestStoreNamedKeyTypes(t *testing.T) {
	// ~string / ~uint64 named types work end to end, snapshots included.
	type FlowID uint64
	st, err := NewStore[FlowID](MustSpec("exact"))
	if err != nil {
		t.Fatal(err)
	}
	st.AddUint64(FlowID(7), 1)
	st.AddUint64(FlowID(7), 2)
	st.AddUint64(FlowID(9), 1)
	if est, ok := st.Estimate(FlowID(7)); !ok || est != 2 {
		t.Fatalf("estimate %v ok=%v", est, ok)
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalStore[FlowID](blob)
	if err != nil {
		t.Fatal(err)
	}
	if est, ok := back.Estimate(FlowID(9)); !ok || est != 1 {
		t.Fatalf("restored estimate %v ok=%v", est, ok)
	}
}

func TestStoreSnapshotUnderConcurrentWriters(t *testing.T) {
	// Satellite acceptance: MarshalBinary taken WHILE mixed per-item and
	// batch writers (and readers) are running must always produce a
	// decodable snapshot whose per-key counters are internally consistent
	// — every blob restores, and every restored estimate is one a
	// quiescent counter could report. Run under -race to also prove the
	// stripe-locked encode never reads sketch state torn by a writer.
	st, err := NewStore[uint64](MustSpec("hll:mbits=256"), WithStripes(8))
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		recs    = 4000
		nKeys   = 97
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys, items := keyedWorkload(nKeys, recs, uint64(w+1))
			for i := 0; i < len(keys); {
				select {
				case <-stop:
					return
				default:
				}
				if w%2 == 0 {
					end := min(i+137, len(keys))
					st.AddBatch64(keys[i:end], items[i:end])
					i = end
				} else {
					st.AddUint64(keys[i], items[i])
					i++
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.Estimate(xrand.Mix64(3))
			st.Len()
		}
	}()

	// Snapshot continuously under load; every snapshot must decode fully.
	deadline := time.Now().Add(500 * time.Millisecond)
	snaps := 0
	for time.Now().Before(deadline) {
		blob, err := st.MarshalBinary()
		if err != nil {
			t.Fatalf("snapshot %d under load: %v", snaps, err)
		}
		back, err := UnmarshalStore[uint64](blob)
		if err != nil {
			t.Fatalf("snapshot %d does not decode: %v", snaps, err)
		}
		bad := 0
		back.ForEach(func(key uint64, c Counter) bool {
			if est := c.Estimate(); est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
				bad++
			}
			return true
		})
		if bad > 0 {
			t.Fatalf("snapshot %d: %d restored counters with nonsensical estimates", snaps, bad)
		}
		snaps++
	}
	close(stop)
	wg.Wait()
	rg.Wait()
	if snaps == 0 {
		t.Fatal("took no snapshots")
	}

	// Quiescent now: a final snapshot must round-trip to equal estimates.
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalStore[uint64](blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != st.Len() {
		t.Fatalf("restored %d keys, live store has %d", back.Len(), st.Len())
	}
	st.ForEach(func(key uint64, c Counter) bool {
		got, ok := back.Estimate(key)
		if !ok || got != c.Estimate() {
			t.Errorf("key %d: restored %v ok=%v, live %v", key, got, ok, c.Estimate())
			return false
		}
		return true
	})
}
