#!/usr/bin/env bash
# End-to-end smoke of the alerting pipeline: start sketchd with a fast
# rule-evaluation interval, install a superspreader rule, feed it a
# flowgen scan trace, watch the alert fire over the SSE stream, probe the
# typed rule errors, then kill -TERM (final checkpoint) and restart —
# the rules and the alert history must survive. Run from the repo root;
# CI runs this after building cmd/sketchd.
#
#   ./scripts/smoke_alerts.sh [path-to-sketchd-binary]
set -euo pipefail

BIN=${1:-./sketchd}
ADDR=127.0.0.1:18289
BASE=http://$ADDR
DIR=$(mktemp -d)
PID=""
cleanup() {
  if [ -n "$PID" ]; then
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true # let the final checkpoint finish
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "smoke-alerts: server on $ADDR never became healthy" >&2
  exit 1
}

start() {
  "$BIN" -addr "$ADDR" -spec "sbitmap:n=1e4,eps=0.03,seed=7" \
    -checkpoint "$DIR/ckpt" -checkpoint-interval 0 -rule-interval 100ms &
  PID=$!
  wait_healthy
}

echo "smoke-alerts: starting sketchd (rule-interval 100ms)"
start

echo "smoke-alerts: installing a superspreader rule (prefix, T=500)"
RULE=$(curl -fsS -X PUT --data-binary \
  '{"id":"superspreader","type":"prefix","threshold":500}' \
  -H 'Content-Type: application/json' "$BASE/v1/rules")
case "$RULE" in
  *'"id":"superspreader"'*) ;;
  *) echo "smoke-alerts: unexpected rule install response: $RULE" >&2; exit 1 ;;
esac

echo "smoke-alerts: probing the typed rule errors"
BAD=$(curl -s -X PUT --data-binary '{"id":"x","type":"prefix","threshold":-1}' \
  -H 'Content-Type: application/json' "$BASE/v1/rules")
case "$BAD" in
  *bad_rule*) ;;
  *) echo "smoke-alerts: bad rule not rejected: $BAD" >&2; exit 1 ;;
esac
NOWIN=$(curl -s -X PUT --data-binary \
  '{"id":"x","type":"prefix","threshold":10,"window":"5m"}' \
  -H 'Content-Type: application/json' "$BASE/v1/rules")
case "$NOWIN" in
  *window_not_configured*) ;;
  *) echo "smoke-alerts: windowed rule on unwindowed store not rejected: $NOWIN" >&2; exit 1 ;;
esac
MISSING=$(curl -s "$BASE/v1/rules/nope")
case "$MISSING" in
  *unknown_rule*) ;;
  *) echo "smoke-alerts: unknown rule id not a typed 404: $MISSING" >&2; exit 1 ;;
esac

echo "smoke-alerts: opening the SSE stream in the background"
SSE_OUT="$DIR/sse.out"
curl -fsS -N --max-time 30 "$BASE/v1/alerts/stream" >"$SSE_OUT" 2>/dev/null &
SSE_PID=$!
sleep 0.3 # let the subscription register before the alert fires

echo "smoke-alerts: feeding a flowgen scan trace (5 scanners, fan-out >= 1000)"
go run ./cmd/flowgen -trace scan -scanners 5 -scan-rate 1000 -seed 7 |
  curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' "$BASE/v1/add" >/dev/null

echo "smoke-alerts: waiting for the rule to fire"
FIRED=""
for _ in $(seq 1 50); do
  ALERTS=$(curl -fsS "$BASE/v1/alerts")
  case "$ALERTS" in
    *'"state":"firing"'*) FIRED=yes; break ;;
  esac
  sleep 0.1
done
[ -n "$FIRED" ] || { echo "smoke-alerts: rule never fired; alerts: $ALERTS" >&2; exit 1; }

echo "smoke-alerts: verifying the alert reached the SSE stream"
SSE_OK=""
for _ in $(seq 1 50); do
  if grep -q '"state":"firing"' "$SSE_OUT" 2>/dev/null; then SSE_OK=yes; break; fi
  sleep 0.1
done
kill "$SSE_PID" 2>/dev/null || true
wait "$SSE_PID" 2>/dev/null || true
[ -n "$SSE_OK" ] || { echo "smoke-alerts: alert never arrived over SSE" >&2; exit 1; }
grep -q '^event: alert' "$SSE_OUT" || { echo "smoke-alerts: SSE framing missing 'event: alert'" >&2; exit 1; }

STATS=$(curl -fsS "$BASE/v1/stats")
case "$STATS" in
  *'"rules":{'*) ;;
  *) echo "smoke-alerts: stats missing rules block: $STATS" >&2; exit 1 ;;
esac

ALERTS_BEFORE=$(curl -fsS "$BASE/v1/alerts")

echo "smoke-alerts: SIGTERM (writes the final checkpoint) and restart"
kill -TERM "$PID"
wait "$PID" || { echo "smoke-alerts: sketchd exited non-zero on SIGTERM" >&2; exit 1; }
PID=""
[ -s "$DIR/ckpt/MANIFEST.json" ] || { echo "smoke-alerts: no checkpoint written" >&2; exit 1; }
start

echo "smoke-alerts: verifying rules and alert history survived"
RULES2=$(curl -fsS "$BASE/v1/rules")
case "$RULES2" in
  *'"id":"superspreader"'*) ;;
  *) echo "smoke-alerts: rule lost across restart: $RULES2" >&2; exit 1 ;;
esac
ALERTS_AFTER=$(curl -fsS "$BASE/v1/alerts")
[ "$ALERTS_BEFORE" = "$ALERTS_AFTER" ] ||
  { echo "smoke-alerts: alert history changed across restart: $ALERTS_BEFORE vs $ALERTS_AFTER" >&2; exit 1; }

echo "smoke-alerts: verifying a still-firing key does not re-fire after restart"
sleep 0.5 # several eval ticks
ALERTS_SETTLED=$(curl -fsS "$BASE/v1/alerts")
[ "$ALERTS_AFTER" = "$ALERTS_SETTLED" ] ||
  { echo "smoke-alerts: restored firing keys re-fired: $ALERTS_SETTLED" >&2; exit 1; }

echo "smoke-alerts ok: rule fired over SSE and survived restart"
