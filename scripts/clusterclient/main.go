// Command clusterclient is the client half of the cluster smoke test
// (scripts/smoke_cluster.sh): it drives a running sketchd cluster
// through internal/cluster.Client from a separate process — partitioned
// ingest, scatter-gather verification against a local twin Store, and
// typed degraded-response assertions after a peer kill.
//
// The workload is a pure function of (-keys, -per-key, -spec seed), so
// separate invocations agree on what the cluster should contain: one
// run ingests, a later run re-verifies after a kill or restart.
//
//	clusterclient -peers $P1,$P2,$P3 -mode ingest
//	clusterclient -peers $P1,$P2,$P3 -mode verify
//	clusterclient -peers $P1,$P2,$P3 -mode degraded -dead $P2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	sbitmap "repro"
	"repro/internal/cluster"
	"repro/internal/xrand"
)

func main() {
	var (
		peersFlag = flag.String("peers", "", "comma-separated peer base URLs (required)")
		specStr   = flag.String("spec", "sbitmap:n=1e4,eps=0.1,seed=7", "cluster spec (must match the nodes')")
		mode      = flag.String("mode", "ingest", "ingest | verify | degraded")
		nKeys     = flag.Int("keys", 600, "workload keys")
		perKey    = flag.Int("per-key", 20, "records per key")
		dead      = flag.String("dead", "", "with -mode degraded: the peer expected unreachable")
	)
	flag.Parse()
	if err := run(*peersFlag, *specStr, *mode, *nKeys, *perKey, *dead); err != nil {
		fmt.Fprintf(os.Stderr, "clusterclient: %v\n", err)
		os.Exit(1)
	}
}

// workload regenerates the deterministic record set every mode agrees on.
func workload(nKeys, perKey int) (keys []string, items []uint64) {
	for k := 0; k < nKeys; k++ {
		name := fmt.Sprintf("key-%04d", k)
		spread := 1 + k%17
		for i := 0; i < perKey; i++ {
			keys = append(keys, name)
			items = append(items, xrand.Mix64(uint64(k)<<16|uint64(i%spread)))
		}
	}
	return keys, items
}

func run(peersFlag, specStr, mode string, nKeys, perKey int, dead string) error {
	peers := strings.Split(peersFlag, ",")
	if peersFlag == "" || len(peers) < 2 {
		return fmt.Errorf("-peers needs at least two comma-separated URLs")
	}
	spec, err := sbitmap.ParseSpec(specStr)
	if err != nil {
		return err
	}
	cc, err := cluster.New(peers, cluster.WithRetry(2, 100*time.Millisecond))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	twin, err := sbitmap.NewStore[string](spec)
	if err != nil {
		return err
	}
	keys, items := workload(nKeys, perKey)
	twin.AddBatch64(keys, items)

	switch mode {
	case "ingest":
		const batch = 512
		for i := 0; i < len(keys); i += batch {
			end := min(i+batch, len(keys))
			res, err := cc.AddBatch64(ctx, keys[i:end], items[i:end])
			if err != nil {
				return err
			}
			if res.Partial || res.Records != end-i {
				return fmt.Errorf("ingest batch degraded or short: %+v", res)
			}
		}
		fmt.Printf("clusterclient: ingested %d records over %d keys across %d peers\n",
			len(keys), nKeys, len(peers))
		fallthrough

	case "verify":
		// Every key, over the wire, bit-identical to the local twin.
		checked := 0
		var verr error
		twin.ForEach(func(key string, c sbitmap.Counter) bool {
			got, ok, qerr := cc.Estimate(ctx, key)
			if qerr != nil {
				verr = fmt.Errorf("estimate %q: %w", key, qerr)
				return false
			}
			if !ok || got != c.Estimate() {
				verr = fmt.Errorf("key %q: cluster %v (ok=%v), twin %v", key, got, ok, c.Estimate())
				return false
			}
			checked++
			return true
		})
		if verr != nil {
			return verr
		}
		if checked != twin.Len() {
			return fmt.Errorf("verified %d of %d keys", checked, twin.Len())
		}
		stats, err := cc.Stats(ctx)
		if err != nil {
			return err
		}
		if stats.Partial || stats.Keys != twin.Len() {
			return fmt.Errorf("stats: keys=%d partial=%v, twin %d", stats.Keys, stats.Partial, twin.Len())
		}
		tk, err := cc.TopK(ctx, 5)
		if err != nil {
			return err
		}
		if tk.Partial || len(tk.Top) != 5 {
			return fmt.Errorf("topk: %d entries partial=%v", len(tk.Top), tk.Partial)
		}
		want := twin.TopK(5)
		for i := range want {
			if tk.Top[i].Key != want[i].Key || tk.Top[i].Estimate != want[i].Estimate {
				return fmt.Errorf("topk[%d]: cluster (%s,%v), twin (%s,%v)",
					i, tk.Top[i].Key, tk.Top[i].Estimate, want[i].Key, want[i].Estimate)
			}
		}
		fmt.Printf("clusterclient: %d keys verified bit-identical; stats and top-5 match the twin\n", checked)

	case "degraded":
		if dead == "" {
			return fmt.Errorf("-mode degraded needs -dead")
		}
		tk, err := cc.TopK(ctx, 5)
		if err != nil {
			return fmt.Errorf("topk with a dead peer must degrade, got error: %w", err)
		}
		if !tk.Partial {
			return fmt.Errorf("topk with dead peer %s was not partial", dead)
		}
		if len(tk.Unreachable) != 1 || tk.Unreachable[0] != dead {
			return fmt.Errorf("unreachable=%v, want exactly [%s]", tk.Unreachable, dead)
		}
		stats, err := cc.Stats(ctx)
		if err != nil {
			return err
		}
		if !stats.Partial || len(stats.Peers) != len(peers)-1 {
			return fmt.Errorf("stats: partial=%v reachable=%d", stats.Partial, len(stats.Peers))
		}
		// Keys owned by survivors still answer, bit-identically.
		live := 0
		var verr error
		twin.ForEach(func(key string, c sbitmap.Counter) bool {
			if cc.Owner(key) == dead {
				return true
			}
			got, ok, qerr := cc.Estimate(ctx, key)
			if qerr != nil || !ok || got != c.Estimate() {
				verr = fmt.Errorf("live key %q: got %v ok=%v err=%v, twin %v", key, got, ok, qerr, c.Estimate())
				return false
			}
			live++
			return true
		})
		if verr != nil {
			return verr
		}
		if live == 0 {
			return fmt.Errorf("no keys owned by surviving peers")
		}
		fmt.Printf("clusterclient: degraded response confirmed (unreachable=%v); %d surviving keys still bit-identical\n",
			tk.Unreachable, live)

	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}
	return nil
}
