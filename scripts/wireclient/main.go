// Command wireclient is the client half of the wire-ingest smoke test
// (scripts/smoke_wire.sh): it pushes pipelined SBF1 frames over the raw
// TCP listener (internal/wire), then verifies the served estimates
// bit-identical against a local twin Store fed the same records — proving
// the zero-copy wire path end to end from a separate process. With
// -garbage it instead sends a corrupt frame and asserts the server
// rejects it (error ack + connection close) without falling over.
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	sbitmap "repro"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	var (
		tcp     = flag.String("tcp", "127.0.0.1:18292", "sketchd wire listener (-tcp-addr)")
		base    = flag.String("base", "http://127.0.0.1:18291", "service base URL (queries)")
		spec    = flag.String("spec", "", "server spec; when set, verify estimates against a local twin store")
		nkeys   = flag.Int("nkeys", 64, "distinct keys to ingest")
		spread  = flag.Int("spread", 100, "distinct uint64 items per key")
		batch   = flag.Int("batch", 512, "records per frame")
		prefix  = flag.String("prefix", "wire", "key name prefix")
		garbage = flag.Bool("garbage", false, "send a corrupt frame and expect rejection instead of ingesting")
	)
	flag.Parse()
	var err error
	if *garbage {
		err = sendGarbage(*tcp)
	} else {
		err = push(*tcp, *base, *spec, *prefix, *nkeys, *spread, *batch)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wireclient: %v\n", err)
		os.Exit(1)
	}
}

// push streams the workload over TCP (both frame types), then compares
// every key's served estimate with a local twin when -spec is given.
func push(tcp, base, specStr, prefix string, nkeys, spread, batch int) error {
	keys := make([]string, 0, nkeys*spread)
	items := make([]uint64, 0, nkeys*spread)
	for k := 0; k < nkeys; k++ {
		name := fmt.Sprintf("%s-%05d", prefix, k)
		for i := 0; i < spread; i++ {
			keys = append(keys, name)
			items = append(items, (uint64(k)<<20|uint64(i))*0x9e3779b97f4a7c15)
		}
	}

	wc := wire.NewClient(tcp)
	defer wc.Close()
	for at := 0; at < len(keys); at += batch {
		end := min(at+batch, len(keys))
		if err := wc.Send64(keys[at:end], items[at:end]); err != nil {
			return err
		}
	}
	changed, err := wc.Drain()
	if err != nil {
		return err
	}
	// A string frame exercises the second item type over the same conn.
	strKeys := []string{keys[0], keys[0], keys[len(keys)-1]}
	strItems := []string{"smoke-a", "smoke-b", "smoke-a"}
	strChanged, err := wc.AddBatchString(strKeys, strItems)
	if err != nil {
		return err
	}
	fmt.Printf("wireclient: %d records over tcp (%d changed), string frame %d changed\n",
		len(keys), changed, strChanged)

	if specStr == "" {
		return nil
	}
	sp, err := sbitmap.ParseSpec(specStr)
	if err != nil {
		return err
	}
	twin, err := sbitmap.NewStore[string](sp)
	if err != nil {
		return err
	}
	for at := 0; at < len(keys); at += batch {
		end := min(at+batch, len(keys))
		twin.AddBatch64(keys[at:end], items[at:end])
	}
	twin.AddBatchString(strKeys, strItems)

	client := server.NewClient(base)
	ctx := context.Background()
	verified := 0
	for k := 0; k < nkeys; k++ {
		name := fmt.Sprintf("%s-%05d", prefix, k)
		want, ok := twin.Estimate(name)
		if !ok {
			return fmt.Errorf("twin lost key %s", name)
		}
		got, ok, err := client.Estimate(ctx, name)
		if err != nil {
			return err
		}
		if !ok || got != want {
			return fmt.Errorf("key %s: served %v (ok=%v), twin %v — wire ingest not bit-identical", name, got, ok, want)
		}
		verified++
	}
	fmt.Printf("wireclient: %d keys verified bit-identical to local twin\n", verified)
	return nil
}

// sendGarbage writes a well-formed length prefix followed by bytes that
// are not an SBF1 frame, and asserts the server answers with the error
// ack and closes only this connection.
func sendGarbage(tcp string) error {
	c, err := net.DialTimeout("tcp", tcp, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	body := []byte("this is not an SBF1 frame")
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := c.Write(append(hdr[:], body...)); err != nil {
		return err
	}
	var ack [8]byte
	if _, err := io.ReadFull(c, ack[:]); err != nil {
		return fmt.Errorf("reading ack: %w", err)
	}
	if got := binary.LittleEndian.Uint64(ack[:]); got != wire.AckError {
		return fmt.Errorf("garbage frame acked with %d, want the error ack", got)
	}
	// The server must close its end after the error ack.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(ack[:1]); err != io.EOF {
		return fmt.Errorf("connection still open after bad frame (read err %v, want EOF)", err)
	}
	fmt.Println("wireclient: corrupt frame rejected with error ack, connection closed")
	return nil
}
