// Command smokeclient is the client-library half of the sketchd smoke
// test (scripts/smoke_sketchd.sh): it ships one binary add frame through
// internal/server.Client, proving the compact wire path end to end from a
// separate process.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/server"
)

func main() {
	var (
		base  = flag.String("base", "http://127.0.0.1:18287", "service base URL")
		key   = flag.String("key", "bob", "key to ingest under")
		items = flag.Int("items", 250, "distinct uint64 items to ingest")
	)
	flag.Parse()
	keys := make([]string, *items)
	vals := make([]uint64, *items)
	for i := range keys {
		keys[i] = *key
		vals[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	client := server.NewClient(*base)
	res, err := client.AddBatch64(context.Background(), keys, vals)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smokeclient: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("smokeclient: %d records ingested (%d changed)\n", res.Records, res.Changed)
}
