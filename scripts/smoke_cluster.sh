#!/usr/bin/env bash
# End-to-end smoke of cluster mode: start a 3-node loopback sketchd
# cluster (shared spec incl. seed, shared -peers list), ingest a
# partitioned workload through the cluster client, verify every key's
# scatter-gathered answer bit-identical to a local twin Store, kill one
# peer and assert the typed degraded (partial) response, restart it and
# assert full recovery. Run from the repo root; CI runs this after
# building cmd/sketchd.
#
#   ./scripts/smoke_cluster.sh [path-to-sketchd-binary]
set -euo pipefail

BIN=${1:-./sketchd}
SPEC='sbitmap:n=1e4,eps=0.1,seed=7'
A1=127.0.0.1:18291 A2=127.0.0.1:18292 A3=127.0.0.1:18293
P1=http://$A1 P2=http://$A2 P3=http://$A3
PEERS=$P1,$P2,$P3
DIR=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$1/v1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "smoke: node $1 never became healthy" >&2
  exit 1
}

# start <addr> <checkpoint-dir>: one partition peer. Every node gets the
# identical -spec and -peers list — that is the whole cluster config.
start() {
  "$BIN" -addr "$1" -spec "$SPEC" -peers "$PEERS" \
    -checkpoint "$DIR/$2" -checkpoint-interval 0 &
  PIDS+=($!)
}

echo "smoke: starting 3-node cluster"
start "$A1" ck1
start "$A2" ck2
start "$A3" ck3
wait_healthy "$P1"; wait_healthy "$P2"; wait_healthy "$P3"

# Every node must report the shared topology.
CLUSTER=$(curl -fsS "$P2/v1/cluster")
case "$CLUSTER" in
  *"$P1"*"$P2"*"$P3"*) ;;
  *) echo "smoke: unexpected /v1/cluster: $CLUSTER" >&2; exit 1 ;;
esac

echo "smoke: partitioned ingest + bit-identical verify via the cluster client"
go run ./scripts/clusterclient -peers "$PEERS" -spec "$SPEC" -mode ingest

echo "smoke: killing node 2 (SIGTERM writes its checkpoint)"
kill -TERM "${PIDS[1]}"
wait "${PIDS[1]}" || { echo "smoke: node 2 exited non-zero" >&2; exit 1; }
[ -s "$DIR/ck2/MANIFEST.json" ] || { echo "smoke: node 2 wrote no checkpoint" >&2; exit 1; }

echo "smoke: scatter-gather queries must degrade (typed partial), not fail"
go run ./scripts/clusterclient -peers "$PEERS" -spec "$SPEC" -mode degraded -dead "$P2"

echo "smoke: restarting node 2 from its checkpoint"
"$BIN" -addr "$A2" -spec "$SPEC" -peers "$PEERS" \
  -checkpoint "$DIR/ck2" -checkpoint-interval 0 &
PIDS[1]=$!
wait_healthy "$P2"

echo "smoke: full re-verify after recovery (same deterministic workload)"
go run ./scripts/clusterclient -peers "$PEERS" -spec "$SPEC" -mode verify

echo "smoke ok: partitioned ingest, degraded response, and recovery all verified"
