#!/usr/bin/env bash
# End-to-end smoke of the counting service: start sketchd, ingest over
# both ingest formats, query, kill -TERM (which writes the final
# checkpoint), restart from the checkpoint, and verify the estimates
# survived bit-for-bit. Run from the repo root; CI runs this after
# building cmd/sketchd.
#
#   ./scripts/smoke_sketchd.sh [path-to-sketchd-binary]
set -euo pipefail

BIN=${1:-./sketchd}
ADDR=127.0.0.1:18287
BASE=http://$ADDR
DIR=$(mktemp -d)
PID=""
cleanup() {
  if [ -n "$PID" ]; then
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true # let the final checkpoint finish
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "smoke: server on $ADDR never became healthy" >&2
  exit 1
}

start() {
  "$BIN" -addr "$ADDR" -spec "hll:mbits=4096,seed=7" \
    -checkpoint "$DIR/ckpt" -checkpoint-interval 0 &
  PID=$!
  wait_healthy
}

echo "smoke: starting sketchd"
start

echo "smoke: ingesting 500 NDJSON records for key alice"
seq 1 500 | awk '{printf "{\"key\":\"alice\",\"item\":\"url-%d\"}\n", $1}' |
  curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' "$BASE/v1/add" >/dev/null

echo "smoke: ingesting a binary frame via the client (go run)"
go run ./scripts/smokeclient -base "$BASE" -key bob -items 250

EST_ALICE=$(curl -fsS "$BASE/v1/estimate?key=alice")
EST_BOB=$(curl -fsS "$BASE/v1/estimate?key=bob")
echo "smoke: alice=$EST_ALICE bob=$EST_BOB"

TOPK=$(curl -fsS "$BASE/v1/topk?k=2")
case "$TOPK" in
  *alice*bob*) ;;
  *) echo "smoke: unexpected topk: $TOPK" >&2; exit 1 ;;
esac

STATS=$(curl -fsS "$BASE/v1/stats")
case "$STATS" in
  *'"keys":2'*) ;;
  *) echo "smoke: unexpected stats: $STATS" >&2; exit 1 ;;
esac

# A malformed body must come back as a typed 4xx, not a 200 or a crash.
CODE=$(curl -s -o /dev/null -w '%{http_code}' --data-binary 'not json' \
  -H 'Content-Type: application/x-ndjson' "$BASE/v1/add")
[ "$CODE" = 400 ] || { echo "smoke: malformed NDJSON returned $CODE, want 400" >&2; exit 1; }

echo "smoke: SIGTERM (writes the final checkpoint) and restart"
kill -TERM "$PID"
wait "$PID" || { echo "smoke: sketchd exited non-zero on SIGTERM" >&2; exit 1; }
PID=""
[ -s "$DIR/ckpt/MANIFEST.json" ] || { echo "smoke: no checkpoint written" >&2; exit 1; }
start

EST_ALICE2=$(curl -fsS "$BASE/v1/estimate?key=alice")
EST_BOB2=$(curl -fsS "$BASE/v1/estimate?key=bob")
[ "$EST_ALICE" = "$EST_ALICE2" ] || { echo "smoke: alice changed across restart: $EST_ALICE vs $EST_ALICE2" >&2; exit 1; }
[ "$EST_BOB" = "$EST_BOB2" ] || { echo "smoke: bob changed across restart: $EST_BOB vs $EST_BOB2" >&2; exit 1; }

echo "smoke: counting continues after restore"
printf '{"key":"alice","item":"brand-new-url"}\n' |
  curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' "$BASE/v1/add" >/dev/null

echo "smoke ok: estimates survived restart ($EST_ALICE / $EST_BOB)"

# ---- sliding-window cycle: timestamped ingest, ?window= query, restart ----

echo "smoke: restarting windowed (-window 1m -ring 5)"
kill -TERM "$PID"; wait "$PID" || true; PID=""
WDIR="$DIR/windowed"
start_windowed() {
  "$BIN" -addr "$ADDR" -spec "hll:mbits=4096,seed=7" -window 1m -ring 5 \
    -checkpoint "$WDIR/ckpt" -checkpoint-interval 0 &
  PID=$!
  wait_healthy
}
start_windowed

echo "smoke: ingesting timestamped NDJSON across three 1m sub-windows"
# Sub-window midpoints at widx 100, 101, 102 (unix nanos = widx*60e9 + 30e9).
for W in 100 101 102; do
  TS=$((W * 60000000000 + 30000000000))
  # %s for the timestamp: mawk's %d saturates at 32 bits, unix nanos do not fit.
  seq 1 100 | awk -v ts="$TS" -v w="$W" \
    '{printf "{\"key\":\"carol\",\"item\":\"w%d-url-%d\",\"ts\":%s}\n", w, $1, ts}' |
    curl -fsS --data-binary @- -H 'Content-Type: application/x-ndjson' "$BASE/v1/add" >/dev/null
done

WEST=$(curl -fsS "$BASE/v1/estimate?key=carol&window=3m")
case "$WEST" in
  *'"windows":3'*) ;;
  *) echo "smoke: windowed estimate missing 3 sub-windows: $WEST" >&2; exit 1 ;;
esac
WSTATS=$(curl -fsS "$BASE/v1/stats")
case "$WSTATS" in
  *'"width":"1m0s"'*) ;;
  *) echo "smoke: stats missing window block: $WSTATS" >&2; exit 1 ;;
esac

# A malformed span must be a typed bad_window 400.
BADW=$(curl -s "$BASE/v1/estimate?key=carol&window=soon")
case "$BADW" in
  *bad_window*) ;;
  *) echo "smoke: bad window span not rejected: $BADW" >&2; exit 1 ;;
esac

echo "smoke: SIGTERM and windowed restart"
kill -TERM "$PID"
wait "$PID" || { echo "smoke: windowed sketchd exited non-zero on SIGTERM" >&2; exit 1; }
PID=""
[ -s "$WDIR/ckpt/MANIFEST.json" ] || { echo "smoke: no windowed checkpoint written" >&2; exit 1; }
start_windowed

WEST2=$(curl -fsS "$BASE/v1/estimate?key=carol&window=3m")
[ "$WEST" = "$WEST2" ] || { echo "smoke: windowed estimate changed across restart: $WEST vs $WEST2" >&2; exit 1; }

echo "smoke ok: windowed estimate survived restart ($WEST)"
