#!/usr/bin/env bash
# Crash-torture smoke of the durability chain: sketchd with a WAL
# (-fsync always: acked means durable) and incremental checkpoints on a
# fast timer, a synchronous feeder streaming deterministic frames, and a
# driver that kill -9s the server mid-stream. After every crash the
# server restarts (manifest restore + WAL tail replay) and the verifier
# rebuilds a twin store from exactly the acked frame prefix — the
# recovered estimates must match it key for key, allowing only the one
# in-flight frame whose ack the crash swallowed. Run from the repo root.
#
#   ./scripts/smoke_wal.sh [path-to-sketchd-binary] [iterations]
set -euo pipefail

BIN=${1:-./sketchd}
ITERS=${2:-5}
ADDR=127.0.0.1:18291
BASE=http://$ADDR
SPEC="sbitmap:n=1e4,eps=0.1,seed=21"
DIR=$(mktemp -d)
PID=""
FEED_PID=""
cleanup() {
  [ -n "$FEED_PID" ] && kill "$FEED_PID" 2>/dev/null || true
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "smoke-wal: server on $ADDR never became healthy" >&2
  exit 1
}

start() {
  "$BIN" -addr "$ADDR" -spec "$SPEC" \
    -checkpoint "$DIR/ckpt" -checkpoint-interval 500ms \
    -wal-dir "$DIR/wal" -fsync always &
  PID=$!
  wait_healthy
}

# Build the torture client once; `go run` per iteration would hide build
# errors until mid-loop.
go build -o "$DIR/torture" ./scripts/tortureclient

echo "smoke-wal: starting sketchd (WAL fsync=always, checkpoints every 500ms)"
start

for i in $(seq 1 "$ITERS"); do
  echo "smoke-wal: iteration $i/$ITERS — feeding, then kill -9"
  "$DIR/torture" -mode feed -base "$BASE" -acked "$DIR/acked" -count 1000000 &
  FEED_PID=$!
  # Let ingest and at least one checkpoint interleave before the crash;
  # vary the window so kills land at different phases.
  sleep "0.$((3 + i % 5))"
  kill -9 "$PID"
  wait "$PID" 2>/dev/null || true
  PID=""
  wait "$FEED_PID" || true # the feeder exits once its request fails
  FEED_PID=""

  start
  "$DIR/torture" -mode verify -base "$BASE" -spec "$SPEC" -acked "$DIR/acked"
done

ACKED=$(cat "$DIR/acked")
[ "$ACKED" -gt 0 ] || { echo "smoke-wal: no frames were ever acked" >&2; exit 1; }

echo "smoke-wal: clean shutdown keeps the chain intact"
kill -TERM "$PID"
wait "$PID" || { echo "smoke-wal: sketchd exited non-zero on SIGTERM" >&2; exit 1; }
PID=""
[ -s "$DIR/ckpt/MANIFEST.json" ] || { echo "smoke-wal: no manifest written" >&2; exit 1; }
start
"$DIR/torture" -mode verify -base "$BASE" -spec "$SPEC" -acked "$DIR/acked"

echo "smoke-wal ok: $ITERS kill -9 cycles recovered bit-identical ($ACKED frames acked)"
