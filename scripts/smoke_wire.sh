#!/usr/bin/env bash
# End-to-end smoke of the raw TCP wire-ingest path: start sketchd with
# -tcp-addr, push pipelined SBF1 frames over the persistent connection,
# verify the served estimates bit-identical against a local twin Store,
# prove a corrupt frame poisons only its own connection, then kill -TERM
# (final checkpoint), restart, and verify the estimates survived
# bit-for-bit. Run from the repo root; CI runs this after building
# cmd/sketchd.
#
#   ./scripts/smoke_wire.sh [path-to-sketchd-binary]
set -euo pipefail

BIN=${1:-./sketchd}
ADDR=127.0.0.1:18291
TCP=127.0.0.1:18292
BASE=http://$ADDR
SPEC="sbitmap:n=1e4,eps=0.1,seed=7"
DIR=$(mktemp -d)
PID=""
cleanup() {
  if [ -n "$PID" ]; then
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true # let the final checkpoint finish
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "smoke-wire: server on $ADDR never became healthy" >&2
  exit 1
}

start() {
  "$BIN" -addr "$ADDR" -tcp-addr "$TCP" -spec "$SPEC" \
    -checkpoint "$DIR/ckpt" -checkpoint-interval 0 &
  PID=$!
  wait_healthy
}

echo "smoke-wire: starting sketchd with the wire listener on $TCP"
start

echo "smoke-wire: pushing pipelined frames over TCP, verifying against a local twin"
go run ./scripts/wireclient -tcp "$TCP" -base "$BASE" -spec "$SPEC"

echo "smoke-wire: corrupt frame must poison only its own connection"
go run ./scripts/wireclient -tcp "$TCP" -garbage
curl -fsS "$BASE/healthz" >/dev/null || { echo "smoke-wire: server died after bad frame" >&2; exit 1; }

EST_A=$(curl -fsS "$BASE/v1/estimate?key=wire-00000")
EST_B=$(curl -fsS "$BASE/v1/estimate?key=wire-00042")
STATS=$(curl -fsS "$BASE/v1/stats")
case "$STATS" in
  *'"keys":64'*) ;;
  *) echo "smoke-wire: unexpected stats: $STATS" >&2; exit 1 ;;
esac
echo "smoke-wire: wire-00000=$EST_A wire-00042=$EST_B"

echo "smoke-wire: SIGTERM (writes the final checkpoint) and restart"
kill -TERM "$PID"
wait "$PID" || { echo "smoke-wire: sketchd exited non-zero on SIGTERM" >&2; exit 1; }
PID=""
[ -s "$DIR/ckpt/MANIFEST.json" ] || { echo "smoke-wire: no checkpoint written" >&2; exit 1; }
start

EST_A2=$(curl -fsS "$BASE/v1/estimate?key=wire-00000")
EST_B2=$(curl -fsS "$BASE/v1/estimate?key=wire-00042")
[ "$EST_A" = "$EST_A2" ] || { echo "smoke-wire: wire-00000 changed across restart: $EST_A vs $EST_A2" >&2; exit 1; }
[ "$EST_B" = "$EST_B2" ] || { echo "smoke-wire: wire-00042 changed across restart: $EST_B vs $EST_B2" >&2; exit 1; }

echo "smoke-wire: wire ingest continues after restore"
go run ./scripts/wireclient -tcp "$TCP" -base "$BASE" -prefix post -nkeys 4 -spread 10
STATS=$(curl -fsS "$BASE/v1/stats")
case "$STATS" in
  *'"keys":68'*) ;;
  *) echo "smoke-wire: post-restart stats missing new keys: $STATS" >&2; exit 1 ;;
esac

echo "smoke-wire ok: estimates survived restart ($EST_A / $EST_B)"
