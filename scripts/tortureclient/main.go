// Command tortureclient is the crash-torture rig's two halves (see
// scripts/smoke_wal.sh): "feed" streams deterministic add frames into a
// sketchd synchronously — one frame in flight, progress recorded only
// after the server's ack — until the driver kill -9s the server under
// it; "verify" rebuilds a twin Store from exactly the acked frame
// prefix and checks the restarted server against it key by key.
//
// Because feeding is synchronous, at most one frame is ever in doubt
// when the server dies: appended to the WAL and applied but its ack
// lost. The verifier therefore accepts the acked prefix N or N+1 —
// anything else (a lost acked frame, a double-applied one, torn state)
// fails. The resolved count is written back so the next feed round
// continues the sequence exactly where the server's recovered state
// ends.
//
//	tortureclient -mode feed   -base URL -spec S -acked FILE -count N
//	tortureclient -mode verify -base URL -spec S -acked FILE
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	sbitmap "repro"
	"repro/internal/server"
)

// tortureKeys bounds the key space: frames keep landing on the same
// counters, so replay order and duplication errors change visible state
// (the S-bitmap's Add is state-dependent — a doubled frame moves the
// estimate).
const tortureKeys = 23

// frameAt returns deterministic frame number i: a few records over the
// shared key space with items unique to (i, j), so every frame mutates
// state and two different prefixes are distinguishable.
func frameAt(i int) (keys []string, items []uint64) {
	for j := 0; j < 4; j++ {
		keys = append(keys, fmt.Sprintf("flow-%02d", (i*7+j*3)%tortureKeys))
		items = append(items, uint64(i)<<16|uint64(j))
	}
	return keys, items
}

func readAcked(path string) (int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return 0, fmt.Errorf("acked file %s: %v", path, err)
	}
	return n, nil
}

func writeAcked(path string, n int) error {
	return os.WriteFile(path, []byte(fmt.Sprintf("%d\n", n)), 0o644)
}

// feed streams frames [start, start+count) synchronously, recording
// progress after each ack. A transport error is the expected crash:
// report how far we provably got and exit clean — the verifier decides
// whether the recovered server honored every ack.
func feed(client *server.Client, ackedPath string, count int) error {
	start, err := readAcked(ackedPath)
	if err != nil {
		return err
	}
	ctx := context.Background()
	for i := start; i < start+count; i++ {
		keys, items := frameAt(i)
		if _, err := client.AddBatch64(ctx, keys, items); err != nil {
			fmt.Printf("torture feed: server died at frame %d (%d acked): %v\n", i, i-start, err)
			return nil
		}
		if err := writeAcked(ackedPath, i+1); err != nil {
			return err
		}
	}
	fmt.Printf("torture feed: all %d frames acked\n", count)
	return nil
}

// twinOf builds the twin store fed exactly frames [0, n).
func twinOf(spec sbitmap.Spec, n int) (*sbitmap.Store[string], error) {
	st, err := sbitmap.NewStore[string](spec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		keys, items := frameAt(i)
		st.AddBatch64(keys, items)
	}
	return st, nil
}

// matches checks the server against a twin: same key count, every key's
// estimate exactly equal (bit-identical counter state implies exactly
// equal estimates; the S-bitmap's state dependence makes the converse
// overwhelmingly likely across 23 keys).
func matches(ctx context.Context, client *server.Client, twin *sbitmap.Store[string]) (bool, string) {
	stats, err := client.Stats(ctx)
	if err != nil {
		return false, err.Error()
	}
	if stats.Keys != twin.Len() {
		return false, fmt.Sprintf("server holds %d keys, twin %d", stats.Keys, twin.Len())
	}
	mismatch := ""
	twin.ForEach(func(key string, c sbitmap.Counter) bool {
		got, ok, err := client.Estimate(ctx, key)
		if err != nil || !ok {
			mismatch = fmt.Sprintf("%s: ok=%v err=%v", key, ok, err)
			return false
		}
		if want := c.Estimate(); got != want {
			mismatch = fmt.Sprintf("%s: server %v, twin %v", key, got, want)
			return false
		}
		return true
	})
	return mismatch == "", mismatch
}

// verify resolves the recovered server's state against the acked count
// N: it must equal the twin of N or N+1 frames (one in-doubt frame whose
// ack the crash swallowed). The resolved count becomes the next feed's
// starting point.
func verify(client *server.Client, spec sbitmap.Spec, ackedPath string) error {
	acked, err := readAcked(ackedPath)
	if err != nil {
		return err
	}
	ctx := context.Background()
	twin, err := twinOf(spec, acked)
	if err != nil {
		return err
	}
	if ok, _ := matches(ctx, client, twin); ok {
		fmt.Printf("torture verify: bit-identical to %d acked frames\n", acked)
		return writeAcked(ackedPath, acked)
	}
	// The in-doubt frame: logged and applied, ack lost in the crash.
	keys, items := frameAt(acked)
	twin.AddBatch64(keys, items)
	if ok, detail := matches(ctx, client, twin); !ok {
		return fmt.Errorf("recovered state matches neither %d nor %d acked frames: %s", acked, acked+1, detail)
	}
	fmt.Printf("torture verify: bit-identical to %d acked frames (+1 in-doubt, recovered)\n", acked)
	return writeAcked(ackedPath, acked+1)
}

func main() {
	var (
		mode    = flag.String("mode", "", "feed or verify")
		base    = flag.String("base", "http://127.0.0.1:8287", "sketchd base URL")
		specStr = flag.String("spec", "", "the server's spec (verify builds the twin from it)")
		acked   = flag.String("acked", "", "progress file: highest frame number the server acked")
		count   = flag.Int("count", 1_000_000, "feed: frames to attempt this round")
	)
	flag.Parse()
	if *acked == "" {
		fmt.Fprintln(os.Stderr, "torture: -acked is required")
		os.Exit(2)
	}
	client := server.NewClient(*base, server.WithRetry(0, time.Second))
	var err error
	switch *mode {
	case "feed":
		err = feed(client, *acked, *count)
	case "verify":
		var spec sbitmap.Spec
		if spec, err = sbitmap.ParseSpec(*specStr); err == nil {
			err = verify(client, spec, *acked)
		}
	default:
		err = fmt.Errorf("unknown -mode %q (want feed or verify)", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture %s: %v\n", *mode, err)
		os.Exit(1)
	}
}
