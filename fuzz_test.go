package sbitmap

import "testing"

// FuzzParseSpec drives the spec grammar with arbitrary strings. The
// invariants: ParseSpec never panics; any accepted spec renders to a
// canonical String that re-parses to the identical Spec; and the
// canonical form is a fixed point of parse∘render. CI runs a short fuzz
// smoke over this target; `go test -fuzz FuzzParseSpec .` digs deeper.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"exact",
		"sbitmap:n=1e6,eps=0.01",
		"sbitmap:n=1e5,eps=0.02,seed=42,hash=tabulation,d=30",
		"hll:mbits=4096",
		"hyperloglog:mbits=4e3",
		"mr:n=1e5,mbits=4000",
		"lc : mbits=4000",
		"loglog:seed=0x10",
		"hll:mbits=64,mbits=128",
		"sbitmap:hash=cw",
		"vb:n=1e4,mbits=100",
		"sbitmap:n=,eps=0.01",
		"sbitmap:eps=1e999",
		"nope:mbits=1",
		"sbitmap:n=1e6,eps=0.01,",
		"hll:mbits=2048/windowed(width=1m)",
		"hll:mbits=2048/windowed(width=1m,ring=5)",
		"sbitmap:n=1e6,eps=0.01/windowed(width=30s,ring=12)",
		"exact/windowed(width=1500ms,ring=1)",
		"hll:mbits=2048/windowed(width=1m,width=2m)",
		"hll:mbits=2048/windowed(width=1m,ring=0)",
		"hll:mbits=2048/windowed(width=1m,ring=65537)",
		"hll:mbits=2048/windowed(ring=5)",
		"hll:mbits=2048/windowed(width=-1m)",
		"hll:mbits=2048/windowed(width=2562047h,ring=65536)",
		"hll:mbits=2048/windowed(width=1m",
		"hll:mbits=2048/windowed(depth=3)",
		"hll:mbits=2048/sliding(width=1m)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return // rejection is fine; panicking or mis-round-tripping is not
		}
		canon := spec.String()
		got, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("ParseSpec(%q) accepted but canonical %q rejected: %v", s, canon, err)
		}
		if got != spec {
			t.Fatalf("round trip of %q: %+v != %+v", s, got, spec)
		}
		if again := got.String(); again != canon {
			t.Fatalf("canonical form of %q not fixed: %q -> %q", s, canon, again)
		}
	})
}
