package sbitmap

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)

// quickCheck runs testing/quick with a bounded iteration count.
func quickCheck(f interface{}, max int) error {
	return quick.Check(f, &quick.Config{MaxCount: max})
}

func TestWindowedBasicRotation(t *testing.T) {
	var closed []WindowResult
	w, err := NewWindowed(time.Minute, 1e5, 0.02, func(r WindowResult) {
		closed = append(closed, r)
	}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	// Minute 0: 1000 distinct; minute 1: 5000 distinct.
	for i := uint64(0); i < 1000; i++ {
		w.AddUint64(t0.Add(time.Duration(i)*50*time.Millisecond), i)
	}
	for i := uint64(0); i < 5000; i++ {
		w.AddUint64(t0.Add(time.Minute+time.Duration(i)*10*time.Millisecond), 1_000_000+i)
	}
	if len(closed) != 1 {
		t.Fatalf("%d windows closed, want 1", len(closed))
	}
	if rel := math.Abs(closed[0].Estimate/1000 - 1); rel > 0.15 {
		t.Errorf("window 0 estimate %.0f, want ≈ 1000", closed[0].Estimate)
	}
	if !closed[0].Start.Equal(t0) || !closed[0].End.Equal(t0.Add(time.Minute)) {
		t.Errorf("window bounds %v..%v", closed[0].Start, closed[0].End)
	}
	if rel := math.Abs(w.Current()/5000 - 1); rel > 0.15 {
		t.Errorf("current estimate %.0f, want ≈ 5000", w.Current())
	}
	last, ok := w.Last()
	if !ok || last != closed[0] {
		t.Error("Last() disagrees with callback")
	}
}

func TestWindowedGapClosesEmptyWindows(t *testing.T) {
	count := 0
	w, err := NewWindowed(time.Minute, 1e4, 0.05, func(WindowResult) { count++ }, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	w.AddUint64(t0, 1)
	// Jump 10 minutes: 10 windows close (9 of them empty).
	w.AddUint64(t0.Add(10*time.Minute), 2)
	if count != 10 {
		t.Errorf("%d windows closed across the gap, want 10", count)
	}
}

func TestWindowedFlush(t *testing.T) {
	w, err := NewWindowed(time.Minute, 1e4, 0.05, nil, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Flush(); ok {
		t.Error("flush of never-started window returned ok")
	}
	for i := uint64(0); i < 500; i++ {
		w.AddUint64(t0, i)
	}
	r, ok := w.Flush()
	if !ok {
		t.Fatal("flush returned !ok")
	}
	if math.Abs(r.Estimate/500-1) > 0.2 {
		t.Errorf("flushed estimate %.0f, want ≈ 500", r.Estimate)
	}
	if w.Current() != 0 {
		t.Error("window not clean after flush")
	}
}

func TestWindowedRotationReusesCleanSketch(t *testing.T) {
	// Two windows with identical contents must give identical estimates
	// (the rotation swaps fully reset sketches with the same seed).
	var ests []float64
	w, err := NewWindowed(time.Minute, 1e4, 0.03, func(r WindowResult) {
		ests = append(ests, r.Estimate)
	}, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for win := 0; win < 4; win++ {
		base := t0.Add(time.Duration(win) * time.Minute)
		for i := uint64(0); i < 800; i++ {
			w.AddUint64(base, i) // same items every window
		}
	}
	w.Flush()
	for i := 1; i < len(ests); i++ {
		if ests[i] != ests[0] {
			t.Fatalf("window %d estimate %v differs from window 0's %v on identical input", i, ests[i], ests[0])
		}
	}
}

func TestWindowedLateItemsCounted(t *testing.T) {
	w, err := NewWindowed(time.Minute, 1e4, 0.05, nil, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	w.AddUint64(t0.Add(30*time.Second), 1)
	// An item time-stamped before the window start must still count (into
	// the current window) rather than panic or be dropped.
	w.AddUint64(t0.Add(-5*time.Second), 2)
	if w.Current() < 1.5 {
		t.Errorf("late item dropped: current estimate %v", w.Current())
	}
}

func TestWindowedStringAndByteKeys(t *testing.T) {
	w, err := NewWindowed(time.Minute, 1e4, 0.05, nil, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	w.AddString(t0, "key")
	w.Add(t0, []byte("key"))
	if w.Current() > 1.5 {
		t.Errorf("string/byte duplicate double-counted: %v", w.Current())
	}
}

func TestWindowedSaturationFlag(t *testing.T) {
	w, err := NewWindowed(time.Minute, 100, 0.09, nil, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100000; i++ {
		w.AddUint64(t0, i)
	}
	r, ok := w.Flush()
	if !ok || !r.Saturated {
		t.Errorf("overloaded window not flagged saturated: %+v", r)
	}
}

func TestWindowedMatchesFreshSketchProperty(t *testing.T) {
	// Property: each closed window's estimate equals a fresh sketch (same
	// config and seed) fed the same per-window items — rotation must be
	// perfectly stateless across windows.
	f := func(seed uint64, sizes [3]uint8) bool {
		w, err := NewWindowed(time.Minute, 1e4, 0.05, nil, WithSeed(seed))
		if err != nil {
			return false
		}
		for win, sz := range sizes {
			base := t0.Add(time.Duration(win) * time.Minute)
			n := int(sz)%200 + 1
			fresh, err := New(1e4, 0.05, WithSeed(seed))
			if err != nil {
				return false
			}
			for i := 0; i < n; i++ {
				item := uint64(win)<<32 | uint64(i) | seed<<40
				w.AddUint64(base, item)
				fresh.AddUint64(item)
			}
			if w.Current() != fresh.Estimate() {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 40); err != nil {
		t.Error(err)
	}
}

func TestWindowedErrors(t *testing.T) {
	if _, err := NewWindowed(0, 1e4, 0.05, nil); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewWindowed(time.Minute, 0, 0.05, nil); err == nil {
		t.Error("bad N accepted")
	}
	w, _ := NewWindowed(time.Minute, 1e4, 0.05, nil)
	if w.SizeBits() <= 0 {
		t.Error("SizeBits not positive")
	}
}

// TestWindowedRotationAllocFree: steady-state window rotation is O(1)
// bookkeeping plus a sketch reset — closing a window and opening the next
// must not reallocate any per-bucket state (the sampling schedule is
// evaluated in closed form, so a reset rebuilds no tables).
func TestWindowedRotationAllocFree(t *testing.T) {
	w, err := NewWindowed(time.Minute, 1e5, 0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	// Prime both rotation sketches so first-use effects are out of the way.
	w.AddUint64(base, 1)
	w.AddUint64(base.Add(time.Minute), 2)
	w.AddUint64(base.Add(2*time.Minute), 3)

	win := 3
	if allocs := testing.AllocsPerRun(100, func() {
		ts := base.Add(time.Duration(win) * time.Minute)
		for i := 0; i < 32; i++ {
			w.AddUint64(ts, uint64(win)<<32|uint64(i))
		}
		win++ // the next run's first Add crosses the boundary and rotates
	}); allocs != 0 {
		t.Errorf("rotation allocates %v objects per window, want 0", allocs)
	}

	// Flush-driven rotation must be allocation-free too.
	w.AddUint64(base.Add(time.Duration(win)*time.Minute), 42)
	if allocs := testing.AllocsPerRun(100, func() {
		win++
		w.AddUint64(base.Add(time.Duration(win)*time.Minute), uint64(win))
		if _, ok := w.Flush(); !ok {
			t.Fatal("flush with an observed item reported no window")
		}
	}); allocs != 0 {
		t.Errorf("Flush rotation allocates %v objects, want 0", allocs)
	}
}
