package sbitmap

import (
	"encoding"
	"errors"
	"testing"
)

// corruptions enumerates the envelope-level failure modes every decoder
// must report with the matching typed error.
var corruptions = []struct {
	name    string
	mutate  func(blob []byte) []byte
	wantErr error
}{
	{"truncated header", func(b []byte) []byte { return b[:3] }, ErrTruncated},
	{"empty input", func(b []byte) []byte { return nil }, ErrTruncated},
	{"bad magic", func(b []byte) []byte {
		c := append([]byte{}, b...)
		c[0] ^= 0xFF
		return c
	}, ErrBadMagic},
	{"wrong version", func(b []byte) []byte {
		c := append([]byte{}, b...)
		c[4] = 99
		return c
	}, ErrUnsupportedVersion},
	{"unknown kind code", func(b []byte) []byte {
		c := append([]byte{}, b...)
		c[5] = 200
		return c
	}, ErrUnknownKind},
}

// marshalers builds one marshalable instance of every serializable shape
// in the module: all 9 Spec kinds plus the Sharded and Windowed
// decorators and the keyed Store.
func marshalers(t *testing.T) map[string]encoding.BinaryMarshaler {
	t.Helper()
	out := map[string]encoding.BinaryMarshaler{}
	for _, kind := range Kinds() {
		spec := specForKind(t, kind)
		c, err := spec.New()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := uint64(0); i < 500; i++ {
			c.AddUint64(i)
		}
		out[string(kind)] = c.(encoding.BinaryMarshaler)
	}
	sh, err := NewShardedSpec(3, MustSpec("hll:mbits=1024"))
	if err != nil {
		t.Fatal(err)
	}
	sh.AddUint64(42)
	out["sharded"] = sh
	w, err := NewWindowedSpec(1_000_000_000, MustSpec("hll:mbits=1024"), nil)
	if err != nil {
		t.Fatal(err)
	}
	out["windowed"] = w
	st, err := NewStore[uint64](MustSpec("hll:mbits=512"))
	if err != nil {
		t.Fatal(err)
	}
	st.AddUint64(1, 2)
	out["store"] = st
	return out
}

func specForKind(t *testing.T, kind Kind) Spec {
	t.Helper()
	switch kind {
	case KindExact:
		return MustSpec("exact")
	case KindSBitmap:
		return MustSpec("sbitmap:n=1e4,eps=0.1")
	case KindVirtualBitmap, KindMRBitmap:
		return Spec{Kind: kind, N: 1e4, MemoryBits: 4000}
	default:
		return Spec{Kind: kind, MemoryBits: 2048}
	}
}

func TestUnmarshalEnvelopeCorruptionTyped(t *testing.T) {
	// Every serializable shape × every envelope corruption: Unmarshal
	// (and the container decoders for non-Counter shapes) must fail with
	// the matching typed sentinel.
	for name, m := range marshalers(t) {
		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		for _, c := range corruptions {
			bad := c.mutate(blob)
			var decodeErr error
			switch name {
			case "windowed":
				_, decodeErr = UnmarshalWindowed(bad, nil)
			case "store":
				_, decodeErr = UnmarshalStore[uint64](bad)
			default:
				_, decodeErr = Unmarshal(bad)
			}
			if decodeErr == nil {
				t.Errorf("%s/%s: accepted", name, c.name)
				continue
			}
			if !errors.Is(decodeErr, c.wantErr) {
				t.Errorf("%s/%s: error %v, want errors.Is(%v)", name, c.name, decodeErr, c.wantErr)
			}
		}
		// Short payload: the envelope is intact but the kind payload is
		// cut off mid-structure. Exact error type is the inner decoder's
		// business; failing cleanly (no panic, non-nil error) is the
		// contract. Skip cuts that leave a still-valid prefix impossible
		// (all our payloads are length-checked, so any cut must error,
		// except the empty-window Windowed whose zero-length tail blob is
		// its own validity domain — covered by the exhaustive store test).
		if len(blob) > 7 {
			short := blob[:6+(len(blob)-6)/2]
			var decodeErr error
			switch name {
			case "windowed":
				_, decodeErr = UnmarshalWindowed(short, nil)
			case "store":
				_, decodeErr = UnmarshalStore[uint64](short)
			default:
				_, decodeErr = Unmarshal(short)
			}
			if decodeErr == nil {
				t.Errorf("%s/short payload: accepted", name)
			}
		}
	}
}

func TestUnmarshalBinaryCorruptionTyped(t *testing.T) {
	// The in-place UnmarshalBinary methods must report the same typed
	// errors, plus ErrKindMismatch for a well-formed snapshot of another
	// kind.
	hllBlob, err := Marshal(NewHyperLogLog(1024))
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]encoding.BinaryUnmarshaler{
		"sbitmap":       &SBitmap{},
		"hll":           &HyperLogLog{},
		"loglog":        &LogLog{},
		"fm":            &FM{},
		"linearcount":   &LinearCounting{},
		"virtualbitmap": &VirtualBitmap{},
		"mrbitmap":      &MRBitmap{},
		"adaptive":      &AdaptiveSampler{},
		"exact":         &Exact{},
		"sharded":       &Sharded{},
	}
	for name, target := range targets {
		spec := Spec{}
		if name != "sharded" {
			spec = specForKind(t, Kind(name))
		}
		var blob []byte
		if name == "sharded" {
			sh, err := NewShardedSpec(2, MustSpec("hll:mbits=512"))
			if err != nil {
				t.Fatal(err)
			}
			blob, err = sh.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
		} else {
			c, err := spec.New()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			c.AddUint64(7)
			blob, err = Marshal(c)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for _, cor := range corruptions {
			if err := target.UnmarshalBinary(cor.mutate(blob)); !errors.Is(err, cor.wantErr) {
				t.Errorf("%s/%s: error %v, want errors.Is(%v)", name, cor.name, err, cor.wantErr)
			}
		}
		if name != "hll" {
			if err := target.UnmarshalBinary(hllBlob); !errors.Is(err, ErrKindMismatch) {
				t.Errorf("%s/kind mismatch: error %v, want ErrKindMismatch", name, err)
			}
		}
		if err := target.UnmarshalBinary(blob[:6+(len(blob)-6)/2]); err == nil {
			t.Errorf("%s/short payload: accepted", name)
		}
	}
}

func TestUnmarshalKindMismatchTyped(t *testing.T) {
	// payloadOfKind's mismatch error is typed; UnmarshalWindowed and
	// UnmarshalStore refuse each other's (and counters') envelopes.
	c, err := MustSpec("hll:mbits=512").New()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalWindowed(blob, nil); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("UnmarshalWindowed(counter): %v, want ErrKindMismatch", err)
	}
	if _, err := UnmarshalStore[uint64](blob); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("UnmarshalStore(counter): %v, want ErrKindMismatch", err)
	}
}
