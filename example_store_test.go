package sbitmap_test

import (
	"fmt"

	sbitmap "repro"
)

// ExampleStore counts distinct items per key — the paper's per-flow
// network-monitoring deployment: one tiny sketch per key, millions of
// keys, all dimensioned by a single Spec. (The example uses the exact
// counter so its output is deterministic; production deployments use
// "sbitmap:n=...,eps=..." and trade exactness for constant tiny memory.)
func ExampleStore() {
	store, err := sbitmap.NewStore[string](sbitmap.MustSpec("exact"))
	if err != nil {
		panic(err)
	}

	// Per-user distinct pages, duplicates and all. Keyed batches route
	// with one hash pass and one lock per touched stripe.
	keys := []string{"alice", "bob", "alice", "alice", "bob", "carol"}
	pages := []string{"/home", "/home", "/cart", "/home", "/pay", "/home"}
	store.AddBatchString(keys, pages)
	store.AddString("alice", "/pay") // per-item works too

	est, _ := store.Estimate("alice")
	fmt.Printf("alice visited %.0f distinct pages\n", est)
	fmt.Printf("%d users tracked\n", store.Len())

	// Heavy hitters, descending by estimate (ties by key).
	for _, ke := range store.TopK(2) {
		fmt.Printf("top: %s (%.0f)\n", ke.Key, ke.Estimate)
	}

	// The whole store snapshots into one blob and restores counting.
	blob, err := store.MarshalBinary()
	if err != nil {
		panic(err)
	}
	restored, err := sbitmap.UnmarshalStore[string](blob)
	if err != nil {
		panic(err)
	}
	est, _ = restored.Estimate("bob")
	fmt.Printf("restored: bob visited %.0f distinct pages\n", est)

	// Output:
	// alice visited 3 distinct pages
	// 3 users tracked
	// top: alice (3)
	// top: bob (2)
	// restored: bob visited 2 distinct pages
}
