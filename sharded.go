package sbitmap

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"repro/internal/uhash"
	"repro/internal/xrand"
)

// Sharded is a concurrency decorator for any Counter: items are routed to
// independently locked shards by an independent hash of the key, so the
// shards count DISJOINT sub-populations of the distinct items and the
// total estimate is simply the sum of shard estimates. Partitioning is the
// one aggregation every sketch supports — including the (otherwise
// unmergeable) S-bitmap — because it sums disjoint counts rather than
// unioning overlapping ones.
//
// Accuracy (for shards with relative error ε each): with the distinct
// population split evenly across s shards, each shard estimates ≈ n/s and
// the shard errors are independent, so the summed estimate has RRMSE
// ≈ ε/√s — sharding for concurrency also buys accuracy, at s× the memory.
// Each shard should be dimensioned for the full N so router skew stays
// safe; the S-bitmap constructors here do that.
type Sharded struct {
	shards []shard
	router *uhash.Mixer
	seed   uint64 // router/base seed, serialized with snapshots
	n      float64
	eps    float64

	// scratch pools the partition buffers of in-flight batches (a pointer
	// so snapshot restore can assign the struct without copying the pool's
	// internal state). Steady-state batch ingest is allocation-free.
	scratch *sync.Pool
}

type shard struct {
	mu sync.Mutex
	sk Counter
	_  [40]byte // pad to reduce false sharing between adjacent locks
}

// shardSeedStep spaces per-shard hash seeds (the golden-ratio increment,
// so derived seeds never collide for realistic shard counts). It is part
// of the serialization contract: snapshots record only the base seed.
const shardSeedStep = 0x9e3779b97f4a7c15

// routerSeed derives the routing hash's seed from the base seed; the
// router must be independent of the per-shard sketch hashes.
func routerSeed(seed uint64) uint64 { return xrand.Mix64(seed ^ 0x5ca1ab1e0ddba11) }

// NewSharded returns a sharded S-bitmap with the given shard count; each
// shard is an independent S-bitmap for (n, eps) seeded distinctly from the
// options' seed. Shards must be ≥ 1.
func NewSharded(shards int, n float64, eps float64, opts ...Option) (*Sharded, error) {
	o := buildOptions(opts)
	s, err := NewShardedFrom(shards, func(i int) (Counter, error) {
		shardOpts := append([]Option{}, opts...)
		shardOpts = append(shardOpts, WithSeed(o.seed+uint64(i)*shardSeedStep))
		return New(n, eps, shardOpts...)
	}, opts...)
	if err != nil {
		return nil, err
	}
	s.n, s.eps = n, eps
	return s, nil
}

// NewShardedSpec returns a sharded counter whose shards are built from the
// Spec, one per shard with distinctly derived seeds. Any Kind works;
// aggregation across machines additionally needs the shards' math to
// support it (see Merge).
func NewShardedSpec(shards int, spec Spec) (*Sharded, error) {
	base := spec.Seed
	if base == 0 {
		base = 1
	}
	s, err := NewShardedFrom(shards, func(i int) (Counter, error) {
		shardSpec := spec
		shardSpec.Seed = base + uint64(i)*shardSeedStep
		return shardSpec.New()
	}, WithSeed(base))
	if err != nil {
		return nil, err
	}
	s.n, s.eps = spec.N, spec.Eps
	return s, nil
}

// NewShardedFrom returns a sharded counter over arbitrary shard sketches:
// factory(i) builds shard i. The options configure only the router (its
// seed must match the factory's base seed for snapshots to restore
// per-shard hashing; the provided constructors handle this). Shards must
// be ≥ 1, and every shard should be configured identically apart from its
// seed.
func NewShardedFrom(shards int, factory func(i int) (Counter, error), opts ...Option) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sbitmap: shard count %d < 1", shards)
	}
	o := buildOptions(opts)
	s := &Sharded{
		shards:  make([]shard, shards),
		router:  uhash.NewMixer(routerSeed(o.seed)),
		seed:    o.seed,
		scratch: &sync.Pool{},
	}
	for i := range s.shards {
		sk, err := factory(i)
		if err != nil {
			return nil, err
		}
		if sk == nil {
			return nil, fmt.Errorf("sbitmap: shard factory returned nil counter for shard %d", i)
		}
		s.shards[i].sk = sk
	}
	return s, nil
}

// route picks the shard for a routing hash word.
func (s *Sharded) route(word uint64) *shard {
	// Multiply-shift onto the shard count (any count, unbiased): the top
	// 32 hash bits scaled into [0, shards).
	idx := ((word >> 32) * uint64(len(s.shards))) >> 32
	return &s.shards[idx]
}

// Add offers an item; safe for concurrent use.
func (s *Sharded) Add(item []byte) bool {
	hi, _ := s.router.Sum128(item)
	sh := s.route(hi)
	sh.mu.Lock()
	changed := sh.sk.Add(item)
	sh.mu.Unlock()
	return changed
}

// AddUint64 offers a 64-bit item; safe for concurrent use.
func (s *Sharded) AddUint64(item uint64) bool {
	hi, _ := s.router.Sum128Uint64(item)
	sh := s.route(hi)
	sh.mu.Lock()
	changed := sh.sk.AddUint64(item)
	sh.mu.Unlock()
	return changed
}

// AddString offers a string item; safe for concurrent use. It hashes
// identically to Add of the string's bytes with no conversion allocation.
func (s *Sharded) AddString(item string) bool {
	hi, _ := s.router.Sum128String(item)
	sh := s.route(hi)
	sh.mu.Lock()
	changed := sh.sk.AddString(item)
	sh.mu.Unlock()
	return changed
}

// shardScratch holds the partition buffers of one in-flight batch: the
// router words (reused as shard indexes), the items regrouped
// shard-contiguously, and the per-shard counting-sort bookkeeping.
type shardScratch struct {
	route  []uint64 // router high words, then shard indexes, one per item
	flat   []uint64 // uint64 items grouped by shard
	flatS  []string // string items grouped by shard
	counts []int    // items per shard
	offs   []int    // scatter cursors (prefix sums of counts)
}

// getScratch leases partition buffers sized for an n-item batch. Buffers
// grow to the largest batch seen and are then reused, so steady-state
// ingest allocates nothing.
func (s *Sharded) getScratch(n int) *shardScratch {
	sc, _ := s.scratch.Get().(*shardScratch)
	if sc == nil {
		sc = &shardScratch{}
	}
	if cap(sc.route) < n {
		sc.route = make([]uint64, n)
	}
	if cap(sc.counts) < len(s.shards) {
		sc.counts = make([]int, len(s.shards))
		sc.offs = make([]int, len(s.shards))
	}
	return sc
}

// putScratch returns leased buffers to the pool, dropping any string
// references so the pool cannot pin a caller's batch in memory.
func (s *Sharded) putScratch(sc *shardScratch) {
	clear(sc.flatS)
	s.scratch.Put(sc)
}

// partition routes every item in one pass: route[i] becomes the shard
// index of item i and counts/offs are left as the counting-sort layout
// (offs[k] = start of shard k's segment in a flat scatter target).
func (s *Sharded) partition(sc *shardScratch, n int) (route []uint64, counts, offs []int) {
	route = sc.route[:n]
	nShards := uint64(len(s.shards))
	counts = sc.counts[:len(s.shards)]
	for i := range counts {
		counts[i] = 0
	}
	for i, w := range route {
		// Same multiply-shift as route(): top 32 hash bits onto [0, shards).
		idx := ((w >> 32) * nShards) >> 32
		route[i] = idx
		counts[idx]++
	}
	offs = sc.offs[:len(s.shards)]
	sum := 0
	for i, c := range counts {
		offs[i] = sum
		sum += c
	}
	return route, counts, offs
}

// AddBatch64 implements BulkAdder with shard-grouped locking: one routing
// pass computes every item's shard, a counting sort groups the batch
// shard-contiguously in reused scratch, and each touched shard's lock is
// taken once per batch (not once per item) around its native batch insert.
// Safe for concurrent use; state-equivalent to per-item AddUint64 because
// shards are independent and per-shard item order is preserved.
func (s *Sharded) AddBatch64(items []uint64) int {
	if len(items) == 0 {
		return 0
	}
	sc := s.getScratch(len(items))
	defer s.putScratch(sc)
	s.router.Sum128Uint64Batch(items, sc.route[:len(items)], nil)
	route, counts, offs := s.partition(sc, len(items))
	if cap(sc.flat) < len(items) {
		sc.flat = make([]uint64, len(items))
	}
	flat := sc.flat[:len(items)]
	for i, item := range items {
		idx := route[i]
		flat[offs[idx]] = item
		offs[idx]++
	}
	return drainSegments(s.shards, counts, offs, func(sh *shard, start, end int) int {
		return AddBatch64(sh.sk, flat[start:end])
	})
}

// drainSegments feeds each shard its segment of a partitioned batch
// (segment i is [offs[i]−counts[i], offs[i]) after the scatter advanced
// offs to segment ends). Shards are visited opportunistically: each sweep
// TryLocks the still-pending shards, so concurrent batches fan out across
// different shards instead of convoying in index order behind one lock; a
// sweep that finds every pending shard busy blocks on the first one rather
// than spinning. Visit order does not affect the final state — segments
// touch disjoint shards. counts is consumed (zeroed) as segments drain.
func drainSegments(shards []shard, counts, offs []int, ingest func(sh *shard, start, end int) int) int {
	changed := 0
	pending := 0
	for _, c := range counts {
		if c > 0 {
			pending++
		}
	}
	for pending > 0 {
		progressed := false
		for i, c := range counts {
			if c == 0 {
				continue
			}
			sh := &shards[i]
			if !sh.mu.TryLock() {
				continue
			}
			changed += ingest(sh, offs[i]-c, offs[i])
			sh.mu.Unlock()
			counts[i] = 0
			pending--
			progressed = true
		}
		if !progressed {
			for i, c := range counts {
				if c == 0 {
					continue
				}
				sh := &shards[i]
				sh.mu.Lock()
				changed += ingest(sh, offs[i]-c, offs[i])
				sh.mu.Unlock()
				counts[i] = 0
				pending--
				break
			}
		}
	}
	return changed
}

// AddBatchString implements BulkAdder for string items; see AddBatch64.
func (s *Sharded) AddBatchString(items []string) int {
	if len(items) == 0 {
		return 0
	}
	sc := s.getScratch(len(items))
	defer s.putScratch(sc)
	s.router.Sum128StringBatch(items, sc.route[:len(items)], nil)
	route, counts, offs := s.partition(sc, len(items))
	if cap(sc.flatS) < len(items) {
		sc.flatS = make([]string, len(items))
	}
	flat := sc.flatS[:len(items)]
	for i, item := range items {
		idx := route[i]
		flat[offs[idx]] = item
		offs[idx]++
	}
	return drainSegments(s.shards, counts, offs, func(sh *shard, start, end int) int {
		return AddBatchString(sh.sk, flat[start:end])
	})
}

// Estimate returns the summed shard estimates; safe for concurrent use
// (it locks shards one at a time — never more than one shard lock is held,
// and each only for the duration of one Estimate call — so it is a
// consistent snapshot only if no concurrent Adds run; the usual monitoring
// pattern reads at interval boundaries).
func (s *Sharded) Estimate() float64 {
	var total float64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.sk.Estimate()
		sh.mu.Unlock()
	}
	return total
}

// Epsilon returns the approximate RRMSE of the summed estimate when the
// population spreads across shards: ε/√shards, with ε the per-shard error
// the decorator was dimensioned for. It is 0 for factory-built Sharded
// counters, whose per-shard error the decorator cannot know. (For n much
// smaller than the shard count the single-shard ε applies instead.)
func (s *Sharded) Epsilon() float64 {
	return s.eps / math.Sqrt(float64(len(s.shards)))
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// SizeBits returns the total sketch memory across shards.
func (s *Sharded) SizeBits() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].sk.SizeBits()
	}
	return total
}

// Footprint returns the decorator's resident process memory in bytes: the
// shard array (locks and padding included) plus every shard sketch's own
// footprint. Transient batch-partition scratch (pooled, reused) is not
// counted. Safe for concurrent use: shards are locked one at a time
// (sketch footprints include lazily allocated batch scratch, which
// concurrent ingest may be growing).
func (s *Sharded) Footprint() int {
	total := int(unsafe.Sizeof(*s)) + int(unsafe.Sizeof(shard{}))*cap(s.shards)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.sk.Footprint()
		sh.mu.Unlock()
	}
	return total
}

// Reset clears every shard; not atomic with respect to concurrent Adds.
func (s *Sharded) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.sk.Reset()
		sh.mu.Unlock()
	}
}

// Merge implements Mergeable shard-by-shard, enabling distributed
// aggregation: two Sharded counters built identically (same shard count,
// base seed, and shard Spec) on different machines merge into the sketch
// of the union of their streams — provided the shard sketches themselves
// support union merging (HLL, LogLog, FM, linear counting, MR-bitmap).
// S-bitmap shards fail with ErrNotMergeable; for S-bitmaps, aggregate by
// partitioning the key space across machines instead and summing.
//
// The other counter must be quiescent for the duration of the call.
func (s *Sharded) Merge(other Counter) error {
	o, ok := other.(*Sharded)
	if !ok {
		return fmt.Errorf("sbitmap: cannot merge %T into *Sharded: %w", other, ErrNotMergeable)
	}
	if s == o {
		return nil // union with itself is a no-op (and would self-deadlock)
	}
	if len(s.shards) != len(o.shards) {
		return fmt.Errorf("sbitmap: merge of %d-shard counter with %d-shard counter", len(s.shards), len(o.shards))
	}
	if s.seed != o.seed {
		return fmt.Errorf("sbitmap: merge of sharded counters with different base seeds (routers disagree)")
	}
	for i := range s.shards {
		sh, oh := &s.shards[i], &o.shards[i]
		sh.mu.Lock()
		oh.mu.Lock()
		err := Merge(sh.sk, oh.sk)
		oh.mu.Unlock()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("sbitmap: shard %d: %w", i, err)
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler: the snapshot records
// the dimensioning, the base seed, and every shard's own envelope. Shards
// are locked one at a time, so marshal at a quiescent point for a
// consistent snapshot.
func (s *Sharded) MarshalBinary() ([]byte, error) {
	payload := make([]byte, 0, 32+len(s.shards)*64)
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(s.n))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(s.eps))
	payload = binary.LittleEndian.AppendUint64(payload, s.seed)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(s.shards)))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		blob, err := Marshal(sh.sk)
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("sbitmap: shard %d: %w", i, err)
		}
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(blob)))
		payload = append(payload, blob...)
	}
	return appendEnvelope(kindSharded, payload), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler with default hash
// options; use Unmarshal with hash-family options if the shards were built
// with a non-default family.
func (s *Sharded) UnmarshalBinary(data []byte) error {
	payload, err := payloadOfKind(data, kindSharded)
	if err != nil {
		return err
	}
	restored, err := unmarshalSharded(payload, nil)
	if err != nil {
		return err
	}
	*s = *restored
	return nil
}

// unmarshalSharded rebuilds a Sharded from its envelope payload. Per-shard
// seeds are re-derived from the recorded base seed (they are part of the
// serialization contract); the caller's options contribute the hash family.
func unmarshalSharded(payload []byte, opts []Option) (*Sharded, error) {
	if len(payload) < 28 {
		return nil, fmt.Errorf("%w: sharded container header", ErrTruncated)
	}
	s := &Sharded{
		n:       math.Float64frombits(binary.LittleEndian.Uint64(payload)),
		eps:     math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
		seed:    binary.LittleEndian.Uint64(payload[16:]),
		scratch: &sync.Pool{},
	}
	count := int(binary.LittleEndian.Uint32(payload[24:]))
	if count < 1 || count > 1<<20 {
		return nil, fmt.Errorf("sbitmap: implausible shard count %d in snapshot", count)
	}
	s.router = uhash.NewMixer(routerSeed(s.seed))
	s.shards = make([]shard, count)
	payload = payload[28:]
	for i := 0; i < count; i++ {
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: shard %d header", ErrTruncated, i)
		}
		blen := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		if blen > len(payload) {
			return nil, fmt.Errorf("%w: shard %d body", ErrTruncated, i)
		}
		shardOpts := append([]Option{}, opts...)
		shardOpts = append(shardOpts, WithSeed(s.seed+uint64(i)*shardSeedStep))
		sk, err := Unmarshal(payload[:blen], shardOpts...)
		if err != nil {
			return nil, fmt.Errorf("sbitmap: shard %d: %w", i, err)
		}
		s.shards[i].sk = sk
		payload = payload[blen:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("sbitmap: %d trailing bytes after last shard", len(payload))
	}
	return s, nil
}

var (
	_ Counter   = (*Sharded)(nil)
	_ Mergeable = (*Sharded)(nil)
)
