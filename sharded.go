package sbitmap

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/uhash"
	"repro/internal/xrand"
)

// Sharded is a concurrency-friendly S-bitmap composed of independently
// locked shards. Items are routed to shards by an independent hash of the
// key, so the shards count DISJOINT sub-populations of the distinct items
// and the total estimate is simply the sum of shard estimates — the one
// aggregation an (otherwise unmergeable) S-bitmap supports, because it is
// partitioning rather than union.
//
// Accuracy: with the distinct population split evenly across s shards,
// each shard estimates ≈ n/s with RRMSE ε, and the shard errors are
// independent, so the summed estimate has RRMSE ≈ ε/√s — sharding for
// concurrency also buys accuracy, at s× the memory. Each shard is
// dimensioned for the full N (any skew in the router stays safe), so a
// Sharded costs s× the memory of a single sketch with the same (N, ε).
type Sharded struct {
	shards []shard
	router *uhash.Mixer
	n      float64
	eps    float64
}

type shard struct {
	mu sync.Mutex
	sk *SBitmap
	_  [40]byte // pad to reduce false sharing between adjacent locks
}

// NewSharded returns a sharded S-bitmap with the given shard count; each
// shard is an independent S-bitmap for (n, eps). Shards must be ≥ 1.
func NewSharded(shards int, n float64, eps float64, opts ...Option) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sbitmap: shard count %d < 1", shards)
	}
	o := buildOptions(opts)
	s := &Sharded{
		shards: make([]shard, shards),
		// The router must be independent of the per-shard sketch hashes;
		// derive it from a fixed tweak of the user seed.
		router: uhash.NewMixer(xrand.Mix64(o.seed ^ 0x5ca1ab1e0ddba11)),
		n:      n,
		eps:    eps,
	}
	for i := range s.shards {
		shardOpts := append([]Option{}, opts...)
		shardOpts = append(shardOpts, WithSeed(o.seed+uint64(i)*0x9e3779b97f4a7c15))
		sk, err := New(n, eps, shardOpts...)
		if err != nil {
			return nil, err
		}
		s.shards[i].sk = sk
	}
	return s, nil
}

// route picks the shard for a routing hash word.
func (s *Sharded) route(word uint64) *shard {
	// Multiply-shift onto the shard count (any count, unbiased): the top
	// 32 hash bits scaled into [0, shards).
	idx := ((word >> 32) * uint64(len(s.shards))) >> 32
	return &s.shards[idx]
}

// Add offers an item; safe for concurrent use.
func (s *Sharded) Add(item []byte) bool {
	hi, _ := s.router.Sum128(item)
	sh := s.route(hi)
	sh.mu.Lock()
	changed := sh.sk.Add(item)
	sh.mu.Unlock()
	return changed
}

// AddUint64 offers a 64-bit item; safe for concurrent use.
func (s *Sharded) AddUint64(item uint64) bool {
	hi, _ := s.router.Sum128Uint64(item)
	sh := s.route(hi)
	sh.mu.Lock()
	changed := sh.sk.AddUint64(item)
	sh.mu.Unlock()
	return changed
}

// AddString offers a string item; safe for concurrent use.
func (s *Sharded) AddString(item string) bool { return s.Add([]byte(item)) }

// Estimate returns the summed shard estimates; safe for concurrent use
// (it locks shards one at a time, so it is a consistent snapshot only if
// no concurrent Adds run — the usual monitoring pattern reads at interval
// boundaries).
func (s *Sharded) Estimate() float64 {
	var total float64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.sk.Estimate()
		sh.mu.Unlock()
	}
	return total
}

// Epsilon returns the approximate RRMSE of the summed estimate when the
// population spreads across shards: ε/√shards. (For n much smaller than
// the shard count the single-shard ε applies instead.)
func (s *Sharded) Epsilon() float64 {
	return s.eps / math.Sqrt(float64(len(s.shards)))
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// SizeBits returns the total bitmap memory across shards.
func (s *Sharded) SizeBits() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].sk.SizeBits()
	}
	return total
}

// Reset clears every shard; not atomic with respect to concurrent Adds.
func (s *Sharded) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.sk.Reset()
		sh.mu.Unlock()
	}
}

var _ Counter = (*Sharded)(nil)
