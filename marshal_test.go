package sbitmap

import (
	"errors"
	"math"
	"testing"
	"time"
)

// addSome feeds n distinct 64-bit items offset by base.
func addSome(c Counter, base, n uint64) {
	for i := uint64(0); i < n; i++ {
		c.AddUint64(base + i)
	}
}

func TestMarshalRoundTripEveryKind(t *testing.T) {
	specs := []string{
		"sbitmap:n=1e5,eps=0.02",
		"sbitmap:n=1e5,eps=0.02,d=30",
		"hll:mbits=4096",
		"loglog:mbits=4096",
		"fm:mbits=4096",
		"linearcount:mbits=4000",
		"virtualbitmap:n=1e5,mbits=4000",
		"mrbitmap:n=1e5,mbits=4000",
		"adaptive:mbits=8192",
		"exact",
	}
	for _, s := range specs {
		spec := MustSpec(s)
		c, err := spec.New()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		addSome(c, 0, 5000)

		blob, err := Marshal(c)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", s, err)
		}
		back, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("%s: Unmarshal: %v", s, err)
		}
		if back.Estimate() != c.Estimate() {
			t.Errorf("%s: restored estimate %v, want %v", s, back.Estimate(), c.Estimate())
		}
		if back.SizeBits() != c.SizeBits() {
			t.Errorf("%s: restored SizeBits %d, want %d", s, back.SizeBits(), c.SizeBits())
		}

		// Continue counting on both; default seeds were used throughout,
		// so the restored sketch must stay in lockstep.
		addSome(c, 5000, 2000)
		addSome(back, 5000, 2000)
		if back.Estimate() != c.Estimate() {
			t.Errorf("%s: restored sketch diverged while counting", s)
		}

		// A second marshal of the restored counter is byte-identical — the
		// serialization is canonical.
		blob2, err := Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-Marshal: %v", s, err)
		}
		blob1, err := Marshal(c)
		if err != nil {
			t.Fatalf("%s: re-Marshal original: %v", s, err)
		}
		if string(blob1) != string(blob2) {
			t.Errorf("%s: serialization not canonical after round trip", s)
		}
	}
}

func TestMarshalRoundTripCustomHashAndSeed(t *testing.T) {
	c, err := MustSpec("hll:mbits=4096,seed=9,hash=carterwegman").New()
	if err != nil {
		t.Fatal(err)
	}
	addSome(c, 0, 8000)
	blob, err := Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob, WithSeed(9), WithCarterWegman())
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != c.Estimate() {
		t.Fatalf("restored estimate %v, want %v", back.Estimate(), c.Estimate())
	}
	addSome(c, 8000, 3000)
	addSome(back, 8000, 3000)
	if back.Estimate() != c.Estimate() {
		t.Error("restored sketch diverged under custom hash options")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("x"), []byte("garbage-that-is-long-enough")} {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("Unmarshal(%q) accepted", data)
		}
	}
	// A valid envelope of one kind must not unmarshal in place as another.
	c, _ := MustSpec("hll:mbits=4096").New()
	blob, _ := Marshal(c)
	var ll LogLog
	if err := ll.UnmarshalBinary(blob); err == nil {
		t.Error("LogLog.UnmarshalBinary accepted an hll snapshot")
	}
}

func TestUnmarshalCorruptSnapshotsFailCleanly(t *testing.T) {
	// Corrupt headers must error, never panic or mis-restore: an exact
	// snapshot whose count would overflow the length check (16·count
	// wraps to 0), and an adaptive snapshot with an impossible depth.
	exactPayload := make([]byte, 8)
	for i, b := range []byte{0, 0, 0, 0, 0, 0, 0, 0x10} { // count = 1<<60
		exactPayload[i] = b
	}
	if _, err := Unmarshal(appendEnvelope(KindExact, exactPayload)); err == nil {
		t.Error("overflowing exact count accepted")
	}
	adaptivePayload := make([]byte, 16)
	adaptivePayload[0] = 8                                  // capacity 8
	copy(adaptivePayload[4:8], []byte{0, 0xca, 0x9a, 0x3b}) // depth ≈ 1e9
	if _, err := Unmarshal(appendEnvelope(KindAdaptive, adaptivePayload)); err == nil {
		t.Error("adaptive depth beyond 64 accepted")
	}
}

func TestWindowedGapFastForwardMatchesLoop(t *testing.T) {
	// With no onClose callback, a huge stream gap must not iterate one
	// close per empty window — and Last()/Current() must match what the
	// per-window loop (exercised via a callback instance) produces.
	base := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	fast, err := NewWindowed(time.Minute, 1e4, 0.05, nil, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewWindowed(time.Minute, 1e4, 0.05, func(WindowResult) {}, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		fast.AddUint64(base, i)
		slow.AddUint64(base, i)
	}
	// A year-long gap: ~526k empty windows. The fast path must return
	// promptly (this test hangs for minutes if it does not).
	jump := base.Add(365 * 24 * time.Hour)
	fast.AddUint64(jump, 1)
	slow.AddUint64(jump, 1)
	fl, fok := fast.Last()
	sl, sok := slow.Last()
	if fok != sok || !fl.Start.Equal(sl.Start) || !fl.End.Equal(sl.End) || fl.Estimate != sl.Estimate {
		t.Errorf("fast-forward Last() = %+v/%v, loop Last() = %+v/%v", fl, fok, sl, sok)
	}
	if !fl.End.Equal(jump.Truncate(time.Minute)) {
		t.Errorf("last closed window ends %v, want %v", fl.End, jump.Truncate(time.Minute))
	}
	if fast.Current() != slow.Current() {
		t.Errorf("current %v vs %v after gap", fast.Current(), slow.Current())
	}
}

func TestShardedSelfMergeIsNoOp(t *testing.T) {
	s, err := NewShardedSpec(4, MustSpec("hll:mbits=4096"))
	if err != nil {
		t.Fatal(err)
	}
	addSome(s, 0, 10000)
	before := s.Estimate()
	if err := Merge(s, s); err != nil { // must not deadlock
		t.Fatal(err)
	}
	if s.Estimate() != before {
		t.Errorf("self-merge changed estimate %v → %v", before, s.Estimate())
	}
}

func TestUnmarshalLegacySBitmapFormat(t *testing.T) {
	// Pre-envelope snapshots (bare internal/core format) must keep
	// loading: deployed checkpoints survive the API redesign.
	sk, _ := New(1e4, 0.03, WithSeed(11))
	for i := uint64(0); i < 3000; i++ {
		sk.AddUint64(i)
	}
	legacy, err := sk.sk.MarshalBinary() // the old MarshalBinary emitted this
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(legacy, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != sk.Estimate() {
		t.Errorf("legacy restore estimate %v, want %v", back.Estimate(), sk.Estimate())
	}
}

func TestUnmarshalBinaryInPlace(t *testing.T) {
	c, _ := MustSpec("hll:mbits=4096").New()
	addSome(c, 0, 5000)
	blob, _ := Marshal(c)
	var h HyperLogLog
	if err := h.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if h.Estimate() != c.Estimate() {
		t.Errorf("in-place restore estimate %v, want %v", h.Estimate(), c.Estimate())
	}

	sb, _ := New(1e4, 0.03)
	for i := uint64(0); i < 2000; i++ {
		sb.AddUint64(i)
	}
	blob, _ = sb.MarshalBinary()
	var sb2 SBitmap
	if err := sb2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if sb2.Estimate() != sb.Estimate() {
		t.Errorf("in-place S-bitmap restore estimate %v, want %v", sb2.Estimate(), sb.Estimate())
	}
}

func TestShardedMarshalRoundTrip(t *testing.T) {
	s, err := NewSharded(4, 1e5, 0.03, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	addSome(s, 0, 20000)

	blob, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != s.Estimate() {
		t.Errorf("restored estimate %v, want %v", back.Estimate(), s.Estimate())
	}
	if back.SizeBits() != s.SizeBits() {
		t.Errorf("restored SizeBits %d, want %d", back.SizeBits(), s.SizeBits())
	}
	restored, ok := back.(*Sharded)
	if !ok {
		t.Fatalf("restored type %T, want *Sharded", back)
	}
	if restored.Shards() != 4 {
		t.Errorf("restored shard count %d", restored.Shards())
	}
	// Routing and per-shard hashing are rebuilt from the recorded base
	// seed, so both instances must stay in lockstep under further adds.
	addSome(s, 20000, 5000)
	addSome(back, 20000, 5000)
	if back.Estimate() != s.Estimate() {
		t.Error("restored sharded counter diverged while counting")
	}
}

func TestShardedSpecRoundTripNonSBitmap(t *testing.T) {
	spec := MustSpec("hll:mbits=4096,seed=5")
	s, err := NewShardedSpec(8, spec)
	if err != nil {
		t.Fatal(err)
	}
	addSome(s, 0, 30000)
	blob, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != s.Estimate() || back.SizeBits() != s.SizeBits() {
		t.Errorf("restored (%v, %d), want (%v, %d)",
			back.Estimate(), back.SizeBits(), s.Estimate(), s.SizeBits())
	}
	addSome(s, 30000, 5000)
	addSome(back, 30000, 5000)
	if back.Estimate() != s.Estimate() {
		t.Error("restored sharded HLL diverged while counting")
	}
}

func TestShardedGenericFactory(t *testing.T) {
	// Sharded decorates ANY Counter via a factory.
	s, err := NewShardedFrom(4, func(i int) (Counter, error) {
		return NewHyperLogLog(4096, WithSeed(uint64(i)+1)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	addSome(s, 0, n)
	if rel := math.Abs(s.Estimate()/n - 1); rel > 0.15 {
		t.Errorf("sharded HLL estimate %.0f for n=%d", s.Estimate(), n)
	}
	if _, err := NewShardedFrom(0, func(int) (Counter, error) { return NewExact(), nil }); err == nil {
		t.Error("0 shards accepted")
	}
}

func TestShardedMerge(t *testing.T) {
	spec := MustSpec("hll:mbits=4096,seed=5")
	a, err := NewShardedSpec(4, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardedSpec(4, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping streams: naive summing would double-count the overlap.
	addSome(a, 0, 20000)
	addSome(b, 10000, 20000) // union is 30000 distinct
	if err := Merge(a, b); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a.Estimate()/30000 - 1); rel > 0.15 {
		t.Errorf("merged estimate %.0f, want ≈ 30000", a.Estimate())
	}

	// S-bitmap shards cannot union-merge: typed failure.
	sa, _ := NewSharded(2, 1e4, 0.05)
	sb, _ := NewSharded(2, 1e4, 0.05)
	if err := Merge(sa, sb); !errors.Is(err, ErrNotMergeable) {
		t.Errorf("sharded S-bitmap merge err = %v, want ErrNotMergeable", err)
	}
}

func TestMergeableCounters(t *testing.T) {
	mergeable := []string{"hll:mbits=4096", "loglog:mbits=4096", "fm:mbits=4096",
		"linearcount:mbits=16000", "mrbitmap:n=1e5,mbits=8000"}
	for _, s := range mergeable {
		a, err := MustSpec(s).New()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		b, _ := MustSpec(s).New()
		addSome(a, 0, 6000)
		addSome(b, 3000, 6000) // union is 9000 distinct
		if err := Merge(a, b); err != nil {
			t.Fatalf("%s: Merge: %v", s, err)
		}
		if rel := math.Abs(a.Estimate()/9000 - 1); rel > 0.35 {
			t.Errorf("%s: merged estimate %.0f, want ≈ 9000", s, a.Estimate())
		}
	}

	// Not union-capable: S-bitmap, virtual bitmap, adaptive, exact.
	for _, s := range []string{"sbitmap:n=1e4,eps=0.05", "virtualbitmap:n=1e4,mbits=4000",
		"adaptive:mbits=4096", "exact"} {
		a, _ := MustSpec(s).New()
		b, _ := MustSpec(s).New()
		if err := Merge(a, b); !errors.Is(err, ErrNotMergeable) {
			t.Errorf("%s: Merge err = %v, want ErrNotMergeable", s, err)
		}
	}

	// Cross-kind merges fail typed too.
	hll, _ := MustSpec("hll:mbits=4096").New()
	ll, _ := MustSpec("loglog:mbits=4096").New()
	if err := Merge(hll, ll); !errors.Is(err, ErrNotMergeable) {
		t.Errorf("cross-kind merge err = %v, want ErrNotMergeable", err)
	}
}

func TestWindowedMarshalRoundTrip(t *testing.T) {
	base := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	w, err := NewWindowed(time.Minute, 1e4, 0.03, nil, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	// One closed window plus a half-full current window.
	for i := uint64(0); i < 800; i++ {
		w.AddUint64(base, i)
	}
	for i := uint64(0); i < 400; i++ {
		w.AddUint64(base.Add(time.Minute), 1_000_000+i)
	}

	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalWindowed(blob, nil, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != w.Estimate() {
		t.Errorf("restored estimate %v, want %v", back.Estimate(), w.Estimate())
	}
	if back.SizeBits() != w.SizeBits() {
		t.Errorf("restored SizeBits %d, want %d", back.SizeBits(), w.SizeBits())
	}
	wl, wok := w.Last()
	bl, bok := back.Last()
	if wok != bok || wl.Estimate != bl.Estimate || !wl.Start.Equal(bl.Start) || !wl.End.Equal(bl.End) {
		t.Errorf("restored Last() = %+v/%v, want %+v/%v", bl, bok, wl, wok)
	}

	// The restored instance resumes mid-window in lockstep.
	for i := uint64(0); i < 300; i++ {
		w.AddUint64(base.Add(time.Minute+30*time.Second), 2_000_000+i)
		back.AddUint64(base.Add(time.Minute+30*time.Second), 2_000_000+i)
	}
	if back.Current() != w.Current() {
		t.Error("restored windowed counter diverged while counting")
	}
	wr, _ := w.Flush()
	br, _ := back.Flush()
	if wr.Estimate != br.Estimate || !wr.Start.Equal(br.Start) {
		t.Errorf("flush after restore: %+v vs %+v", br, wr)
	}

	// Windowed snapshots are not Counters: the universal Unmarshal points
	// at UnmarshalWindowed instead of mis-restoring.
	if _, err := Unmarshal(blob); err == nil {
		t.Error("Unmarshal accepted a windowed snapshot")
	}
}

func TestWindowedSpecDecoratesAnyKind(t *testing.T) {
	base := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	var closed []WindowResult
	w, err := NewWindowedSpec(time.Minute, MustSpec("hll:mbits=4096"), func(r WindowResult) {
		closed = append(closed, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i++ {
		w.AddUint64(base, i)
	}
	for i := uint64(0); i < 1000; i++ {
		w.AddUint64(base.Add(time.Minute), 1_000_000+i)
	}
	if len(closed) != 1 {
		t.Fatalf("%d windows closed, want 1", len(closed))
	}
	if rel := math.Abs(closed[0].Estimate/3000 - 1); rel > 0.2 {
		t.Errorf("window estimate %.0f, want ≈ 3000", closed[0].Estimate)
	}
	if closed[0].Saturated {
		t.Error("HLL window marked saturated (HLL has no bound)")
	}
}

func TestWindowedFlushIdempotent(t *testing.T) {
	// The doc'd contract: Flush is a no-op unless an item arrived since
	// the last close — repeated flushes must not emit empty windows.
	base := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	fired := 0
	w, err := NewWindowed(time.Minute, 1e4, 0.05, func(WindowResult) { fired++ }, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		w.AddUint64(base, i)
	}
	if _, ok := w.Flush(); !ok {
		t.Fatal("first flush returned !ok")
	}
	for i := 0; i < 3; i++ {
		if r, ok := w.Flush(); ok {
			t.Fatalf("repeat flush %d emitted a window: %+v", i, r)
		}
	}
	if fired != 1 {
		t.Errorf("onClose fired %d times, want 1", fired)
	}
	// After new items arrive, Flush works again.
	w.AddUint64(base.Add(2*time.Minute), 99)
	if _, ok := w.Flush(); !ok {
		t.Error("flush after new items returned !ok")
	}
	if fired != 3 {
		// Rolling from minute 0 to minute 2 closes the empty minute-1
		// window (gap semantics), then the flush closes minute 2.
		t.Errorf("onClose fired %d times, want 3 (gap close + flush)", fired)
	}
}

func TestShardedAddStringNoAlloc(t *testing.T) {
	s, err := NewSharded(4, 1e5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	key := "user-12345-session-abcdef"
	s.AddString(key) // settle the one state change
	if allocs := testing.AllocsPerRun(200, func() { s.AddString(key) }); allocs != 0 {
		t.Errorf("Sharded.AddString allocates %.1f objects per call, want 0", allocs)
	}
}

func TestShardedStringBytePathsAgreeAcrossKinds(t *testing.T) {
	for _, spec := range []string{"hll:mbits=4096", "sbitmap:n=1e4,eps=0.05"} {
		a, err := NewShardedSpec(4, MustSpec(spec))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewShardedSpec(4, MustSpec(spec))
		for _, w := range []string{"x", "yy", "zzz", "", "longer-key-with-more-than-sixteen-bytes"} {
			a.AddString(w)
			b.Add([]byte(w))
		}
		if a.Estimate() != b.Estimate() {
			t.Errorf("%s: string and byte paths diverged", spec)
		}
	}
}
