package sbitmap

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/fm"
	"repro/internal/hyperloglog"
	"repro/internal/linearcount"
	"repro/internal/loglog"
	"repro/internal/mrbitmap"
	"repro/internal/virtualbitmap"
)

// Universal serialization: every counter in the module marshals into one
// tagged, versioned envelope so snapshots can be written, shipped across
// processes, and restored without knowing the sketch kind in advance.
//
// Envelope layout (little-endian):
//
//	[0:4]  magic "SKZ1" (0x315a4b53)
//	[4]    format version (currently 1)
//	[5]    kind code (see kindCodes)
//	[6:]   kind-specific payload (the internal sketch serialization)
//
// Hash seeds are never serialized (the paper's memory accounting excludes
// them, and a snapshot should not leak key material): a restored counter
// estimates correctly immediately, but to CONTINUE counting it must be
// restored with the same seed/hash options it was built with.

// envMagic tags serialized counters ("SKZ1" read as little-endian uint32).
const envMagic = uint32(0x315a4b53)

// envVersion is the current envelope format version.
const envVersion = 1

// Typed envelope errors. Every snapshot decoder in the module — Unmarshal,
// the UnmarshalBinary methods, UnmarshalWindowed, UnmarshalStore — reports
// a malformed envelope through one of these sentinels (wrapped with
// context; test with errors.Is), so callers can distinguish "not a
// snapshot at all" from "a snapshot this build cannot read".
var (
	// ErrTruncated reports input shorter than the structure it declares
	// (envelope header, length-prefixed section, or container entry).
	ErrTruncated = errors.New("sbitmap: truncated snapshot")
	// ErrBadMagic reports input that does not start with the snapshot
	// magic — it is not a counter snapshot.
	ErrBadMagic = errors.New("sbitmap: bad snapshot magic (not a counter snapshot)")
	// ErrUnsupportedVersion reports an envelope version this build does
	// not read.
	ErrUnsupportedVersion = errors.New("sbitmap: unsupported snapshot version")
	// ErrUnknownKind reports an envelope kind code this build does not
	// know (a snapshot from a newer build, or corruption).
	ErrUnknownKind = errors.New("sbitmap: unknown snapshot kind")
	// ErrKindMismatch reports a well-formed snapshot of a different kind
	// than the decoder expects (e.g. an HLL blob handed to
	// (*LogLog).UnmarshalBinary).
	ErrKindMismatch = errors.New("sbitmap: snapshot kind mismatch")
)

// kindCodes maps each serializable kind to its envelope tag. Codes are
// append-only: never renumber, or old snapshots become unreadable.
var kindCodes = map[Kind]byte{
	KindSBitmap:       1,
	KindHLL:           2,
	KindLogLog:        3,
	KindFM:            4,
	KindLinearCount:   5,
	KindVirtualBitmap: 6,
	KindMRBitmap:      7,
	KindAdaptive:      8,
	KindExact:         9,
	kindSharded:       10,
	kindWindowed:      11,
	kindStore:         12,
	kindWindowRing:    13,
}

// kindSharded, kindWindowed, kindStore, and kindWindowRing tag
// decorator/container snapshots; they are not Spec kinds (those layers
// are built around a Spec or factory, not from one).
const (
	kindSharded    Kind = "sharded"
	kindWindowed   Kind = "windowed"
	kindStore      Kind = "store"
	kindWindowRing Kind = "windowring"
)

func kindFromCode(code byte) (Kind, bool) {
	for k, c := range kindCodes {
		if c == code {
			return k, true
		}
	}
	return "", false
}

// appendEnvelope frames a payload with the magic/version/kind header.
func appendEnvelope(kind Kind, payload []byte) []byte {
	buf := make([]byte, 0, 6+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, envMagic)
	buf = append(buf, envVersion, kindCodes[kind])
	return append(buf, payload...)
}

// marshalEnvelope serializes an inner sketch and frames it.
func marshalEnvelope(kind Kind, inner encoding.BinaryMarshaler) ([]byte, error) {
	payload, err := inner.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return appendEnvelope(kind, payload), nil
}

// openEnvelope validates the header and returns the kind and payload.
func openEnvelope(data []byte) (Kind, []byte, error) {
	if len(data) < 6 {
		return "", nil, fmt.Errorf("%w: envelope header needs 6 bytes, have %d", ErrTruncated, len(data))
	}
	if binary.LittleEndian.Uint32(data) != envMagic {
		return "", nil, ErrBadMagic
	}
	if v := data[4]; v != envVersion {
		return "", nil, fmt.Errorf("%w: version %d (this build reads version %d)", ErrUnsupportedVersion, v, envVersion)
	}
	kind, ok := kindFromCode(data[5])
	if !ok {
		return "", nil, fmt.Errorf("%w: kind code %d", ErrUnknownKind, data[5])
	}
	return kind, data[6:], nil
}

// payloadOfKind opens an envelope and checks it carries the expected kind.
func payloadOfKind(data []byte, want Kind) ([]byte, error) {
	kind, payload, err := openEnvelope(data)
	if err != nil {
		return nil, err
	}
	if kind != want {
		return nil, fmt.Errorf("%w: snapshot holds a %s counter, not %s", ErrKindMismatch, kind, want)
	}
	return payload, nil
}

// Marshal serializes any counter of this module — base sketches, Sharded,
// or Windowed — into the tagged envelope. It fails for counters that do not
// implement encoding.BinaryMarshaler (e.g. a user-supplied Counter handed
// to a decorator factory).
func Marshal(c any) ([]byte, error) {
	m, ok := c.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("sbitmap: %T does not support serialization", c)
	}
	return m.MarshalBinary()
}

// Unmarshal reconstructs a counter serialized by Marshal (or any
// MarshalBinary method in this module), dispatching on the envelope's kind
// tag. The restored counter estimates immediately; pass the original
// WithSeed / hash-family options to continue adding items. Windowed and
// keyed Store snapshots are not Counters — restore those with
// UnmarshalWindowed and UnmarshalStore respectively.
//
// For backward compatibility, pre-envelope S-bitmap snapshots (raw
// internal/core format) are still accepted.
func Unmarshal(data []byte, opts ...Option) (Counter, error) {
	o := buildOptions(opts)
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == core.LegacySketchMagic {
		sk, err := core.UnmarshalSketch(data, core.WithHasher(o.newHasher()))
		if err != nil {
			return nil, fmt.Errorf("sbitmap: %w", err)
		}
		return &SBitmap{sk: sk}, nil
	}
	kind, payload, err := openEnvelope(data)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindSBitmap:
		sk, err := core.UnmarshalSketch(payload, core.WithHasher(o.newHasher()))
		if err != nil {
			return nil, fmt.Errorf("sbitmap: %w", err)
		}
		return &SBitmap{sk: sk}, nil
	case KindHLL:
		sk, err := hyperloglog.Unmarshal(payload, o.newHasher())
		if err != nil {
			return nil, err
		}
		return &HyperLogLog{sk: sk}, nil
	case KindLogLog:
		sk, err := loglog.Unmarshal(payload, o.newHasher())
		if err != nil {
			return nil, err
		}
		return &LogLog{sk: sk}, nil
	case KindFM:
		sk, err := fm.Unmarshal(payload, o.newHasher())
		if err != nil {
			return nil, err
		}
		return &FM{sk: sk}, nil
	case KindLinearCount:
		sk, err := linearcount.Unmarshal(payload, o.newHasher())
		if err != nil {
			return nil, err
		}
		return &LinearCounting{sk: sk}, nil
	case KindVirtualBitmap:
		sk, err := virtualbitmap.Unmarshal(payload, o.newHasher())
		if err != nil {
			return nil, err
		}
		return &VirtualBitmap{sk: sk}, nil
	case KindMRBitmap:
		sk, err := mrbitmap.Unmarshal(payload, o.newHasher())
		if err != nil {
			return nil, err
		}
		return &MRBitmap{sk: sk}, nil
	case KindAdaptive:
		sk, err := adaptive.Unmarshal(payload, o.newHasher())
		if err != nil {
			return nil, err
		}
		return &AdaptiveSampler{sk: sk}, nil
	case KindExact:
		c, err := exact.Unmarshal(payload)
		if err != nil {
			return nil, err
		}
		return &Exact{c: c}, nil
	case kindSharded:
		return unmarshalSharded(payload, opts)
	case kindWindowed:
		return nil, errors.New("sbitmap: snapshot holds a Windowed counter; restore it with UnmarshalWindowed")
	case kindStore:
		return nil, errors.New("sbitmap: snapshot holds a keyed Store; restore it with UnmarshalStore")
	case kindWindowRing:
		return nil, errors.New("sbitmap: snapshot holds a per-key sub-window ring; it only decodes inside a windowed Store snapshot")
	default:
		return nil, fmt.Errorf("sbitmap: no decoder for snapshot kind %s", kind)
	}
}
