package sbitmap

import (
	"repro/internal/core"
	"repro/internal/uhash"
)

// Cold-path allocation. A keyed Store materializes one counter per
// distinct key; at millions of keys the per-key constructor cost — a
// fresh Config dimensioning, a fresh Hasher, and three heap objects per
// sketch — dominates cold ingest (BENCH_keyed.json's scattered-cold cell).
// The hooks here let the Store amortize all of it: a counterArena slabs
// per-key state for a Spec whose sketches are identically sized, and
// scratchBulkAdder lets the Store lend one per-stripe hash scratch to
// every tiny sketch instead of each lazily allocating its own ~4 KiB.

// counterArena materializes counters for one Spec out of pre-allocated
// slabs. Arenas are not safe for concurrent use — the Store confines each
// to one lock stripe. Slots are never reclaimed: a counter dropped from
// the Store leaks its slot until the whole slab is unreachable, which is
// why the Store only uses arenas when it is not evicting.
type counterArena interface {
	next() Counter
}

// scratchBulkAdder is the BulkAdder variant whose batch path hashes
// through caller-owned scratch instead of per-sketch buffers. The state
// after a call is bit-identical to the corresponding BulkAdder call.
type scratchBulkAdder interface {
	addBatch64Scratch(scr *uhash.Scratch, items []uint64) int
	addBatchStringScratch(scr *uhash.Scratch, items []string) int
}

func (s *SBitmap) addBatch64Scratch(scr *uhash.Scratch, items []uint64) int {
	return s.sk.AddBatch64Scratch(scr, items)
}

func (s *SBitmap) addBatchStringScratch(scr *uhash.Scratch, items []string) int {
	return s.sk.AddBatchStringScratch(scr, items)
}

// sbitmapArena implements counterArena for KindSBitmap: core.SketchArena
// slabs the sketch state, and the SBitmap facade values come from a
// parallel slab so the whole per-key chain is two pointer bumps.
type sbitmapArena struct {
	arena *core.SketchArena
	wraps []SBitmap
	chunk int
}

func (a *sbitmapArena) next() Counter {
	if len(a.wraps) == 0 {
		if a.chunk == 0 {
			a.chunk = 4
		} else if a.chunk < 256 {
			a.chunk *= 2
		}
		a.wraps = make([]SBitmap, a.chunk)
	}
	w := &a.wraps[0]
	a.wraps = a.wraps[1:]
	w.sk = a.arena.New()
	return w
}

// newArena returns a slab allocator producing counters bit-identical to
// Spec.New's, or nil for kinds without one (only the S-bitmap — the
// Store's headline per-key sketch — has an arena today; other kinds fall
// back to Spec.New per key).
func (s Spec) newArena() (counterArena, error) {
	if s.Kind != KindSBitmap {
		return nil, nil
	}
	cfg, err := s.sbitmapConfig()
	if err != nil {
		return nil, err
	}
	opts, err := s.options()
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	coreOpts := []core.Option{
		core.WithResolution(o.dBits),
		core.WithHasher(o.newHasher()),
	}
	return &sbitmapArena{arena: core.NewSketchArena(cfg, o.seed, coreOpts...)}, nil
}
