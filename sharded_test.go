package sbitmap

import (
	"math"
	"sync"
	"testing"

	"repro/internal/stream"
)

func TestShardedBasics(t *testing.T) {
	s, err := NewSharded(4, 1e5, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Errorf("Shards = %d", s.Shards())
	}
	if s.Estimate() != 0 {
		t.Error("empty sharded estimate nonzero")
	}
	single, _ := New(1e5, 0.03)
	if s.SizeBits() != 4*single.SizeBits() {
		t.Errorf("SizeBits = %d, want 4×%d", s.SizeBits(), single.SizeBits())
	}
	if got := s.Epsilon(); math.Abs(got-0.03/2) > 1e-12 {
		t.Errorf("Epsilon = %v, want eps/sqrt(4)", got)
	}
	if _, err := NewSharded(0, 1e5, 0.03); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewSharded(2, 0, 0.03); err == nil {
		t.Error("bad N accepted")
	}
}

func TestShardedAccuracy(t *testing.T) {
	const n = 50000
	var se float64
	const reps = 60
	for rep := 0; rep < reps; rep++ {
		s, err := NewSharded(8, 1e5, 0.05, WithSeed(uint64(rep)+1))
		if err != nil {
			t.Fatal(err)
		}
		st := stream.NewDistinct(n, uint64(rep)*131+7)
		stream.ForEach(st, func(x uint64) { s.AddUint64(x) })
		d := s.Estimate()/n - 1
		se += d * d
	}
	rrmse := math.Sqrt(se / reps)
	// Sharding should beat the single-sketch ε (≈ ε/√8 ≈ 1.8%); allow a
	// loose band for replication noise.
	if rrmse > 0.035 {
		t.Errorf("sharded RRMSE %.4f, want well under the single-sketch 0.05", rrmse)
	}
}

func TestShardedDuplicateInvariance(t *testing.T) {
	s, err := NewSharded(4, 1e4, 0.05, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		s.AddUint64(i)
	}
	before := s.Estimate()
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 2000; i++ {
			if s.AddUint64(i) {
				t.Fatal("duplicate changed a shard")
			}
		}
	}
	if s.Estimate() != before {
		t.Error("duplicates changed the sharded estimate")
	}
}

func TestShardedKeyPathsAgree(t *testing.T) {
	a, _ := NewSharded(4, 1e4, 0.05, WithSeed(2))
	b, _ := NewSharded(4, 1e4, 0.05, WithSeed(2))
	words := []string{"x", "yy", "zzz", ""}
	for _, w := range words {
		a.AddString(w)
		b.Add([]byte(w))
	}
	if a.Estimate() != b.Estimate() {
		t.Error("string and byte paths diverged")
	}
}

func TestShardedConcurrentUse(t *testing.T) {
	// Run with -race to make this meaningful: concurrent adds from many
	// goroutines must be safe and lose nothing deterministically checkable
	// (the final state must equal a sequential insert of the same set,
	// since per-shard insertion order of DISJOINT keys is irrelevant only
	// in distribution — so we check the estimate's accuracy instead).
	const n = 40000
	const workers = 8
	s, err := NewSharded(8, 1e5, 0.05, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				s.AddUint64(uint64(i))
				s.AddUint64(uint64(i)) // interleaved duplicates
			}
		}(w)
	}
	wg.Wait()
	if rel := math.Abs(s.Estimate()/n - 1); rel > 0.15 {
		t.Errorf("concurrent estimate %.0f for n=%d", s.Estimate(), n)
	}
	s.Reset()
	if s.Estimate() != 0 {
		t.Error("reset did not clear shards")
	}
}

func TestShardedRoutingDisjoint(t *testing.T) {
	// The same key must always route to the same shard: adding one key
	// twice changes the sketch at most once even across shard boundaries.
	s, _ := NewSharded(16, 1e4, 0.05, WithSeed(7))
	changes := 0
	for i := 0; i < 100; i++ {
		if s.AddUint64(42) {
			changes++
		}
	}
	if changes > 1 {
		t.Errorf("single key changed state %d times — routing unstable", changes)
	}
}

func BenchmarkShardedAddParallel(b *testing.B) {
	s, err := NewSharded(8, 1e6, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			s.AddUint64(i)
			i++
		}
	})
}
