package sbitmap

import (
	"fmt"
	"testing"
	"unsafe"
)

// TestStoreSlabEquivalence is the slab allocator's safety rail: the same
// records through a slab-allocated store and a WithSlabAllocator(false)
// store must marshal to identical bytes — arena-materialized counters and
// stripe-shared scratch change where state lives, never what it is. The
// workload mixes scattered singleton runs (arena path) with long same-key
// runs (borrowed-scratch batch path) and crosses several slab chunk
// growths.
func TestStoreSlabEquivalence(t *testing.T) {
	keys, items := keyedWorkload(1500, 20000, 11)
	// Append a few long single-key runs so runs ≥ storeRunBatchMin take
	// the scratch-borrowing batch path.
	for run := 0; run < 4; run++ {
		k := keys[run*7]
		for i := 0; i < 2*storeRunBatchMin; i++ {
			keys = append(keys, k)
			items = append(items, uint64(run)<<32|uint64(i%40))
		}
	}
	strKeys := make([]string, len(keys))
	strItems := make([]string, len(items))
	for i := range keys {
		strKeys[i] = fmt.Sprintf("key-%x", keys[i])
		strItems[i] = fmt.Sprintf("item-%x", items[i])
	}
	spec := MustSpec("sbitmap:n=1e4,eps=0.1,seed=3")

	t.Run("uint64", func(t *testing.T) {
		slab, err := NewStore[uint64](spec)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewStore[uint64](spec, WithSlabAllocator(false))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(keys); i += 777 { // uneven batch sizes
			end := min(i+777, len(keys))
			slab.AddBatch64(keys[i:end], items[i:end])
		}
		for i := range keys {
			plain.AddUint64(keys[i], items[i])
		}
		assertStoresIdentical(t, slab, plain)
	})

	t.Run("string", func(t *testing.T) {
		slab, err := NewStore[string](spec)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewStore[string](spec, WithSlabAllocator(false))
		if err != nil {
			t.Fatal(err)
		}
		slab.AddBatchString(strKeys, strItems)
		plain.AddBatchString(strKeys, strItems)
		assertStoresIdentical(t, slab, plain)
	})
}

// TestStoreSlabEvictionDisablesArena: WithMaxKeys eviction may drop
// counters at any time, and arena slots are never reclaimed — so a
// bounded store must fall back to heap materialization while keeping the
// shared-scratch half of the optimization. Observable contract: the
// bound holds and counting stays correct.
func TestStoreSlabEvictionDisablesArena(t *testing.T) {
	s, err := NewStore[uint64](MustSpec("sbitmap:n=1e4,eps=0.1"), WithMaxKeys(64), WithStripes(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.stripes {
		if s.stripes[i].arena != nil {
			t.Fatalf("stripe %d has an arena despite WithMaxKeys eviction", i)
		}
	}
	keys, items := keyedWorkload(500, 8000, 5)
	s.AddBatch64(keys, items)
	if got := s.Len(); got > 64+4 { // limit + stripe-count transient overshoot
		t.Fatalf("Len() = %d, want ≤ 68", got)
	}
}

// TestStoreClonesMaterializedStringKeys: zero-copy ingest paths hand the
// store keys aliasing a reusable frame buffer; the store must not retain
// that memory. Mutating the caller's backing bytes after ingest must not
// corrupt the stored keys.
func TestStoreClonesMaterializedStringKeys(t *testing.T) {
	for _, slab := range []bool{true, false} {
		t.Run(fmt.Sprintf("slab=%v", slab), func(t *testing.T) {
			s, err := NewStore[string](MustSpec("sbitmap:n=1e4,eps=0.1"), WithSlabAllocator(slab))
			if err != nil {
				t.Fatal(err)
			}
			buf := []byte("flow-a")
			alias := unsafe.String(&buf[0], len(buf)) // what a zero-copy decoder produces
			s.AddBatchString([]string{alias}, []string{"x"})
			s.AddString(alias, "y")
			copy(buf, "QQQQQQ") // the wire listener reusing its frame buffer
			if _, ok := s.Estimate("flow-a"); !ok {
				t.Fatalf("key flow-a lost after caller reused the key's backing bytes")
			}
			if _, ok := s.Estimate("QQQQQQ"); ok {
				t.Fatalf("store retained the caller's mutable backing bytes as a key")
			}
			s.ForEach(func(k string, _ Counter) bool {
				if k != "flow-a" {
					t.Fatalf("stored key %q, want %q", k, "flow-a")
				}
				return true
			})
		})
	}
}

// TestStoreBatchIngestAllocFree pins the steady-state contract the wire
// listener's decode+add path depends on: once a store's keys and scratch
// are warm, keyed batch ingest performs zero heap allocations — for
// scattered batches and for long runs through the borrowed-scratch
// BulkAdder path alike.
func TestStoreBatchIngestAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	spec := MustSpec("sbitmap:n=1e4,eps=0.1")
	nKeys := 256
	keys := make([]uint64, 0, nKeys+2*storeRunBatchMin)
	items := make([]uint64, 0, cap(keys))
	for i := 0; i < nKeys; i++ {
		keys = append(keys, uint64(i)*0x9e37+1)
		items = append(items, uint64(i))
	}
	for i := 0; i < 2*storeRunBatchMin; i++ { // one long run: scratch path
		keys = append(keys, keys[0])
		items = append(items, uint64(i))
	}
	strKeys := make([]string, len(keys))
	strItems := make([]string, len(items))
	for i := range keys {
		strKeys[i] = fmt.Sprintf("key-%x", keys[i])
		strItems[i] = fmt.Sprintf("item-%x", items[i])
	}

	s64, err := NewStore[uint64](spec)
	if err != nil {
		t.Fatal(err)
	}
	s64.AddBatch64(keys, items) // materialize keys, warm scratch + pools
	if allocs := testing.AllocsPerRun(10, func() {
		s64.AddBatch64(keys, items)
	}); allocs != 0 {
		t.Errorf("warm Store.AddBatch64: %.1f allocs/op, want 0", allocs)
	}

	sStr, err := NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	sStr.AddBatchString(strKeys, strItems)
	if allocs := testing.AllocsPerRun(10, func() {
		sStr.AddBatchString(strKeys, strItems)
	}); allocs != 0 {
		t.Errorf("warm Store.AddBatchString: %.1f allocs/op, want 0", allocs)
	}
}
