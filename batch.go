package sbitmap

// Batch ingestion. The paper's closing cost claim (Section 3: the S-bitmap
// needs "similar or less computational cost" than the loglog family) is
// about per-item hash-and-probe work; a deployment ingesting millions of
// items per second additionally pays per-item interface dispatch, per-item
// locking (Sharded), and per-probe bounds checks that the paper's cost
// model does not include. The batch surface removes those: every sketch in
// this module ingests whole slices with the hash loop fused to the insert
// loop, and the decorators route or rotate once per batch instead of once
// per item. The keyed Store builds on the same surface: its batch methods
// group records by key and feed each key's run through BulkAdder.

// BulkAdder is the batch-ingestion capability. Every counter constructed
// by this module (directly or via Spec.New) implements it natively; for
// foreign Counter implementations use the package-level AddBatch64 /
// AddBatchString, which fall back to an item-at-a-time loop.
//
// Both methods are state-equivalent to offering the items one at a time in
// slice order through AddUint64 / AddString: the resulting sketch state is
// bit-identical, and the returned count equals the number of adds that
// would have reported true.
type BulkAdder interface {
	// AddBatch64 offers each 64-bit item in order and returns how many
	// changed the sketch state.
	AddBatch64(items []uint64) int
	// AddBatchString offers each string item in order and returns how many
	// changed the sketch state.
	AddBatchString(items []string) int
}

// AddBatch64 offers every item to c, using the native batch path when c
// implements BulkAdder and an item-at-a-time loop otherwise. It returns
// the number of items that changed the counter's state.
func AddBatch64(c Counter, items []uint64) int {
	if b, ok := c.(BulkAdder); ok {
		return b.AddBatch64(items)
	}
	changed := 0
	for _, item := range items {
		if c.AddUint64(item) {
			changed++
		}
	}
	return changed
}

// AddBatchString offers every string item to c, using the native batch
// path when c implements BulkAdder and an item-at-a-time loop otherwise.
// It returns the number of items that changed the counter's state.
func AddBatchString(c Counter, items []string) int {
	if b, ok := c.(BulkAdder); ok {
		return b.AddBatchString(items)
	}
	changed := 0
	for _, item := range items {
		if c.AddString(item) {
			changed++
		}
	}
	return changed
}

// AddBatch64 implements BulkAdder on the S-bitmap: the hash loop is fused
// with Algorithm 2's insert loop, with the fill level and threshold table
// held in locals across the batch.
func (s *SBitmap) AddBatch64(items []uint64) int { return s.sk.AddBatch64(items) }

// AddBatchString implements BulkAdder for string items.
func (s *SBitmap) AddBatchString(items []string) int { return s.sk.AddBatchString(items) }

// AddBatch64 implements BulkAdder.
func (c *HyperLogLog) AddBatch64(items []uint64) int { return c.sk.AddBatch64(items) }

// AddBatchString implements BulkAdder.
func (c *HyperLogLog) AddBatchString(items []string) int { return c.sk.AddBatchString(items) }

// AddBatch64 implements BulkAdder.
func (c *LogLog) AddBatch64(items []uint64) int { return c.sk.AddBatch64(items) }

// AddBatchString implements BulkAdder.
func (c *LogLog) AddBatchString(items []string) int { return c.sk.AddBatchString(items) }

// AddBatch64 implements BulkAdder.
func (c *FM) AddBatch64(items []uint64) int { return c.sk.AddBatch64(items) }

// AddBatchString implements BulkAdder.
func (c *FM) AddBatchString(items []string) int { return c.sk.AddBatchString(items) }

// AddBatch64 implements BulkAdder.
func (c *LinearCounting) AddBatch64(items []uint64) int { return c.sk.AddBatch64(items) }

// AddBatchString implements BulkAdder.
func (c *LinearCounting) AddBatchString(items []string) int { return c.sk.AddBatchString(items) }

// AddBatch64 implements BulkAdder.
func (c *VirtualBitmap) AddBatch64(items []uint64) int { return c.sk.AddBatch64(items) }

// AddBatchString implements BulkAdder.
func (c *VirtualBitmap) AddBatchString(items []string) int { return c.sk.AddBatchString(items) }

// AddBatch64 implements BulkAdder.
func (c *MRBitmap) AddBatch64(items []uint64) int { return c.sk.AddBatch64(items) }

// AddBatchString implements BulkAdder.
func (c *MRBitmap) AddBatchString(items []string) int { return c.sk.AddBatchString(items) }

// AddBatch64 implements BulkAdder.
func (c *AdaptiveSampler) AddBatch64(items []uint64) int { return c.sk.AddBatch64(items) }

// AddBatchString implements BulkAdder.
func (c *AdaptiveSampler) AddBatchString(items []string) int { return c.sk.AddBatchString(items) }

// AddBatch64 implements BulkAdder.
func (c *Exact) AddBatch64(items []uint64) int { return c.c.AddBatch64(items) }

// AddBatchString implements BulkAdder.
func (c *Exact) AddBatchString(items []string) int { return c.c.AddBatchString(items) }

var (
	_ BulkAdder = (*SBitmap)(nil)
	_ BulkAdder = (*HyperLogLog)(nil)
	_ BulkAdder = (*LogLog)(nil)
	_ BulkAdder = (*FM)(nil)
	_ BulkAdder = (*LinearCounting)(nil)
	_ BulkAdder = (*VirtualBitmap)(nil)
	_ BulkAdder = (*MRBitmap)(nil)
	_ BulkAdder = (*AdaptiveSampler)(nil)
	_ BulkAdder = (*Exact)(nil)
	_ BulkAdder = (*Sharded)(nil)
)
