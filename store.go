package sbitmap

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/uhash"
)

// Store is the keyed face of the module: a concurrent collection of
// per-key counters — the paper's headline deployment ("estimating flows
// for each of the links", Section 7) and the spread-estimation workload of
// Estan et al. (2006), where a monitor keeps one tiny sketch per flow,
// host, or link, for millions of keys at once.
//
// Every counter is lazily materialized from a single Spec the first time
// its key is seen, so all keys share one dimensioning, one hash seed, and
// one hash family: estimates are comparable across keys, identically
// specced Stores on different machines can Merge key-wise (for Mergeable
// kinds), and a whole Store snapshots into one framed container
// (MarshalBinary / UnmarshalStore).
//
// Keys are strings or 64-bit integers (any type whose underlying type is
// one of the two). Access is lock-striped: keys hash onto independently
// locked stripes of a key→counter map, so ingestion scales across
// goroutines, and the keyed batch methods route a whole batch with one
// hash pass and take each touched stripe's lock once per batch.
//
// A Store is safe for concurrent use. Memory is bounded by WithMaxKeys
// plus the OnEvict hook; unbounded otherwise (one counter per distinct
// key ever seen).
type Store[K StoreKey] struct {
	spec    Spec
	stripes []storeStripe[K]
	router  *uhash.Mixer
	limit   int  // max keys (0 = unbounded)
	isStr   bool // K's underlying type is string (cached keyIsString)
	slab    bool // per-stripe arenas + shared scratch (WithSlabAllocator)
	keys    atomic.Int64
	onEvict func(K, Counter)

	// gen is the dirty-tracking generation: every mutation stamps its
	// stripe with the current value, and MarshalStripes advances it to cut
	// a new checkpoint epoch. See MarshalStripes for the protocol.
	gen atomic.Uint64

	// newCounter is the per-key factory: Spec.New with the construction
	// validated once in NewStore, so materialization cannot fail later.
	newCounter func() Counter

	// newArena builds a stripe's slab allocator; nil when the spec's kind
	// has no arena or slab allocation is off (see WithSlabAllocator).
	newArena func() counterArena

	// win is the sliding-window configuration of a windowed(...) spec; nil
	// otherwise. When set, per-key counters are windowRings, wm is the
	// watermark sub-window index (the highest any record has reached;
	// wmNone before the first), and late counts records that arrived more
	// than ring sub-windows behind the watermark and were folded into the
	// watermark window.
	win  *windowShared
	wm   atomic.Int64
	late atomic.Int64

	// scratch pools the routing/grouping buffers of in-flight batches.
	scratch sync.Pool
}

// StoreKey constrains Store keys to the two wire-representable key shapes:
// strings (flow tuples, user ids, URLs) and 64-bit words (packed 5-tuples
// like netflow.FlowKey, link or tenant ids).
type StoreKey interface {
	~string | ~uint64
}

// storeStripe is one lock-striped segment of the key space. Beyond the
// lock and map it owns the stripe's cold-path slab allocator and one hash
// scratch lent to every per-key sketch's batch path (both guarded by mu),
// so neither per-key state nor the ~4 KiB batch buffers are allocated per
// key.
type storeStripe[K StoreKey] struct {
	mu     sync.Mutex
	m      map[K]Counter
	arena  counterArena  // nil unless slab allocation is on
	scr    uhash.Scratch // shared batch-hash buffers, under mu
	modGen uint64        // generation of the last mutation, under mu
	_      [40]byte      // pad to reduce false sharing between adjacent locks
}

// StoreOption configures a Store at construction.
type StoreOption func(*storeConfig)

type storeConfig struct {
	stripes int
	maxKeys int
	noSlab  bool
}

// WithStripes sets the lock-stripe count (default 64). More stripes admit
// more concurrent writers at a few hundred bytes each; the count does not
// affect estimates or snapshots.
func WithStripes(n int) StoreOption { return func(c *storeConfig) { c.stripes = n } }

// WithMaxKeys bounds the number of live keys: materializing a key beyond
// the limit first evicts an arbitrary key — from the new key's own
// stripe when it holds one, otherwise from another uncontended stripe
// (sketch eviction is estimator-agnostic — any victim loses exactly its
// own per-key count). Pair with OnEvict to spill evicted counters.
// Under concurrent ingest the bound can transiently overshoot by at
// most the stripe count. 0 (the default) means unbounded.
func WithMaxKeys(n int) StoreOption { return func(c *storeConfig) { c.maxKeys = n } }

// WithSlabAllocator toggles the cold-path allocator (default on): per-key
// sketch state is carved out of per-stripe slabs (identically specced
// sketches are identically sized) and every sketch's batch path borrows
// one per-stripe hash scratch instead of lazily allocating ~4 KiB each.
// Estimates are bit-identical either way; the toggle exists for
// before/after measurement (sbench -run keyed) and as an escape hatch.
//
// Slabs are never reclaimed slot-wise, so the arena half is automatically
// disabled when WithMaxKeys eviction is active (evicted counters would
// leak their slots); the shared-scratch half stays on.
func WithSlabAllocator(on bool) StoreOption { return func(c *storeConfig) { c.noSlab = !on } }

// storeDefaultStripes is the default lock-stripe count.
const storeDefaultStripes = 64

// storeRouterSalt decouples the stripe router's seed from the counters'
// hash seed (their hash functions must be independent).
const storeRouterSalt = 0x5b0a5ed5707e15

// NewStore returns an empty keyed store whose per-key counters are built
// from spec. The spec is validated by constructing (and discarding) one
// counter, so any dimensioning error surfaces here, not mid-ingest.
//
// A spec carrying the windowed(width=…,ring=…) modifier builds a
// sliding-window store: each key holds a ring of Ring sub-window
// sketches of the base spec, rotated by record timestamps (the At
// ingest variants), and EstimateWindow answers queries over a trailing
// span. See the windowRing documentation for the time model.
func NewStore[K StoreKey](spec Spec, opts ...StoreOption) (*Store[K], error) {
	cfg := storeConfig{stripes: storeDefaultStripes}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.stripes < 1 {
		return nil, fmt.Errorf("sbitmap: store stripe count %d < 1", cfg.stripes)
	}
	if cfg.maxKeys < 0 {
		return nil, fmt.Errorf("sbitmap: store key limit %d < 0", cfg.maxKeys)
	}
	if spec.Window == 0 && spec.Ring != 0 {
		return nil, fmt.Errorf("sbitmap: store spec ring=%d without a window width", spec.Ring)
	}
	if spec.Window != 0 {
		if spec.Window < 0 {
			return nil, fmt.Errorf("sbitmap: store spec window %s < 0", spec.Window)
		}
		if spec.Ring == 0 {
			spec.Ring = DefaultWindowRing
		}
		if spec.Ring < 0 || spec.Ring > maxWindowRing {
			return nil, fmt.Errorf("sbitmap: store spec ring %d outside [1, %d]", spec.Ring, maxWindowRing)
		}
		if spec.Window > math.MaxInt64/time.Duration(spec.Ring) {
			return nil, fmt.Errorf("sbitmap: store spec retention %s×%d overflows a duration", spec.Window, spec.Ring)
		}
	}
	// The per-sub-window sketch is dimensioned by the spec minus the
	// window modifier; for unwindowed specs base == spec.
	base := spec.base()
	if _, err := base.New(); err != nil {
		return nil, fmt.Errorf("sbitmap: store spec: %w", err)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Store[K]{
		spec:    spec,
		stripes: make([]storeStripe[K], cfg.stripes),
		router:  uhash.NewMixer(seed ^ storeRouterSalt),
		limit:   cfg.maxKeys,
		isStr:   keyIsString[K](),
		slab:    !cfg.noSlab,
	}
	newBase := func() Counter {
		c, err := base.New()
		if err != nil {
			// The spec built a counter above; a deterministic
			// constructor cannot fail on the same input later.
			panic(fmt.Sprintf("sbitmap: store spec stopped constructing: %v", err))
		}
		return c
	}
	s.newCounter = newBase
	s.wm.Store(wmNone)
	if spec.Window != 0 {
		probe := newBase()
		_, mergeable := probe.(Mergeable)
		s.win = &windowShared{
			width:      int64(spec.Window),
			ring:       spec.Ring,
			mergeable:  mergeable,
			newCounter: newBase,
			wm:         &s.wm,
		}
		win := s.win
		s.newCounter = func() Counter { return newWindowRing(win) }
	}
	if s.slab && s.limit == 0 && s.win == nil {
		// Validated once here (the arena shares newSBitmap's dimensioning,
		// already proven constructible above), so per-stripe arena
		// construction cannot fail later. Windowed stores skip the arena:
		// their unit of allocation is the ring, not a single fixed-size
		// sketch (sub-window counters are allocated lazily per slot).
		if a, err := spec.newArena(); err == nil && a != nil {
			s.newArena = func() counterArena {
				a, _ := spec.newArena()
				return a
			}
		}
	}
	for i := range s.stripes {
		s.stripes[i].m = make(map[K]Counter)
		if s.newArena != nil {
			s.stripes[i].arena = s.newArena()
		}
	}
	return s, nil
}

// OnEvict installs the eviction hook: fn runs whenever WithMaxKeys (or a
// future bounded-memory policy) removes a key, receiving the key and its
// final counter — snapshot it, sum it into a coarser aggregate, or drop
// it. The hook runs with the key's stripe locked: keep it cheap and do
// not call back into the Store. Install before concurrent use.
func (s *Store[K]) OnEvict(fn func(key K, c Counter)) { s.onEvict = fn }

// Spec returns the Spec every per-key counter is built from.
func (s *Store[K]) Spec() Spec { return s.spec }

// keyIsString reports whether K's underlying type is string (the
// constraint admits only string- and uint64-kinded keys). The hot paths
// read the Store's cached isStr instead of re-deriving this per record.
func keyIsString[K StoreKey]() bool {
	var zero K
	return reflect.TypeOf(zero).Kind() == reflect.String
}

// keyString and keyWord reinterpret a key as its underlying
// representation (valid because K's underlying type is exactly string or
// uint64); keyFromString / keyFromWord invert them.
func keyString[K StoreKey](k K) string     { return *(*string)(unsafe.Pointer(&k)) }
func keyWord[K StoreKey](k K) uint64       { return *(*uint64)(unsafe.Pointer(&k)) }
func keyFromString[K StoreKey](v string) K { return *(*K)(unsafe.Pointer(&v)) }
func keyFromWord[K StoreKey](v uint64) K   { return *(*K)(unsafe.Pointer(&v)) }

// hashKey routes a key: the high word of its 128-bit router hash.
func (s *Store[K]) hashKey(key K) uint64 {
	if s.isStr {
		hi, _ := s.router.Sum128String(keyString(key))
		return hi
	}
	hi, _ := s.router.Sum128Uint64(keyWord(key))
	return hi
}

// stripeIndex maps a router hash word onto [0, stripes) by multiply-shift
// (unbiased for any stripe count).
func (s *Store[K]) stripeIndex(word uint64) uint64 {
	return ((word >> 32) * uint64(len(s.stripes))) >> 32
}

func (s *Store[K]) stripeFor(key K) *storeStripe[K] {
	return &s.stripes[s.stripeIndex(s.hashKey(key))]
}

// touchLocked stamps a stripe dirty at the current generation. Every
// path that mutates stripe state — adds, batch ingest, merge, remove,
// reset, and eviction (which may victimize a stripe other than the one
// being inserted into) — calls it with the stripe's lock held, so
// MarshalStripes can encode exactly the stripes touched since a cut.
func (s *Store[K]) touchLocked(st *storeStripe[K]) { st.modGen = s.gen.Load() }

// counterLocked returns key's counter, materializing (and, at the key
// limit, evicting) under the stripe lock the caller holds. A string key
// is cloned on materialization: the map must own its key storage, because
// zero-copy ingest paths (the wire listener) pass keys aliasing reusable
// frame buffers. Lookups of already-live keys never clone.
func (s *Store[K]) counterLocked(st *storeStripe[K], key K) Counter {
	if c, ok := st.m[key]; ok {
		return c
	}
	if s.limit > 0 && int(s.keys.Load()) >= s.limit {
		s.evictOneLocked(st, key)
	}
	var c Counter
	if st.arena != nil {
		c = st.arena.next()
	} else {
		c = s.newCounter()
	}
	if s.isStr {
		key = keyFromString[K](strings.Clone(keyString(key)))
	}
	st.m[key] = c
	s.keys.Add(1)
	return c
}

// evictOneLocked removes one key (≠ incoming) and fires the eviction
// hook: first from the locked stripe, else from another stripe taken
// with TryLock (never a blocking second lock, so eviction cannot
// deadlock against batch ingest or a concurrent evictor). Map iteration
// order makes the victim effectively random, which is the right neutral
// policy for sketches: no per-key access metadata, and any victim
// forfeits exactly its own count.
func (s *Store[K]) evictOneLocked(st *storeStripe[K], incoming K) {
	evictFrom := func(cand *storeStripe[K], skipIncoming bool) bool {
		for k, c := range cand.m {
			if skipIncoming && k == incoming {
				continue
			}
			delete(cand.m, k)
			s.touchLocked(cand)
			s.keys.Add(-1)
			if s.onEvict != nil {
				s.onEvict(k, c)
			}
			return true
		}
		return false
	}
	if evictFrom(st, true) {
		return
	}
	for i := range s.stripes {
		cand := &s.stripes[i]
		if cand == st || !cand.mu.TryLock() {
			continue
		}
		ok := evictFrom(cand, false)
		cand.mu.Unlock()
		if ok {
			return
		}
	}
	// Every other stripe was empty or busy; the insert proceeds and the
	// store transiently overshoots (bounded by the stripe count).
}

// advanceWatermark raises the watermark sub-window index to at least
// widx and returns the post-advance watermark. Lock-free (CAS max): the
// watermark is read on estimate paths that do not hold stripe locks.
func (s *Store[K]) advanceWatermark(widx int64) int64 {
	for {
		cur := s.wm.Load()
		if cur >= widx && cur != wmNone {
			return cur
		}
		if s.wm.CompareAndSwap(cur, widx) {
			return widx
		}
	}
}

// currentWidx returns the watermark sub-window, or sub-window 0 for a
// windowed store that has never seen a record — untimestamped ingest is
// deterministic (never wall-clock), so replaying the same records always
// rebuilds the same state.
func (s *Store[K]) currentWidx() int64 {
	if wm := s.wm.Load(); wm != wmNone {
		return wm
	}
	return 0
}

// resolveWidx resolves the sub-window an n-record ingest lands in, given
// the timestamp's own sub-window: normally widx itself (advancing the
// watermark when the batch moves time forward), but a record more than
// ring sub-windows behind the watermark has lost its slot — it folds
// into the watermark window and is counted in LateRecords. Returns 0 for
// unwindowed stores, whose ingest ignores time entirely.
func (s *Store[K]) resolveWidx(widx int64, n int) int64 {
	if s.win == nil {
		return 0
	}
	wm := s.advanceWatermark(widx)
	if widx <= wm-int64(s.win.ring) {
		s.late.Add(int64(n))
		return wm
	}
	return widx
}

// slotLocked resolves the counter that receives sub-window widx's
// records for key — the key's counter itself for unwindowed stores, the
// ring slot rotated to widx for windowed ones. Stripe lock held.
func (s *Store[K]) slotLocked(st *storeStripe[K], key K, widx int64) Counter {
	c := s.counterLocked(st, key)
	if s.win != nil {
		c = c.(*windowRing).slot(widx)
	}
	return c
}

// Add offers item to key's counter, materializing it on first sight; it
// reports whether the counter's state changed. On a windowed store the
// item lands in the watermark sub-window (use AddAt to place it in
// time). Safe for concurrent use.
func (s *Store[K]) Add(key K, item []byte) bool {
	widx := s.resolveWidx(s.currentWidx(), 1)
	st := s.stripeFor(key)
	st.mu.Lock()
	s.touchLocked(st)
	changed := s.slotLocked(st, key, widx).Add(item)
	st.mu.Unlock()
	return changed
}

// AddAt is Add with an explicit record timestamp: on a windowed store
// the item lands in ts's sub-window (floor(ts/width)); an unwindowed
// store ignores ts. Timestamps are caller-supplied — replayed traces
// carry their own clock — and a record more than ring sub-windows behind
// the watermark folds into the watermark window (see LateRecords).
func (s *Store[K]) AddAt(ts time.Time, key K, item []byte) bool {
	widx := s.resolveWidx(s.tsWidx(ts), 1)
	st := s.stripeFor(key)
	st.mu.Lock()
	s.touchLocked(st)
	changed := s.slotLocked(st, key, widx).Add(item)
	st.mu.Unlock()
	return changed
}

// AddUint64 offers a 64-bit item to key's counter; safe for concurrent
// use. On a windowed store the item lands in the watermark sub-window.
func (s *Store[K]) AddUint64(key K, item uint64) bool {
	widx := s.resolveWidx(s.currentWidx(), 1)
	st := s.stripeFor(key)
	st.mu.Lock()
	s.touchLocked(st)
	changed := s.slotLocked(st, key, widx).AddUint64(item)
	st.mu.Unlock()
	return changed
}

// AddUint64At is AddUint64 with an explicit record timestamp; see AddAt.
func (s *Store[K]) AddUint64At(ts time.Time, key K, item uint64) bool {
	widx := s.resolveWidx(s.tsWidx(ts), 1)
	st := s.stripeFor(key)
	st.mu.Lock()
	s.touchLocked(st)
	changed := s.slotLocked(st, key, widx).AddUint64(item)
	st.mu.Unlock()
	return changed
}

// AddString offers a string item to key's counter; safe for concurrent
// use. On a windowed store the item lands in the watermark sub-window.
func (s *Store[K]) AddString(key K, item string) bool {
	widx := s.resolveWidx(s.currentWidx(), 1)
	st := s.stripeFor(key)
	st.mu.Lock()
	s.touchLocked(st)
	changed := s.slotLocked(st, key, widx).AddString(item)
	st.mu.Unlock()
	return changed
}

// AddStringAt is AddString with an explicit record timestamp; see AddAt.
func (s *Store[K]) AddStringAt(ts time.Time, key K, item string) bool {
	widx := s.resolveWidx(s.tsWidx(ts), 1)
	st := s.stripeFor(key)
	st.mu.Lock()
	s.touchLocked(st)
	changed := s.slotLocked(st, key, widx).AddString(item)
	st.mu.Unlock()
	return changed
}

// tsWidx discretizes a record timestamp into its sub-window index; 0 for
// unwindowed stores (where it is never used).
func (s *Store[K]) tsWidx(ts time.Time) int64 {
	if s.win == nil {
		return 0
	}
	return widxOf(ts.UnixNano(), s.win.width)
}

// storeScratch holds one in-flight batch's routing state: each record's
// (key, original position) grouped stripe-contiguously by counting sort,
// plus the per-stripe layout and an item-gather buffer.
type storeScratch[K StoreKey] struct {
	hi     []uint64 // router high words, one per record
	recs   []storeRec[K]
	counts []int
	offs   []int
	buf64  []uint64
	bufS   []string
}

// storeRec carries a record's key through stripe grouping; pos (the
// record's index in the caller's slices) fetches the item when the run
// is ingested. The counting sort preserves original record order within
// each stripe, which keeps the batch path bit-identical to per-item
// ingestion.
type storeRec[K StoreKey] struct {
	key K
	pos int
}

func (s *Store[K]) getScratch(n int) *storeScratch[K] {
	sc, _ := s.scratch.Get().(*storeScratch[K])
	if sc == nil {
		sc = &storeScratch[K]{}
	}
	if cap(sc.hi) < n {
		sc.hi = make([]uint64, n)
		sc.recs = make([]storeRec[K], n)
	}
	if cap(sc.counts) < len(s.stripes) {
		sc.counts = make([]int, len(s.stripes))
		sc.offs = make([]int, len(s.stripes))
	}
	return sc
}

// putScratch returns leased buffers, dropping string references (keys and
// gathered items) so the pool cannot pin a caller's batch in memory.
func (s *Store[K]) putScratch(sc *storeScratch[K]) {
	if s.isStr {
		clear(sc.recs)
	}
	clear(sc.bufS)
	s.scratch.Put(sc)
}

// hashKeys fills sc.hi with the router hash of every key, through the
// router's batch path.
func (s *Store[K]) hashKeys(keys []K, hi []uint64) {
	if len(keys) == 0 {
		return
	}
	if s.isStr {
		strs := unsafe.Slice((*string)(unsafe.Pointer(&keys[0])), len(keys))
		s.router.Sum128StringBatch(strs, hi, nil)
		return
	}
	words := unsafe.Slice((*uint64)(unsafe.Pointer(&keys[0])), len(keys))
	s.router.Sum128Uint64Batch(words, hi, nil)
}

// group routes every key and counting-sorts the records
// stripe-contiguously: on return sc.recs[offs[i]-counts[i]:offs[i]] are
// stripe i's records in original batch order.
func (s *Store[K]) group(sc *storeScratch[K], keys []K) (counts, offs []int) {
	n := len(keys)
	hi := sc.hi[:n]
	s.hashKeys(keys, hi)
	counts = sc.counts[:len(s.stripes)]
	for i := range counts {
		counts[i] = 0
	}
	for i, w := range hi {
		idx := s.stripeIndex(w)
		hi[i] = idx
		counts[idx]++
	}
	offs = sc.offs[:len(s.stripes)]
	sum := 0
	for i, c := range counts {
		offs[i] = sum
		sum += c
	}
	recs := sc.recs[:n]
	for i, key := range keys {
		idx := hi[i]
		recs[offs[idx]] = storeRec[K]{key: key, pos: i}
		offs[idx]++
	}
	return counts, offs
}

// storeRunBatchMin is the run length at which a key's run switches from
// looping the counter's per-item Add (map lookup already amortized per
// run) to its BulkAdder path. Short runs must NOT use BulkAdder: its
// setup — including the batch-hash scratch many sketches allocate lazily
// on first use (~4 KiB) — would be paid per tiny per-key sketch, which at
// a million keys turns into gigabytes of scratch and dominates runtime.
// Long runs amortize that and win on fused hashing.
const storeRunBatchMin = 64

// AddBatch64 offers record i's item items[i] to key keys[i]'s counter,
// for the whole batch, and returns how many offers changed counter state.
// One batched hash pass routes every key, a counting sort groups records
// stripe-contiguously (original order preserved within each stripe), and
// each touched stripe's lock is taken once per batch. Within a stripe,
// maximal runs of adjacent same-key records share one map lookup, and
// long runs (≥64 records — exporter flushes, hot keys) go through the
// counter's BulkAdder fast path, hashing through the stripe's shared
// scratch. Stripes are drained opportunistically (TryLock sweeps, like
// Sharded's batch path) so concurrent batches fan out across stripes
// instead of convoying; a sweep finding every pending stripe busy blocks
// on the first.
//
// State-equivalent to calling AddUint64(keys[i], items[i]) in slice
// order: records are never reordered within a key (or at all within a
// stripe), so the resulting counters are bit-identical. The store clones
// any string key it materializes, so callers may reuse the keys' backing
// memory (a decoded frame buffer) across calls. Steady-state batches
// allocate nothing. Safe for concurrent use. Panics if the slices'
// lengths differ.
func (s *Store[K]) AddBatch64(keys []K, items []uint64) int {
	return s.addBatch64(s.resolveWidx(s.currentWidx(), len(keys)), keys, items)
}

// AddBatch64At is AddBatch64 with an explicit record timestamp shared by
// the whole batch (one frame = one capture instant): on a windowed store
// every record lands in ts's sub-window; an unwindowed store ignores ts.
// See AddAt for the timestamp contract.
func (s *Store[K]) AddBatch64At(ts time.Time, keys []K, items []uint64) int {
	return s.addBatch64(s.resolveWidx(s.tsWidx(ts), len(keys)), keys, items)
}

func (s *Store[K]) addBatch64(widx int64, keys []K, items []uint64) int {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("sbitmap: Store.AddBatch64 with %d keys and %d items", len(keys), len(items)))
	}
	if len(keys) == 0 {
		return 0
	}
	sc := s.getScratch(len(keys))
	defer s.putScratch(sc)
	counts, offs := s.group(sc, keys)
	if cap(sc.buf64) < len(items) {
		sc.buf64 = make([]uint64, len(items))
	}
	// The TryLock drain sweep, written out per item type (here and in
	// AddBatchString) rather than shared through function values: closures
	// capturing the batch state would cost an allocation per call, and the
	// wire listener's decode+add path must stay allocation-free.
	changed := 0
	pending := 0
	for _, c := range counts {
		if c > 0 {
			pending++
		}
	}
	for pending > 0 {
		progressed := false
		for i, c := range counts {
			if c == 0 {
				continue
			}
			st := &s.stripes[i]
			if !st.mu.TryLock() {
				continue
			}
			changed += s.ingest64Locked(st, sc, offs[i]-c, offs[i], items, widx)
			st.mu.Unlock()
			counts[i] = 0
			pending--
			progressed = true
		}
		if !progressed {
			for i, c := range counts {
				if c == 0 {
					continue
				}
				st := &s.stripes[i]
				st.mu.Lock()
				changed += s.ingest64Locked(st, sc, offs[i]-c, offs[i], items, widx)
				st.mu.Unlock()
				counts[i] = 0
				pending--
				break
			}
		}
	}
	return changed
}

// AddBatchString is AddBatch64 for string items; see AddBatch64 for the
// routing, equivalence, and concurrency contract.
func (s *Store[K]) AddBatchString(keys []K, items []string) int {
	return s.addBatchString(s.resolveWidx(s.currentWidx(), len(keys)), keys, items)
}

// AddBatchStringAt is AddBatchString with an explicit record timestamp
// shared by the whole batch; see AddBatch64At.
func (s *Store[K]) AddBatchStringAt(ts time.Time, keys []K, items []string) int {
	return s.addBatchString(s.resolveWidx(s.tsWidx(ts), len(keys)), keys, items)
}

func (s *Store[K]) addBatchString(widx int64, keys []K, items []string) int {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("sbitmap: Store.AddBatchString with %d keys and %d items", len(keys), len(items)))
	}
	if len(keys) == 0 {
		return 0
	}
	sc := s.getScratch(len(keys))
	defer s.putScratch(sc)
	counts, offs := s.group(sc, keys)
	if cap(sc.bufS) < len(items) {
		sc.bufS = make([]string, len(items))
	}
	changed := 0
	pending := 0
	for _, c := range counts {
		if c > 0 {
			pending++
		}
	}
	for pending > 0 {
		progressed := false
		for i, c := range counts {
			if c == 0 {
				continue
			}
			st := &s.stripes[i]
			if !st.mu.TryLock() {
				continue
			}
			changed += s.ingestStringLocked(st, sc, offs[i]-c, offs[i], items, widx)
			st.mu.Unlock()
			counts[i] = 0
			pending--
			progressed = true
		}
		if !progressed {
			for i, c := range counts {
				if c == 0 {
					continue
				}
				st := &s.stripes[i]
				st.mu.Lock()
				changed += s.ingestStringLocked(st, sc, offs[i]-c, offs[i], items, widx)
				st.mu.Unlock()
				counts[i] = 0
				pending--
				break
			}
		}
	}
	return changed
}

// ingest64Locked feeds one stripe's grouped segment to its counters, with
// the stripe locked: split into maximal adjacent same-key runs,
// materialize each run's counter once, loop per-item Adds below
// storeRunBatchMin and take the batch path (gathering the run's items
// contiguously first) at or above it.
func (s *Store[K]) ingest64Locked(st *storeStripe[K], sc *storeScratch[K], start, end int, items []uint64, widx int64) int {
	seg := sc.recs[start:end]
	s.touchLocked(st)
	changed := 0
	for j := 0; j < len(seg); {
		k := j + 1
		for k < len(seg) && seg[k].key == seg[j].key {
			k++
		}
		c := s.slotLocked(st, seg[j].key, widx)
		if k-j < storeRunBatchMin {
			for _, r := range seg[j:k] {
				if c.AddUint64(items[r.pos]) {
					changed++
				}
			}
		} else {
			buf := sc.buf64[:k-j]
			for i, r := range seg[j:k] {
				buf[i] = items[r.pos]
			}
			changed += s.addRun64(st, c, buf)
		}
		j = k
	}
	return changed
}

// ingestStringLocked is ingest64Locked for string items.
func (s *Store[K]) ingestStringLocked(st *storeStripe[K], sc *storeScratch[K], start, end int, items []string, widx int64) int {
	seg := sc.recs[start:end]
	s.touchLocked(st)
	changed := 0
	for j := 0; j < len(seg); {
		k := j + 1
		for k < len(seg) && seg[k].key == seg[j].key {
			k++
		}
		c := s.slotLocked(st, seg[j].key, widx)
		if k-j < storeRunBatchMin {
			for _, r := range seg[j:k] {
				if c.AddString(items[r.pos]) {
					changed++
				}
			}
		} else {
			buf := sc.bufS[:k-j]
			for i, r := range seg[j:k] {
				buf[i] = items[r.pos]
			}
			changed += s.addRunString(st, c, buf)
		}
		j = k
	}
	return changed
}

// addRun64 dispatches one key's long run: when the slab allocator is on
// and the counter's batch path can borrow scratch, it hashes through the
// stripe's shared buffers (so a tiny per-key sketch never lazily allocates
// its own ~4 KiB); otherwise the counter's ordinary BulkAdder path. The
// resulting sketch state is bit-identical either way.
func (s *Store[K]) addRun64(st *storeStripe[K], c Counter, buf []uint64) int {
	if s.slab {
		if sa, ok := c.(scratchBulkAdder); ok {
			return sa.addBatch64Scratch(&st.scr, buf)
		}
	}
	return AddBatch64(c, buf)
}

// addRunString is addRun64 for string items.
func (s *Store[K]) addRunString(st *storeStripe[K], c Counter, buf []string) int {
	if s.slab {
		if sa, ok := c.(scratchBulkAdder); ok {
			return sa.addBatchStringScratch(&st.scr, buf)
		}
	}
	return AddBatchString(c, buf)
}

// Estimate returns key's distinct-count estimate; ok is false if the key
// has never been seen (or was evicted). Safe for concurrent use.
func (s *Store[K]) Estimate(key K) (estimate float64, ok bool) {
	st := s.stripeFor(key)
	st.mu.Lock()
	c, ok := st.m[key]
	if ok {
		estimate = c.Estimate()
	}
	st.mu.Unlock()
	return estimate, ok
}

// EstimateBatch answers Estimate for a whole batch of keys in one routed
// pass: out[i], ok[i] = Estimate(keys[i]). Keys are routed with one
// batched hash pass and grouped stripe-contiguously (the ingest path's
// counting sort), so each touched stripe's lock is taken once per batch
// instead of once per key. Duplicate keys are answered independently.
// The point reads are per-stripe consistent, not globally atomic — the
// multi-key read of a dashboard or rules evaluator, not a snapshot. Safe
// for concurrent use. Panics if the slices' lengths differ.
func (s *Store[K]) EstimateBatch(keys []K, out []float64, ok []bool) {
	if len(keys) != len(out) || len(keys) != len(ok) {
		panic(fmt.Sprintf("sbitmap: Store.EstimateBatch with %d keys, %d out, %d ok",
			len(keys), len(out), len(ok)))
	}
	if len(keys) == 0 {
		return
	}
	sc := s.getScratch(len(keys))
	defer s.putScratch(sc)
	counts, offs := s.group(sc, keys)
	for i, n := range counts {
		if n == 0 {
			continue
		}
		st := &s.stripes[i]
		st.mu.Lock()
		for _, rec := range sc.recs[offs[i]-n : offs[i]] {
			c, hit := st.m[rec.key]
			ok[rec.pos] = hit
			if hit {
				out[rec.pos] = c.Estimate()
			} else {
				out[rec.pos] = 0
			}
		}
		st.mu.Unlock()
	}
}

// WindowEstimate is EstimateWindow's answer: the distinct-count estimate
// over the covered interval [Start, End), plus how it was produced.
type WindowEstimate struct {
	// Estimate is the distinct-count estimate over the covered interval.
	Estimate float64
	// Windows is how many live sub-window sketches contributed (at most
	// ceil(span/width); fewer when some covered sub-windows saw no
	// records for the key).
	Windows int
	// Start and End bound the covered interval, derived from the
	// watermark: [Start, End) spans the covering sub-windows, the newest
	// of which (the watermark window) may still be filling.
	Start, End time.Time
	// Tumbling marks the non-mergeable fallback: the base kind (the
	// paper's S-bitmap) cannot union sub-windows, so the estimate is the
	// last complete sub-window's — the paper's own "every minute
	// interval" reporting — regardless of the requested span.
	Tumbling bool
}

// EstimateWindow answers "how many distinct items did key see over the
// trailing span?" on a windowed store. The span is covered by
// n = ceil(span/width) sub-windows ending at the watermark (the newest,
// possibly still-filling sub-window any record has reached — queries
// never consult the wall clock); for Mergeable base kinds the covering
// sketches are unioned at query time, while the S-bitmap falls back to
// tumbling semantics (see WindowEstimate.Tumbling). ok is false if the
// key has never been seen (or was evicted). Errors: ErrNotWindowed when
// the store's spec has no windowed(...) modifier, ErrWindowSpan when
// span is non-positive or exceeds Spec.Retention. Safe for concurrent
// use.
func (s *Store[K]) EstimateWindow(key K, span time.Duration) (WindowEstimate, bool, error) {
	if s.win == nil {
		return WindowEstimate{}, false, ErrNotWindowed
	}
	n, err := s.win.coveringWindows(span)
	if err != nil {
		return WindowEstimate{}, false, err
	}
	wm := s.wm.Load()
	if wm == wmNone {
		wm = 0
	}
	var we WindowEstimate
	st := s.stripeFor(key)
	st.mu.Lock()
	c, ok := st.m[key]
	if ok {
		we, err = c.(*windowRing).estimateWindow(wm, n)
	}
	st.mu.Unlock()
	if err != nil {
		return WindowEstimate{}, false, err
	}
	we.Tumbling = !s.win.mergeable
	lo := wm - int64(n) + 1
	if we.Tumbling {
		we.Windows = 1
		lo, wm = wm-1, wm-1
	}
	we.Start = time.Unix(0, lo*s.win.width)
	we.End = time.Unix(0, (wm+1)*s.win.width)
	return we, ok, nil
}

// WindowState reports a windowed store's time position: the watermark
// sub-window index (the highest any ingested record has reached; the
// watermark window starts at watermark × Spec.Window on the unix epoch
// timeline) and the late-record count (records that arrived more than
// ring sub-windows behind the watermark and were folded into the
// watermark window). ok is false — and both values meaningless — for
// unwindowed stores, and watermark is wmNone's exported guise (a large
// negative number) before any record. A checkpointing server persists
// the watermark and restores it with SetWindowState; snapshot decode
// also re-derives it from ring contents, so the explicit hand-off only
// matters when the watermark window's keys were all removed. Late counts
// are process-lifetime, not persisted.
func (s *Store[K]) WindowState() (watermark, late int64, ok bool) {
	if s.win == nil {
		return 0, 0, false
	}
	return s.wm.Load(), s.late.Load(), true
}

// SetWindowState fast-forwards the watermark (it never moves backwards)
// and, when late is non-negative, seeds the late-record counter. Call
// before concurrent use; no-op on unwindowed stores.
func (s *Store[K]) SetWindowState(watermark, late int64) {
	if s.win == nil {
		return
	}
	if watermark != wmNone {
		s.advanceWatermark(watermark)
	}
	if late >= 0 {
		s.late.Store(late)
	}
}

// LateRecords returns how many records arrived more than ring
// sub-windows behind the watermark and were folded into the watermark
// window (0 for unwindowed stores). Process-lifetime, monotone.
func (s *Store[K]) LateRecords() int64 { return s.late.Load() }

// Len returns the number of live keys. Safe for concurrent use.
func (s *Store[K]) Len() int { return int(s.keys.Load()) }

// Remove deletes key and reports whether it was present. The eviction
// hook does not fire — Remove is the caller's own policy, not the
// store's. Safe for concurrent use.
func (s *Store[K]) Remove(key K) bool {
	st := s.stripeFor(key)
	st.mu.Lock()
	_, ok := st.m[key]
	if ok {
		delete(st.m, key)
		s.touchLocked(st)
		s.keys.Add(-1)
	}
	st.mu.Unlock()
	return ok
}

// ForEach calls fn for every live key until fn returns false. Stripes are
// visited in order, keys within a stripe in map order (unspecified). fn
// runs with the key's stripe locked: read the counter, do not mutate it,
// and do not call Store methods (self-deadlock). Keys materialized or
// evicted concurrently in not-yet-visited stripes may or may not be seen.
func (s *Store[K]) ForEach(fn func(key K, c Counter) bool) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for k, c := range st.m {
			if !fn(k, c) {
				st.mu.Unlock()
				return
			}
		}
		st.mu.Unlock()
	}
}

// ForEachDirty calls fn for every live key in every stripe mutated at or
// after generation since, and returns the cut: the new generation that
// supersedes the scan. since = 0 visits every stripe; since = a previous
// cut visits only the stripes written in between, so a periodic scanner
// (the standing-query evaluator) pays in proportion to write activity,
// not total key count. The generation protocol is MarshalStripes':
// the generation advances before the scan, so a mutation racing the scan
// stamps >= cut and is seen by the next pass even if this one missed it.
// fn runs under the stripe lock with ForEach's contract: read the
// counter, do not mutate it, do not call Store methods (self-deadlock).
// fn returning false stops the scan early; the returned cut is still
// valid (skipped stripes keep their stamps and stay dirty). Multiple
// scanners with independent since values coexist with each other and
// with checkpointing — each consumer only ever compares stamps against
// its own cuts.
func (s *Store[K]) ForEachDirty(since uint64, fn func(key K, c Counter) bool) (cut uint64) {
	cut = s.gen.Add(1)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		if st.modGen < since {
			st.mu.Unlock()
			continue
		}
		for k, c := range st.m {
			if !fn(k, c) {
				st.mu.Unlock()
				return cut
			}
		}
		st.mu.Unlock()
	}
	return cut
}

// KeyEstimate is one TopK entry.
type KeyEstimate[K StoreKey] struct {
	Key      K
	Estimate float64
}

// TopK returns the k keys with the largest estimates, in descending
// order (ties broken by ascending key) — the heavy-hitter query of
// per-flow monitoring. It holds one stripe lock at a time and maintains a
// k-sized heap, so cost is O(keys·log k) with O(k) extra memory. The
// result is a consistent ranking only at a quiescent point.
func (s *Store[K]) TopK(k int) []KeyEstimate[K] {
	if k <= 0 {
		return nil
	}
	// Min-heap of the best k seen so far; heap[0] is the current cutoff.
	heap := make([]KeyEstimate[K], 0, k)
	worse := func(a, b KeyEstimate[K]) bool {
		return a.Estimate < b.Estimate || (a.Estimate == b.Estimate && a.Key > b.Key)
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(heap) && worse(heap[l], heap[min]) {
				min = l
			}
			if r < len(heap) && worse(heap[r], heap[min]) {
				min = r
			}
			if min == i {
				return
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	s.ForEach(func(key K, c Counter) bool {
		e := KeyEstimate[K]{Key: key, Estimate: c.Estimate()}
		if len(heap) < k {
			heap = append(heap, e)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !worse(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
		} else if worse(heap[0], e) {
			heap[0] = e
			siftDown(0)
		}
		return true
	})
	sort.Slice(heap, func(i, j int) bool { return worse(heap[j], heap[i]) })
	return heap
}

// SizeBits returns the summed summary memory of every live counter (the
// paper's accounting). Safe for concurrent use; a consistent total only
// at a quiescent point.
func (s *Store[K]) SizeBits() int {
	total := 0
	s.ForEach(func(_ K, c Counter) bool {
		total += c.SizeBits()
		return true
	})
	return total
}

// storeEntryOverhead approximates the per-key map cost beyond the key and
// counter themselves: bucket slot (tophash byte, key and interface-value
// cells at ~13/8 load factor) plus the counter interface header.
const storeEntryOverhead = 48

// Footprint returns the store's resident process memory in bytes: the
// stripe array, the maps' per-entry overhead (approximate — Go maps do
// not expose their exact layout), key storage (string bytes for string
// keys), and every counter's own footprint. Safe for concurrent use; one
// stripe is locked at a time.
func (s *Store[K]) Footprint() int {
	var zero K
	total := int(unsafe.Sizeof(*s)) + int(unsafe.Sizeof(storeStripe[K]{}))*cap(s.stripes)
	isStr := s.isStr
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		total += st.scr.Footprint()
		total += len(st.m) * (int(unsafe.Sizeof(zero)) + storeEntryOverhead)
		for k, c := range st.m {
			if isStr {
				total += len(keyString(k))
			}
			total += c.Footprint()
		}
		st.mu.Unlock()
	}
	return total
}

// Reset drops every key and its counter; the eviction hook does not
// fire. Not atomic with respect to concurrent Adds.
func (s *Store[K]) Reset() {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		s.keys.Add(-int64(len(st.m)))
		st.m = make(map[K]Counter)
		s.touchLocked(st)
		st.mu.Unlock()
	}
}

// Merge folds other's per-key counters into s by union merge: for every
// key in other, s's counter (materialized if absent, under the usual
// eviction policy) absorbs other's. Both stores must be built from the
// same Spec, and the Spec's kind must implement Mergeable — see
// ErrNotMergeable for which kinds do. other must be quiescent for the
// duration; s may be ingesting concurrently.
func (s *Store[K]) Merge(other *Store[K]) error {
	if other == nil || s == other {
		return nil
	}
	if s.spec != other.spec {
		return fmt.Errorf("sbitmap: merge of stores with different specs (%s vs %s)", s.spec, other.spec)
	}
	// Mergeability is a property of the shared spec; refuse up front so a
	// non-mergeable kind cannot leave s half-mutated (or littered with
	// empty adopted counters). For windowed stores the question is about
	// the base kind — every ring merges structurally, but only by merging
	// same-sub-window sketches.
	if s.win != nil {
		if !s.win.mergeable {
			return fmt.Errorf("sbitmap: windowed store of kind %s: %w", s.spec.Kind, ErrNotMergeable)
		}
	} else if _, ok := s.newCounter().(Mergeable); !ok {
		return fmt.Errorf("sbitmap: store of kind %s: %w", s.spec.Kind, ErrNotMergeable)
	}
	if other.win != nil {
		// Adopt the source's time position first so merged-in sub-windows
		// are never beyond s's watermark.
		if owm := other.wm.Load(); owm != wmNone {
			s.advanceWatermark(owm)
		}
	}
	for i := range other.stripes {
		ot := &other.stripes[i]
		ot.mu.Lock()
		keys := make([]K, 0, len(ot.m))
		srcs := make([]Counter, 0, len(ot.m))
		for k, c := range ot.m {
			keys = append(keys, k)
			srcs = append(srcs, c)
		}
		ot.mu.Unlock()
		for j, key := range keys {
			// Same router (specs match), so the key lands on the same
			// stripe index in both stores; locks are never held pairwise.
			st := &s.stripes[s.stripeIndex(s.hashKey(key))]
			st.mu.Lock()
			s.touchLocked(st)
			dst := s.counterLocked(st, key)
			err := Merge(dst, srcs[j])
			st.mu.Unlock()
			if err != nil {
				return fmt.Errorf("sbitmap: store key %v: %w", key, err)
			}
		}
	}
	return nil
}

// Store snapshot container: the envelope (kindStore) frames a key-typed
// sequence of per-key counter envelopes —
//
//	[0]    key type (1 = uint64, 2 = string)
//	[1:3]  spec length   (little-endian uint16)
//	       spec string   (canonical Spec.String form)
//	[..]   watermark sub-window index (int64 LE) — present only when the
//	       spec is windowed, so pre-window snapshots decode unchanged
//	[..]   key count     (little-endian uint64)
//	per key:
//	       uint64 key    (8 bytes LE)            — key type 1
//	       length-prefixed key bytes (uint32 LE) — key type 2
//	       counter blob length (uint32 LE), counter envelope
//	       (a kindWindowRing envelope when the spec is windowed)
//
// The spec string carries the seed and hash family, so a restored store
// keeps counting without extra options — unlike bare counter snapshots,
// whose hash configuration is supplied out of band. It also carries the
// windowed(...) modifier, which is what gates the watermark field and
// the per-key blob shape: old snapshots never have windowed specs, so
// the extension is backward compatible in both directions.
const (
	storeKeyUint64 = 1
	storeKeyString = 2
)

func storeKeyCode[K StoreKey]() byte {
	if keyIsString[K]() {
		return storeKeyString
	}
	return storeKeyUint64
}

// MarshalBinary implements encoding.BinaryMarshaler: the whole store —
// spec and every (key, counter) pair — in one framed container.
//
// Safe under concurrent writers: each stripe is encoded while holding its
// lock, so every per-key counter blob is internally consistent (never a
// torn read of sketch state) and the snapshot always decodes. Stripes are
// locked one at a time, so the snapshot as a whole is a per-stripe
// point-in-time view: a key ingested concurrently in a not-yet-visited
// stripe may be included, one in an already-visited stripe will not.
// Marshal at a quiescent point for a globally consistent cut (the
// checkpointing server does exactly this per stripe, live).
func (s *Store[K]) MarshalBinary() ([]byte, error) {
	spec := s.spec.String()
	if len(spec) > 0xffff {
		return nil, fmt.Errorf("sbitmap: store spec string %d bytes long", len(spec))
	}
	payload := make([]byte, 0, 16+len(spec)+32*s.Len())
	payload = append(payload, storeKeyCode[K]())
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(spec)))
	payload = append(payload, spec...)
	if s.win != nil {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(s.wm.Load()))
	}
	countAt := len(payload)
	payload = binary.LittleEndian.AppendUint64(payload, 0) // patched below
	count := uint64(0)
	var err error
	s.ForEach(func(key K, c Counter) bool {
		payload, err = s.appendStoreEntry(payload, key, c)
		if err != nil {
			return false
		}
		count++
		return true
	})
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint64(payload[countAt:], count)
	return appendEnvelope(kindStore, payload), nil
}

// UnmarshalStore reconstructs a Store serialized by MarshalBinary. K must
// match the snapshot's key type. The snapshot's spec string restores the
// seed and hash family, so the store continues counting immediately; opts
// re-apply deployment shape (stripes, key limit), which snapshots do not
// record. A WithMaxKeys limit smaller than the snapshot's key count is an
// error — restoring never silently drops keys.
func UnmarshalStore[K StoreKey](data []byte, opts ...StoreOption) (*Store[K], error) {
	payload, err := payloadOfKind(data, kindStore)
	if err != nil {
		return nil, err
	}
	if len(payload) < 11 {
		return nil, fmt.Errorf("%w: store header", ErrTruncated)
	}
	keyCode := payload[0]
	if keyCode != storeKeyCode[K]() {
		kinds := map[byte]string{storeKeyUint64: "uint64", storeKeyString: "string"}
		return nil, fmt.Errorf("sbitmap: store snapshot has %s keys, not %s",
			kinds[keyCode], kinds[storeKeyCode[K]()])
	}
	specLen := int(binary.LittleEndian.Uint16(payload[1:]))
	payload = payload[3:]
	if len(payload) < specLen+8 {
		return nil, fmt.Errorf("%w: store spec", ErrTruncated)
	}
	spec, err := ParseSpec(string(payload[:specLen]))
	if err != nil {
		return nil, fmt.Errorf("sbitmap: store snapshot spec: %w", err)
	}
	payload = payload[specLen:]
	watermark := int64(wmNone)
	if spec.Windowed() {
		if len(payload) < 16 {
			return nil, fmt.Errorf("%w: store watermark", ErrTruncated)
		}
		watermark = int64(binary.LittleEndian.Uint64(payload))
		payload = payload[8:]
	}
	count := binary.LittleEndian.Uint64(payload)
	payload = payload[8:]
	s, err := NewStore[K](spec, opts...)
	if err != nil {
		return nil, err
	}
	if watermark != wmNone {
		s.wm.Store(watermark)
	}
	if s.limit > 0 && count > uint64(s.limit) {
		// A restore never silently drops keys; shrinking is the caller's
		// explicit decision (restore unbounded, then Remove or re-limit).
		return nil, fmt.Errorf("sbitmap: store snapshot holds %d keys, above the WithMaxKeys limit %d", count, s.limit)
	}
	// The spec's seed/hash options restore each counter's full hash
	// configuration (Spec.options omits defaults, which Unmarshal shares).
	specOpts, err := spec.options()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		key, c, rest, err := s.decodeStoreEntry(payload, i, specOpts)
		if err != nil {
			return nil, err
		}
		payload = rest
		st := &s.stripes[s.stripeIndex(s.hashKey(key))]
		if _, dup := st.m[key]; dup {
			return nil, fmt.Errorf("sbitmap: store snapshot repeats key %v", key)
		}
		st.m[key] = c
		s.keys.Add(1)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("sbitmap: %d trailing bytes after last store entry", len(payload))
	}
	return s, nil
}

// appendStoreEntry appends one (key, counter) pair in the container's
// per-key layout — shared by the whole-store snapshot (MarshalBinary) and
// the per-stripe snapshots (MarshalStripes).
func (s *Store[K]) appendStoreEntry(payload []byte, key K, c Counter) ([]byte, error) {
	blob, err := Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("sbitmap: store key %v: %w", key, err)
	}
	if s.isStr {
		ks := keyString(key)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(ks)))
		payload = append(payload, ks...)
	} else {
		payload = binary.LittleEndian.AppendUint64(payload, keyWord(key))
	}
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(blob)))
	payload = append(payload, blob...)
	return payload, nil
}

// decodeStoreEntry decodes one (key, counter) pair and returns the
// remaining payload — the inverse of appendStoreEntry, shared by
// UnmarshalStore and RestoreStripe. i labels truncation errors. On a
// windowed store the counter blob is a sub-window ring, and the store's
// watermark advances to the ring's newest sub-window so restores
// re-derive the time position from snapshot contents.
func (s *Store[K]) decodeStoreEntry(payload []byte, i uint64, specOpts []Option) (key K, c Counter, rest []byte, err error) {
	if keyIsString[K]() {
		if len(payload) < 4 {
			return key, nil, nil, fmt.Errorf("%w: store key %d header", ErrTruncated, i)
		}
		klen := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		if klen > len(payload) {
			return key, nil, nil, fmt.Errorf("%w: store key %d", ErrTruncated, i)
		}
		key = keyFromString[K](string(payload[:klen]))
		payload = payload[klen:]
	} else {
		if len(payload) < 8 {
			return key, nil, nil, fmt.Errorf("%w: store key %d", ErrTruncated, i)
		}
		key = keyFromWord[K](binary.LittleEndian.Uint64(payload))
		payload = payload[8:]
	}
	if len(payload) < 4 {
		return key, nil, nil, fmt.Errorf("%w: store counter %d header", ErrTruncated, i)
	}
	blen := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if blen > len(payload) {
		return key, nil, nil, fmt.Errorf("%w: store counter %d", ErrTruncated, i)
	}
	if s.win != nil {
		r, rerr := unmarshalWindowRing(s.win, payload[:blen], specOpts)
		if rerr != nil {
			return key, nil, nil, fmt.Errorf("sbitmap: store key %v: %w", key, rerr)
		}
		if maxW := r.maxWidx(); maxW != wmNone {
			s.advanceWatermark(maxW)
		}
		return key, r, payload[blen:], nil
	}
	c, err = Unmarshal(payload[:blen], specOpts...)
	if err != nil {
		return key, nil, nil, fmt.Errorf("sbitmap: store key %v: %w", key, err)
	}
	return key, c, payload[blen:], nil
}

// Per-stripe snapshot format (the unit of an incremental checkpoint):
//
//	[0:4]  magic "SBS1"
//	[4]    version (1)
//	[5]    key type (1 = uint64, 2 = string)
//	[6:14] key count (little-endian uint64)
//	per key: as in the whole-store container (appendStoreEntry)
//
// Unlike the whole-store container there is no spec: a stripe snapshot is
// only meaningful under the checkpoint manifest that names it, and the
// manifest carries the spec once for all stripes.
const (
	stripeSnapMagic   = "SBS1"
	stripeSnapVersion = 1
	stripeSnapHeader  = 14
)

// StripeSnapshotKeys reports how many keys a MarshalStripes blob holds,
// without decoding it — a checkpointer uses this to skip durably writing
// empty stripes.
func StripeSnapshotKeys(blob []byte) (int, error) {
	if len(blob) < stripeSnapHeader || string(blob[:4]) != stripeSnapMagic {
		return 0, fmt.Errorf("sbitmap: not a stripe snapshot")
	}
	return int(binary.LittleEndian.Uint64(blob[6:])), nil
}

// Generation returns the current dirty-tracking generation. Mutations
// stamp their stripe with this value; MarshalStripes(g) encodes exactly
// the stripes stamped at or after g.
func (s *Store[K]) Generation() uint64 { return s.gen.Load() }

// SetGeneration fast-forwards the dirty-tracking generation, so a store
// rebuilt from a checkpoint resumes the writer's epoch: stripes restored
// from the checkpoint stay clean relative to it, and the next incremental
// checkpoint (since = the manifest's generation) captures only what was
// mutated afterwards. Call before concurrent use.
func (s *Store[K]) SetGeneration(g uint64) { s.gen.Store(g) }

// StripeCount returns the number of lock stripes.
func (s *Store[K]) StripeCount() int { return len(s.stripes) }

// DirtyStripes counts the stripes mutated at or after generation since
// (every stripe when since is 0). Safe for concurrent use.
func (s *Store[K]) DirtyStripes(since uint64) int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		if st.modGen >= since {
			n++
		}
		st.mu.Unlock()
	}
	return n
}

// MarshalStripes encodes every stripe mutated at or after generation
// since into its own snapshot blob, keyed by stripe index, and returns
// the cut: the new generation that supersedes the snapshot. since = 0
// takes a full checkpoint (every stripe, touched or not); since = a
// previous cut takes an incremental one whose cost scales with how many
// stripes were written since, not with total key count.
//
// The protocol: mutations stamp their stripe with Generation();
// MarshalStripes advances the generation first, so a mutation landing
// after the cut stamps >= cut and is seen by the next incremental pass
// even if it raced this one. Each stripe is encoded under its own lock
// (internally consistent), but for a globally exact cut — required when
// the snapshot is paired with a log replayed from the cut — the caller
// must quiesce writers across the call, as the checkpointing server's
// ingest gate does.
func (s *Store[K]) MarshalStripes(since uint64) (blobs map[int][]byte, cut uint64, err error) {
	cut = s.gen.Add(1)
	blobs = make(map[int][]byte)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		if st.modGen < since {
			st.mu.Unlock()
			continue
		}
		payload := make([]byte, 0, stripeSnapHeader+48*len(st.m))
		payload = append(payload, stripeSnapMagic...)
		payload = append(payload, stripeSnapVersion, storeKeyCode[K]())
		payload = binary.LittleEndian.AppendUint64(payload, uint64(len(st.m)))
		for k, c := range st.m {
			payload, err = s.appendStoreEntry(payload, k, c)
			if err != nil {
				st.mu.Unlock()
				return nil, 0, err
			}
		}
		st.mu.Unlock()
		blobs[i] = payload
	}
	return blobs, cut, nil
}

// RestoreStripe decodes one MarshalStripes blob into the store,
// re-hashing every key onto the store's own stripes — the blob's origin
// stripe index is irrelevant, so a snapshot restores correctly even if
// the stripe count changed across restarts (same spec ⇒ same key
// placement within a stripe count). Returns the number of keys restored.
// Keys already present are an error (stripe snapshots from one
// checkpoint are disjoint by construction), as is exceeding a WithMaxKeys
// limit: restoring never silently drops keys.
func (s *Store[K]) RestoreStripe(blob []byte) (int, error) {
	if len(blob) < stripeSnapHeader {
		return 0, fmt.Errorf("%w: stripe snapshot header", ErrTruncated)
	}
	if string(blob[:4]) != stripeSnapMagic {
		return 0, fmt.Errorf("sbitmap: stripe snapshot magic %q, want %q", blob[:4], stripeSnapMagic)
	}
	if blob[4] != stripeSnapVersion {
		return 0, fmt.Errorf("sbitmap: stripe snapshot version %d, want %d", blob[4], stripeSnapVersion)
	}
	if blob[5] != storeKeyCode[K]() {
		kinds := map[byte]string{storeKeyUint64: "uint64", storeKeyString: "string"}
		return 0, fmt.Errorf("sbitmap: stripe snapshot has %s keys, not %s",
			kinds[blob[5]], kinds[storeKeyCode[K]()])
	}
	count := binary.LittleEndian.Uint64(blob[6:])
	payload := blob[stripeSnapHeader:]
	specOpts, err := s.spec.options()
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < count; i++ {
		key, c, rest, err := s.decodeStoreEntry(payload, i, specOpts)
		if err != nil {
			return int(i), err
		}
		payload = rest
		st := &s.stripes[s.stripeIndex(s.hashKey(key))]
		st.mu.Lock()
		if _, dup := st.m[key]; dup {
			st.mu.Unlock()
			return int(i), fmt.Errorf("sbitmap: stripe snapshot repeats key %v", key)
		}
		st.m[key] = c
		st.mu.Unlock()
		if n := s.keys.Add(1); s.limit > 0 && n > int64(s.limit) {
			return int(i) + 1, fmt.Errorf("sbitmap: stripe restore exceeds the WithMaxKeys limit %d", s.limit)
		}
	}
	if len(payload) != 0 {
		return int(count), fmt.Errorf("sbitmap: %d trailing bytes after last stripe entry", len(payload))
	}
	return int(count), nil
}
