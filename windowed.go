package sbitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
	"unsafe"
)

// Windowed counts distinct items per fixed time window — the paper's
// network-monitoring deployment pattern (Section 7 estimates flows "every
// minute interval"). It decorates any Counter: two identically configured
// sketches rotate so that closing a window and starting the next is O(1)
// bookkeeping plus a sketch reset, with no allocation after construction.
//
// The caller supplies timestamps (so replayed traces and simulations work
// without wall-clock coupling). Out-of-order items behind the current
// window — stragglers whose window already closed — are counted into the
// current window rather than dropped, which matches what a router does
// with late packets; they are not silent, though: every such item
// increments LateRecords, so an operator can see when reordering is
// polluting window estimates. (For keyed, queryable sliding windows, use
// a Store with a windowed(...) Spec modifier instead.)
//
// Not safe for concurrent use; wrap in a mutex or shard by key.
type Windowed struct {
	width   time.Duration
	current Counter
	spare   Counter
	late    int64

	started    bool
	observed   bool // an item arrived since the last close
	winStart   time.Time
	lastClosed WindowResult
	hasClosed  bool
	onClose    func(WindowResult)
}

// WindowResult is the estimate of one completed window.
type WindowResult struct {
	Start    time.Time
	End      time.Time
	Estimate float64
	// Saturated reports whether the window's sketch ran past its
	// configured operating range (see Saturable); the estimate is then a
	// pinned lower bound. Always false for sketches without a bound.
	Saturated bool
}

// NewWindowed returns a windowed S-bitmap counter with the given window
// width; each window's sketch is dimensioned for (n, eps) like New. The
// optional onClose callback fires synchronously whenever a window
// completes (from within Add — keep it cheap).
func NewWindowed(width time.Duration, n float64, eps float64, onClose func(WindowResult), opts ...Option) (*Windowed, error) {
	return NewWindowedFrom(width, func() (Counter, error) { return New(n, eps, opts...) }, onClose)
}

// NewWindowedSpec returns a windowed counter rotating sketches built from
// the Spec; any Kind works.
func NewWindowedSpec(width time.Duration, spec Spec, onClose func(WindowResult)) (*Windowed, error) {
	return NewWindowedFrom(width, spec.New, onClose)
}

// NewWindowedFrom returns a windowed counter over arbitrary sketches: the
// factory is called twice to build the rotation pair, so it must produce
// identically configured counters (same dimensions AND hash seed — the
// estimate semantics must be identical window to window).
func NewWindowedFrom(width time.Duration, factory func() (Counter, error), onClose func(WindowResult)) (*Windowed, error) {
	if width <= 0 {
		return nil, fmt.Errorf("sbitmap: window width %v must be positive", width)
	}
	cur, err := factory()
	if err != nil {
		return nil, err
	}
	spare, err := factory()
	if err != nil {
		return nil, err
	}
	if cur == nil || spare == nil {
		return nil, errors.New("sbitmap: window factory returned nil counter")
	}
	return &Windowed{width: width, current: cur, spare: spare, onClose: onClose}, nil
}

// Add offers an item observed at time ts; it reports whether the current
// window's sketch changed. Crossing a window boundary closes the current
// window first (possibly several empty windows if the stream has gaps).
func (w *Windowed) Add(ts time.Time, item []byte) bool {
	w.roll(ts)
	w.countLate(ts, 1)
	w.observed = true
	return w.current.Add(item)
}

// AddUint64 offers a 64-bit item observed at ts.
func (w *Windowed) AddUint64(ts time.Time, item uint64) bool {
	w.roll(ts)
	w.countLate(ts, 1)
	w.observed = true
	return w.current.AddUint64(item)
}

// AddString offers a string item observed at ts.
func (w *Windowed) AddString(ts time.Time, item string) bool {
	w.roll(ts)
	w.countLate(ts, 1)
	w.observed = true
	return w.current.AddString(item)
}

// AddBatch64 offers a batch of items all observed at ts and returns how
// many changed the current window's sketch. One rotation check covers the
// whole batch (instead of one per item), and the wrapped sketch ingests
// through its native batch path. State-equivalent to calling AddUint64
// with ts on each item in order.
func (w *Windowed) AddBatch64(ts time.Time, items []uint64) int {
	if len(items) == 0 {
		return 0
	}
	w.roll(ts)
	w.countLate(ts, len(items))
	w.observed = true
	return AddBatch64(w.current, items)
}

// AddBatchString offers a batch of string items all observed at ts; see
// AddBatch64.
func (w *Windowed) AddBatchString(ts time.Time, items []string) int {
	if len(items) == 0 {
		return 0
	}
	w.roll(ts)
	w.countLate(ts, len(items))
	w.observed = true
	return AddBatchString(w.current, items)
}

// roll closes windows until ts falls inside the current one.
func (w *Windowed) roll(ts time.Time) {
	if !w.started {
		w.started = true
		w.winStart = ts.Truncate(w.width)
		return
	}
	for !ts.Before(w.winStart.Add(w.width)) {
		w.closeCurrent()
		if w.onClose != nil {
			continue
		}
		// Without a close callback the intervening empty windows of a long
		// stream gap are observable only through Last(); jump to the final
		// gap window (the next iteration closes it normally) instead of
		// closing millions of identical empty windows one by one.
		if target := ts.Truncate(w.width); target.After(w.winStart) {
			w.winStart = target.Add(-w.width)
		}
	}
}

// countLate counts items whose window has already closed: roll never
// moves winStart backwards, so after it runs a timestamp still before
// the current window start is a straggler that will be folded into the
// current window.
func (w *Windowed) countLate(ts time.Time, n int) {
	if w.started && ts.Before(w.winStart) {
		w.late += int64(n)
	}
}

// saturated reports a counter's Saturable state, defaulting to false for
// counters without an operating bound.
func saturated(c Counter) bool {
	if s, ok := c.(Saturable); ok {
		return s.Saturated()
	}
	return false
}

// closeCurrent finalizes the current window and opens the next.
func (w *Windowed) closeCurrent() {
	end := w.winStart.Add(w.width)
	w.lastClosed = WindowResult{
		Start:     w.winStart,
		End:       end,
		Estimate:  w.current.Estimate(),
		Saturated: saturated(w.current),
	}
	w.hasClosed = true
	w.observed = false
	if w.onClose != nil {
		w.onClose(w.lastClosed)
	}
	// Swap in the (clean) spare and recycle the old sketch.
	w.current, w.spare = w.spare, w.current
	w.spare.Reset()
	w.winStart = end
}

// Flush force-closes the current window (e.g. at end of stream) and
// returns its result. It is a no-op returning ok=false if no item has
// been observed since the last close, so repeated flushes cannot emit
// spurious empty windows (or fire onClose for them).
func (w *Windowed) Flush() (WindowResult, bool) {
	if !w.started || !w.observed {
		return WindowResult{}, false
	}
	w.closeCurrent()
	return w.lastClosed, true
}

// Current returns the running estimate of the open window.
func (w *Windowed) Current() float64 { return w.current.Estimate() }

// Estimate returns the running estimate of the open window, mirroring the
// Counter method of the wrapped sketches.
func (w *Windowed) Estimate() float64 { return w.current.Estimate() }

// Last returns the most recently closed window's result; ok is false if
// no window has closed yet.
func (w *Windowed) Last() (WindowResult, bool) { return w.lastClosed, w.hasClosed }

// LateRecords returns how many items arrived behind the current window
// and were folded into it (see the type documentation). The counter is
// process-lifetime bookkeeping, monotone and never reset by rotation; it
// is not part of snapshots.
func (w *Windowed) LateRecords() int64 { return w.late }

// SizeBits returns the total memory of both rotation sketches.
func (w *Windowed) SizeBits() int { return w.current.SizeBits() + w.spare.SizeBits() }

// Footprint returns the decorator's resident process memory in bytes: the
// bookkeeping struct plus both rotation sketches' footprints.
func (w *Windowed) Footprint() int {
	return int(unsafe.Sizeof(*w)) + w.current.Footprint() + w.spare.Footprint()
}

// MarshalBinary implements encoding.BinaryMarshaler: the snapshot records
// the window bookkeeping and both rotation sketches' envelopes, so a
// restored Windowed resumes mid-window. Restore with UnmarshalWindowed
// (a Windowed is not itself a Counter — its Add takes a timestamp).
func (w *Windowed) MarshalBinary() ([]byte, error) {
	curBlob, err := Marshal(w.current)
	if err != nil {
		return nil, fmt.Errorf("sbitmap: windowed current sketch: %w", err)
	}
	spareBlob, err := Marshal(w.spare)
	if err != nil {
		return nil, fmt.Errorf("sbitmap: windowed spare sketch: %w", err)
	}
	var flags byte
	if w.started {
		flags |= 1
	}
	if w.observed {
		flags |= 2
	}
	if w.hasClosed {
		flags |= 4
	}
	if w.lastClosed.Saturated {
		flags |= 8
	}
	payload := make([]byte, 0, 50+len(curBlob)+len(spareBlob))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(w.width))
	payload = append(payload, flags)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(timeNano(w.started, w.winStart)))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(timeNano(w.hasClosed, w.lastClosed.Start)))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(timeNano(w.hasClosed, w.lastClosed.End)))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(w.lastClosed.Estimate))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(curBlob)))
	payload = append(payload, curBlob...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(spareBlob)))
	payload = append(payload, spareBlob...)
	return appendEnvelope(kindWindowed, payload), nil
}

// timeNano guards UnixNano against the zero time (whose nanosecond value
// is out of range); unused times serialize as 0.
func timeNano(valid bool, t time.Time) int64 {
	if !valid {
		return 0
	}
	return t.UnixNano()
}

// UnmarshalWindowed reconstructs a Windowed serialized by MarshalBinary.
// The onClose callback is not serializable and must be re-supplied; pass
// the original WithSeed / hash-family options to continue adding items.
func UnmarshalWindowed(data []byte, onClose func(WindowResult), opts ...Option) (*Windowed, error) {
	payload, err := payloadOfKind(data, kindWindowed)
	if err != nil {
		return nil, err
	}
	if len(payload) < 41 {
		return nil, fmt.Errorf("%w: windowed snapshot header", ErrTruncated)
	}
	width := time.Duration(binary.LittleEndian.Uint64(payload))
	if width <= 0 {
		return nil, fmt.Errorf("sbitmap: windowed snapshot has non-positive width %v", width)
	}
	flags := payload[8]
	winStartNs := int64(binary.LittleEndian.Uint64(payload[9:]))
	lastStartNs := int64(binary.LittleEndian.Uint64(payload[17:]))
	lastEndNs := int64(binary.LittleEndian.Uint64(payload[25:]))
	lastEstimate := math.Float64frombits(binary.LittleEndian.Uint64(payload[33:]))
	payload = payload[41:]

	next := func() ([]byte, error) {
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: windowed sketch header", ErrTruncated)
		}
		blen := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		if blen > len(payload) {
			return nil, fmt.Errorf("%w: windowed sketch body", ErrTruncated)
		}
		blob := payload[:blen]
		payload = payload[blen:]
		return blob, nil
	}
	curBlob, err := next()
	if err != nil {
		return nil, err
	}
	spareBlob, err := next()
	if err != nil {
		return nil, err
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("sbitmap: %d trailing bytes after windowed sketches", len(payload))
	}
	cur, err := Unmarshal(curBlob, opts...)
	if err != nil {
		return nil, fmt.Errorf("sbitmap: windowed current sketch: %w", err)
	}
	spare, err := Unmarshal(spareBlob, opts...)
	if err != nil {
		return nil, fmt.Errorf("sbitmap: windowed spare sketch: %w", err)
	}
	w := &Windowed{
		width:     width,
		current:   cur,
		spare:     spare,
		started:   flags&1 != 0,
		observed:  flags&2 != 0,
		hasClosed: flags&4 != 0,
		onClose:   onClose,
	}
	if w.started {
		w.winStart = time.Unix(0, winStartNs)
	}
	if w.hasClosed {
		w.lastClosed = WindowResult{
			Start:     time.Unix(0, lastStartNs),
			End:       time.Unix(0, lastEndNs),
			Estimate:  lastEstimate,
			Saturated: flags&8 != 0,
		}
	}
	return w, nil
}
