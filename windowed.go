package sbitmap

import (
	"fmt"
	"time"
)

// Windowed counts distinct items per fixed time window — the paper's
// network-monitoring deployment pattern (Section 7 estimates flows "every
// minute interval"). It rotates between two S-bitmaps so that closing a
// window and starting the next is O(1) bookkeeping plus a bitmap reset,
// with no allocation after construction.
//
// The caller supplies timestamps (so replayed traces and simulations work
// without wall-clock coupling); out-of-order items behind the current
// window are counted into the current window rather than dropped, which
// matches what a router does with late packets.
//
// Not safe for concurrent use; wrap in a mutex or shard by key.
type Windowed struct {
	width   time.Duration
	current *SBitmap
	spare   *SBitmap

	started    bool
	winStart   time.Time
	lastClosed WindowResult
	hasClosed  bool
	onClose    func(WindowResult)
}

// WindowResult is the estimate of one completed window.
type WindowResult struct {
	Start    time.Time
	End      time.Time
	Estimate float64
	// Saturated reports whether the window's sketch hit its configured
	// bound N; the estimate is then a lower bound pinned near N.
	Saturated bool
}

// NewWindowed returns a windowed counter with the given window width;
// each window's sketch is dimensioned for (n, eps) like New. The optional
// onClose callback fires synchronously whenever a window completes (from
// within Add — keep it cheap).
func NewWindowed(width time.Duration, n float64, eps float64, onClose func(WindowResult), opts ...Option) (*Windowed, error) {
	if width <= 0 {
		return nil, fmt.Errorf("sbitmap: window width %v must be positive", width)
	}
	cur, err := New(n, eps, opts...)
	if err != nil {
		return nil, err
	}
	// The spare must use the same configuration AND hash seed so the
	// estimate semantics are identical window to window.
	spare, err := New(n, eps, opts...)
	if err != nil {
		return nil, err
	}
	return &Windowed{width: width, current: cur, spare: spare, onClose: onClose}, nil
}

// Add offers an item observed at time ts; it reports whether the current
// window's sketch changed. Crossing a window boundary closes the current
// window first (possibly several empty windows if the stream has gaps).
func (w *Windowed) Add(ts time.Time, item []byte) bool {
	w.roll(ts)
	return w.current.Add(item)
}

// AddUint64 offers a 64-bit item observed at ts.
func (w *Windowed) AddUint64(ts time.Time, item uint64) bool {
	w.roll(ts)
	return w.current.AddUint64(item)
}

// AddString offers a string item observed at ts.
func (w *Windowed) AddString(ts time.Time, item string) bool {
	w.roll(ts)
	return w.current.AddString(item)
}

// roll closes windows until ts falls inside the current one.
func (w *Windowed) roll(ts time.Time) {
	if !w.started {
		w.started = true
		w.winStart = ts.Truncate(w.width)
		return
	}
	for !ts.Before(w.winStart.Add(w.width)) {
		w.closeCurrent()
	}
}

// closeCurrent finalizes the current window and opens the next.
func (w *Windowed) closeCurrent() {
	end := w.winStart.Add(w.width)
	w.lastClosed = WindowResult{
		Start:     w.winStart,
		End:       end,
		Estimate:  w.current.Estimate(),
		Saturated: w.current.Saturated(),
	}
	w.hasClosed = true
	if w.onClose != nil {
		w.onClose(w.lastClosed)
	}
	// Swap in the (clean) spare and recycle the old bitmap.
	w.current, w.spare = w.spare, w.current
	w.spare.Reset()
	w.winStart = end
}

// Flush force-closes the current window (e.g. at end of stream) and
// returns its result. It is a no-op returning ok=false if no item has
// been observed since the last close.
func (w *Windowed) Flush() (WindowResult, bool) {
	if !w.started {
		return WindowResult{}, false
	}
	w.closeCurrent()
	return w.lastClosed, true
}

// Current returns the running estimate of the open window.
func (w *Windowed) Current() float64 { return w.current.Estimate() }

// Last returns the most recently closed window's result; ok is false if
// no window has closed yet.
func (w *Windowed) Last() (WindowResult, bool) { return w.lastClosed, w.hasClosed }

// SizeBits returns the total memory of both rotation sketches.
func (w *Windowed) SizeBits() int { return w.current.SizeBits() + w.spare.SizeBits() }
