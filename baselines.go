package sbitmap

import (
	"repro/internal/adaptive"
	"repro/internal/exact"
	"repro/internal/fm"
	"repro/internal/hyperloglog"
	"repro/internal/linearcount"
	"repro/internal/loglog"
	"repro/internal/mrbitmap"
	"repro/internal/virtualbitmap"
)

// This file exposes the baseline sketches the paper compares against, all
// behind the same Counter interface and all dimensioned from a shared
// (memory budget, cardinality bound) vocabulary so that like-for-like
// comparisons — the whole point of the paper's Section 6 — are one
// constructor call away. Each constructor is the imperative twin of a
// Spec: NewHyperLogLog(mbits) ≡ Spec{Kind: KindHLL, MemoryBits: mbits}.New().

// NewLinearCounting returns a Whang et al. (1990) linear-counting sketch
// with mbits bits. Accurate while n stays well below mbits·ln(mbits);
// memory scales almost linearly with the counted cardinality.
func NewLinearCounting(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	return &LinearCounting{sk: linearcount.NewWithHasher(mbits, o.newHasher())}
}

// NewVirtualBitmap returns an Estan et al. (2006) virtual bitmap: linear
// counting over a hash-sampled substream, dimensioned so its accurate band
// is centered on cardinalities near n.
func NewVirtualBitmap(mbits int, n float64, opts ...Option) Counter {
	o := buildOptions(opts)
	rate := virtualbitmap.RateFor(mbits, n)
	return &VirtualBitmap{sk: virtualbitmap.NewWithHasher(mbits, rate, o.newHasher())}
}

// NewMRBitmap returns an Estan et al. (2006) multiresolution bitmap
// dimensioned quasi-optimally for mbits bits and cardinalities up to n.
func NewMRBitmap(mbits int, n float64, opts ...Option) (Counter, error) {
	cfg, err := mrbitmap.Dimension(mbits, n)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	return &MRBitmap{sk: mrbitmap.NewWithHasher(cfg, o.newHasher())}, nil
}

// NewFM returns a Flajolet–Martin (1985) PCSA sketch fitted into mbits
// bits (32-bit registers).
func NewFM(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	return &FM{sk: fm.NewWithHasher(fm.MemoryForBits(mbits), o.newHasher())}
}

// NewLogLog returns a Durand–Flajolet (2003) LogLog counter fitted into
// mbits bits (5-bit registers, power-of-two register count).
func NewLogLog(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	return &LogLog{sk: loglog.NewWithHasher(loglog.KBitsForBudget(mbits), o.newHasher())}
}

// NewHyperLogLog returns a Flajolet et al. (2007) HyperLogLog counter
// fitted into mbits bits (5-bit registers, power-of-two register count).
func NewHyperLogLog(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	return &HyperLogLog{sk: hyperloglog.NewWithHasher(hyperloglog.KBitsForBudget(mbits), o.newHasher())}
}

// NewAdaptiveSampler returns Wegman's adaptive sampler (Flajolet 1990)
// fitted into mbits bits (64 bits per retained hash).
func NewAdaptiveSampler(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	return &AdaptiveSampler{sk: adaptive.NewSamplerWithHasher(adaptive.CapacityForBits(mbits), o.newHasher())}
}

// NewExact returns the exact (linear-memory) distinct counter, useful as
// ground truth in tests and examples.
func NewExact() Counter { return &Exact{c: exact.New()} }
