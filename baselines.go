package sbitmap

import (
	"repro/internal/adaptive"
	"repro/internal/exact"
	"repro/internal/fm"
	"repro/internal/hyperloglog"
	"repro/internal/linearcount"
	"repro/internal/loglog"
	"repro/internal/mrbitmap"
	"repro/internal/virtualbitmap"
)

// This file exposes the baseline sketches the paper compares against, all
// behind the same Counter interface and all dimensioned from a shared
// (memory budget, cardinality bound) vocabulary so that like-for-like
// comparisons — the whole point of the paper's Section 6 — are one
// constructor call away.

// NewLinearCounting returns a Whang et al. (1990) linear-counting sketch
// with mbits bits. Accurate while n stays well below mbits·ln(mbits);
// memory scales almost linearly with the counted cardinality.
func NewLinearCounting(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	if o.mkHasher != nil {
		return linearcount.NewWithHasher(mbits, o.mkHasher(o.seed))
	}
	return linearcount.New(mbits, o.seed)
}

// NewVirtualBitmap returns an Estan et al. (2006) virtual bitmap: linear
// counting over a hash-sampled substream, dimensioned so its accurate band
// is centered on cardinalities near n.
func NewVirtualBitmap(mbits int, n float64, opts ...Option) Counter {
	o := buildOptions(opts)
	rate := virtualbitmap.RateFor(mbits, n)
	if o.mkHasher != nil {
		return virtualbitmap.NewWithHasher(mbits, rate, o.mkHasher(o.seed))
	}
	return virtualbitmap.New(mbits, rate, o.seed)
}

// NewMRBitmap returns an Estan et al. (2006) multiresolution bitmap
// dimensioned quasi-optimally for mbits bits and cardinalities up to n.
func NewMRBitmap(mbits int, n float64, opts ...Option) (Counter, error) {
	cfg, err := mrbitmap.Dimension(mbits, n)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	if o.mkHasher != nil {
		return mrbitmap.NewWithHasher(cfg, o.mkHasher(o.seed)), nil
	}
	return mrbitmap.New(cfg, o.seed), nil
}

// NewFM returns a Flajolet–Martin (1985) PCSA sketch fitted into mbits
// bits (32-bit registers).
func NewFM(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	m := fm.MemoryForBits(mbits)
	if o.mkHasher != nil {
		return fm.NewWithHasher(m, o.mkHasher(o.seed))
	}
	return fm.New(m, o.seed)
}

// NewLogLog returns a Durand–Flajolet (2003) LogLog counter fitted into
// mbits bits (5-bit registers, power-of-two register count).
func NewLogLog(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	k := loglog.KBitsForBudget(mbits)
	if o.mkHasher != nil {
		return loglog.NewWithHasher(k, o.mkHasher(o.seed))
	}
	return loglog.New(k, o.seed)
}

// NewHyperLogLog returns a Flajolet et al. (2007) HyperLogLog counter
// fitted into mbits bits (5-bit registers, power-of-two register count).
func NewHyperLogLog(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	k := hyperloglog.KBitsForBudget(mbits)
	if o.mkHasher != nil {
		return hyperloglog.NewWithHasher(k, o.mkHasher(o.seed))
	}
	return hyperloglog.New(k, o.seed)
}

// NewAdaptiveSampler returns Wegman's adaptive sampler (Flajolet 1990)
// fitted into mbits bits (64 bits per retained hash).
func NewAdaptiveSampler(mbits int, opts ...Option) Counter {
	o := buildOptions(opts)
	c := adaptive.CapacityForBits(mbits)
	if o.mkHasher != nil {
		return adaptive.NewSamplerWithHasher(c, o.mkHasher(o.seed))
	}
	return adaptive.NewSampler(c, o.seed)
}

// NewExact returns the exact (linear-memory) distinct counter, useful as
// ground truth in tests and examples.
func NewExact() Counter { return exact.New() }
