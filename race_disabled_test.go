//go:build !race

package sbitmap

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
