package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	sbitmap "repro"
)

// flaky wraps a real Server handler, failing the first n requests in a
// caller-chosen way before letting traffic through — the transient-fault
// shapes WithRetry exists for.
type flaky struct {
	inner    http.Handler
	failures atomic.Int64
	attempts atomic.Int64
	n        int64
	fail     func(w http.ResponseWriter, r *http.Request)
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.attempts.Add(1)
	if f.failures.Add(1) <= f.n {
		f.fail(w, r)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func newFlakyServer(t *testing.T, n int64, fail func(http.ResponseWriter, *http.Request)) (*flaky, *Server, string) {
	t.Helper()
	srv, err := New(Config{Spec: sbitmap.MustSpec("hll:mbits=1024,seed=2")})
	if err != nil {
		t.Fatal(err)
	}
	f := &flaky{inner: srv, n: n, fail: fail}
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	return f, srv, ts.URL
}

func fail500(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "transient", http.StatusInternalServerError)
}

// failDrop kills the TCP connection without an HTTP response: the client
// sees a transport error (EOF/reset), the retryable shape a restarting
// peer produces.
func failDrop(w http.ResponseWriter, r *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("test server does not support hijacking")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(err)
	}
	conn.Close()
}

func TestClientRetry5xx(t *testing.T) {
	f, _, url := newFlakyServer(t, 2, fail500)
	c := NewClient(url, WithRetry(3, time.Millisecond))
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("stats through 2 transient 500s: %v", err)
	}
	if got := f.attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestClientRetryTransportError(t *testing.T) {
	f, srv, url := newFlakyServer(t, 2, failDrop)
	c := NewClient(url, WithRetry(3, time.Millisecond))
	res, err := c.AddBatch64(context.Background(), []string{"k1", "k2"}, []uint64{1, 2})
	if err != nil {
		t.Fatalf("ingest through 2 dropped connections: %v", err)
	}
	if res.Records != 2 || srv.Store().Len() != 2 {
		t.Fatalf("records=%d, store keys=%d", res.Records, srv.Store().Len())
	}
	if got := f.attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestClientRetryOffByDefault(t *testing.T) {
	f, _, url := newFlakyServer(t, 1, fail500)
	c := NewClient(url)
	var apiErr *APIError
	if _, err := c.Stats(context.Background()); !errors.As(err, &apiErr) || apiErr.Status != 500 {
		t.Fatalf("want the 500 surfaced, got %v", err)
	}
	if got := f.attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (retry must be opt-in)", got)
	}
}

func TestClientRetryNot4xx(t *testing.T) {
	// 4xx is the request's fault: retrying re-sends the same wrong bytes.
	f, _, url := newFlakyServer(t, 0, nil)
	c := NewClient(url, WithRetry(3, time.Millisecond))
	var apiErr *APIError
	_, _, err := c.Estimate(context.Background(), "") // missing key → 400
	if !errors.As(err, &apiErr) || apiErr.Code != CodeMissingKey {
		t.Fatalf("want typed %s, got %v", CodeMissingKey, err)
	}
	if got := f.attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (4xx is not retryable)", got)
	}
}

func TestClientRetryExhausted(t *testing.T) {
	f, _, url := newFlakyServer(t, 100, fail500)
	c := NewClient(url, WithRetry(2, time.Millisecond))
	var apiErr *APIError
	if _, err := c.Stats(context.Background()); !errors.As(err, &apiErr) || apiErr.Status != 500 {
		t.Fatalf("want the final 500 after exhausting retries, got %v", err)
	}
	if got := f.attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

func TestClientRetryContextAbortsBackoff(t *testing.T) {
	_, _, url := newFlakyServer(t, 100, fail500)
	// 10 retries at 100ms base would back off for over a minute; the
	// context must cut that short.
	c := NewClient(url, WithRetry(10, 100*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Stats(ctx); err == nil {
		t.Fatal("stats against a permanently failing server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored the context for %v", elapsed)
	}
}
