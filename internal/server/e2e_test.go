package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	sbitmap "repro"
	"repro/internal/xrand"
)

// TestEndToEndMillionUpdates is the subsystem's acceptance criterion:
// sketchd's serving layer ingests ≥1M keyed updates through the client's
// binary-frame path, every per-key estimate matches a local Store fed the
// identical record sequence bit-identically, and a kill+restart from the
// checkpoint reproduces the same estimates.
func TestEndToEndMillionUpdates(t *testing.T) {
	nKeys := 1 << 16
	perKey := 16 // records per key => 1_048_576 updates
	if testing.Short() {
		nKeys, perKey = 1<<12, 8
	}
	spec := sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=5")
	dir := t.TempDir()
	cfg := Config{Spec: spec, CheckpointDir: filepath.Join(dir, "ckpt")}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	local, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}

	// Round-robin over the key space (worst-case locality), batched into
	// frames; every frame also feeds the local twin through the same
	// Store entrypoint, so the two ingests are record-for-record equal.
	const batch = 8192
	keyName := func(k int) string { return fmt.Sprintf("user-%06d", k) }
	keys := make([]string, 0, batch)
	items := make([]uint64, 0, batch)
	total := 0
	flush := func() {
		if len(keys) == 0 {
			return
		}
		res, err := client.AddBatch64(ctx, keys, items)
		if err != nil {
			t.Fatal(err)
		}
		if res.Records != len(keys) {
			t.Fatalf("frame reported %d records, sent %d", res.Records, len(keys))
		}
		local.AddBatch64(keys, items)
		total += len(keys)
		keys, items = keys[:0], items[:0]
	}
	for round := 0; round < perKey; round++ {
		for k := 0; k < nKeys; k++ {
			keys = append(keys, keyName(k))
			// Per-key distinct items scale with the key index, so spreads
			// (and estimates) differ across keys: ~k%31+1 distinct values.
			items = append(items, xrand.Mix64(uint64(k)<<8|uint64(round%(k%31+1))))
			if len(items) == batch {
				flush()
			}
		}
	}
	flush()
	if !testing.Short() && total < 1_000_000 {
		t.Fatalf("ingested %d records, want >= 1M", total)
	}
	if srv.Store().Len() != nKeys {
		t.Fatalf("server holds %d keys, want %d", srv.Store().Len(), nKeys)
	}

	// Per-key estimates: service vs local twin, bit-identical, every key.
	mismatches := 0
	local.ForEach(func(key string, c sbitmap.Counter) bool {
		got, ok := srv.Store().Estimate(key)
		if !ok || got != c.Estimate() {
			mismatches++
		}
		return mismatches < 10
	})
	if mismatches > 0 {
		t.Fatalf("%d keys with estimates differing from the local store", mismatches)
	}

	// Checkpoint, kill, restart: the restored server must reproduce every
	// estimate exactly (sampled over the HTTP surface, fully in-process).
	if _, err := client.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.RestoredKeys() != nKeys {
		t.Fatalf("restored %d keys, want %d", srv2.RestoredKeys(), nKeys)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	client2 := NewClient(ts2.URL)
	for k := 0; k < nKeys; k += nKeys / 256 {
		key := keyName(k)
		got, ok, err := client2.Estimate(ctx, key)
		if err != nil || !ok {
			t.Fatalf("%s after restart: ok=%v err=%v", key, ok, err)
		}
		want, _ := local.Estimate(key)
		if got != want {
			t.Errorf("%s: %v after restart, local %v", key, got, want)
		}
	}
	mismatches = 0
	srv2.Store().ForEach(func(key string, c sbitmap.Counter) bool {
		want, _ := local.Estimate(key)
		if c.Estimate() != want {
			mismatches++
		}
		return mismatches < 10
	})
	if mismatches > 0 {
		t.Fatalf("%d keys with estimates differing after restart", mismatches)
	}
}
