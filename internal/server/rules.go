// Standing-query HTTP surface: rule CRUD, alert history, and the live
// SSE alert stream. The engine itself lives in internal/rules; this file
// is the transport — JSON in, typed errors out, and Server-Sent Events
// for the push path.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	sbitmap "repro"
	"repro/internal/rules"
)

// RulesResult is the GET /v1/rules response: every installed rule,
// sorted by ID.
type RulesResult struct {
	Rules []rules.Spec `json:"rules"`
}

// AlertsResult is the GET /v1/alerts response: recent alerts, newest
// first.
type AlertsResult struct {
	Alerts []rules.Alert `json:"alerts"`
}

// RuleDeleted is the DELETE /v1/rules/{id} response.
type RuleDeleted struct {
	ID      string `json:"id"`
	Deleted bool   `json:"deleted"`
}

// writeRuleError maps the rules package's typed failures onto the
// service's error envelope: a validation failure is 400 bad_rule with
// the offending field in the message, a windowed rule on an unwindowed
// store reuses the query paths' window_not_configured, and an unknown
// rule ID is 404 unknown_rule.
func writeRuleError(w http.ResponseWriter, err error) {
	var bad *rules.BadRuleError
	switch {
	case errors.Is(err, sbitmap.ErrNotWindowed):
		writeError(w, http.StatusBadRequest, CodeWindowNotConf,
			"this store has no windowed(...) spec modifier; windowed rules need a windowed spec: %v", err)
	case errors.As(err, &bad):
		writeError(w, http.StatusBadRequest, CodeBadRule, "%v", err)
	case errors.Is(err, rules.ErrUnknownRule):
		writeError(w, http.StatusNotFound, CodeUnknownRule, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, CodeBadRule, "%v", err)
	}
}

// ruleBodyBytes bounds a PUT /v1/rules body; a rule spec is a few
// hundred bytes of JSON, never megabytes.
const ruleBodyBytes = 1 << 16

// strictUnmarshal decodes a rule spec rejecting unknown fields: a typo'd
// field name ("treshold") silently becoming the zero value would
// otherwise install a rule that never fires.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after the rule object")
	}
	return nil
}

func (s *Server) handleRulePut(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, ruleBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		bodyReadError(w, err)
		return
	}
	var spec rules.Spec
	if err := strictUnmarshal(data, &spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRule, "rule body: %v", err)
		return
	}
	installed, err := s.rules.Put(spec)
	if err != nil {
		writeRuleError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, installed)
}

func (s *Server) handleRuleList(w http.ResponseWriter, r *http.Request) {
	specs := s.rules.List()
	if specs == nil {
		specs = []rules.Spec{}
	}
	writeJSON(w, http.StatusOK, RulesResult{Rules: specs})
}

func (s *Server) handleRuleGet(w http.ResponseWriter, r *http.Request) {
	spec, err := s.rules.Get(r.PathValue("id"))
	if err != nil {
		writeRuleError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, spec)
}

func (s *Server) handleRuleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.rules.Delete(id); err != nil {
		writeRuleError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RuleDeleted{ID: id, Deleted: true})
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "limit=%q is not a positive integer", raw)
			return
		}
		limit = v
	}
	alerts := s.rules.Alerts(limit)
	if alerts == nil {
		alerts = []rules.Alert{}
	}
	writeJSON(w, http.StatusOK, AlertsResult{Alerts: alerts})
}

// sseKeepalive is how often the alert stream emits a comment line so
// idle connections are distinguishable from dead ones (and intermediate
// proxies keep the stream open).
const sseKeepalive = 15 * time.Second

// alertStreamBuffer is each SSE subscriber's backlog tolerance: alerts
// emitted while the subscriber's channel is this far behind are dropped
// from the feed (counted in stats), never from the history ring — a
// consumer re-syncs from GET /v1/alerts by ID.
const alertStreamBuffer = 256

// handleAlertStream serves GET /v1/alerts/stream: the live alert feed as
// Server-Sent Events, one "alert" event per alert with the alert ID as
// the SSE id (so EventSource reconnection and client-side dedup work off
// the same monotone cursor). ?replay=N prepends the N most recent
// historical alerts, oldest first. The subscription is registered before
// the replay is read, so an alert landing in between is delivered twice
// rather than lost; IDs make the duplicate harmless.
func (s *Server) handleAlertStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeBadRequest,
			"streaming is not supported by this connection")
		return
	}
	replay := 0
	if raw := r.URL.Query().Get("replay"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "replay=%q is not a non-negative integer", raw)
			return
		}
		replay = v
	}

	ch, cancel := s.rules.Subscribe(alertStreamBuffer)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	if replay > 0 {
		hist := s.rules.Alerts(replay)
		for i := len(hist) - 1; i >= 0; i-- { // Alerts is newest-first; emit oldest-first
			if err := writeSSEAlert(w, hist[i]); err != nil {
				return
			}
		}
	}
	flusher.Flush()

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case a, ok := <-ch:
			if !ok {
				return
			}
			if err := writeSSEAlert(w, a); err != nil {
				return
			}
			// Drain whatever else is queued before flushing: a burst of
			// alerts goes out in one write.
			for drained := false; !drained; {
				select {
				case a, ok := <-ch:
					if !ok {
						drained = true
						break
					}
					if err := writeSSEAlert(w, a); err != nil {
						return
					}
				default:
					drained = true
				}
			}
			flusher.Flush()
		case <-keepalive.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSEAlert emits one alert as an SSE event.
func writeSSEAlert(w io.Writer, a rules.Alert) error {
	data, err := json.Marshal(a)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: alert\ndata: %s\n\n", a.ID, data)
	return err
}
