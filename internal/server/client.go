package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/rules"
)

// Client is the Go face of the counting service: thin typed wrappers over
// the HTTP API, one method per endpoint, mirroring the Store's own method
// names where the semantics match. It is safe for concurrent use (the
// underlying http.Client pools connections).
type Client struct {
	base string
	hc   *http.Client

	// Retry policy (off unless WithRetry): up to retries re-sends after a
	// transient failure, sleeping retryBase<<attempt between tries.
	retries   int
	retryBase time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles); the default is a plain &http.Client{}.
func WithHTTPClient(hc *http.Client) ClientOption { return func(c *Client) { c.hc = hc } }

// WithRetry enables bounded retry on transient failures: transport errors
// (connection refused/reset, broken pipe — anything the http.Client
// returns instead of a response) and 5xx responses. Up to retries extra
// attempts are made, with exponential backoff starting at base
// (base, 2·base, 4·base, ...), aborted early if the request context is
// done. Safe for every endpoint: request bodies are byte slices, so a
// re-send transmits identical bytes, and all endpoints are idempotent or
// ingest-once-per-frame at worst (a retried /v1/add whose first attempt
// actually reached the store re-adds the same records — set semantics
// make that a no-op on counter state). Off by default.
func WithRetry(retries int, base time.Duration) ClientOption {
	return func(c *Client) { c.retries, c.retryBase = retries, base }
}

// NewClient returns a client for the service at base, e.g.
// "http://127.0.0.1:8287".
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// do issues one request (retrying per the WithRetry policy) and decodes
// the JSON response into out (when non-nil). Any non-2xx response is
// returned as an *APIError carrying the service's typed code.
func (c *Client) do(ctx context.Context, method, path string, contentType string, body []byte, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.doOnce(ctx, method, path, contentType, body, out)
		if err == nil || attempt >= c.retries || !retryable(err) {
			return err
		}
		// Bounded backoff; give up immediately once the caller's context
		// is done (its error is more useful than the transport's).
		select {
		case <-time.After(c.retryBase << attempt):
		case <-ctx.Done():
			return err
		}
	}
}

// retryable reports whether an attempt's failure is worth re-sending: a
// transport-level error (no response arrived — refused, reset, EOF) or a
// 5xx (the server existed but failed; 4xx is the request's fault and will
// fail identically). Context cancellation is terminal.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500
	}
	return true
}

func (c *Client) doOnce(ctx context.Context, method, path string, contentType string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		apiErr := &APIError{Status: resp.StatusCode, Code: CodeBadRequest}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(raw, &eb) == nil && eb.Error.Code != "" {
			apiErr.Code, apiErr.Message = eb.Error.Code, eb.Error.Message
		} else {
			apiErr.Message = strings.TrimSpace(string(raw))
		}
		return apiErr
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) // drain so the connection can be reused
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// AddNDJSON ingests (keys[i], items[i]) records through the NDJSON ingest
// format — the debuggable path (curl-able, line-oriented). Panics if the
// slice lengths differ.
func (c *Client) AddNDJSON(ctx context.Context, keys, items []string) (AddResult, error) {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("server: Client.AddNDJSON with %d keys and %d items", len(keys), len(items)))
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range keys {
		if err := enc.Encode(ndjsonRecord{Key: keys[i], Item: items[i]}); err != nil {
			return AddResult{}, err
		}
	}
	var res AddResult
	err := c.do(ctx, http.MethodPost, "/v1/add", "application/x-ndjson", buf.Bytes(), &res)
	return res, err
}

// AddBatch64 ingests (keys[i], items[i]) records with uint64 items
// through the compact binary frame — the throughput path, decoding
// straight onto Store.AddBatch64 on the server. Panics if the slice
// lengths differ.
func (c *Client) AddBatch64(ctx context.Context, keys []string, items []uint64) (AddResult, error) {
	var res AddResult
	err := c.do(ctx, http.MethodPost, "/v1/add", FrameContentType, AppendFrame64(nil, keys, items), &res)
	return res, err
}

// AddBatch64At is AddBatch64 with a record timestamp: the batch ships as
// a version-2 frame whose timestamp files every record into ts's
// sub-window on a windowed server (plain servers ignore it).
func (c *Client) AddBatch64At(ctx context.Context, ts time.Time, keys []string, items []uint64) (AddResult, error) {
	var res AddResult
	err := c.do(ctx, http.MethodPost, "/v1/add", FrameContentType, AppendFrame64At(nil, ts, keys, items), &res)
	return res, err
}

// AddBatchString ingests (keys[i], items[i]) records with string items
// through the compact binary frame. Panics if the slice lengths differ.
func (c *Client) AddBatchString(ctx context.Context, keys, items []string) (AddResult, error) {
	var res AddResult
	err := c.do(ctx, http.MethodPost, "/v1/add", FrameContentType, AppendFrameString(nil, keys, items), &res)
	return res, err
}

// AddBatchStringAt is AddBatchString with a record timestamp (see
// AddBatch64At).
func (c *Client) AddBatchStringAt(ctx context.Context, ts time.Time, keys, items []string) (AddResult, error) {
	var res AddResult
	err := c.do(ctx, http.MethodPost, "/v1/add", FrameContentType, AppendFrameStringAt(nil, ts, keys, items), &res)
	return res, err
}

// Estimate returns key's distinct-count estimate; ok is false (with a nil
// error) if the server has never seen the key — mirroring Store.Estimate.
func (c *Client) Estimate(ctx context.Context, key string) (estimate float64, ok bool, err error) {
	var res EstimateResult
	err = c.do(ctx, http.MethodGet, "/v1/estimate?key="+url.QueryEscape(key), "", nil, &res)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Code == CodeUnknownKey {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return res.Estimate, true, nil
}

// EstimateWindow returns key's distinct-count estimate over the trailing
// span, via /v1/estimate?window=. ok is false (with a nil error) if the
// server has never seen the key; a server without the windowed(...) spec
// modifier, or a span wider than its retention, returns an *APIError
// with code CodeWindowNotConf or CodeBadWindow respectively. The full
// EstimateResult carries the covered interval and the tumbling marker.
func (c *Client) EstimateWindow(ctx context.Context, key string, span time.Duration) (EstimateResult, bool, error) {
	var res EstimateResult
	err := c.do(ctx, http.MethodGet,
		"/v1/estimate?key="+url.QueryEscape(key)+"&window="+url.QueryEscape(span.String()), "", nil, &res)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Code == CodeUnknownKey {
		return EstimateResult{}, false, nil
	}
	if err != nil {
		return EstimateResult{}, false, err
	}
	return res, true, nil
}

// EstimateMulti returns estimates for many keys in one request (repeated
// key= parameters, one batched store pass server-side). The result has
// one entry per requested key, in request order; a key the server has
// never seen comes back with OK false, not an error.
func (c *Client) EstimateMulti(ctx context.Context, keys []string) ([]MultiEstimateEntry, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	q := make(url.Values, 1)
	q["key"] = keys
	if len(keys) == 1 {
		// The server answers a single key= with the scalar shape; force
		// the batched shape by asking twice and dropping the duplicate.
		q["key"] = []string{keys[0], keys[0]}
	}
	var res MultiEstimateResult
	err := c.do(ctx, http.MethodGet, "/v1/estimate?"+q.Encode(), "", nil, &res)
	if err != nil {
		return nil, err
	}
	return res.Results[:len(keys)], nil
}

// PutRule installs (or replaces) a standing query. Validation failures
// come back as an *APIError with code CodeBadRule (or CodeWindowNotConf
// for a windowed rule against an unwindowed server).
func (c *Client) PutRule(ctx context.Context, spec rules.Spec) (rules.Spec, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return rules.Spec{}, err
	}
	var res rules.Spec
	err = c.do(ctx, http.MethodPut, "/v1/rules", "application/json", body, &res)
	return res, err
}

// Rules lists every installed rule, sorted by ID.
func (c *Client) Rules(ctx context.Context) ([]rules.Spec, error) {
	var res RulesResult
	err := c.do(ctx, http.MethodGet, "/v1/rules", "", nil, &res)
	return res.Rules, err
}

// Rule reads one installed rule by ID; an unknown ID is an *APIError
// with code CodeUnknownRule.
func (c *Client) Rule(ctx context.Context, id string) (rules.Spec, error) {
	var res rules.Spec
	err := c.do(ctx, http.MethodGet, "/v1/rules/"+url.PathEscape(id), "", nil, &res)
	return res, err
}

// DeleteRule removes a rule; an unknown ID is an *APIError with code
// CodeUnknownRule.
func (c *Client) DeleteRule(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/rules/"+url.PathEscape(id), "", nil, nil)
}

// Alerts returns up to limit recent alerts, newest first (limit <= 0
// returns everything the server's history ring holds).
func (c *Client) Alerts(ctx context.Context, limit int) ([]rules.Alert, error) {
	path := "/v1/alerts"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var res AlertsResult
	err := c.do(ctx, http.MethodGet, path, "", nil, &res)
	return res.Alerts, err
}

// StreamAlerts consumes the live SSE alert feed, calling fn for every
// alert until fn returns false, the context is done, or the stream
// fails. replay > 0 asks the server to prepend that many recent
// historical alerts (oldest first) before the live feed; the
// subscription window overlaps the replay, so fn may see an alert ID
// twice — dedup by ID if exactly-once matters. Returns nil when fn
// stopped the stream, ctx.Err() on cancellation, and the transport error
// otherwise. StreamAlerts does not retry; a consumer that must survive
// reconnects wraps it and passes the last seen ID's worth of replay.
func (c *Client) StreamAlerts(ctx context.Context, replay int, fn func(rules.Alert) bool) error {
	path := "/v1/alerts/stream"
	if replay > 0 {
		path += "?replay=" + strconv.Itoa(replay)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		apiErr := &APIError{Status: resp.StatusCode, Code: CodeBadRequest}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(raw, &eb) == nil && eb.Error.Code != "" {
			apiErr.Code, apiErr.Message = eb.Error.Code, eb.Error.Message
		} else {
			apiErr.Message = strings.TrimSpace(string(raw))
		}
		return apiErr
	}
	// Minimal SSE reader: "data:" lines carry the alert JSON, a blank
	// line ends an event, ":" lines are keepalive comments. The id: and
	// event: fields are redundant with the payload and skipped.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0:
			if len(data) > 0 {
				var a rules.Alert
				if err := json.Unmarshal(data, &a); err != nil {
					return fmt.Errorf("server: alert stream: %w", err)
				}
				data = data[:0]
				if !fn(a) {
					return nil
				}
			}
		case bytes.HasPrefix(line, []byte("data:")):
			data = append(data, bytes.TrimSpace(line[len("data:"):])...)
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return io.ErrUnexpectedEOF // server closed a live stream
}

// TopK returns the server's k keys with the largest estimates, in
// descending order.
func (c *Client) TopK(ctx context.Context, k int) ([]Entry, error) {
	var res TopKResult
	err := c.do(ctx, http.MethodGet, "/v1/topk?k="+strconv.Itoa(k), "", nil, &res)
	return res.Top, err
}

// Stats returns store totals and live service metrics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var res Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", "", nil, &res)
	return res, err
}

// Merge ships a Store snapshot envelope (Store.MarshalBinary bytes from a
// peer or edge agent) for key-wise union merge into the server's store.
func (c *Client) Merge(ctx context.Context, snapshot []byte) (MergeResult, error) {
	var res MergeResult
	err := c.do(ctx, http.MethodPost, "/v1/merge", "application/octet-stream", snapshot, &res)
	return res, err
}

// Checkpoint asks the server to write a durable snapshot now.
func (c *Client) Checkpoint(ctx context.Context) (CheckpointInfo, error) {
	var res CheckpointInfo
	err := c.do(ctx, http.MethodPost, "/v1/checkpoint", "", nil, &res)
	return res, err
}

// Healthz probes liveness over the plain-text /healthz endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", "", nil, nil)
}

// Health probes liveness over /v1/healthz, returning the node's status,
// spec, role, and uptime — the cluster prober's endpoint.
func (c *Client) Health(ctx context.Context) (HealthResult, error) {
	var res HealthResult
	err := c.do(ctx, http.MethodGet, "/v1/healthz", "", nil, &res)
	return res, err
}

// Cluster returns the node's view of the cluster topology (role, peer
// list, aggregator) — enough for a client to bootstrap a cluster.Ring
// from any one node.
func (c *Client) Cluster(ctx context.Context) (ClusterInfo, error) {
	var res ClusterInfo
	err := c.do(ctx, http.MethodGet, "/v1/cluster", "", nil, &res)
	return res, err
}

// Base returns the base URL the client was built with.
func (c *Client) Base() string { return c.base }
