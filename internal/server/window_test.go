package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	sbitmap "repro"
)

// wat builds the timestamp landing in sub-window widx of the given
// width (its midpoint).
func wat(widx int64, width time.Duration) time.Time {
	return time.Unix(0, widx*int64(width)+int64(width)/2)
}

func TestWindowErrorTable(t *testing.T) {
	// A windowed server (1m sub-windows, 5 retained → 5m retention) and a
	// plain one, probed with the same table style as TestHandlerErrorTable.
	_, wts, wclient := newTestServer(t, Config{
		Spec: sbitmap.MustSpec("hll:mbits=512/windowed(width=1m,ring=5)"),
	})
	_, fts, fclient := newTestServer(t, Config{
		Spec: sbitmap.MustSpec("hll:mbits=512"),
	})
	ctx := context.Background()
	if _, err := wclient.AddBatchStringAt(ctx, wat(9, time.Minute), []string{"known"}, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fclient.AddNDJSON(ctx, []string{"known"}, []string{"x"}); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name       string
		ts         *httptest.Server
		path       string
		wantStatus int
		wantCode   string
	}{
		{"window on unwindowed store", fts, "/v1/estimate?key=known&window=5m", 400, CodeWindowNotConf},
		{"window not a duration", wts, "/v1/estimate?key=known&window=soon", 400, CodeBadWindow},
		{"window bare number", wts, "/v1/estimate?key=known&window=5", 400, CodeBadWindow},
		{"window zero", wts, "/v1/estimate?key=known&window=0s", 400, CodeBadWindow},
		{"window negative", wts, "/v1/estimate?key=known&window=-5m", 400, CodeBadWindow},
		{"window beyond retention", wts, "/v1/estimate?key=known&window=5m1s", 400, CodeBadWindow},
		{"window unknown key", wts, "/v1/estimate?key=never-seen&window=5m", 404, CodeUnknownKey},
		{"window missing key", wts, "/v1/estimate?window=5m", 400, CodeMissingKey},
		{"window at retention ok", wts, "/v1/estimate?key=known&window=5m", 200, ""},
	} {
		status, code := apiErrorOf(t, tc.ts, "GET", tc.path, "", nil)
		if status != tc.wantStatus || code != tc.wantCode {
			t.Errorf("%s: got %d %q, want %d %q", tc.name, status, code, tc.wantStatus, tc.wantCode)
		}
	}
}

func TestWindowNDJSONTimestampsAndStats(t *testing.T) {
	// NDJSON records may carry "ts" (unix nanos). The server splits a
	// batch into same-ts runs; the result must match per-record
	// timestamped ingest into a twin store, and /v1/stats must expose the
	// window block.
	const width = time.Second
	spec := sbitmap.MustSpec("hll:mbits=1024,seed=13/windowed(width=1s,ring=3)")
	_, ts, client := newTestServer(t, Config{Spec: spec})
	ctx := context.Background()

	twin, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}

	type rec struct {
		key, item string
		ts        int64
	}
	recs := []rec{
		{"a", "i1", wat(5, width).UnixNano()},
		{"a", "i2", wat(5, width).UnixNano()}, // same-ts run continues
		{"b", "i3", wat(5, width).UnixNano()},
		{"a", "i4", wat(6, width).UnixNano()}, // run break: next sub-window
		{"b", "i5", 0},                        // unstamped: watermark sub-window (6)
		{"a", "i6", wat(1, width).UnixNano()}, // ≤ wm-ring: late, folds into 6
	}
	var body []byte
	for _, r := range recs {
		if r.ts != 0 {
			body = append(body, fmt.Sprintf("{\"key\":%q,\"item\":%q,\"ts\":%d}\n", r.key, r.item, r.ts)...)
		} else {
			body = append(body, fmt.Sprintf("{\"key\":%q,\"item\":%q}\n", r.key, r.item)...)
		}
		if r.ts != 0 {
			twin.AddStringAt(time.Unix(0, r.ts), r.key, r.item)
		} else {
			twin.AddString(r.key, r.item)
		}
	}
	status, code := apiErrorOf(t, ts, "POST", "/v1/add", "application/x-ndjson", body)
	if status != 200 {
		t.Fatalf("timestamped NDJSON ingest: %d %q", status, code)
	}

	for _, key := range []string{"a", "b"} {
		for _, span := range []time.Duration{time.Second, 3 * time.Second} {
			got, ok, err := client.EstimateWindow(ctx, key, span)
			if err != nil || !ok {
				t.Fatalf("%s window %v: ok=%v err=%v", key, span, ok, err)
			}
			want, _, err := twin.EstimateWindow(key, span)
			if err != nil {
				t.Fatal(err)
			}
			if got.Estimate != want.Estimate || got.Windows != want.Windows ||
				got.WindowStartUnixNano != want.Start.UnixNano() ||
				got.WindowEndUnixNano != want.End.UnixNano() ||
				got.Tumbling != want.Tumbling || got.Window != span.String() {
				t.Errorf("%s window %v: service %+v, twin %+v", key, span, got, want)
			}
		}
		// The bare estimate answers over the full retention, like the twin.
		got, ok, err := client.Estimate(ctx, key)
		if err != nil || !ok {
			t.Fatalf("%s: %v", key, err)
		}
		if want, _ := twin.Estimate(key); got != want {
			t.Errorf("%s all-time: service %v, twin %v", key, got, want)
		}
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Window == nil {
		t.Fatal("windowed server reports no window block in stats")
	}
	if stats.Window.Width != "1s" || stats.Window.Ring != 3 || stats.Window.RetentionSeconds != 3 {
		t.Errorf("window block = %+v", stats.Window)
	}
	if stats.Window.Watermark == nil || *stats.Window.Watermark != 6 {
		t.Errorf("watermark = %v, want 6", stats.Window.Watermark)
	}
	if stats.Window.LateRecords != 1 {
		t.Errorf("late_records = %d, want 1", stats.Window.LateRecords)
	}

	// An unwindowed server reports no window block.
	_, _, fclient := newTestServer(t, Config{Spec: sbitmap.MustSpec("hll:mbits=512")})
	fstats, err := fclient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fstats.Window != nil {
		t.Errorf("unwindowed server reports window block %+v", fstats.Window)
	}
}

func TestWindowTwinEquivalenceAndRestart(t *testing.T) {
	// The acceptance invariant: a loopback server ingesting a timestamped
	// trace over ≥ 2^16 keys answers every /v1/estimate?window=5m
	// bit-identically to a single-process twin, and a checkpoint + WAL
	// tail + restart reproduces all of them.
	const (
		nKeys = 1 << 16
		chunk = 1 << 13
		width = time.Minute
	)
	dir := t.TempDir()
	cfg := Config{
		Spec:          sbitmap.MustSpec("hll:mbits=512,seed=21/windowed(width=1m,ring=5)"),
		CheckpointDir: filepath.Join(dir, "ckpt"),
		WALDir:        filepath.Join(dir, "wal"),
	}
	_, ts, client := newTestServer(t, cfg)
	ctx := context.Background()

	twin, err := sbitmap.NewStore[string](cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%05x", i)
	}
	items := make([]uint64, chunk)
	// Sub-windows 100..105: 101 rotates 100 out of the 5-deep ring, so
	// expiry is part of the trace, and every key lands in three of them.
	for _, widx := range []int64{100, 101, 103, 105} {
		for off := 0; off < nKeys; off += chunk {
			ck := keys[off : off+chunk]
			for i := range items {
				items[i] = uint64(widx)<<32 | uint64(off+i)%977
			}
			if _, err := client.AddBatch64At(ctx, wat(widx, width), ck, items); err != nil {
				t.Fatal(err)
			}
			twin.AddBatch64At(wat(widx, width), ck, items)
		}
	}

	queryAll := func(c *Client, when string) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for w := 0; w < 16; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < nKeys; i += 16 {
					got, ok, err := c.EstimateWindow(ctx, keys[i], 5*time.Minute)
					if err != nil || !ok {
						errs <- fmt.Errorf("%s: %s: ok=%v err=%v", when, keys[i], ok, err)
						return
					}
					want, _, err := twin.EstimateWindow(keys[i], 5*time.Minute)
					if err != nil {
						errs <- err
						return
					}
					if got.Estimate != want.Estimate || got.Windows != want.Windows ||
						got.WindowStartUnixNano != want.Start.UnixNano() ||
						got.WindowEndUnixNano != want.End.UnixNano() || got.Tumbling {
						errs <- fmt.Errorf("%s: %s: service %+v, twin %+v", when, keys[i], got, want)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	queryAll(client, "live")

	// Checkpoint, then more timestamped ingest that only the WAL holds.
	if _, err := client.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	tail := keys[:chunk]
	tailItems := make([]uint64, chunk)
	for i := range tailItems {
		tailItems[i] = uint64(i) | 1<<48
	}
	if _, err := client.AddBatch64At(ctx, wat(106, width), tail, tailItems); err != nil {
		t.Fatal(err)
	}
	twin.AddBatch64At(wat(106, width), tail, tailItems)
	ts.Close()

	// "Crash" recovery: checkpoint + WAL tail replay must reproduce every
	// windowed estimate, including the post-checkpoint sub-window 106.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	client2 := NewClient(ts2.URL)
	queryAll(client2, "restarted")
	stats, err := client2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Window == nil || stats.Window.Watermark == nil || *stats.Window.Watermark != 106 {
		t.Fatalf("restarted window stats = %+v", stats.Window)
	}
}

func TestWindowPreWindowCheckpointRestore(t *testing.T) {
	// A checkpoint written by an unwindowed server (the pre-window format:
	// no watermark in the manifest, no rings in the stripes) must still
	// restore into an unwindowed server.
	dir := t.TempDir()
	cfg := Config{
		Spec:          sbitmap.MustSpec("hll:mbits=512,seed=2"),
		CheckpointDir: filepath.Join(dir, "ckpt"),
	}
	srv, _, client := newTestServer(t, cfg)
	ctx := context.Background()
	if _, err := client.AddNDJSON(ctx, []string{"a", "b"}, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	want, _ := srv.Store().Estimate("a")

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.RestoredKeys() != 2 {
		t.Fatalf("restored %d keys, want 2", srv2.RestoredKeys())
	}
	if got, _ := srv2.Store().Estimate("a"); got != want {
		t.Errorf("restored estimate %v, want %v", got, want)
	}
	if _, _, ok := srv2.Store().WindowState(); ok {
		t.Error("unwindowed restore came back windowed")
	}
}
