package server

import (
	"encoding/binary"
	"strings"
	"testing"
)

func TestFrameRoundTrip64(t *testing.T) {
	keys := []string{"alice", "amy", "bob", strings.Repeat("k", 300), "alice"}
	items := []uint64{1, 2, 3, 1 << 60, 0}
	f, err := DecodeFrame(AppendFrame64(nil, keys, items))
	if err != nil {
		t.Fatal(err)
	}
	if f.Records() != len(keys) || f.ItemsString != nil {
		t.Fatalf("decoded %d records, strings %v", f.Records(), f.ItemsString)
	}
	for i := range keys {
		if f.Keys[i] != keys[i] || f.Items64[i] != items[i] {
			t.Errorf("record %d: (%q, %d) != (%q, %d)", i, f.Keys[i], f.Items64[i], keys[i], items[i])
		}
	}
}

func TestFrameRoundTripString(t *testing.T) {
	keys := []string{"k1", "k2", "k1"}
	items := []string{"", "item-two", strings.Repeat("x", 5000)}
	f, err := DecodeFrame(AppendFrameString(nil, keys, items))
	if err != nil {
		t.Fatal(err)
	}
	if f.Records() != len(keys) || f.Items64 != nil {
		t.Fatalf("decoded %d records, items64 %v", f.Records(), f.Items64)
	}
	for i := range keys {
		if f.Keys[i] != keys[i] || f.ItemsString[i] != items[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestFrameRoundTripEmpty(t *testing.T) {
	f, err := DecodeFrame(AppendFrame64(nil, nil, nil))
	if err != nil || f.Records() != 0 {
		t.Fatalf("empty frame: %v, %d records", err, f.Records())
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := AppendFrame64(nil, []string{"k1", "k2"}, []uint64{1, 2})
	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte{}, good...)
		return mutate(b)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short header":  good[:9],
		"bad magic":     corrupt(func(b []byte) []byte { b[0] ^= 0xff; return b }),
		"bad version":   corrupt(func(b []byte) []byte { b[4] = 9; return b }),
		"bad item type": corrupt(func(b []byte) []byte { b[5] = 7; return b }),
		"count too big": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[6:], 1<<30)
			return b
		}),
		"truncated record": good[:len(good)-3],
		"trailing bytes":   append(append([]byte{}, good...), 0xAB),
		"empty key":        AppendFrame64(nil, []string{"ok", ""}, []uint64{1, 2}),
		"huge key length": corrupt(func(b []byte) []byte {
			// Overwrite the first record's key length with a uvarint far
			// above frameMaxKeyLen.
			rest := binary.AppendUvarint(b[:10], 1<<40)
			return append(rest, good[11:]...)
		}),
	}
	for name, data := range cases {
		if _, err := DecodeFrame(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A string-item frame truncated inside an item length.
	sf := AppendFrameString(nil, []string{"key"}, []string{"item"})
	for cut := 10; cut < len(sf); cut++ {
		if _, err := DecodeFrame(sf[:cut]); err == nil {
			t.Errorf("string frame cut to %d accepted", cut)
		}
	}
}

func TestFrameLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	AppendFrame64(nil, []string{"k"}, nil)
}
