package server

import (
	"encoding/binary"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip64(t *testing.T) {
	keys := []string{"alice", "amy", "bob", strings.Repeat("k", 300), "alice"}
	items := []uint64{1, 2, 3, 1 << 60, 0}
	f, err := DecodeFrame(AppendFrame64(nil, keys, items))
	if err != nil {
		t.Fatal(err)
	}
	if f.Records() != len(keys) || f.ItemsString != nil {
		t.Fatalf("decoded %d records, strings %v", f.Records(), f.ItemsString)
	}
	for i := range keys {
		if f.Keys[i] != keys[i] || f.Items64[i] != items[i] {
			t.Errorf("record %d: (%q, %d) != (%q, %d)", i, f.Keys[i], f.Items64[i], keys[i], items[i])
		}
	}
}

func TestFrameRoundTripString(t *testing.T) {
	keys := []string{"k1", "k2", "k1"}
	items := []string{"", "item-two", strings.Repeat("x", 5000)}
	f, err := DecodeFrame(AppendFrameString(nil, keys, items))
	if err != nil {
		t.Fatal(err)
	}
	if f.Records() != len(keys) || f.Items64 != nil {
		t.Fatalf("decoded %d records, items64 %v", f.Records(), f.Items64)
	}
	for i := range keys {
		if f.Keys[i] != keys[i] || f.ItemsString[i] != items[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestFrameRoundTripTimestamped(t *testing.T) {
	// Version-2 frames carry one per-frame timestamp; both item types, a
	// pre-epoch instant included (the field is a signed unix-nano).
	for _, ts := range []time.Time{
		time.Unix(0, 1723000000123456789),
		time.Unix(0, 0),
		time.Unix(0, -5e9),
	} {
		f, err := DecodeFrame(AppendFrame64At(nil, ts, []string{"k1", "k2"}, []uint64{1, 2}))
		if err != nil {
			t.Fatal(err)
		}
		if !f.HasTS || f.TSNanos != ts.UnixNano() || f.Records() != 2 {
			t.Errorf("64 at %v: HasTS=%v TSNanos=%d", ts, f.HasTS, f.TSNanos)
		}
		f, err = DecodeFrame(AppendFrameStringAt(nil, ts, []string{"k"}, []string{"item"}))
		if err != nil {
			t.Fatal(err)
		}
		if !f.HasTS || f.TSNanos != ts.UnixNano() || f.ItemsString[0] != "item" {
			t.Errorf("string at %v: HasTS=%v TSNanos=%d", ts, f.HasTS, f.TSNanos)
		}
	}
	// Version-1 frames decode with no timestamp.
	f, err := DecodeFrame(AppendFrame64(nil, []string{"k"}, []uint64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if f.HasTS || f.TSNanos != 0 {
		t.Errorf("v1 frame decoded with HasTS=%v TSNanos=%d", f.HasTS, f.TSNanos)
	}
	// A reused Frame must drop the previous decode's timestamp.
	if err := f.DecodeBorrowed(AppendFrame64At(nil, time.Unix(0, 42), []string{"k"}, []uint64{1})); err != nil {
		t.Fatal(err)
	}
	if err := f.DecodeBorrowed(AppendFrame64(nil, []string{"k"}, []uint64{1})); err != nil {
		t.Fatal(err)
	}
	if f.HasTS || f.TSNanos != 0 {
		t.Errorf("stale timestamp survived reuse: HasTS=%v TSNanos=%d", f.HasTS, f.TSNanos)
	}
}

func TestFrameRoundTripEmpty(t *testing.T) {
	f, err := DecodeFrame(AppendFrame64(nil, nil, nil))
	if err != nil || f.Records() != 0 {
		t.Fatalf("empty frame: %v, %d records", err, f.Records())
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := AppendFrame64(nil, []string{"k1", "k2"}, []uint64{1, 2})
	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte{}, good...)
		return mutate(b)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short header":  good[:9],
		"bad magic":     corrupt(func(b []byte) []byte { b[0] ^= 0xff; return b }),
		"bad version":   corrupt(func(b []byte) []byte { b[4] = 9; return b }),
		"bad item type": corrupt(func(b []byte) []byte { b[5] = 7; return b }),
		"count too big": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[6:], 1<<30)
			return b
		}),
		"truncated record": good[:len(good)-3],
		"trailing bytes":   append(append([]byte{}, good...), 0xAB),
		"empty key":        AppendFrame64(nil, []string{"ok", ""}, []uint64{1, 2}),
		"huge key length": corrupt(func(b []byte) []byte {
			// Overwrite the first record's key length with a uvarint far
			// above frameMaxKeyLen.
			rest := binary.AppendUvarint(b[:10], 1<<40)
			return append(rest, good[11:]...)
		}),
	}
	for name, data := range cases {
		if _, err := DecodeFrame(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A string-item frame truncated inside an item length.
	sf := AppendFrameString(nil, []string{"key"}, []string{"item"})
	for cut := 10; cut < len(sf); cut++ {
		if _, err := DecodeFrame(sf[:cut]); err == nil {
			t.Errorf("string frame cut to %d accepted", cut)
		}
	}
	// A version-2 frame truncated anywhere — inside the 8-byte timestamp
	// included — must be rejected.
	tf := AppendFrame64At(nil, time.Unix(0, 7), []string{"key"}, []uint64{1})
	for cut := 0; cut < len(tf); cut++ {
		if _, err := DecodeFrame(tf[:cut]); err == nil {
			t.Errorf("timestamped frame cut to %d accepted", cut)
		}
	}
}

func TestFrameLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	AppendFrame64(nil, []string{"k"}, nil)
}
