//go:build !race

package server

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
