package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	sbitmap "repro"
	"repro/internal/wal"
)

// storeImage snapshots every key's marshaled counter state — the
// bit-identity currency of the recovery tests. Comparing images instead
// of whole-store MarshalBinary bytes sidesteps Go's randomized map
// iteration order, which permutes entries without changing state.
func storeImage(t *testing.T, st *sbitmap.Store[string]) map[string]string {
	t.Helper()
	img := make(map[string]string, st.Len())
	st.ForEach(func(key string, c sbitmap.Counter) bool {
		blob, err := sbitmap.Marshal(c)
		if err != nil {
			t.Fatalf("marshal %q: %v", key, err)
		}
		img[key] = string(blob)
		return true
	})
	return img
}

// assertBitIdentical fails unless got holds exactly want's keys with
// byte-for-byte equal counter state.
func assertBitIdentical(t *testing.T, got, want *sbitmap.Store[string]) {
	t.Helper()
	gi, wi := storeImage(t, got), storeImage(t, want)
	if len(gi) != len(wi) {
		t.Fatalf("key counts differ: recovered %d, twin %d", len(gi), len(wi))
	}
	for key, wb := range wi {
		gb, ok := gi[key]
		if !ok {
			t.Fatalf("key %q missing after recovery", key)
		}
		if gb != wb {
			t.Fatalf("key %q: recovered counter state differs from the twin's (%d vs %d bytes)",
				key, len(gb), len(wb))
		}
	}
}

// frameOf encodes one (keys, items) batch as the SBF1 frame both the
// ingest path and the WAL carry.
func frameOf(keys []string, items []uint64) []byte {
	return AppendFrame64(nil, keys, items)
}

// ingestFrames feeds srv (durably, via IngestFrame — the acked path) and
// a twin store the identical frame sequence.
func ingestFrames(t *testing.T, srv *Server, twin *sbitmap.Store[string], frames [][]byte) {
	t.Helper()
	var f Frame
	defer f.Release()
	for _, raw := range frames {
		if err := f.DecodeBorrowed(raw); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.IngestFrame(raw, &f); err != nil {
			t.Fatal(err)
		}
		if err := f.DecodeBorrowed(raw); err != nil {
			t.Fatal(err)
		}
		twin.AddBatch64(f.Keys, f.Items64)
	}
}

// testFrames builds a deterministic frame workload: n frames, a few keys
// each, items spread so different frames touch overlapping counters.
func testFrames(n, seed int) [][]byte {
	frames := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		var keys []string
		var items []uint64
		for j := 0; j < 3; j++ {
			keys = append(keys, fmt.Sprintf("key-%02d", (i*3+j*5+seed)%17))
			items = append(items, uint64(seed)<<32|uint64(i*31+j))
		}
		frames = append(frames, frameOf(keys, items))
	}
	return frames
}

func TestWALReplayWithoutCheckpoint(t *testing.T) {
	// WAL only: every acked frame must come back from a cold start.
	cfg := Config{
		Spec:        sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=3"),
		WALDir:      t.TempDir(),
		FsyncPolicy: wal.FsyncAlways,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := sbitmap.NewStore[string](cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(40, 1)
	ingestFrames(t, srv, twin, frames)
	// Crash: abandon srv without Close — the log's file handle simply
	// stops being written, exactly like a killed process.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.ReplayedRecords() != len(frames) {
		t.Fatalf("replayed %d records, acked %d", srv2.ReplayedRecords(), len(frames))
	}
	assertBitIdentical(t, srv2.Store(), twin)
}

func TestWALCheckpointRecovery(t *testing.T) {
	// The full recovery chain: checkpoint image + WAL tail replay, with
	// the checkpoint truncating the log it supersedes.
	base := t.TempDir()
	cfg := Config{
		Spec:            sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=8"),
		Stripes:         16,
		CheckpointDir:   filepath.Join(base, "ckpt"),
		WALDir:          filepath.Join(base, "wal"),
		FsyncPolicy:     wal.FsyncAlways,
		WALSegmentBytes: 1 << 10, // small segments so truncation is observable
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := sbitmap.NewStore[string](cfg.Spec, sbitmap.WithStripes(16))
	if err != nil {
		t.Fatal(err)
	}

	ingestFrames(t, srv, twin, testFrames(30, 1))
	info, err := srv.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Incremental || info.StripesWritten == 0 {
		t.Fatalf("first checkpoint: %+v", info)
	}
	// The committed checkpoint covers every record so far: nothing is
	// pending replay, and obsolete whole segments are gone.
	if pending := srv.walPending.Load(); pending != 0 {
		t.Fatalf("wal pending %d after covering checkpoint", pending)
	}

	ingestFrames(t, srv, twin, testFrames(25, 2))
	info2, err := srv.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Incremental {
		t.Fatalf("second checkpoint not incremental: %+v", info2)
	}

	// Tail past the newest checkpoint, then crash.
	tail := testFrames(15, 3)
	ingestFrames(t, srv, twin, tail)

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.RestoredKeys() == 0 {
		t.Fatal("nothing restored from the checkpoint")
	}
	if srv2.ReplayedRecords() != len(tail) {
		t.Fatalf("replayed %d records, want the %d past the checkpoint", srv2.ReplayedRecords(), len(tail))
	}
	assertBitIdentical(t, srv2.Store(), twin)

	// And the recovered server keeps the chain going: another incremental
	// checkpoint, another restart, still identical.
	ingestFrames(t, srv2, twin, testFrames(10, 4))
	if _, err := srv2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv2.Close()
	srv3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	assertBitIdentical(t, srv3.Store(), twin)
}

func TestMergeRecordReplay(t *testing.T) {
	// /v1/merge mutations are logged too: a merged peer snapshot must
	// survive a crash just like acked frames.
	spec := sbitmap.MustSpec("hll:mbits=1024,seed=5")
	cfg := Config{Spec: spec, WALDir: t.TempDir(), FsyncPolicy: wal.FsyncAlways}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	twin, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.AddNDJSON(ctx, []string{"mine"}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	twin.AddString("mine", "a")

	peer, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	peer.AddString("theirs", "b")
	peer.AddString("mine", "c")
	blob, err := peer.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Merge(ctx, blob); err != nil {
		t.Fatal(err)
	}
	if err := twin.Merge(peer); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.ReplayedRecords() != 2 {
		t.Fatalf("replayed %d records, want 2 (one frame, one merge)", srv2.ReplayedRecords())
	}
	assertBitIdentical(t, srv2.Store(), twin)
}

// TestRecoveryRefusals is the corrupt-input table: every damaged durable
// state that a crash cannot explain must refuse to start with a typed
// error and a message that says so — never silently count from scratch.
func TestRecoveryRefusals(t *testing.T) {
	spec := sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=2")
	for _, tc := range []struct {
		name     string
		corrupt  func(t *testing.T, ckDir, walDir string, cfg *Config)
		wantErr  error
		wantText string
	}{
		{
			name: "crc-damaged wal record",
			corrupt: func(t *testing.T, ckDir, walDir string, cfg *Config) {
				// Flip a payload byte of the FIRST record: the damage is not
				// a torn tail (valid records follow), so healing would drop
				// acked data — the only safe answer is refusal.
				seg := firstSegment(t, walDir)
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				data[wal.RecordOverhead+2] ^= 0xff
				if err := os.WriteFile(seg, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr:  wal.ErrCorrupt,
			wantText: "refusing to start",
		},
		{
			name: "zero-length interior segment",
			corrupt: func(t *testing.T, ckDir, walDir string, cfg *Config) {
				if err := os.Truncate(firstSegment(t, walDir), 0); err != nil {
					t.Fatal(err)
				}
			},
			wantErr:  wal.ErrCorrupt,
			wantText: "refusing to start",
		},
		{
			name: "missing stripe file",
			corrupt: func(t *testing.T, ckDir, walDir string, cfg *Config) {
				if err := os.Remove(firstStripeFile(t, ckDir)); err != nil {
					t.Fatal(err)
				}
			},
			wantErr:  ErrCorruptCheckpoint,
			wantText: "refusing to start",
		},
		{
			name: "damaged stripe file",
			corrupt: func(t *testing.T, ckDir, walDir string, cfg *Config) {
				path := firstStripeFile(t, ckDir)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0xff
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr:  ErrCorruptCheckpoint,
			wantText: "refusing to start",
		},
		{
			name: "garbage manifest",
			corrupt: func(t *testing.T, ckDir, walDir string, cfg *Config) {
				if err := os.WriteFile(filepath.Join(ckDir, manifestName), []byte("{not json"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr:  ErrCorruptCheckpoint,
			wantText: "refusing to start",
		},
		{
			name: "manifest from a different spec",
			corrupt: func(t *testing.T, ckDir, walDir string, cfg *Config) {
				cfg.Spec = sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=99")
			},
			wantErr:  ErrCheckpointSpecMismatch,
			wantText: "refusing to start",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := t.TempDir()
			cfg := Config{
				Spec:          spec,
				CheckpointDir: filepath.Join(base, "ckpt"),
				WALDir:        filepath.Join(base, "wal"),
				FsyncPolicy:   wal.FsyncAlways,
				// Small segments so the log rotates: the zero-length and
				// CRC cases need an INTERIOR segment — damage in the final
				// one that runs to EOF is a healable torn tail, not
				// corruption.
				WALSegmentBytes: 256,
			}
			srv, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			twin, err := sbitmap.NewStore[string](spec)
			if err != nil {
				t.Fatal(err)
			}
			ingestFrames(t, srv, twin, testFrames(10, 1))
			if _, err := srv.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// Records past the checkpoint keep the WAL tail non-empty, so
			// WAL-side corruption has something to bite.
			ingestFrames(t, srv, twin, testFrames(10, 2))
			srv.Close()

			tc.corrupt(t, cfg.CheckpointDir, cfg.WALDir, &cfg)
			_, err = New(cfg)
			if err == nil {
				t.Fatal("damaged durable state accepted")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v is not errors.Is(%v)", err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantText) {
				t.Fatalf("error %q does not say %q", err, tc.wantText)
			}
		})
	}
}

func firstSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (%v)", dir, err)
	}
	return segs[0]
}

func firstStripeFile(t *testing.T, dir string) string {
	t.Helper()
	snaps, err := filepath.Glob(filepath.Join(dir, "stripe-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no stripe snapshots in %s (%v)", dir, err)
	}
	return snaps[0]
}

// TestCrashTortureSimulated is the in-process half of the crash-torture
// invariant (scripts/smoke_wal.sh is the kill -9 half): cycles of ingest
// at interleaved checkpoints, each ended by an un-Closed abandonment of
// the server — the process-internal equivalent of a crash, since nothing
// is flushed on the way out — followed by recovery that must be
// bit-identical to a twin fed exactly the acked frames. Runs under
// -race in CI.
func TestCrashTortureSimulated(t *testing.T) {
	base := t.TempDir()
	cfg := Config{
		Spec:            sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=13"),
		Stripes:         32,
		CheckpointDir:   filepath.Join(base, "ckpt"),
		WALDir:          filepath.Join(base, "wal"),
		FsyncPolicy:     wal.FsyncAlways,
		WALSegmentBytes: 2 << 10,
	}
	twin, err := sbitmap.NewStore[string](cfg.Spec, sbitmap.WithStripes(32))
	if err != nil {
		t.Fatal(err)
	}
	iters := 8
	if testing.Short() {
		iters = 3
	}
	for i := 0; i < iters; i++ {
		srv, err := New(cfg)
		if err != nil {
			t.Fatalf("iteration %d: recovery failed: %v", i, err)
		}
		assertBitIdentical(t, srv.Store(), twin)
		ingestFrames(t, srv, twin, testFrames(10+i*3, i))
		switch i % 3 {
		case 0:
			// Crash with the whole cycle in the WAL tail.
		case 1:
			// Checkpoint mid-cycle, then more acked frames on top.
			if _, err := srv.Checkpoint(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			ingestFrames(t, srv, twin, testFrames(7, 100+i))
		case 2:
			// Crash immediately after the checkpoint (empty tail).
			if _, err := srv.Checkpoint(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
		// Abandon srv: no Close, no flush — the crash.
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	assertBitIdentical(t, srv.Store(), twin)
}

func TestHealthzDegradesOnDurabilityLag(t *testing.T) {
	// fsync never + a 1ns ceiling: the first acked frame pushes the lag
	// over the limit, /v1/healthz must flip to a typed 503; a checkpoint
	// (which syncs the log) heals it.
	base := t.TempDir()
	cfg := Config{
		Spec:             sbitmap.MustSpec("hll:mbits=512"),
		CheckpointDir:    filepath.Join(base, "ckpt"),
		WALDir:           filepath.Join(base, "wal"),
		FsyncPolicy:      wal.FsyncNever,
		MaxDurabilityLag: time.Nanosecond,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	if h := srv.Health(); h.Status != "ok" || h.Error != nil {
		t.Fatalf("fresh server unhealthy: %+v", h)
	}
	if err := client.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	if _, err := client.AddNDJSON(ctx, []string{"k"}, []string{"v"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let the 1ns ceiling be exceeded measurably
	h := srv.Health()
	if h.Status != "degraded" || h.Error == nil || h.Error.Code != CodeDurabilityLag {
		t.Fatalf("health after unsynced ingest: %+v", h)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body HealthResult
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable ||
		body.Error == nil || body.Error.Code != CodeDurabilityLag {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, body)
	}

	// Checkpoint syncs the WAL: everything acked is durable again.
	if _, err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if h := srv.Health(); h.Status != "ok" || h.DurabilityLagSeconds != 0 {
		t.Fatalf("health after checkpoint: %+v", h)
	}
}

func TestStatsReportDurability(t *testing.T) {
	base := t.TempDir()
	cfg := Config{
		Spec:          sbitmap.MustSpec("hll:mbits=512"),
		CheckpointDir: filepath.Join(base, "ckpt"),
		WALDir:        filepath.Join(base, "wal"),
		FsyncPolicy:   wal.FsyncAlways,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	client := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := client.AddNDJSON(ctx, []string{"a", "b"}, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WALPendingReplayBytes <= 0 || stats.WALSegments == 0 {
		t.Fatalf("stats before checkpoint: %+v", stats)
	}
	if _, err := client.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err = client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WALPendingReplayBytes != 0 || stats.LastCkStripes == 0 {
		t.Fatalf("stats after checkpoint: %+v", stats)
	}
	ts.Close()

	// Restart without the final close: the tail is empty (checkpoint
	// covered it), but more acked records then appear in the stats.
	if _, err := client.AddNDJSON(ctx, []string{"c"}, []string{"z"}); err == nil {
		t.Fatal("client outlived its server") // ts closed; guard against accidents
	}
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	client2 := NewClient(ts2.URL)
	stats, err = client2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RestoredKeys != 2 || stats.ReplayedRecords != 0 {
		t.Fatalf("stats after restart: %+v", stats)
	}
}
