package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	sbitmap "repro"
	"repro/internal/rules"
)

func f64(v float64) *float64 { return &v }

// TestRuleCRUDOverHTTP: the full rule lifecycle through the typed
// client — install, list, read, replace, delete — plus the typed error
// codes for every way a rule can be rejected.
func TestRuleCRUDOverHTTP(t *testing.T) {
	_, ts, client := newTestServer(t, Config{Spec: sbitmap.MustSpec("exact")})
	ctx := context.Background()

	spec := rules.Spec{ID: "scan", Type: rules.TypePrefix, Threshold: 100}
	installed, err := client.PutRule(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if installed.ID != "scan" || installed.Type != rules.TypePrefix {
		t.Fatalf("installed %+v", installed)
	}
	if _, err := client.PutRule(ctx, rules.Spec{
		ID: "watch", Type: rules.TypeThreshold, Key: "k1", Threshold: 10, Cooldown: "1s",
	}); err != nil {
		t.Fatal(err)
	}

	list, err := client.Rules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != "scan" || list[1].ID != "watch" {
		t.Fatalf("list %+v", list)
	}

	got, err := client.Rule(ctx, "watch")
	if err != nil || got.Key != "k1" {
		t.Fatalf("Rule(watch) = %+v, %v", got, err)
	}

	// Replace: same ID, new threshold.
	if _, err := client.PutRule(ctx, rules.Spec{
		ID: "scan", Type: rules.TypePrefix, Threshold: 500,
	}); err != nil {
		t.Fatal(err)
	}
	got, err = client.Rule(ctx, "scan")
	if err != nil || got.Threshold != 500 {
		t.Fatalf("replaced rule = %+v, %v", got, err)
	}

	if err := client.DeleteRule(ctx, "scan"); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteRule(ctx, "scan"); !isAPICode(err, CodeUnknownRule) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := client.Rule(ctx, "scan"); !isAPICode(err, CodeUnknownRule) {
		t.Fatalf("read after delete: %v", err)
	}

	// Typed rejections.
	for name, tc := range map[string]struct {
		spec rules.Spec
		code string
	}{
		"no id":          {rules.Spec{Type: rules.TypeThreshold, Key: "k", Threshold: 1}, CodeBadRule},
		"no type":        {rules.Spec{ID: "x"}, CodeBadRule},
		"bad hysteresis": {rules.Spec{ID: "x", Type: rules.TypePrefix, Threshold: 1, Hysteresis: f64(1.5)}, CodeBadRule},
		"bad cooldown":   {rules.Spec{ID: "x", Type: rules.TypePrefix, Threshold: 1, Cooldown: "soon"}, CodeBadRule},
		"window on unwindowed store": {
			rules.Spec{ID: "x", Type: rules.TypePrefix, Threshold: 1, Window: "1m"}, CodeWindowNotConf},
	} {
		if _, err := client.PutRule(ctx, tc.spec); !isAPICode(err, tc.code) {
			t.Errorf("%s: got %v, want code %s", name, err, tc.code)
		}
	}

	// Unknown JSON fields are rejected, not silently dropped.
	status, code := apiErrorOf(t, ts, "PUT", "/v1/rules", "application/json",
		[]byte(`{"id":"x","type":"prefix","treshold":100}`))
	if status != 400 || code != CodeBadRule {
		t.Fatalf("typo'd field: %d %s", status, code)
	}
}

func isAPICode(err error, code string) bool {
	apiErr, ok := err.(*APIError)
	return ok && apiErr.Code == code
}

// TestEstimateMultiKey: repeated key= parameters answer per-key, in
// order, with unknown keys as data rather than 404s; single-key behavior
// (including the 404) is unchanged.
func TestEstimateMultiKey(t *testing.T) {
	_, ts, client := newTestServer(t, Config{Spec: sbitmap.MustSpec("exact")})
	ctx := context.Background()
	if _, err := client.AddNDJSON(ctx,
		[]string{"a", "a", "b"}, []string{"x", "y", "x"}); err != nil {
		t.Fatal(err)
	}

	res, err := client.EstimateMulti(ctx, []string{"a", "missing", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].Key != "a" || !res[0].OK || res[0].Estimate != 2 {
		t.Fatalf("a: %+v", res[0])
	}
	if res[1].Key != "missing" || res[1].OK || res[1].Estimate != 0 {
		t.Fatalf("missing: %+v", res[1])
	}
	if res[2].Key != "b" || !res[2].OK || res[2].Estimate != 1 {
		t.Fatalf("b: %+v", res[2])
	}

	// Single key through EstimateMulti still answers batched.
	res, err = client.EstimateMulti(ctx, []string{"a"})
	if err != nil || len(res) != 1 || res[0].Estimate != 2 {
		t.Fatalf("single: %+v, %v", res, err)
	}

	// Single-key scalar path unchanged: unknown key is still a 404.
	if _, ok, err := client.Estimate(ctx, "missing"); err != nil || ok {
		t.Fatalf("scalar miss: ok=%v err=%v", ok, err)
	}
	// Multi-key + window is rejected.
	status, code := apiErrorOf(t, ts, "GET", "/v1/estimate?key=a&key=b&window=1m", "", nil)
	if status != 400 || code != CodeBadRequest {
		t.Fatalf("multi+window: %d %s", status, code)
	}
}

// TestAlertsOverIngest: a threshold rule fires on the ingest hot path —
// no Tick ever runs (no eval interval configured) — and the alert is
// visible in /v1/alerts and /v1/stats.
func TestAlertsOverIngest(t *testing.T) {
	srv, _, client := newTestServer(t, Config{Spec: sbitmap.MustSpec("exact")})
	ctx := context.Background()
	if _, err := client.PutRule(ctx, rules.Spec{
		ID: "watch", Type: rules.TypeThreshold, Key: "hot", Threshold: 3,
	}); err != nil {
		t.Fatal(err)
	}

	keys := make([]string, 5)
	items := make([]string, 5)
	for i := range keys {
		keys[i] = "hot"
		items[i] = fmt.Sprintf("item-%d", i)
	}
	// Both ingest encodings hit the hot path: NDJSON first (below the
	// threshold), then a binary frame that crosses it.
	if _, err := client.AddNDJSON(ctx, keys[:2], items[:2]); err != nil {
		t.Fatal(err)
	}
	if alerts, _ := client.Alerts(ctx, 0); len(alerts) != 0 {
		t.Fatalf("premature alerts: %+v", alerts)
	}
	if _, err := client.AddBatchString(ctx, keys[2:], items[2:]); err != nil {
		t.Fatal(err)
	}

	alerts, err := client.Alerts(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Rule != "watch" || alerts[0].Key != "hot" ||
		alerts[0].State != rules.StateFiring || alerts[0].Estimate != 5 {
		t.Fatalf("alerts: %+v", alerts)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rules == nil || st.Rules.Rules != 1 || st.Rules.Firing != 1 ||
		st.Rules.AlertsFired != 1 || st.Rules.HotPathEvals == 0 {
		t.Fatalf("stats rules block: %+v", st.Rules)
	}
	if got := srv.Rules().Len(); got != 1 {
		t.Fatalf("engine rules = %d", got)
	}
}

// TestAlertStreamSSE: the SSE feed delivers live alerts to a client
// consumer, replay prepends history, and alert IDs arrive monotone.
func TestAlertStreamSSE(t *testing.T) {
	srv, _, client := newTestServer(t, Config{Spec: sbitmap.MustSpec("exact")})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := client.PutRule(ctx, rules.Spec{
		ID: "scan", Type: rules.TypePrefix, Threshold: 2,
	}); err != nil {
		t.Fatal(err)
	}

	// One historical alert before the stream opens.
	ingestSpread(t, client, "early", 5)
	srv.Rules().Tick(time.Now())

	got := make(chan rules.Alert, 16)
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- client.StreamAlerts(ctx, 10, func(a rules.Alert) bool {
			got <- a
			return a.Key != "late" // stop once the live alert arrives
		})
	}()

	// Replayed history arrives first.
	select {
	case a := <-got:
		if a.Key != "early" || a.State != rules.StateFiring {
			t.Fatalf("replayed alert: %+v", a)
		}
	case <-ctx.Done():
		t.Fatal("no replayed alert")
	}

	// The replayed alert arriving proves the subscription is registered
	// (the handler subscribes before reading the replay), so a live alert
	// fired now must reach the stream.
	ingestSpread(t, client, "late", 5)
	srv.Rules().Tick(time.Now())

	select {
	case a := <-got:
		if a.Key != "late" || a.State != rules.StateFiring {
			t.Fatalf("live alert: %+v", a)
		}
	case <-ctx.Done():
		t.Fatal("no live alert")
	}
	if err := <-streamErr; err != nil {
		t.Fatalf("stream returned %v", err)
	}
}

// ingestSpread adds n distinct items under key via the client.
func ingestSpread(t *testing.T, client *Client, key string, n int) {
	t.Helper()
	keys := make([]string, n)
	items := make([]string, n)
	for i := range keys {
		keys[i] = key
		items[i] = fmt.Sprintf("%s-item-%d", key, i)
	}
	if _, err := client.AddBatchString(context.Background(), keys, items); err != nil {
		t.Fatal(err)
	}
}

// TestEvalLoopTicks: with RuleEvalInterval configured the server ticks
// the engine itself — a prefix rule fires with no explicit Tick calls —
// and Close stops the loop.
func TestEvalLoopTicks(t *testing.T) {
	srv, _, client := newTestServer(t, Config{
		Spec:             sbitmap.MustSpec("exact"),
		RuleEvalInterval: 5 * time.Millisecond,
	})
	defer srv.Close()
	ctx := context.Background()
	if _, err := client.PutRule(ctx, rules.Spec{
		ID: "scan", Type: rules.TypePrefix, Threshold: 2,
	}); err != nil {
		t.Fatal(err)
	}
	ingestSpread(t, client, "spreader", 10)
	deadline := time.Now().Add(5 * time.Second)
	for {
		alerts, err := client.Alerts(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(alerts) == 1 && alerts[0].Key == "spreader" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("eval loop never fired; alerts = %+v", alerts)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestRulesSurviveRestart: rules, firing state, alert history, and the
// alert ID cursor all ride the checkpoint manifest across a restart; a
// still-above-threshold key does not re-fire, and new alerts continue
// the ID sequence.
func TestRulesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Spec:          sbitmap.MustSpec("exact"),
		CheckpointDir: dir,
	}
	srv1, _, client1 := newTestServer(t, cfg)
	ctx := context.Background()

	if _, err := client1.PutRule(ctx, rules.Spec{
		ID: "scan", Type: rules.TypePrefix, Threshold: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client1.PutRule(ctx, rules.Spec{
		ID: "watch", Type: rules.TypeThreshold, Key: "hot", Threshold: 100,
	}); err != nil {
		t.Fatal(err)
	}
	ingestSpread(t, client1, "spreader", 8)
	srv1.Rules().Tick(time.Now())
	alerts1, err := client1.Alerts(ctx, 0)
	if err != nil || len(alerts1) != 1 {
		t.Fatalf("pre-restart alerts %+v, %v", alerts1, err)
	}
	if _, err := client1.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, _, client2 := newTestServer(t, cfg)
	list, err := client2.Rules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != "scan" || list[1].ID != "watch" {
		t.Fatalf("restored rules %+v", list)
	}
	alerts2, err := client2.Alerts(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts2) != 1 || alerts2[0].ID != alerts1[0].ID || alerts2[0].Key != "spreader" {
		t.Fatalf("restored alerts %+v", alerts2)
	}

	// The restored firing key must not re-fire on the first tick even
	// though its estimate is still above the threshold.
	srv2.Rules().Tick(time.Now())
	if alerts, _ := client2.Alerts(ctx, 0); len(alerts) != 1 {
		t.Fatalf("restored key re-fired: %+v", alerts)
	}

	// A fresh alert continues the ID sequence.
	ingestSpread(t, client2, "another", 8)
	srv2.Rules().Tick(time.Now())
	alerts3, err := client2.Alerts(ctx, 0)
	if err != nil || len(alerts3) != 2 {
		t.Fatalf("post-restart alerts %+v, %v", alerts3, err)
	}
	if alerts3[0].ID <= alerts1[0].ID {
		t.Fatalf("alert IDs did not resume: %d then %d", alerts1[0].ID, alerts3[0].ID)
	}
}

// TestRulesRestartWithWAL: with a WAL, rules installed after the last
// checkpoint are lost (rule CRUD is not WAL-logged — it rides the
// manifest only), but counted data replays and a restored rule sees it.
func TestRulesRestartWithWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Spec:          sbitmap.MustSpec("exact"),
		CheckpointDir: dir + "/ck",
		WALDir:        dir + "/wal",
	}
	srv1, _, client1 := newTestServer(t, cfg)
	ctx := context.Background()
	if _, err := client1.PutRule(ctx, rules.Spec{
		ID: "scan", Type: rules.TypePrefix, Threshold: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client1.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Ingest after the checkpoint: durable via the WAL only.
	ingestSpread(t, client1, "spreader", 8)
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, _, client2 := newTestServer(t, cfg)
	if srv2.ReplayedRecords() == 0 {
		t.Fatal("nothing replayed")
	}
	list, err := client2.Rules(ctx)
	if err != nil || len(list) != 1 {
		t.Fatalf("restored rules %+v, %v", list, err)
	}
	// The replayed spreader is above threshold; the restored rule finds
	// it on the first tick (install forced a full scan).
	srv2.Rules().Tick(time.Now())
	alerts, err := client2.Alerts(ctx, 0)
	if err != nil || len(alerts) != 1 || alerts[0].Key != "spreader" {
		t.Fatalf("replayed data not seen by restored rule: %+v, %v", alerts, err)
	}
}
