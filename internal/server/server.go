// Package server is the counting-service face of the module: it exposes a
// keyed Store[string] over HTTP, turning the library the paper's online
// monitoring setting assumes into a process a remote producer can feed and
// a remote consumer can query.
//
// The API surface (all JSON unless noted):
//
//	POST /v1/add         ingest a batch: NDJSON {"key":...,"item":...}
//	                     lines (optionally timestamped with "ts", unix
//	                     nanoseconds), or a compact binary add frame
//	                     (Content-Type application/x-sbitmap-frame) that
//	                     decodes straight onto the Store's keyed batch path
//	GET  /v1/estimate    ?key=K — one key's distinct-count estimate;
//	                     &window=5m answers over the trailing window on a
//	                     store built with the windowed(...) spec modifier;
//	                     repeating key= reads many keys in one batched pass
//	GET  /v1/topk        ?k=N — heavy hitters by estimate
//	GET  /v1/stats       store totals, spec, and live ingest/query metrics
//	PUT  /v1/rules       install (or replace) a standing query; body is a
//	                     rules.Spec — threshold, prefix (superspreader), or
//	                     movers
//	GET  /v1/rules       list installed rules; /v1/rules/{id} reads one
//	DELETE /v1/rules/{id}  remove a rule
//	GET  /v1/alerts      ?limit=N — recent alert history, newest first
//	GET  /v1/alerts/stream  live alerts as Server-Sent Events; ?replay=N
//	                     prepends the N most recent historical alerts
//	POST /v1/merge       body is a Store snapshot envelope from a peer or
//	                     edge agent; key-wise union merge (Mergeable kinds)
//	POST /v1/checkpoint  write a durable snapshot now
//	GET  /v1/healthz     liveness: status, spec, uptime (JSON)
//	GET  /v1/cluster     this node's cluster topology (role, peers)
//	GET  /healthz        plain-text liveness probe (curl/load-balancer)
//
// Errors are typed: every 4xx/5xx body is {"error":{"code":...,
// "message":...}} with a stable machine-readable code.
//
// Durability is incremental: Config.WALDir enables a write-ahead log of
// ingest frames appended before any ack (see IngestFrame), and
// Config.CheckpointDir enables manifest-led per-stripe checkpoints whose
// cost scales with the write rate, not the key count. New recovers by
// restoring the newest manifest's stripes and replaying the WAL tail, so
// a restarted server resumes counting with exactly the records it acked.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	sbitmap "repro"
	"repro/internal/pstats"
	"repro/internal/rules"
	"repro/internal/wal"
)

// DefaultMaxBodyBytes bounds /v1/add and /v1/merge request bodies when
// Config.MaxBodyBytes is zero: 32 MiB, a few hundred thousand records per
// frame, far above any sensible batch.
const DefaultMaxBodyBytes = 32 << 20

// Config dimensions a Server. Spec is required; everything else defaults.
type Config struct {
	// Spec dimensions every per-key counter (see sbitmap.Spec).
	Spec sbitmap.Spec
	// MaxKeys bounds live keys via the Store's eviction policy; 0 means
	// unbounded.
	MaxKeys int
	// Stripes overrides the Store's lock-stripe count; 0 means default.
	Stripes int
	// CheckpointDir, when non-empty, enables durable snapshots: a
	// directory holding per-stripe snapshot files under MANIFEST.json.
	// New restores the newest manifest; Checkpoint (and cmd/sketchd's
	// timer/SIGTERM hooks) writes only the stripes dirtied since the last
	// checkpoint, each via atomic tmp/fsync/rename with the manifest
	// committed last and the directory fsynced.
	CheckpointDir string
	// WALDir, when non-empty, enables the write-ahead log: every ingest
	// mutation is appended (as an SBF1 frame or merge snapshot record)
	// before its ack, and New replays the log tail on top of the restored
	// checkpoint. Completed checkpoints truncate obsolete segments.
	WALDir string
	// FsyncPolicy governs when WAL appends reach stable storage; the zero
	// value is wal.FsyncAlways (acked means durable).
	FsyncPolicy wal.FsyncPolicy
	// FsyncInterval is the flush period under wal.FsyncInterval; 0 means
	// wal.DefaultSyncInterval.
	FsyncInterval time.Duration
	// WALSegmentBytes caps a WAL segment before rotation; 0 means
	// wal.DefaultSegmentBytes.
	WALSegmentBytes int64
	// MaxDurabilityLag, when > 0, degrades GET /v1/healthz to 503 (with a
	// typed body) whenever the durability lag — how long the oldest acked
	// but not yet durable mutation has been waiting — exceeds it.
	MaxDurabilityLag time.Duration
	// MaxBodyBytes bounds ingest/merge request bodies; 0 means
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// RuleEvalInterval, when > 0, runs the standing-query engine on a
	// timer: every interval the server ticks the rules engine, scanning
	// the stripes dirtied since the previous tick. 0 disables the timer;
	// rules still evaluate on the ingest hot path (threshold rules) and
	// whenever Rules().Tick is driven explicitly (tests, benches).
	RuleEvalInterval time.Duration
	// AlertRing caps the in-memory alert history ring served by
	// GET /v1/alerts; 0 means rules.DefaultRingSize.
	AlertRing int
	// Cluster describes this node's place in a sketchd cluster (role,
	// static peer list, aggregator); the zero value is a standalone node.
	// Informational: the server reports it on GET /v1/cluster so any node
	// can tell a client the topology, but routing stays client-side.
	Cluster ClusterInfo
}

// Cluster roles. A zero/empty role reports as RoleStandalone.
const (
	RoleStandalone = "standalone"
	RoleEdge       = "edge"
	RoleAggregator = "aggregator"
)

// ClusterInfo is this node's view of the cluster topology, served on
// GET /v1/cluster. Peers is the partition set (every node's base URL, in
// ring order — identical lists on every node and client yield identical
// key placement); Aggregator is where an edge node pushes snapshots.
type ClusterInfo struct {
	Role                string   `json:"role"`
	Peers               []string `json:"peers,omitempty"`
	Aggregator          string   `json:"aggregator,omitempty"`
	PushIntervalSeconds float64  `json:"push_interval_seconds,omitempty"`
}

// Server serves one keyed Store over HTTP. It implements http.Handler;
// compose it into an http.Server (cmd/sketchd) or an httptest.Server.
type Server struct {
	cfg   Config
	store *sbitmap.Store[string]
	mux   *http.ServeMux
	start time.Time

	// gate is the ingest gate that makes a checkpoint an exact cut: every
	// ingest mutation holds it shared around its (WAL append, store apply)
	// pair, and Checkpoint holds it exclusive while capturing the cut LSN
	// and marshaling dirty stripes into memory — so the snapshot equals
	// "exactly the records below the cut applied" and replay partitions
	// perfectly. File I/O happens outside the gate; the stall scales with
	// the dirty data, not the store.
	gate sync.RWMutex

	// wlog is the write-ahead log; nil when Config.WALDir is empty.
	wlog *wal.Log

	// rules is the standing-query engine watching the store; its state
	// rides in the checkpoint manifest. The eval loop (when
	// Config.RuleEvalInterval > 0) ticks it until Close.
	rules    *rules.Engine
	evalStop chan struct{}
	evalDone chan struct{}
	evalOnce sync.Once

	// ckMu serializes checkpoint writes and guards the manifest chain
	// (man, ckSince, ckLSN).
	ckMu    sync.Mutex
	man     *manifest // newest committed manifest (nil before the first)
	ckSince uint64    // dirty-stripe cut of the next incremental pass
	ckLSN   uint64    // WAL LSN the newest manifest replays from

	restoredKeys    int
	replayedRecords int
	recoveryNanos   int64

	// walPending counts WAL bytes past the newest checkpoint — what a
	// crash right now would replay. Appends add, a committed checkpoint
	// subtracts its cut, both under the gate, so the figure is exact.
	walPending atomic.Int64
	// mutations counts ingest mutations since the last durable point;
	// with no WAL it drives the durability-lag figure.
	mutations           atomic.Int64
	lastDurableUnixNano atomic.Int64

	// Live metrics, reported by /v1/stats. The ingest and query counters
	// sit on every request's hot path and are sharded over padded cache
	// lines (pstats) so concurrent connections do not serialize on a
	// metrics word; the merge/checkpoint gauges are cold and stay plain
	// atomics.
	addRequests    pstats.Counter
	recordsTotal   pstats.Counter
	changedTotal   pstats.Counter
	queryRequests  pstats.Counter
	mergeRequests  atomic.Int64
	mergedKeys     atomic.Int64
	checkpoints    atomic.Int64
	lastCkUnixNano atomic.Int64
	lastCkBytes    atomic.Int64
	lastCkNanos    atomic.Int64
	lastCkStripes  atomic.Int64
}

// New builds a Server: validates the spec, recovers durable state —
// restore the newest manifest's stripes (whose spec must match
// cfg.Spec), open the WAL (healing a torn tail, refusing on corruption
// with a typed error), replay the tail on top — and wires the routes.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("server: max body %d < 0", cfg.MaxBodyBytes)
	}
	if cfg.Stripes < 0 {
		return nil, fmt.Errorf("server: stripe count %d < 0", cfg.Stripes)
	}
	if cfg.MaxKeys < 0 {
		return nil, fmt.Errorf("server: key limit %d < 0", cfg.MaxKeys)
	}
	switch cfg.Cluster.Role {
	case "", RoleStandalone, RoleEdge, RoleAggregator:
	default:
		return nil, fmt.Errorf("server: unknown cluster role %q (want %s, %s, or %s)",
			cfg.Cluster.Role, RoleStandalone, RoleEdge, RoleAggregator)
	}
	var opts []sbitmap.StoreOption
	if cfg.Stripes > 0 {
		opts = append(opts, sbitmap.WithStripes(cfg.Stripes))
	}
	if cfg.MaxKeys > 0 {
		opts = append(opts, sbitmap.WithMaxKeys(cfg.MaxKeys))
	}
	s := &Server{cfg: cfg, start: time.Now()}
	s.lastDurableUnixNano.Store(s.start.UnixNano())
	recoverStart := time.Now()
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: checkpoint dir: %w", err)
		}
		man, st, n, err := loadManifest(cfg.CheckpointDir, cfg.Spec, opts)
		if err != nil {
			return nil, err
		}
		if man != nil {
			s.store, s.restoredKeys = st, n
			s.man, s.ckSince, s.ckLSN = man, man.Gen, man.WALLSN
			if st.StripeCount() != man.Stripes {
				// The stripe count changed across the restart: per-stripe
				// dirt recorded under the old layout no longer maps onto
				// this one, so the next checkpoint must be a full pass.
				s.ckSince = 0
			}
		}
	}
	if s.store == nil {
		st, err := sbitmap.NewStore[string](cfg.Spec, opts...)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.store = st
	}
	if cfg.WALDir != "" {
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: wal dir: %w", err)
		}
		wlog, err := wal.Open(wal.Options{
			Dir:          cfg.WALDir,
			SegmentBytes: cfg.WALSegmentBytes,
			Policy:       cfg.FsyncPolicy,
			SyncInterval: cfg.FsyncInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("server: refusing to start: %w", err)
		}
		s.wlog = wlog
		replayed, pending, err := s.replayWAL(s.ckLSN)
		if err != nil {
			wlog.Close()
			return nil, fmt.Errorf("server: refusing to start: wal replay: %w", err)
		}
		s.replayedRecords = replayed
		s.walPending.Store(pending)
		// Replayed records came off stable storage: they are durable, only
		// not yet folded into a checkpoint.
		s.mutations.Store(0)
	}
	// The rules engine restores after the store is fully recovered
	// (checkpoint + WAL tail): restored firing state must attach to the
	// estimates it fired on, and a rule recompiling against a changed
	// spec is a refusal, not a silent drop.
	s.rules = rules.New(s.store, rules.Config{RingSize: cfg.AlertRing})
	if s.man != nil && s.man.Rules != nil {
		if err := s.rules.Restore(*s.man.Rules); err != nil {
			if s.wlog != nil {
				s.wlog.Close()
			}
			return nil, fmt.Errorf("server: refusing to start: %w", err)
		}
	}
	s.recoveryNanos = time.Since(recoverStart).Nanoseconds()
	if cfg.RuleEvalInterval > 0 {
		s.evalStop = make(chan struct{})
		s.evalDone = make(chan struct{})
		go s.evalLoop(cfg.RuleEvalInterval)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/add", s.handleAdd)
	s.mux.HandleFunc("GET /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("PUT /v1/rules", s.handleRulePut)
	s.mux.HandleFunc("GET /v1/rules", s.handleRuleList)
	s.mux.HandleFunc("GET /v1/rules/{id}", s.handleRuleGet)
	s.mux.HandleFunc("DELETE /v1/rules/{id}", s.handleRuleDelete)
	s.mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	s.mux.HandleFunc("GET /v1/alerts/stream", s.handleAlertStream)
	s.mux.HandleFunc("POST /v1/merge", s.handleMerge)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Store returns the underlying keyed store — for in-process composition
// (benchmarks, embedding the service next to local ingest).
func (s *Server) Store() *sbitmap.Store[string] { return s.store }

// Rules returns the standing-query engine — for in-process composition
// (benches install rules and drive Tick deterministically instead of
// waiting on the eval timer).
func (s *Server) Rules() *rules.Engine { return s.rules }

// evalLoop ticks the rules engine every interval until Close.
func (s *Server) evalLoop(interval time.Duration) {
	defer close(s.evalDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			s.rules.Tick(now)
		case <-s.evalStop:
			return
		}
	}
}

// RestoredKeys reports how many keys the start-time checkpoint restore
// brought back (0 when starting fresh).
func (s *Server) RestoredKeys() int { return s.restoredKeys }

// ReplayedRecords reports how many WAL records the start-time recovery
// replayed on top of the restored checkpoint.
func (s *Server) ReplayedRecords() int { return s.replayedRecords }

// Close stops the rule-evaluation loop and releases the server's durable
// resources (the WAL's open segment). Call after the HTTP listener has
// drained. Idempotent.
func (s *Server) Close() error {
	if s.evalStop != nil {
		s.evalOnce.Do(func() { close(s.evalStop) })
		<-s.evalDone
	}
	if s.wlog == nil {
		return nil
	}
	return s.wlog.Close()
}

// MaxBodyBytes reports the configured ingest size limit, so alternative
// transports (the TCP frame listener) enforce the same bound HTTP does.
func (s *Server) MaxBodyBytes() int64 { return s.cfg.MaxBodyBytes }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Error codes carried by the typed error payload. Stable: clients switch
// on these, not on messages.
const (
	CodeBadRequest      = "bad_request"
	CodeBadNDJSON       = "bad_ndjson"
	CodeBadFrame        = "bad_frame"
	CodeBadSnapshot     = "bad_snapshot"
	CodeMissingKey      = "missing_key"
	CodeUnknownKey      = "unknown_key"
	CodeBadWindow       = "bad_window"
	CodeWindowNotConf   = "window_not_configured"
	CodeTooLarge        = "payload_too_large"
	CodeSpecMismatch    = "spec_mismatch"
	CodeNotMergeable    = "not_mergeable"
	CodeNoCheckpoint    = "no_checkpoint_path"
	CodeCheckpointWrite = "checkpoint_write"
	CodeWALWrite        = "wal_write"
	CodeDurabilityLag   = "durability_lag"
	CodeBadRule         = "bad_rule"
	CodeUnknownRule     = "unknown_rule"
)

// errorBody is the wire form of every non-2xx response.
type errorBody struct {
	Error APIError `json:"error"`
}

// APIError is the typed error payload of the service; the client library
// returns it (with the HTTP status attached) for any non-2xx response.
type APIError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (%d %s)", e.Message, e.Status, e.Code)
}

// AddResult reports one /v1/add call: records ingested and how many
// changed counter state (the Store's changed count).
type AddResult struct {
	Records int `json:"records"`
	Changed int `json:"changed"`
}

// EstimateResult is the /v1/estimate response. The window fields are
// present only for ?window= queries against a windowed store.
type EstimateResult struct {
	Key      string  `json:"key"`
	Estimate float64 `json:"estimate"`

	// Window echoes the requested trailing span; Windows is how many
	// live sub-window sketches contributed. WindowStartUnixNano /
	// WindowEndUnixNano bound the covered interval [start, end) on the
	// unix epoch timeline, anchored at the store's watermark (queries
	// never consult the wall clock). Tumbling marks the non-mergeable
	// fallback: the estimate is the last complete sub-window's,
	// regardless of the requested span.
	Window              string `json:"window,omitempty"`
	Windows             int    `json:"windows,omitempty"`
	WindowStartUnixNano int64  `json:"window_start_unix_nano,omitempty"`
	WindowEndUnixNano   int64  `json:"window_end_unix_nano,omitempty"`
	Tumbling            bool   `json:"tumbling,omitempty"`
}

// MultiEstimateResult answers a /v1/estimate with repeated key=
// parameters: one entry per requested key, in request order. The call is
// 200 even when some (or all) keys are unknown — existence is per-key
// data, carried by OK.
type MultiEstimateResult struct {
	Results []MultiEstimateEntry `json:"results"`
}

// MultiEstimateEntry is one key's answer in a batched estimate. OK is
// false (and Estimate 0) for a key the store has never seen or has
// evicted.
type MultiEstimateEntry struct {
	Key      string  `json:"key"`
	OK       bool    `json:"ok"`
	Estimate float64 `json:"estimate"`
}

// Entry is one /v1/topk ranking entry.
type Entry struct {
	Key      string  `json:"key"`
	Estimate float64 `json:"estimate"`
}

// TopKResult is the /v1/topk response.
type TopKResult struct {
	Top []Entry `json:"top"`
}

// MergeResult reports one /v1/merge call.
type MergeResult struct {
	// KeysMerged is the peer snapshot's key count (every one united into
	// this store).
	KeysMerged int `json:"keys_merged"`
}

// CheckpointInfo reports one durable snapshot write. Bytes counts the
// stripe snapshot data written by THIS pass — for an incremental
// checkpoint that is the dirty stripes only, so it scales with the write
// rate since the previous pass, not with the key population.
type CheckpointInfo struct {
	Path           string  `json:"path"`
	Bytes          int     `json:"bytes"`
	Keys           int     `json:"keys"`
	Seconds        float64 `json:"seconds"`
	StripesWritten int     `json:"stripes_written"`
	Incremental    bool    `json:"incremental"`
}

// WindowStats is the /v1/stats window block, present when the store's
// spec carries a windowed(...) modifier.
type WindowStats struct {
	// Width and Ring echo the spec modifier; RetentionSeconds is their
	// product — the widest ?window= span the store can answer.
	Width            string  `json:"width"`
	Ring             int     `json:"ring"`
	RetentionSeconds float64 `json:"retention_seconds"`
	// Watermark is the newest sub-window index any record has reached
	// (the watermark window starts at watermark × width on the unix
	// epoch timeline); absent before the first record.
	Watermark *int64 `json:"watermark,omitempty"`
	// LateRecords counts records that arrived more than ring
	// sub-windows behind the watermark and were folded into the
	// watermark window. Process-lifetime, monotone.
	LateRecords int64 `json:"late_records"`
}

// Stats is the /v1/stats response: store totals plus live service
// counters. All counters are monotone since process start.
type Stats struct {
	Spec           string       `json:"spec"`
	Keys           int          `json:"keys"`
	SizeBits       int          `json:"size_bits"`
	FootprintBytes int          `json:"footprint_bytes"`
	UptimeSeconds  float64      `json:"uptime_seconds"`
	RestoredKeys   int          `json:"restored_keys"`
	Window         *WindowStats `json:"window,omitempty"`
	Rules          *rules.Stats `json:"rules,omitempty"`

	AddRequests   int64 `json:"add_requests"`
	Records       int64 `json:"records"`
	Changed       int64 `json:"changed"`
	Queries       int64 `json:"queries"`
	MergeCalls    int64 `json:"merge_calls"`
	MergedKeys    int64 `json:"merged_keys"`
	Checkpoints   int64 `json:"checkpoints"`
	LastCkUnix    int64 `json:"last_checkpoint_unix,omitempty"`
	LastCkBytes   int64 `json:"last_checkpoint_bytes,omitempty"`
	LastCkMillis  int64 `json:"last_checkpoint_millis,omitempty"`
	LastCkStripes int64 `json:"last_checkpoint_stripes,omitempty"`

	// Durability: how far the node's acked state is from stable storage.
	// DurabilityLagSeconds is the age of the oldest acked mutation not yet
	// durable (0 when everything acked is on disk);
	// WALPendingReplayBytes is how much log a crash right now would
	// replay on restart.
	DurabilityLagSeconds  float64 `json:"durability_lag_seconds"`
	WALPendingReplayBytes int64   `json:"wal_pending_replay_bytes"`
	WALSegments           int     `json:"wal_segments,omitempty"`
	WALBytes              int64   `json:"wal_bytes,omitempty"`
	ReplayedRecords       int     `json:"replayed_records,omitempty"`
	RecoveryMillis        int64   `json:"recovery_millis,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) // headers are flushed; an encode error has nowhere to go
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: APIError{
		Status:  status,
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// bodyReadError maps a request-body read failure onto its typed response:
// the MaxBytesReader limit is the client's fault (413), anything else is
// a plain bad request (the connection died mid-body, or the chunking was
// malformed).
func bodyReadError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			"request body exceeds %d bytes", maxErr.Limit)
		return
	}
	if errors.Is(err, bufio.ErrTooLong) {
		writeError(w, http.StatusBadRequest, CodeBadNDJSON,
			"NDJSON line exceeds %d bytes", ndjsonMaxLine)
		return
	}
	writeError(w, http.StatusBadRequest, CodeBadRequest, "reading request body: %v", err)
}

// ndjsonMaxLine bounds one NDJSON record line.
const ndjsonMaxLine = 1 << 20

// ndjsonRecord is one NDJSON ingest line. TS is an optional record
// timestamp in unix nanoseconds for windowed stores (0 means
// unstamped: the record lands in the store's current watermark
// sub-window, exactly like an untimestamped frame).
type ndjsonRecord struct {
	Key  string `json:"key"`
	Item string `json:"item"`
	TS   int64  `json:"ts,omitempty"`
}

// ingestScratch is the pooled per-request state of the ingest path: the
// body buffer, the decode-in-place frame, and the NDJSON record slices.
// Pooling it makes a warm /v1/add frame request allocation-free through
// read, decode, and batch add; its address doubles as the affinity value
// sharding the metrics counters.
type ingestScratch struct {
	body  []byte
	frame Frame
	keys  []string
	items []string
	tss   []int64 // per-record NDJSON timestamps (unix nanos; 0 = none)
	wal   []byte  // NDJSON records re-encoded as a frame for the WAL
}

var ingestPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// ingestBodyKeep bounds the body capacity a pooled scratch retains; one
// oversized request must not pin tens of MiB in the pool forever.
const ingestBodyKeep = 1 << 20

// release drops every reference into request memory (the frame's
// borrowed strings alias sc.body) and returns the scratch to the pool.
// Slices are cleared through their full capacity: an error path may have
// appended past the length the caller last assigned.
func (sc *ingestScratch) release() {
	if cap(sc.body) > ingestBodyKeep {
		sc.body = nil
	} else {
		sc.body = sc.body[:0]
	}
	if cap(sc.wal) > ingestBodyKeep {
		sc.wal = nil
	} else {
		sc.wal = sc.wal[:0]
	}
	sc.frame.Release()
	clear(sc.keys[:cap(sc.keys)])
	clear(sc.items[:cap(sc.items)])
	sc.keys, sc.items, sc.tss = sc.keys[:0], sc.items[:0], sc.tss[:0]
	ingestPool.Put(sc)
}

// readAllInto reads r to EOF appending into buf's capacity, returning
// the filled slice — io.ReadAll with a caller-owned buffer, so a pooled
// scratch's body survives across requests.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// AddFrame folds one decoded add frame into the store, dispatching on
// the frame's item type exactly as POST /v1/add does. The frame may be
// borrowed (zero-copy): the store's batch methods hash items immediately
// and clone any key they retain, so the caller may reuse the backing
// buffer as soon as AddFrame returns. Safe for concurrent use.
//
// AddFrame bypasses the WAL: it is the in-process composition path
// (benchmarks, embedding). Transports whose acks promise durability —
// HTTP /v1/add and the TCP frame listener — go through IngestFrame.
func (s *Server) AddFrame(f *Frame) AddResult {
	s.gate.RLock()
	res := s.applyFrame(f)
	s.gate.RUnlock()
	s.observeIngest(f.Keys, uintptr(unsafe.Pointer(f)))
	return res
}

// observeIngest hands an applied batch's keys to the rules engine's
// threshold hot path. Called after the ingest gate is released (the
// engine reads estimates back out of the store, and a rule evaluation
// must never extend the gate's critical section); the engine is
// synchronous and retains nothing, so keys may alias a transport buffer
// the caller reuses afterwards. Nil-safe for hand-rolled test servers.
func (s *Server) observeIngest(keys []string, affinity uintptr) {
	if s.rules == nil || len(keys) == 0 {
		return
	}
	s.rules.ObserveIngest(keys, time.Now(), affinity)
}

// applyFrame applies a decoded frame to the store, routing a version-2
// frame's record timestamp onto the Store's timestamped batch path so a
// windowed store files the records into the right sub-window. Callers
// hold the ingest gate shared.
func (s *Server) applyFrame(f *Frame) AddResult {
	res := AddResult{Records: f.Records()}
	switch {
	case f.Items64 != nil && f.HasTS:
		res.Changed = s.store.AddBatch64At(time.Unix(0, f.TSNanos), f.Keys, f.Items64)
	case f.Items64 != nil:
		res.Changed = s.store.AddBatch64(f.Keys, f.Items64)
	case f.HasTS:
		res.Changed = s.store.AddBatchStringAt(time.Unix(0, f.TSNanos), f.Keys, f.ItemsString)
	default:
		res.Changed = s.store.AddBatchString(f.Keys, f.ItemsString)
	}
	s.mutations.Add(1)
	return res
}

// IngestFrame ingests one encoded add frame durably: raw (exactly the
// bytes f was decoded from) is appended to the WAL before the store
// applies f, and both happen under the ingest gate, so an ack sent after
// IngestFrame returns means the frame is in the log ahead of any
// checkpoint cut — acked means replayable. With no WAL configured it
// degrades to AddFrame. An error means the frame may not be durable; the
// transport must fail the request instead of acking. Safe for
// concurrent use.
func (s *Server) IngestFrame(raw []byte, f *Frame) (AddResult, error) {
	s.gate.RLock()
	if s.wlog != nil {
		if _, err := s.wlog.Append(walTagFrame, raw); err != nil {
			s.gate.RUnlock()
			return AddResult{}, fmt.Errorf("server: wal append: %w", err)
		}
		s.walPending.Add(walRecordBytes(len(raw)))
	}
	res := s.applyFrame(f)
	s.gate.RUnlock()
	s.observeIngest(f.Keys, uintptr(unsafe.Pointer(f)))
	return res, nil
}

// ingestString is the NDJSON counterpart of IngestFrame: walFrame is the
// records re-encoded as an SBF1 string frame (built by the caller only
// when a WAL is configured), logged before the batch is applied.
func (s *Server) ingestString(walFrame []byte, keys, items []string) (int, error) {
	s.gate.RLock()
	if s.wlog != nil {
		if _, err := s.wlog.Append(walTagFrame, walFrame); err != nil {
			s.gate.RUnlock()
			return 0, fmt.Errorf("server: wal append: %w", err)
		}
		s.walPending.Add(walRecordBytes(len(walFrame)))
	}
	changed := s.store.AddBatchString(keys, items)
	s.mutations.Add(1)
	s.gate.RUnlock()
	return changed, nil
}

// ingestStringAt is ingestString for a timestamped NDJSON run: the
// records land in ts's sub-window, and walFrame (when a WAL is
// configured) is the run re-encoded as a version-2 frame carrying the
// same timestamp, so replay reproduces the window placement exactly.
func (s *Server) ingestStringAt(walFrame []byte, ts time.Time, keys, items []string) (int, error) {
	s.gate.RLock()
	if s.wlog != nil {
		if _, err := s.wlog.Append(walTagFrame, walFrame); err != nil {
			s.gate.RUnlock()
			return 0, fmt.Errorf("server: wal append: %w", err)
		}
		s.walPending.Add(walRecordBytes(len(walFrame)))
	}
	changed := s.store.AddBatchStringAt(ts, keys, items)
	s.mutations.Add(1)
	s.gate.RUnlock()
	return changed, nil
}

// RecordIngest folds one ingest call into the live metrics: an add
// request, its record count, and its changed count. The TCP frame
// listener calls it once per frame so /v1/stats reflects wire ingest
// exactly as it does HTTP ingest. affinity shards the counters — pass a
// stable per-connection or per-request pointer value.
func (s *Server) RecordIngest(affinity uintptr, records, changed int) {
	s.addRequests.Add(affinity, 1)
	s.recordsTotal.Add(affinity, int64(records))
	s.changedTotal.Add(affinity, int64(changed))
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	sc := ingestPool.Get().(*ingestScratch)
	defer sc.release()
	aff := uintptr(unsafe.Pointer(sc))
	s.addRequests.Add(aff, 1)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	// Read the whole body before parsing either format: a too-large body
	// must report 413, not a parse error on the line or record the limit
	// truncated.
	data, err := readAllInto(sc.body, body)
	sc.body = data
	if err != nil {
		bodyReadError(w, err)
		return
	}
	// Proxies may append parameters or re-case the media type; dispatch on
	// the parsed base type, not the raw header.
	mediaType := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(mediaType); err == nil {
		mediaType = mt
	}
	var res AddResult
	if mediaType == FrameContentType {
		if err := sc.frame.DecodeBorrowed(data); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadFrame, "%v", err)
			return
		}
		res, err = s.IngestFrame(data, &sc.frame)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeWALWrite, "%v", err)
			return
		}
	} else {
		keys, items, tss := sc.keys, sc.items, sc.tss
		hasTS := false
		sc2 := bufio.NewScanner(bytes.NewReader(data))
		sc2.Buffer(make([]byte, 0, 64*1024), ndjsonMaxLine)
		line := 0
		for sc2.Scan() {
			line++
			raw := bytes.TrimSpace(sc2.Bytes())
			if len(raw) == 0 {
				continue
			}
			var rec ndjsonRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				writeError(w, http.StatusBadRequest, CodeBadNDJSON, "line %d: %v", line, err)
				return
			}
			if rec.Key == "" {
				writeError(w, http.StatusBadRequest, CodeBadNDJSON, "line %d: missing key", line)
				return
			}
			keys = append(keys, rec.Key)
			items = append(items, rec.Item)
			tss = append(tss, rec.TS)
			hasTS = hasTS || rec.TS != 0
		}
		sc.keys, sc.items, sc.tss = keys, items, tss
		if err := sc2.Err(); err != nil {
			bodyReadError(w, err)
			return
		}
		res.Records = len(keys)
		if !hasTS {
			if s.wlog != nil {
				sc.wal = AppendFrameString(sc.wal[:0], keys, items)
			}
			res.Changed, err = s.ingestString(sc.wal, keys, items)
			if err != nil {
				writeError(w, http.StatusInternalServerError, CodeWALWrite, "%v", err)
				return
			}
		} else {
			// Timestamped records: a frame carries one timestamp, so split
			// the batch into maximal consecutive same-ts runs and ingest
			// (and WAL-log) each as its own frame. Traces arrive in time
			// order, so the common case is one run per batch.
			for start := 0; start < len(keys); {
				end := start + 1
				for end < len(keys) && tss[end] == tss[start] {
					end++
				}
				rk, ri := keys[start:end], items[start:end]
				var changed int
				if tss[start] == 0 {
					if s.wlog != nil {
						sc.wal = AppendFrameString(sc.wal[:0], rk, ri)
					}
					changed, err = s.ingestString(sc.wal, rk, ri)
				} else {
					ts := time.Unix(0, tss[start])
					if s.wlog != nil {
						sc.wal = AppendFrameStringAt(sc.wal[:0], ts, rk, ri)
					}
					changed, err = s.ingestStringAt(sc.wal, ts, rk, ri)
				}
				if err != nil {
					writeError(w, http.StatusInternalServerError, CodeWALWrite, "%v", err)
					return
				}
				res.Changed += changed
				start = end
			}
		}
		s.observeIngest(keys, aff)
	}
	s.recordsTotal.Add(aff, int64(res.Records))
	s.changedTotal.Add(aff, int64(res.Changed))
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.queryRequests.Add(uintptr(unsafe.Pointer(r)), 1)
	q := r.URL.Query()
	keys := q["key"]
	if len(keys) > 1 {
		// Repeated key= parameters: one batched store pass, one response.
		// Per-key existence is data ("ok"), not an HTTP status — a miss in
		// a batch of 100 must not fail the other 99.
		if q.Get("window") != "" {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				"window queries take a single key; drop ?window= or the extra key= parameters")
			return
		}
		ests := make([]float64, len(keys))
		oks := make([]bool, len(keys))
		s.store.EstimateBatch(keys, ests, oks)
		res := MultiEstimateResult{Results: make([]MultiEstimateEntry, len(keys))}
		for i := range keys {
			res.Results[i] = MultiEstimateEntry{Key: keys[i], OK: oks[i], Estimate: ests[i]}
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	key := q.Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, CodeMissingKey, "estimate needs a ?key= parameter")
		return
	}
	if raw := q.Get("window"); raw != "" {
		span, err := time.ParseDuration(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadWindow,
				"window=%q is not a duration (try 30s, 5m, 1h)", raw)
			return
		}
		we, ok, err := s.store.EstimateWindow(key, span)
		if err != nil {
			if errors.Is(err, sbitmap.ErrNotWindowed) {
				writeError(w, http.StatusBadRequest, CodeWindowNotConf,
					"this store has no windowed(...) spec modifier; start the server with a windowed spec to enable ?window= queries")
				return
			}
			// Remaining failures are span validation (ErrWindowSpan):
			// non-positive, or wider than the configured retention.
			writeError(w, http.StatusBadRequest, CodeBadWindow, "%v", err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, CodeUnknownKey, "key %q has never been seen (or was evicted)", key)
			return
		}
		writeJSON(w, http.StatusOK, EstimateResult{
			Key:                 key,
			Estimate:            we.Estimate,
			Window:              span.String(),
			Windows:             we.Windows,
			WindowStartUnixNano: we.Start.UnixNano(),
			WindowEndUnixNano:   we.End.UnixNano(),
			Tumbling:            we.Tumbling,
		})
		return
	}
	est, ok := s.store.Estimate(key)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownKey, "key %q has never been seen (or was evicted)", key)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResult{Key: key, Estimate: est})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.queryRequests.Add(uintptr(unsafe.Pointer(r)), 1)
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "k=%q is not a positive integer", raw)
			return
		}
		k = v
	}
	// TopK pre-allocates a k-sized heap; clamp to the live key count so a
	// huge ?k= cannot allocate unboundedly.
	if n := s.store.Len(); k > n {
		k = n
	}
	ranked := s.store.TopK(k)
	res := TopKResult{Top: make([]Entry, len(ranked))}
	for i, ke := range ranked {
		res.Top[i] = Entry{Key: ke.Key, Estimate: ke.Estimate}
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		Spec:           s.store.Spec().String(),
		Keys:           s.store.Len(),
		SizeBits:       s.store.SizeBits(),
		FootprintBytes: s.store.Footprint(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		RestoredKeys:   s.restoredKeys,
		AddRequests:    s.addRequests.Load(),
		Records:        s.recordsTotal.Load(),
		Changed:        s.changedTotal.Load(),
		Queries:        s.queryRequests.Load(),
		MergeCalls:     s.mergeRequests.Load(),
		MergedKeys:     s.mergedKeys.Load(),
		Checkpoints:    s.checkpoints.Load(),
		LastCkBytes:    s.lastCkBytes.Load(),
		LastCkMillis:   s.lastCkNanos.Load() / int64(time.Millisecond),
		LastCkStripes:  s.lastCkStripes.Load(),

		DurabilityLagSeconds:  s.durabilityLag(time.Now()),
		WALPendingReplayBytes: s.walPending.Load(),
		ReplayedRecords:       s.replayedRecords,
		RecoveryMillis:        s.recoveryNanos / int64(time.Millisecond),
	}
	if s.wlog != nil {
		ws := s.wlog.Stats()
		st.WALSegments = ws.Segments
		st.WALBytes = ws.Bytes
	}
	if ns := s.lastCkUnixNano.Load(); ns != 0 {
		st.LastCkUnix = ns / int64(time.Second)
	}
	rs := s.rules.Stats()
	st.Rules = &rs
	if wm, late, ok := s.store.WindowState(); ok {
		spec := s.store.Spec()
		ws := &WindowStats{
			Width:            spec.Window.String(),
			Ring:             spec.Ring,
			RetentionSeconds: spec.Retention().Seconds(),
			LateRecords:      late,
		}
		if wm != sbitmap.WindowWatermarkNone {
			ws.Watermark = &wm
		}
		st.Window = ws
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	s.mergeRequests.Add(1)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		bodyReadError(w, err)
		return
	}
	peer, err := sbitmap.UnmarshalStore[string](data)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSnapshot, "%v", err)
		return
	}
	if peer.Spec() != s.store.Spec() {
		writeError(w, http.StatusConflict, CodeSpecMismatch,
			"peer snapshot spec %s differs from this store's %s", peer.Spec(), s.store.Spec())
		return
	}
	// Apply, then log. A merge can fail validation deep inside the store,
	// so the WAL record is written only for merges that actually mutated
	// state — otherwise replay would refuse on a record the live server
	// rejected. The gate spans both, so a checkpoint cut cannot fall
	// between apply and append; logging after applying is sound here
	// because Mergeable kinds union idempotently, unlike add frames.
	s.gate.RLock()
	if err := s.store.Merge(peer); err != nil {
		s.gate.RUnlock()
		if errors.Is(err, sbitmap.ErrNotMergeable) {
			writeError(w, http.StatusUnprocessableEntity, CodeNotMergeable, "%v", err)
			return
		}
		writeError(w, http.StatusConflict, CodeSpecMismatch, "%v", err)
		return
	}
	s.mutations.Add(1)
	if s.wlog != nil {
		if _, err := s.wlog.Append(walTagMerge, data); err != nil {
			s.gate.RUnlock()
			writeError(w, http.StatusInternalServerError, CodeWALWrite, "server: wal append: %v", err)
			return
		}
		s.walPending.Add(walRecordBytes(len(data)))
	}
	s.gate.RUnlock()
	s.mergedKeys.Add(int64(peer.Len()))
	writeJSON(w, http.StatusOK, MergeResult{KeysMerged: peer.Len()})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	info, err := s.Checkpoint()
	if err != nil {
		if errors.Is(err, ErrNoCheckpointPath) {
			writeError(w, http.StatusConflict, CodeNoCheckpoint,
				"server was started without a checkpoint path")
			return
		}
		writeError(w, http.StatusInternalServerError, CodeCheckpointWrite, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// HealthResult is the GET /v1/healthz response: enough for a prober to
// confirm the node is alive AND is the node it expects (same spec), at a
// cost independent of the store size — plus the durability figures a
// load balancer needs to drain a node whose acked data is drifting away
// from stable storage. When Config.MaxDurabilityLag is exceeded, Status
// is "degraded", Error carries the typed cause, and the endpoint serves
// the same body with a 503 — so the response parses both as a
// HealthResult and as the standard {"error":{...}} envelope.
type HealthResult struct {
	Status               string    `json:"status"`
	Spec                 string    `json:"spec"`
	Role                 string    `json:"role"`
	UptimeSeconds        float64   `json:"uptime_seconds"`
	DurabilityLagSeconds float64   `json:"durability_lag_seconds"`
	WALPendingBytes      int64     `json:"wal_pending_replay_bytes"`
	Error                *APIError `json:"error,omitempty"`
}

// Health reports the node's liveness summary (what GET /v1/healthz
// serves) — exported so in-process composition can skip the HTTP hop.
func (s *Server) Health() HealthResult {
	lag := s.durabilityLag(time.Now())
	h := HealthResult{
		Status:               "ok",
		Spec:                 s.store.Spec().String(),
		Role:                 s.ClusterInfo().Role,
		UptimeSeconds:        time.Since(s.start).Seconds(),
		DurabilityLagSeconds: lag,
		WALPendingBytes:      s.walPending.Load(),
	}
	if max := s.cfg.MaxDurabilityLag; max > 0 && lag > max.Seconds() {
		h.Status = "degraded"
		h.Error = &APIError{
			Status: http.StatusServiceUnavailable,
			Code:   CodeDurabilityLag,
			Message: fmt.Sprintf("durability lag %.3fs exceeds the configured maximum %.3fs (acked data is not reaching stable storage)",
				lag, max.Seconds()),
		}
	}
	return h
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.Error != nil {
		status = h.Error.Status
	}
	writeJSON(w, status, h)
}

// ClusterInfo returns the configured topology with the role defaulted,
// so callers and /v1/cluster always see a concrete role string.
func (s *Server) ClusterInfo() ClusterInfo {
	info := s.cfg.Cluster
	if info.Role == "" {
		info.Role = RoleStandalone
	}
	return info
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ClusterInfo())
}

// ErrNoCheckpointPath reports a Checkpoint call on a server configured
// without Config.CheckpointDir.
var ErrNoCheckpointPath = errors.New("server: no checkpoint directory configured")
