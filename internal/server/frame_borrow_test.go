package server

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"unsafe"

	sbitmap "repro"
)

// TestDecodeBorrowedMatchesDecodeFrame: the zero-copy decoder must accept
// and reject exactly what DecodeFrame does, producing equal frames —
// including when one borrowed Frame is reused across inputs of both item
// types and across rejects.
func TestDecodeBorrowedMatchesDecodeFrame(t *testing.T) {
	good64 := AppendFrame64(nil, []string{"alice", "bob", strings.Repeat("k", 300)}, []uint64{1, 1 << 60, 0})
	goodStr := AppendFrameString(nil, []string{"k1", "k2"}, []string{"", "item-two"})
	inputs := [][]byte{
		good64,
		goodStr,
		AppendFrame64(nil, nil, nil),
		appendFrameHeader(nil, frameItemsString, 0),
		{},
		good64[:9],
		good64[:len(good64)-3],
		append(append([]byte{}, goodStr...), 0xAB),
		AppendFrame64(nil, []string{"ok", ""}, []uint64{1, 2}),
	}
	var f Frame // one reused borrowed frame across every input
	for i, data := range inputs {
		want, wantErr := DecodeFrame(data)
		gotErr := f.DecodeBorrowed(data)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("input %d: DecodeFrame err %v, DecodeBorrowed err %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("input %d: error %q vs %q", i, gotErr, wantErr)
			}
			continue
		}
		// Compare the public decode result; the unexported spare fields
		// are reuse bookkeeping and legitimately differ on a reused frame.
		if !reflect.DeepEqual(f.Keys, want.Keys) ||
			!reflect.DeepEqual(f.Items64, want.Items64) ||
			!reflect.DeepEqual(f.ItemsString, want.ItemsString) {
			t.Errorf("input %d: borrowed frame differs:\n%+v\n%+v", i, f, *want)
		}
	}
}

// TestDecodeBorrowedAliases pins the zero-copy property itself (keys view
// the input buffer) and the reuse hazard it implies: mutating the buffer
// rewrites the decoded strings. This is the contract the store's
// clone-on-materialize behavior exists to absorb.
func TestDecodeBorrowedAliases(t *testing.T) {
	data := AppendFrameString(nil, []string{"flow-a"}, []string{"item"})
	var f Frame
	if err := f.DecodeBorrowed(data); err != nil {
		t.Fatal(err)
	}
	if f.Keys[0] != "flow-a" {
		t.Fatalf("decoded key %q", f.Keys[0])
	}
	if unsafe.StringData(f.Keys[0]) != &data[11] {
		t.Fatalf("borrowed key does not alias the input buffer")
	}
	data[11] = 'X'
	if f.Keys[0] != "Xlow-a" {
		t.Fatalf("key after buffer mutation = %q, want aliased view", f.Keys[0])
	}
}

// TestFrameReleaseDropsReferences: a released frame keeps its slice
// capacity but no string references into the last buffer.
func TestFrameReleaseDropsReferences(t *testing.T) {
	var f Frame
	if err := f.DecodeBorrowed(AppendFrameString(nil, []string{"key"}, []string{"item"})); err != nil {
		t.Fatal(err)
	}
	keepCap := cap(f.Keys)
	f.Release()
	if f.Records() != 0 || cap(f.Keys) != keepCap {
		t.Fatalf("after Release: %d records, key cap %d (want 0, %d)", f.Records(), cap(f.Keys), keepCap)
	}
	for _, k := range f.Keys[:keepCap] {
		if k != "" {
			t.Fatalf("released frame retains key %q", k)
		}
	}
}

// TestIngestFrameAllocFree is the wire-speed contract of this package:
// once the pooled scratch, the frame slices, and the store's keys are
// warm, decode-borrowed + batch add + metrics performs zero heap
// allocations per frame — for uint64 and for string items. This is the
// exact per-message core the TCP listener runs.
func TestIngestFrameAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	srv, err := New(Config{Spec: sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1")})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 256)
	items64 := make([]uint64, len(keys))
	itemsS := make([]string, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("flow-%04x", i*7)
		items64[i] = uint64(i) * 0x9e37
		itemsS[i] = fmt.Sprintf("ip-%d", i%50)
	}
	frame64 := AppendFrame64(nil, keys, items64)
	frameStr := AppendFrameString(nil, keys, itemsS)

	sc := ingestPool.Get().(*ingestScratch)
	defer sc.release()
	aff := uintptr(unsafe.Pointer(sc))
	ingest := func(data []byte) {
		if err := sc.frame.DecodeBorrowed(data); err != nil {
			t.Fatal(err)
		}
		res := srv.AddFrame(&sc.frame)
		srv.RecordIngest(aff, res.Records, res.Changed)
	}
	ingest(frame64) // warm: materialize keys, size the frame slices
	ingest(frameStr)
	if allocs := testing.AllocsPerRun(20, func() { ingest(frame64) }); allocs != 0 {
		t.Errorf("uint64 frame ingest: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { ingest(frameStr) }); allocs != 0 {
		t.Errorf("string frame ingest: %.1f allocs/op, want 0", allocs)
	}
}

// TestHandleAddBorrowedKeysSurviveBufferReuse: end-to-end through the
// HTTP handler, keys decoded zero-copy from one request's body must stay
// intact after later requests reuse the pooled body buffer.
func TestHandleAddBorrowedKeysSurviveBufferReuse(t *testing.T) {
	srv, err := New(Config{Spec: sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1")})
	if err != nil {
		t.Fatal(err)
	}
	post := func(body []byte) {
		t.Helper()
		req := httptest.NewRequest("POST", "/v1/add", bytes.NewReader(body))
		req.Header.Set("Content-Type", FrameContentType)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("POST /v1/add: %d %s", rec.Code, rec.Body)
		}
	}
	post(AppendFrame64(nil, []string{"keep-me"}, []uint64{42}))
	// Same-size frame with different keys: forces the pooled body buffer
	// (and borrowed frame) to be rewritten in place if reused.
	for i := 0; i < 8; i++ {
		post(AppendFrame64(nil, []string{fmt.Sprintf("other-%d", i)}, []uint64{uint64(i)}))
	}
	if _, ok := srv.Store().Estimate("keep-me"); !ok {
		t.Fatal("key from first request lost after pooled buffer reuse")
	}
	found := false
	srv.Store().ForEach(func(k string, _ sbitmap.Counter) bool {
		if k == "keep-me" {
			found = true
		}
		if len(k) > 0 && k[0] != 'k' && k[0] != 'o' {
			t.Fatalf("corrupted stored key %q", k)
		}
		return true
	})
	if !found {
		t.Fatal("stored key set lost keep-me")
	}
}
