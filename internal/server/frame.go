package server

import (
	"encoding/binary"
	"fmt"
)

// The add frame is the compact binary ingest format of the counting
// service: a batch of (key, item) records that decodes into exactly the
// slice pair Store.AddBatch64 / Store.AddBatchString consume, so one
// frame costs the server one batched hash pass and one lock per touched
// stripe — the same fast path a local caller gets. An exporter or edge
// agent accumulates records, encodes one frame, and POSTs it to /v1/add.
//
// Layout (little-endian):
//
//	[0:4]   magic "SBF1"
//	[4]     format version (currently 1)
//	[5]     item type: 1 = uint64 items, 2 = string items
//	[6:10]  record count (uint32)
//	per record:
//	        uvarint key length, key bytes
//	        item: 8-byte uint64 (type 1) | uvarint length + bytes (type 2)
//
// Uvarint key/item lengths keep the common case (short flow keys) at one
// length byte per field — the "compact" in compact frame.

// FrameContentType is the Content-Type under which /v1/add expects a
// binary add frame. Any other Content-Type is read as NDJSON.
const FrameContentType = "application/x-sbitmap-frame"

// frameMagic tags add frames ("SBF1" read as a little-endian uint32).
const frameMagic = uint32(0x31464253)

// frameVersion is the current frame format version.
const frameVersion = 1

// Frame item types.
const (
	frameItems64     = 1
	frameItemsString = 2
)

// frameMaxKeyLen bounds a single key; longer keys are a protocol error
// (and would be a poor idea in a per-key map anyway).
const frameMaxKeyLen = 1 << 16

// Frame is a decoded add frame: Keys paired with exactly one of Items64
// or ItemsString (the other is nil), mirroring the two keyed batch
// entrypoints of the Store.
type Frame struct {
	Keys        []string
	Items64     []uint64
	ItemsString []string
}

// Records returns the number of records in the frame.
func (f *Frame) Records() int { return len(f.Keys) }

func appendFrameHeader(dst []byte, itemType byte, n int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, frameMagic)
	dst = append(dst, frameVersion, itemType)
	return binary.LittleEndian.AppendUint32(dst, uint32(n))
}

// AppendFrame64 appends the frame encoding of (keys[i], items[i]) records
// with uint64 items to dst and returns the extended slice. It panics if
// the slice lengths differ (caller bug, as in Store.AddBatch64).
func AppendFrame64(dst []byte, keys []string, items []uint64) []byte {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("server: AppendFrame64 with %d keys and %d items", len(keys), len(items)))
	}
	dst = appendFrameHeader(dst, frameItems64, len(keys))
	for i, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.LittleEndian.AppendUint64(dst, items[i])
	}
	return dst
}

// AppendFrameString appends the frame encoding of (keys[i], items[i])
// records with string items to dst and returns the extended slice. It
// panics if the slice lengths differ.
func AppendFrameString(dst []byte, keys, items []string) []byte {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("server: AppendFrameString with %d keys and %d items", len(keys), len(items)))
	}
	dst = appendFrameHeader(dst, frameItemsString, len(keys))
	for i, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.AppendUvarint(dst, uint64(len(items[i])))
		dst = append(dst, items[i]...)
	}
	return dst
}

// frameUvarint decodes one uvarint length field bounded by max.
func frameUvarint(data []byte, what string, max int) (int, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("server: truncated frame: %s length", what)
	}
	if v > uint64(max) {
		return 0, nil, fmt.Errorf("server: frame %s length %d exceeds %d", what, v, max)
	}
	return int(v), data[n:], nil
}

// DecodeFrame parses an add frame. Keys must be non-empty (the same
// contract the NDJSON ingest path enforces); items may be anything. Keys
// and string items are copied out of data, so the caller may reuse its
// buffer once DecodeFrame returns.
func DecodeFrame(data []byte) (*Frame, error) {
	if len(data) < 10 {
		return nil, fmt.Errorf("server: truncated frame: header needs 10 bytes, have %d", len(data))
	}
	if binary.LittleEndian.Uint32(data) != frameMagic {
		return nil, fmt.Errorf("server: bad frame magic (not an add frame)")
	}
	if v := data[4]; v != frameVersion {
		return nil, fmt.Errorf("server: unsupported frame version %d (this build reads version %d)", v, frameVersion)
	}
	itemType := data[5]
	if itemType != frameItems64 && itemType != frameItemsString {
		return nil, fmt.Errorf("server: unknown frame item type %d", itemType)
	}
	count := int(binary.LittleEndian.Uint32(data[6:]))
	rest := data[10:]
	// Every record costs at least one key-length byte plus its item (8
	// bytes for uint64 items, one length byte for string items); a count
	// that cannot fit is rejected before any allocation sized by it.
	minRec := 2
	if itemType == frameItems64 {
		minRec = 9
	}
	if count*minRec > len(rest) {
		return nil, fmt.Errorf("server: truncated frame: %d records declared, %d bytes of payload", count, len(rest))
	}
	f := &Frame{Keys: make([]string, count)}
	if itemType == frameItems64 {
		f.Items64 = make([]uint64, count)
	} else {
		f.ItemsString = make([]string, count)
	}
	var err error
	var klen int
	for i := 0; i < count; i++ {
		if klen, rest, err = frameUvarint(rest, "key", frameMaxKeyLen); err != nil {
			return nil, fmt.Errorf("%w (record %d)", err, i)
		}
		if klen == 0 {
			// Same contract as the NDJSON ingest path: a record with no
			// key is malformed, not a record for the empty-string key
			// (which /v1/estimate could never query back).
			return nil, fmt.Errorf("server: frame record %d has an empty key", i)
		}
		if klen > len(rest) {
			return nil, fmt.Errorf("server: truncated frame: record %d key", i)
		}
		f.Keys[i] = string(rest[:klen])
		rest = rest[klen:]
		if itemType == frameItems64 {
			if len(rest) < 8 {
				return nil, fmt.Errorf("server: truncated frame: record %d item", i)
			}
			f.Items64[i] = binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
		} else {
			var ilen int
			if ilen, rest, err = frameUvarint(rest, "item", len(rest)); err != nil {
				return nil, fmt.Errorf("%w (record %d)", err, i)
			}
			if ilen > len(rest) {
				return nil, fmt.Errorf("server: truncated frame: record %d item", i)
			}
			f.ItemsString[i] = string(rest[:ilen])
			rest = rest[ilen:]
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes after last frame record", len(rest))
	}
	return f, nil
}
