package server

import (
	"encoding/binary"
	"fmt"
	"time"
	"unsafe"
)

// The add frame is the compact binary ingest format of the counting
// service: a batch of (key, item) records that decodes into exactly the
// slice pair Store.AddBatch64 / Store.AddBatchString consume, so one
// frame costs the server one batched hash pass and one lock per touched
// stripe — the same fast path a local caller gets. An exporter or edge
// agent accumulates records, encodes one frame, and POSTs it to /v1/add.
//
// Layout (little-endian):
//
//	[0:4]   magic "SBF1"
//	[4]     format version (1 or 2)
//	[5]     item type: 1 = uint64 items, 2 = string items
//	[6:10]  record count (uint32)
//	[10:18] record timestamp, unix nanoseconds (int64) — version 2 only
//	per record:
//	        uvarint key length, key bytes
//	        item: 8-byte uint64 (type 1) | uvarint length + bytes (type 2)
//
// Uvarint key/item lengths keep the common case (short flow keys) at one
// length byte per field — the "compact" in compact frame.
//
// Version 2 adds one per-frame timestamp — the capture instant an
// exporter stamps on the whole batch, which a windowed store uses to
// place the records in time (Store.AddBatch64At). It is caller-supplied
// so replayed traces and WAL recovery reproduce identical windows; a
// version-1 frame means "no timestamp" and lands in the watermark
// window. Decoders accept both versions; encoders emit version 1 unless
// the caller asks for a timestamp (AppendFrame64At / AppendFrameStringAt).

// FrameContentType is the Content-Type under which /v1/add expects a
// binary add frame. Any other Content-Type is read as NDJSON.
const FrameContentType = "application/x-sbitmap-frame"

// frameMagic tags add frames ("SBF1" read as a little-endian uint32).
const frameMagic = uint32(0x31464253)

// Frame format versions: v1 has no timestamp, v2 carries one per-frame
// record timestamp after the count.
const (
	frameVersion   = 1
	frameVersionTS = 2
)

// Frame item types.
const (
	frameItems64     = 1
	frameItemsString = 2
)

// frameMaxKeyLen bounds a single key; longer keys are a protocol error
// (and would be a poor idea in a per-key map anyway).
const frameMaxKeyLen = 1 << 16

// Frame is a decoded add frame: Keys paired with exactly one of Items64
// or ItemsString (the other is nil), mirroring the two keyed batch
// entrypoints of the Store.
type Frame struct {
	Keys        []string
	Items64     []uint64
	ItemsString []string

	// TSNanos is the frame's record timestamp (unix nanoseconds), valid
	// only when HasTS is set (version-2 frames). Zero-valued pairs mean an
	// untimestamped version-1 frame.
	TSNanos int64
	HasTS   bool

	// spare64/spareS park the capacity of whichever item slice the last
	// decode did not select, so a reused Frame stays allocation-free even
	// when consecutive frames alternate item types while Items64 /
	// ItemsString keep their exactly-one-non-nil contract.
	spare64 []uint64
	spareS  []string
}

// Records returns the number of records in the frame.
func (f *Frame) Records() int { return len(f.Keys) }

func appendFrameHeader(dst []byte, itemType byte, n int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, frameMagic)
	dst = append(dst, frameVersion, itemType)
	return binary.LittleEndian.AppendUint32(dst, uint32(n))
}

// appendFrameHeaderTS is appendFrameHeader for version-2 (timestamped)
// frames.
func appendFrameHeaderTS(dst []byte, itemType byte, n int, tsNanos int64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, frameMagic)
	dst = append(dst, frameVersionTS, itemType)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	return binary.LittleEndian.AppendUint64(dst, uint64(tsNanos))
}

// AppendFrame64 appends the frame encoding of (keys[i], items[i]) records
// with uint64 items to dst and returns the extended slice. It panics if
// the slice lengths differ (caller bug, as in Store.AddBatch64).
func AppendFrame64(dst []byte, keys []string, items []uint64) []byte {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("server: AppendFrame64 with %d keys and %d items", len(keys), len(items)))
	}
	dst = appendFrameHeader(dst, frameItems64, len(keys))
	for i, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.LittleEndian.AppendUint64(dst, items[i])
	}
	return dst
}

// AppendFrameString appends the frame encoding of (keys[i], items[i])
// records with string items to dst and returns the extended slice. It
// panics if the slice lengths differ.
func AppendFrameString(dst []byte, keys, items []string) []byte {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("server: AppendFrameString with %d keys and %d items", len(keys), len(items)))
	}
	dst = appendFrameHeader(dst, frameItemsString, len(keys))
	for i, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.AppendUvarint(dst, uint64(len(items[i])))
		dst = append(dst, items[i]...)
	}
	return dst
}

// AppendFrame64At is AppendFrame64 with a record timestamp shared by the
// whole frame: it emits a version-2 frame whose records a windowed store
// places in ts's sub-window.
func AppendFrame64At(dst []byte, ts time.Time, keys []string, items []uint64) []byte {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("server: AppendFrame64At with %d keys and %d items", len(keys), len(items)))
	}
	dst = appendFrameHeaderTS(dst, frameItems64, len(keys), ts.UnixNano())
	for i, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.LittleEndian.AppendUint64(dst, items[i])
	}
	return dst
}

// AppendFrameStringAt is AppendFrameString with a record timestamp
// shared by the whole frame (version-2 encoding); see AppendFrame64At.
func AppendFrameStringAt(dst []byte, ts time.Time, keys, items []string) []byte {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("server: AppendFrameStringAt with %d keys and %d items", len(keys), len(items)))
	}
	dst = appendFrameHeaderTS(dst, frameItemsString, len(keys), ts.UnixNano())
	for i, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.AppendUvarint(dst, uint64(len(items[i])))
		dst = append(dst, items[i]...)
	}
	return dst
}

// frameUvarint decodes one uvarint length field bounded by max.
func frameUvarint(data []byte, what string, max int) (int, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("server: truncated frame: %s length", what)
	}
	if v > uint64(max) {
		return 0, nil, fmt.Errorf("server: frame %s length %d exceeds %d", what, v, max)
	}
	return int(v), data[n:], nil
}

// DecodeFrame parses an add frame. Keys must be non-empty (the same
// contract the NDJSON ingest path enforces); items may be anything. Keys
// and string items are copied out of data, so the caller may reuse its
// buffer once DecodeFrame returns.
func DecodeFrame(data []byte) (*Frame, error) {
	f := &Frame{}
	if err := f.decode(data, true); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeBorrowed parses an add frame into f without copying: keys and
// string items alias data, and f's slices are reused across calls (grown
// once, then steady-state allocation-free). It accepts and rejects
// exactly the frames DecodeFrame does.
//
// The aliasing contract: the decoded strings are views into data, valid
// only until the caller reuses the buffer. The Store's batch methods are
// safe consumers — they hash items immediately and clone any key they
// materialize — which is what makes a persistent-connection listener's
// read-decode-add loop zero-copy end to end. On error f is emptied.
func (f *Frame) DecodeBorrowed(data []byte) error {
	return f.decode(data, false)
}

// byteString reinterprets b as a string without copying. The result
// aliases b: it is valid only while b's contents are unchanged.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// decode is the parse core of DecodeFrame (copyStrings=true: fresh
// slices, copied strings) and DecodeBorrowed (reused slices, aliased
// strings).
func (f *Frame) decode(data []byte, copyStrings bool) error {
	// Empty f up front (errors leave it empty) while parking both item
	// slices' capacity in the spares for reuse below.
	f.Keys = f.Keys[:0]
	if f.Items64 != nil {
		f.spare64, f.Items64 = f.Items64[:0], nil
	}
	if f.ItemsString != nil {
		f.spareS, f.ItemsString = f.ItemsString[:0], nil
	}
	f.TSNanos, f.HasTS = 0, false
	if len(data) < 10 {
		return fmt.Errorf("server: truncated frame: header needs 10 bytes, have %d", len(data))
	}
	if binary.LittleEndian.Uint32(data) != frameMagic {
		return fmt.Errorf("server: bad frame magic (not an add frame)")
	}
	version := data[4]
	if version != frameVersion && version != frameVersionTS {
		return fmt.Errorf("server: unsupported frame version %d (this build reads versions %d and %d)", version, frameVersion, frameVersionTS)
	}
	itemType := data[5]
	if itemType != frameItems64 && itemType != frameItemsString {
		return fmt.Errorf("server: unknown frame item type %d", itemType)
	}
	count := int(binary.LittleEndian.Uint32(data[6:]))
	rest := data[10:]
	if version == frameVersionTS {
		if len(rest) < 8 {
			return fmt.Errorf("server: truncated frame: version-2 header needs a timestamp, have %d bytes", len(rest))
		}
		f.TSNanos, f.HasTS = int64(binary.LittleEndian.Uint64(rest)), true
		rest = rest[8:]
	}
	// Every record costs at least one key-length byte plus its item (8
	// bytes for uint64 items, one length byte for string items); a count
	// that cannot fit is rejected before any allocation sized by it.
	minRec := 2
	if itemType == frameItems64 {
		minRec = 9
	}
	if count*minRec > len(rest) {
		return fmt.Errorf("server: truncated frame: %d records declared, %d bytes of payload", count, len(rest))
	}
	// Exactly one of the item slices ends up non-nil — that is how callers
	// (and the HTTP handler) tell the two record shapes apart, so the
	// selected slice is forced non-nil even for an empty frame and the
	// other stays nil (its capacity parked in the spare).
	keys := f.Keys
	if keys == nil || cap(keys) < count {
		keys = make([]string, 0, count)
	}
	items64 := f.spare64[:0]
	itemsS := f.spareS[:0]
	if itemType == frameItems64 {
		if items64 == nil || cap(items64) < count {
			items64 = make([]uint64, 0, count)
		}
	} else {
		if itemsS == nil || cap(itemsS) < count {
			itemsS = make([]string, 0, count)
		}
	}
	str := byteString
	if copyStrings {
		str = func(b []byte) string { return string(b) }
	}
	var err error
	var klen int
	for i := 0; i < count; i++ {
		if klen, rest, err = frameUvarint(rest, "key", frameMaxKeyLen); err != nil {
			return fmt.Errorf("%w (record %d)", err, i)
		}
		if klen == 0 {
			// Same contract as the NDJSON ingest path: a record with no
			// key is malformed, not a record for the empty-string key
			// (which /v1/estimate could never query back).
			return fmt.Errorf("server: frame record %d has an empty key", i)
		}
		if klen > len(rest) {
			return fmt.Errorf("server: truncated frame: record %d key", i)
		}
		keys = append(keys, str(rest[:klen]))
		rest = rest[klen:]
		if itemType == frameItems64 {
			if len(rest) < 8 {
				return fmt.Errorf("server: truncated frame: record %d item", i)
			}
			items64 = append(items64, binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
		} else {
			var ilen int
			if ilen, rest, err = frameUvarint(rest, "item", len(rest)); err != nil {
				return fmt.Errorf("%w (record %d)", err, i)
			}
			if ilen > len(rest) {
				return fmt.Errorf("server: truncated frame: record %d item", i)
			}
			itemsS = append(itemsS, str(rest[:ilen]))
			rest = rest[ilen:]
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("server: %d trailing bytes after last frame record", len(rest))
	}
	f.Keys = keys
	if itemType == frameItems64 {
		f.Items64, f.spare64 = items64, nil
		f.spareS = itemsS
	} else {
		f.ItemsString, f.spareS = itemsS, nil
		f.spare64 = items64
	}
	return nil
}

// Release drops the frame's references into borrowed or decoded memory
// (string views, item slices keep their capacity) so a pooled Frame
// cannot pin a request body or a connection's read buffer.
func (f *Frame) Release() {
	clear(f.Keys[:cap(f.Keys)]) // to cap: a failed decode appends past the reset length
	clear(f.ItemsString[:cap(f.ItemsString)])
	clear(f.spareS[:cap(f.spareS)])
	f.Keys, f.Items64, f.ItemsString = f.Keys[:0], f.Items64[:0], f.ItemsString[:0]
	f.spareS = f.spareS[:0]
}
