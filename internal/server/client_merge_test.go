package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	sbitmap "repro"
)

// The /v1/merge failure modes as a client sees them: every refusal must
// arrive as a typed *APIError the caller can switch on, not a string.

func newTestService(t *testing.T, spec string) (*Server, *Client) {
	t.Helper()
	srv, err := New(Config{Spec: sbitmap.MustSpec(spec)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL)
}

func snapshotOf(t *testing.T, spec string, keys []string, items []uint64) []byte {
	t.Helper()
	st, err := sbitmap.NewStore[string](sbitmap.MustSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	st.AddBatch64(keys, items)
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestClientMergeSpecMismatch(t *testing.T) {
	_, c := newTestService(t, "hll:mbits=1024,seed=2")
	// Same kind, different dimensioning — and separately, same shape but a
	// different seed: both must refuse (register indexes would disagree).
	for _, peerSpec := range []string{"hll:mbits=2048,seed=2", "hll:mbits=1024,seed=3"} {
		blob := snapshotOf(t, peerSpec, []string{"k"}, []uint64{1})
		_, err := c.Merge(context.Background(), blob)
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("peer %s: want *APIError, got %v", peerSpec, err)
		}
		if apiErr.Code != CodeSpecMismatch || apiErr.Status != 409 {
			t.Fatalf("peer %s: code=%s status=%d, want %s/409", peerSpec, apiErr.Code, apiErr.Status, CodeSpecMismatch)
		}
	}
}

func TestClientMergeNotMergeable(t *testing.T) {
	const spec = "sbitmap:n=1e4,eps=0.1,seed=4"
	srv, c := newTestService(t, spec)
	blob := snapshotOf(t, spec, []string{"k"}, []uint64{1})
	_, err := c.Merge(context.Background(), blob)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Code != CodeNotMergeable || apiErr.Status != 422 {
		t.Fatalf("code=%s status=%d, want %s/422", apiErr.Code, apiErr.Status, CodeNotMergeable)
	}
	if srv.Store().Len() != 0 {
		t.Fatalf("refused merge still materialized %d keys", srv.Store().Len())
	}
}

func TestClientMergeBadSnapshot(t *testing.T) {
	_, c := newTestService(t, "hll:mbits=1024,seed=2")
	_, err := c.Merge(context.Background(), []byte("definitely not a store envelope"))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeBadSnapshot {
		t.Fatalf("want typed %s, got %v", CodeBadSnapshot, err)
	}
}

func TestClientMergeUnion(t *testing.T) {
	// The success path through the client: a peer snapshot unions into
	// the server, and the result equals a store fed both record sets.
	const spec = "hll:mbits=1024,seed=2"
	srv, c := newTestService(t, spec)
	ctx := context.Background()
	if _, err := c.AddBatch64(ctx, []string{"a", "b"}, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Merge(ctx, snapshotOf(t, spec, []string{"b", "c"}, []uint64{9, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if res.KeysMerged != 2 {
		t.Fatalf("KeysMerged=%d, want 2", res.KeysMerged)
	}
	twin, err := sbitmap.NewStore[string](sbitmap.MustSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	twin.AddBatch64([]string{"a", "b", "b", "c"}, []uint64{1, 2, 9, 3})
	twin.ForEach(func(key string, cnt sbitmap.Counter) bool {
		got, ok := srv.Store().Estimate(key)
		if !ok || got != cnt.Estimate() {
			t.Fatalf("key %q: merged %v, twin %v (ok=%v)", key, got, cnt.Estimate(), ok)
		}
		return true
	})
}

func TestClientHealthAndCluster(t *testing.T) {
	spec := sbitmap.MustSpec("hll:mbits=1024,seed=2")
	srv, err := New(Config{Spec: spec, Cluster: ClusterInfo{
		Role:  RoleEdge,
		Peers: []string{"http://n1:8287", "http://n2:8287"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Spec != spec.String() || h.Role != RoleEdge || h.UptimeSeconds < 0 {
		t.Fatalf("health: %+v", h)
	}

	info, err := c.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != RoleEdge || len(info.Peers) != 2 {
		t.Fatalf("cluster info: %+v", info)
	}

	// A standalone node still reports a concrete role.
	_, c2 := newTestService(t, "hll:mbits=1024,seed=2")
	info, err = c2.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != RoleStandalone {
		t.Fatalf("default role %q, want %q", info.Role, RoleStandalone)
	}
}
