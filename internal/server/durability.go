// Durability engine: the WAL record vocabulary, manifest-led per-stripe
// checkpoints, and crash recovery. The contract the pieces add up to —
// acked means replayable — is enforced by three orderings:
//
//  1. ingest appends to the WAL before the store applies and the ack is
//     sent (IngestFrame), both under the shared side of the ingest gate;
//  2. a checkpoint takes the gate exclusively to capture its cut (the
//     WAL's next LSN and the dirty stripes' in-memory encoding), so the
//     snapshot holds exactly the records below the cut;
//  3. stripe files are published atomically first, the manifest last —
//     the manifest rename is the commit point — and only then are
//     superseded stripe files and obsolete WAL segments reclaimed.
//
// Recovery inverts the commit order: load the manifest, restore its
// stripe files (verified by size and CRC32-C), replay the WAL from the
// manifest's LSN. Anything that cannot be explained by a crash (a
// damaged stripe file, a mid-segment checksum failure, a foreign spec)
// is a typed refusal — counting on top of silently dropped acked
// records would be worse than not starting.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	sbitmap "repro"
	"repro/internal/fsx"
	"repro/internal/rules"
	"repro/internal/wal"
)

// WAL record types: the first payload byte of every record says how the
// rest replays.
const (
	walRecFrame = 1 // an SBF1 add frame, exactly as the transport carried it
	walRecMerge = 2 // a Store snapshot envelope merged via /v1/merge
)

var (
	walTagFrame = []byte{walRecFrame}
	walTagMerge = []byte{walRecMerge}
)

// walRecordBytes is the on-disk cost of logging an n-byte transport
// payload: the log's record framing, the type tag, the payload.
func walRecordBytes(n int) int64 { return int64(wal.RecordOverhead + 1 + n) }

// Typed recovery refusals; test with errors.Is. WAL-side refusals carry
// wal.ErrCorrupt / wal.ErrGap instead.
var (
	// ErrCorruptCheckpoint reports a checkpoint that cannot be trusted: an
	// unparsable manifest, a stripe file that is missing or fails its
	// size/CRC check, or stripe contents that do not decode.
	ErrCorruptCheckpoint = errors.New("server: corrupt checkpoint")
	// ErrCheckpointSpecMismatch reports a checkpoint written under a
	// different Spec than the server is configured with.
	ErrCheckpointSpecMismatch = errors.New("server: checkpoint spec mismatch")
)

// manifestName is the checkpoint directory's commit record. The manifest
// is written last, atomically: a checkpoint exists iff its manifest does.
const manifestName = "MANIFEST.json"

// manifest is the durable index of one checkpoint: which stripe files
// make up the store image, the dirty-tracking generation the image was
// cut at (the next incremental pass's "since"), and the WAL LSN replay
// resumes from. Stripes absent from Files held no keys at the cut.
type manifest struct {
	Version  int    `json:"version"`
	Spec     string `json:"spec"`
	Gen      uint64 `json:"generation"`
	WALLSN   uint64 `json:"wal_lsn"`
	Stripes  int    `json:"stripes"`
	Keys     int    `json:"keys"`
	UnixNano int64  `json:"unix_nano"`
	// Watermark records a windowed store's sub-window position at the
	// cut (see sbitmap.Store.WindowState). Optional: absent for
	// unwindowed specs and for manifests written before windowing
	// existed — restore then re-derives the watermark from ring
	// contents alone.
	Watermark *int64         `json:"watermark,omitempty"`
	Files     []manifestFile `json:"files"`
	// Rules is the standing-query engine's restartable state (installed
	// rule specs, per-key firing state, the alert history ring) at the
	// cut. Optional: absent when no rules are installed and for
	// manifests written before the rules engine existed.
	Rules *rules.State `json:"rules,omitempty"`
}

// manifestFile names one stripe's snapshot file with enough redundancy
// (size + CRC32-C) to detect a partially written or bit-rotted file at
// restore time.
type manifestFile struct {
	Stripe int    `json:"stripe"`
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
}

var ckCRCTable = crc32.MakeTable(crc32.Castagnoli)

func stripeFileName(stripe int, gen uint64) string {
	return fmt.Sprintf("stripe-%05d-%016x.snap", stripe, gen)
}

// Checkpoint writes a durable snapshot of the store to
// Config.CheckpointDir: the stripes dirtied since the previous
// checkpoint re-encode into fresh snapshot files (tmp/fsync/rename
// each), the manifest — naming those plus every carried-forward file —
// commits last, and only then are superseded files and WAL segments
// below the cut reclaimed. The first pass (and the first after a stripe
// -count change) is full; steady state, the write cost scales with how
// many stripes ingest touched, not with the key population. Ingest
// stalls only for the in-memory cut (gate held exclusively around
// MarshalStripes), never for file I/O. Writes are serialized; safe for
// concurrent use.
func (s *Server) Checkpoint() (CheckpointInfo, error) {
	if s.cfg.CheckpointDir == "" {
		return CheckpointInfo{}, ErrNoCheckpointPath
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	start := time.Now()
	since := s.ckSince
	incremental := since > 0 && s.man != nil

	// The cut: with the gate held exclusively no (append, apply) pair is
	// in flight, so the marshaled stripes hold exactly the records below
	// lsn — replay from lsn neither misses nor doubles a record.
	s.gate.Lock()
	var lsn uint64
	if s.wlog != nil {
		lsn = s.wlog.NextLSN()
	}
	pendingAtCut := s.walPending.Load()
	mutationsAtCut := s.mutations.Load()
	var watermark *int64
	if wm, _, ok := s.store.WindowState(); ok && wm != sbitmap.WindowWatermarkNone {
		watermark = &wm
	}
	blobs, cut, err := s.store.MarshalStripes(since)
	keys := s.store.Len()
	s.gate.Unlock()
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("server: checkpoint encode: %w", err)
	}

	// Untouched stripes keep their previous files; dirty stripes publish
	// new ones named by the cut; stripes that became empty drop out of
	// the manifest entirely (absent means empty).
	files := make(map[int]manifestFile)
	if incremental {
		for _, f := range s.man.Files {
			files[f.Stripe] = f
		}
	}
	written, bytesWritten := 0, 0
	for idx, blob := range blobs {
		n, err := sbitmap.StripeSnapshotKeys(blob)
		if err != nil {
			return CheckpointInfo{}, fmt.Errorf("server: checkpoint encode: %w", err)
		}
		if n == 0 {
			delete(files, idx)
			continue
		}
		name := stripeFileName(idx, cut)
		if err := fsx.WriteFileAtomic(filepath.Join(s.cfg.CheckpointDir, name), blob); err != nil {
			return CheckpointInfo{}, fmt.Errorf("server: checkpoint write: %w", err)
		}
		files[idx] = manifestFile{
			Stripe: idx,
			Name:   name,
			Bytes:  int64(len(blob)),
			CRC32C: crc32.Checksum(blob, ckCRCTable),
		}
		written++
		bytesWritten += len(blob)
	}

	// Make the whole log durable before the manifest claims "this image
	// plus the log from lsn" reconstructs the store: after the commit the
	// durable point covers every ack so far, under any fsync policy.
	if s.wlog != nil {
		if err := s.wlog.Sync(); err != nil {
			return CheckpointInfo{}, fmt.Errorf("server: checkpoint wal sync: %w", err)
		}
	}

	man := &manifest{
		Version:   1,
		Spec:      s.store.Spec().String(),
		Gen:       cut,
		WALLSN:    lsn,
		Stripes:   s.store.StripeCount(),
		Keys:      keys,
		UnixNano:  start.UnixNano(),
		Watermark: watermark,
	}
	// The rules snapshot is taken outside the gate: rule state is
	// advisory (a firing flag, alert history), not counted data — an
	// alert that lands in the instant between the cut and here simply
	// rides in this manifest instead of the next.
	if s.rules != nil {
		if rs := s.rules.Snapshot(); len(rs.Rules) > 0 || len(rs.Alerts) > 0 || rs.NextAlertID > 1 {
			man.Rules = &rs
		}
	}
	for _, f := range files {
		man.Files = append(man.Files, f)
	}
	sort.Slice(man.Files, func(i, j int) bool { return man.Files[i].Stripe < man.Files[j].Stripe })
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("server: checkpoint manifest encode: %w", err)
	}
	if err := fsx.WriteFileAtomic(filepath.Join(s.cfg.CheckpointDir, manifestName), data); err != nil {
		return CheckpointInfo{}, fmt.Errorf("server: checkpoint manifest: %w", err)
	}

	// Commit point passed: adopt the new chain, then reclaim what it
	// superseded. Reclamation is best-effort — a leaked file or segment
	// costs disk, never correctness.
	s.man, s.ckSince, s.ckLSN = man, cut, lsn
	s.walPending.Add(-pendingAtCut)
	s.mutations.Add(-mutationsAtCut)
	s.lastDurableUnixNano.Store(time.Now().UnixNano())
	s.gcStripeFiles(man)
	if s.wlog != nil {
		_ = s.wlog.TruncateBefore(lsn)
	}

	elapsed := time.Since(start)
	s.checkpoints.Add(1)
	s.lastCkUnixNano.Store(start.UnixNano())
	s.lastCkBytes.Store(int64(bytesWritten))
	s.lastCkNanos.Store(int64(elapsed))
	s.lastCkStripes.Store(int64(written))
	return CheckpointInfo{
		Path:           s.cfg.CheckpointDir,
		Bytes:          bytesWritten,
		Keys:           keys,
		Seconds:        elapsed.Seconds(),
		StripesWritten: written,
		Incremental:    incremental,
	}, nil
}

// gcStripeFiles removes stripe snapshot files the committed manifest no
// longer references. Best-effort: a failure leaks disk, not data.
func (s *Server) gcStripeFiles(man *manifest) {
	keep := make(map[string]bool, len(man.Files))
	for _, f := range man.Files {
		keep[f.Name] = true
	}
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		return
	}
	removed := false
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "stripe-") || !strings.HasSuffix(name, ".snap") || keep[name] {
			continue
		}
		if os.Remove(filepath.Join(s.cfg.CheckpointDir, name)) == nil {
			removed = true
		}
	}
	if removed {
		_ = fsx.SyncDir(s.cfg.CheckpointDir)
	}
}

// loadManifest restores the newest checkpoint from dir. A missing
// manifest is a fresh start (nil manifest, no error); anything else that
// stops the restore is a typed refusal: the manifest must parse, its
// spec must equal the configured one, and every referenced stripe file
// must exist, match its recorded size and CRC32-C, and decode. The
// restored store's dirty-tracking generation is fast-forwarded to the
// manifest's, so the next incremental checkpoint captures exactly the
// post-restore mutations.
func loadManifest(dir string, spec sbitmap.Spec, opts []sbitmap.StoreOption) (*manifest, *sbitmap.Store[string], int, error) {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("server: reading checkpoint manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, nil, 0, fmt.Errorf("%w: refusing to start: manifest %s does not parse: %v", ErrCorruptCheckpoint, path, err)
	}
	if man.Version != 1 {
		return nil, nil, 0, fmt.Errorf("%w: refusing to start: manifest %s has unknown version %d", ErrCorruptCheckpoint, path, man.Version)
	}
	manSpec, err := sbitmap.ParseSpec(man.Spec)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("%w: refusing to start: manifest %s holds unparsable spec %q: %v", ErrCorruptCheckpoint, path, man.Spec, err)
	}
	if manSpec != spec {
		return nil, nil, 0, fmt.Errorf("%w: refusing to start: checkpoint %s holds spec %s, but the server is configured with %s (move the checkpoint aside to start fresh, or fix -spec)",
			ErrCheckpointSpecMismatch, path, man.Spec, spec)
	}
	st, err := sbitmap.NewStore[string](spec, opts...)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("server: %w", err)
	}
	total := 0
	for _, f := range man.Files {
		blob, err := os.ReadFile(filepath.Join(dir, f.Name))
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, 0, fmt.Errorf("%w: refusing to start: stripe file %s is referenced by the manifest but missing", ErrCorruptCheckpoint, f.Name)
		}
		if err != nil {
			return nil, nil, 0, fmt.Errorf("server: reading stripe file %s: %w", f.Name, err)
		}
		if int64(len(blob)) != f.Bytes || crc32.Checksum(blob, ckCRCTable) != f.CRC32C {
			return nil, nil, 0, fmt.Errorf("%w: refusing to start: stripe file %s is damaged (size or checksum differs from the manifest's record)", ErrCorruptCheckpoint, f.Name)
		}
		n, err := st.RestoreStripe(blob)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("%w: refusing to start: stripe file %s: %v", ErrCorruptCheckpoint, f.Name, err)
		}
		total += n
	}
	if total != man.Keys {
		return nil, nil, 0, fmt.Errorf("%w: refusing to start: stripe files restore %d keys, manifest records %d", ErrCorruptCheckpoint, total, man.Keys)
	}
	st.SetGeneration(man.Gen)
	if man.Watermark != nil {
		// Stripe decode already re-derived a watermark from ring
		// contents; the recorded one only advances it (covers the case
		// where the watermark window's keys were all empty or evicted).
		st.SetWindowState(*man.Watermark, -1)
	}
	return &man, st, total, nil
}

// replayWAL re-runs every log record from LSN from through the same
// apply paths live ingest uses, returning how many records replayed and
// their pending-replay byte total. A CRC-valid record that does not
// decode is corruption one layer up from the log — still a typed,
// errors.Is(wal.ErrCorrupt) refusal.
func (s *Server) replayWAL(from uint64) (records int, pending int64, err error) {
	var f Frame
	defer f.Release()
	err = s.wlog.Replay(from, func(lsn uint64, payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("record %d has an empty payload: %w", lsn, wal.ErrCorrupt)
		}
		switch payload[0] {
		case walRecFrame:
			if err := f.DecodeBorrowed(payload[1:]); err != nil {
				return fmt.Errorf("record %d does not decode as an add frame (%v): %w", lsn, err, wal.ErrCorrupt)
			}
			s.applyFrame(&f)
		case walRecMerge:
			peer, err := sbitmap.UnmarshalStore[string](payload[1:])
			if err != nil {
				return fmt.Errorf("record %d does not decode as a merge snapshot (%v): %w", lsn, err, wal.ErrCorrupt)
			}
			if peer.Spec() != s.store.Spec() {
				return fmt.Errorf("record %d merges spec %s into a %s store: %w", lsn, peer.Spec(), s.store.Spec(), wal.ErrCorrupt)
			}
			if err := s.store.Merge(peer); err != nil {
				return fmt.Errorf("record %d: %w", lsn, err)
			}
		default:
			return fmt.Errorf("record %d has unknown type %d: %w", lsn, payload[0], wal.ErrCorrupt)
		}
		records++
		pending += walRecordBytes(len(payload) - 1)
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return records, pending, nil
}

// durabilityLag reports how long the oldest acked-but-not-yet-durable
// mutation has been waiting, in seconds; 0 means every ack is backed by
// stable storage. With a WAL the figure is the age of the oldest
// unsynced append (fsync always keeps it pinned at 0; a checkpoint's
// Sync resets it under the lazier policies). Without a WAL it is the
// time since the last checkpoint, counted only while un-checkpointed
// mutations exist. With no durability configured at all there is
// nothing to lag behind: 0.
func (s *Server) durabilityLag(now time.Time) float64 {
	if s.wlog != nil {
		ws := s.wlog.Stats()
		if ws.OldestUnsyncedUnixNano == 0 {
			return 0
		}
		return max(0, now.Sub(time.Unix(0, ws.OldestUnsyncedUnixNano)).Seconds())
	}
	if s.cfg.CheckpointDir == "" || s.mutations.Load() == 0 {
		return 0
	}
	return max(0, now.Sub(time.Unix(0, s.lastDurableUnixNano.Load())).Seconds())
}
