package server

import (
	"encoding/binary"
	"reflect"
	"testing"
	"time"
)

// FuzzFrame drives the SBF1 add-frame decoder with arbitrary bytes. The
// decoder sits directly on the network ingest path, so it must reject
// every malformed input with an error — truncations, lying record
// counts, huge uvarints, oversized key lengths — and never panic,
// over-allocate from a declared count, or read out of bounds. For inputs
// it accepts, decoding must be consistent: re-encoding the decoded frame
// and decoding again yields the identical frame (a fixed point; the
// original bytes may differ only by non-minimal uvarints). CI runs a
// short smoke over this target; `go test -fuzz FuzzFrame
// ./internal/server` digs deeper.
func FuzzFrame(f *testing.F) {
	// Well-formed frames of both item types.
	f.Add(AppendFrame64(nil, []string{"alice", "bob"}, []uint64{1, 0xdeadbeef}))
	f.Add(AppendFrameString(nil, []string{"k"}, []string{""}))
	f.Add(AppendFrameString(nil, []string{"link-a", "link-b"}, []string{"10.0.0.1", "x"}))
	f.Add(appendFrameHeader(nil, frameItems64, 0))
	// Truncations at every interesting boundary.
	full := AppendFrame64(nil, []string{"key"}, []uint64{7})
	for _, cut := range []int{0, 3, 4, 5, 9, 10, 11, len(full) - 1} {
		f.Add(full[:cut])
	}
	// Lying record count: header declares records the payload lacks.
	lie := appendFrameHeader(nil, frameItems64, 1<<30)
	f.Add(lie)
	// Huge uvarint key length.
	huge := appendFrameHeader(nil, frameItemsString, 1)
	huge = binary.AppendUvarint(huge, 1<<40)
	f.Add(huge)
	// Non-minimal uvarint (0x80 0x01 = 128): accepted, but must re-decode
	// to the same frame through the minimal re-encoding.
	f.Add([]byte{0x53, 0x42, 0x46, 0x31, 1, 2, 1, 0, 0, 0, 0x81, 0x00})
	// Trailing garbage after a valid record.
	f.Add(append(AppendFrame64(nil, []string{"k"}, []uint64{1}), 0xff))
	// Version-2 (timestamped) frames: both item types, a pre-epoch
	// timestamp, and truncations through the 8-byte timestamp field.
	f.Add(AppendFrame64At(nil, time.Unix(0, 1723000000123456789), []string{"alice"}, []uint64{7}))
	f.Add(AppendFrameStringAt(nil, time.Unix(0, -5e9), []string{"k"}, []string{"v"}))
	tsf := AppendFrame64At(nil, time.Unix(0, 42), []string{"key"}, []uint64{9})
	for _, cut := range []int{10, 12, 17, 18, len(tsf) - 1} {
		f.Add(tsf[:cut])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return // rejected without panicking: fine
		}
		n := fr.Records()
		if len(fr.Keys) != n {
			t.Fatalf("Records()=%d but %d keys", n, len(fr.Keys))
		}
		if (fr.Items64 == nil) == (fr.ItemsString == nil) {
			t.Fatalf("decoded frame must carry exactly one item slice (64=%v str=%v)",
				fr.Items64 != nil, fr.ItemsString != nil)
		}
		if fr.Items64 != nil && len(fr.Items64) != n {
			t.Fatalf("%d keys, %d uint64 items", n, len(fr.Items64))
		}
		if fr.ItemsString != nil && len(fr.ItemsString) != n {
			t.Fatalf("%d keys, %d string items", n, len(fr.ItemsString))
		}
		for i, k := range fr.Keys {
			if k == "" || len(k) > frameMaxKeyLen {
				t.Fatalf("record %d: key length %d escaped validation", i, len(k))
			}
		}
		// Fixed point: re-encode (minimal uvarints, preserving the
		// version-2 timestamp when present) and decode again.
		var reenc []byte
		switch {
		case fr.Items64 != nil && fr.HasTS:
			reenc = AppendFrame64At(nil, time.Unix(0, fr.TSNanos), fr.Keys, fr.Items64)
		case fr.Items64 != nil:
			reenc = AppendFrame64(nil, fr.Keys, fr.Items64)
		case fr.HasTS:
			reenc = AppendFrameStringAt(nil, time.Unix(0, fr.TSNanos), fr.Keys, fr.ItemsString)
		default:
			reenc = AppendFrameString(nil, fr.Keys, fr.ItemsString)
		}
		fr2, err := DecodeFrame(reenc)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("re-decode differs:\n%+v\n%+v", fr, fr2)
		}
	})
}
