package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	sbitmap "repro"
)

// newTestServer starts an httptest server around a fresh Server and
// returns it with a client.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, NewClient(ts.URL)
}

func TestNewBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"empty spec":     {},
		"bad sbitmap":    {Spec: sbitmap.Spec{Kind: sbitmap.KindSBitmap, N: 1e6}},
		"unknown kind":   {Spec: sbitmap.Spec{Kind: "nope"}},
		"negative body":  {Spec: sbitmap.MustSpec("hll:mbits=512"), MaxBodyBytes: -1},
		"bad stripes":    {Spec: sbitmap.MustSpec("hll:mbits=512"), Stripes: -1},
		"negative limit": {Spec: sbitmap.MustSpec("hll:mbits=512"), MaxKeys: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// apiErrorOf performs one raw request and decodes the typed error payload.
func apiErrorOf(t *testing.T, ts *httptest.Server, method, path, contentType string, body []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	if resp.StatusCode/100 != 2 {
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			// Non-JSON error bodies (e.g. the mux's 405) report no code.
			return resp.StatusCode, ""
		}
	}
	return resp.StatusCode, eb.Error.Code
}

func TestHandlerErrorTable(t *testing.T) {
	_, ts, client := newTestServer(t, Config{
		Spec:         sbitmap.MustSpec("hll:mbits=512"),
		MaxBodyBytes: 4096,
	})
	// One known key so unknown-key is distinguishable from empty store.
	if _, err := client.AddNDJSON(context.Background(), []string{"known"}, []string{"x"}); err != nil {
		t.Fatal(err)
	}

	otherSpec, err := sbitmap.NewStore[string](sbitmap.MustSpec("hll:mbits=1024"))
	if err != nil {
		t.Fatal(err)
	}
	otherBlob, err := otherSpec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name        string
		method      string
		path        string
		contentType string
		body        []byte
		wantStatus  int
		wantCode    string
	}{
		{"malformed ndjson", "POST", "/v1/add", "application/x-ndjson",
			[]byte("{\"key\":\"a\",\"item\":\"b\"}\nnot json\n"), 400, CodeBadNDJSON},
		{"ndjson missing key", "POST", "/v1/add", "application/x-ndjson",
			[]byte("{\"item\":\"b\"}\n"), 400, CodeBadNDJSON},
		{"ndjson item not string", "POST", "/v1/add", "application/x-ndjson",
			[]byte("{\"key\":\"a\",\"item\":7}\n"), 400, CodeBadNDJSON},
		{"malformed frame", "POST", "/v1/add", FrameContentType,
			[]byte("SBF1 garbage that is not a frame"), 400, CodeBadFrame},
		{"truncated frame", "POST", "/v1/add", FrameContentType,
			AppendFrame64(nil, []string{"k"}, []uint64{1})[:12], 400, CodeBadFrame},
		{"oversized ndjson", "POST", "/v1/add", "application/x-ndjson",
			bytes.Repeat([]byte("{\"key\":\"a\",\"item\":\"b\"}\n"), 300), 413, CodeTooLarge},
		{"oversized frame", "POST", "/v1/add", FrameContentType,
			AppendFrame64(nil, make([]string, 600), make([]uint64, 600)), 413, CodeTooLarge},
		{"frame with empty key", "POST", "/v1/add", FrameContentType + "; charset=binary",
			AppendFrame64(nil, []string{""}, []uint64{1}), 400, CodeBadFrame},
		{"estimate without key", "GET", "/v1/estimate", "", nil, 400, CodeMissingKey},
		{"estimate unknown key", "GET", "/v1/estimate?key=never-seen", "", nil, 404, CodeUnknownKey},
		{"topk bad k", "GET", "/v1/topk?k=zero", "", nil, 400, CodeBadRequest},
		{"topk negative k", "GET", "/v1/topk?k=-3", "", nil, 400, CodeBadRequest},
		{"merge not a snapshot", "POST", "/v1/merge", "application/octet-stream",
			[]byte("junk"), 400, CodeBadSnapshot},
		{"merge counter snapshot", "POST", "/v1/merge", "application/octet-stream",
			mustCounterBlob(t), 400, CodeBadSnapshot},
		{"merge spec mismatch", "POST", "/v1/merge", "application/octet-stream",
			otherBlob, 409, CodeSpecMismatch},
		{"checkpoint without path", "POST", "/v1/checkpoint", "", nil, 409, CodeNoCheckpoint},
		{"method not allowed", "DELETE", "/v1/add", "", nil, 405, ""},
		{"unknown route", "GET", "/v1/nope", "", nil, 404, ""},
	} {
		status, code := apiErrorOf(t, ts, tc.method, tc.path, tc.contentType, tc.body)
		if status != tc.wantStatus || code != tc.wantCode {
			t.Errorf("%s: got %d %q, want %d %q", tc.name, status, code, tc.wantStatus, tc.wantCode)
		}
	}
}

func mustCounterBlob(t *testing.T) []byte {
	t.Helper()
	c, err := sbitmap.MustSpec("hll:mbits=512").New()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sbitmap.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestMergeNotMergeable(t *testing.T) {
	// S-bitmaps cannot union-merge; the endpoint must say so, typed.
	spec := sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1")
	_, ts, _ := newTestServer(t, Config{Spec: spec})
	peer, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	peer.AddString("k", "item")
	blob, err := peer.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	status, code := apiErrorOf(t, ts, "POST", "/v1/merge", "application/octet-stream", blob)
	if status != 422 || code != CodeNotMergeable {
		t.Fatalf("got %d %q, want 422 %q", status, code, CodeNotMergeable)
	}
}

func TestIngestQueryFlow(t *testing.T) {
	spec := sbitmap.MustSpec("hll:mbits=2048,seed=9")
	srv, _, client := newTestServer(t, Config{Spec: spec})
	ctx := context.Background()

	// Local twin fed identically: service estimates must be bit-identical.
	local, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	var items64 []uint64
	for k := 0; k < 20; k++ {
		for i := 0; i <= k; i++ {
			keys = append(keys, fmt.Sprintf("key-%02d", k))
			items64 = append(items64, uint64(k)<<32|uint64(i))
		}
	}
	res, err := client.AddBatch64(ctx, keys, items64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != len(keys) {
		t.Fatalf("AddBatch64 reported %d records, sent %d", res.Records, len(keys))
	}
	local.AddBatch64(keys, items64)

	// NDJSON and string-frame paths land on the same counters.
	sKeys := []string{"key-00", "key-19"}
	sItems := []string{"extra-a", "extra-b"}
	if _, err := client.AddNDJSON(ctx, sKeys, sItems); err != nil {
		t.Fatal(err)
	}
	local.AddBatchString(sKeys, sItems)
	if _, err := client.AddBatchString(ctx, sKeys, []string{"extra-c", "extra-d"}); err != nil {
		t.Fatal(err)
	}
	local.AddBatchString(sKeys, []string{"extra-c", "extra-d"})

	for k := 0; k < 20; k++ {
		key := fmt.Sprintf("key-%02d", k)
		got, ok, err := client.Estimate(ctx, key)
		if err != nil || !ok {
			t.Fatalf("%s: %v ok=%v", key, err, ok)
		}
		want, _ := local.Estimate(key)
		if got != want {
			t.Errorf("%s: service %v != local %v", key, got, want)
		}
	}
	if _, ok, err := client.Estimate(ctx, "never"); err != nil || ok {
		t.Fatalf("unknown key: ok=%v err=%v", ok, err)
	}

	// A huge k is clamped to the live key count, never allocated.
	all, err := client.TopK(ctx, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != srv.Store().Len() {
		t.Errorf("topk(1<<30) returned %d entries, store holds %d", len(all), srv.Store().Len())
	}

	top, err := client.TopK(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	localTop := local.TopK(3)
	if len(top) != 3 {
		t.Fatalf("topk returned %d entries", len(top))
	}
	for i := range top {
		if top[i].Key != localTop[i].Key || top[i].Estimate != localTop[i].Estimate {
			t.Errorf("topk[%d]: service %+v != local %+v", i, top[i], localTop[i])
		}
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords := int64(len(keys) + 2*len(sKeys))
	if stats.Keys != srv.Store().Len() || stats.Records != wantRecords ||
		stats.AddRequests != 3 || stats.Spec != spec.String() ||
		stats.SizeBits <= 0 || stats.FootprintBytes <= 0 || stats.Queries == 0 {
		t.Errorf("stats = %+v", stats)
	}

	if err := client.Healthz(ctx); err != nil {
		t.Errorf("healthz: %v", err)
	}
}

func TestMergeFlow(t *testing.T) {
	spec := sbitmap.MustSpec("hll:mbits=1024,seed=3")
	_, _, client := newTestServer(t, Config{Spec: spec})
	ctx := context.Background()

	if _, err := client.AddNDJSON(ctx, []string{"shared", "mine"}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}

	// An edge agent's store: overlapping and new keys.
	edge, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	edge.AddString("shared", "a") // duplicate item: union must not double count
	edge.AddString("shared", "c")
	edge.AddString("theirs", "d")
	blob, err := edge.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Merge(ctx, blob)
	if err != nil {
		t.Fatal(err)
	}
	if res.KeysMerged != 2 {
		t.Errorf("merged %d keys, want 2", res.KeysMerged)
	}

	// The union twin: everything both sides saw, through one store.
	twin, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	twin.AddString("shared", "a")
	twin.AddString("mine", "b")
	twin.AddString("shared", "a")
	twin.AddString("shared", "c")
	twin.AddString("theirs", "d")
	for _, key := range []string{"shared", "mine", "theirs"} {
		got, ok, err := client.Estimate(ctx, key)
		if err != nil || !ok {
			t.Fatalf("%s: %v", key, err)
		}
		want, _ := twin.Estimate(key)
		if got != want {
			t.Errorf("%s: merged estimate %v != union twin %v", key, got, want)
		}
	}
}

func TestCheckpointRecovery(t *testing.T) {
	// Checkpoint, "crash" (drop the server), restart from the directory:
	// estimates must be bit-identical, and counting must continue.
	dir := t.TempDir()
	cfg := Config{
		Spec:          sbitmap.MustSpec("sbitmap:n=1e4,eps=0.05,seed=11"),
		CheckpointDir: filepath.Join(dir, "ckpt"),
	}
	srv, _, client := newTestServer(t, cfg)
	ctx := context.Background()

	var keys, items []string
	for k := 0; k < 50; k++ {
		for i := 0; i <= k%7; i++ {
			keys = append(keys, fmt.Sprintf("flow-%03d", k))
			items = append(items, fmt.Sprintf("pkt-%d-%d", k, i))
		}
	}
	if _, err := client.AddBatchString(ctx, keys, items); err != nil {
		t.Fatal(err)
	}
	info, err := client.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Keys != 50 || info.Bytes <= 0 || info.StripesWritten <= 0 || info.Incremental {
		t.Fatalf("checkpoint info %+v", info)
	}
	before := map[string]float64{}
	srv.Store().ForEach(func(key string, c sbitmap.Counter) bool {
		before[key] = c.Estimate()
		return true
	})

	// "Restart": a brand-new server over the same config.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.RestoredKeys() != 50 {
		t.Fatalf("restored %d keys, want 50", srv2.RestoredKeys())
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	client2 := NewClient(ts2.URL)
	for key, want := range before {
		got, ok, err := client2.Estimate(ctx, key)
		if err != nil || !ok {
			t.Fatalf("%s after restart: %v", key, err)
		}
		if got != want {
			t.Errorf("%s: estimate %v after restart, was %v", key, got, want)
		}
	}
	// The restored store keeps counting (same seed restored via spec).
	if _, err := client2.AddNDJSON(ctx, []string{"flow-000"}, []string{"fresh-item"}); err != nil {
		t.Fatal(err)
	}
	stats, err := client2.Stats(ctx)
	if err != nil || stats.RestoredKeys != 50 {
		t.Fatalf("stats after restart: %+v, %v", stats, err)
	}
}

func TestCheckpointSpecMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	cfg := Config{Spec: sbitmap.MustSpec("hll:mbits=512"), CheckpointDir: dir}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Store().AddString("k", "v")
	if _, err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cfg.Spec = sbitmap.MustSpec("hll:mbits=1024")
	if _, err := New(cfg); err == nil || !errors.Is(err, ErrCheckpointSpecMismatch) ||
		!strings.Contains(err.Error(), "spec") {
		t.Fatalf("restart under a different spec: %v", err)
	}
	// A corrupt checkpoint must refuse to start, not count from scratch.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Spec = sbitmap.MustSpec("hll:mbits=512")
	if _, err := New(cfg); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("corrupt manifest: %v", err)
	}
}

func TestCheckpointAtomicTmp(t *testing.T) {
	// No tmp file — stripe, manifest, or otherwise — survives a
	// successful checkpoint pass, and obsolete stripe snapshots from
	// earlier generations are garbage-collected.
	dir := filepath.Join(t.TempDir(), "ckpt")
	cfg := Config{
		Spec:          sbitmap.MustSpec("hll:mbits=512"),
		CheckpointDir: dir,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		srv.Store().AddString("k", fmt.Sprintf("v%d", i))
		if _, err := srv.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("tmp files left behind: %v", tmps)
	}
	// "k" lives in one stripe and was rewritten three times; GC must have
	// kept exactly the one snapshot the manifest references.
	snaps, err := filepath.Glob(filepath.Join(dir, "stripe-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Errorf("stale stripe snapshots not collected: %v", snaps)
	}
	if err := srv.Store().Merge(srv.Store()); err != nil {
		// Self-merge is a no-op; just exercising the API surface here.
		t.Errorf("self merge: %v", err)
	}
}
