// Package exact provides the ground-truth distinct counter used by the
// experiments and examples: a hash-set counter that is exact but pays the
// linear memory cost the paper's Section 1 explains streaming algorithms
// must avoid. Its SizeBits method makes that cost visible next to the
// sketches' footprints.
package exact

import (
	"encoding/binary"
	"fmt"
	"sort"
	"unsafe"

	"repro/internal/uhash"
)

// Counter counts distinct items exactly by retaining a 128-bit fingerprint
// of every distinct item seen. (Fingerprinting keeps memory bounded by the
// distinct count rather than total key bytes; a 128-bit fingerprint makes
// collisions negligible below ~2^60 items.) Not safe for concurrent use.
type Counter struct {
	set map[[2]uint64]struct{}
	h   uhash.Hasher
	scr uhash.Scratch // reusable batch hash buffers (not serialized)
}

// New returns an empty exact counter.
func New() *Counter {
	return &Counter{set: make(map[[2]uint64]struct{}), h: uhash.NewMixer(0x0ddba11)}
}

// Add offers an item and reports whether it was new.
func (c *Counter) Add(item []byte) bool {
	hi, lo := c.h.Sum128(item)
	return c.insert(hi, lo)
}

// AddUint64 offers a 64-bit item.
func (c *Counter) AddUint64(item uint64) bool {
	hi, lo := c.h.Sum128Uint64(item)
	return c.insert(hi, lo)
}

// AddString offers a string item; it hashes identically to Add of the
// string's bytes but avoids the []byte conversion.
func (c *Counter) AddString(item string) bool {
	hi, lo := c.h.Sum128String(item)
	return c.insert(hi, lo)
}

func (c *Counter) insert(hi, lo uint64) bool {
	k := [2]uint64{hi, lo}
	if _, ok := c.set[k]; ok {
		return false
	}
	c.set[k] = struct{}{}
	return true
}

// AddBatch64 offers a slice of 64-bit items and returns how many were new;
// state-equivalent to AddUint64 on each item in order, with the hashing
// batched ahead of the set inserts.
func (c *Counter) AddBatch64(items []uint64) int {
	return uhash.Batch64(c.h, &c.scr, items, c.insertBatch)
}

// AddBatchString is AddBatch64 for string items.
func (c *Counter) AddBatchString(items []string) int {
	return uhash.BatchString(c.h, &c.scr, items, c.insertBatch)
}

func (c *Counter) insertBatch(hi, lo []uint64) int {
	changed := 0
	for i := range hi {
		if c.insert(hi[i], lo[i]) {
			changed++
		}
	}
	return changed
}

// Count returns the exact number of distinct items seen.
func (c *Counter) Count() int { return len(c.set) }

// Estimate returns the count as a float64, satisfying the common sketch
// interface so the exact counter can stand in as a "sketch" in harnesses.
func (c *Counter) Estimate() float64 { return float64(len(c.set)) }

// SizeBits returns the fingerprint-storage footprint: 128 bits per
// distinct item (map overhead excluded, consistent with the paper's
// summary-statistic accounting).
func (c *Counter) SizeBits() int { return 128 * len(c.set) }

// Footprint returns the counter's resident process memory in bytes: the
// struct, the fingerprint set (estimated at Go's map cost of roughly
// key + 16 bytes of bucket overhead per entry), and the batch-hash scratch.
func (c *Counter) Footprint() int {
	return int(unsafe.Sizeof(*c)) + len(c.set)*(16+16) + c.scr.Footprint()
}

// Reset clears the counter for reuse.
func (c *Counter) Reset() { c.set = make(map[[2]uint64]struct{}) }

// MarshalBinary serializes the fingerprint set (sorted for a deterministic
// encoding). The counter's internal hash seed is fixed, so a restored
// counter keeps deduplicating consistently.
func (c *Counter) MarshalBinary() ([]byte, error) {
	fps := make([][2]uint64, 0, len(c.set))
	for k := range c.set {
		fps = append(fps, k)
	}
	sort.Slice(fps, func(i, j int) bool {
		if fps[i][0] != fps[j][0] {
			return fps[i][0] < fps[j][0]
		}
		return fps[i][1] < fps[j][1]
	})
	buf := make([]byte, 0, 8+16*len(fps))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(fps)))
	for _, k := range fps {
		buf = binary.LittleEndian.AppendUint64(buf, k[0])
		buf = binary.LittleEndian.AppendUint64(buf, k[1])
	}
	return buf, nil
}

// UnmarshalBinary reconstructs the counter in place from MarshalBinary
// output.
func (c *Counter) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("exact: truncated serialization")
	}
	count64 := binary.LittleEndian.Uint64(data)
	// Bound count by the actual body size before any multiplication so a
	// corrupt header cannot overflow the length check.
	if count64 > uint64(len(data)-8)/16 {
		return fmt.Errorf("exact: fingerprint count %d exceeds body of %d bytes", count64, len(data)-8)
	}
	count := int(count64)
	if len(data) != 8+16*count {
		return fmt.Errorf("exact: fingerprint body %d bytes, want %d", len(data)-8, 16*count)
	}
	set := make(map[[2]uint64]struct{}, count)
	for i := 0; i < count; i++ {
		hi := binary.LittleEndian.Uint64(data[8+16*i:])
		lo := binary.LittleEndian.Uint64(data[16+16*i:])
		set[[2]uint64{hi, lo}] = struct{}{}
	}
	if len(set) != count {
		return fmt.Errorf("exact: serialized fingerprints contain duplicates")
	}
	c.set = set
	if c.h == nil {
		c.h = uhash.NewMixer(0x0ddba11)
	}
	return nil
}

// Unmarshal reconstructs a counter from MarshalBinary output.
func Unmarshal(data []byte) (*Counter, error) {
	c := &Counter{h: uhash.NewMixer(0x0ddba11)}
	if err := c.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return c, nil
}
