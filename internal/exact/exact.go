// Package exact provides the ground-truth distinct counter used by the
// experiments and examples: a hash-set counter that is exact but pays the
// linear memory cost the paper's Section 1 explains streaming algorithms
// must avoid. Its SizeBits method makes that cost visible next to the
// sketches' footprints.
package exact

import "repro/internal/uhash"

// Counter counts distinct items exactly by retaining a 128-bit fingerprint
// of every distinct item seen. (Fingerprinting keeps memory bounded by the
// distinct count rather than total key bytes; a 128-bit fingerprint makes
// collisions negligible below ~2^60 items.) Not safe for concurrent use.
type Counter struct {
	set map[[2]uint64]struct{}
	h   uhash.Hasher
}

// New returns an empty exact counter.
func New() *Counter {
	return &Counter{set: make(map[[2]uint64]struct{}), h: uhash.NewMixer(0x0ddba11)}
}

// Add offers an item and reports whether it was new.
func (c *Counter) Add(item []byte) bool {
	hi, lo := c.h.Sum128(item)
	return c.insert(hi, lo)
}

// AddUint64 offers a 64-bit item.
func (c *Counter) AddUint64(item uint64) bool {
	hi, lo := c.h.Sum128Uint64(item)
	return c.insert(hi, lo)
}

// AddString offers a string item.
func (c *Counter) AddString(item string) bool {
	return c.Add([]byte(item))
}

func (c *Counter) insert(hi, lo uint64) bool {
	k := [2]uint64{hi, lo}
	if _, ok := c.set[k]; ok {
		return false
	}
	c.set[k] = struct{}{}
	return true
}

// Count returns the exact number of distinct items seen.
func (c *Counter) Count() int { return len(c.set) }

// Estimate returns the count as a float64, satisfying the common sketch
// interface so the exact counter can stand in as a "sketch" in harnesses.
func (c *Counter) Estimate() float64 { return float64(len(c.set)) }

// SizeBits returns the fingerprint-storage footprint: 128 bits per
// distinct item (map overhead excluded, consistent with the paper's
// summary-statistic accounting).
func (c *Counter) SizeBits() int { return 128 * len(c.set) }

// Reset clears the counter for reuse.
func (c *Counter) Reset() { c.set = make(map[[2]uint64]struct{}) }
