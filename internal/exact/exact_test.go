package exact

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCountDistinct(t *testing.T) {
	c := New()
	for i := 0; i < 1000; i++ {
		c.AddUint64(uint64(i % 100))
	}
	if c.Count() != 100 {
		t.Errorf("Count = %d, want 100", c.Count())
	}
	if c.Estimate() != 100 {
		t.Errorf("Estimate = %g, want 100", c.Estimate())
	}
}

func TestAddReportsNovelty(t *testing.T) {
	c := New()
	if !c.AddString("a") {
		t.Error("first add returned false")
	}
	if c.AddString("a") {
		t.Error("second add returned true")
	}
	if !c.Add([]byte("b")) {
		t.Error("new item returned false")
	}
}

func TestMixedKeyTypesAgree(t *testing.T) {
	// AddString and Add of the same bytes must dedupe together.
	c := New()
	c.AddString("hello")
	c.Add([]byte("hello"))
	if c.Count() != 1 {
		t.Errorf("Count = %d, want 1", c.Count())
	}
}

func TestPropertyMatchesMap(t *testing.T) {
	f := func(keys []uint64) bool {
		c := New()
		ref := make(map[uint64]bool)
		for _, k := range keys {
			c.AddUint64(k)
			ref[k] = true
		}
		return c.Count() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeBitsLinear(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		c.AddString(fmt.Sprintf("k%d", i))
	}
	if c.SizeBits() != 10*128 {
		t.Errorf("SizeBits = %d, want 1280", c.SizeBits())
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.AddUint64(1)
	c.Reset()
	if c.Count() != 0 {
		t.Errorf("Count after reset = %d", c.Count())
	}
}
