// Package fsx holds the crash-durability file primitives shared by every
// on-disk artifact of the counting service — WAL segments, per-stripe
// checkpoint files, and the checkpoint manifest. They all need the same
// two guarantees a bare os.WriteFile does not give:
//
//  1. atomicity: a reader (including a recovering process) never observes
//     a half-written file — content appears under its final name all at
//     once or not at all;
//  2. durability of the *name*, not just the bytes: fsyncing a file makes
//     its contents durable, but the rename that published it lives in the
//     parent directory, and on a power failure an un-fsynced directory can
//     forget the rename entirely — leaving a fully fsynced file that no
//     longer exists. Every publishing operation here therefore ends with
//     an fsync of the parent directory.
package fsx

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that a crash at any instant
// leaves either the previous file (or no file) or the complete new one,
// durably: write to a same-directory temporary, fsync the file, rename
// over path, then fsync the parent directory so the rename itself
// survives power loss. On error the temporary is removed and the previous
// path content is untouched.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory, making its entries (creates, renames,
// removes) durable. Required after any operation that changes what names
// exist: without it, a power failure can roll the directory back to a
// state that never references a file whose bytes were themselves fsynced.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
