package fsx

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")

	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}

	// Overwrite: the new content replaces the old atomically.
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("read back %q after overwrite", got)
	}

	// No temporary survives a successful write.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("tmp file left behind: %v", err)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("sync of a missing directory succeeded")
	}
}
