package fm

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestEmptyEstimateSmall(t *testing.T) {
	s := New(64, 1)
	// All ranks zero → estimate m/φ·2^0 = m/φ; FM is known to be biased
	// at tiny cardinalities, but it must at least be finite and fixed.
	got := s.Estimate()
	want := 64 / phi
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("empty estimate = %g, want %g", got, want)
	}
}

func TestAccuracyMidRange(t *testing.T) {
	// PCSA theory: relative standard error ≈ 0.78/√m.
	const m, n, reps = 256, 100000, 120
	var sum stats.ErrorSummary
	for rep := 0; rep < reps; rep++ {
		s := New(m, uint64(rep)+5)
		base := uint64(rep) << 36
		for i := 0; i < n; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), n)
	}
	theory := 0.78 / math.Sqrt(m)
	if got := sum.RRMSE(); got > 1.6*theory {
		t.Errorf("RRMSE = %.4f, theory ≈ %.4f", got, theory)
	}
	if bias := sum.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("bias = %.4f, want small", bias)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	s := New(64, 2)
	s.AddUint64(7)
	before := s.Estimate()
	for i := 0; i < 1000; i++ {
		if s.AddUint64(7) {
			t.Fatal("duplicate changed a register")
		}
	}
	if s.Estimate() != before {
		t.Error("duplicates changed the estimate")
	}
}

func TestMergeEqualsUnionStream(t *testing.T) {
	a, b, all := New(128, 9), New(128, 9), New(128, 9)
	r := xrand.New(6)
	for i := 0; i < 5000; i++ {
		x := r.Uint64()
		a.AddUint64(x)
		all.AddUint64(x)
	}
	for i := 0; i < 5000; i++ {
		x := r.Uint64()
		b.AddUint64(x)
		all.AddUint64(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != all.Estimate() {
		t.Errorf("merged estimate %g != union estimate %g", a.Estimate(), all.Estimate())
	}
	if err := a.Merge(New(64, 9)); err == nil {
		t.Error("merge of mismatched sizes did not error")
	}
}

func TestMemoryForBits(t *testing.T) {
	if m := MemoryForBits(3200); m != 100 {
		t.Errorf("MemoryForBits(3200) = %d, want 100", m)
	}
	if m := MemoryForBits(1); m != 1 {
		t.Errorf("MemoryForBits(1) = %d, want 1 (floor)", m)
	}
}

func TestSizeResetPanic(t *testing.T) {
	s := New(100, 1)
	if s.SizeBits() != 3200 {
		t.Errorf("SizeBits = %d, want 3200", s.SizeBits())
	}
	for i := uint64(0); i < 1000; i++ {
		s.AddUint64(i)
	}
	s.Reset()
	if got := s.Estimate(); math.Abs(got-100/phi) > 1e-9 {
		t.Errorf("estimate after reset = %g, want empty value", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m < 1")
		}
	}()
	New(0, 1)
}

func BenchmarkAddUint64(b *testing.B) {
	s := New(256, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}
