// Package fm implements the Flajolet–Martin probabilistic counter (PCSA:
// Probabilistic Counting with Stochastic Averaging, Flajolet & Martin
// 1985), the founding member of the "log-counting" family reviewed in
// Section 2.3 of the S-bitmap paper.
//
// Each item is hashed; the item updates one of m registers (stochastic
// averaging on the high hash bits), where a register is a small bitmap
// recording which geometric values g (position of the lowest 1 bit of the
// remaining hash bits) have been observed. The estimate is
//
//	n̂ = m · 2^(mean R) / φ,   φ ≈ 0.77351,
//
// where R is each register's count of leading contiguous 1s (the first
// unset position).
package fm

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"unsafe"

	"repro/internal/uhash"
)

// phi is the PCSA magic constant: the asymptotic factor E[2^R]/n per
// register stream (Flajolet & Martin 1985, Theorem 3.A).
const phi = 0.7735162909

// registerBits is the width of each FM register bitmap; 32 bits cover
// cardinalities beyond 2^32/m, ample for every experiment in the paper.
const registerBits = 32

// Sketch is an FM/PCSA sketch. Not safe for concurrent use.
type Sketch struct {
	reg []uint32
	h   uhash.Hasher
	scr uhash.Scratch // reusable batch hash buffers (not serialized)
}

// New returns an FM sketch with m registers, hashing with the default
// Mixer seeded by seed. It panics if m < 1.
func New(m int, seed uint64) *Sketch {
	return NewWithHasher(m, uhash.NewMixer(seed))
}

// NewWithHasher returns an FM sketch with an explicit hash function.
func NewWithHasher(m int, h uhash.Hasher) *Sketch {
	if m < 1 {
		panic(fmt.Sprintf("fm: register count %d < 1", m))
	}
	return &Sketch{reg: make([]uint32, m), h: h}
}

// MemoryForBits returns the number of registers a budget of mbits bits
// buys: ⌊mbits / 32⌋ (at least 1), the accounting used when all algorithms
// share one memory budget.
func MemoryForBits(mbits int) int {
	m := mbits / registerBits
	if m < 1 {
		m = 1
	}
	return m
}

// Add offers an item to the sketch; it reports whether any register bit
// changed.
func (s *Sketch) Add(item []byte) bool {
	hi, lo := s.h.Sum128(item)
	return s.insert(hi, lo)
}

// AddUint64 offers a 64-bit item.
func (s *Sketch) AddUint64(item uint64) bool {
	hi, lo := s.h.Sum128Uint64(item)
	return s.insert(hi, lo)
}

// AddString offers a string item; it hashes identically to Add of the
// string's bytes but avoids the []byte conversion.
func (s *Sketch) AddString(item string) bool {
	hi, lo := s.h.Sum128String(item)
	return s.insert(hi, lo)
}

func (s *Sketch) insert(bucketWord, geoWord uint64) bool {
	j, _ := bits.Mul64(bucketWord, uint64(len(s.reg)))
	// g = index of lowest set bit of the geometric word: P(g = k) = 2^-(k+1).
	g := bits.TrailingZeros64(geoWord)
	if g >= registerBits {
		g = registerBits - 1
	}
	mask := uint32(1) << uint(g)
	if s.reg[j]&mask != 0 {
		return false
	}
	s.reg[j] |= mask
	return true
}

// AddBatch64 offers a slice of 64-bit items and returns how many changed
// a register bit; state-equivalent to AddUint64 on each item in order,
// with chunked hashing and the register array in a local.
func (s *Sketch) AddBatch64(items []uint64) int {
	return uhash.Batch64(s.h, &s.scr, items, s.insertBatch)
}

// AddBatchString is AddBatch64 for string items.
func (s *Sketch) AddBatchString(items []string) int {
	return uhash.BatchString(s.h, &s.scr, items, s.insertBatch)
}

// insertBatch replays insert over a chunk of hashed items; the register
// index is a multiply-shift onto [0, m), in range by construction.
func (s *Sketch) insertBatch(hi, lo []uint64) int {
	lo = lo[:len(hi)] // one bounds proof for the whole chunk
	reg := s.reg
	mm := uint64(len(reg))
	changed := 0
	for i, h := range hi {
		j, _ := bits.Mul64(h, mm)
		g := bits.TrailingZeros64(lo[i])
		if g >= registerBits {
			g = registerBits - 1
		}
		mask := uint32(1) << uint(g)
		if reg[j]&mask == 0 {
			reg[j] |= mask
			changed++
		}
	}
	return changed
}

// rank returns register j's R statistic: the position of its lowest 0 bit.
func (s *Sketch) rank(j int) int {
	return bits.TrailingZeros32(^s.reg[j])
}

// Estimate returns the PCSA estimate n̂ = m·2^(ΣR/m)/φ.
func (s *Sketch) Estimate() float64 {
	m := len(s.reg)
	sum := 0
	for j := range s.reg {
		sum += s.rank(j)
	}
	return float64(m) / phi * math.Pow(2, float64(sum)/float64(m))
}

// Merge ORs another FM sketch into s; the result summarizes the union of
// the two streams. The sketches must have equal register counts (and the
// same hash function for the union semantics to hold).
func (s *Sketch) Merge(o *Sketch) error {
	if len(s.reg) != len(o.reg) {
		return fmt.Errorf("fm: merge of %d-register sketch with %d-register sketch", len(s.reg), len(o.reg))
	}
	for j := range s.reg {
		s.reg[j] |= o.reg[j]
	}
	return nil
}

// SizeBits returns the summary memory footprint in bits (32 per register).
func (s *Sketch) SizeBits() int { return len(s.reg) * registerBits }

// Footprint returns the sketch's resident process memory in bytes: the
// struct, the register array at capacity, and the batch-hash scratch.
func (s *Sketch) Footprint() int {
	return int(unsafe.Sizeof(*s)) + 4*cap(s.reg) + s.scr.Footprint()
}

// MarshalBinary serializes the register bitmaps. The hash function is not
// serialized; pass the original hasher to Unmarshal to continue counting.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4*len(s.reg))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.reg)))
	for _, r := range s.reg {
		buf = binary.LittleEndian.AppendUint32(buf, r)
	}
	return buf, nil
}

// UnmarshalBinary reconstructs the sketch in place from MarshalBinary
// output. A nil hasher field is replaced by the default Mixer with seed 1.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("fm: truncated serialization")
	}
	m := int(binary.LittleEndian.Uint32(data))
	if m < 1 || m > 1<<28 {
		return fmt.Errorf("fm: implausible register count %d", m)
	}
	if len(data) != 4+4*m {
		return fmt.Errorf("fm: register body %d bytes, want %d", len(data)-4, 4*m)
	}
	reg := make([]uint32, m)
	for j := range reg {
		reg[j] = binary.LittleEndian.Uint32(data[4+4*j:])
	}
	s.reg = reg
	if s.h == nil {
		s.h = uhash.NewMixer(1)
	}
	return nil
}

// Unmarshal reconstructs a sketch from MarshalBinary output, hashing with h
// (nil selects the default Mixer with seed 1).
func Unmarshal(data []byte, h uhash.Hasher) (*Sketch, error) {
	s := &Sketch{h: h}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset clears the sketch for reuse.
func (s *Sketch) Reset() {
	for j := range s.reg {
		s.reg[j] = 0
	}
}
