package netflow

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stream"
)

func TestSlammerShape(t *testing.T) {
	for link := 0; link <= 1; link++ {
		tr := Slammer(link, 99)
		if len(tr.Counts) != SlammerMinutes {
			t.Fatalf("link %d: %d minutes, want %d", link, len(tr.Counts), SlammerMinutes)
		}
		// Median should sit in the Figure 5 band: ~2^15 (link 1) or ~2^16
		// (link 0), within a factor of 2.
		sorted := append([]int(nil), tr.Counts...)
		sort.Ints(sorted)
		median := float64(sorted[len(sorted)/2])
		wantLog2 := 15.3
		if link == 0 {
			wantLog2 = 16.2
		}
		if math.Abs(math.Log2(median)-wantLog2) > 1 {
			t.Errorf("link %d: median %0.f (2^%.2f), want ≈ 2^%.1f", link, median, math.Log2(median), wantLog2)
		}
		// Bursts: max should exceed median by at least 3× (the "order of
		// difference" bursts), but stay within the N = 10^6 design bound.
		max := float64(sorted[len(sorted)-1])
		if max < 3*median {
			t.Errorf("link %d: no bursts (max %.0f, median %.0f)", link, max, median)
		}
		if max > 1e6 {
			t.Errorf("link %d: burst %0.f exceeds the experiment's N = 10^6", link, max)
		}
	}
}

func TestSlammerDeterminism(t *testing.T) {
	a := Slammer(1, 5)
	b := Slammer(1, 5)
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("same seed diverged at minute %d", i)
		}
	}
	c := Slammer(1, 6)
	same := 0
	for i := range a.Counts {
		if a.Counts[i] == c.Counts[i] {
			same++
		}
	}
	if same > len(a.Counts)/10 {
		t.Errorf("different seeds matched on %d/%d minutes", same, len(a.Counts))
	}
}

func TestIntervalStreamGroundTruth(t *testing.T) {
	tr := Slammer(1, 7)
	// Check a couple of intervals: distinct count must equal the trace's
	// declared count, with genuine duplication present.
	for _, i := range []int{0, 100} {
		s := tr.IntervalStream(i)
		seen := make(map[uint64]bool)
		total := 0
		stream.ForEach(s, func(x uint64) { seen[x] = true; total++ })
		if len(seen) != tr.Counts[i] {
			t.Errorf("interval %d: %d distinct, trace says %d", i, len(seen), tr.Counts[i])
		}
		if total <= len(seen) {
			t.Errorf("interval %d: no duplication (%d packets, %d flows)", i, total, len(seen))
		}
	}
}

func TestBackboneQuantileAnchors(t *testing.T) {
	for _, q := range paperQuantiles {
		got := BackboneQuantile(q[0])
		if math.Abs(got-q[1])/q[1] > 0.01 {
			t.Errorf("BackboneQuantile(%g) = %.0f, want anchor %.0f", q[0], got, q[1])
		}
	}
	// Monotone.
	prev := 0.0
	for p := 0.001; p < 1; p += 0.007 {
		v := BackboneQuantile(p)
		if v < prev {
			t.Fatalf("quantile function not monotone at p=%.3f", p)
		}
		prev = v
	}
	// Clamps.
	if BackboneQuantile(0) < 10 {
		t.Error("lower clamp violated")
	}
	if BackboneQuantile(1) > 1.4e6 {
		t.Error("upper clamp violated")
	}
}

func TestBackboneSnapshotQuantiles(t *testing.T) {
	counts := BackboneSnapshot(600, 3)
	if len(counts) != 600 {
		t.Fatalf("snapshot has %d links", len(counts))
	}
	vals := make([]float64, len(counts))
	for i, c := range counts {
		vals[i] = float64(c)
	}
	sort.Float64s(vals)
	// The stratified draw should reproduce the paper's quantiles within
	// ~35% (log-domain interpolation at 600 samples).
	for _, q := range [][2]float64{{0.25, 196}, {0.5, 2817}, {0.75, 19401}} {
		got := vals[int(q[0]*float64(len(vals)))]
		if got < q[1]*0.65 || got > q[1]*1.55 {
			t.Errorf("snapshot %g-quantile = %.0f, paper %.0f", q[0], got, q[1])
		}
	}
}

func TestLinkStreamGroundTruth(t *testing.T) {
	s := LinkStream(500, 11)
	seen := make(map[uint64]bool)
	stream.ForEach(s, func(x uint64) { seen[x] = true })
	if len(seen) != 500 {
		t.Errorf("link stream: %d distinct, want 500", len(seen))
	}
}

func TestFlowKeyDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for src := uint32(0); src < 50; src++ {
		for dst := uint32(0); dst < 50; dst++ {
			seen[FlowKey(src, dst, 80, 443, 6)] = true
		}
	}
	if len(seen) != 2500 {
		t.Errorf("%d distinct flow keys from 2500 tuples", len(seen))
	}
	if FlowKey(1, 2, 3, 4, 6) == FlowKey(1, 2, 3, 4, 17) {
		t.Error("protocol not part of flow identity")
	}
}

func TestPanics(t *testing.T) {
	tr := Slammer(0, 1)
	for name, fn := range map[string]func(){
		"bad link":     func() { Slammer(2, 1) },
		"bad interval": func() { tr.IntervalStream(-1) },
		"bad links":    func() { BackboneSnapshot(0, 1) },
		"bad count":    func() { LinkStream(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSpreadRecordsGroundTruth(t *testing.T) {
	counts := BackboneSnapshot(40, 3)
	ks := SpreadRecords(counts, 3)
	if ks.Keys() != len(counts) {
		t.Fatalf("Keys = %d, want %d", ks.Keys(), len(counts))
	}
	// Per-link distinct flows must equal the snapshot counts exactly,
	// duplication notwithstanding.
	distinct := map[uint64]map[uint64]bool{}
	recs := 0
	stream.ForEachRecord(ks, func(key, item uint64) {
		if distinct[key] == nil {
			distinct[key] = map[uint64]bool{}
		}
		distinct[key][item] = true
		recs++
	})
	total := 0
	for i, c := range counts {
		if got := len(distinct[ks.Key(i)]); got != c {
			t.Errorf("link %d: %d distinct flows, want %d", i, got, c)
		}
		total += c
	}
	if recs != 3*total {
		t.Errorf("%d records for %d flows, want 3x duplication", recs, total)
	}
}

func TestSpreadRecordsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for negative count")
		}
	}()
	SpreadRecords([]int{5, -1}, 1)
}
