// Package netflow synthesizes the network traffic workloads of the paper's
// Section 7 experimental evaluation.
//
// The original evaluation used two data sources we cannot ship:
//
//  1. The MIT LCS "Slammer" traces (www.rbeverly.net/research/slammer): two
//     peering-exchange links observed for 9 hours on 2003-01-25 during the
//     Slammer worm outbreak, with per-minute distinct flow counts mostly
//     stable around 2^15–2^17 but occasionally bursting by an order of
//     magnitude (heavy worm scanners).
//  2. A Tier-1 US provider snapshot of five-minute flow counts on 600
//     backbone MPLS links, spanning several orders of magnitude; the paper
//     reports its quantiles (0.1%, 25%, 50%, 75%, 99%) as
//     (18, 196, 2817, 19401, 361485). For this dataset even the original
//     authors "use simulated data for each link" since only counts, not
//     traces, were available.
//
// Slammer reproduces (1): a per-minute flow-count time series with a
// log-normal base level, slow diurnal drift, AR(1) roughness and sparse
// multiplicative bursts, plus per-minute flow-key streams with
// packet-level duplication. BackboneSnapshot reproduces (2): per-link
// counts drawn from a piecewise log-linear quantile function through the
// published quantile points. The estimators only ever see (distinct-count,
// key-stream) pairs, so matching scale, burstiness and tail shape is what
// matters; DESIGN.md §4 records the substitution.
package netflow

import (
	"fmt"
	"math"

	"repro/internal/stream"
	"repro/internal/xrand"
)

// Trace is a per-interval distinct-flow-count time series for one link.
type Trace struct {
	Name   string
	Counts []int // Counts[i] = true distinct flows in interval i
	seed   uint64
}

// SlammerMinutes is the length of the synthesized Slammer-like traces:
// 9 hours of per-minute intervals, as in Figure 5.
const SlammerMinutes = 9 * 60

// Slammer returns the synthetic counterpart of the paper's Slammer trace
// for link 0 or link 1. Link 1 runs around 2^15–2^16 flows/minute and
// link 0 around 2^16–2^17, matching Figure 5's y-ranges; both have sparse
// bursts up to roughly 8× base (the "order of difference" the paper
// attributes to a few heavy worm scanners).
func Slammer(link int, seed uint64) Trace {
	if link != 0 && link != 1 {
		panic(fmt.Sprintf("netflow: slammer link %d, want 0 or 1", link))
	}
	r := xrand.New(seed ^ (0x51a33e5<<uint(link) + uint64(link)))
	baseLog2 := 15.3 // link 1
	if link == 0 {
		baseLog2 = 16.2
	}
	counts := make([]int, SlammerMinutes)
	ar := 0.0 // AR(1) roughness in log2 units
	for t := range counts {
		// Slow drift over the 9 hours (fraction of a diurnal cycle).
		drift := 0.25 * math.Sin(2*math.Pi*(float64(t)/SlammerMinutes*0.35+0.2))
		ar = 0.8*ar + 0.08*r.NormFloat64()
		log2 := baseLog2 + drift + ar
		// Sparse bursts: ~2.5% of minutes jump by 1.5–3 log2 units.
		if r.Float64() < 0.025 {
			log2 += 1.5 + 1.5*r.Float64()
		}
		counts[t] = int(math.Exp2(log2))
		if counts[t] < 1 {
			counts[t] = 1
		}
	}
	return Trace{Name: fmt.Sprintf("slammer-link%d", link), Counts: counts, seed: seed}
}

// IntervalStream returns the flow-key stream of interval i: the interval's
// distinct flows plus packet-level duplication (Zipf packet counts, ~3
// packets per flow on average), fully interleaved. Distinct counting
// algorithms must see duplication to be exercised honestly, even though a
// correct sketch's state is invariant to it.
func (tr Trace) IntervalStream(i int) stream.Stream {
	if i < 0 || i >= len(tr.Counts) {
		panic(fmt.Sprintf("netflow: interval %d outside [0,%d)", i, len(tr.Counts)))
	}
	n := tr.Counts[i]
	length := n * 3
	return stream.NewInterleaved(n, length, stream.DupZipf, tr.seed+uint64(i)*1_000_003)
}

// paperQuantiles are the backbone snapshot quantiles reported in Section
// 7.2 (probability, flow count).
var paperQuantiles = [][2]float64{
	{0.001, 18},
	{0.25, 196},
	{0.50, 2817},
	{0.75, 19401},
	{0.99, 361485},
}

// BackboneQuantile evaluates the piecewise log-linear quantile function
// through the paper's published points. Probabilities outside the anchored
// range extrapolate the terminal segments, clamped to [10, 1.4e6] — the
// paper excludes links with fewer than 10 flows and dimensions for
// N = 1.5×10^6.
func BackboneQuantile(p float64) float64 {
	if p <= 0 {
		p = 1e-6
	}
	if p >= 1 {
		p = 1 - 1e-6
	}
	q := paperQuantiles
	// Locate the surrounding segment (extrapolating at the ends).
	seg := 0
	for seg < len(q)-2 && p > q[seg+1][0] {
		seg++
	}
	p0, v0 := q[seg][0], math.Log2(q[seg][1])
	p1, v1 := q[seg+1][0], math.Log2(q[seg+1][1])
	v := v0 + (v1-v0)*(p-p0)/(p1-p0)
	count := math.Exp2(v)
	if count < 10 {
		count = 10
	}
	if count > 1.4e6 {
		count = 1.4e6
	}
	return count
}

// BackboneSnapshot draws per-link five-minute flow counts for nLinks
// backbone links from the quantile function, using stratified uniform
// probabilities so one draw already matches the target distribution
// closely (the paper's Figure 7 histogram).
func BackboneSnapshot(nLinks int, seed uint64) []int {
	if nLinks < 1 {
		panic(fmt.Sprintf("netflow: nLinks = %d", nLinks))
	}
	r := xrand.New(seed ^ 0xbac6b0e5)
	counts := make([]int, nLinks)
	for i := range counts {
		// Stratified: p uniform within the i-th of nLinks equal slices.
		p := (float64(i) + r.Float64()) / float64(nLinks)
		counts[i] = int(BackboneQuantile(p))
	}
	// Shuffle so link index carries no scale information.
	r.Shuffle(nLinks, func(i, j int) { counts[i], counts[j] = counts[j], counts[i] })
	return counts
}

// LinkStream returns the flow-key stream for one backbone link with the
// given true flow count (packet-duplicated, interleaved).
func LinkStream(count int, seed uint64) stream.Stream {
	if count < 1 {
		panic(fmt.Sprintf("netflow: link flow count %d", count))
	}
	return stream.NewInterleaved(count, count*3, stream.DupZipf, seed)
}

// SpreadRecords returns the backbone snapshot as one keyed record stream:
// each of the counts' links becomes a key whose exact spread (distinct
// flow count) is its snapshot value, with packet-level duplication (~3
// records per flow, as in LinkStream) and records interleaved across
// links — the shape a keyed counter store ingests when one monitor tracks
// every link of the provider at once. Ground truth per link is
// Spread(i) == counts[i].
func SpreadRecords(counts []int, seed uint64) *stream.KeyedSpread {
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("netflow: negative flow count %d for link %d", c, i))
		}
	}
	return stream.NewKeyedSpread(counts, 3, seed^0x5b4ead)
}

// FlowKey encodes a synthetic 5-tuple-like flow identity as a single
// uint64 (src/dst/sport/dport/proto folded through Mix64); exposed for the
// examples that want to show realistic key construction.
func FlowKey(srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) uint64 {
	k := uint64(srcIP)<<32 | uint64(dstIP)
	k = xrand.Mix64(k)
	k ^= uint64(srcPort)<<24 | uint64(dstPort)<<8 | uint64(proto)
	return xrand.Mix64(k)
}
