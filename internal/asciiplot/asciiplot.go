// Package asciiplot renders the paper's figures as terminal graphics:
// multi-series line charts (Figures 2, 4, 5, 6, 8), histograms (Figure 7)
// and contour-style grids (Figure 3). The goal is a faithful visual shape
// check, not publication graphics; the underlying numbers are always also
// emitted as tables.
package asciiplot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune
}

// defaultMarkers cycles through distinguishable glyphs for unnamed series.
var defaultMarkers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// LineChart renders the series over a shared axis grid.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot area columns (default 72)
	Height int  // plot area rows (default 20)
	LogX   bool // log10-scale the x axis
	LogY   bool // log10-scale the y axis
	series []Series
}

// Add appends a series; X and Y must have equal, nonzero length.
func (c *LineChart) Add(s Series) error {
	if len(s.X) != len(s.Y) || len(s.X) == 0 {
		return fmt.Errorf("asciiplot: series %q has %d x and %d y points", s.Name, len(s.X), len(s.Y))
	}
	if s.Marker == 0 {
		s.Marker = defaultMarkers[len(c.series)%len(defaultMarkers)]
	}
	c.series = append(c.series, s)
	return nil
}

func (c *LineChart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	return w, h
}

// transform applies the axis scaling, dropping non-plottable points.
func (c *LineChart) transform() []Series {
	out := make([]Series, 0, len(c.series))
	for _, s := range c.series {
		t := Series{Name: s.Name, Marker: s.Marker}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			t.X = append(t.X, x)
			t.Y = append(t.Y, y)
		}
		out = append(out, t)
	}
	return out
}

// Write renders the chart.
func (c *LineChart) Write(w io.Writer) error {
	width, height := c.dims()
	ts := c.transform()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range ts {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return fmt.Errorf("asciiplot: chart %q has no plottable points", c.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range ts {
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = s.Marker
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	axisVal := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", axisVal(maxY, c.LogY), strings.Repeat("-", width))
	for r := 0; r < height; r++ {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", axisVal(minY, c.LogY), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-12.4g%*.4g\n", "", axisVal(minX, c.LogX), width-12, axisVal(maxX, c.LogX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for _, s := range ts {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", s.Marker, s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the chart to a string, or an error note.
func (c *LineChart) String() string {
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		return fmt.Sprintf("(%v)", err)
	}
	return b.String()
}

// Histogram renders labeled counts as horizontal bars.
type Histogram struct {
	Title  string
	Labels []string
	Counts []int
	Width  int // max bar width (default 60)
}

// Write renders the histogram; label and count slices must align.
func (h *Histogram) Write(w io.Writer) error {
	if len(h.Labels) != len(h.Counts) {
		return fmt.Errorf("asciiplot: histogram has %d labels, %d counts", len(h.Labels), len(h.Counts))
	}
	width := h.Width
	if width <= 0 {
		width = 60
	}
	max := 0
	labelW := 0
	for i, c := range h.Counts {
		if c > max {
			max = c
		}
		if len(h.Labels[i]) > labelW {
			labelW = len(h.Labels[i])
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(&b, "%-*s |%s %d\n", labelW, h.Labels[i], bar, c)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the histogram to a string, or an error note.
func (h *Histogram) String() string {
	var b strings.Builder
	if err := h.Write(&b); err != nil {
		return fmt.Sprintf("(%v)", err)
	}
	return b.String()
}

// ContourGrid renders a function z(x, y) over a grid as digit cells, with
// a marked level-crossing contour — the Figure 3 style plot. Cells show
// the z value bucketed by Levels; cells where z crosses Mark are drawn
// with '='.
type ContourGrid struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Ys     []float64 // rendered bottom-to-top
	Z      func(x, y float64) float64
	Levels []float64 // ascending bucket boundaries
	Mark   float64   // contour level to highlight
}

// Write renders the grid.
func (g *ContourGrid) Write(w io.Writer) error {
	if len(g.Xs) == 0 || len(g.Ys) == 0 || g.Z == nil {
		return fmt.Errorf("asciiplot: contour grid incomplete")
	}
	levels := append([]float64(nil), g.Levels...)
	sort.Float64s(levels)
	cell := func(z float64) byte {
		for i, l := range levels {
			if z < l {
				return byte('0' + i%10)
			}
		}
		return byte('0' + len(levels)%10)
	}
	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "%s\n", g.Title)
	}
	for row := len(g.Ys) - 1; row >= 0; row-- {
		y := g.Ys[row]
		fmt.Fprintf(&b, "%10.3g |", y)
		var prev float64
		for col, x := range g.Xs {
			z := g.Z(x, y)
			ch := cell(z)
			if col > 0 && (prev-g.Mark)*(z-g.Mark) < 0 {
				ch = '=' // crossing the marked level between columns
			}
			b.WriteByte(ch)
			prev = z
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", len(g.Xs)))
	fmt.Fprintf(&b, "%10s  %-10.3g%*.3g\n", "", g.Xs[0], len(g.Xs)-10, g.Xs[len(g.Xs)-1])
	fmt.Fprintf(&b, "%10s  x: %s   y: %s   cells: index of first level boundary above z %v; '=' marks z = %g\n",
		"", g.XLabel, g.YLabel, levels, g.Mark)
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the grid to a string, or an error note.
func (g *ContourGrid) String() string {
	var b strings.Builder
	if err := g.Write(&b); err != nil {
		return fmt.Sprintf("(%v)", err)
	}
	return b.String()
}
