package asciiplot

import (
	"strings"
	"testing"
)

func TestLineChartBasic(t *testing.T) {
	c := &LineChart{Title: "T", Width: 40, Height: 10}
	if err := c.Add(Series{Name: "up", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Series{Name: "down", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	if !strings.Contains(out, "T") || !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Errorf("missing title or legend:\n%s", out)
	}
	// Two distinct markers must appear.
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestLineChartLogAxes(t *testing.T) {
	c := &LineChart{LogX: true, LogY: true, Width: 30, Height: 8}
	// Include a zero point which must be dropped, not crash.
	if err := c.Add(Series{Name: "s", X: []float64{0, 10, 100, 1000}, Y: []float64{0, 1, 10, 100}}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	if strings.Contains(out, "(") {
		t.Errorf("unexpected render error: %s", out)
	}
	// Log axis labels should show the original values (10 and 1000).
	if !strings.Contains(out, "1000") {
		t.Errorf("axis labels wrong:\n%s", out)
	}
}

func TestLineChartErrors(t *testing.T) {
	c := &LineChart{}
	if err := c.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{}}); err == nil {
		t.Error("mismatched series accepted")
	}
	empty := &LineChart{}
	var b strings.Builder
	if err := empty.Write(&b); err == nil {
		t.Error("empty chart rendered without error")
	}
	// A chart whose only points are unplottable under log must error.
	neg := &LineChart{LogY: true}
	_ = neg.Add(Series{Name: "n", X: []float64{1}, Y: []float64{-5}})
	if err := neg.Write(&b); err == nil {
		t.Error("all-dropped chart rendered without error")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	c := &LineChart{Width: 20, Height: 5}
	_ = c.Add(Series{Name: "flat", X: []float64{1, 2}, Y: []float64{7, 7}})
	if out := c.String(); strings.Contains(out, "(") {
		t.Errorf("flat series failed: %s", out)
	}
}

func TestHistogram(t *testing.T) {
	h := &Histogram{
		Title:  "H",
		Labels: []string{"2^4", "2^5", "2^6"},
		Counts: []int{1, 4, 2},
		Width:  8,
	}
	out := h.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Longest bar belongs to count 4 and has the full width.
	if !strings.Contains(lines[2], strings.Repeat("#", 8)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	bad := &Histogram{Labels: []string{"a"}, Counts: []int{1, 2}}
	var b strings.Builder
	if err := bad.Write(&b); err == nil {
		t.Error("mismatched histogram accepted")
	}
	zero := &Histogram{Labels: []string{"a"}, Counts: []int{0}}
	if out := zero.String(); strings.Contains(out, "(") {
		t.Errorf("zero-count histogram failed: %s", out)
	}
}

func TestContourGrid(t *testing.T) {
	g := &ContourGrid{
		Title:  "ratio",
		Xs:     []float64{1, 2, 3, 4},
		Ys:     []float64{1, 2},
		Z:      func(x, y float64) float64 { return x * y },
		Levels: []float64{2, 6},
		Mark:   2,
	}
	out := g.String()
	if !strings.Contains(out, "ratio") {
		t.Errorf("title missing:\n%s", out)
	}
	// The z=2 crossing must be marked somewhere.
	if !strings.ContainsRune(out, '=') {
		t.Errorf("contour crossing not marked:\n%s", out)
	}
	incomplete := &ContourGrid{}
	var b strings.Builder
	if err := incomplete.Write(&b); err == nil {
		t.Error("incomplete grid accepted")
	}
}
