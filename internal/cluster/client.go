package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// Default per-peer retry policy: a dead TCP connection or a mid-restart
// peer gets two more tries before the cluster client declares the peer
// unreachable and degrades the response.
const (
	DefaultRetries   = 2
	DefaultRetryBase = 100 * time.Millisecond
)

// Client is the cluster-aware face of the counting service: one logical
// Store spread over a ring of sketchd peers. Ingest partitions by key
// owner, point reads route to the owner, and aggregate reads
// scatter-gather. Safe for concurrent use.
type Client struct {
	ring  *Ring
	peers []*server.Client
	// wire[i], when non-nil, carries peer i's ingest over its raw TCP
	// frame listener instead of HTTP (see WithWireIngest). Queries always
	// go over HTTP.
	wire []*wirePeer
}

type options struct {
	vnodes    int
	hc        *http.Client
	retries   int
	retryBase time.Duration
	wireAddrs map[string]string
}

// Option configures a cluster Client.
type Option func(*options)

// WithVirtualNodes overrides the ring's per-peer virtual-node count.
func WithVirtualNodes(n int) Option { return func(o *options) { o.vnodes = n } }

// WithHTTPClient substitutes the transport shared by every per-peer
// client (timeouts, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(o *options) { o.hc = hc } }

// WithRetry overrides the per-peer retry policy (see server.WithRetry);
// WithRetry(0, 0) disables retries.
func WithRetry(retries int, base time.Duration) Option {
	return func(o *options) { o.retries, o.retryBase = retries, base }
}

// WithWireIngest maps peer base URLs to their raw TCP frame listener
// addresses (sketchd -tcp-addr). Ingest to a mapped peer goes over a
// long-lived wire connection (length-prefixed SBF1 frames, per-frame
// acks) instead of POST /v1/add; queries and unmapped peers stay on
// HTTP. The counting semantics are identical — the wire listener feeds
// the same store bit-identically — only the transport changes.
func WithWireIngest(addrs map[string]string) Option {
	return func(o *options) { o.wireAddrs = addrs }
}

// wirePeer serializes one peer's wire connection: wire.Client is
// single-producer by design (ordered acks), while cluster.Client is
// documented safe for concurrent use.
type wirePeer struct {
	mu sync.Mutex
	c  *wire.Client
}

// add64 sends one sub-batch synchronously, retrying once through the
// client's auto-redial — parity with the HTTP path's transient-failure
// retry.
func (w *wirePeer) add64(keys []string, items []uint64) (server.AddResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ch, err := w.c.AddBatch64(keys, items)
	if err != nil {
		ch, err = w.c.AddBatch64(keys, items)
	}
	if err != nil {
		return server.AddResult{}, err
	}
	return server.AddResult{Records: len(keys), Changed: ch}, nil
}

func (w *wirePeer) addString(keys, items []string) (server.AddResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ch, err := w.c.AddBatchString(keys, items)
	if err != nil {
		ch, err = w.c.AddBatchString(keys, items)
	}
	if err != nil {
		return server.AddResult{}, err
	}
	return server.AddResult{Records: len(keys), Changed: ch}, nil
}

// New builds a cluster client over the given peer base URLs — the
// cluster's partition set, the same list every node was started with.
func New(peers []string, opts ...Option) (*Client, error) {
	o := options{retries: DefaultRetries, retryBase: DefaultRetryBase}
	for _, opt := range opts {
		opt(&o)
	}
	ring, err := NewRing(peers, o.vnodes)
	if err != nil {
		return nil, err
	}
	c := &Client{
		ring:  ring,
		peers: make([]*server.Client, len(peers)),
		wire:  make([]*wirePeer, len(peers)),
	}
	for i, p := range peers {
		copts := []server.ClientOption{server.WithRetry(o.retries, o.retryBase)}
		if o.hc != nil {
			copts = append(copts, server.WithHTTPClient(o.hc))
		}
		c.peers[i] = server.NewClient(p, copts...)
		if addr, ok := o.wireAddrs[p]; ok {
			c.wire[i] = &wirePeer{c: wire.NewClient(addr)}
		}
	}
	return c, nil
}

// Ring returns the placement ring (for inspection and tests).
func (c *Client) Ring() *Ring { return c.ring }

// Close releases any long-lived wire ingest connections (a no-op for a
// pure-HTTP client). The client remains usable; wire connections redial
// on the next ingest.
func (c *Client) Close() error {
	var first error
	for _, wp := range c.wire {
		if wp == nil {
			continue
		}
		wp.mu.Lock()
		if err := wp.c.Close(); err != nil && first == nil {
			first = err
		}
		wp.mu.Unlock()
	}
	return first
}

// Owner returns the base URL of the peer owning key.
func (c *Client) Owner(key string) string { return c.ring.OwnerPeer(key) }

// PeerError reports a failure talking to one peer; Unwrap exposes the
// underlying transport or API error.
type PeerError struct {
	Peer string
	Err  error
}

func (e *PeerError) Error() string { return fmt.Sprintf("cluster: peer %s: %v", e.Peer, e.Err) }
func (e *PeerError) Unwrap() error { return e.Err }

// Degraded marks a scatter-gather response assembled without every peer:
// Partial is true and Unreachable lists the peers whose answers are
// missing. A degraded response is an answer, not an error — the caller
// decides whether partial coverage is acceptable.
type Degraded struct {
	Partial     bool     `json:"partial"`
	Unreachable []string `json:"unreachable,omitempty"`
}

// degrade records one unreachable peer.
func (d *Degraded) degrade(peer string) {
	d.Partial = true
	d.Unreachable = append(d.Unreachable, peer)
}

// AddResult aggregates a partitioned ingest: Records/Changed sum over
// the peers that accepted their sub-frame; Dropped counts the records
// whose owner was unreachable (after retries) and which therefore were
// NOT ingested anywhere — partitioned placement means no other node may
// take them without breaking single-owner semantics.
type AddResult struct {
	server.AddResult
	Dropped int `json:"dropped,omitempty"`
	Degraded
}

// TopKResult is a scatter-gathered ranking.
type TopKResult struct {
	Top []server.Entry `json:"top"`
	Degraded
}

// PeerStats pairs one peer's /v1/stats answer with its base URL.
type PeerStats struct {
	Peer string `json:"peer"`
	server.Stats
}

// StatsResult aggregates /v1/stats over the ring: cluster-wide totals
// plus each reachable peer's own numbers.
type StatsResult struct {
	Keys           int   `json:"keys"`
	SizeBits       int   `json:"size_bits"`
	FootprintBytes int   `json:"footprint_bytes"`
	Records        int64 `json:"records"`
	Changed        int64 `json:"changed"`
	Peers          []PeerStats
	Degraded
}

// PeerHealth is one peer's probe outcome.
type PeerHealth struct {
	Peer string `json:"peer"`
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
	server.HealthResult
}

// scatter runs fn once per peer concurrently and waits for all of them.
func (c *Client) scatter(fn func(i int, pc *server.Client)) {
	var wg sync.WaitGroup
	for i, pc := range c.peers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i, pc)
		}()
	}
	wg.Wait()
}

// unreachable reports whether a per-peer failure means "peer down"
// (degrade the response) as opposed to "request wrong" (propagate). A
// typed APIError is an answer from a live peer; anything else — refused
// connection, reset, timeout — is unreachability.
func unreachable(err error) bool {
	var apiErr *server.APIError
	return !errors.As(err, &apiErr)
}

// addSubBatch is the shared routing core of the two ingest entrypoints:
// send(i, idx) must ship the records at idx to peer i (over whichever
// transport that peer uses).
func (c *Client) addSubBatch(keys []string, send func(i int, idx []int) (server.AddResult, error)) (AddResult, error) {
	parts := c.ring.Partition(keys)
	var (
		mu  sync.Mutex
		res AddResult
		hce error
	)
	c.scatter(func(i int, pc *server.Client) {
		idx := parts[i]
		if len(idx) == 0 {
			return
		}
		r, err := send(i, idx)
		mu.Lock()
		defer mu.Unlock()
		if err == nil {
			res.Records += r.Records
			res.Changed += r.Changed
			return
		}
		if unreachable(err) {
			res.Dropped += len(idx)
			res.degrade(c.ring.peers[i])
			return
		}
		if hce == nil {
			hce = &PeerError{Peer: c.ring.peers[i], Err: err}
		}
	})
	if hce != nil {
		return AddResult{}, hce
	}
	sort.Strings(res.Unreachable)
	return res, nil
}

// AddBatch64 partitions (keys[i], items[i]) records by ring owner and
// ships each peer its sub-frame concurrently. Peers that stay
// unreachable after retries degrade the result (Dropped, Partial,
// Unreachable) rather than failing the whole batch; an API-level error
// from any peer fails the call.
func (c *Client) AddBatch64(ctx context.Context, keys []string, items []uint64) (AddResult, error) {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("cluster: AddBatch64 with %d keys and %d items", len(keys), len(items)))
	}
	return c.addSubBatch(keys, func(i int, idx []int) (server.AddResult, error) {
		subKeys := make([]string, len(idx))
		subItems := make([]uint64, len(idx))
		for j, ix := range idx {
			subKeys[j], subItems[j] = keys[ix], items[ix]
		}
		if wp := c.wire[i]; wp != nil {
			return wp.add64(subKeys, subItems)
		}
		return c.peers[i].AddBatch64(ctx, subKeys, subItems)
	})
}

// AddBatchString is AddBatch64 for string items.
func (c *Client) AddBatchString(ctx context.Context, keys, items []string) (AddResult, error) {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("cluster: AddBatchString with %d keys and %d items", len(keys), len(items)))
	}
	return c.addSubBatch(keys, func(i int, idx []int) (server.AddResult, error) {
		subKeys := make([]string, len(idx))
		subItems := make([]string, len(idx))
		for j, ix := range idx {
			subKeys[j], subItems[j] = keys[ix], items[ix]
		}
		if wp := c.wire[i]; wp != nil {
			return wp.addString(subKeys, subItems)
		}
		return c.peers[i].AddBatchString(ctx, subKeys, subItems)
	})
}

// Estimate routes the point read to the key's owner — partitioned
// placement means exactly one peer can know the key, so there is nothing
// to scatter. ok mirrors the single-node client (false, nil error for a
// never-seen key); an unreachable owner is a *PeerError (a point read
// has no partial answer to degrade to).
func (c *Client) Estimate(ctx context.Context, key string) (estimate float64, ok bool, err error) {
	owner := c.ring.Owner(key)
	estimate, ok, err = c.peers[owner].Estimate(ctx, key)
	if err != nil && unreachable(err) {
		err = &PeerError{Peer: c.ring.peers[owner], Err: err}
	}
	return estimate, ok, err
}

// TopK scatter-gathers each peer's top k and k-way merges the per-peer
// rankings (descending estimate, ties by ascending key — the Store's own
// order) into the cluster-wide top k. Each key lives on one owner, so
// per-peer rankings are disjoint and the merge of per-peer top-k lists
// provably contains the global top k; duplicate keys (possible only on
// an aggregator queried as a partition peer) keep their largest
// estimate. Unreachable peers degrade the result.
func (c *Client) TopK(ctx context.Context, k int) (TopKResult, error) {
	if k <= 0 {
		return TopKResult{}, nil
	}
	lists := make([][]server.Entry, len(c.peers))
	errs := make([]error, len(c.peers))
	c.scatter(func(i int, pc *server.Client) {
		lists[i], errs[i] = pc.TopK(ctx, k)
	})
	var res TopKResult
	for i, err := range errs {
		if err == nil {
			continue
		}
		if unreachable(err) {
			res.degrade(c.ring.peers[i])
			lists[i] = nil
			continue
		}
		return TopKResult{}, &PeerError{Peer: c.ring.peers[i], Err: err}
	}
	sort.Strings(res.Unreachable)
	res.Top = mergeTopK(lists, k)
	return res, nil
}

// mergeTopK k-way merges per-peer rankings already sorted by (estimate
// desc, key asc) and returns the first k distinct keys in that same
// global order.
func mergeTopK(lists [][]server.Entry, k int) []server.Entry {
	heads := make([]int, len(lists))
	better := func(a, b server.Entry) bool {
		return a.Estimate > b.Estimate || (a.Estimate == b.Estimate && a.Key < b.Key)
	}
	var out []server.Entry
	seen := make(map[string]bool)
	for len(out) < k {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best == -1 || better(l[heads[i]], lists[best][heads[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := lists[best][heads[best]]
		heads[best]++
		if seen[e.Key] {
			continue
		}
		seen[e.Key] = true
		out = append(out, e)
	}
	return out
}

// Stats scatter-gathers /v1/stats and sums the store totals; per-peer
// numbers ride along. Unreachable peers degrade the result.
func (c *Client) Stats(ctx context.Context) (StatsResult, error) {
	stats := make([]server.Stats, len(c.peers))
	errs := make([]error, len(c.peers))
	c.scatter(func(i int, pc *server.Client) {
		stats[i], errs[i] = pc.Stats(ctx)
	})
	var res StatsResult
	for i, err := range errs {
		if err != nil {
			if unreachable(err) {
				res.degrade(c.ring.peers[i])
				continue
			}
			return StatsResult{}, &PeerError{Peer: c.ring.peers[i], Err: err}
		}
		st := stats[i]
		res.Keys += st.Keys
		res.SizeBits += st.SizeBits
		res.FootprintBytes += st.FootprintBytes
		res.Records += st.Records
		res.Changed += st.Changed
		res.Peers = append(res.Peers, PeerStats{Peer: c.ring.peers[i], Stats: st})
	}
	sort.Strings(res.Unreachable)
	return res, nil
}

// Health probes every peer's /v1/healthz concurrently — the cluster
// prober. A peer's failure is reported in its row, never as an error
// (probing unreachable peers is the point).
func (c *Client) Health(ctx context.Context) []PeerHealth {
	out := make([]PeerHealth, len(c.peers))
	c.scatter(func(i int, pc *server.Client) {
		out[i].Peer = c.ring.peers[i]
		h, err := pc.Health(ctx)
		if err != nil {
			out[i].Err = err.Error()
			return
		}
		out[i].OK = true
		out[i].HealthResult = h
	})
	return out
}
