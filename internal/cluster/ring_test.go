package cluster

import (
	"fmt"
	"testing"
)

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty peer accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate peer accepted")
	}
}

// Placement must be a pure function of the peer SET: clients and servers
// agree on owners regardless of the order their -peers flags listed them.
func TestRingOrderIndependence(t *testing.T) {
	a, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://n3", "http://n1", "http://n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.OwnerPeer(key) != b.OwnerPeer(key) {
			t.Fatalf("key %q: owner %s under one order, %s under another",
				key, a.OwnerPeer(key), b.OwnerPeer(key))
		}
	}
}

func TestRingSinglePeer(t *testing.T) {
	r, err := NewRing([]string{"http://only"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)); got != 0 {
			t.Fatalf("owner %d, want 0", got)
		}
	}
}

// With the default virtual-node count, a 3-peer ring must spread keys
// within a loose band of the 1/3 mean — consistent hashing's point.
func TestRingBalance(t *testing.T) {
	peers := []string{"http://n1:8287", "http://n2:8287", "http://n3:8287"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(peers))
	const n = 30_000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("user-%06x", i))]++
	}
	for p, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("peer %d owns %.1f%% of keys (counts %v)", p, 100*frac, counts)
		}
	}
}

func TestRingPartition(t *testing.T) {
	r, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i%137) // repeats: same key, same part
	}
	parts := r.Partition(keys)
	total := 0
	for p, idx := range parts {
		last := -1
		for _, ix := range idx {
			if ix <= last {
				t.Fatalf("peer %d indices out of order: %v", p, idx)
			}
			last = ix
			if own := r.Owner(keys[ix]); own != p {
				t.Fatalf("key %q routed to peer %d, owner is %d", keys[ix], p, own)
			}
		}
		total += len(idx)
	}
	if total != len(keys) {
		t.Fatalf("partition covers %d of %d records", total, len(keys))
	}
	if got := r.Partition(nil); len(got) != 3 {
		t.Fatalf("empty partition: %v", got)
	}
}
