package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	sbitmap "repro"
	"repro/internal/server"
	"repro/internal/xrand"
)

// node is one loopback sketchd: a real net listener (so the port — and
// thus the peer's ring identity — survives kill+restart) serving a real
// server.Server.
type node struct {
	t    *testing.T
	srv  *server.Server
	hs   *http.Server
	addr string
}

func startNode(t *testing.T, cfg server.Config) *node {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &node{t: t, srv: srv, addr: ln.Addr().String()}
	n.serve(ln)
	t.Cleanup(n.kill)
	return n
}

func (n *node) base() string { return "http://" + n.addr }

func (n *node) serve(ln net.Listener) {
	n.hs = &http.Server{Handler: n.srv}
	go n.hs.Serve(ln)
}

// kill drops the listener and every open connection — the peer is gone
// mid-cluster, as in a crash.
func (n *node) kill() { n.hs.Close() }

// restart re-binds the same address (same ring identity, same store —
// the in-process analogue of a checkpoint-restore restart).
func (n *node) restart() {
	n.t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ { // the dead listener's port may linger briefly
		if ln, err = net.Listen("tcp", n.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		n.t.Fatalf("rebinding %s: %v", n.addr, err)
	}
	n.serve(ln)
	// The node must answer before the test proceeds.
	pc := server.NewClient(n.base())
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := pc.Healthz(context.Background()); err == nil {
			return
		}
		if time.Now().After(deadline) {
			n.t.Fatalf("node %s never became healthy after restart", n.addr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startCluster boots n partition peers sharing one spec and returns them
// with a cluster client (fast retry policy: tests kill peers on purpose).
func startCluster(t *testing.T, n int, spec sbitmap.Spec) ([]*node, *Client) {
	t.Helper()
	nodes := make([]*node, n)
	peers := make([]string, n)
	for i := range nodes {
		nodes[i] = startNode(t, server.Config{Spec: spec})
		peers[i] = nodes[i].base()
	}
	cl, err := New(peers, WithRetry(1, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return nodes, cl
}

// clusterWorkload builds a keyed record sequence with per-key spreads
// that differ across keys (so rankings are non-trivial) plus duplicates.
func clusterWorkload(nKeys, perKey int, seed uint64) (keys []string, items []uint64) {
	r := xrand.New(seed)
	for k := 0; k < nKeys; k++ {
		name := fmt.Sprintf("user-%05d", k)
		spread := 1 + k%29
		for i := 0; i < perKey; i++ {
			keys = append(keys, name)
			items = append(items, xrand.Mix64(uint64(k)<<20|uint64(i%spread)))
		}
	}
	// Shuffle records so every batch crosses all partitions.
	for i := len(keys) - 1; i > 0; i-- {
		j := int(r.Uint64() % uint64(i+1))
		keys[i], keys[j] = keys[j], keys[i]
		items[i], items[j] = items[j], items[i]
	}
	return keys, items
}

// TestClusterEndToEnd is the subsystem's acceptance test: a real 3-node
// loopback cluster through the full cycle — partitioned ingest,
// scatter-gather queries bit-identical to a single local twin Store,
// peer kill ⇒ typed degraded (partial) responses instead of errors, and
// full recovery once the peer is back.
func TestClusterEndToEnd(t *testing.T) {
	spec := sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=11")
	nKeys, perKey := 1<<12, 8
	if testing.Short() {
		nKeys, perKey = 1<<9, 4
	}
	nodes, cl := startCluster(t, 3, spec)
	ctx := context.Background()

	twin, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}

	// Partitioned ingest, twin fed record-for-record identically.
	keys, items := clusterWorkload(nKeys, perKey, 0xc10c)
	const batch = 1024
	sent := 0
	for i := 0; i < len(keys); i += batch {
		end := min(i+batch, len(keys))
		res, err := cl.AddBatch64(ctx, keys[i:end], items[i:end])
		if err != nil {
			t.Fatal(err)
		}
		if res.Partial || res.Dropped != 0 {
			t.Fatalf("healthy-cluster ingest degraded: %+v", res.Degraded)
		}
		if res.Records != end-i {
			t.Fatalf("batch reported %d records, sent %d", res.Records, end-i)
		}
		twin.AddBatch64(keys[i:end], items[i:end])
		sent += end - i
	}

	// Every partition must actually hold keys (the ring spread the load).
	for i, n := range nodes {
		if n.srv.Store().Len() == 0 {
			t.Fatalf("node %d owns no keys", i)
		}
	}

	// Scatter-gather stats: per-node key counts must sum to the twin's.
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partial || stats.Keys != twin.Len() || stats.Records != int64(sent) {
		t.Fatalf("stats: keys=%d records=%d partial=%v, twin has %d keys / %d records",
			stats.Keys, stats.Records, stats.Partial, twin.Len(), sent)
	}

	// Every key: clustered estimate bit-identical to the local twin.
	mismatches := 0
	twin.ForEach(func(key string, c sbitmap.Counter) bool {
		got, ok, err := cl.Estimate(ctx, key)
		if err != nil {
			t.Fatalf("estimate %q: %v", key, err)
		}
		if !ok || got != c.Estimate() {
			mismatches++
		}
		return mismatches < 10
	})
	if mismatches > 0 {
		t.Fatalf("%d keys with clustered estimates differing from the twin", mismatches)
	}

	// Scatter-gather top-k: k-way merge equals the twin's ranking, in
	// order, across boundary ks.
	for _, k := range []int{1, 10, 100} {
		want := twin.TopK(k)
		got, err := cl.TopK(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if got.Partial {
			t.Fatalf("topk(%d) partial on a healthy cluster", k)
		}
		if len(got.Top) != len(want) {
			t.Fatalf("topk(%d): %d entries, twin %d", k, len(got.Top), len(want))
		}
		for i := range want {
			if got.Top[i].Key != want[i].Key || got.Top[i].Estimate != want[i].Estimate {
				t.Fatalf("topk(%d)[%d]: got (%s, %v), twin (%s, %v)",
					k, i, got.Top[i].Key, got.Top[i].Estimate, want[i].Key, want[i].Estimate)
			}
		}
	}

	// All three peers healthy, same spec.
	for _, h := range cl.Health(ctx) {
		if !h.OK || h.Spec != spec.String() {
			t.Fatalf("health: %+v", h)
		}
	}

	// Kill one peer: scatter-gather queries must degrade (typed partial
	// response naming the dead peer), not fail.
	dead := nodes[1]
	dead.kill()
	deadKeys := dead.srv.Store().Len()

	got, err := cl.TopK(ctx, 50)
	if err != nil {
		t.Fatalf("topk with a dead peer must degrade, got error %v", err)
	}
	if !got.Partial || len(got.Unreachable) != 1 || got.Unreachable[0] != dead.base() {
		t.Fatalf("topk degraded response: %+v", got.Degraded)
	}
	for _, e := range got.Top { // surviving entries still bit-identical
		want, _ := twin.Estimate(e.Key)
		if cl.Owner(e.Key) == dead.base() || e.Estimate != want {
			t.Fatalf("degraded topk entry %+v (owner %s)", e, cl.Owner(e.Key))
		}
	}

	stats, err = cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partial || stats.Keys != twin.Len()-deadKeys || len(stats.Peers) != 2 {
		t.Fatalf("degraded stats: keys=%d partial=%v peers=%d (twin %d, dead node held %d)",
			stats.Keys, stats.Partial, len(stats.Peers), twin.Len(), deadKeys)
	}

	health := cl.Health(ctx)
	downs := 0
	for _, h := range health {
		if !h.OK {
			downs++
			if h.Peer != dead.base() {
				t.Fatalf("health blames %s, killed %s", h.Peer, dead.base())
			}
		}
	}
	if downs != 1 {
		t.Fatalf("health reports %d peers down, want 1: %+v", downs, health)
	}

	// A point read routed to the dead owner is a typed peer error; keys
	// owned by live peers keep answering.
	deadKey, liveKey := "", ""
	twin.ForEach(func(key string, _ sbitmap.Counter) bool {
		if cl.Owner(key) == dead.base() {
			deadKey = key
		} else {
			liveKey = key
		}
		return deadKey == "" || liveKey == ""
	})
	var perr *PeerError
	if _, _, err := cl.Estimate(ctx, deadKey); !errors.As(err, &perr) || perr.Peer != dead.base() {
		t.Fatalf("estimate(%q) with dead owner: %v", deadKey, err)
	}
	if est, ok, err := cl.Estimate(ctx, liveKey); err != nil || !ok {
		t.Fatalf("estimate(%q) with live owner: ok=%v err=%v", liveKey, ok, err)
	} else if want, _ := twin.Estimate(liveKey); est != want {
		t.Fatalf("estimate(%q) = %v, twin %v", liveKey, est, want)
	}

	// Ingest degrades too: the dead owner's records are reported dropped,
	// everyone else's land (and stay bit-identical to a twin fed only the
	// delivered records).
	deltaKeys := []string{deadKey, liveKey, deadKey, liveKey}
	deltaItems := []uint64{1, 2, 3, 4}
	addRes, err := cl.AddBatch64(ctx, deltaKeys, deltaItems)
	if err != nil {
		t.Fatal(err)
	}
	if !addRes.Partial || addRes.Dropped != 2 || addRes.Records != 2 {
		t.Fatalf("degraded ingest: %+v", addRes)
	}
	twin.AddBatch64([]string{liveKey, liveKey}, []uint64{2, 4})

	// Restart the peer on its old address: the ring identity is the
	// address, so the cluster heals with no client-side action.
	dead.restart()
	got, err = cl.TopK(ctx, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatalf("topk still partial after restart: %+v", got.Degraded)
	}
	want := twin.TopK(50)
	for i := range want {
		if got.Top[i].Key != want[i].Key || got.Top[i].Estimate != want[i].Estimate {
			t.Fatalf("post-restart topk[%d]: got (%s, %v), twin (%s, %v)",
				i, got.Top[i].Key, got.Top[i].Estimate, want[i].Key, want[i].Estimate)
		}
	}
	if est, ok, err := cl.Estimate(ctx, deadKey); err != nil || !ok {
		t.Fatalf("estimate(%q) after restart: ok=%v err=%v", deadKey, ok, err)
	} else if want, _ := twin.Estimate(deadKey); est != want {
		t.Fatalf("estimate(%q) = %v after restart, twin %v", deadKey, est, want)
	}
}

// TestAggregatorPush exercises the edge→aggregator half: two edge nodes
// counting disjoint-and-overlapping keys push snapshots into an
// aggregator whose central view must equal a twin fed every record —
// bit-identical, because snapshots share the spec's seed and merge is
// register-wise union.
func TestAggregatorPush(t *testing.T) {
	spec := sbitmap.MustSpec("hll:mbits=2048,seed=9")
	agg := startNode(t, server.Config{
		Spec:    spec,
		Cluster: server.ClusterInfo{Role: server.RoleAggregator},
	})
	edges := []*node{
		startNode(t, server.Config{Spec: spec, Cluster: server.ClusterInfo{Role: server.RoleEdge}}),
		startNode(t, server.Config{Spec: spec, Cluster: server.ClusterInfo{Role: server.RoleEdge}}),
	}
	ctx := context.Background()

	twin, err := sbitmap.NewStore[string](spec)
	if err != nil {
		t.Fatal(err)
	}
	// Edge 0 sees links a,b; edge 1 sees links b,c — b is observed from
	// both vantage points with overlapping item sets, the paper's many-
	// monitors-one-flow case.
	feed := func(n *node, key string, lo, hi int) {
		keys := make([]string, 0, hi-lo)
		items := make([]uint64, 0, hi-lo)
		for v := lo; v < hi; v++ {
			keys = append(keys, key)
			items = append(items, xrand.Mix64(uint64(v)))
		}
		if _, err := server.NewClient(n.base()).AddBatch64(ctx, keys, items); err != nil {
			t.Fatal(err)
		}
		twin.AddBatch64(keys, items)
	}
	feed(edges[0], "link-a", 0, 500)
	feed(edges[0], "link-b", 0, 300)
	feed(edges[1], "link-b", 150, 450)
	feed(edges[1], "link-c", 0, 200)

	for _, e := range edges {
		p := &Pusher{
			Source: e.srv.Store().MarshalBinary,
			Target: server.NewClient(agg.base(), server.WithRetry(1, 5*time.Millisecond)),
		}
		if res, err := p.PushOnce(ctx); err != nil {
			t.Fatal(err)
		} else if res.KeysMerged != e.srv.Store().Len() {
			t.Fatalf("pushed %d keys, edge holds %d", res.KeysMerged, e.srv.Store().Len())
		}
		if p.Pushes() != 1 || p.Failures() != 0 {
			t.Fatalf("pusher counters: pushes=%d failures=%d", p.Pushes(), p.Failures())
		}
	}

	aggClient := server.NewClient(agg.base())
	for _, key := range []string{"link-a", "link-b", "link-c"} {
		want, _ := twin.Estimate(key)
		got, ok, err := aggClient.Estimate(ctx, key)
		if err != nil || !ok {
			t.Fatalf("aggregator estimate %q: ok=%v err=%v", key, ok, err)
		}
		if got != want {
			t.Fatalf("aggregator %q = %v, twin (all records) = %v", key, got, want)
		}
	}

	// Pushes are idempotent set unions: re-pushing identical state must
	// not move any estimate.
	p := &Pusher{Source: edges[0].srv.Store().MarshalBinary, Target: server.NewClient(agg.base())}
	if _, err := p.PushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := aggClient.Estimate(ctx, "link-b"); func() float64 { w, _ := twin.Estimate("link-b"); return w }() != got {
		t.Fatalf("re-push moved link-b estimate to %v", got)
	}

	// Run: a ticker-driven pusher pushes on its own.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	rp := &Pusher{
		Source:   edges[1].srv.Store().MarshalBinary,
		Target:   server.NewClient(agg.base()),
		Interval: 10 * time.Millisecond,
		Logf:     t.Logf,
	}
	go rp.Run(runCtx)
	deadline := time.Now().Add(2 * time.Second)
	for rp.Pushes() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker pusher made %d pushes", rp.Pushes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()

	// An aggregator outage is survivable: the push fails (counted), the
	// edge keeps counting, and the next push after recovery heals.
	agg.kill()
	fp := &Pusher{Source: edges[0].srv.Store().MarshalBinary,
		Target: server.NewClient(agg.base(), server.WithRetry(1, time.Millisecond))}
	if _, err := fp.PushOnce(ctx); err == nil {
		t.Fatal("push to a dead aggregator succeeded")
	}
	if fp.Failures() != 1 {
		t.Fatalf("failures=%d", fp.Failures())
	}
	agg.restart()
	if _, err := fp.PushOnce(ctx); err != nil {
		t.Fatalf("push after aggregator restart: %v", err)
	}
}

// TestPushNotMergeable: an S-bitmap edge cannot aggregate — the push
// must surface the server's typed not_mergeable error, which is exactly
// why cluster mode partitions S-bitmap keys instead of unioning them.
func TestPushNotMergeable(t *testing.T) {
	spec := sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=3")
	agg := startNode(t, server.Config{Spec: spec})
	edge := startNode(t, server.Config{Spec: spec})
	ctx := context.Background()

	ec := server.NewClient(edge.base())
	if _, err := ec.AddBatch64(ctx, []string{"k"}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	p := &Pusher{Source: edge.srv.Store().MarshalBinary, Target: server.NewClient(agg.base())}
	_, err := p.PushOnce(ctx)
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeNotMergeable {
		t.Fatalf("want typed %s error, got %v", server.CodeNotMergeable, err)
	}
}
