package cluster

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// Pusher is the edge half of the edge→aggregator topology: on a timer it
// snapshots an edge node's whole store and ships it to the aggregator's
// /v1/merge, which key-wise unions mergeable kinds into the central
// view. Snapshots are bit-identical by construction (same Spec, same
// seed), so a push is a pure set union — re-pushing the same state is
// idempotent, and a missed interval is healed by the next one.
//
// Only mergeable kinds can aggregate (the S-bitmap refuses with a typed
// not_mergeable error); under partitioning the S-bitmap instead stays
// authoritative on its owning node and is queried there.
type Pusher struct {
	// Source produces the snapshot to ship — typically
	// (*server.Server).Store().MarshalBinary.
	Source func() ([]byte, error)
	// Target is the aggregator's client (give it WithRetry; a push is a
	// background transfer, patience is free).
	Target *server.Client
	// Interval between pushes; Run requires it > 0.
	Interval time.Duration
	// BackoffBase seeds the retry delay after a failed push: the same
	// bounded-exponential shape as server.WithRetry (base, 2·base,
	// 4·base, ...), jittered, instead of waiting a full Interval while
	// the aggregator is down. 0 means one second.
	BackoffBase time.Duration
	// BackoffMax caps the exponential delay. 0 means max(Interval, base):
	// a dead aggregator never gets probed slower than the normal cadence.
	BackoffMax time.Duration
	// Logf, when non-nil, receives one line per push outcome.
	Logf func(format string, args ...any)

	pushes     atomic.Int64
	pushedKeys atomic.Int64
	failures   atomic.Int64
}

// PushOnce snapshots the source and merges it into the target now.
func (p *Pusher) PushOnce(ctx context.Context) (server.MergeResult, error) {
	blob, err := p.Source()
	if err != nil {
		p.failures.Add(1)
		return server.MergeResult{}, fmt.Errorf("cluster: push snapshot: %w", err)
	}
	res, err := p.Target.Merge(ctx, blob)
	if err != nil {
		p.failures.Add(1)
		return server.MergeResult{}, fmt.Errorf("cluster: push to %s: %w", p.Target.Base(), err)
	}
	p.pushes.Add(1)
	p.pushedKeys.Add(int64(res.KeysMerged))
	return res, nil
}

// Run pushes on every Interval tick until ctx is done. A failed push is
// logged and retried on a bounded exponential backoff with jitter (so a
// briefly-down aggregator is re-probed quickly without a thundering herd
// of edges re-converging in lockstep); a success resumes the normal
// cadence. The aggregator being down must not take the edge node's
// counting down with it — snapshots are cumulative, so the next success
// heals the whole gap.
func (p *Pusher) Run(ctx context.Context) {
	fails := 0
	timer := time.NewTimer(p.Interval)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			if res, err := p.PushOnce(ctx); err != nil {
				fails++
				delay := p.backoff(fails)
				if p.Logf != nil {
					p.Logf("snapshot push: %v (retry %d in %v)", err, fails, delay.Round(time.Millisecond))
				}
				timer.Reset(delay)
			} else {
				fails = 0
				if p.Logf != nil {
					p.Logf("snapshot push: %d keys merged into %s", res.KeysMerged, p.Target.Base())
				}
				timer.Reset(p.Interval)
			}
		}
	}
}

// backoff returns the delay before retry number fails (1-based):
// base<<(fails-1) capped at BackoffMax, then jittered uniformly into
// [d/2, d] so a fleet of edges losing the aggregator together doesn't
// retry in lockstep.
func (p *Pusher) backoff(fails int) time.Duration {
	base := p.BackoffBase
	if base <= 0 {
		base = time.Second
	}
	max := p.BackoffMax
	if max <= 0 {
		max = p.Interval
	}
	if max < base {
		max = base
	}
	d := base
	for i := 1; i < fails && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + rand.N(half+1)
}

// Pushes, PushedKeys, Failures report the pusher's lifetime counters.
func (p *Pusher) Pushes() int64     { return p.pushes.Load() }
func (p *Pusher) PushedKeys() int64 { return p.pushedKeys.Load() }
func (p *Pusher) Failures() int64   { return p.failures.Load() }
