package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// Pusher is the edge half of the edge→aggregator topology: on a timer it
// snapshots an edge node's whole store and ships it to the aggregator's
// /v1/merge, which key-wise unions mergeable kinds into the central
// view. Snapshots are bit-identical by construction (same Spec, same
// seed), so a push is a pure set union — re-pushing the same state is
// idempotent, and a missed interval is healed by the next one.
//
// Only mergeable kinds can aggregate (the S-bitmap refuses with a typed
// not_mergeable error); under partitioning the S-bitmap instead stays
// authoritative on its owning node and is queried there.
type Pusher struct {
	// Source produces the snapshot to ship — typically
	// (*server.Server).Store().MarshalBinary.
	Source func() ([]byte, error)
	// Target is the aggregator's client (give it WithRetry; a push is a
	// background transfer, patience is free).
	Target *server.Client
	// Interval between pushes; Run requires it > 0.
	Interval time.Duration
	// Logf, when non-nil, receives one line per push outcome.
	Logf func(format string, args ...any)

	pushes     atomic.Int64
	pushedKeys atomic.Int64
	failures   atomic.Int64
}

// PushOnce snapshots the source and merges it into the target now.
func (p *Pusher) PushOnce(ctx context.Context) (server.MergeResult, error) {
	blob, err := p.Source()
	if err != nil {
		p.failures.Add(1)
		return server.MergeResult{}, fmt.Errorf("cluster: push snapshot: %w", err)
	}
	res, err := p.Target.Merge(ctx, blob)
	if err != nil {
		p.failures.Add(1)
		return server.MergeResult{}, fmt.Errorf("cluster: push to %s: %w", p.Target.Base(), err)
	}
	p.pushes.Add(1)
	p.pushedKeys.Add(int64(res.KeysMerged))
	return res, nil
}

// Run pushes on every Interval tick until ctx is done. A failed push is
// logged and retried at the next tick — the aggregator being down must
// not take the edge node's counting down with it.
func (p *Pusher) Run(ctx context.Context) {
	tick := time.NewTicker(p.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if res, err := p.PushOnce(ctx); err != nil {
				if p.Logf != nil {
					p.Logf("snapshot push: %v", err)
				}
			} else if p.Logf != nil {
				p.Logf("snapshot push: %d keys merged into %s", res.KeysMerged, p.Target.Base())
			}
		}
	}
}

// Pushes, PushedKeys, Failures report the pusher's lifetime counters.
func (p *Pusher) Pushes() int64     { return p.pushes.Load() }
func (p *Pusher) PushedKeys() int64 { return p.pushedKeys.Load() }
func (p *Pusher) Failures() int64   { return p.failures.Load() }
