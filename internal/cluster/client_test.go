package cluster

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/server"
)

func entries(pairs ...any) []server.Entry {
	out := make([]server.Entry, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, server.Entry{Key: pairs[i].(string), Estimate: pairs[i+1].(float64)})
	}
	return out
}

// mergeTopK must reproduce the exact order a single Store's TopK uses:
// estimate descending, ties by ascending key — including across lists.
func TestMergeTopK(t *testing.T) {
	cases := []struct {
		name  string
		lists [][]server.Entry
		k     int
		want  []server.Entry
	}{
		{
			name:  "disjoint",
			lists: [][]server.Entry{entries("a", 5.0, "c", 1.0), entries("b", 3.0)},
			k:     3,
			want:  entries("a", 5.0, "b", 3.0, "c", 1.0),
		},
		{
			name:  "ties break by ascending key across peers",
			lists: [][]server.Entry{entries("b", 2.0), entries("a", 2.0, "z", 2.0)},
			k:     3,
			want:  entries("a", 2.0, "b", 2.0, "z", 2.0),
		},
		{
			name:  "k truncates",
			lists: [][]server.Entry{entries("a", 5.0, "b", 4.0), entries("c", 4.5)},
			k:     2,
			want:  entries("a", 5.0, "c", 4.5),
		},
		{
			name:  "duplicate key keeps larger estimate",
			lists: [][]server.Entry{entries("a", 5.0), entries("a", 3.0, "b", 1.0)},
			k:     3,
			want:  entries("a", 5.0, "b", 1.0),
		},
		{
			name:  "empty and nil lists",
			lists: [][]server.Entry{nil, entries("a", 1.0), {}},
			k:     5,
			want:  entries("a", 1.0),
		},
	}
	for _, tc := range cases {
		if got := mergeTopK(tc.lists, tc.k); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// Sharding a ranked key set over ring partitions and merging the
// per-partition top-k must equal the unsharded ranking — the exhaustive
// twin check, free of HTTP.
func TestMergeTopKAgainstFlatRanking(t *testing.T) {
	r, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var flat []server.Entry
	lists := make([][]server.Entry, 3)
	for i := 0; i < 500; i++ {
		e := server.Entry{Key: fmt.Sprintf("user-%04d", i), Estimate: float64(i % 37)} // many ties
		flat = append(flat, e)
		lists[r.Owner(e.Key)] = append(lists[r.Owner(e.Key)], e)
	}
	byRank := func(s []server.Entry) {
		sort.Slice(s, func(a, b int) bool {
			if s[a].Estimate != s[b].Estimate {
				return s[a].Estimate > s[b].Estimate
			}
			return s[a].Key < s[b].Key
		})
	}
	byRank(flat)
	for _, l := range lists {
		byRank(l)
	}
	for _, k := range []int{1, 7, 100, 500, 1000} {
		got := mergeTopK(lists, k)
		want := flat[:min(k, len(flat))]
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: merged ranking diverges from flat ranking (got %d entries, first %v)", k, len(got), got[0])
		}
	}
}
