// Package cluster turns N sketchd processes into one logical counting
// service — the paper's Section 7 deployment (many edge monitors, one
// central view) as a real topology instead of a manual merge.
//
// Three pieces:
//
//   - Ring: a consistent-hash ring over a static peer list. Placement is
//     a pure function of (peer list, key), so every client and server
//     that agrees on the peer list agrees on which node owns which key —
//     no coordination service, no routing table to ship.
//   - Client: a cluster-aware face over the per-node typed client. Add
//     frames are partitioned by key owner and routed; estimate goes to
//     the owner; top-k, stats, and health scatter-gather across the ring
//     (k-way merge for top-k). A dead peer degrades the answer
//     (Partial=true + who was unreachable) instead of failing it.
//   - Pusher: the edge→aggregator half. An edge node periodically ships
//     its whole-store snapshot to an aggregator, which key-wise unions
//     mergeable kinds into the central view.
//
// Partitioning is what keeps the S-bitmap (not mergeable across
// differing sketch states) exact in a cluster: every key lives on
// exactly one owner, so its sketch is the same bit-identical object a
// single process would hold, and cluster reads equal single-node reads.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// DefaultVirtualNodes is the per-peer virtual-node count when NewRing is
// given 0: enough points that the largest partition is within a few
// percent of the mean for small clusters.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over a static peer list. Immutable
// after construction; safe for concurrent use.
type Ring struct {
	peers  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	peer int // index into peers
}

// NewRing builds a ring over peers (base URLs, order significant only
// for reporting — placement depends on the set of strings, not their
// order). vnodes is the virtual-node count per peer; 0 means
// DefaultVirtualNodes.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(peers))
	r := &Ring{
		peers:  append([]string(nil), peers...),
		points: make([]ringPoint, 0, len(peers)*vnodes),
	}
	for i, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer at index %d", i)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		for v := 0; v < vnodes; v++ {
			// The vnode hash folds the replica index into the peer name's
			// hash and finalizes through a full-avalanche mixer — raw
			// FNV over near-identical inputs clusters badly on the ring.
			h := xrand.Mix64(fnv64a(p) + uint64(v)*0x9e3779b97f4a7c15)
			r.points = append(r.points, ringPoint{hash: h, peer: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by peer name so placement
		// stays independent of peer-list order.
		return r.peers[r.points[a].peer] < r.peers[r.points[b].peer]
	})
	return r, nil
}

// Peers returns the peer list the ring was built over.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the index (into Peers) of the peer owning key: the first
// ring point at or after the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) int {
	h := xrand.Mix64(fnv64a(key))
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return pts[i].peer
}

// OwnerPeer returns the base URL of the peer owning key.
func (r *Ring) OwnerPeer(key string) string { return r.peers[r.Owner(key)] }

// Partition splits a record batch by owner: out[p] lists the indices of
// keys owned by peer p, in input order. The sub-batches preserve record
// order within a peer, so a partitioned ingest applies each node's
// records in the same sequence a single node would have seen them.
func (r *Ring) Partition(keys []string) [][]int {
	out := make([][]int, len(r.peers))
	if len(keys) == 0 {
		return out
	}
	// Count first so each peer's index slice is allocated exactly once.
	counts := make([]int, len(r.peers))
	owners := make([]int, len(keys))
	for i, k := range keys {
		o := r.Owner(k)
		owners[i] = o
		counts[o]++
	}
	for p, n := range counts {
		if n > 0 {
			out[p] = make([]int, 0, n)
		}
	}
	for i, o := range owners {
		out[o] = append(out[o], i)
	}
	return out
}

// fnv64a is FNV-1a over a string; ring hashes finalize it through
// xrand.Mix64 for avalanche. Stable across processes and builds by
// construction (pure arithmetic), which is the property that lets
// clients and servers agree on ownership without talking to each other.
// Deliberately NOT the sketches' hash family: ring placement and item
// hashing must be uncorrelated.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
