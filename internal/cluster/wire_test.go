package cluster

import (
	"context"
	"encoding"
	"net"
	"testing"
	"time"

	sbitmap "repro"
	"repro/internal/server"
	"repro/internal/wire"
)

// startWireCluster boots n peers each serving HTTP and a wire listener,
// and returns a cluster client routing ingest over the wire transport.
func startWireCluster(t *testing.T, n int, spec sbitmap.Spec) ([]*node, *Client) {
	t.Helper()
	nodes := make([]*node, n)
	peers := make([]string, n)
	wireAddrs := make(map[string]string, n)
	for i := range nodes {
		nodes[i] = startNode(t, server.Config{Spec: spec})
		peers[i] = nodes[i].base()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ws := wire.Serve(ln, nodes[i].srv)
		t.Cleanup(func() { ws.Close() })
		wireAddrs[peers[i]] = ln.Addr().String()
	}
	cl, err := New(peers, WithRetry(1, 5*time.Millisecond), WithWireIngest(wireAddrs))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return nodes, cl
}

// TestClusterWireIngestBitIdentical: the same partitioned workload
// through wire-transport ingest and through HTTP ingest must leave every
// peer's store bit-identical — WithWireIngest changes the transport, not
// the placement or the counting.
func TestClusterWireIngestBitIdentical(t *testing.T) {
	spec := sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=5")
	wireNodes, wireCl := startWireCluster(t, 3, spec)
	httpNodes, httpCl := startCluster(t, 3, spec)

	keys, items := clusterWorkload(120, 40, 7)
	ctx := context.Background()
	for at := 0; at < len(keys); at += 997 { // uneven batches
		end := min(at+997, len(keys))
		wres, err := wireCl.AddBatch64(ctx, keys[at:end], items[at:end])
		if err != nil {
			t.Fatal(err)
		}
		hres, err := httpCl.AddBatch64(ctx, keys[at:end], items[at:end])
		if err != nil {
			t.Fatal(err)
		}
		if wres.Partial || hres.Partial {
			t.Fatalf("degraded mid-test: wire=%v http=%v", wres.Unreachable, hres.Unreachable)
		}
		if wres.Changed != hres.Changed || wres.Records != hres.Records {
			t.Fatalf("batch at %d: wire (%d rec, %d changed) vs http (%d rec, %d changed)",
				at, wres.Records, wres.Changed, hres.Records, hres.Changed)
		}
	}
	// String items exercise the second frame type end to end.
	strKeys := []string{"user-00001", "user-00002", "user-00001"}
	strItems := []string{"a", "b", "c"}
	if _, err := wireCl.AddBatchString(ctx, strKeys, strItems); err != nil {
		t.Fatal(err)
	}
	if _, err := httpCl.AddBatchString(ctx, strKeys, strItems); err != nil {
		t.Fatal(err)
	}

	// Ring placement is identical (same peer count ≠ same URLs, so compare
	// via the union of per-key counter state across the cluster).
	wireState := clusterState(t, wireNodes)
	httpState := clusterState(t, httpNodes)
	if len(wireState) != len(httpState) {
		t.Fatalf("key counts differ: %d vs %d", len(wireState), len(httpState))
	}
	for k, hb := range httpState {
		wb, ok := wireState[k]
		if !ok {
			t.Fatalf("key %q missing from wire-ingested cluster", k)
		}
		if string(wb) != string(hb) {
			t.Fatalf("key %q: counter state diverged between transports", k)
		}
	}

	// And the reads agree through the normal HTTP query path.
	for _, k := range []string{"user-00000", "user-00050", "user-00119"} {
		we, wok, err := wireCl.Estimate(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		he, hok, err := httpCl.Estimate(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if !wok || !hok || we != he {
			t.Fatalf("key %q: wire estimate %v (%v), http %v (%v)", k, we, wok, he, hok)
		}
	}
}

// clusterState unions per-key marshaled counter state across all peers.
func clusterState(t *testing.T, nodes []*node) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, n := range nodes {
		n.srv.Store().ForEach(func(k string, c sbitmap.Counter) bool {
			if _, dup := out[k]; dup {
				t.Fatalf("key %q owned by two peers", k)
			}
			blob, err := c.(encoding.BinaryMarshaler).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			out[k] = blob
			return true
		})
	}
	return out
}

// TestClusterWireFallbackUnmapped: peers without a wire mapping keep
// using HTTP within the same client — mixed transports in one ring.
func TestClusterWireFallbackUnmapped(t *testing.T) {
	spec := sbitmap.MustSpec("sbitmap:n=1e4,eps=0.1,seed=5")
	nodes := make([]*node, 2)
	peers := make([]string, 2)
	for i := range nodes {
		nodes[i] = startNode(t, server.Config{Spec: spec})
		peers[i] = nodes[i].base()
	}
	// Only peer 0 gets a wire listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := wire.Serve(ln, nodes[0].srv)
	defer ws.Close()
	cl, err := New(peers, WithRetry(1, 5*time.Millisecond),
		WithWireIngest(map[string]string{peers[0]: ln.Addr().String()}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	keys, items := clusterWorkload(60, 10, 3)
	res, err := cl.AddBatch64(context.Background(), keys, items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Records != len(keys) {
		t.Fatalf("mixed-transport ingest: %+v", res)
	}
	if nodes[0].srv.Store().Len()+nodes[1].srv.Store().Len() != 60 {
		t.Fatalf("keys split %d/%d, want 60 total",
			nodes[0].srv.Store().Len(), nodes[1].srv.Store().Len())
	}
}
