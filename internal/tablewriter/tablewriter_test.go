package tablewriter

import (
	"strings"
	"testing"
)

func TestTextAlignment(t *testing.T) {
	tbl := New("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "22")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	// The value column must start at the same offset in both data rows.
	a := strings.Index(lines[3], "1")
	b := strings.Index(lines[4], "22")
	if a != b {
		t.Errorf("columns misaligned: %d vs %d\n%s", a, b, out)
	}
}

func TestAddRowPadding(t *testing.T) {
	tbl := New("", "a", "b")
	tbl.AddRow("only-one")
	tbl.AddRow("x", "y", "z") // extends header
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	out := tbl.String()
	if !strings.Contains(out, "z") {
		t.Errorf("extended cell lost:\n%s", out)
	}
}

func TestAddRowf(t *testing.T) {
	tbl := New("", "n", "err")
	tbl.AddRowf(1000, 0.03345678)
	out := tbl.String()
	if !strings.Contains(out, "1000") || !strings.Contains(out, "0.03346") {
		t.Errorf("formatted cells wrong:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := New("ignored", "k", "v")
	tbl.AddRow(`plain`, `has,comma`)
	tbl.AddRow(`has"quote`, "has\nnewline")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "k,v\n") {
		t.Errorf("header line wrong: %s", out)
	}
}
