// Package tablewriter renders aligned text tables and CSV for the
// experiment harness — the medium through which the paper's tables are
// regenerated on a terminal.
package tablewriter

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells under a header and renders them
// aligned (text) or comma-separated (CSV).
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows extend the header with empty column names.
func (t *Table) AddRow(cells ...string) {
	for len(cells) > len(t.header) {
		t.header = append(t.header, "")
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v except float64, which uses %.4g.
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.4g", v)
		case string:
			out[i] = v
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells that
// contain commas, quotes, or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteText(&b)
	return b.String()
}
