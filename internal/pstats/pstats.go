// Package pstats provides sharded, cache-line-padded counters for hot
// write paths. A plain atomic.Int64 bounces its cache line between every
// core that increments it; under concurrent ingest the metrics counters
// become a contention point that has nothing to do with the work being
// counted. A pstats.Counter spreads increments over padded shards chosen
// by a caller-supplied affinity value and sums them on read — writes stay
// core-local, reads (rare: a /v1/stats call) pay a short scan.
//
// Affinity is any stable uintptr that distinguishes concurrent callers;
// the natural choice is the address of an object the caller already
// holds per-request or per-connection (a pooled scratch buffer, a conn
// handler). Using an existing heap pointer costs nothing — in particular
// it avoids the allocation that taking the address of a stack variable
// just for sharding would force.
package pstats

import "sync/atomic"

const (
	// shardShift sets the shard count (1<<shardShift). Eight padded
	// shards are enough to keep a handful of ingest cores from
	// colliding while keeping a Counter at half a KiB; the mapping is
	// hashed, so more concurrent writers than shards degrade gracefully
	// to sharing rather than failing.
	shardShift = 3
	numShards  = 1 << shardShift

	// cacheLine is the padding granularity: one shard per 64-byte line
	// so no two shards ever share a line.
	cacheLine = 64
)

type shard struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Counter is a monotone sharded counter. The zero value is ready to use;
// embed it by value. Safe for concurrent use.
type Counter struct {
	shards [numShards]shard
}

// slot hashes an affinity value onto a shard. Fibonacci multiplicative
// hashing on the high bits: pointer affinities differ mostly in their
// middle bits (same heap, same alignment), which a plain mask would
// ignore.
func slot(affinity uintptr) int {
	return int((uint64(affinity) * 0x9E3779B97F4A7C15) >> (64 - shardShift))
}

// Add folds d into the counter on the shard selected by affinity.
func (c *Counter) Add(affinity uintptr, d int64) {
	c.shards[slot(affinity)].v.Add(d)
}

// Load returns the counter's current total: the sum over all shards.
// Each shard is read atomically; concurrent Adds may or may not be
// included, exactly as with a single atomic counter.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}
