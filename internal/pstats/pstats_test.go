package pstats

import (
	"sync"
	"testing"
	"unsafe"
)

// TestCounterSum: increments land somewhere and Load sums them all, for
// affinities that hash to different shards and to the same one.
func TestCounterSum(t *testing.T) {
	var c Counter
	affs := make([]uintptr, 100)
	for i := range affs {
		affs[i] = uintptr(i * 1024) // spread over shards
	}
	var want int64
	for i, a := range affs {
		c.Add(a, int64(i))
		want += int64(i)
	}
	if got := c.Load(); got != want {
		t.Fatalf("Load() = %d, want %d", got, want)
	}
	c.Add(0, -want)
	if got := c.Load(); got != 0 {
		t.Fatalf("Load() after compensating add = %d, want 0", got)
	}
}

// TestCounterConcurrent hammers one Counter from many goroutines, each
// with its own heap-object affinity (the intended usage), and checks the
// exact total — run under -race this is also the data-race proof.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := new(int64) // stand-in for a pooled per-conn object
			aff := uintptr(unsafe.Pointer(scratch))
			for i := 0; i < perG; i++ {
				c.Add(aff, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("Load() = %d, want %d", got, goroutines*perG)
	}
}

// TestShardPadding pins the layout contract: each shard owns a full
// cache line, so two shards never false-share.
func TestShardPadding(t *testing.T) {
	if s := unsafe.Sizeof(shard{}); s != cacheLine {
		t.Fatalf("shard size = %d, want %d", s, cacheLine)
	}
	var c Counter
	if s := unsafe.Sizeof(c); s != cacheLine*numShards {
		t.Fatalf("Counter size = %d, want %d", s, cacheLine*numShards)
	}
}

// TestAddAllocFree: Add and Load on the hot path allocate nothing.
func TestAddAllocFree(t *testing.T) {
	var c Counter
	obj := new(int64)
	aff := uintptr(unsafe.Pointer(obj))
	if allocs := testing.AllocsPerRun(100, func() { c.Add(aff, 1) }); allocs != 0 {
		t.Errorf("Add: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { c.Load() }); allocs != 0 {
		t.Errorf("Load: %.1f allocs/op, want 0", allocs)
	}
}
