package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d, want 8", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	if !almostEqual(a.Var(), 4, 1e-12) {
		t.Errorf("Var = %v, want 4", a.Var())
	}
	if !almostEqual(a.Std(), 2, 1e-12) {
		t.Errorf("Std = %v, want 2", a.Std())
	}
	if !almostEqual(a.SampleVar(), 32.0/7, 1e-12) {
		t.Errorf("SampleVar = %v, want 32/7", a.SampleVar())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.SampleVar() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestAccumulatorMergeEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n1, n2 := 1+r.Intn(100), 1+r.Intn(100)
		var all, a, b Accumulator
		for i := 0; i < n1; i++ {
			x := r.NormFloat64() * 10
			all.Add(x)
			a.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := r.NormFloat64()*3 + 5
			all.Add(x)
			b.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Var(), all.Var(), 1e-9) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	a.Add(3)
	before := a
	a.Merge(&b) // merging empty is a no-op
	if a != before {
		t.Error("merge of empty changed accumulator")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 3 {
		t.Error("merge into empty did not copy")
	}
}

func TestErrorSummaryMetrics(t *testing.T) {
	var s ErrorSummary
	// Estimates 110 and 90 for truth 100: e = ±0.1.
	s.AddEstimate(110, 100)
	s.AddEstimate(90, 100)
	if !almostEqual(s.RRMSE(), 0.1, 1e-12) {
		t.Errorf("RRMSE = %v, want 0.1", s.RRMSE())
	}
	if !almostEqual(s.L1(), 0.1, 1e-12) {
		t.Errorf("L1 = %v, want 0.1", s.L1())
	}
	if !almostEqual(s.Bias(), 0, 1e-12) {
		t.Errorf("Bias = %v, want 0", s.Bias())
	}
	if !almostEqual(s.QuantileAbs(1), 0.1, 1e-12) {
		t.Errorf("QuantileAbs(1) = %v, want 0.1", s.QuantileAbs(1))
	}
	if got := s.ExceedFraction(0.05); got != 1 {
		t.Errorf("ExceedFraction(0.05) = %v, want 1", got)
	}
	if got := s.ExceedFraction(0.15); got != 0 {
		t.Errorf("ExceedFraction(0.15) = %v, want 0", got)
	}
	if s.N() != 2 {
		t.Errorf("N = %d, want 2", s.N())
	}
}

func TestErrorSummaryEmptyNaN(t *testing.T) {
	var s ErrorSummary
	for name, v := range map[string]float64{
		"RRMSE": s.RRMSE(), "L1": s.L1(), "Bias": s.Bias(),
		"QuantileAbs": s.QuantileAbs(0.5), "Exceed": s.ExceedFraction(0.1),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty summary = %v, want NaN", name, v)
		}
	}
}

func TestErrorSummaryPanicsOnBadTruth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n <= 0")
		}
	}()
	var s ErrorSummary
	s.AddEstimate(5, 0)
}

func TestQuantileKnownValues(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(data, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{42}, 0.73); got != 42 {
		t.Errorf("single-element quantile = %v, want 42", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	data := []float64{3, 1, 2}
	Quantile(data, 0.5)
	if data[0] != 3 || data[1] != 1 || data[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilesSorted(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	got := QuantilesSorted(data, 0, 0.5, 1)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("QuantilesSorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		func() { QuantilesSorted([]float64{}, 0.5) },
		func() { QuantilesSorted([]float64{1}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuantileMedianProperty(t *testing.T) {
	// Median of uniform [0,1) samples should be near 0.5.
	r := xrand.New(9)
	data := make([]float64, 10001)
	for i := range data {
		data[i] = r.Float64()
	}
	if med := Quantile(data, 0.5); math.Abs(med-0.5) > 0.02 {
		t.Errorf("median of uniform = %v, want 0.5±0.02", med)
	}
}

func TestLog2Histogram(t *testing.T) {
	h := NewLog2Histogram()
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 1000} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if h.Underflow() != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow())
	}
	wantCounts := map[int]int{0: 2, 1: 2, 2: 1, 9: 1}
	for e, want := range wantCounts {
		if got := h.Count(e); got != want {
			t.Errorf("Count(%d) = %d, want %d", e, got, want)
		}
	}
	exps, counts := h.Bins()
	if len(exps) != 4 || exps[0] != 0 || exps[3] != 9 {
		t.Errorf("Bins exps = %v", exps)
	}
	sum := h.Underflow()
	for _, c := range counts {
		sum += c
	}
	if sum != h.Total() {
		t.Errorf("bin counts sum to %d, want %d", sum, h.Total())
	}
}

func TestRRMSEMatchesTheory(t *testing.T) {
	// For estimates n*(1+eps*Z) with standard normal Z, RRMSE should
	// converge to eps.
	r := xrand.New(21)
	var s ErrorSummary
	const eps = 0.05
	for i := 0; i < 100000; i++ {
		s.AddEstimate(1000*(1+eps*r.NormFloat64()), 1000)
	}
	if got := s.RRMSE(); math.Abs(got-eps)/eps > 0.02 {
		t.Errorf("RRMSE = %v, want %v±2%%", got, eps)
	}
	// L1 of a normal is eps*sqrt(2/pi).
	wantL1 := eps * math.Sqrt(2/math.Pi)
	if got := s.L1(); math.Abs(got-wantL1)/wantL1 > 0.02 {
		t.Errorf("L1 = %v, want %v±2%%", got, wantL1)
	}
	// 99% quantile of |N(0,eps)| is eps*2.5758.
	want99 := eps * 2.5758
	if got := s.QuantileAbs(0.99); math.Abs(got-want99)/want99 > 0.05 {
		t.Errorf("99%% quantile = %v, want %v±5%%", got, want99)
	}
}
