// Package stats provides the statistical machinery used by the evaluation:
// streaming moment accumulators, the error metrics the paper reports
// (RRMSE/L2, L1, and error quantiles, Tables 3-4), empirical quantile
// estimation, base-2 histograms (Figure 7), and the exceedance curves
// ("proportion of estimates with |relative error| above a threshold") of
// Figures 6 and 8.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator tracks count, mean, and variance of a stream of observations
// using Welford's numerically stable online algorithm.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the population variance (dividing by n, matching the paper's
// plug-in mean-square definitions). Returns 0 for fewer than 1 observation.
func (a *Accumulator) Var() float64 {
	if a.n < 1 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// SampleVar returns the unbiased sample variance (dividing by n-1).
func (a *Accumulator) SampleVar() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the population standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// Min and Max return the extrema (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds o into a, as if all of o's observations had been Added.
func (a *Accumulator) Merge(o *Accumulator) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *o
		return
	}
	n := a.n + o.n
	delta := o.mean - a.mean
	mean := a.mean + delta*float64(o.n)/float64(n)
	m2 := a.m2 + o.m2 + delta*delta*float64(a.n)*float64(o.n)/float64(n)
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// ErrorSummary aggregates the relative estimation errors e_i = n̂_i/n − 1
// across replicates of one (algorithm, cardinality) cell, producing every
// metric the paper's tables report.
type ErrorSummary struct {
	relErrs []float64
}

// AddEstimate records one estimate for true cardinality n > 0.
func (s *ErrorSummary) AddEstimate(estimate, n float64) {
	if n <= 0 {
		panic("stats: AddEstimate with non-positive true cardinality")
	}
	s.relErrs = append(s.relErrs, estimate/n-1)
}

// AddRelErr records a pre-computed relative error.
func (s *ErrorSummary) AddRelErr(e float64) { s.relErrs = append(s.relErrs, e) }

// N returns the number of recorded replicates.
func (s *ErrorSummary) N() int { return len(s.relErrs) }

// RRMSE returns sqrt(mean(e^2)), the paper's L2 metric Re(n̂).
func (s *ErrorSummary) RRMSE() float64 {
	if len(s.relErrs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, e := range s.relErrs {
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(s.relErrs)))
}

// L1 returns mean(|e|), the paper's L1 metric E|n̂/n − 1|.
func (s *ErrorSummary) L1() float64 {
	if len(s.relErrs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, e := range s.relErrs {
		sum += math.Abs(e)
	}
	return sum / float64(len(s.relErrs))
}

// Bias returns mean(e), which should be ≈ 0 for an unbiased estimator.
func (s *ErrorSummary) Bias() float64 {
	if len(s.relErrs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, e := range s.relErrs {
		sum += e
	}
	return sum / float64(len(s.relErrs))
}

// QuantileAbs returns the q-quantile (0 ≤ q ≤ 1) of |e|; the paper's tables
// use q = 0.99.
func (s *ErrorSummary) QuantileAbs(q float64) float64 {
	if len(s.relErrs) == 0 {
		return math.NaN()
	}
	abs := make([]float64, len(s.relErrs))
	for i, e := range s.relErrs {
		abs[i] = math.Abs(e)
	}
	return Quantile(abs, q)
}

// ExceedFraction returns the fraction of replicates with |e| > threshold —
// one point of the Figure 6/8 curves.
func (s *ErrorSummary) ExceedFraction(threshold float64) float64 {
	if len(s.relErrs) == 0 {
		return math.NaN()
	}
	count := 0
	for _, e := range s.relErrs {
		if math.Abs(e) > threshold {
			count++
		}
	}
	return float64(count) / float64(len(s.relErrs))
}

// Quantile returns the q-quantile of data using linear interpolation
// between order statistics (type 7, the R/NumPy default). data is not
// modified. It panics if data is empty or q is outside [0, 1].
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		panic("stats: Quantile of empty data")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantilesSorted returns the quantiles qs of data, sorting it once.
// data IS modified (sorted in place).
func QuantilesSorted(data []float64, qs ...float64) []float64 {
	if len(data) == 0 {
		panic("stats: QuantilesSorted of empty data")
	}
	sort.Float64s(data)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
		}
		out[i] = quantileSorted(data, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Log2Histogram counts observations into power-of-two bins, reproducing the
// presentation of Figure 7 ("Number of flows (log base 2)"). Bin k covers
// [2^k, 2^(k+1)); values below 1 land in bin 0's underflow counter.
type Log2Histogram struct {
	bins      map[int]int
	underflow int
	total     int
}

// NewLog2Histogram returns an empty histogram.
func NewLog2Histogram() *Log2Histogram {
	return &Log2Histogram{bins: make(map[int]int)}
}

// Add records v.
func (h *Log2Histogram) Add(v float64) {
	h.total++
	if v < 1 {
		h.underflow++
		return
	}
	h.bins[int(math.Floor(math.Log2(v)))]++
}

// Total returns the number of observations.
func (h *Log2Histogram) Total() int { return h.total }

// Underflow returns the count of observations below 1.
func (h *Log2Histogram) Underflow() int { return h.underflow }

// Bins returns (exponent, count) pairs sorted by exponent.
func (h *Log2Histogram) Bins() (exps []int, counts []int) {
	for e := range h.bins {
		exps = append(exps, e)
	}
	sort.Ints(exps)
	counts = make([]int, len(exps))
	for i, e := range exps {
		counts[i] = h.bins[e]
	}
	return exps, counts
}

// Count returns the count of bin with exponent e.
func (h *Log2Histogram) Count(e int) int { return h.bins[e] }
