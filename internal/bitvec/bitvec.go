// Package bitvec implements the packed bit vectors underlying every bitmap
// sketch in this repository (basic bitmap, linear counting, virtual bitmap,
// multiresolution bitmap, and the S-bitmap itself).
//
// A Vector is a fixed-length sequence of bits stored 64 per word. Besides
// get/set it provides the operations the sketches need: a maintained
// population count, rank queries, union/intersection for mergeable sketches,
// and a compact binary serialization.
package bitvec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"unsafe"
)

// Vector is a fixed-length bit vector. The zero value is an empty vector of
// length 0; use New for a sized one.
type Vector struct {
	words []uint64
	n     int // length in bits
	ones  int // maintained population count
}

// New returns a vector of n zero bits. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Make returns a vector of n bits over caller-supplied backing words, for
// slab allocators that carve many identically sized vectors out of one
// array. words must hold exactly (n+63)/64 all-zero words; the vector owns
// them afterwards. The capacity is clipped to the length so the vector can
// never write (or account, via Footprint) beyond its slab slot.
func Make(words []uint64, n int) Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	if len(words) != (n+63)/64 {
		panic(fmt.Sprintf("bitvec: Make with %d words for %d bits (want %d)", len(words), n, (n+63)/64))
	}
	return Vector{words: words[:len(words):len(words)], n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Ones returns the number of set bits. It is maintained incrementally and
// costs O(1).
func (v *Vector) Ones() int { return v.ones }

// Zeros returns the number of clear bits.
func (v *Vector) Zeros() int { return v.n - v.ones }

// Get reports whether bit i is set. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i and reports whether the bit was previously clear (i.e.
// whether the vector changed). It panics if i is out of range.
func (v *Vector) Set(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	mask := uint64(1) << (uint(i) & 63)
	w := &v.words[i>>6]
	if *w&mask != 0 {
		return false
	}
	*w |= mask
	v.ones++
	return true
}

// GetUnchecked reports whether bit i is set, without the range check of
// Get: the caller must have proven 0 ≤ i < Len(). The sketches' batch
// ingestion paths use it for indexes produced by a multiply-shift onto the
// vector length — in range by construction, proven once per batch rather
// than re-checked per probe. Public callers should use Get.
func (v *Vector) GetUnchecked(i int) bool {
	return v.words[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// SetUnchecked is Set without the range check of Set; the caller must have
// proven 0 ≤ i < Len() (see GetUnchecked). It reports whether the bit was
// previously clear.
func (v *Vector) SetUnchecked(i int) bool {
	mask := uint64(1) << (uint(i) & 63)
	w := &v.words[uint(i)>>6]
	if *w&mask != 0 {
		return false
	}
	*w |= mask
	v.ones++
	return true
}

// Clear clears bit i and reports whether the bit was previously set.
func (v *Vector) Clear(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	mask := uint64(1) << (uint(i) & 63)
	w := &v.words[i>>6]
	if *w&mask == 0 {
		return false
	}
	*w &^= mask
	v.ones--
	return true
}

// Reset clears every bit.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
	v.ones = 0
}

// Rank returns the number of set bits in [0, i). Rank(Len()) == Ones().
func (v *Vector) Rank(i int) int {
	if i < 0 || i > v.n {
		panic(fmt.Sprintf("bitvec: rank index %d out of range [0,%d]", i, v.n))
	}
	full := i >> 6
	count := 0
	for _, w := range v.words[:full] {
		count += bits.OnesCount64(w)
	}
	if rem := uint(i) & 63; rem != 0 {
		count += bits.OnesCount64(v.words[full] & (1<<rem - 1))
	}
	return count
}

// CountRange returns the number of set bits in [lo, hi).
func (v *Vector) CountRange(lo, hi int) int {
	if lo > hi {
		panic("bitvec: CountRange with lo > hi")
	}
	return v.Rank(hi) - v.Rank(lo)
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := &Vector{words: make([]uint64, len(v.words)), n: v.n, ones: v.ones}
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and o have identical length and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// UnionWith ORs o into v. The vectors must have equal length.
func (v *Vector) UnionWith(o *Vector) error {
	if v.n != o.n {
		return fmt.Errorf("bitvec: union of unequal lengths %d and %d", v.n, o.n)
	}
	ones := 0
	for i := range v.words {
		v.words[i] |= o.words[i]
		ones += bits.OnesCount64(v.words[i])
	}
	v.ones = ones
	return nil
}

// IntersectWith ANDs o into v. The vectors must have equal length.
func (v *Vector) IntersectWith(o *Vector) error {
	if v.n != o.n {
		return fmt.Errorf("bitvec: intersection of unequal lengths %d and %d", v.n, o.n)
	}
	ones := 0
	for i := range v.words {
		v.words[i] &= o.words[i]
		ones += bits.OnesCount64(v.words[i])
	}
	v.ones = ones
	return nil
}

// String renders short vectors as a 0/1 string (LSB first) and summarizes
// long ones.
func (v *Vector) String() string {
	if v.n <= 128 {
		buf := make([]byte, v.n)
		for i := 0; i < v.n; i++ {
			if v.Get(i) {
				buf[i] = '1'
			} else {
				buf[i] = '0'
			}
		}
		return string(buf)
	}
	return fmt.Sprintf("bitvec(len=%d, ones=%d)", v.n, v.ones)
}

// marshalMagic guards serialized vectors against format drift.
const marshalMagic = uint32(0xb17c0de1)

// MarshalBinary implements encoding.BinaryMarshaler.
func (v *Vector) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 12+8*len(v.words))
	buf = binary.LittleEndian.AppendUint32(buf, marshalMagic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(v.n))
	for _, w := range v.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return errors.New("bitvec: truncated header")
	}
	if binary.LittleEndian.Uint32(data) != marshalMagic {
		return errors.New("bitvec: bad magic")
	}
	n := binary.LittleEndian.Uint64(data[4:])
	if n > 1<<40 {
		return fmt.Errorf("bitvec: implausible length %d", n)
	}
	nw := (int(n) + 63) / 64
	if len(data) != 12+8*nw {
		return fmt.Errorf("bitvec: body length %d, want %d", len(data)-12, 8*nw)
	}
	words := make([]uint64, nw)
	ones := 0
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[12+8*i:])
		ones += bits.OnesCount64(words[i])
	}
	// Reject set bits beyond the declared length (would corrupt Ones).
	if rem := n & 63; rem != 0 && nw > 0 {
		if words[nw-1]>>(rem) != 0 {
			return errors.New("bitvec: set bits beyond declared length")
		}
	}
	v.words, v.n, v.ones = words, int(n), ones
	return nil
}

// SizeBits returns the memory footprint of the bit storage itself, in bits.
// This is the quantity the paper's memory accounting uses (it excludes Go
// object headers, as the paper excludes hash seeds).
func (v *Vector) SizeBits() int { return v.n }

// Footprint returns the vector's resident process memory in bytes: the
// struct plus the backing word array at capacity. Unlike SizeBits it counts
// what the process actually holds, not just the abstract bit count.
func (v *Vector) Footprint() int { return int(unsafe.Sizeof(*v)) + 8*cap(v.words) }
