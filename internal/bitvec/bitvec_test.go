package bitvec

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewEmpty(t *testing.T) {
	v := New(0)
	if v.Len() != 0 || v.Ones() != 0 || v.Zeros() != 0 {
		t.Errorf("empty vector: len=%d ones=%d zeros=%d", v.Len(), v.Ones(), v.Zeros())
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	if !v.Set(63) {
		t.Error("Set(63) on fresh vector returned false")
	}
	if v.Set(63) {
		t.Error("second Set(63) returned true")
	}
	if !v.Get(63) {
		t.Error("Get(63) false after Set")
	}
	if v.Get(64) {
		t.Error("Get(64) true without Set")
	}
	if v.Ones() != 1 || v.Zeros() != 199 {
		t.Errorf("ones=%d zeros=%d after one set", v.Ones(), v.Zeros())
	}
	if !v.Clear(63) {
		t.Error("Clear(63) returned false")
	}
	if v.Clear(63) {
		t.Error("second Clear(63) returned true")
	}
	if v.Ones() != 0 {
		t.Errorf("ones=%d after clear", v.Ones())
	}
}

func TestOnesMatchesBruteForce(t *testing.T) {
	r := xrand.New(1)
	v := New(1000)
	ref := make(map[int]bool)
	for step := 0; step < 5000; step++ {
		i := r.Intn(1000)
		if r.Uint64()&1 == 0 {
			v.Set(i)
			ref[i] = true
		} else {
			v.Clear(i)
			delete(ref, i)
		}
	}
	if v.Ones() != len(ref) {
		t.Fatalf("maintained ones=%d, brute force=%d", v.Ones(), len(ref))
	}
	for i := 0; i < 1000; i++ {
		if v.Get(i) != ref[i] {
			t.Fatalf("bit %d disagrees with reference", i)
		}
	}
}

func TestRank(t *testing.T) {
	v := New(300)
	set := []int{0, 1, 63, 64, 65, 128, 299}
	for _, i := range set {
		v.Set(i)
	}
	cases := []struct{ i, want int }{
		{0, 0}, {1, 1}, {2, 2}, {63, 2}, {64, 3}, {65, 4}, {66, 5},
		{128, 5}, {129, 6}, {299, 6}, {300, 7},
	}
	for _, c := range cases {
		if got := v.Rank(c.i); got != c.want {
			t.Errorf("Rank(%d) = %d, want %d", c.i, got, c.want)
		}
	}
	if v.Rank(v.Len()) != v.Ones() {
		t.Error("Rank(Len) != Ones")
	}
	if got := v.CountRange(64, 129); got != 3 {
		t.Errorf("CountRange(64,129) = %d, want 3", got)
	}
}

func TestRankPropertyMatchesScan(t *testing.T) {
	f := func(seed uint64, idx uint16) bool {
		r := xrand.New(seed)
		v := New(500)
		for k := 0; k < 100; k++ {
			v.Set(r.Intn(500))
		}
		i := int(idx) % 501
		want := 0
		for j := 0; j < i; j++ {
			if v.Get(j) {
				want++
			}
		}
		return v.Rank(i) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(130), New(130)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(129)
	u := a.Clone()
	if err := u.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	if u.Ones() != 3 || !u.Get(1) || !u.Get(100) || !u.Get(129) {
		t.Errorf("union wrong: %v", u)
	}
	i := a.Clone()
	if err := i.IntersectWith(b); err != nil {
		t.Fatal(err)
	}
	if i.Ones() != 1 || !i.Get(100) {
		t.Errorf("intersection wrong: %v", i)
	}
	if err := a.UnionWith(New(10)); err == nil {
		t.Error("union of unequal lengths did not error")
	}
	if err := a.IntersectWith(New(10)); err == nil {
		t.Error("intersection of unequal lengths did not error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(5)
	b := a.Clone()
	b.Set(6)
	if a.Get(6) {
		t.Error("mutating clone affected original")
	}
	if !b.Equal(b.Clone()) {
		t.Error("clone not equal to itself")
	}
	if a.Equal(b) {
		t.Error("distinct vectors compare equal")
	}
}

func TestReset(t *testing.T) {
	v := New(100)
	for i := 0; i < 100; i += 3 {
		v.Set(i)
	}
	v.Reset()
	if v.Ones() != 0 {
		t.Errorf("ones=%d after reset", v.Ones())
	}
	for i := 0; i < 100; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d still set after reset", i)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(500)
		v := New(n)
		for k := 0; k < n/2; k++ {
			v.Set(r.Intn(n))
		}
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var w Vector
		if err := w.UnmarshalBinary(data); err != nil {
			return false
		}
		return v.Equal(&w) && v.Ones() == w.Ones()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	v := New(70)
	v.Set(69)
	data, _ := v.MarshalBinary()

	var w Vector
	if err := w.UnmarshalBinary(data[:5]); err == nil {
		t.Error("truncated data accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if err := w.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic accepted")
	}
	short := append([]byte(nil), data[:len(data)-8]...)
	if err := w.UnmarshalBinary(short); err == nil {
		t.Error("short body accepted")
	}
	// Set a bit beyond the declared length (bit 70 of the last word).
	stray := append([]byte(nil), data...)
	stray[12+8] |= 1 << (70 - 64)
	if err := w.UnmarshalBinary(stray); err == nil {
		t.Error("stray bits beyond length accepted")
	}
}

func TestPanics(t *testing.T) {
	v := New(10)
	for _, fn := range []func(){
		func() { New(-1) },
		func() { v.Get(-1) },
		func() { v.Get(10) },
		func() { v.Set(10) },
		func() { v.Clear(-1) },
		func() { v.Rank(11) },
		func() { v.CountRange(5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStringForms(t *testing.T) {
	v := New(4)
	v.Set(1)
	v.Set(3)
	if got := v.String(); got != "0101" {
		t.Errorf("String() = %q, want 0101", got)
	}
	long := New(200)
	if got := long.String(); got == "" {
		t.Error("long String() empty")
	}
}

func BenchmarkSet(b *testing.B) {
	v := New(1 << 16)
	for i := 0; i < b.N; i++ {
		v.Set(i & (1<<16 - 1))
	}
}

func BenchmarkRank(b *testing.B) {
	v := New(1 << 16)
	for i := 0; i < 1<<16; i += 7 {
		v.Set(i)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink = v.Rank(1 << 15)
	}
	_ = sink
}
