package bitvec

import "testing"

// FuzzUnmarshalBinary: arbitrary bytes must never panic, and an accepted
// vector must be internally consistent (maintained popcount equal to a
// recount).
func FuzzUnmarshalBinary(f *testing.F) {
	v := New(130)
	v.Set(0)
	v.Set(64)
	v.Set(129)
	blob, err := v.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{0xe1, 0x0d, 0x7c, 0xb1}) // magic only
	f.Fuzz(func(t *testing.T, data []byte) {
		var w Vector
		if err := w.UnmarshalBinary(data); err != nil {
			return
		}
		count := 0
		for i := 0; i < w.Len(); i++ {
			if w.Get(i) {
				count++
			}
		}
		if count != w.Ones() {
			t.Fatalf("maintained ones %d != recount %d", w.Ones(), count)
		}
		// Round trip must be stable.
		out, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var z Vector
		if err := z.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-unmarshal of own output failed: %v", err)
		}
		if !z.Equal(&w) {
			t.Fatal("round trip changed contents")
		}
	})
}
