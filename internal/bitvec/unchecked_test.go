package bitvec

import (
	"testing"

	"repro/internal/xrand"
)

// TestUncheckedMatchesChecked drives an identical random op sequence
// through the checked and unchecked probe/set pair and requires identical
// observable state at every step.
func TestUncheckedMatchesChecked(t *testing.T) {
	r := xrand.New(99)
	const n = 517 // not a multiple of 64: exercises the partial last word
	a, b := New(n), New(n)
	for step := 0; step < 20_000; step++ {
		i := r.Intn(n)
		if r.Uint64()&1 == 0 {
			if a.Set(i) != b.SetUnchecked(i) {
				t.Fatalf("step %d: Set(%d) disagrees with SetUnchecked", step, i)
			}
		} else {
			if a.Get(i) != b.GetUnchecked(i) {
				t.Fatalf("step %d: Get(%d) disagrees with GetUnchecked", step, i)
			}
		}
	}
	if !a.Equal(b) || a.Ones() != b.Ones() {
		t.Fatalf("final state diverged: ones %d vs %d", a.Ones(), b.Ones())
	}
}

func BenchmarkSetUnchecked(b *testing.B) {
	v := New(1 << 16)
	for i := 0; i < b.N; i++ {
		v.SetUnchecked(i & (1<<16 - 1))
	}
}

func BenchmarkGetUnchecked(b *testing.B) {
	v := New(1 << 16)
	for i := 0; i < 1<<16; i += 3 {
		v.Set(i)
	}
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = v.GetUnchecked(i & (1<<16 - 1))
	}
	_ = sink
}
