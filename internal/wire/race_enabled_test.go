//go:build race

package wire

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under it (the detector makes sync.Pool drop
// entries at random, so pooled paths legitimately re-allocate).
const raceEnabled = true
