package wire

import (
	"net"
	"testing"
	"time"

	sbitmap "repro"
	"repro/internal/server"
)

const windowedTestSpec = "hll:mbits=1024,seed=7/windowed(width=1s,ring=4)"

// wtime builds the timestamp landing in sub-window widx of the given
// width (its midpoint).
func wtime(widx int64, width time.Duration) time.Time {
	return time.Unix(0, widx*int64(width)+int64(width)/2)
}

// TestWireTimestampedBitIdentical: version-2 (timestamped) frames pushed
// over TCP must leave a windowed server's store — rings, watermark, and
// every window estimate — bit-identical to a local twin fed the same
// records through the Store's own At entrypoints.
func TestWireTimestampedBitIdentical(t *testing.T) {
	const width = time.Second
	srv, err := server.New(server.Config{Spec: sbitmap.MustSpec(windowedTestSpec)})
	if err != nil {
		t.Fatal(err)
	}
	ws := startWireServer(t, srv)
	twin, err := sbitmap.NewStore[string](sbitmap.MustSpec(windowedTestSpec))
	if err != nil {
		t.Fatal(err)
	}
	keys, items64, itemsS := wireWorkload(300, 6000, 5)

	c := NewClient(ws.Addr().String())
	defer c.Close()
	// Pipelined timestamped frames walking forward through sub-windows
	// 40..51, with an occasional one-window step back (in-horizon
	// out-of-order) and a deep jump back (the late path).
	widxFor := func(batch int) int64 {
		widx := int64(40 + batch/2)
		switch batch % 10 {
		case 3:
			widx-- // one back: placed in its own sub-window
		case 7:
			widx -= 20 // far back: folds into the watermark, counts late
		}
		return widx
	}
	for i, batch := 0, 0; i < len(keys); i, batch = i+250, batch+1 {
		end := min(i+250, len(keys))
		ts := wtime(widxFor(batch), width)
		if batch%2 == 0 {
			if err := c.Send64At(ts, keys[i:end], items64[i:end]); err != nil {
				t.Fatal(err)
			}
			twin.AddBatch64At(ts, keys[i:end], items64[i:end])
		} else {
			if err := c.SendStringAt(ts, keys[i:end], itemsS[i:end]); err != nil {
				t.Fatal(err)
			}
			twin.AddBatchStringAt(ts, keys[i:end], itemsS[i:end])
		}
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	assertSameState(t, snapshotKeys(t, srv.Store()), snapshotKeys(t, twin))
	sw, sl, sok := srv.Store().WindowState()
	tw, tl, tok := twin.WindowState()
	if sw != tw || sl != tl || sok != tok {
		t.Fatalf("window state: server (%d,%d,%v), twin (%d,%d,%v)", sw, sl, sok, tw, tl, tok)
	}
	if sl == 0 {
		t.Fatal("workload produced no late records; the late path went unexercised")
	}
	var allKeys []string
	srv.Store().ForEach(func(k string, _ sbitmap.Counter) bool {
		allKeys = append(allKeys, k)
		return true
	})
	if len(allKeys) == 0 {
		t.Fatal("no keys to probe")
	}
	for _, k := range allKeys {
		for _, span := range []time.Duration{width, 4 * width} {
			got, gok, gerr := srv.Store().EstimateWindow(k, span)
			want, wok, werr := twin.EstimateWindow(k, span)
			if got != want || gok != wok || (gerr == nil) != (werr == nil) {
				t.Fatalf("%s span %v: server (%+v,%v,%v), twin (%+v,%v,%v)", k, span, got, gok, gerr, want, wok, werr)
			}
		}
	}
}

// startWireServer wraps an existing server.Server in a wire listener on
// a random loopback port.
func startWireServer(t *testing.T, srv *server.Server) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := Serve(ln, srv)
	t.Cleanup(func() { ws.Close() })
	return ws
}
