// Package wire is the raw-TCP ingest face of the counting service: the
// same SBF1 add frames POST /v1/add accepts, but framed directly on a
// long-lived connection with no HTTP between the producer and the
// store. Where the HTTP path pays headers, chunking, and handler
// dispatch per batch, the wire path pays four length bytes — a producer
// saturating a link sends back-to-back frames and reads acks
// asynchronously, and the server runs one reader goroutine per
// connection straight into the store's keyed batch path, zero-copy and
// allocation-free once warm.
//
// Protocol (little-endian throughout), symmetric and minimal:
//
//	client → server:  repeated [uint32 frame length][SBF1 add frame]
//	server → client:  one uint64 ack per frame, in frame order: the
//	                  frame's changed count, or ^uint64(0) (AckError)
//	                  if the frame was rejected — after which the
//	                  server closes the connection.
//
// A frame length of zero or above the server's body limit is a protocol
// error: the server acks AckError and closes. Because acks are ordered,
// a client may pipeline any number of frames and match acks to frames
// by counting. A torn frame (connection dies mid-payload) is never
// applied: the server reads the full payload before decoding, so the
// failure mode of an abrupt client death is a dropped frame, not a
// half-ingested one. One bad connection never poisons another — all
// per-connection state (read buffer, decoded frame, ack writer) is
// confined to that connection's goroutine.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
	"unsafe"

	"repro/internal/server"
)

// AckError is the ack value the server sends when it rejects a frame
// (bad length prefix, malformed SBF1 payload). It cannot collide with a
// real changed count: changed ≤ records, and a frame holds at most
// MaxBodyBytes/9 records. After sending it the server closes the
// connection.
const AckError = ^uint64(0)

// ackBytes is the fixed ack size: one little-endian uint64.
const ackBytes = 8

// Server accepts wire connections and feeds one *server.Server — the
// store, metrics, and limits are shared with the HTTP face, so a frame
// ingested over TCP is indistinguishable (bit-identically) from the
// same frame POSTed to /v1/add.
type Server struct {
	srv *server.Server
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts accepting wire connections on ln, feeding srv. It
// returns immediately; the accept loop and every connection handler run
// on their own goroutines until Close.
func Serve(ln net.Listener, srv *server.Server) *Server {
	w := &Server{srv: srv, ln: ln, conns: make(map[net.Conn]struct{})}
	w.wg.Add(1)
	go w.acceptLoop()
	return w
}

// Addr reports the listener's address (useful with ":0" listeners).
func (w *Server) Addr() net.Addr { return w.ln.Addr() }

// Close stops the listener, closes every live connection, and waits for
// all handlers to return. Frames fully read before Close are applied;
// in-flight partial frames are dropped (never half-applied).
func (w *Server) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.ln.Close()
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return err
}

func (w *Server) acceptLoop() {
	defer w.wg.Done()
	for {
		c, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			c.Close()
			return
		}
		w.conns[c] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go w.handleConn(c)
	}
}

func (w *Server) handleConn(c net.Conn) {
	defer w.wg.Done()
	defer func() {
		c.Close()
		w.mu.Lock()
		delete(w.conns, c)
		w.mu.Unlock()
	}()
	h := newConnHandler(w.srv, c, c)
	h.serve()
}

// connHandler is one connection's confined state: buffered reader and
// ack writer, the reusable payload buffer, and the borrowed decode
// frame. Its address is the affinity value sharding the server's
// metrics counters — already heap-allocated, stable for the
// connection's life, distinct per connection.
type connHandler struct {
	srv   *server.Server
	br    *bufio.Reader
	bw    *bufio.Writer
	buf   []byte
	frame server.Frame
	hdr   [4]byte
	ack   [ackBytes]byte
	max   int64
}

func newConnHandler(srv *server.Server, r io.Reader, w io.Writer) *connHandler {
	return &connHandler{
		srv: srv,
		br:  bufio.NewReaderSize(r, 64<<10),
		bw:  bufio.NewWriterSize(w, 8<<10),
		max: srv.MaxBodyBytes(),
	}
}

// errConnDone distinguishes "stop serving this connection" outcomes that
// already acked (or cannot ack) from clean EOF.
var errConnDone = errors.New("wire: connection done")

// serve runs the read-decode-add-ack loop until the connection ends.
func (h *connHandler) serve() {
	defer h.frame.Release()
	for {
		if err := h.serveOne(); err != nil {
			return
		}
	}
}

// serveOne processes one frame: length prefix, payload, zero-copy
// decode, batch add, ack. Acks are batched: the writer is only flushed
// when no further frame is already buffered, so a pipelining client
// costs one write syscall per read burst, not per frame.
func (h *connHandler) serveOne() error {
	if _, err := io.ReadFull(h.br, h.hdr[:]); err != nil {
		return errConnDone // clean close between frames, or torn prefix
	}
	n := int64(binary.LittleEndian.Uint32(h.hdr[:]))
	if n == 0 || n > h.max {
		h.ackError()
		return errConnDone
	}
	if cap(h.buf) < int(n) {
		h.buf = make([]byte, n)
	}
	h.buf = h.buf[:n]
	if _, err := io.ReadFull(h.br, h.buf); err != nil {
		return errConnDone // torn frame: dropped whole, never half-applied
	}
	if err := h.frame.DecodeBorrowed(h.buf); err != nil {
		h.ackError()
		return errConnDone
	}
	// Append-before-ack: the frame hits the WAL (when configured) before
	// the store and the ack, so an acked frame survives a crash. A WAL
	// write failure is not the client's fault, but the ack contract is
	// "acked means applied durably" — refuse and close rather than ack a
	// frame that may vanish.
	res, err := h.srv.IngestFrame(h.buf, &h.frame)
	if err != nil {
		h.ackError()
		return errConnDone
	}
	h.srv.RecordIngest(uintptr(unsafe.Pointer(h)), res.Records, res.Changed)
	binary.LittleEndian.PutUint64(h.ack[:], uint64(res.Changed))
	if _, err := h.bw.Write(h.ack[:]); err != nil {
		return errConnDone
	}
	if h.br.Buffered() < 4 { // no full prefix waiting: flush the acks
		if err := h.bw.Flush(); err != nil {
			return errConnDone
		}
	}
	return nil
}

// ackError best-effort sends AckError so a well-behaved client learns
// its frame was rejected (rather than seeing a bare reset) before the
// connection closes.
func (h *connHandler) ackError() {
	binary.LittleEndian.PutUint64(h.ack[:], AckError)
	h.bw.Write(h.ack[:])
	h.bw.Flush()
}

// ErrFrameRejected is returned by the Client when the server answers
// AckError: the frame was malformed or oversized and the server has
// closed the connection. The client redials on the next call.
var ErrFrameRejected = errors.New("wire: server rejected frame and closed the connection")

// clientWindow bounds pipelined unacked frames; past it, Send blocks
// collecting acks. Keeps a runaway producer from buffering unbounded
// frames in the kernel while still hiding the round trip.
const clientWindow = 64

// Client speaks the wire protocol to one server over one long-lived
// connection, redialing transparently after errors. The synchronous
// AddBatch methods send one frame and wait for its ack; the pipelined
// Send/Drain pair overlaps frames against the round trip. Not safe for
// concurrent use (matching acks to frames requires ordering; use one
// Client per producer goroutine).
type Client struct {
	addr string

	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	buf     []byte // frame encode buffer, reused
	ack     [ackBytes]byte
	pending int    // frames sent, acks not yet read
	changed uint64 // acked changed counts since the last Drain
}

// NewClient returns a client for addr (host:port). The connection is
// dialed lazily on first use and redialed after any error.
func NewClient(addr string) *Client { return &Client{addr: addr} }

// Close closes the connection (if open). The client remains usable: the
// next call redials.
func (c *Client) Close() error {
	if c.c == nil {
		return nil
	}
	err := c.c.Close()
	c.c, c.pending, c.changed = nil, 0, 0
	return err
}

func (c *Client) conn() error {
	if c.c != nil {
		return nil
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	c.c = conn
	if c.br == nil {
		c.br = bufio.NewReaderSize(conn, 4<<10)
		c.bw = bufio.NewWriterSize(conn, 64<<10)
	} else {
		c.br.Reset(conn)
		c.bw.Reset(conn)
	}
	c.pending, c.changed = 0, 0
	return nil
}

// fail tears the connection down so the next call redials, and returns
// err.
func (c *Client) fail(err error) error {
	c.Close()
	return err
}

// prefix resets c.buf to the 4 length-prefix bytes (filled in after the
// frame is appended), allocating the buffer on first use.
func (c *Client) prefix() []byte {
	if cap(c.buf) < 4 {
		c.buf = make([]byte, 4, 4096)
	}
	return c.buf[:4]
}

// encode64 frames (keys, items) into c.buf behind the length prefix.
func (c *Client) encode64(keys []string, items []uint64) {
	c.buf = server.AppendFrame64(c.prefix(), keys, items)
	binary.LittleEndian.PutUint32(c.buf, uint32(len(c.buf)-4))
}

func (c *Client) encodeString(keys, items []string) {
	c.buf = server.AppendFrameString(c.prefix(), keys, items)
	binary.LittleEndian.PutUint32(c.buf, uint32(len(c.buf)-4))
}

// encode64At / encodeStringAt frame a timestamped batch as a version-2
// frame, filing every record into ts's sub-window on a windowed server.
func (c *Client) encode64At(ts time.Time, keys []string, items []uint64) {
	c.buf = server.AppendFrame64At(c.prefix(), ts, keys, items)
	binary.LittleEndian.PutUint32(c.buf, uint32(len(c.buf)-4))
}

func (c *Client) encodeStringAt(ts time.Time, keys, items []string) {
	c.buf = server.AppendFrameStringAt(c.prefix(), ts, keys, items)
	binary.LittleEndian.PutUint32(c.buf, uint32(len(c.buf)-4))
}

// AddBatch64 sends one uint64-item frame and waits for its ack,
// returning the server's changed count. Any pipelined frames are
// drained first (their counts are lost to the caller — mix the APIs
// only between Drains).
func (c *Client) AddBatch64(keys []string, items []uint64) (int, error) {
	if _, err := c.Drain(); err != nil {
		return 0, err
	}
	if err := c.conn(); err != nil {
		return 0, err
	}
	c.encode64(keys, items)
	return c.sendAwait()
}

// AddBatchString is AddBatch64 for string items.
func (c *Client) AddBatchString(keys, items []string) (int, error) {
	if _, err := c.Drain(); err != nil {
		return 0, err
	}
	if err := c.conn(); err != nil {
		return 0, err
	}
	c.encodeString(keys, items)
	return c.sendAwait()
}

func (c *Client) sendAwait() (int, error) {
	if _, err := c.bw.Write(c.buf); err != nil {
		return 0, c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return 0, c.fail(err)
	}
	ch, err := c.readAck()
	if err != nil {
		return 0, c.fail(err)
	}
	return int(ch), nil
}

func (c *Client) readAck() (uint64, error) {
	if _, err := io.ReadFull(c.br, c.ack[:]); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(c.ack[:])
	if v == AckError {
		return 0, ErrFrameRejected
	}
	return v, nil
}

// Send64 pipelines one uint64-item frame without waiting for its ack.
// When the unacked window is full it first collects one ack. Call Drain
// to settle all outstanding acks and read the accumulated changed
// count.
func (c *Client) Send64(keys []string, items []uint64) error {
	if err := c.conn(); err != nil {
		return err
	}
	c.encode64(keys, items)
	return c.send()
}

// Send64At is Send64 with a record timestamp: the batch ships as a
// version-2 frame and a windowed server files it into ts's sub-window.
func (c *Client) Send64At(ts time.Time, keys []string, items []uint64) error {
	if err := c.conn(); err != nil {
		return err
	}
	c.encode64At(ts, keys, items)
	return c.send()
}

// SendString is Send64 for string items.
func (c *Client) SendString(keys, items []string) error {
	if err := c.conn(); err != nil {
		return err
	}
	c.encodeString(keys, items)
	return c.send()
}

// SendStringAt is Send64At for string items.
func (c *Client) SendStringAt(ts time.Time, keys, items []string) error {
	if err := c.conn(); err != nil {
		return err
	}
	c.encodeStringAt(ts, keys, items)
	return c.send()
}

func (c *Client) send() error {
	for c.pending >= clientWindow {
		// Window full: the server must have acks in flight; absorb one.
		if err := c.bw.Flush(); err != nil {
			return c.fail(err)
		}
		ch, err := c.readAck()
		if err != nil {
			return c.fail(err)
		}
		c.changed += ch
		c.pending--
	}
	if _, err := c.bw.Write(c.buf); err != nil {
		return c.fail(err)
	}
	c.pending++
	return nil
}

// Drain flushes pipelined frames and collects every outstanding ack,
// returning the total changed count acked since the previous Drain
// (including acks absorbed by window pressure). A no-op (0, nil) when
// nothing is outstanding.
func (c *Client) Drain() (int, error) {
	if c.c == nil || (c.pending == 0 && c.changed == 0) {
		return 0, nil
	}
	if err := c.bw.Flush(); err != nil {
		return 0, c.fail(err)
	}
	for c.pending > 0 {
		ch, err := c.readAck()
		if err != nil {
			return 0, c.fail(err)
		}
		c.changed += ch
		c.pending--
	}
	total := int(c.changed)
	c.changed = 0
	return total, nil
}
