//go:build !race

package wire

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
