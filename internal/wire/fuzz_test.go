package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	sbitmap "repro"
	"repro/internal/server"
)

// frameMsg wraps one SBF1 frame in the wire length prefix.
func frameMsg(frame []byte) []byte {
	var pfx [4]byte
	binary.LittleEndian.PutUint32(pfx[:], uint32(len(frame)))
	return append(pfx[:], frame...)
}

// FuzzWireFrame drives the per-connection serve loop with arbitrary byte
// streams — the attacker model is anyone who can open a TCP connection.
// The loop must never panic, never apply a torn or malformed frame, and
// must answer every accepted frame with a non-error ack and every
// rejected frame with AckError followed by connection close (at most one
// error ack per stream). Seeds cover valid single- and multi-frame
// streams of both item types, truncations at every layer, lying length
// prefixes, oversized declarations, and garbage.
func FuzzWireFrame(f *testing.F) {
	f64 := server.AppendFrame64(nil, []string{"alice", "bob"}, []uint64{1, 1 << 40})
	fstr := server.AppendFrameString(nil, []string{"k1", "k2"}, []string{"", "10.0.0.1"})
	// Valid streams: one frame, two frames, alternating types.
	f.Add(frameMsg(f64))
	f.Add(frameMsg(fstr))
	f.Add(append(frameMsg(f64), frameMsg(fstr)...))
	f.Add(append(frameMsg(fstr), frameMsg(f64)...))
	// Torn: truncated prefix, truncated payload at every boundary.
	whole := frameMsg(f64)
	for _, cut := range []int{0, 1, 3, 4, 5, 9, len(whole) - 1} {
		f.Add(whole[:cut])
	}
	// Lying prefixes: length 0, length > max, length > payload present.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	lie := frameMsg(f64)
	binary.LittleEndian.PutUint32(lie[:4], uint32(len(f64)+100))
	f.Add(lie)
	// Valid frame followed by garbage: first acked, second rejected.
	f.Add(append(frameMsg(f64), frameMsg([]byte("garbage not SBF1"))...))
	// Adversarial SBF1 payloads behind honest prefixes.
	huge := server.AppendFrame64(nil, []string{"k"}, []uint64{7})
	binary.LittleEndian.PutUint32(huge[6:], 1<<30) // lying record count
	f.Add(frameMsg(huge))
	empty := server.AppendFrame64(nil, []string{"ok", ""}, []uint64{1, 2}) // empty key
	f.Add(frameMsg(empty))
	// Version-2 (timestamped) frames: valid streams, a mixed v1/v2 stream,
	// and a v2 frame truncated inside its 8-byte timestamp.
	fts := server.AppendFrame64At(nil, time.Unix(0, 1723000000123456789), []string{"alice"}, []uint64{9})
	fstrTS := server.AppendFrameStringAt(nil, time.Unix(0, -5e9), []string{"k"}, []string{"v"})
	f.Add(frameMsg(fts))
	f.Add(frameMsg(fstrTS))
	f.Add(append(frameMsg(f64), frameMsg(fts)...))
	f.Add(frameMsg(fts[:14]))

	f.Fuzz(func(t *testing.T, stream []byte) {
		srv, err := server.New(server.Config{Spec: sbitmap.MustSpec("sbitmap:n=1e3,eps=0.2")})
		if err != nil {
			t.Fatal(err)
		}
		var acks bytes.Buffer
		h := newConnHandler(srv, bytes.NewReader(stream), &acks)
		h.serve()
		h.bw.Flush()
		if acks.Len()%ackBytes != 0 {
			t.Fatalf("partial ack written: %d bytes", acks.Len())
		}
		// Error acks terminate the stream: at most one, and only last.
		raw := acks.Bytes()
		for off := 0; off < len(raw); off += ackBytes {
			v := binary.LittleEndian.Uint64(raw[off:])
			if v == AckError && off+ackBytes != len(raw) {
				t.Fatalf("AckError at offset %d was not the final ack", off)
			}
		}
		// Store invariant: every key came from a fully acked frame; no
		// empty keys can ever materialize.
		srv.Store().ForEach(func(k string, _ sbitmap.Counter) bool {
			if k == "" {
				t.Fatal("empty key materialized from fuzzed stream")
			}
			return true
		})
	})
}

// TestWireFuzzSeedsDirect replays the interesting seed shapes through a
// real decoder-loop assertion: a stream of N valid frames yields exactly
// N acks, none of them AckError.
func TestWireFuzzSeedsDirect(t *testing.T) {
	srv, err := server.New(server.Config{Spec: sbitmap.MustSpec("sbitmap:n=1e3,eps=0.2")})
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	const n = 20
	for i := 0; i < n; i++ {
		fr := server.AppendFrame64(nil, []string{"k"}, []uint64{uint64(i)})
		if i%2 == 1 {
			fr = server.AppendFrameString(nil, []string{"s"}, []string{"v"})
		}
		stream = append(stream, frameMsg(fr)...)
	}
	var acks bytes.Buffer
	h := newConnHandler(srv, bytes.NewReader(stream), &acks)
	h.serve()
	h.bw.Flush()
	if acks.Len() != n*ackBytes {
		t.Fatalf("%d ack bytes for %d frames", acks.Len(), n)
	}
	for off := 0; off < acks.Len(); off += ackBytes {
		if v := binary.LittleEndian.Uint64(acks.Bytes()[off:]); v == AckError {
			t.Fatalf("valid frame %d got AckError", off/ackBytes)
		}
	}
}
