package wire

import (
	"context"
	"encoding"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"

	sbitmap "repro"
	"repro/internal/server"
	"repro/internal/xrand"
)

const testSpec = "sbitmap:n=1e4,eps=0.1,seed=7"

// newWireServer starts a server.Server with a wire listener on a random
// loopback port and tears both down with the test.
func newWireServer(t *testing.T) (*server.Server, *Server) {
	t.Helper()
	srv, err := server.New(server.Config{Spec: sbitmap.MustSpec(testSpec)})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := Serve(ln, srv)
	t.Cleanup(func() { ws.Close() })
	return srv, ws
}

// snapshotKeys marshals every counter in a store by key — the
// bit-identity currency of these tests.
func snapshotKeys(t *testing.T, st *sbitmap.Store[string]) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, st.Len())
	st.ForEach(func(k string, c sbitmap.Counter) bool {
		blob, err := c.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			t.Fatalf("marshal key %q: %v", k, err)
		}
		out[k] = blob
		return true
	})
	return out
}

func assertSameState(t *testing.T, got, want map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("key counts differ: %d vs %d", len(got), len(want))
	}
	for k, wb := range want {
		gb, ok := got[k]
		if !ok {
			t.Fatalf("key %q missing", k)
		}
		if string(gb) != string(wb) {
			t.Fatalf("key %q: counter state diverged", k)
		}
	}
}

// wireWorkload builds a keyed workload with both duplicate items and
// duplicate keys, deterministically.
func wireWorkload(nKeys, nRecs int, seed uint64) (keys []string, items64 []uint64, itemsS []string) {
	keys = make([]string, nRecs)
	items64 = make([]uint64, nRecs)
	itemsS = make([]string, nRecs)
	for i := 0; i < nRecs; i++ {
		k := xrand.Mix64(seed+uint64(i)) % uint64(nKeys)
		v := xrand.Mix64(seed^uint64(i)) % 5000
		keys[i] = fmt.Sprintf("flow-%04x", k)
		items64[i] = v
		itemsS[i] = fmt.Sprintf("ip-%d", v)
	}
	return
}

// TestWireBitIdenticalToLocalStore: records pushed over TCP in frames
// must leave the server's store bit-identical to a local twin store fed
// the same records in the same order — uint64 and string items, across
// many frames on one connection.
func TestWireBitIdenticalToLocalStore(t *testing.T) {
	srv, ws := newWireServer(t)
	twin, err := sbitmap.NewStore[string](sbitmap.MustSpec(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	keys, items64, itemsS := wireWorkload(300, 6000, 1)

	c := NewClient(ws.Addr().String())
	defer c.Close()
	var wantChanged, gotChanged int
	for i := 0; i < len(keys); i += 500 {
		end := min(i+500, len(keys))
		ch, err := c.AddBatch64(keys[i:end], items64[i:end])
		if err != nil {
			t.Fatal(err)
		}
		gotChanged += ch
		wantChanged += twin.AddBatch64(keys[i:end], items64[i:end])
	}
	ch, err := c.AddBatchString(keys, itemsS)
	if err != nil {
		t.Fatal(err)
	}
	gotChanged += ch
	wantChanged += twin.AddBatchString(keys, itemsS)

	if gotChanged != wantChanged {
		t.Fatalf("acked changed %d, twin changed %d", gotChanged, wantChanged)
	}
	assertSameState(t, snapshotKeys(t, srv.Store()), snapshotKeys(t, twin))
}

// TestWireBitIdenticalToHTTP: the same frames over the wire listener and
// over POST /v1/add must produce bit-identical stores — the wire path is
// an alternative transport, not an alternative semantics.
func TestWireBitIdenticalToHTTP(t *testing.T) {
	wireSrv, ws := newWireServer(t)
	httpSrv, err := server.New(server.Config{Spec: sbitmap.MustSpec(testSpec)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpSrv)
	defer ts.Close()
	hc := server.NewClient(ts.URL)

	keys, items64, itemsS := wireWorkload(200, 4000, 9)
	wc := NewClient(ws.Addr().String())
	defer wc.Close()
	ctx := context.Background()
	for i := 0; i < len(keys); i += 1000 {
		end := min(i+1000, len(keys))
		wch, err := wc.AddBatch64(keys[i:end], items64[i:end])
		if err != nil {
			t.Fatal(err)
		}
		hres, err := hc.AddBatch64(ctx, keys[i:end], items64[i:end])
		if err != nil {
			t.Fatal(err)
		}
		if wch != hres.Changed {
			t.Fatalf("batch at %d: wire changed %d, http changed %d", i, wch, hres.Changed)
		}
	}
	if _, err := wc.AddBatchString(keys[:500], itemsS[:500]); err != nil {
		t.Fatal(err)
	}
	if _, err := hc.AddBatchString(ctx, keys[:500], itemsS[:500]); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, snapshotKeys(t, wireSrv.Store()), snapshotKeys(t, httpSrv.Store()))
}

// TestWirePipelined: Send/Drain must ack every frame and leave the same
// state as the synchronous path, with the changed total matching a twin.
func TestWirePipelined(t *testing.T) {
	srv, ws := newWireServer(t)
	twin, err := sbitmap.NewStore[string](sbitmap.MustSpec(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	keys, items64, _ := wireWorkload(100, 5000, 3)
	c := NewClient(ws.Addr().String())
	defer c.Close()
	want := 0
	// 200 frames of 25 records: deep pipelining, crosses clientWindow.
	for i := 0; i < len(keys); i += 25 {
		end := i + 25
		if err := c.Send64(keys[i:end], items64[i:end]); err != nil {
			t.Fatal(err)
		}
		want += twin.AddBatch64(keys[i:end], items64[i:end])
	}
	got, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("pipelined changed %d, twin %d", got, want)
	}
	assertSameState(t, snapshotKeys(t, srv.Store()), snapshotKeys(t, twin))
}

// TestWireBadFramePoisonsOnlyItsConnection: a malformed frame earns
// AckError and a closed connection — while a second connection opened
// earlier keeps working, new connections are accepted, and the store
// retains exactly the state from the good frames.
func TestWireBadFramePoisonsOnlyItsConnection(t *testing.T) {
	srv, ws := newWireServer(t)
	good := NewClient(ws.Addr().String())
	defer good.Close()
	if _, err := good.AddBatch64([]string{"k1"}, []uint64{1}); err != nil {
		t.Fatal(err)
	}

	bad := NewClient(ws.Addr().String())
	defer bad.Close()
	if _, err := bad.AddBatch64([]string{"k2"}, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	// Raw garbage after a valid length prefix on the bad connection.
	raw, err := net.Dial("tcp", ws.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var msg [4]byte
	binary.LittleEndian.PutUint32(msg[:], 16)
	raw.Write(msg[:])
	raw.Write([]byte("not an SBF1 frame"))
	var ack [8]byte
	if _, err := io.ReadFull(raw, ack[:]); err != nil {
		t.Fatalf("reading error ack: %v", err)
	}
	if binary.LittleEndian.Uint64(ack[:]) != AckError {
		t.Fatalf("ack = %#x, want AckError", binary.LittleEndian.Uint64(ack[:]))
	}
	if _, err := io.ReadFull(raw, ack[:1]); err == nil {
		t.Fatal("connection still open after rejected frame")
	}

	// The earlier connection is unaffected; so are new ones.
	if _, err := good.AddBatch64([]string{"k3"}, []uint64{3}); err != nil {
		t.Fatalf("good connection poisoned: %v", err)
	}
	fresh := NewClient(ws.Addr().String())
	defer fresh.Close()
	if _, err := fresh.AddBatchString([]string{"k4"}, []string{"x"}); err != nil {
		t.Fatalf("new connection refused after rejected frame: %v", err)
	}
	for _, k := range []string{"k1", "k2", "k3", "k4"} {
		if _, ok := srv.Store().Estimate(k); !ok {
			t.Fatalf("key %q missing", k)
		}
	}
	if n := srv.Store().Len(); n != 4 {
		t.Fatalf("store has %d keys, want 4 (bad frame leaked state?)", n)
	}
}

// TestWireTornWrites: connections that die mid-prefix or mid-payload
// (the kill -9 producer) must not apply partial state or disturb the
// server. A frame is all-or-nothing.
func TestWireTornWrites(t *testing.T) {
	srv, ws := newWireServer(t)
	full := server.AppendFrame64(nil, []string{"torn-key"}, []uint64{7})
	cuts := []int{0, 1, 3} // mid-prefix
	var framed []byte
	var pfx [4]byte
	binary.LittleEndian.PutUint32(pfx[:], uint32(len(full)))
	framed = append(append(framed, pfx[:]...), full...)
	for c := 5; c < len(framed); c += 4 { // mid-payload
		cuts = append(cuts, c)
	}
	for _, cut := range cuts {
		conn, err := net.Dial("tcp", ws.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(framed[:cut])
		conn.Close() // torn: declared bytes never arrive
	}
	// Oversized length prefix: rejected with AckError, not buffered.
	conn, err := net.Dial("tcp", ws.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(pfx[:], uint32(server.DefaultMaxBodyBytes+1))
	conn.Write(pfx[:])
	var ack [8]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || binary.LittleEndian.Uint64(ack[:]) != AckError {
		t.Fatalf("oversized prefix: ack %v err %v, want AckError", ack, err)
	}
	conn.Close()

	// No torn frame was applied; a whole frame still lands cleanly.
	if n := srv.Store().Len(); n != 0 {
		t.Fatalf("store has %d keys after torn writes, want 0", n)
	}
	c := NewClient(ws.Addr().String())
	defer c.Close()
	if ch, err := c.AddBatch64([]string{"torn-key"}, []uint64{7}); err != nil || ch != 1 {
		t.Fatalf("whole frame after torn writes: changed=%d err=%v", ch, err)
	}
}

// TestWireConcurrentConnsBitIdentical: many connections ingesting
// concurrently (run under -race) must leave the store bit-identical to
// a twin fed the same records. Each connection owns a disjoint key
// subset — S-bitmap state is order-dependent per key, so per-key
// ordering must be preserved, and per-connection key ownership is how a
// real sharded producer achieves that.
func TestWireConcurrentConnsBitIdentical(t *testing.T) {
	srv, ws := newWireServer(t)
	const nConns = 8
	keys, items64, _ := wireWorkload(400, 20000, 17)

	var wg sync.WaitGroup
	errs := make(chan error, nConns)
	perConn := make([][]int, nConns) // record indices per connection, ordered
	for i, k := range keys {
		c := int(xrand.Mix64(uint64(len(k))^uint64(k[len(k)-1])<<8|uint64(k[len(k)-2]))) % nConns
		if c < 0 {
			c += nConns
		}
		perConn[c] = append(perConn[c], i)
	}
	for ci := 0; ci < nConns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := NewClient(ws.Addr().String())
			defer c.Close()
			idx := perConn[ci]
			for at := 0; at < len(idx); at += 100 {
				end := min(at+100, len(idx))
				bk := make([]string, 0, 100)
				bi := make([]uint64, 0, 100)
				for _, r := range idx[at:end] {
					bk = append(bk, keys[r])
					bi = append(bi, items64[r])
				}
				if err := c.Send64(bk, bi); err != nil {
					errs <- err
					return
				}
			}
			if _, err := c.Drain(); err != nil {
				errs <- err
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	twin, err := sbitmap.NewStore[string](sbitmap.MustSpec(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Twin: same per-key order (each key lives on exactly one connection,
	// whose records were sent in index order).
	for ci := 0; ci < nConns; ci++ {
		for _, r := range perConn[ci] {
			twin.AddUint64(keys[r], items64[r])
		}
	}
	assertSameState(t, snapshotKeys(t, srv.Store()), snapshotKeys(t, twin))
}

// TestWireClientRedials: a client whose connection the server closed
// (rejected frame) transparently redials on the next call.
func TestWireClientRedials(t *testing.T) {
	srv, ws := newWireServer(t)
	c := NewClient(ws.Addr().String())
	defer c.Close()
	if _, err := c.AddBatch64([]string{"a"}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	// Force a rejected frame through the client's own connection: an
	// empty-key record is a decode error server-side.
	if _, err := c.AddBatch64([]string{""}, []uint64{1}); err == nil {
		t.Fatal("empty-key frame accepted")
	}
	if _, err := c.AddBatch64([]string{"b"}, []uint64{2}); err != nil {
		t.Fatalf("client did not redial: %v", err)
	}
	if n := srv.Store().Len(); n != 2 {
		t.Fatalf("store has %d keys, want 2", n)
	}
}

// TestWireStatsReflectIngest: TCP frames show up in the shared metrics
// exactly like HTTP adds (one add request per frame).
func TestWireStatsReflectIngest(t *testing.T) {
	srv, ws := newWireServer(t)
	c := NewClient(ws.Addr().String())
	defer c.Close()
	if _, err := c.AddBatch64([]string{"a", "b", "a"}, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBatchString([]string{"c"}, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	stats, err := server.NewClient(ts.URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.AddRequests != 2 || stats.Records != 4 {
		t.Fatalf("stats: %d add requests, %d records; want 2, 4", stats.AddRequests, stats.Records)
	}
}

// TestWireServeOneAllocFree: the per-frame server loop — prefix read,
// payload read, zero-copy decode, batch add, ack — is allocation-free
// once the connection state is warm. This is the wire-speed claim in
// its most literal form.
func TestWireServeOneAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	srv, err := server.New(server.Config{Spec: sbitmap.MustSpec(testSpec)})
	if err != nil {
		t.Fatal(err)
	}
	keys, items64, itemsS := wireWorkload(128, 128, 23)
	var stream []byte
	var pfx [4]byte
	add := func(frame []byte) {
		binary.LittleEndian.PutUint32(pfx[:], uint32(len(frame)))
		stream = append(append(stream, pfx[:]...), frame...)
	}
	add(server.AppendFrame64(nil, keys, items64))
	add(server.AppendFrameString(nil, keys, itemsS))

	r := &replayReader{data: stream}
	h := newConnHandler(srv, r, io.Discard)
	run := func() {
		r.off = 0
		h.br.Reset(r)
		for {
			if err := h.serveOne(); err != nil {
				break
			}
		}
	}
	run() // warm: size h.buf, frame slices, store keys, scratch
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("serveOne loop: %.1f allocs/op, want 0", allocs)
	}
}

// replayReader is a resettable reader over a fixed byte stream.
type replayReader struct {
	data []byte
	off  int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
