package adaptive

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestSamplerExactWhileUnderCapacity(t *testing.T) {
	// Until the capacity is first exceeded, depth stays 0 and the
	// estimate is exact.
	s := NewSampler(128, 1)
	for i := uint64(0); i < 100; i++ {
		s.AddUint64(i)
	}
	if s.Depth() != 0 {
		t.Errorf("depth = %d before overflow, want 0", s.Depth())
	}
	if got := s.Estimate(); got != 100 {
		t.Errorf("estimate = %g, want exactly 100", got)
	}
}

func TestSamplerAccuracy(t *testing.T) {
	// Flajolet 1990: RRMSE ≈ 1.20/√capacity once sampling kicks in.
	const capacity, n, reps = 256, 50000, 150
	var sum stats.ErrorSummary
	for rep := 0; rep < reps; rep++ {
		s := NewSampler(capacity, uint64(rep)+3)
		base := uint64(rep) << 36
		for i := 0; i < n; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), n)
	}
	theory := 1.20 / math.Sqrt(capacity)
	if got := sum.RRMSE(); got > 1.5*theory {
		t.Errorf("RRMSE %.4f, theory ≈ %.4f", got, theory)
	}
	if bias := sum.Bias(); math.Abs(bias) > 0.03 {
		t.Errorf("bias %.4f, want ≈ 0", bias)
	}
}

func TestSamplerInvariants(t *testing.T) {
	s := NewSampler(64, 5)
	for i := uint64(0); i < 100000; i++ {
		s.AddUint64(i)
		if s.SampleSize() > 64 {
			t.Fatalf("sample size %d exceeds capacity", s.SampleSize())
		}
	}
	if s.Depth() == 0 {
		t.Error("depth never increased over 100k items")
	}
}

func TestSamplerDuplicatesIgnored(t *testing.T) {
	s := NewSampler(32, 7)
	s.AddUint64(42)
	size := s.SampleSize()
	for i := 0; i < 1000; i++ {
		if s.AddUint64(42) {
			t.Fatal("duplicate changed the sample")
		}
	}
	if s.SampleSize() != size {
		t.Error("duplicates changed the sample size")
	}
}

func TestSamplerResetSizePanic(t *testing.T) {
	s := NewSampler(16, 1)
	if s.SizeBits() != 16*64 {
		t.Errorf("SizeBits = %d, want 1024", s.SizeBits())
	}
	for i := uint64(0); i < 1000; i++ {
		s.AddUint64(i)
	}
	s.Reset()
	if s.Depth() != 0 || s.SampleSize() != 0 || s.Estimate() != 0 {
		t.Error("reset did not clear sampler")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for capacity < 2")
		}
	}()
	NewSampler(1, 1)
}

func TestCapacityForBits(t *testing.T) {
	if c := CapacityForBits(6400); c != 100 {
		t.Errorf("CapacityForBits(6400) = %d, want 100", c)
	}
	if c := CapacityForBits(1); c != 2 {
		t.Errorf("CapacityForBits(1) = %d, want floor 2", c)
	}
}

func TestDistinctSamplerExactSmall(t *testing.T) {
	s := NewDistinctSampler(64, 3)
	for i := 0; i < 40; i++ {
		s.AddString(fmt.Sprintf("item-%d", i))
	}
	if got := s.Estimate(); got != 40 {
		t.Errorf("estimate = %g, want 40", got)
	}
	if s.SampleSize() != 40 {
		t.Errorf("sample size = %d, want 40", s.SampleSize())
	}
}

func TestDistinctSamplerCounts(t *testing.T) {
	s := NewDistinctSampler(64, 3)
	for i := 0; i < 10; i++ {
		for k := 0; k <= i; k++ {
			s.AddString(fmt.Sprintf("w%d", i))
		}
	}
	// Total stream length = 1+2+...+10 = 55, all retained (under capacity).
	if got := s.EstimateTotal(); got != 55 {
		t.Errorf("EstimateTotal = %g, want 55", got)
	}
	for _, it := range s.Sample() {
		var i int
		fmt.Sscanf(it.Key, "w%d", &i)
		if it.Count != uint64(i+1) {
			t.Errorf("%s: count %d, want %d", it.Key, it.Count, i+1)
		}
	}
}

func TestDistinctSamplerAccuracy(t *testing.T) {
	const capacity, n, reps = 256, 30000, 100
	var sum stats.ErrorSummary
	for rep := 0; rep < reps; rep++ {
		s := NewDistinctSampler(capacity, uint64(rep)+9)
		for i := 0; i < n; i++ {
			s.AddString(fmt.Sprintf("r%d-i%d", rep, i))
		}
		sum.AddEstimate(s.Estimate(), n)
	}
	theory := 1.20 / math.Sqrt(capacity)
	if got := sum.RRMSE(); got > 1.5*theory {
		t.Errorf("RRMSE %.4f, theory ≈ %.4f", got, theory)
	}
}

func TestDistinctSamplerCapacityAndReset(t *testing.T) {
	s := NewDistinctSampler(16, 1)
	for i := 0; i < 10000; i++ {
		s.AddString(fmt.Sprintf("x%d", i))
		if s.SampleSize() > 16 {
			t.Fatalf("sample size %d exceeds capacity", s.SampleSize())
		}
	}
	if s.SizeBits() != 16*128 {
		t.Errorf("SizeBits = %d, want 2048", s.SizeBits())
	}
	s.Reset()
	if s.SampleSize() != 0 || s.Depth() != 0 {
		t.Error("reset did not clear")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for capacity < 2")
		}
	}()
	NewDistinctSampler(0, 1)
}

func BenchmarkSamplerAdd(b *testing.B) {
	s := NewSampler(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}
