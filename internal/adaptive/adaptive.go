// Package adaptive implements the two distinct-sampling baselines reviewed
// in Section 2.4 of the S-bitmap paper:
//
//   - Sampler: Wegman's adaptive sampling as analyzed by Flajolet ("On
//     adaptive sampling", Computing 1990). A bounded collection of hashed
//     values at sampling depth d (only hashes with d leading zero bits are
//     retained); when the collection overflows, d increases and the
//     collection is re-filtered. The estimate is |S|·2^d.
//   - DistinctSampler: the distinct sampling of Gibbons (VLDB 2001), which
//     keeps the sampled items themselves (with multiplicities), enabling
//     the "event report" queries of that paper in addition to the count.
//
// Both are "log-counting" methods with RRMSE ≈ 1.20/√capacity exhibiting
// the periodic fluctuation Flajolet documented — which is precisely why
// the S-bitmap paper classifies them as not scale-invariant.
package adaptive

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/uhash"
)

// Sampler is Wegman's adaptive sampler over hashed values.
// Not safe for concurrent use.
type Sampler struct {
	capacity int
	depth    uint
	set      map[uint64]struct{}
	h        uhash.Hasher
}

// NewSampler returns an adaptive sampler that retains at most capacity
// hashed values, hashing with the default Mixer seeded by seed. It panics
// if capacity < 2.
func NewSampler(capacity int, seed uint64) *Sampler {
	return NewSamplerWithHasher(capacity, uhash.NewMixer(seed))
}

// NewSamplerWithHasher returns an adaptive sampler with an explicit hasher.
func NewSamplerWithHasher(capacity int, h uhash.Hasher) *Sampler {
	if capacity < 2 {
		panic(fmt.Sprintf("adaptive: capacity %d < 2", capacity))
	}
	return &Sampler{capacity: capacity, set: make(map[uint64]struct{}, capacity), h: h}
}

// CapacityForBits returns the sample capacity a budget of mbits bits buys
// under the 64-bits-per-retained-hash accounting used in comparisons.
func CapacityForBits(mbits int) int {
	c := mbits / 64
	if c < 2 {
		c = 2
	}
	return c
}

// Add offers an item; it reports whether the sample changed.
func (s *Sampler) Add(item []byte) bool {
	hi, lo := s.h.Sum128(item)
	return s.insert(hi, lo)
}

// AddUint64 offers a 64-bit item.
func (s *Sampler) AddUint64(item uint64) bool {
	hi, lo := s.h.Sum128Uint64(item)
	return s.insert(hi, lo)
}

func (s *Sampler) insert(hi, lo uint64) bool {
	// An item is in the current sample iff its hash has ≥ depth leading
	// zeros. The remaining bits (we keep the full word) identify it;
	// duplicates hash identically and are absorbed by the set.
	if uint(bits.LeadingZeros64(hi)) < s.depth {
		return false
	}
	if _, ok := s.set[hi]; ok {
		// Mix in lo to disambiguate the (negligible but nonzero) chance of
		// two distinct items colliding on hi: track nothing extra — the
		// classical algorithm accepts this collision probability.
		_ = lo
		return false
	}
	s.set[hi] = struct{}{}
	for len(s.set) > s.capacity {
		s.deepen()
	}
	return true
}

// deepen increments the sampling depth and evicts non-conforming hashes.
func (s *Sampler) deepen() {
	s.depth++
	for h := range s.set {
		if uint(bits.LeadingZeros64(h)) < s.depth {
			delete(s.set, h)
		}
	}
}

// Depth returns the current sampling depth d (sampling rate 2^−d).
func (s *Sampler) Depth() uint { return s.depth }

// SampleSize returns the current number of retained hashes.
func (s *Sampler) SampleSize() int { return len(s.set) }

// Estimate returns n̂ = |S|·2^d.
func (s *Sampler) Estimate() float64 {
	return float64(len(s.set)) * math.Pow(2, float64(s.depth))
}

// SizeBits returns the memory footprint under the comparison accounting:
// 64 bits per retained-hash slot, counting capacity (the allocation), as
// the paper's ε⁻²·log N classification does.
func (s *Sampler) SizeBits() int { return s.capacity * 64 }

// Reset clears the sampler for reuse.
func (s *Sampler) Reset() {
	s.depth = 0
	s.set = make(map[uint64]struct{}, s.capacity)
}
