// Package adaptive implements the two distinct-sampling baselines reviewed
// in Section 2.4 of the S-bitmap paper:
//
//   - Sampler: Wegman's adaptive sampling as analyzed by Flajolet ("On
//     adaptive sampling", Computing 1990). A bounded collection of hashed
//     values at sampling depth d (only hashes with d leading zero bits are
//     retained); when the collection overflows, d increases and the
//     collection is re-filtered. The estimate is |S|·2^d.
//   - DistinctSampler: the distinct sampling of Gibbons (VLDB 2001), which
//     keeps the sampled items themselves (with multiplicities), enabling
//     the "event report" queries of that paper in addition to the count.
//
// Both are "log-counting" methods with RRMSE ≈ 1.20/√capacity exhibiting
// the periodic fluctuation Flajolet documented — which is precisely why
// the S-bitmap paper classifies them as not scale-invariant.
package adaptive

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"unsafe"

	"repro/internal/uhash"
)

// Sampler is Wegman's adaptive sampler over hashed values.
// Not safe for concurrent use.
type Sampler struct {
	capacity int
	depth    uint
	set      map[uint64]struct{}
	h        uhash.Hasher
	scr      uhash.Scratch // reusable batch hash buffers (not serialized)
}

// NewSampler returns an adaptive sampler that retains at most capacity
// hashed values, hashing with the default Mixer seeded by seed. It panics
// if capacity < 2.
func NewSampler(capacity int, seed uint64) *Sampler {
	return NewSamplerWithHasher(capacity, uhash.NewMixer(seed))
}

// NewSamplerWithHasher returns an adaptive sampler with an explicit hasher.
func NewSamplerWithHasher(capacity int, h uhash.Hasher) *Sampler {
	if capacity < 2 {
		panic(fmt.Sprintf("adaptive: capacity %d < 2", capacity))
	}
	return &Sampler{capacity: capacity, set: make(map[uint64]struct{}, capacity), h: h}
}

// CapacityForBits returns the sample capacity a budget of mbits bits buys
// under the 64-bits-per-retained-hash accounting used in comparisons.
func CapacityForBits(mbits int) int {
	c := mbits / 64
	if c < 2 {
		c = 2
	}
	return c
}

// Add offers an item; it reports whether the sample changed.
func (s *Sampler) Add(item []byte) bool {
	hi, lo := s.h.Sum128(item)
	return s.insert(hi, lo)
}

// AddUint64 offers a 64-bit item.
func (s *Sampler) AddUint64(item uint64) bool {
	hi, lo := s.h.Sum128Uint64(item)
	return s.insert(hi, lo)
}

// AddString offers a string item; it hashes identically to Add of the
// string's bytes but avoids the []byte conversion.
func (s *Sampler) AddString(item string) bool {
	hi, lo := s.h.Sum128String(item)
	return s.insert(hi, lo)
}

func (s *Sampler) insert(hi, lo uint64) bool {
	// An item is in the current sample iff its hash has ≥ depth leading
	// zeros. The remaining bits (we keep the full word) identify it;
	// duplicates hash identically and are absorbed by the set.
	if uint(bits.LeadingZeros64(hi)) < s.depth {
		return false
	}
	if _, ok := s.set[hi]; ok {
		// Mix in lo to disambiguate the (negligible but nonzero) chance of
		// two distinct items colliding on hi: track nothing extra — the
		// classical algorithm accepts this collision probability.
		_ = lo
		return false
	}
	s.set[hi] = struct{}{}
	for len(s.set) > s.capacity {
		s.deepen()
	}
	return true
}

// AddBatch64 offers a slice of 64-bit items and returns how many changed
// the sample; state-equivalent to AddUint64 on each item in order. The
// insert itself is sample-state-dependent (depth can change mid-batch), so
// only the hashing is batched.
func (s *Sampler) AddBatch64(items []uint64) int {
	return uhash.Batch64(s.h, &s.scr, items, s.insertBatch)
}

// AddBatchString is AddBatch64 for string items.
func (s *Sampler) AddBatchString(items []string) int {
	return uhash.BatchString(s.h, &s.scr, items, s.insertBatch)
}

func (s *Sampler) insertBatch(hi, lo []uint64) int {
	changed := 0
	for i := range hi {
		if s.insert(hi[i], lo[i]) {
			changed++
		}
	}
	return changed
}

// deepen increments the sampling depth and evicts non-conforming hashes.
func (s *Sampler) deepen() {
	s.depth++
	for h := range s.set {
		if uint(bits.LeadingZeros64(h)) < s.depth {
			delete(s.set, h)
		}
	}
}

// Depth returns the current sampling depth d (sampling rate 2^−d).
func (s *Sampler) Depth() uint { return s.depth }

// SampleSize returns the current number of retained hashes.
func (s *Sampler) SampleSize() int { return len(s.set) }

// Estimate returns n̂ = |S|·2^d.
func (s *Sampler) Estimate() float64 {
	return float64(len(s.set)) * math.Pow(2, float64(s.depth))
}

// SizeBits returns the memory footprint under the comparison accounting:
// 64 bits per retained-hash slot, counting capacity (the allocation), as
// the paper's ε⁻²·log N classification does.
func (s *Sampler) SizeBits() int { return s.capacity * 64 }

// Footprint returns the sampler's resident process memory in bytes: the
// struct, the fingerprint set (estimated at Go's map cost of roughly
// key + 16 bytes of bucket overhead per CAPACITY slot — the map grows to
// capacity and stays there), and the batch-hash scratch.
func (s *Sampler) Footprint() int {
	return int(unsafe.Sizeof(*s)) + s.capacity*(8+16) + s.scr.Footprint()
}

// Reset clears the sampler for reuse.
func (s *Sampler) Reset() {
	s.depth = 0
	s.set = make(map[uint64]struct{}, s.capacity)
}

// MarshalBinary serializes the capacity, depth, and retained hashes (sorted
// for a deterministic encoding). The hash function is not serialized; pass
// the original hasher to Unmarshal to continue counting.
func (s *Sampler) MarshalBinary() ([]byte, error) {
	hashes := make([]uint64, 0, len(s.set))
	for h := range s.set {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	buf := make([]byte, 0, 16+8*len(hashes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.capacity))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.depth))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(hashes)))
	for _, h := range hashes {
		buf = binary.LittleEndian.AppendUint64(buf, h)
	}
	return buf, nil
}

// UnmarshalBinary reconstructs the sampler in place from MarshalBinary
// output. A nil hasher field is replaced by the default Mixer with seed 1.
func (s *Sampler) UnmarshalBinary(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("adaptive: truncated serialization")
	}
	capacity := int(binary.LittleEndian.Uint32(data))
	depth := uint(binary.LittleEndian.Uint32(data[4:]))
	count := int(binary.LittleEndian.Uint64(data[8:]))
	if capacity < 2 {
		return fmt.Errorf("adaptive: serialized capacity %d < 2", capacity)
	}
	if depth > 64 {
		return fmt.Errorf("adaptive: serialized depth %d exceeds the 64-bit hash width", depth)
	}
	if count < 0 || count > capacity {
		return fmt.Errorf("adaptive: serialized sample size %d exceeds capacity %d", count, capacity)
	}
	if len(data) != 16+8*count {
		return fmt.Errorf("adaptive: sample body %d bytes, want %d", len(data)-16, 8*count)
	}
	set := make(map[uint64]struct{}, capacity)
	for i := 0; i < count; i++ {
		h := binary.LittleEndian.Uint64(data[16+8*i:])
		if uint(bits.LeadingZeros64(h)) < depth {
			return fmt.Errorf("adaptive: retained hash %#x violates depth %d", h, depth)
		}
		set[h] = struct{}{}
	}
	if len(set) != count {
		return fmt.Errorf("adaptive: serialized sample contains duplicates")
	}
	s.capacity, s.depth, s.set = capacity, depth, set
	if s.h == nil {
		s.h = uhash.NewMixer(1)
	}
	return nil
}

// Unmarshal reconstructs a sampler from MarshalBinary output, hashing with
// h (nil selects the default Mixer with seed 1).
func Unmarshal(data []byte, h uhash.Hasher) (*Sampler, error) {
	s := &Sampler{h: h}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}
