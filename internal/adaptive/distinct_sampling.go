package adaptive

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/uhash"
)

// DistinctSampler implements Gibbons' distinct sampling (VLDB 2001): like
// Wegman's sampler it retains a level-based sample of distinct items, but
// it stores the items themselves together with their multiplicities, so it
// can answer "distinct values" AND per-item "event report" queries over
// the sampled subpopulation.
//
// Not safe for concurrent use.
type DistinctSampler struct {
	capacity int
	depth    uint
	items    map[string]*SampledItem
	h        uhash.Hasher
}

// SampledItem is one retained distinct item with its observed multiplicity.
type SampledItem struct {
	Key   string
	Count uint64
	hash  uint64
}

// NewDistinctSampler returns a distinct sampler retaining at most capacity
// items, hashing with the default Mixer seeded by seed. It panics if
// capacity < 2.
func NewDistinctSampler(capacity int, seed uint64) *DistinctSampler {
	return NewDistinctSamplerWithHasher(capacity, uhash.NewMixer(seed))
}

// NewDistinctSamplerWithHasher returns a distinct sampler with an explicit
// hasher.
func NewDistinctSamplerWithHasher(capacity int, h uhash.Hasher) *DistinctSampler {
	if capacity < 2 {
		panic(fmt.Sprintf("adaptive: capacity %d < 2", capacity))
	}
	return &DistinctSampler{capacity: capacity, items: make(map[string]*SampledItem, capacity), h: h}
}

// Add offers an item; it reports whether the sample gained a new distinct
// item (multiplicity updates of already-sampled items return false).
func (s *DistinctSampler) Add(item []byte) bool { return s.insert(string(item)) }

// AddString offers a string item.
func (s *DistinctSampler) AddString(item string) bool { return s.insert(item) }

func (s *DistinctSampler) insert(key string) bool {
	hi, _ := s.h.Sum128([]byte(key))
	if uint(bits.LeadingZeros64(hi)) < s.depth {
		return false
	}
	if it, ok := s.items[key]; ok {
		it.Count++
		return false
	}
	s.items[key] = &SampledItem{Key: key, Count: 1, hash: hi}
	for len(s.items) > s.capacity {
		s.deepen()
	}
	return true
}

func (s *DistinctSampler) deepen() {
	s.depth++
	for k, it := range s.items {
		if uint(bits.LeadingZeros64(it.hash)) < s.depth {
			delete(s.items, k)
		}
	}
}

// Depth returns the current sampling depth.
func (s *DistinctSampler) Depth() uint { return s.depth }

// SampleSize returns the number of retained distinct items.
func (s *DistinctSampler) SampleSize() int { return len(s.items) }

// Sample returns the retained items (order unspecified). The returned
// structs are copies; mutating them does not affect the sampler.
func (s *DistinctSampler) Sample() []SampledItem {
	out := make([]SampledItem, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, *it)
	}
	return out
}

// Estimate returns the distinct-count estimate |S|·2^d.
func (s *DistinctSampler) Estimate() float64 {
	return float64(len(s.items)) * math.Pow(2, float64(s.depth))
}

// EstimateTotal returns the estimated total stream length (with
// duplicates) over the distinct population: Σ counts · 2^d. This is the
// subset-sum capability that distinguishes Gibbons' sampler from pure
// cardinality sketches.
func (s *DistinctSampler) EstimateTotal() float64 {
	var sum uint64
	for _, it := range s.items {
		sum += it.Count
	}
	return float64(sum) * math.Pow(2, float64(s.depth))
}

// SizeBits reports the allocation-based footprint: capacity slots of a
// 64-bit hash plus a 64-bit counter. (Key storage is workload-dependent
// and excluded, mirroring the paper's treatment of sampling methods as
// ε⁻²·log N-cost algorithms.)
func (s *DistinctSampler) SizeBits() int { return s.capacity * 128 }

// Reset clears the sampler for reuse.
func (s *DistinctSampler) Reset() {
	s.depth = 0
	s.items = make(map[string]*SampledItem, s.capacity)
}
