package mrbitmap

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestDimensionProperties(t *testing.T) {
	cfg, err := Dimension(7200, 1.5e6)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.B < 16 || cfg.C < 2 || cfg.Last < 16 {
		t.Fatalf("degenerate layout %+v", cfg)
	}
	// Design point: the last component at n = N runs at load rhoSat —
	// deliberately past setmax — so the boundary failure of Tables 3-4
	// is reproduced.
	reach := 1.5e6 * math.Pow(2, -float64(cfg.C-1))
	load := reach / float64(cfg.Last)
	if load < 1.5 || load > 2.5 {
		t.Errorf("layout %+v: last-component design load %.2f, want ≈ %g", cfg, load, rhoSat)
	}
	// Budget: total bits must not exceed the request.
	total := (cfg.C-1)*cfg.B + cfg.Last
	if total > 7200 {
		t.Errorf("layout %+v uses %d bits > 7200", cfg, total)
	}
	// A tiny cardinality bound yields a single plain bitmap.
	single, err := Dimension(1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if single.C != 1 || single.Last != 1000 {
		t.Errorf("small-N layout %+v, want single 1000-bit component", single)
	}
	// Errors for impossible requests.
	if _, err := Dimension(10, 1e6); err == nil {
		t.Error("tiny budget accepted")
	}
	if _, err := Dimension(64, 1e18); err == nil {
		t.Error("unreachable N accepted")
	}
	if _, err := Dimension(7200, 0); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestSmallCardinalityAccuracy(t *testing.T) {
	// mr-bitmap's strength (Tables 3-4): very small errors at small n,
	// because small streams land almost entirely in fine components that
	// act like an unsampled linear count.
	cfg, err := Dimension(2700, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{100, 1000} {
		var sum stats.ErrorSummary
		for rep := 0; rep < 300; rep++ {
			s := New(cfg, uint64(rep)+7)
			base := uint64(rep) << 34
			for i := 0; i < n; i++ {
				s.AddUint64(base + uint64(i))
			}
			sum.AddEstimate(s.Estimate(), float64(n))
		}
		if got := sum.RRMSE(); got > 0.06 {
			t.Errorf("n=%d: RRMSE %.4f, want small (< 0.06) per Table 3", n, got)
		}
	}
}

func TestMidRangeUnbiased(t *testing.T) {
	cfg, err := Dimension(6720, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var sum stats.ErrorSummary
	for rep := 0; rep < 200; rep++ {
		s := New(cfg, uint64(rep)+13)
		base := uint64(rep) << 34
		for i := 0; i < n; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), n)
	}
	if bias := sum.Bias(); math.Abs(bias) > 0.02 {
		t.Errorf("mid-range bias %.4f, want ≈ 0", bias)
	}
	if got := sum.RRMSE(); got > 0.08 {
		t.Errorf("mid-range RRMSE %.4f, want < 0.08", got)
	}
}

func TestBoundaryBlowUp(t *testing.T) {
	// The paper's Tables 3-4 show mr-bitmap failing catastrophically at
	// n ≥ 0.75·N (L2 ≈ 100×10⁻² = 100%); the reimplementation must
	// reproduce this qualitative boundary failure.
	cfg, err := Dimension(2700, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	var sum stats.ErrorSummary
	saturated := 0
	for rep := 0; rep < 100; rep++ {
		s := New(cfg, uint64(rep)+19)
		base := uint64(rep) << 34
		for i := 0; i < n; i++ {
			s.AddUint64(base + uint64(i))
		}
		if s.Saturated() {
			saturated++
		}
		sum.AddEstimate(s.Estimate(), n)
	}
	if got := sum.RRMSE(); got < 0.3 {
		t.Errorf("boundary RRMSE %.4f; expected blow-up (> 0.3) as in Table 3", got)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	cfg := Config{B: 64, C: 4}
	s := New(cfg, 3)
	s.AddUint64(555)
	before := s.Estimate()
	for i := 0; i < 1000; i++ {
		if s.AddUint64(555) {
			t.Fatal("duplicate changed a bucket")
		}
	}
	if s.Estimate() != before {
		t.Error("duplicates changed the estimate")
	}
}

func TestComponentsAndSize(t *testing.T) {
	cfg := Config{B: 100, C: 5}
	s := New(cfg, 1)
	if s.Components() != 5 {
		t.Errorf("Components = %d, want 5", s.Components())
	}
	// 4 normal × 100 + last 200 = 600.
	if s.SizeBits() != 600 {
		t.Errorf("SizeBits = %d, want 600", s.SizeBits())
	}
}

func TestReset(t *testing.T) {
	cfg := Config{B: 64, C: 3}
	s := New(cfg, 2)
	for i := uint64(0); i < 500; i++ {
		s.AddUint64(i)
	}
	s.Reset()
	if s.Estimate() != 0 {
		t.Errorf("estimate after reset = %g, want 0", s.Estimate())
	}
	if s.Saturated() {
		t.Error("saturated after reset")
	}
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{{B: 0, C: 3}, {B: 10, C: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%+v: expected panic", cfg)
				}
			}()
			New(cfg, 1)
		}()
	}
}

func BenchmarkAddUint64(b *testing.B) {
	cfg, err := Dimension(7200, 1.5e6)
	if err != nil {
		b.Fatal(err)
	}
	s := New(cfg, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}
