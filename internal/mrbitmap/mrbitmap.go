// Package mrbitmap implements the multiresolution bitmap of Estan,
// Varghese & Fisk ("Bitmap algorithms for counting active flows on high
// speed links", IEEE/ACM ToN 2006), the bitmap-family baseline of the
// S-bitmap paper's Section 6 comparison.
//
// A multiresolution bitmap embeds several virtual bitmaps with
// geometrically decreasing sampling rates into one bit array:
//
//   - components 1..c−1 ("normal") hold b bits each and receive an item
//     with probability 2^−k (component k);
//   - component c (the "last", sized 2b here) receives the remaining
//     probability 2^−(c−1) and acts like a virtual bitmap for the largest
//     cardinalities.
//
// The component is chosen from the item's hash (trailing-zero count), so
// duplicates always land in the same component and bucket.
//
// Estimation follows the original algorithm: find the base component — the
// finest component whose fill is still below the saturation threshold
// setmax — then sum the per-component linear-counting estimates of the base
// and all coarser components, and scale by the base's sampling factor
// 2^(base−1). If even the last component is past setmax the sketch is
// saturated and the estimate blows up, which is exactly the boundary
// behaviour Tables 3-4 of the S-bitmap paper document.
//
// Dimensioning. Estan et al. only sketch their "quasi-optimal"
// configuration procedure (the S-bitmap paper notes that optimizing it "is
// still an open question"). Dimension reimplements it as: choose the
// fewest components whose coverage reaches N — fewer components mean
// larger, more accurate components — subject to the last component's
// expected load at n = N staying within the linear-counting comfort zone
// (ρ ≤ 1.6, i.e. ≈80% fill). See DESIGN.md §4 for the substitution note.
package mrbitmap

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"unsafe"

	"repro/internal/bitvec"
	"repro/internal/uhash"
)

// rhoMax is the largest per-component load (distinct sampled items per
// bucket) at which a component is still considered estimable; 1.6
// corresponds to ≈80% of buckets set. Beyond this the estimation moves to
// the next coarser component.
const rhoMax = 1.6

// setmaxFrac is the fill fraction 1−e^(−rhoMax) implementing rhoMax.
var setmaxFrac = 1 - math.Exp(-rhoMax)

// rhoSat is the design load of the LAST component at n = N. Estan et al.'s
// quasi-optimal procedure maximizes accuracy by giving the last component
// no coverage headroom: at the configured maximum it runs past its usable
// load, which is why published evaluations of mr-bitmap — Tables 3-4 of
// the S-bitmap paper included — show the estimator failing for n ≳ 0.75·N
// while staying accurate through 0.5·N. A design load of 2.5 at N places
// the setmax crossing (load 1.6) at n ≈ 0.64·N, reproducing exactly that
// cliff.
const rhoSat = 2.5

// Sketch is a multiresolution bitmap. Not safe for concurrent use.
type Sketch struct {
	comps []*bitvec.Vector // comps[k-1] is component k
	h     uhash.Hasher
	nBits int           // total bits across components
	scr   uhash.Scratch // reusable batch hash buffers (not serialized)
}

// Config fixes the component layout of a Sketch.
type Config struct {
	B    int // bits per normal component (components 1..C−1)
	C    int // number of components
	Last int // bits in component C; 0 means the default 2·B
}

// last returns the size of the final component.
func (c Config) last() int {
	if c.Last > 0 {
		return c.Last
	}
	return 2 * c.B
}

// Dimension returns a quasi-optimal layout for a total budget of mbits
// bits covering cardinalities up to n: the fewest components (largest, most
// accurate ones) such that the last component — sized for load rhoSat at
// n = N, with zero headroom, as in Estan et al. — fits in at most half the
// budget, the remainder being split evenly among the normal components.
// It returns an error when the budget is too small to reach n.
func Dimension(mbits int, n float64) (Config, error) {
	if mbits < 32 {
		return Config{}, fmt.Errorf("mrbitmap: budget %d bits too small", mbits)
	}
	if n < 1 {
		return Config{}, fmt.Errorf("mrbitmap: cardinality bound %g must be ≥ 1", n)
	}
	for c := 1; c <= 60; c++ {
		last := int(math.Ceil(n * math.Pow(2, -float64(c-1)) / rhoSat))
		if last > mbits/2 {
			continue // last component cannot be afforded yet; sample deeper
		}
		if last < 16 {
			last = 16
		}
		if c == 1 {
			return Config{B: 0, C: 1, Last: mbits}, nil
		}
		b := (mbits - last) / (c - 1)
		if b < 16 {
			return Config{}, fmt.Errorf("mrbitmap: %d bits leave only %d-bit normal components for N = %g", mbits, b, n)
		}
		return Config{B: b, C: c, Last: last}, nil
	}
	return Config{}, fmt.Errorf("mrbitmap: %d bits cannot cover N = %g", mbits, n)
}

// New returns a multiresolution bitmap with the given layout, hashing with
// the default Mixer seeded by seed.
func New(cfg Config, seed uint64) *Sketch {
	return NewWithHasher(cfg, uhash.NewMixer(seed))
}

// NewWithHasher returns a multiresolution bitmap with an explicit hasher.
// It panics on a non-positive layout.
func NewWithHasher(cfg Config, h uhash.Hasher) *Sketch {
	if cfg.C < 1 || (cfg.C > 1 && cfg.B < 1) || cfg.last() < 1 {
		panic(fmt.Sprintf("mrbitmap: invalid layout %+v", cfg))
	}
	s := &Sketch{comps: make([]*bitvec.Vector, cfg.C), h: h}
	for k := 0; k < cfg.C; k++ {
		size := cfg.B
		if k == cfg.C-1 {
			size = cfg.last()
		}
		s.comps[k] = bitvec.New(size)
		s.nBits += size
	}
	return s
}

// Components returns the number of components.
func (s *Sketch) Components() int { return len(s.comps) }

// Add offers an item to the sketch; it reports whether a bucket changed.
func (s *Sketch) Add(item []byte) bool {
	hi, lo := s.h.Sum128(item)
	return s.insert(hi, lo)
}

// AddUint64 offers a 64-bit item.
func (s *Sketch) AddUint64(item uint64) bool {
	hi, lo := s.h.Sum128Uint64(item)
	return s.insert(hi, lo)
}

// AddString offers a string item; it hashes identically to Add of the
// string's bytes but avoids the []byte conversion.
func (s *Sketch) AddString(item string) bool {
	hi, lo := s.h.Sum128String(item)
	return s.insert(hi, lo)
}

func (s *Sketch) insert(bucketWord, compWord uint64) bool {
	// Component k with probability 2^−k via trailing zeros; overflow mass
	// goes to the last component, giving it rate 2^−(c−1).
	k := bits.TrailingZeros64(compWord) // 0-based: P(k)=2^-(k+1)
	if k >= len(s.comps)-1 {
		k = len(s.comps) - 1
	}
	comp := s.comps[k]
	j, _ := bits.Mul64(bucketWord, uint64(comp.Len()))
	return comp.Set(int(j))
}

// AddBatch64 offers a slice of 64-bit items and returns how many changed
// a bucket; state-equivalent to AddUint64 on each item in order, with
// chunked hashing and unchecked bit sets (each component's multiply-shift
// bucket index is in range of that component by construction).
func (s *Sketch) AddBatch64(items []uint64) int {
	return uhash.Batch64(s.h, &s.scr, items, s.insertBatch)
}

// AddBatchString is AddBatch64 for string items.
func (s *Sketch) AddBatchString(items []string) int {
	return uhash.BatchString(s.h, &s.scr, items, s.insertBatch)
}

func (s *Sketch) insertBatch(hi, lo []uint64) int {
	lo = lo[:len(hi)] // one bounds proof for the whole chunk
	comps := s.comps
	last := len(comps) - 1
	changed := 0
	for i, h := range hi {
		k := bits.TrailingZeros64(lo[i])
		if k >= last {
			k = last
		}
		comp := comps[k]
		j, _ := bits.Mul64(h, uint64(comp.Len()))
		if comp.SetUnchecked(int(j)) {
			changed++
		}
	}
	return changed
}

// base returns the estimation base: the finest component whose fill is
// below its saturation threshold, or len(comps) (one past the last) if
// every component is saturated.
func (s *Sketch) base() int {
	for k, comp := range s.comps {
		setmax := int(setmaxFrac * float64(comp.Len()))
		if comp.Ones() <= setmax {
			return k + 1
		}
	}
	return len(s.comps) + 1
}

// Saturated reports whether even the last component is past its threshold,
// in which case the estimate is unreliable (boundary blow-up).
func (s *Sketch) Saturated() bool { return s.base() > len(s.comps) }

// Estimate returns the multiresolution estimate
// 2^(base−1) · Σ_{k ≥ base} b_k·ln(b_k/z_k).
//
// When even the last component is past setmax there is no valid base; the
// estimation rule is applied mechanically with base = c+1, i.e. the last
// component's linear count scaled by 2^c. This overshoots by ≈ 2× — the
// behaviour visible in the S-bitmap paper's Tables 3-4, where mr-bitmap's
// relative errors near n = N cluster at ≈ +100%.
func (s *Sketch) Estimate() float64 {
	base := s.base()
	first := base - 1 // 0-indexed first component to sum
	if base > len(s.comps) {
		first = len(s.comps) - 1 // fully saturated: last component only
	}
	var sum float64
	for k := first; k < len(s.comps); k++ {
		comp := s.comps[k]
		b := float64(comp.Len())
		z := float64(comp.Zeros())
		if z == 0 {
			sum += b * math.Log(b) // saturation cap of the component
			continue
		}
		sum += b * math.Log(b/z)
	}
	return sum * math.Pow(2, float64(base-1))
}

// SizeBits returns the summary memory footprint in bits.
func (s *Sketch) SizeBits() int { return s.nBits }

// Footprint returns the sketch's resident process memory in bytes: the
// struct, every component bitmap, the component pointer slice, and the
// batch-hash scratch.
func (s *Sketch) Footprint() int {
	total := int(unsafe.Sizeof(*s)) + 8*cap(s.comps) + s.scr.Footprint()
	for _, c := range s.comps {
		total += c.Footprint()
	}
	return total
}

// Reset clears the sketch for reuse.
func (s *Sketch) Reset() {
	for _, comp := range s.comps {
		comp.Reset()
	}
}

// Merge ORs another multiresolution bitmap into s, component by component;
// the result summarizes the union of the two streams. The layouts must be
// identical (and the hash functions equal for the union semantics to hold —
// each component is just a hash-indexed bitmap, so the union of two
// same-layout sketches over the same hash is the sketch of the union).
func (s *Sketch) Merge(o *Sketch) error {
	if len(s.comps) != len(o.comps) {
		return fmt.Errorf("mrbitmap: merge of %d-component sketch with %d-component sketch", len(s.comps), len(o.comps))
	}
	for k := range s.comps {
		if s.comps[k].Len() != o.comps[k].Len() {
			return fmt.Errorf("mrbitmap: merge with mismatched component %d (%d vs %d bits)", k+1, s.comps[k].Len(), o.comps[k].Len())
		}
	}
	for k := range s.comps {
		if err := s.comps[k].UnionWith(o.comps[k]); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBinary serializes the component layout and bitmaps. The hash
// function is not serialized; pass the original hasher to Unmarshal to
// continue counting.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(s.comps)))
	for _, comp := range s.comps {
		cb, err := comp.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cb)))
		buf = append(buf, cb...)
	}
	return buf, nil
}

// UnmarshalBinary reconstructs the sketch in place from MarshalBinary
// output. A nil hasher field is replaced by the default Mixer with seed 1.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("mrbitmap: truncated serialization")
	}
	c := int(binary.LittleEndian.Uint32(data))
	if c < 1 || c > 64 {
		return fmt.Errorf("mrbitmap: implausible component count %d", c)
	}
	data = data[4:]
	comps := make([]*bitvec.Vector, c)
	nBits := 0
	for k := 0; k < c; k++ {
		if len(data) < 4 {
			return fmt.Errorf("mrbitmap: truncated component %d header", k+1)
		}
		clen := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if clen > len(data) {
			return fmt.Errorf("mrbitmap: truncated component %d body", k+1)
		}
		v := &bitvec.Vector{}
		if err := v.UnmarshalBinary(data[:clen]); err != nil {
			return fmt.Errorf("mrbitmap: component %d: %w", k+1, err)
		}
		if v.Len() < 1 {
			return fmt.Errorf("mrbitmap: component %d is empty", k+1)
		}
		comps[k] = v
		nBits += v.Len()
		data = data[clen:]
	}
	if len(data) != 0 {
		return fmt.Errorf("mrbitmap: %d trailing bytes after last component", len(data))
	}
	s.comps, s.nBits = comps, nBits
	if s.h == nil {
		s.h = uhash.NewMixer(1)
	}
	return nil
}

// Unmarshal reconstructs a sketch from MarshalBinary output, hashing with h
// (nil selects the default Mixer with seed 1).
func Unmarshal(data []byte, h uhash.Hasher) (*Sketch, error) {
	s := &Sketch{h: h}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}
