package experiment

import (
	"fmt"
	"math"

	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/tablewriter"
	"repro/internal/uhash"
)

// The ablation experiments isolate the design decisions the paper argues
// for (DESIGN.md §6): the Theorem-2 rate schedule, the Equation-8
// truncation, hash-family insensitivity, and the sampling resolution d.

func init() {
	register("ablation_rates",
		"Ablation: Theorem-2 rates vs naive geometric rates vs rates without the occupancy correction",
		runAblationRates)
	register("ablation_trunc",
		"Ablation: estimator with vs without the Equation-8 truncation near the N boundary",
		runAblationTrunc)
	register("ablation_hash",
		"Ablation: mixing hash vs Carter-Wegman vs tabulation hashing",
		runAblationHash)
	register("ablation_d",
		"Ablation: sampling-fraction resolution d ∈ {8, 12, 16, 30, 64}",
		runAblationD)
}

// runAblationRates shows that scale-invariance comes from the dimensioning
// rule, not from adaptive sampling per se: the same sketch machinery under
// naive schedules has errors that drift with n.
func runAblationRates(o Options) (*Result, error) {
	const m = 1800
	const n = 1 << 20
	optimal, err := core.NewConfigMN(m, n)
	if err != nil {
		return nil, err
	}
	geoP, err := core.GeometricRates(m, n)
	if err != nil {
		return nil, err
	}
	geometric, err := core.NewConfigRates(m, geoP)
	if err != nil {
		return nil, err
	}
	uncorrP, err := core.UncorrectedRates(m, optimal.C())
	if err != nil {
		return nil, err
	}
	uncorrected, err := core.NewConfigRates(m, uncorrP)
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name string
		cfg  *core.Config
	}{
		{"theorem2", optimal},
		{"geometric", geometric},
		{"uncorrected", uncorrected},
	}
	ns := logspaceInts(100, n, 1)

	res := &Result{ID: "ablation_rates", Title: Title("ablation_rates")}
	chart := &asciiplot.LineChart{
		Title:  "Rate-schedule ablation — RRMSE% vs cardinality (m=1800, N=2^20)",
		XLabel: "cardinality (log10)",
		YLabel: "RRMSE %",
		LogX:   true,
	}
	tbl := tablewriter.New("RRMSE (%) by schedule", "n", "theorem2", "geometric", "uncorrected")
	rows := map[int][]string{}
	for _, v := range ns {
		rows[v] = []string{fmt.Sprintf("%d", v)}
	}
	for _, variant := range variants {
		series := asciiplot.Series{Name: variant.name}
		minR, maxR := 1.0, 0.0
		cfg := variant.cfg
		for _, v := range ns {
			sum := cell(o, func(seed uint64) Counter {
				return core.NewSketch(cfg, seed)
			}, v, hashString("abl_rates"+variant.name))
			r := sum.RRMSE()
			series.X = append(series.X, float64(v))
			series.Y = append(series.Y, 100*r)
			rows[v] = append(rows[v], fmt.Sprintf("%.2f", 100*r))
			if r < minR {
				minR = r
			}
			if r > maxR {
				maxR = r
			}
		}
		if err := chart.Add(series); err != nil {
			return nil, err
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: RRMSE spread across the sweep %.2f%%..%.2f%% (ratio %.2f)",
			variant.name, 100*minR, 100*maxR, maxR/minR))
	}
	for _, v := range ns {
		tbl.AddRow(rows[v]...)
	}
	res.Tables = append(res.Tables, tbl)
	res.Plots = append(res.Plots, chart.String())
	res.Notes = append(res.Notes,
		"expected: theorem2 flat; geometric drifts strongly with n; uncorrected degrades as the bitmap fills")
	return res, nil
}

// runAblationTrunc isolates Equation (8). Rather than Monte Carlo — whose
// replicate noise at the boundary would swamp the few-percent effect — it
// computes the EXACT RRMSE of both estimators by dynamic programming over
// the Theorem-1 Markov chain, so the table is deterministic to numerical
// precision.
func runAblationTrunc(o Options) (*Result, error) {
	const m = 400
	truncated, err := core.NewConfigMN(m, 2e4)
	if err != nil {
		return nil, err
	}
	// The untruncated variant uses the same Theorem-2 rates (pinned past
	// k*, as required for monotonicity) but lets the estimator table keep
	// growing beyond k*.
	p := make([]float64, m)
	for k := 1; k <= m; k++ {
		p[k-1] = truncated.P(k)
	}
	untruncated, err := core.NewConfigRates(m, p)
	if err != nil {
		return nil, err
	}
	n := int(truncated.N())

	fracs := []float64{0.5, 0.8, 0.9, 0.95, 1.0}
	targets := make(map[int]float64, len(fracs))
	for _, f := range fracs {
		targets[int(f*float64(n))] = f
	}

	tbl := tablewriter.New(
		fmt.Sprintf("Exact RRMSE (%%) near the boundary (m=%d, N=%d, ε=%.2f%%)", m, n, 100*truncated.Epsilon()),
		"n/N", "truncated (Eq. 8)", "untruncated", "exact bias% (truncated)")
	res := &Result{ID: "ablation_trunc", Title: Title("ablation_trunc")}

	chainT := core.NewChain(truncated)
	chainU := core.NewChain(untruncated)
	for t := 1; t <= n; t++ {
		chainT.Step()
		chainU.Step()
		f, hit := targets[t]
		if !hit {
			continue
		}
		tm, tv := chainT.EstimateMoments()
		um, uv := chainU.EstimateMoments()
		nn := float64(t)
		rrmse := func(mean, variance float64) float64 {
			d := mean - nn
			return math.Sqrt(variance+d*d) / nn
		}
		tbl.AddRow(fmt.Sprintf("%.2f", f),
			fmt.Sprintf("%.3f", 100*rrmse(tm, tv)),
			fmt.Sprintf("%.3f", 100*rrmse(um, uv)),
			fmt.Sprintf("%+.3f", 100*(tm/nn-1)))
		o.tracef("ablation_trunc n/N=%.2f done\n", f)
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"computed exactly (no Monte Carlo) by DP over the Theorem-1 chain",
		"expected: identical away from the boundary; approaching n = N the truncated estimator trades a small negative bias for a variance cut, ending BELOW ε while the untruncated one stays at ε — the paper's Section 5.2 remark")
	return res, nil
}

// runAblationHash verifies the universal-hash modeling assumption: three
// structurally different hash families give statistically identical
// accuracy.
func runAblationHash(o Options) (*Result, error) {
	const m = 1800
	const n = 1 << 17
	cfg, err := core.NewConfigMN(m, n)
	if err != nil {
		return nil, err
	}
	families := []struct {
		name string
		mk   func(seed uint64) uhash.Hasher
	}{
		{"mixer", func(s uint64) uhash.Hasher { return uhash.NewMixer(s) }},
		{"carter-wegman", func(s uint64) uhash.Hasher { return uhash.NewCarterWegman(s) }},
		{"tabulation", func(s uint64) uhash.Hasher { return uhash.NewTabulation(s) }},
	}
	ns := []int{100, 10000, 100000}
	tbl := tablewriter.New(fmt.Sprintf("RRMSE (%%) by hash family (theory %.2f%%)", 100*cfg.Epsilon()),
		"n", families[0].name, families[1].name, families[2].name)
	res := &Result{ID: "ablation_hash", Title: Title("ablation_hash")}
	for _, v := range ns {
		row := []string{fmt.Sprintf("%d", v)}
		for _, fam := range families {
			mk := fam.mk
			sum := cell(o, func(seed uint64) Counter {
				return core.NewSketch(cfg, 0, core.WithHasher(mk(seed)))
			}, v, hashString("abl_hash"+fam.name))
			row = append(row, fmt.Sprintf("%.2f", 100*sum.RRMSE()))
		}
		tbl.AddRow(row...)
		o.tracef("ablation_hash n=%d done\n", v)
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"expected: all three columns within Monte-Carlo noise of the theory line — accuracy does not hinge on a cryptographic-strength hash")
	return res, nil
}

// runAblationD sweeps the sampling resolution d of Algorithm 2. Small d
// floors the achievable sampling rate at 2^-d, biasing large-n estimates;
// d = 30 (the paper's suggestion) is already indistinguishable from 64.
func runAblationD(o Options) (*Result, error) {
	const m = 1800
	const n = 1 << 20
	cfg, err := core.NewConfigMN(m, n)
	if err != nil {
		return nil, err
	}
	ds := []uint{8, 12, 16, 30, 64}
	ns := []int{1000, 100000, 1 << 20}
	header := []string{"n"}
	for _, d := range ds {
		header = append(header, fmt.Sprintf("d=%d", d))
	}
	tbl := tablewriter.New(fmt.Sprintf("RRMSE (%%) by sampling resolution (theory %.2f%%)", 100*cfg.Epsilon()), header...)
	res := &Result{ID: "ablation_d", Title: Title("ablation_d")}
	for _, v := range ns {
		row := []string{fmt.Sprintf("%d", v)}
		for _, d := range ds {
			d := d
			sum := cell(o, func(seed uint64) Counter {
				return core.NewSketch(cfg, seed, core.WithResolution(d))
			}, v, hashString(fmt.Sprintf("abl_d%d", d)))
			row = append(row, fmt.Sprintf("%.2f", 100*sum.RRMSE()))
		}
		tbl.AddRow(row...)
		o.tracef("ablation_d n=%d done\n", v)
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"smallest rate in this configuration: p_k* = "+fmt.Sprintf("%.2e", cfg.P(cfg.KMax()))+
			"; resolutions with 2^-d above that floor the rates and bias large-n estimates",
		"expected: d=30 and d=64 identical; d=8 biased at n ≥ 10^5")
	return res, nil
}
