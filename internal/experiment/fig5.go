package experiment

import (
	"fmt"
	"sync"

	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/netflow"
	"repro/internal/stats"
	"repro/internal/tablewriter"
)

func init() {
	register("fig5",
		"Figure 5: per-minute flow counts and S-bitmap estimates on two Slammer-outbreak links; N = 10^6, m = 8000",
		runFig5)
	register("fig6",
		"Figure 6: proportion of per-minute estimates with |relative error| above a threshold, four algorithms, two Slammer links",
		runFig6)
}

// slammerMinutes subsamples the 540-minute trace under the cell budget so
// quick runs stay quick; a full run processes every minute.
func slammerMinutes(o Options, tr netflow.Trace) []int {
	// Estimate the per-minute cost (flows × 3 packets) and take every k-th
	// minute so the per-(link, algorithm) total stays within 25× the cell
	// budget (traces are one "cell" swept over time).
	total := 0
	for _, c := range tr.Counts {
		total += c * 3
	}
	budget := o.CellBudget * 25
	k := (total + budget - 1) / budget
	if k < 1 {
		k = 1
	}
	var idx []int
	for i := 0; i < len(tr.Counts); i += k {
		idx = append(idx, i)
	}
	return idx
}

// estimateTrace runs one sketch per interval over the selected minutes,
// in parallel, returning per-minute estimates.
func estimateTrace(o Options, tr netflow.Trace, minutes []int, mk makeCounter) []float64 {
	ests := make([]float64, len(minutes))
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Workers)
	for i, minute := range minutes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i, minute int) {
			defer wg.Done()
			defer func() { <-sem }()
			sk := mk(o.Seed ^ (uint64(minute+1) * 0x9e3779b97f4a7c15))
			ingest(sk, tr.IntervalStream(minute))
			ests[i] = sk.Estimate()
		}(i, minute)
	}
	wg.Wait()
	return ests
}

// runFig5 reproduces the time-series panels: truth vs S-bitmap estimates
// per minute on both links, with the paper's configuration (N = 10^6,
// m = 8000 bits → C ≈ 2026.55, ε ≈ 2.2%).
func runFig5(o Options) (*Result, error) {
	cfg, err := core.NewConfigMN(8000, 1e6)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig5", Title: Title("fig5")}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"configuration: m=8000, N=10^6 → C=%.2f, expected std dev ε=%.2f%% (paper: C=2026.55, ε=2.2%%)",
		cfg.C(), 100*cfg.Epsilon()))

	for link := 1; link >= 0; link-- { // paper shows link 1 first
		tr := netflow.Slammer(link, o.Seed)
		minutes := slammerMinutes(o, tr)
		ests := estimateTrace(o, tr, minutes, func(seed uint64) Counter {
			return core.NewSketch(cfg, seed)
		})
		chart := &asciiplot.LineChart{
			Title:  fmt.Sprintf("Figure 5(%c) — link %d: flows/minute, truth (*) vs S-bitmap (o)", 'a'+(1-link), link),
			XLabel: "minute",
			YLabel: "flows (log10)",
			LogY:   true,
		}
		truth := asciiplot.Series{Name: "truth", Marker: '*'}
		est := asciiplot.Series{Name: "S-bitmap estimate", Marker: 'o'}
		var errSum stats.ErrorSummary
		for i, minute := range minutes {
			truth.X = append(truth.X, float64(minute))
			truth.Y = append(truth.Y, float64(tr.Counts[minute]))
			est.X = append(est.X, float64(minute))
			est.Y = append(est.Y, ests[i])
			errSum.AddEstimate(ests[i], float64(tr.Counts[minute]))
		}
		if err := chart.Add(truth); err != nil {
			return nil, err
		}
		if err := chart.Add(est); err != nil {
			return nil, err
		}
		res.Plots = append(res.Plots, chart.String())

		tbl := tablewriter.New(fmt.Sprintf("Link %d sample (every %dth shown of %d measured minutes)",
			link, max(1, len(minutes)/12), len(minutes)),
			"minute", "true flows", "S-bitmap", "rel err %")
		step := max(1, len(minutes)/12)
		for i := 0; i < len(minutes); i += step {
			m := minutes[i]
			tbl.AddRow(
				fmt.Sprintf("%d", m),
				fmt.Sprintf("%d", tr.Counts[m]),
				fmt.Sprintf("%.0f", ests[i]),
				fmt.Sprintf("%+.2f", 100*(ests[i]/float64(tr.Counts[m])-1)))
		}
		res.Tables = append(res.Tables, tbl)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"link %d: observed RRMSE over %d minutes = %.2f%% (expected %.2f%%)",
			link, len(minutes), 100*errSum.RRMSE(), 100*cfg.Epsilon()))
	}
	res.Notes = append(res.Notes,
		"expected shape (paper Fig 5): estimate curve visually indistinguishable from truth, bursts included")
	return res, nil
}

// fig6Thresholds is the x-axis of Figures 6 and 8.
var fig6Thresholds = []float64{0.04, 0.045, 0.05, 0.055, 0.06, 0.065, 0.07, 0.075, 0.08, 0.085, 0.09, 0.095, 0.10}

// runFig6 reproduces the error-exceedance comparison on the same traces:
// for each algorithm, the fraction of minutes whose |relative error|
// exceeds each threshold.
func runFig6(o Options) (*Result, error) {
	const mbits = 8000
	const n = 1e6
	algs, err := algorithms(mbits, n)
	if err != nil {
		return nil, err
	}
	sbCfg, err := core.NewConfigMN(mbits, n)
	if err != nil {
		return nil, err
	}
	eps := sbCfg.Epsilon()

	res := &Result{ID: "fig6", Title: Title("fig6")}
	for link := 1; link >= 0; link-- {
		tr := netflow.Slammer(link, o.Seed)
		minutes := slammerMinutes(o, tr)
		chart := &asciiplot.LineChart{
			Title:  fmt.Sprintf("Figure 6(%c) — link %d: P(|rel err| > t) vs t", 'a'+(1-link), link),
			XLabel: "absolute relative error threshold",
			YLabel: "proportion of minutes",
		}
		tbl := tablewriter.New(fmt.Sprintf("Link %d exceedance proportions", link),
			append([]string{"threshold"}, algOrder...)...)
		curves := map[string][]float64{}
		sums := map[string]*stats.ErrorSummary{}
		for _, name := range algOrder {
			ests := estimateTrace(o, tr, minutes, algs[name])
			sum := &stats.ErrorSummary{}
			for i, minute := range minutes {
				sum.AddEstimate(ests[i], float64(tr.Counts[minute]))
			}
			sums[name] = sum
			var ys []float64
			for _, th := range fig6Thresholds {
				ys = append(ys, sum.ExceedFraction(th))
			}
			curves[name] = ys
			if err := chart.Add(asciiplot.Series{Name: name, X: fig6Thresholds, Y: ys}); err != nil {
				return nil, err
			}
			o.tracef("fig6 link=%d alg=%s done\n", link, name)
		}
		for i, th := range fig6Thresholds {
			row := []string{fmt.Sprintf("%.3f", th)}
			for _, name := range algOrder {
				row = append(row, fmt.Sprintf("%.3f", curves[name][i]))
			}
			tbl.AddRow(row...)
		}
		res.Tables = append(res.Tables, tbl)
		res.Plots = append(res.Plots, chart.String())
		// The paper highlights 2ε/3ε/4ε vertical lines; report 3ε.
		th3 := 3 * eps
		row := fmt.Sprintf("link %d at 3ε=%.3f: ", link, th3)
		for _, name := range algOrder {
			row += fmt.Sprintf("%s=%.3f ", name, sums[name].ExceedFraction(th3))
		}
		res.Notes = append(res.Notes, row)
	}
	res.Notes = append(res.Notes,
		"expected shape (paper Fig 6): S-bitmap's curve lowest (most resistant to large errors); ≈0 of its minutes exceed 3× its expected std dev while competitors retain ≥1.5%")
	return res, nil
}
