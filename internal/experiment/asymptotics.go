package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hyperloglog"
	"repro/internal/tablewriter"
)

func init() {
	register("asymptotics",
		"Section 5.1 asymptotics: the m ≈ ε⁻²/2·(1+ln(1+2Nε²)) approximation and the S-bitmap-vs-HLL crossover ε* = sqrt((log N)^η/(2eN))",
		runAsymptotics)
}

// eta is the paper's crossover exponent (§5.1): η ≈ 3.1206. It arises as
// 2·1.04²·α'/ln 2 where the HLL register width is α ≈ log₂log₂N:
// equating ε⁻²/2·ln(2Nε²) with 1.04²·ε⁻²·log₂log₂N gives
// 2Nε² = (log₂N)^(2·1.0816/ln 2) = (log₂N)^3.1206.
const eta = 3.1206

// crossoverEps finds the ε at which exact Eq. (7) memory equals the
// HLL memory model, by bisection over ε. Returns NaN if there is no
// crossover in (1e-6, 0.9).
func crossoverEps(n float64) float64 {
	ratio := func(eps float64) float64 {
		hll, err1 := hyperloglog.MemoryBitsFor(n, eps)
		sb, err2 := core.MemoryForNE(n, eps)
		if err1 != nil || err2 != nil {
			return math.NaN()
		}
		return float64(hll) / float64(sb)
	}
	lo, hi := 1e-6, 0.9
	rLo, rHi := ratio(lo), ratio(hi)
	if math.IsNaN(rLo) || math.IsNaN(rHi) || (rLo-1)*(rHi-1) > 0 {
		return math.NaN() // no sign change: one method dominates throughout
	}
	for i := 0; i < 100; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection (ε spans decades)
		if r := ratio(mid); (r-1)*(rLo-1) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// runAsymptotics checks the two analytic claims of Section 5.1 that the
// other experiments do not cover directly:
//
//  1. the closed-form memory approximation m ≈ ε⁻²/2·(1+ln(1+2Nε²))
//     against the exact Equation (7) solution, and
//  2. the asymptotic crossover ε* = sqrt((log₂N)^η/(2eN)) against the
//     empirical crossover where Eq. (7) memory equals HLL memory.
func runAsymptotics(o Options) (*Result, error) {
	res := &Result{ID: "asymptotics", Title: Title("asymptotics")}

	approx := tablewriter.New("Eq. (7) exact vs §5.1 approximation (bits)",
		"N", "ε", "exact m", "approx m", "rel diff %")
	for _, n := range []float64{1e3, 1e5, 1e7} {
		for _, eps := range []float64{0.01, 0.03, 0.09} {
			exact, err := core.MemoryForNE(n, eps)
			if err != nil {
				return nil, err
			}
			a := 0.5 / (eps * eps) * (1 + math.Log(1+2*n*eps*eps))
			approx.AddRow(
				fmt.Sprintf("%.0e", n), fmt.Sprintf("%.0f%%", 100*eps),
				fmt.Sprintf("%d", exact), fmt.Sprintf("%.0f", a),
				fmt.Sprintf("%+.2f", 100*(a/float64(exact)-1)))
		}
	}
	res.Tables = append(res.Tables, approx)

	cross := tablewriter.New("S-bitmap vs HLL crossover ε*",
		"N", "empirical ε* (Eq. 7 = HLL)", "asymptotic sqrt((log₂N)^η/(2eN))", "ratio")
	for _, n := range []float64{1e4, 1e5, 1e6, 1e7, 1e8} {
		emp := crossoverEps(n)
		asym := math.Sqrt(math.Pow(math.Log2(n), eta) / (2 * math.E * n))
		row := []string{fmt.Sprintf("%.0e", n)}
		if math.IsNaN(emp) {
			row = append(row, "none in (0, 0.9)")
		} else {
			row = append(row, fmt.Sprintf("%.4f", emp))
		}
		row = append(row, fmt.Sprintf("%.4f", asym))
		if math.IsNaN(emp) {
			row = append(row, "-")
		} else {
			row = append(row, fmt.Sprintf("%.2f", emp/asym))
		}
		cross.AddRow(row...)
	}
	res.Tables = append(res.Tables, cross)
	res.Notes = append(res.Notes,
		"expected: the approximation within a few percent of exact Eq. (7); the empirical crossover within a small constant of the asymptotic formula, converging as N grows (the formula is asymptotic in Nε² ≫ 1)",
		"interpretation: below ε* the S-bitmap beats HyperLogLog in memory; the whole practical band (N ≤ 10^6, ε ≥ 1%) sits below it, which is Table 2's story")
	return res, nil
}
