package experiment

import (
	"fmt"

	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/hyperloglog"
	"repro/internal/loglog"
	"repro/internal/mrbitmap"
	"repro/internal/tablewriter"
)

func init() {
	register("fig4",
		"Figure 4: RRMSE vs cardinality for mr-bitmap, LogLog, Hyper-LogLog, S-bitmap; N = 2^20, m ∈ {40000, 3200, 800}",
		runFig4)
}

// algorithms returns the four Section-6 competitors, each dimensioned to
// share one memory budget of mbits bits covering cardinalities up to n.
// The returned map is keyed by the paper's series names.
func algorithms(mbits int, n float64) (map[string]makeCounter, error) {
	sbCfg, err := core.NewConfigMN(mbits, n)
	if err != nil {
		return nil, err
	}
	mrCfg, err := mrbitmap.Dimension(mbits, n)
	if err != nil {
		return nil, err
	}
	llK := loglog.KBitsForBudget(mbits)
	hllK := hyperloglog.KBitsForBudget(mbits)
	return map[string]makeCounter{
		"S-bitmap":  func(seed uint64) Counter { return core.NewSketch(sbCfg, seed) },
		"mr-bitmap": func(seed uint64) Counter { return mrbitmap.New(mrCfg, seed) },
		"LLog":      func(seed uint64) Counter { return loglog.New(llK, seed) },
		"HLLog":     func(seed uint64) Counter { return hyperloglog.New(hllK, seed) },
	}, nil
}

// algOrder fixes presentation order to match the paper's legends.
var algOrder = []string{"HLLog", "LLog", "S-bitmap", "mr-bitmap"}

// runFig4 reproduces the three-panel scale-invariance comparison of
// Section 6.2. Note: the paper's Figure 4 caption says the middle panel
// uses m = 3200 while the panel's strip label reads "m=7200"; we follow
// the caption and the body text (§6.2 second experiment, m = 3,200).
func runFig4(o Options) (*Result, error) {
	const n = 1 << 20
	budgets := []int{40000, 3200, 800}
	ns := logspaceInts(10, n, 2)

	res := &Result{ID: "fig4", Title: Title("fig4")}
	for _, mbits := range budgets {
		algs, err := algorithms(mbits, n)
		if err != nil {
			return nil, err
		}
		chart := &asciiplot.LineChart{
			Title:  fmt.Sprintf("Figure 4 panel m=%d — RRMSE%% vs cardinality", mbits),
			XLabel: "cardinality (log10)",
			YLabel: "RRMSE % (log10)",
			LogX:   true,
			LogY:   true,
		}
		tbl := tablewriter.New(fmt.Sprintf("RRMSE (%%) at m=%d bits", mbits),
			append([]string{"n"}, algOrder...)...)
		series := map[string]*asciiplot.Series{}
		for _, name := range algOrder {
			series[name] = &asciiplot.Series{Name: name}
		}
		for _, v := range ns {
			row := []string{fmt.Sprintf("%d", v)}
			for _, name := range algOrder {
				sum := cell(o, algs[name], v, uint64(mbits)^hashString(name))
				r := sum.RRMSE()
				series[name].X = append(series[name].X, float64(v))
				series[name].Y = append(series[name].Y, 100*r)
				row = append(row, fmt.Sprintf("%.2f", 100*r))
				o.tracef("fig4 m=%d alg=%s n=%d rrmse=%.4f\n", mbits, name, v, r)
			}
			tbl.AddRow(row...)
		}
		for _, name := range algOrder {
			if err := chart.Add(*series[name]); err != nil {
				return nil, err
			}
		}
		res.Tables = append(res.Tables, tbl)
		res.Plots = append(res.Plots, chart.String())
	}
	res.Notes = append(res.Notes,
		"expected shape (paper Fig 4): S-bitmap flat at every budget; at m=40000 it beats all competitors for n > 40000; at m=3200 for n > 1000; mr-bitmap competitive early, catastrophic near the N boundary; LLog worst overall",
		"paper inconsistency: Fig 4 caption says panels use m ∈ {40000, 3200, 800} while the middle panel's strip label reads m=7200; we follow the caption/body text (3200)")
	return res, nil
}

// hashString gives a stable per-name seed component.
func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
