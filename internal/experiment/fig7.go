package experiment

import (
	"fmt"
	"sync"

	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/netflow"
	"repro/internal/stats"
	"repro/internal/tablewriter"
)

func init() {
	register("fig7",
		"Figure 7: histogram of five-minute flow counts across 600 backbone links (log base 2)",
		runFig7)
	register("fig8",
		"Figure 8: number of backbone links with |relative error| above a threshold, four algorithms; N = 1.5×10^6, m = 7200",
		runFig8)
}

// backboneLinks returns the per-link flow counts, possibly subsampled for
// quick runs (full runs use all 600 links, as in the paper).
func backboneLinks(o Options) []int {
	counts := netflow.BackboneSnapshot(600, o.Seed)
	total := 0
	for _, c := range counts {
		total += c * 3
	}
	budget := o.CellBudget * 25
	k := (total + budget - 1) / budget
	if k <= 1 {
		return counts
	}
	var sub []int
	for i := 0; i < len(counts); i += k {
		sub = append(sub, counts[i])
	}
	return sub
}

// runFig7 regenerates the snapshot histogram and checks its quantiles
// against the ones the paper reports.
func runFig7(o Options) (*Result, error) {
	counts := netflow.BackboneSnapshot(600, o.Seed)
	h := stats.NewLog2Histogram()
	vals := make([]float64, len(counts))
	for i, c := range counts {
		h.Add(float64(c))
		vals[i] = float64(c)
	}
	exps, binCounts := h.Bins()
	labels := make([]string, len(exps))
	for i, e := range exps {
		labels[i] = fmt.Sprintf("2^%d", e)
	}
	hist := &asciiplot.Histogram{
		Title:  "Figure 7 — five-minute flow counts across 600 backbone links",
		Labels: labels,
		Counts: binCounts,
	}

	qs := stats.QuantilesSorted(vals, 0.001, 0.25, 0.5, 0.75, 0.99)
	tbl := tablewriter.New("Snapshot quantiles vs paper", "quantile", "synthetic", "paper")
	paper := []float64{18, 196, 2817, 19401, 361485}
	for i, p := range []string{"0.1%", "25%", "50%", "75%", "99%"} {
		tbl.AddRow(p, fmt.Sprintf("%.0f", qs[i]), fmt.Sprintf("%.0f", paper[i]))
	}

	res := &Result{ID: "fig7", Title: Title("fig7")}
	res.Tables = append(res.Tables, tbl)
	res.Plots = append(res.Plots, hist.String())
	res.Notes = append(res.Notes,
		"the paper's own Figure 7 data is likewise simulated (original traces unavailable); our synthetic snapshot is drawn from a piecewise log-linear quantile function through the paper's published quantiles",
		"expected shape: heavy-tailed, spanning 2^4 .. 2^20 with the mass between 2^7 and 2^15")
	return res, nil
}

// runFig8 reproduces the 600-link accuracy comparison with the paper's
// configuration (N = 1.5×10^6, m = 7200 bits → ε ≈ 2.4%).
func runFig8(o Options) (*Result, error) {
	const mbits = 7200
	const n = 1.5e6
	algs, err := algorithms(mbits, n)
	if err != nil {
		return nil, err
	}
	sbCfg, err := core.NewConfigMN(mbits, n)
	if err != nil {
		return nil, err
	}
	eps := sbCfg.Epsilon()
	links := backboneLinks(o)

	res := &Result{ID: "fig8", Title: Title("fig8")}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"configuration: m=%d, N=%.1e → ε=%.2f%% (paper: 2.4%%); %d links measured",
		mbits, float64(n), 100*eps, len(links)))

	chart := &asciiplot.LineChart{
		Title:  "Figure 8 — number of links with |rel err| > t",
		XLabel: "absolute relative error threshold",
		YLabel: "number of links",
	}
	tbl := tablewriter.New("Links exceeding each threshold",
		append([]string{"threshold"}, algOrder...)...)
	sigmaTbl := tablewriter.New("Links beyond k× the S-bitmap expected std dev",
		append([]string{"k"}, algOrder...)...)

	curves := map[string][]float64{}
	sums := map[string]*stats.ErrorSummary{}
	for _, name := range algOrder {
		ests := estimateLinks(o, links, algs[name])
		sum := &stats.ErrorSummary{}
		for i, c := range links {
			sum.AddEstimate(ests[i], float64(c))
		}
		sums[name] = sum
		var ys []float64
		for _, th := range fig6Thresholds {
			ys = append(ys, sum.ExceedFraction(th)*float64(len(links)))
		}
		curves[name] = ys
		if err := chart.Add(asciiplot.Series{Name: name, X: fig6Thresholds, Y: ys}); err != nil {
			return nil, err
		}
		o.tracef("fig8 alg=%s done\n", name)
	}
	for i, th := range fig6Thresholds {
		row := []string{fmt.Sprintf("%.3f", th)}
		for _, name := range algOrder {
			row = append(row, fmt.Sprintf("%.1f", curves[name][i]))
		}
		tbl.AddRow(row...)
	}
	for _, k := range []float64{2, 3, 4} {
		row := []string{fmt.Sprintf("%.0f", k)}
		for _, name := range algOrder {
			cnt := sums[name].ExceedFraction(k*eps) * float64(len(links))
			row = append(row, fmt.Sprintf("%.0f", cnt))
		}
		sigmaTbl.AddRow(row...)
	}

	res.Tables = append(res.Tables, tbl, sigmaTbl)
	res.Plots = append(res.Plots, chart.String())
	res.Notes = append(res.Notes,
		"expected shape (paper Fig 8): S-bitmap and HLLog both accurate (all errors < 8%); S-bitmap most resistant — 0 links beyond 3× its std dev vs 1 (HLLog) and 2 (mr-bitmap); LLog off the chart")
	return res, nil
}

// estimateLinks runs one sketch per link, in parallel.
func estimateLinks(o Options, links []int, mk makeCounter) []float64 {
	ests := make([]float64, len(links))
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Workers)
	for i, count := range links {
		wg.Add(1)
		sem <- struct{}{}
		go func(i, count int) {
			defer wg.Done()
			defer func() { <-sem }()
			sk := mk(o.Seed ^ (uint64(i+1) * 0xbf58476d1ce4e5b9))
			ingest(sk, netflow.LinkStream(count, o.Seed^uint64(i)<<20))
			ests[i] = sk.Estimate()
		}(i, count)
	}
	wg.Wait()
	return ests
}
