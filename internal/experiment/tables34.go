package experiment

import (
	"fmt"

	"repro/internal/tablewriter"
)

func init() {
	register("table3",
		"Table 3: L1, L2 (RRMSE) and 99%-quantile (×100) for S-bitmap, mr-bitmap, Hyper-LogLog; N = 10^4, m = 2700",
		func(o Options) (*Result, error) {
			return runErrorMetricsTable(o, "table3", 2700, 1e4,
				[]int{10, 100, 1000, 5000, 7500, 10000},
				"paper's S-bitmap L2 column: 2.6 at every n — scale-invariance; mr-bitmap explodes to ≈101 at n ≥ 7500; HLLog drifts 3.0→4.4")
		})
	register("table4",
		"Table 4: L1, L2 (RRMSE) and 99%-quantile (×100) for S-bitmap, mr-bitmap, Hyper-LogLog; N = 10^6, m = 6720",
		func(o Options) (*Result, error) {
			return runErrorMetricsTable(o, "table4", 6720, 1e6,
				[]int{10, 100, 1000, 10000, 100000, 500000, 750000, 1000000},
				"paper's S-bitmap L2 column: 2.4-2.5 at every n; mr-bitmap 48.2 at n=750000 and ≈101 at n=10^6; HLLog 1.9→2.8")
		})
}

// runErrorMetricsTable reproduces the Tables 3/4 protocol: three error
// metrics across cardinalities for the three headline algorithms under a
// shared memory budget.
func runErrorMetricsTable(o Options, id string, mbits int, n float64, ns []int, paperNote string) (*Result, error) {
	algs, err := algorithms(mbits, n)
	if err != nil {
		return nil, err
	}
	// Tables 3-4 compare S-bitmap (S), mr-bitmap (mr) and Hyper-LogLog (H).
	names := []string{"S-bitmap", "mr-bitmap", "HLLog"}
	short := map[string]string{"S-bitmap": "S", "mr-bitmap": "mr", "HLLog": "H"}

	header := []string{"n"}
	for _, metric := range []string{"L1", "L2", "q99"} {
		for _, name := range names {
			header = append(header, metric+"·"+short[name])
		}
	}
	tbl := tablewriter.New(
		fmt.Sprintf("L1, L2 and 99%%-quantile of |n̂/n−1| (×100), N=%.0e, m=%d", n, mbits),
		header...)

	for _, v := range ns {
		sums := make(map[string]interface {
			L1() float64
			RRMSE() float64
			QuantileAbs(float64) float64
		}, len(names))
		for _, name := range names {
			sums[name] = cell(o, algs[name], v, uint64(mbits)^hashString(id+name))
			o.tracef("%s alg=%s n=%d done (reps %d)\n", id, name, v, o.reps(v))
		}
		row := []string{fmt.Sprintf("%d", v)}
		for _, metric := range []string{"L1", "L2", "q99"} {
			for _, name := range names {
				var val float64
				switch metric {
				case "L1":
					val = sums[name].L1()
				case "L2":
					val = sums[name].RRMSE()
				case "q99":
					val = sums[name].QuantileAbs(0.99)
				}
				row = append(row, fmt.Sprintf("%.1f", 100*val))
			}
		}
		tbl.AddRow(row...)
	}

	res := &Result{ID: id, Title: Title(id)}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes, paperNote,
		"expected shape: S columns constant in n for all three metrics; mr best at small n, then boundary blow-up; H between")
	return res, nil
}
