package experiment

import (
	"fmt"
	"math"

	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/tablewriter"
)

func init() {
	register("fig2",
		"Figure 2: empirical vs theoretical RRMSE of S-bitmap, N = 2^20, m ∈ {4000, 1800}",
		runFig2)
}

// runFig2 reproduces the simulation validation of Section 6.1: for each
// memory budget, sweep cardinalities over powers of two up to N = 2^20 and
// compare the Monte-Carlo RRMSE against the theoretical (C−1)^(−1/2).
func runFig2(o Options) (*Result, error) {
	const n = 1 << 20
	budgets := []int{4000, 1800}

	res := &Result{ID: "fig2", Title: Title("fig2")}
	chart := &asciiplot.LineChart{
		Title:  "Figure 2 — relative error vs cardinality (flat lines = scale-invariance)",
		XLabel: "cardinality (log10)",
		YLabel: "RRMSE",
		LogX:   true,
	}
	// Cardinality grid: powers of 2 from 4 to 2^20, as in the figure.
	var ns []int
	for v := 4; v <= n; v *= 2 {
		ns = append(ns, v)
	}
	rows := make(map[int][]string, len(ns))
	for _, v := range ns {
		rows[v] = []string{fmt.Sprintf("%d", v)}
	}

	for _, m := range budgets {
		cfg, err := core.NewConfigMN(m, n)
		if err != nil {
			return nil, err
		}
		eps := cfg.Epsilon()
		series := asciiplot.Series{Name: fmt.Sprintf("m=%d (theory %.1f%%)", m, 100*eps)}
		worst := 0.0
		for _, v := range ns {
			sum := cell(o, func(seed uint64) Counter {
				return core.NewSketch(cfg, seed)
			}, v, uint64(m))
			r := sum.RRMSE()
			series.X = append(series.X, float64(v))
			series.Y = append(series.Y, r)
			rows[v] = append(rows[v], fmt.Sprintf("%.2f", 100*r))
			if dev := math.Abs(r-eps) / eps; dev > worst {
				worst = dev
			}
			o.tracef("fig2 m=%d n=%d rrmse=%.4f (theory %.4f, reps %d)\n", m, v, r, eps, o.reps(v))
		}
		if err := chart.Add(series); err != nil {
			return nil, err
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"m=%d: theoretical RRMSE %.2f%% (paper: %s); worst deviation across the sweep %.0f%% of theory",
			m, 100*eps, map[int]string{4000: "3.3%", 1800: "5.2%"}[m], 100*worst))
	}

	// Rebuild the table with proper headers now that budgets are known.
	out := tablewriter.New("Empirical RRMSE (%) by cardinality",
		"n", "m=4000", "m=1800")
	for _, v := range ns {
		out.AddRow(rows[v]...)
	}
	res.Tables = append(res.Tables, out)
	res.Plots = append(res.Plots, chart.String())
	res.Notes = append(res.Notes,
		"expected shape (paper Fig 2): both curves flat across five orders of magnitude, sitting on their theory lines")
	return res, nil
}
