package experiment

import (
	"io"
	"strconv"
	"strings"
	"testing"
)

// smokeOptions keeps integration runs fast: tiny cell budgets, few
// replicates, deterministic seed.
func smokeOptions() Options {
	return Options{Seed: 7, CellBudget: 60_000, MinReps: 8, MaxReps: 40}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation_d", "ablation_hash", "ablation_rates", "ablation_trunc",
		"asymptotics",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"spread",
		"table2", "table3", "table4", "theory_exact",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d ids %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("id[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, id := range want {
		if Title(id) == "" {
			t.Errorf("id %q has no title", id)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown id did not error")
	}
}

// TestAllExperimentsSmoke runs every registered experiment at smoke scale
// and sanity-checks its output structure renders.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke integration skipped in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(id, smokeOptions())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.ID != id {
				t.Errorf("result id %q", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Errorf("%s produced no tables", id)
			}
			var b strings.Builder
			if err := res.Render(&b); err != nil {
				t.Fatalf("render: %v", err)
			}
			if len(b.String()) < 100 {
				t.Errorf("%s rendered suspiciously little output:\n%s", id, b.String())
			}
		})
	}
}

// TestFig2ScaleInvariance asserts the substantive claim at smoke scale:
// the S-bitmap RRMSE stays within a factor-2 band of theory across the
// sweep (Monte-Carlo noise at 8-40 replicates is large, but drift of the
// kind LogLog shows would be 10x).
func TestFig2ScaleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke integration skipped in -short mode")
	}
	o := smokeOptions()
	o.CellBudget = 400_000
	o.MinReps = 60
	res, err := Run("fig2", o)
	if err != nil {
		t.Fatal(err)
	}
	// Parse the m=4000 column of the output table: theory is 3.31%.
	tbl := res.Tables[0]
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			continue
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			t.Fatalf("unparseable n cell %q", fields[0])
		}
		if n < 100 {
			// At tiny n the error distribution is a point mass plus a rare
			// (P ≈ 1/C) total-miss event; tens of replicates cannot
			// estimate its RRMSE. The full-fidelity run covers this range.
			continue
		}
		r, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparseable RRMSE cell %q", fields[1])
		}
		if r < 3.31/2 || r > 3.31*2 {
			t.Errorf("n=%d: m=4000 RRMSE %.2f%% outside [1.7, 6.6] band", n, r)
		}
	}
}

// TestTable2IsDeterministic: analytic experiments must render identically
// across runs.
func TestTable2IsDeterministic(t *testing.T) {
	a, err := Run("table2", smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("table2", smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	if err := a.Render(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Error("table2 output differs across runs")
	}
}

// TestTheoryExactGolden pins the exact (noise-free) Table 3 numbers: any
// change to the dimensioning rule, the chain, or the truncation logic
// that alters these values is a behavioral regression.
func TestTheoryExactGolden(t *testing.T) {
	res, err := Run("theory_exact", smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Tables[0].WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"100,2.09,2.61,6.50,",
		"1000,2.09,2.61,6.65,",
		"7500,2.08,2.61,6.79,",
		"10000,1.05,1.83,5.86,-1.050",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("golden row %q missing from:\n%s", want, got)
		}
	}
}

// TestWriteCSVs verifies the CSV export path used by sbench -csv.
func TestWriteCSVs(t *testing.T) {
	res, err := Run("table2", smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]*strings.Builder{}
	paths, err := res.WriteCSVs(func(name string) (io.WriteCloser, error) {
		b := &strings.Builder{}
		files[name] = b
		return nopCloser{b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "table2_0.csv" {
		t.Fatalf("paths = %v", paths)
	}
	if !strings.Contains(files["table2_0.csv"].String(), "315.2") {
		t.Errorf("CSV content wrong:\n%s", files["table2_0.csv"].String())
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func TestAdaptiveReps(t *testing.T) {
	o := Options{CellBudget: 1000, MinReps: 5, MaxReps: 50}.withDefaults()
	if got := o.reps(1); got != 50 {
		t.Errorf("reps(1) = %d, want MaxReps 50", got)
	}
	if got := o.reps(100); got != 10 {
		t.Errorf("reps(100) = %d, want 10", got)
	}
	if got := o.reps(1_000_000); got != 5 {
		t.Errorf("reps(1e6) = %d, want MinReps 5", got)
	}
}

// TestFig4DimensioningSucceeds guards the interplay between the shared
// memory budgets of Figure 4 / Tables 3-4 and every algorithm's
// dimensioning: a change to mrbitmap.Dimension or the budget → register
// mappings that breaks any published configuration must fail loudly here,
// not at experiment runtime.
func TestFig4DimensioningSucceeds(t *testing.T) {
	configs := []struct {
		mbits int
		n     float64
	}{
		{40000, 1 << 20}, {3200, 1 << 20}, {800, 1 << 20}, // fig4 panels
		{2700, 1e4},   // table3
		{6720, 1e6},   // table4
		{8000, 1e6},   // fig5/fig6
		{7200, 1.5e6}, // fig8
	}
	for _, c := range configs {
		algs, err := algorithms(c.mbits, c.n)
		if err != nil {
			t.Fatalf("m=%d N=%g: %v", c.mbits, c.n, err)
		}
		if len(algs) != len(algOrder) {
			t.Fatalf("m=%d N=%g: %d algorithms, want %d", c.mbits, c.n, len(algs), len(algOrder))
		}
		for _, name := range algOrder {
			sk := algs[name](1)
			// Budget discipline: no sketch may exceed the shared budget.
			if sk.SizeBits() > c.mbits {
				t.Errorf("m=%d N=%g: %s uses %d bits > budget", c.mbits, c.n, name, sk.SizeBits())
			}
			// And none may be degenerate (under 1/20 of it).
			if sk.SizeBits() < c.mbits/20 {
				t.Errorf("m=%d N=%g: %s uses only %d bits of %d", c.mbits, c.n, name, sk.SizeBits(), c.mbits)
			}
		}
	}
}

func TestLogspaceInts(t *testing.T) {
	xs := logspaceInts(10, 1000, 1)
	if xs[0] != 10 || xs[len(xs)-1] != 1000 {
		t.Errorf("endpoints wrong: %v", xs)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("not strictly increasing: %v", xs)
		}
	}
}
