// Package experiment is the reproduction harness: one registered runner
// per table or figure in the paper's evaluation (Sections 5-7), plus the
// ablation studies listed in DESIGN.md.
//
// Each runner produces a Result holding the regenerated tables and ASCII
// figures together with paper-comparison notes. Runners accept an Options
// value controlling fidelity: replication is adaptive — each (algorithm,
// cardinality) cell spends at most CellBudget sketch updates, clamped to
// [MinReps, MaxReps] replicates — so the same code path scales from a
// seconds-long smoke run to a full paper-fidelity regeneration
// (cmd/sbench -full).
package experiment

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/tablewriter"
)

// Counter is the minimal sketch surface the harness needs; every sketch in
// this module satisfies it (it mirrors the root package's Counter).
type Counter interface {
	AddUint64(uint64) bool
	Estimate() float64
	SizeBits() int
}

// Options controls experiment fidelity and determinism.
type Options struct {
	// Seed derives every stream and sketch seed; fixed default 1.
	Seed uint64
	// Workers bounds replicate parallelism; 0 = GOMAXPROCS.
	Workers int
	// CellBudget caps the number of sketch updates spent per (algorithm,
	// cardinality) cell; replicates = CellBudget/n clamped to
	// [MinReps, MaxReps]. 0 = 2e6 (a quick run).
	CellBudget int
	// MinReps/MaxReps clamp adaptive replication; 0 = 20 / 1000.
	MinReps int
	MaxReps int
	// Trace receives progress lines when non-nil.
	Trace io.Writer
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CellBudget <= 0 {
		o.CellBudget = 2_000_000
	}
	if o.MinReps <= 0 {
		o.MinReps = 20
	}
	if o.MaxReps <= 0 {
		o.MaxReps = 1000
	}
	return o
}

// reps returns the adaptive replicate count for a cell of cardinality n.
func (o Options) reps(n int) int {
	if n < 1 {
		n = 1
	}
	r := o.CellBudget / n
	if r < o.MinReps {
		r = o.MinReps
	}
	if r > o.MaxReps {
		r = o.MaxReps
	}
	return r
}

func (o Options) tracef(format string, args ...interface{}) {
	if o.Trace != nil {
		fmt.Fprintf(o.Trace, format, args...)
	}
}

// Result is the output of one experiment run.
type Result struct {
	ID     string
	Title  string
	Tables []*tablewriter.Table
	Plots  []string // pre-rendered ASCII figures
	Notes  []string // paper-comparison commentary
}

// Render writes the full result (tables, plots, notes) to w.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, p := range r.Plots {
		if _, err := fmt.Fprintln(w, p); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVs writes each of the result's tables as a CSV file named
// <id>_<index>.csv under dir, returning the written paths. The caller
// provides the writer factory so the package stays filesystem-free in
// tests.
func (r *Result) WriteCSVs(create func(name string) (io.WriteCloser, error)) ([]string, error) {
	var paths []string
	for i, t := range r.Tables {
		name := fmt.Sprintf("%s_%d.csv", r.ID, i)
		f, err := create(name)
		if err != nil {
			return paths, err
		}
		werr := t.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			return paths, werr
		}
		if cerr != nil {
			return paths, cerr
		}
		paths = append(paths, name)
	}
	return paths, nil
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

var registry = map[string]struct {
	title  string
	runner Runner
}{}

// register is called from each experiment file's init.
func register(id, title string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiment: duplicate id " + id)
	}
	registry[id] = struct {
		title  string
		runner Runner
	}{title, r}
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the registered title for id ("" if unknown).
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given id.
func Run(id string, o Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.runner(o.withDefaults())
}

// makeCounter builds a fresh sketch for one replicate.
type makeCounter func(seed uint64) Counter

// BatchCounter is the optional batch-ingestion face of a Counter,
// mirroring the root package's BulkAdder uint64 surface; every sketch in
// this module implements it.
type BatchCounter interface {
	AddBatch64(items []uint64) int
}

// ingestBufLen is the batch length of the harness's stream driver: large
// enough to amortize dispatch, small enough (8 KiB) to stay cache-resident
// alongside the sketch.
const ingestBufLen = 1024

// ingest drains st into sk, through the sketch's batch path when it has
// one (all module sketches do) and item-at-a-time otherwise. Every
// replicate of every experiment runs through here, so the reproduction
// pipeline itself exercises — and its runtimes benefit from — the same
// fused ingestion path production callers use.
func ingest(sk Counter, st stream.Stream) {
	if bc, ok := sk.(BatchCounter); ok {
		buf := make([]uint64, ingestBufLen)
		stream.ForEachBatch(st, buf, func(b []uint64) { bc.AddBatch64(b) })
		return
	}
	stream.ForEach(st, func(x uint64) { sk.AddUint64(x) })
}

// cell measures the estimation-error distribution of one (sketch factory,
// cardinality) cell: reps() replicates, each streaming n fresh distinct
// items into a fresh sketch, in parallel. Distinct-only streams are used
// because every sketch's state is duplicate-invariant (a property verified
// by each package's tests); the netflow experiments exercise duplicated
// streams separately.
func cell(o Options, mk makeCounter, n int, cellSeed uint64) *stats.ErrorSummary {
	reps := o.reps(n)
	errs := make([]float64, reps)
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Workers)
	for rep := 0; rep < reps; rep++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(rep int) {
			defer wg.Done()
			defer func() { <-sem }()
			seed := o.Seed ^ cellSeed ^ (uint64(rep+1) * 0x9e3779b97f4a7c15)
			sk := mk(seed)
			ingest(sk, stream.NewDistinct(n, seed^0xabcdef12))
			errs[rep] = sk.Estimate()/float64(n) - 1
		}(rep)
	}
	wg.Wait()
	var sum stats.ErrorSummary
	for _, e := range errs {
		sum.AddRelErr(e)
	}
	return &sum
}

// pct renders a fraction as a percentage string with two decimals.
func pct(x float64) string { return fmt.Sprintf("%.2f", 100*x) }

// logspaceInts returns approximately geometric integer steps from lo to hi
// (inclusive), deduplicated and sorted.
func logspaceInts(lo, hi int, perDecade int) []int {
	if lo < 1 {
		lo = 1
	}
	var out []int
	ratio := math.Pow(10, 1/float64(perDecade))
	x := float64(lo)
	for x < float64(hi) {
		out = append(out, int(x+0.5))
		x *= ratio
	}
	out = append(out, hi)
	sort.Ints(out)
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}
