package experiment

import (
	"fmt"
	"math"

	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/hyperloglog"
	"repro/internal/tablewriter"
)

func init() {
	register("table2",
		"Table 2: memory cost (unit: 100 bits) of Hyper-LogLog vs S-bitmap for given (N, ε)",
		runTable2)
	register("fig3",
		"Figure 3: contour of Hyper-LogLog/S-bitmap memory ratio over (ε, N)",
		runFig3)
}

// memoryRatio returns HLL bits / S-bitmap bits for (n, eps), NaN when a
// configuration is infeasible.
func memoryRatio(n, eps float64) float64 {
	hll, err := hyperloglog.MemoryBitsFor(n, eps)
	if err != nil {
		return math.NaN()
	}
	sb, err := core.MemoryForNE(n, eps)
	if err != nil {
		return math.NaN()
	}
	return float64(hll) / float64(sb)
}

// runTable2 regenerates Table 2 analytically: both columns are closed-form
// dimensioning formulas (Equation 7 for S-bitmap; (1.04/ε)²·α bits for
// Hyper-LogLog, the accounting the paper's table uses).
func runTable2(o Options) (*Result, error) {
	ns := []float64{1e3, 1e4, 1e5, 1e6, 1e7}
	epss := []float64{0.01, 0.03, 0.09}

	tbl := tablewriter.New("Memory cost (unit: 100 bits)",
		"N",
		"ε=1% HLLog", "ε=1% S-bitmap",
		"ε=3% HLLog", "ε=3% S-bitmap",
		"ε=9% HLLog", "ε=9% S-bitmap")
	for _, n := range ns {
		row := []string{fmt.Sprintf("%.0e", n)}
		for _, eps := range epss {
			hll, err := hyperloglog.MemoryBitsFor(n, eps)
			if err != nil {
				return nil, err
			}
			sb, err := core.MemoryForNE(n, eps)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", float64(hll)/100), fmt.Sprintf("%.1f", float64(sb)/100))
		}
		tbl.AddRow(row...)
	}

	res := &Result{ID: "table2", Title: Title("table2")}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"paper's S-bitmap row for N=10^6: 315.2 / 47.2 / 6.6; HLLog: 540.8 / 60.1 / 6.7",
		"expected shape: S-bitmap cheaper everywhere here except (N=10^7, ε=9%), where HLLog wins")
	return res, nil
}

// runFig3 renders the memory-ratio contour over a log-scaled (ε, N) grid,
// marking the ratio-1 crossover curve that Figure 3 draws with circles.
func runFig3(o Options) (*Result, error) {
	// ε from 0.5% to 64% in powers of two (the paper's axis reaches 128%,
	// but ε ≥ 100% is not a meaningful configuration for either sketch);
	// N from 10^3 to 10^7.
	var epsGrid []float64
	for e := 0.005; e < 0.7; e *= math.Sqrt2 {
		epsGrid = append(epsGrid, e)
	}
	var nGrid []float64
	for n := 1e3; n <= 1.001e7; n *= math.Sqrt(10) {
		nGrid = append(nGrid, n)
	}

	grid := &asciiplot.ContourGrid{
		Title:  "Figure 3 — memory ratio HLLog/S-bitmap ('=' marks ratio 1; higher digits = S-bitmap wins by more)",
		XLabel: "epsilon (0.5%..64%, log scale)",
		YLabel: "N (1e3..1e7, log scale)",
		Xs:     epsGrid,
		Ys:     nGrid,
		Z:      func(eps, n float64) float64 { return memoryRatio(n, eps) },
		Levels: []float64{0.5, 1, 2, 4, 8},
		Mark:   1,
	}

	// Companion table: ratio at a representative sub-grid.
	tbl := tablewriter.New("HLLog/S-bitmap memory ratio", "N \\ ε", "1%", "2%", "4%", "9%", "16%", "32%")
	for _, n := range []float64{1e3, 1e4, 1e5, 1e6, 1e7} {
		row := []string{fmt.Sprintf("%.0e", n)}
		for _, eps := range []float64{0.01, 0.02, 0.04, 0.09, 0.16, 0.32} {
			row = append(row, fmt.Sprintf("%.2f", memoryRatio(n, eps)))
		}
		tbl.AddRow(row...)
	}

	res := &Result{ID: "fig3", Title: Title("fig3")}
	res.Tables = append(res.Tables, tbl)
	res.Plots = append(res.Plots, grid.String())
	res.Notes = append(res.Notes,
		"expected shape (paper Fig 3): ratio > 1 (S-bitmap wins) in the small-ε/small-N lower-left; the '=' contour sweeps toward larger N as ε grows",
		"paper's asymptotic crossover: S-bitmap wins iff ε < sqrt(log(N)·η/(2eN)), η ≈ 3.1206")
	return res, nil
}
