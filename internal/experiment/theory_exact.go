package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tablewriter"
)

func init() {
	register("theory_exact",
		"Exact S-bitmap error metrics for the Table 3 configuration (N = 10^4, m = 2700), by DP over the Theorem-1 chain — zero Monte-Carlo noise",
		runTheoryExact)
}

// runTheoryExact computes the S-bitmap columns of Table 3 EXACTLY: the
// full estimator distribution at each cardinality gives L1, L2 and the
// 99%-quantile to numerical precision. This separates two questions the
// Monte-Carlo tables entangle: "does the implementation match the
// theory?" (this experiment: yes, deterministically) and "does the theory
// match the paper's published numbers?" (compare the columns below with
// Table 3's S columns: L1 2.1, L2 2.6, q99 ≈ 6.6).
func runTheoryExact(o Options) (*Result, error) {
	cfg, err := core.NewConfigMN(2700, 1e4)
	if err != nil {
		return nil, err
	}
	checkpoints := map[int]bool{10: true, 100: true, 1000: true, 5000: true, 7500: true, 10000: true}

	tbl := tablewriter.New(
		fmt.Sprintf("Exact S-bitmap metrics ×100 (m=2700, N=10^4, ε=%.2f%%)", 100*cfg.Epsilon()),
		"n", "L1", "L2 (RRMSE)", "99% quantile", "bias %")
	chain := core.NewChain(cfg)
	for n := 1; n <= 10000; n++ {
		chain.Step()
		if !checkpoints[n] {
			continue
		}
		l1, l2, q99 := chain.ExactErrorMetrics(n, 0.99)
		mean, _ := chain.EstimateMoments()
		tbl.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", 100*l1),
			fmt.Sprintf("%.2f", 100*l2),
			fmt.Sprintf("%.2f", 100*q99),
			fmt.Sprintf("%+.3f", 100*(mean/float64(n)-1)))
		o.tracef("theory_exact n=%d done\n", n)
	}

	res := &Result{ID: "theory_exact", Title: Title("theory_exact")}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"paper Table 3, S columns: L1 ≈ 2.1, L2 ≈ 2.6, q99 ≈ 6.2-6.9 at every n — compare directly",
		"the bias column verifies Theorem 3's unbiasedness away from the boundary and quantifies the (beneficial) truncation bias at n = N")
	return res, nil
}
