package experiment

import (
	"fmt"

	sbitmap "repro"
	"repro/internal/netflow"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/tablewriter"
)

func init() {
	register("spread",
		"Keyed spread estimation: one S-bitmap per backbone link in a single Store, all links ingested as one interleaved record stream (Section 7.2 deployment shape)",
		runSpread)
}

// runSpread re-runs the Figure 8 accuracy study the way a production
// monitor actually executes it: not 600 separately driven sketches, but
// one keyed Store holding a per-link S-bitmap (N = 1.5×10^6, m = 7200
// bits — the paper's configuration), fed the whole provider's traffic as
// a single stream of (link, flow) records with the links arbitrarily
// interleaved. Per-link accuracy must match the per-sketch runs: the
// Store's routing, lazy materialization, and batch grouping are
// transparent to the estimator.
func runSpread(o Options) (*Result, error) {
	const mbits = 7200
	const n = 1.5e6
	spec := sbitmap.Spec{Kind: sbitmap.KindSBitmap, MemoryBits: mbits, N: n, Seed: o.Seed}
	proto, err := spec.New()
	if err != nil {
		return nil, err
	}
	eps := proto.(*sbitmap.SBitmap).Epsilon()

	links := backboneLinks(o)
	records := netflow.SpreadRecords(links, o.Seed)
	store, err := sbitmap.NewStore[uint64](spec)
	if err != nil {
		return nil, err
	}
	kbuf := make([]uint64, 4096)
	ibuf := make([]uint64, 4096)
	stream.ForEachRecordBatch(records, kbuf, ibuf, func(keys, items []uint64) {
		store.AddBatch64(keys, items)
	})
	if store.Len() != len(links) {
		return nil, fmt.Errorf("spread: store holds %d keys for %d links", store.Len(), len(links))
	}

	sum := &stats.ErrorSummary{}
	for i, truth := range links {
		est, ok := store.Estimate(records.Key(i))
		if !ok {
			return nil, fmt.Errorf("spread: link %d missing from store", i)
		}
		sum.AddEstimate(est, float64(truth))
	}

	res := &Result{ID: "spread", Title: Title("spread")}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"configuration: m=%d bits/link, N=%.1e → ε=%.2f%%; %d links, %d records (3 pkts/flow), interleaved round-robin across links",
		mbits, float64(n), 100*eps, len(links), records.Records()))

	tbl := tablewriter.New("Keyed store accuracy across links",
		"metric", "value")
	tbl.AddRow("links", fmt.Sprintf("%d", len(links)))
	tbl.AddRow("RRMSE", pct(sum.RRMSE())+"%")
	tbl.AddRow("bias", pct(sum.Bias())+"%")
	tbl.AddRow("|rel err| p50", pct(sum.QuantileAbs(0.5))+"%")
	tbl.AddRow("|rel err| p99", pct(sum.QuantileAbs(0.99))+"%")
	tbl.AddRow("store keys", fmt.Sprintf("%d", store.Len()))
	tbl.AddRow("store sketch bits", fmt.Sprintf("%d", store.SizeBits()))
	tbl.AddRow("store footprint (B)", fmt.Sprintf("%d", store.Footprint()))

	exceed := tablewriter.New("Links with |rel err| above threshold (cf. Figure 8)",
		"threshold", "links")
	for _, th := range fig6Thresholds {
		exceed.AddRow(fmt.Sprintf("%.3f", th),
			fmt.Sprintf("%.0f", sum.ExceedFraction(th)*float64(len(links))))
	}

	// Heavy hitters: the store's TopK must surface the largest links.
	top := store.TopK(5)
	topTbl := tablewriter.New("Top-5 links by estimated flows", "rank", "estimate", "truth")
	truthByKey := make(map[uint64]int, len(links))
	for i, c := range links {
		truthByKey[records.Key(i)] = c
	}
	for i, ke := range top {
		topTbl.AddRow(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.0f", ke.Estimate),
			fmt.Sprintf("%d", truthByKey[ke.Key]))
	}

	res.Tables = append(res.Tables, tbl, exceed, topTbl)
	res.Notes = append(res.Notes,
		"expected: RRMSE ≈ ε (the scale-invariant guarantee holds per key; Store routing and batch grouping add no error)",
		"the keyed Store is the spread-estimation deployment of Estan et al. (2006) with S-bitmaps in place of virtual/multiresolution bitmaps")
	return res, nil
}
