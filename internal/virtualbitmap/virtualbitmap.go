// Package virtualbitmap implements the virtual bitmap of Estan, Varghese &
// Fisk (2006), reviewed in Section 2.2 of the S-bitmap paper: linear
// counting applied to a Bernoulli-sampled substream.
//
// Each distinct item is first subjected to a hash-based coin flip with rate
// r; survivors are counted by an ordinary linear-counting bitmap of m bits,
// and the final estimate is scaled back by 1/r. A single sampling rate can
// only cover a narrow cardinality band accurately — the limitation that
// motivates both the multiresolution bitmap and, ultimately, the S-bitmap's
// continuously adapting rates.
package virtualbitmap

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"unsafe"

	"repro/internal/bitvec"
	"repro/internal/uhash"
)

// Sketch is a virtual bitmap. Not safe for concurrent use.
type Sketch struct {
	v         *bitvec.Vector
	h         uhash.Hasher
	rate      float64
	threshold uint64        // sampling acceptance threshold on the low hash word
	scr       uhash.Scratch // reusable batch hash buffers (not serialized)
}

// New returns a virtual bitmap with m bits and sampling rate rate in
// (0, 1], hashing with the default Mixer seeded by seed.
func New(m int, rate float64, seed uint64) *Sketch {
	return NewWithHasher(m, rate, uhash.NewMixer(seed))
}

// NewWithHasher returns a virtual bitmap with an explicit hash function.
// It panics if m < 1 or rate is outside (0, 1].
func NewWithHasher(m int, rate float64, h uhash.Hasher) *Sketch {
	if m < 1 {
		panic(fmt.Sprintf("virtualbitmap: bitmap size %d < 1", m))
	}
	if rate <= 0 || rate > 1 {
		panic(fmt.Sprintf("virtualbitmap: sampling rate %g outside (0, 1]", rate))
	}
	return &Sketch{v: bitvec.New(m), h: h, rate: rate, threshold: thresholdFor(rate)}
}

// thresholdFor converts a sampling rate to the acceptance threshold on the
// 64-bit sampling word; shared by construction and deserialization so the
// sampling rule cannot drift between the two.
func thresholdFor(rate float64) uint64 {
	if rate >= 1 {
		return math.MaxUint64
	}
	return uint64(math.Ceil(rate * math.Pow(2, 64)))
}

// RateFor returns the sampling rate that centers a virtual bitmap of m bits
// on a target cardinality band [_, nMax]: the rate under which nMax sampled
// items load the bitmap to the quasi-optimal linear-counting load ρ ≈ 0.7·m
// set bits (load factor ln(m/(0.3m)) ≈ 1.2 distinct per bit).
func RateFor(m int, nMax float64) float64 {
	if nMax <= 0 {
		return 1
	}
	r := 1.2 * float64(m) / nMax
	if r > 1 {
		return 1
	}
	return r
}

// Add offers an item; it reports whether the underlying bitmap changed.
func (s *Sketch) Add(item []byte) bool {
	hi, lo := s.h.Sum128(item)
	return s.insert(hi, lo)
}

// AddUint64 offers a 64-bit item.
func (s *Sketch) AddUint64(item uint64) bool {
	hi, lo := s.h.Sum128Uint64(item)
	return s.insert(hi, lo)
}

// AddString offers a string item; it hashes identically to Add of the
// string's bytes but avoids the []byte conversion.
func (s *Sketch) AddString(item string) bool {
	hi, lo := s.h.Sum128String(item)
	return s.insert(hi, lo)
}

func (s *Sketch) insert(bucketWord, sampleWord uint64) bool {
	// The sampling decision is a pure function of the item's hash, so
	// duplicates are consistently kept or dropped.
	if sampleWord >= s.threshold {
		return false
	}
	j, _ := bits.Mul64(bucketWord, uint64(s.v.Len()))
	return s.v.Set(int(j))
}

// AddBatch64 offers a slice of 64-bit items and returns how many changed
// the bitmap; state-equivalent to AddUint64 on each item in order, with
// chunked hashing, the sampling threshold in a local, and unchecked bit
// sets (the multiply-shift bucket index is in range by construction).
func (s *Sketch) AddBatch64(items []uint64) int {
	return uhash.Batch64(s.h, &s.scr, items, s.insertBatch)
}

// AddBatchString is AddBatch64 for string items.
func (s *Sketch) AddBatchString(items []string) int {
	return uhash.BatchString(s.h, &s.scr, items, s.insertBatch)
}

func (s *Sketch) insertBatch(hi, lo []uint64) int {
	lo = lo[:len(hi)] // one bounds proof for the whole chunk
	v := s.v
	mm := uint64(v.Len())
	thr := s.threshold
	changed := 0
	for i, h := range hi {
		if lo[i] >= thr {
			continue
		}
		j, _ := bits.Mul64(h, mm)
		if v.SetUnchecked(int(j)) {
			changed++
		}
	}
	return changed
}

// Rate returns the configured sampling rate.
func (s *Sketch) Rate() float64 { return s.rate }

// Ones returns the number of set buckets.
func (s *Sketch) Ones() int { return s.v.Ones() }

// Saturated reports whether the underlying bitmap is full.
func (s *Sketch) Saturated() bool { return s.v.Zeros() == 0 }

// Estimate returns n̂ = (m/r)·ln(m/Z), the linear-counting estimate of the
// sampled substream scaled back by the sampling rate.
func (s *Sketch) Estimate() float64 {
	m := float64(s.v.Len())
	z := float64(s.v.Zeros())
	if z == 0 {
		return m * math.Log(m) / s.rate
	}
	return m * math.Log(m/z) / s.rate
}

// SizeBits returns the summary memory footprint in bits.
func (s *Sketch) SizeBits() int { return s.v.Len() }

// Footprint returns the sketch's resident process memory in bytes: the
// struct, the bitmap words, and the batch-hash scratch.
func (s *Sketch) Footprint() int {
	return int(unsafe.Sizeof(*s)) + s.v.Footprint() + s.scr.Footprint()
}

// Reset clears the sketch for reuse.
func (s *Sketch) Reset() { s.v.Reset() }

// MarshalBinary serializes the sampling rate and the bitmap. The hash
// function is not serialized; pass the original hasher to Unmarshal to
// continue counting.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	vb, err := s.v.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 8+len(vb))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.rate))
	return append(buf, vb...), nil
}

// UnmarshalBinary reconstructs the sketch in place from MarshalBinary
// output. A nil hasher field is replaced by the default Mixer with seed 1.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("virtualbitmap: truncated serialization")
	}
	rate := math.Float64frombits(binary.LittleEndian.Uint64(data))
	if !(rate > 0 && rate <= 1) {
		return fmt.Errorf("virtualbitmap: serialized rate %g outside (0, 1]", rate)
	}
	v := &bitvec.Vector{}
	if err := v.UnmarshalBinary(data[8:]); err != nil {
		return fmt.Errorf("virtualbitmap: %w", err)
	}
	if v.Len() < 1 {
		return fmt.Errorf("virtualbitmap: serialized bitmap is empty")
	}
	s.v, s.rate, s.threshold = v, rate, thresholdFor(rate)
	if s.h == nil {
		s.h = uhash.NewMixer(1)
	}
	return nil
}

// Unmarshal reconstructs a sketch from MarshalBinary output, hashing with h
// (nil selects the default Mixer with seed 1).
func Unmarshal(data []byte, h uhash.Hasher) (*Sketch, error) {
	s := &Sketch{h: h}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}
