package virtualbitmap

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestFullRateEqualsLinearCounting(t *testing.T) {
	// rate = 1 must reproduce plain linear counting semantics: estimate
	// ≈ n at moderate load.
	s := New(4096, 1.0, 7)
	const n = 3000
	for i := uint64(0); i < n; i++ {
		s.AddUint64(i)
	}
	if got := s.Estimate(); math.Abs(got-n)/n > 0.1 {
		t.Errorf("rate-1 estimate = %g, want ≈ %d", got, n)
	}
	if s.Rate() != 1 {
		t.Errorf("Rate = %g, want 1", s.Rate())
	}
}

func TestSamplingConsistencyForDuplicates(t *testing.T) {
	// A duplicate must never flip the sampling decision: adding the same
	// item repeatedly changes at most one bucket.
	s := New(512, 0.1, 3)
	changed := 0
	for i := 0; i < 1000; i++ {
		if s.AddUint64(99999) {
			changed++
		}
	}
	if changed > 1 {
		t.Errorf("duplicate item changed the bitmap %d times", changed)
	}
}

func TestSampledAccuracyAtScale(t *testing.T) {
	// A small bitmap with rate r covers cardinalities ≈ 1.2·m/r; verify
	// the scaled estimator is unbiased there with reasonable error.
	const m = 2048
	const n = 100000
	rate := RateFor(m, n)
	var sum stats.ErrorSummary
	const reps = 150
	for rep := 0; rep < reps; rep++ {
		s := New(m, rate, uint64(rep)+31)
		base := uint64(rep) << 34
		for i := 0; i < n; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), n)
	}
	if bias := sum.Bias(); math.Abs(bias) > 0.02 {
		t.Errorf("bias = %.4f at designed scale, want ≈ 0", bias)
	}
	if rrmse := sum.RRMSE(); rrmse > 0.1 {
		t.Errorf("RRMSE = %.4f at designed scale, want < 0.1", rrmse)
	}
}

func TestNarrowRange(t *testing.T) {
	// The motivating failure: a virtual bitmap dimensioned for n = 100000
	// must be poor at n = 100 (relative granularity of one bucket is huge)
	// — this is why mr-bitmap and S-bitmap exist.
	const m = 2048
	rate := RateFor(m, 100000)
	var sum stats.ErrorSummary
	for rep := 0; rep < 200; rep++ {
		s := New(m, rate, uint64(rep)+77)
		base := uint64(rep) << 34
		for i := 0; i < 100; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), 100)
	}
	if rrmse := sum.RRMSE(); rrmse < 0.15 {
		t.Errorf("RRMSE = %.4f at off-design scale; expected poor (> 0.15) — did the sampling break?", rrmse)
	}
}

func TestRateFor(t *testing.T) {
	if r := RateFor(1000, 100); r != 1 {
		t.Errorf("small n should use rate 1, got %g", r)
	}
	if r := RateFor(1000, 1e7); r <= 0 || r >= 1 {
		t.Errorf("large n rate = %g, want in (0,1)", r)
	}
	if r := RateFor(1000, 0); r != 1 {
		t.Errorf("degenerate n rate = %g, want 1", r)
	}
}

func TestSaturationCap(t *testing.T) {
	s := New(64, 0.5, 5)
	for i := uint64(0); i < 1e6; i++ {
		s.AddUint64(i)
	}
	if !s.Saturated() {
		t.Skip("bitmap did not saturate; sampling unlucky")
	}
	want := 64 * math.Log(64) / 0.5
	if got := s.Estimate(); got != want {
		t.Errorf("saturated estimate = %g, want cap %g", got, want)
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 0.5, 1) },
		func() { New(10, 0, 1) },
		func() { New(10, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestResetAndSize(t *testing.T) {
	s := New(128, 0.25, 1)
	for i := uint64(0); i < 1000; i++ {
		s.AddUint64(i)
	}
	if s.SizeBits() != 128 {
		t.Errorf("SizeBits = %d, want 128", s.SizeBits())
	}
	s.Reset()
	if s.Ones() != 0 || s.Estimate() != 0 {
		t.Error("reset did not clear")
	}
}

func BenchmarkAddUint64(b *testing.B) {
	s := New(1<<14, 0.1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}
