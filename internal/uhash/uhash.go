// Package uhash provides the universal hash functions that every sketch in
// this repository builds on.
//
// The paper (like all Flajolet-style analyses) assumes a hash function that
// maps items to uniformly distributed, pairwise-independent values. Three
// constructions are provided, all from scratch using only the standard
// library:
//
//   - Mixer: the default. A 128-bit-output multiply-rotate block hash in the
//     spirit of MurmurHash3/xxHash with a splitmix64 finalizer. Fast, good
//     avalanche, arbitrary-length keys.
//   - CarterWegman: the classic ((a·x + b) mod p) mod m construction over
//     the Mersenne prime 2^61−1, exactly as footnoted in Section 2.2 of the
//     paper. Provably 2-universal for 64-bit keys; used in the ablation that
//     shows S-bitmap accuracy is insensitive to the hash family.
//   - Tabulation: simple tabulation hashing over 8 key bytes (Zobrist).
//     3-independent and remarkably strong in practice (Pătraşcu–Thorup).
//
// All sketches consume hashes through the Hasher interface, which exposes
// both a byte-slice path (for real data) and an allocation-free uint64 path
// (for the synthetic workloads used in the experiments, where items are
// integer IDs).
package uhash

import (
	"unsafe"

	"repro/internal/xrand"
)

// Hasher is a seeded 128-bit hash function. The two output words must be
// (approximately) independent and uniform; sketches use the high word for
// bucket placement and the low word for sampling decisions, mirroring the
// j/u split of Algorithm 2 in the paper.
type Hasher interface {
	// Sum128 hashes an arbitrary byte string.
	Sum128(p []byte) (hi, lo uint64)
	// Sum128Uint64 hashes a 64-bit key. It must equal Sum128 of the key's
	// 8-byte little-endian encoding so that integer and byte workloads are
	// interchangeable.
	Sum128Uint64(x uint64) (hi, lo uint64)
	// Sum128String hashes a string key. It must equal Sum128 of the
	// string's bytes so that string and byte workloads are interchangeable,
	// but without forcing callers through a []byte conversion (and its
	// allocation) on the hot path.
	Sum128String(s string) (hi, lo uint64)
}

// stringBytes reinterprets a string's backing array as a byte slice without
// copying. The slice must not be mutated or retained past the call — the
// hashers only read it.
func stringBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// Mixer is the default Hasher: a 64-bit multiply-rotate compression over
// 8-byte blocks followed by two independent splitmix-style finalizers that
// produce the two output words.
type Mixer struct {
	seed1 uint64
	seed2 uint64
}

// NewMixer returns a Mixer with the given seed. Distinct seeds yield
// independent hash functions (the seed is diffused through Mix64 twice).
func NewMixer(seed uint64) *Mixer {
	return &Mixer{
		seed1: xrand.Mix64(seed ^ 0x6a09e667f3bcc908),
		seed2: xrand.Mix64(seed ^ 0xbb67ae8584caa73b),
	}
}

const (
	mixK1 = 0x87c37b91114253d5
	mixK2 = 0x4cf5ad432745937f
)

func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Sum128 implements Hasher.
func (m *Mixer) Sum128(p []byte) (hi, lo uint64) {
	h1, h2 := m.seed1, m.seed2
	n := len(p)
	// Body: 16 bytes per round.
	for len(p) >= 16 {
		k1 := le64(p)
		k2 := le64(p[8:])
		h1, h2 = mixRound(h1, h2, k1, k2)
		p = p[16:]
	}
	// Tail: pad remaining bytes into two words.
	var k1, k2 uint64
	switch {
	case len(p) > 8:
		k1 = le64(p)
		k2 = lePartial(p[8:])
	case len(p) > 0:
		k1 = lePartial(p)
	}
	h1, h2 = mixRound(h1, h2, k1, k2)
	return mixFinal(h1, h2, uint64(n))
}

// Sum128String implements Hasher: it hashes identically to Sum128 of the
// string's bytes, with no conversion allocation.
func (m *Mixer) Sum128String(s string) (hi, lo uint64) {
	return m.Sum128(stringBytes(s))
}

// Sum128Uint64 implements Hasher. It is the fast path for integer keys and
// equals Sum128 of the key's little-endian encoding.
func (m *Mixer) Sum128Uint64(x uint64) (hi, lo uint64) {
	h1, h2 := mixRound(m.seed1, m.seed2, x, 0)
	return mixFinal(h1, h2, 8)
}

func mixRound(h1, h2, k1, k2 uint64) (uint64, uint64) {
	k1 *= mixK1
	k1 = rotl64(k1, 31)
	k1 *= mixK2
	h1 ^= k1
	h1 = rotl64(h1, 27) + h2
	h1 = h1*5 + 0x52dce729

	k2 *= mixK2
	k2 = rotl64(k2, 33)
	k2 *= mixK1
	h2 ^= k2
	h2 = rotl64(h2, 31) + h1
	h2 = h2*5 + 0x38495ab5
	return h1, h2
}

func mixFinal(h1, h2, n uint64) (hi, lo uint64) {
	h1 ^= n
	h2 ^= n
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func le64(p []byte) uint64 {
	_ = p[7]
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

func lePartial(p []byte) uint64 {
	var v uint64
	for i := len(p) - 1; i >= 0; i-- {
		v = v<<8 | uint64(p[i])
	}
	return v
}
