package uhash

// Batch hashing: the ingestion hot path of every sketch hashes items one
// interface call at a time, which costs a dynamic dispatch per item and
// keeps the hasher's seeds out of registers. The helpers here hash whole
// slices per call — natively for the default Mixer (seeds pinned in locals
// across the loop), and by a plain per-item loop for the other families —
// so the sketches' fused batch-insert loops pay at most one dispatch per
// BatchSize items.

// BatchSize is the chunk length the fused ingestion paths hash at a time.
// One chunk of two uint64 output buffers is 4 KiB — small enough to stay
// resident in L1 while large enough to amortize per-chunk overhead.
const BatchSize = 256

// BatchHasher is optionally implemented by hashers with a native
// (dispatch-free) batch loop. The batch methods must produce exactly the
// outputs of the corresponding per-item methods, in order; lo may be nil
// when the caller needs only the high words.
type BatchHasher interface {
	Sum128Uint64Batch(keys []uint64, hi, lo []uint64)
	Sum128StringBatch(keys []string, hi, lo []uint64)
}

// Sum128Uint64Batch fills hi[i], lo[i] with h.Sum128Uint64(keys[i]) for
// every key, using the hasher's native batch loop when it has one. lo may
// be nil to request only the high words. hi (and lo when non-nil) must be
// at least len(keys) long.
func Sum128Uint64Batch(h Hasher, keys []uint64, hi, lo []uint64) {
	if bh, ok := h.(BatchHasher); ok {
		bh.Sum128Uint64Batch(keys, hi, lo)
		return
	}
	if lo == nil {
		for i, k := range keys {
			hi[i], _ = h.Sum128Uint64(k)
		}
		return
	}
	for i, k := range keys {
		hi[i], lo[i] = h.Sum128Uint64(k)
	}
}

// Sum128StringBatch fills hi[i], lo[i] with h.Sum128String(keys[i]) for
// every key, using the hasher's native batch loop when it has one. lo may
// be nil to request only the high words.
func Sum128StringBatch(h Hasher, keys []string, hi, lo []uint64) {
	if bh, ok := h.(BatchHasher); ok {
		bh.Sum128StringBatch(keys, hi, lo)
		return
	}
	if lo == nil {
		for i, k := range keys {
			hi[i], _ = h.Sum128String(k)
		}
		return
	}
	for i, k := range keys {
		hi[i], lo[i] = h.Sum128String(k)
	}
}

// Sum128Uint64Batch implements BatchHasher natively: the round and
// finalizer math of Sum128Uint64 hand-inlined into one loop, with the
// seeds in registers and the k2 = 0 half of the round — which reduces to
// adding rotl64(seed2, 31), a per-batch constant — hoisted out. The
// outputs are bit-identical to per-item Sum128Uint64 (asserted by the
// package tests).
func (m *Mixer) Sum128Uint64Batch(keys []uint64, hi, lo []uint64) {
	s1, s2 := m.seed1, m.seed2
	h2base := rotl64(s2, 31) // mixRound's h2 term for k2 = 0
	if lo == nil {
		hi = hi[:len(keys)]
		for i, x := range keys {
			k1 := x * mixK1
			k1 = rotl64(k1, 31)
			k1 *= mixK2
			h1 := s1 ^ k1
			h1 = rotl64(h1, 27) + s2
			h1 = h1*5 + 0x52dce729
			h2 := h2base + h1
			h2 = h2*5 + 0x38495ab5
			// mixFinal(h1, h2, 8):
			h1 ^= 8
			h2 ^= 8
			h1 += h2
			h2 += h1
			h1 = fmix64(h1)
			h2 = fmix64(h2)
			hi[i] = h1 + h2
		}
		return
	}
	hi = hi[:len(keys)]
	lo = lo[:len(keys)]
	for i, x := range keys {
		k1 := x * mixK1
		k1 = rotl64(k1, 31)
		k1 *= mixK2
		h1 := s1 ^ k1
		h1 = rotl64(h1, 27) + s2
		h1 = h1*5 + 0x52dce729
		h2 := h2base + h1
		h2 = h2*5 + 0x38495ab5
		// mixFinal(h1, h2, 8):
		h1 ^= 8
		h2 ^= 8
		h1 += h2
		h2 += h1
		h1 = fmix64(h1)
		h2 = fmix64(h2)
		h1 += h2
		h2 += h1
		hi[i], lo[i] = h1, h2
	}
}

// Sum128StringBatch implements BatchHasher: per-key work is the variable
// length block loop, but the dispatch to it is direct rather than through
// the Hasher interface.
func (m *Mixer) Sum128StringBatch(keys []string, hi, lo []uint64) {
	if lo == nil {
		hi = hi[:len(keys)]
		for i, k := range keys {
			hi[i], _ = m.Sum128(stringBytes(k))
		}
		return
	}
	hi = hi[:len(keys)]
	lo = lo[:len(keys)]
	for i, k := range keys {
		hi[i], lo[i] = m.Sum128(stringBytes(k))
	}
}

// Scratch holds the reusable hash-output buffers of a sketch's batch
// ingestion path. The zero value is ready to use; buffers are allocated
// once on first use, so steady-state batch ingest is allocation-free.
// A Scratch is owned by one sketch and shares its concurrency contract.
type Scratch struct {
	hi, lo []uint64
}

// Buffers returns hash-output buffers of length n ≤ BatchSize, allocating
// the backing arrays on first call.
func (s *Scratch) Buffers(n int) (hi, lo []uint64) {
	if s.hi == nil {
		s.hi = make([]uint64, BatchSize)
		s.lo = make([]uint64, BatchSize)
	}
	return s.hi[:n], s.lo[:n]
}

// Footprint returns the scratch's resident memory in bytes (0 until the
// first batch call allocates the buffers; the struct itself is counted by
// the embedding sketch).
func (s *Scratch) Footprint() int { return 8 * (cap(s.hi) + cap(s.lo)) }

// Batch64 hashes items through h in chunks of BatchSize into scr's buffers
// and hands each hashed chunk to sink, returning the summed sink results.
// Sketches use it to fuse a vectorized hash loop with their insert loop:
// sink is the sketch's batch-insert body, called once per chunk with the
// hot state in its own locals.
func Batch64(h Hasher, scr *Scratch, items []uint64, sink func(hi, lo []uint64) int) int {
	changed := 0
	for len(items) > 0 {
		n := len(items)
		if n > BatchSize {
			n = BatchSize
		}
		hi, lo := scr.Buffers(n)
		Sum128Uint64Batch(h, items[:n], hi, lo)
		changed += sink(hi, lo)
		items = items[n:]
	}
	return changed
}

// BatchString is Batch64 for string keys.
func BatchString(h Hasher, scr *Scratch, items []string, sink func(hi, lo []uint64) int) int {
	changed := 0
	for len(items) > 0 {
		n := len(items)
		if n > BatchSize {
			n = BatchSize
		}
		hi, lo := scr.Buffers(n)
		Sum128StringBatch(h, items[:n], hi, lo)
		changed += sink(hi, lo)
		items = items[n:]
	}
	return changed
}
