package uhash

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

// batchHashers returns every family under test, flagging which have a
// native batch loop.
func batchHashers() map[string]Hasher {
	return map[string]Hasher{
		"mixer":        NewMixer(7),
		"carterwegman": NewCarterWegman(7),
		"tabulation":   NewTabulation(7),
	}
}

func TestSum128Uint64BatchMatchesPerItem(t *testing.T) {
	r := xrand.New(42)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	for name, h := range batchHashers() {
		hi := make([]uint64, len(keys))
		lo := make([]uint64, len(keys))
		Sum128Uint64Batch(h, keys, hi, lo)
		for i, k := range keys {
			wh, wl := h.Sum128Uint64(k)
			if hi[i] != wh || lo[i] != wl {
				t.Fatalf("%s: batch[%d] = (%#x, %#x), per-item = (%#x, %#x)", name, i, hi[i], lo[i], wh, wl)
			}
		}
		// nil lo requests only the high words.
		hiOnly := make([]uint64, len(keys))
		Sum128Uint64Batch(h, keys, hiOnly, nil)
		for i := range keys {
			if hiOnly[i] != hi[i] {
				t.Fatalf("%s: hi-only batch[%d] = %#x, want %#x", name, i, hiOnly[i], hi[i])
			}
		}
	}
}

func TestSum128StringBatchMatchesPerItem(t *testing.T) {
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d-%s", i, string(make([]byte, i%40)))
	}
	keys = append(keys, "") // empty string must round-trip too
	for name, h := range batchHashers() {
		hi := make([]uint64, len(keys))
		lo := make([]uint64, len(keys))
		Sum128StringBatch(h, keys, hi, lo)
		for i, k := range keys {
			wh, wl := h.Sum128String(k)
			if hi[i] != wh || lo[i] != wl {
				t.Fatalf("%s: batch[%d] = (%#x, %#x), per-item = (%#x, %#x)", name, i, hi[i], lo[i], wh, wl)
			}
		}
		hiOnly := make([]uint64, len(keys))
		Sum128StringBatch(h, keys, hiOnly, nil)
		for i := range keys {
			if hiOnly[i] != hi[i] {
				t.Fatalf("%s: hi-only batch[%d] = %#x, want %#x", name, i, hiOnly[i], hi[i])
			}
		}
	}
}

func TestMixerImplementsBatchHasher(t *testing.T) {
	var h Hasher = NewMixer(1)
	if _, ok := h.(BatchHasher); !ok {
		t.Fatal("Mixer does not implement BatchHasher")
	}
}

func TestBatch64ChunksAndSums(t *testing.T) {
	h := NewMixer(3)
	keys := make([]uint64, 3*BatchSize+17) // forces several chunks + a tail
	for i := range keys {
		keys[i] = uint64(i)
	}
	var scr Scratch
	seen := 0
	calls := 0
	got := Batch64(h, &scr, keys, func(hi, lo []uint64) int {
		calls++
		if len(hi) != len(lo) || len(hi) > BatchSize {
			t.Fatalf("chunk sizes hi=%d lo=%d", len(hi), len(lo))
		}
		for i := range hi {
			wh, wl := h.Sum128Uint64(keys[seen+i])
			if hi[i] != wh || lo[i] != wl {
				t.Fatalf("chunk item %d hashed wrong", seen+i)
			}
		}
		seen += len(hi)
		return len(hi)
	})
	if got != len(keys) || seen != len(keys) {
		t.Fatalf("Batch64 returned %d, visited %d, want %d", got, seen, len(keys))
	}
	if calls != 4 {
		t.Fatalf("Batch64 made %d sink calls, want 4", calls)
	}
}

func TestBatchStringChunks(t *testing.T) {
	h := NewMixer(3)
	keys := make([]string, BatchSize+5)
	for i := range keys {
		keys[i] = fmt.Sprintf("s%d", i)
	}
	var scr Scratch
	seen := 0
	got := BatchString(h, &scr, keys, func(hi, lo []uint64) int {
		for i := range hi {
			wh, wl := h.Sum128String(keys[seen+i])
			if hi[i] != wh || lo[i] != wl {
				t.Fatalf("chunk item %d hashed wrong", seen+i)
			}
		}
		seen += len(hi)
		return len(hi)
	})
	if got != len(keys) {
		t.Fatalf("BatchString returned %d, want %d", got, len(keys))
	}
}

func BenchmarkSum128Uint64PerItem(b *testing.B) {
	h := NewMixer(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		hi, _ := h.Sum128Uint64(uint64(i))
		sink ^= hi
	}
	_ = sink
}

func BenchmarkSum128Uint64Batch(b *testing.B) {
	h := NewMixer(1)
	keys := make([]uint64, BatchSize)
	hi := make([]uint64, BatchSize)
	lo := make([]uint64, BatchSize)
	b.ResetTimer()
	for rem := b.N; rem > 0; rem -= len(keys) {
		n := len(keys)
		if rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			keys[i] = uint64(rem + i)
		}
		h.Sum128Uint64Batch(keys[:n], hi[:n], lo[:n])
	}
}
