package uhash

import "repro/internal/xrand"

// Tabulation implements simple tabulation hashing (Zobrist hashing): the
// 64-bit key is split into 8 bytes, each byte indexes a table of random
// 128-bit words, and the results are XORed. Simple tabulation is
// 3-independent and behaves like a fully random function for most
// algorithms (Pătraşcu & Thorup 2012), making it a strong reference point
// for the hash-sensitivity ablation.
//
// Byte strings are first compressed to a 64-bit key with the Mixer
// compression rounds; universality then applies to the compressed key.
type Tabulation struct {
	table [8][256][2]uint64
	fold  Mixer
}

// NewTabulation returns a Tabulation hasher with tables filled from a
// deterministic generator seeded by seed.
func NewTabulation(seed uint64) *Tabulation {
	r := xrand.New(seed ^ 0x9159015a3070dd17)
	t := &Tabulation{fold: *NewMixer(seed ^ 0x152fecd8f70e5939)}
	for i := range t.table {
		for j := range t.table[i] {
			t.table[i][j][0] = r.Uint64()
			t.table[i][j][1] = r.Uint64()
		}
	}
	return t
}

// Sum128Uint64 implements Hasher.
func (t *Tabulation) Sum128Uint64(x uint64) (hi, lo uint64) {
	for i := 0; i < 8; i++ {
		e := &t.table[i][byte(x>>(8*uint(i)))]
		hi ^= e[0]
		lo ^= e[1]
	}
	return hi, lo
}

// Sum128 implements Hasher. Keys of exactly 8 bytes take the pure
// tabulation path (so integer and byte workloads agree); longer or shorter
// keys are folded to 64 bits first.
func (t *Tabulation) Sum128(p []byte) (hi, lo uint64) {
	if len(p) == 8 {
		return t.Sum128Uint64(le64(p))
	}
	h, _ := t.fold.Sum128(p)
	return t.Sum128Uint64(h)
}

// Sum128String implements Hasher: identical to Sum128 of the string's
// bytes, without the conversion allocation.
func (t *Tabulation) Sum128String(s string) (hi, lo uint64) {
	return t.Sum128(stringBytes(s))
}
