package uhash

import "repro/internal/xrand"

// mersenne61 is the Mersenne prime 2^61 − 1, the standard modulus for
// Carter–Wegman hashing of 64-bit keys: reduction mod 2^61−1 needs only
// shifts and adds, and the prime exceeds the key universe after folding.
const mersenne61 = 1<<61 - 1

// CarterWegman is the textbook 2-universal family h(x) = ((a·x + b) mod p),
// evaluated twice with independent coefficients to produce a 128-bit output.
// It matches the construction in the paper's Section 2.2 footnote. Byte
// strings are first folded to a 64-bit key with a polynomial accumulator in
// the same field, preserving (weaker) universality for multi-word keys.
type CarterWegman struct {
	a1, b1 uint64 // first output word
	a2, b2 uint64 // second output word
	c      uint64 // byte-string folding multiplier
}

// NewCarterWegman returns a CarterWegman hasher with coefficients derived
// deterministically from seed. Coefficients are drawn uniformly from
// [1, p−1] (a) and [0, p−1] (b).
func NewCarterWegman(seed uint64) *CarterWegman {
	r := xrand.New(seed ^ 0xc2b2ae3d27d4eb4f)
	draw := func(lo uint64) uint64 { return lo + r.Uint64n(mersenne61-lo) }
	return &CarterWegman{
		a1: draw(1), b1: draw(0),
		a2: draw(1), b2: draw(0),
		c: draw(1),
	}
}

// mulMod61 returns a*b mod 2^61−1 using a 128-bit intermediate product.
func mulMod61(a, b uint64) uint64 {
	hi, lo := mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod 2^61−1) after
	// splitting lo into its low 61 bits and high 3 bits.
	res := hi<<3 | lo>>61
	res += lo & mersenne61
	if res >= mersenne61 {
		res -= mersenne61
	}
	return res
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + t>>32
	return hi, lo
}

func addMod61(a, b uint64) uint64 {
	s := a + b
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// eval computes (a*x + b) mod p, then stretches the 61-bit result to fill
// 64 bits via a fixed bijective mixer so downstream consumers that use high
// bits (bucket selection) see full-width uniformity.
func cwEval(a, x, b uint64) uint64 {
	return xrand.Mix64(addMod61(mulMod61(a, x%mersenne61), b))
}

// Sum128 implements Hasher by folding the bytes into the field and applying
// the two affine maps.
func (h *CarterWegman) Sum128(p []byte) (hi, lo uint64) {
	// Polynomial fold: key = sum c^i * chunk_i mod p, with the length
	// folded in last so that zero-padded extensions cannot collide.
	n := uint64(len(p))
	var key uint64
	for len(p) >= 8 {
		key = addMod61(mulMod61(key, h.c), le64(p)%mersenne61)
		p = p[8:]
	}
	if len(p) > 0 {
		key = addMod61(mulMod61(key, h.c), lePartial(p)%mersenne61)
	}
	key = addMod61(mulMod61(key, h.c), (n+1)%mersenne61)
	return cwEval(h.a1, key, h.b1), cwEval(h.a2, key, h.b2)
}

// Sum128String implements Hasher: identical to Sum128 of the string's
// bytes, without the conversion allocation.
func (h *CarterWegman) Sum128String(s string) (hi, lo uint64) {
	return h.Sum128(stringBytes(s))
}

// Sum128Uint64 implements Hasher. It reproduces Sum128 of the key's 8-byte
// little-endian encoding: one content fold followed by the length fold.
func (h *CarterWegman) Sum128Uint64(x uint64) (hi, lo uint64) {
	key := x % mersenne61
	key = addMod61(mulMod61(key, h.c), 9) // length fold, n = 8
	return cwEval(h.a1, key, h.b1), cwEval(h.a2, key, h.b2)
}
