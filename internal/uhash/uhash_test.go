package uhash

import (
	"encoding/binary"
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

// hashers returns one instance of every Hasher implementation under a
// common seed, keyed by name.
func hashers(seed uint64) map[string]Hasher {
	return map[string]Hasher{
		"mixer":        NewMixer(seed),
		"carterwegman": NewCarterWegman(seed),
		"tabulation":   NewTabulation(seed),
	}
}

func TestUint64PathMatchesBytePath(t *testing.T) {
	for name, h := range hashers(12345) {
		f := func(x uint64) bool {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], x)
			bh, bl := h.Sum128(buf[:])
			uh, ul := h.Sum128Uint64(x)
			return bh == uh && bl == ul
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: uint64 path disagrees with byte path: %v", name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for name := range hashers(7) {
		a := hashers(7)[name]
		b := hashers(7)[name]
		data := []byte("the quick brown fox")
		ah, al := a.Sum128(data)
		bh, bl := b.Sum128(data)
		if ah != bh || al != bl {
			t.Errorf("%s: same seed produced different hashes", name)
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	for name := range hashers(0) {
		a := hashers(1)[name]
		b := hashers(2)[name]
		same := 0
		for i := uint64(0); i < 1000; i++ {
			ah, _ := a.Sum128Uint64(i)
			bh, _ := b.Sum128Uint64(i)
			if ah == bh {
				same++
			}
		}
		if same > 2 {
			t.Errorf("%s: different seeds agreed on %d/1000 keys", name, same)
		}
	}
}

func TestNoCollisionsOnCounterKeys(t *testing.T) {
	// Sequential integer keys are the worst case for weak hashes; the
	// 128-bit output should see no collisions over 10^5 keys.
	for name, h := range hashers(99) {
		seen := make(map[[2]uint64]uint64, 100000)
		for i := uint64(0); i < 100000; i++ {
			hi, lo := h.Sum128Uint64(i)
			k := [2]uint64{hi, lo}
			if prev, ok := seen[k]; ok {
				t.Fatalf("%s: collision between keys %d and %d", name, prev, i)
			}
			seen[k] = i
		}
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping a single input bit should flip ~half of the output bits.
	// We average over keys and bit positions and require 32±4.
	for name, h := range hashers(5) {
		if name == "carterwegman" {
			// 2-universal families do not guarantee avalanche per-bit; the
			// final Mix64 stretch gives it to us anyway, but we hold it to
			// the same standard to catch regressions.
			_ = name
		}
		var total, count float64
		for key := uint64(0); key < 200; key++ {
			h0hi, h0lo := h.Sum128Uint64(key)
			for b := uint(0); b < 64; b++ {
				h1hi, h1lo := h.Sum128Uint64(key ^ 1<<b)
				total += float64(bits.OnesCount64(h0hi^h1hi) + bits.OnesCount64(h0lo^h1lo))
				count++
			}
		}
		mean := total / count
		if math.Abs(mean-64) > 4 {
			t.Errorf("%s: mean avalanche %.2f bits of 128, want 64±4", name, mean)
		}
	}
}

func TestHighWordBucketUniformity(t *testing.T) {
	// The sketches map the high word to buckets via multiply-shift; verify
	// the resulting bucket distribution is uniform (chi-square, 16 cells).
	for name, h := range hashers(11) {
		const cells = 16
		const n = 160000
		var counts [cells]float64
		for i := uint64(0); i < n; i++ {
			hi, _ := h.Sum128Uint64(i)
			counts[hi>>60]++
		}
		expected := float64(n) / cells
		chi2 := 0.0
		for _, c := range counts {
			d := c - expected
			chi2 += d * d / expected
		}
		// 99.9% quantile of chi2 with 15 dof is 37.7.
		if chi2 > 40 {
			t.Errorf("%s: bucket chi-square %.1f, want < 40", name, chi2)
		}
	}
}

func TestLowWordFractionUniformity(t *testing.T) {
	// Sampling decisions compare the low word (as a fraction) against a
	// rate p; verify P(low/2^64 < p) ≈ p over a range of rates.
	for name, h := range hashers(13) {
		for _, p := range []float64{0.9, 0.5, 0.1, 0.01} {
			threshold := uint64(p * float64(1<<63) * 2)
			const n = 200000
			hits := 0
			for i := uint64(0); i < n; i++ {
				_, lo := h.Sum128Uint64(i)
				if lo < threshold {
					hits++
				}
			}
			got := float64(hits) / n
			tol := 4*math.Sqrt(p*(1-p)/n) + 1e-9
			if math.Abs(got-p) > tol {
				t.Errorf("%s: sampling rate %.3f realized as %.5f (tol %.5f)", name, p, got, tol)
			}
		}
	}
}

func TestWordIndependence(t *testing.T) {
	// Bucket word and sampling word must be (nearly) independent: the
	// correlation of their top bits should vanish. This is the property
	// Algorithm 2 needs for I_t ⊥ S_t.
	for name, h := range hashers(17) {
		const n = 200000
		var both, first, second int
		for i := uint64(0); i < n; i++ {
			hi, lo := h.Sum128Uint64(i)
			a := hi>>63 == 1
			b := lo>>63 == 1
			if a {
				first++
			}
			if b {
				second++
			}
			if a && b {
				both++
			}
		}
		pa := float64(first) / n
		pb := float64(second) / n
		pab := float64(both) / n
		if math.Abs(pab-pa*pb) > 0.01 {
			t.Errorf("%s: top bits dependent: P(ab)=%.4f, P(a)P(b)=%.4f", name, pab, pa*pb)
		}
	}
}

func TestByteStringLengths(t *testing.T) {
	// All tail lengths must be handled and produce distinct hashes.
	for name, h := range hashers(19) {
		seen := make(map[[2]uint64]int)
		buf := make([]byte, 64)
		for i := range buf {
			buf[i] = byte(i * 7)
		}
		for l := 0; l <= 64; l++ {
			hi, lo := h.Sum128(buf[:l])
			k := [2]uint64{hi, lo}
			if prev, ok := seen[k]; ok {
				t.Errorf("%s: lengths %d and %d collide", name, prev, l)
			}
			seen[k] = l
		}
	}
}

func TestLengthExtensionDistinct(t *testing.T) {
	// "abc" and "abc\x00" must hash differently (zero-padding ambiguity).
	for name, h := range hashers(23) {
		a1, a2 := h.Sum128([]byte("abc"))
		b1, b2 := h.Sum128([]byte("abc\x00"))
		if a1 == b1 && a2 == b2 {
			t.Errorf("%s: zero-extension collision", name)
		}
	}
}

func TestMulMod61(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= mersenne61
		b %= mersenne61
		got := mulMod61(a, b)
		hi, lo := bits.Mul64(a, b)
		want := bits.Rem64(hi, lo, mersenne61)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMixerUint64(b *testing.B) {
	h := NewMixer(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink, _ = h.Sum128Uint64(uint64(i))
	}
	_ = sink
}

func BenchmarkMixerBytes64(b *testing.B) {
	h := NewMixer(1)
	buf := make([]byte, 64)
	b.SetBytes(64)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink, _ = h.Sum128(buf)
	}
	_ = sink
}

func BenchmarkCarterWegmanUint64(b *testing.B) {
	h := NewCarterWegman(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink, _ = h.Sum128Uint64(uint64(i))
	}
	_ = sink
}

func BenchmarkTabulationUint64(b *testing.B) {
	h := NewTabulation(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink, _ = h.Sum128Uint64(uint64(i))
	}
	_ = sink
}
