package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collect replays the whole log (from `from`) into copied payloads.
func collect(t *testing.T, l *Log, from uint64) [][]byte {
	t.Helper()
	var out [][]byte
	err := l.Replay(from, func(lsn uint64, p []byte) error {
		if lsn != from+uint64(len(out)) {
			return fmt.Errorf("lsn %d out of order (want %d)", lsn, from+uint64(len(out)))
		}
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func record(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i%37))))
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		lsn, err := l.Append(record(i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("append %d got lsn %d", i, lsn)
		}
	}
	got := collect(t, l, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, p := range got {
		if !bytes.Equal(p, record(i)) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Partial replay starts exactly at `from`.
	tail := collect(t, l, 42)
	if len(tail) != n-42 || !bytes.Equal(tail[0], record(42)) {
		t.Fatalf("tail replay: %d records, first %q", len(tail), tail[0])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same contents, next LSN continues.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextLSN() != n {
		t.Fatalf("reopened NextLSN %d, want %d", l2.NextLSN(), n)
	}
	if got := collect(t, l2, 0); len(got) != n {
		t.Fatalf("reopened replay %d records", len(got))
	}
	if lsn, err := l2.Append([]byte("after-reopen")); err != nil || lsn != n {
		t.Fatalf("append after reopen: lsn %d err %v", lsn, err)
	}
}

func TestMultiPartAppend(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte{7}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if len(got) != 1 || !bytes.Equal(got[0], append([]byte{7}, "payload"...)) {
		t.Fatalf("multi-part record came back %q", got[0])
	}
	if _, err := l.Append(); err == nil {
		t.Fatal("empty record accepted")
	}
}

func TestRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	l, err := Open(Options{Dir: dir, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, have %d segments", st.Segments)
	}
	if got := collect(t, l, 0); len(got) != n {
		t.Fatalf("replay %d records across segments", len(got))
	}

	// Truncate below 10: only records >= 10 remain replayable; replay
	// from 10 is unaffected.
	if err := l.TruncateBefore(10); err != nil {
		t.Fatal(err)
	}
	tail := collect(t, l, 10)
	if len(tail) != n-10 || !bytes.Equal(tail[0], record(10)) {
		t.Fatalf("post-truncate replay: %d records", len(tail))
	}
	if l.Stats().Segments >= st.Segments {
		t.Fatalf("truncate removed nothing (%d -> %d segments)", st.Segments, l.Stats().Segments)
	}
	l.Close()

	// Reopen after truncation: base LSN is no longer 0; appends continue.
	l2, err := Open(Options{Dir: dir, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextLSN() != n {
		t.Fatalf("NextLSN %d after truncated reopen, want %d", l2.NextLSN(), n)
	}
}

// lastSegment returns the path of the highest-base segment in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestBase uint64
	for _, e := range entries {
		if base, ok := parseSegName(e.Name()); ok && (best == "" || base > bestBase) {
			best, bestBase = filepath.Join(dir, e.Name()), base
		}
	}
	if best == "" {
		t.Fatal("no segments found")
	}
	return best
}

// TestTornTailEveryOffset is the core crash-semantics test: a log of
// complete records plus a final record truncated at EVERY possible byte
// boundary must reopen with exactly the complete records — the torn
// record dropped, never anything before it.
func TestTornTailEveryOffset(t *testing.T) {
	const whole = 5
	build := func(t *testing.T) (string, int64) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < whole; i++ {
			if _, err := l.Append(record(i)); err != nil {
				t.Fatal(err)
			}
		}
		info, err := os.Stat(lastSegment(t, dir))
		if err != nil {
			t.Fatal(err)
		}
		intact := info.Size()
		if _, err := l.Append([]byte("the-final-record-that-will-be-torn")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		return dir, intact
	}
	dir0, intact := build(t)
	full, err := os.Stat(lastSegment(t, dir0))
	if err != nil {
		t.Fatal(err)
	}
	for cut := intact; cut < full.Size(); cut++ {
		dir, _ := build(t)
		seg := lastSegment(t, dir)
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		got := collect(t, l, 0)
		if len(got) != whole {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), whole)
		}
		if l.NextLSN() != whole {
			t.Fatalf("cut at %d: NextLSN %d", cut, l.NextLSN())
		}
		if tb := l.Stats().TailTruncatedBytes; cut > intact && tb != cut-intact {
			t.Fatalf("cut at %d: truncated %d bytes, want %d", cut, tb, cut-intact)
		}
		// The log must append cleanly after healing the tail.
		if lsn, err := l.Append([]byte("after-heal")); err != nil || lsn != whole {
			t.Fatalf("cut at %d: append after heal lsn %d err %v", cut, lsn, err)
		}
		l.Close()
	}
}

// TestCorruptMidSegmentRefuses: a checksum flip with valid records after
// it is not a torn write — the log must refuse with ErrCorrupt, not
// silently drop acked records.
func TestCorruptMidSegmentRefuses(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(record(i + 10)); err != nil { // i+10: records long enough to flip mid-payload
			t.Fatal(err)
		}
	}
	l.Close()
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	n0 := int64(binary.LittleEndian.Uint32(data[:4]))
	off := recHeaderBytes + n0 + recHeaderBytes + 2
	data[off] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-segment corruption opened with err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptNonFinalSegmentRefuses: even tail-shaped damage is a refusal
// when it is not in the final segment.
func TestCorruptNonFinalSegmentRefuses(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(record(i + 10)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	entries, _ := os.ReadDir(dir)
	first := filepath.Join(dir, entries[0].Name())
	info, _ := os.Stat(first)
	if err := os.Truncate(first, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 32}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short non-final segment opened with err = %v, want ErrCorrupt", err)
	}
}

func TestZeroLengthInteriorSegmentRefuses(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	entries, _ := os.ReadDir(dir)
	if err := os.Truncate(filepath.Join(dir, entries[0].Name()), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 32}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-length interior segment: err = %v, want ErrCorrupt", err)
	}
}

func TestEmptyFinalSegmentTolerated(t *testing.T) {
	// Crash between segment creation and first append: benign.
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("empty final segment refused: %v", err)
	}
	defer l2.Close()
	if l2.NextLSN() != 1 {
		t.Fatalf("NextLSN %d, want 1", l2.NextLSN())
	}
	if lsn, err := l2.Append(record(2)); err != nil || lsn != 1 {
		t.Fatalf("append into healed log: lsn %d err %v", lsn, err)
	}
}

func TestSegmentGapRefuses(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	entries, _ := os.ReadDir(dir)
	if len(entries) < 3 {
		t.Skipf("need >=3 segments, have %d", len(entries))
	}
	if err := os.Remove(filepath.Join(dir, entries[1].Name())); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 32}); !errors.Is(err, ErrGap) {
		t.Fatalf("segment gap opened with err = %v, want ErrGap", err)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
		{"", 0, false},
	} {
		got, err := ParsePolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("String() roundtrip: %q -> %q", tc.in, got.String())
		}
	}

	// Always: nothing unsynced after an append. Never: bytes accumulate.
	la, err := Open(Options{Dir: t.TempDir(), Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer la.Close()
	la.Append(record(1))
	if st := la.Stats(); st.UnsyncedBytes != 0 || st.OldestUnsyncedUnixNano != 0 {
		t.Errorf("FsyncAlways left %d bytes unsynced", st.UnsyncedBytes)
	}
	ln, err := Open(Options{Dir: t.TempDir(), Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ln.Append(record(1))
	if st := ln.Stats(); st.UnsyncedBytes == 0 || st.OldestUnsyncedUnixNano == 0 {
		t.Error("FsyncNever reported no unsynced bytes after an append")
	}
	if err := ln.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := ln.Stats(); st.UnsyncedBytes != 0 {
		t.Error("explicit Sync left unsynced bytes")
	}

	li, err := Open(Options{Dir: t.TempDir(), Policy: FsyncInterval, SyncInterval: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	time.Sleep(time.Microsecond)
	li.Append(record(1))
	if st := li.Stats(); st.UnsyncedBytes != 0 {
		t.Error("elapsed FsyncInterval did not sync on append")
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(record(g*each + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.NextLSN(); n != goroutines*each {
		t.Fatalf("NextLSN %d, want %d", n, goroutines*each)
	}
	if got := collect(t, l, 0); len(got) != goroutines*each {
		t.Fatalf("replayed %d records", len(got))
	}
}

func TestClosedLog(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(record(1))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(record(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("empty Dir accepted")
	}
	if _, err := Open(Options{Dir: t.TempDir(), SegmentBytes: -1}); err == nil {
		t.Error("negative segment size accepted")
	}
	if _, err := Open(Options{Dir: t.TempDir(), SyncInterval: -time.Second}); err == nil {
		t.Error("negative sync interval accepted")
	}
}
