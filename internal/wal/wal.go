// Package wal is the write-ahead log of the counting service: an
// append-only, segmented, checksummed log of ingest records (SBF1 add
// frames and merge snapshots) that makes an ack mean something across a
// crash. The serving layer appends every mutation to the log *before*
// acknowledging it, and a restarted process replays the log tail on top
// of the newest checkpoint — because the log records are the wire frames
// themselves, replay re-runs the exact ingest sequence and the recovered
// store is bit-identical to the pre-crash one by construction.
//
// On-disk layout: Dir holds segment files named wal-<base>.seg, where
// <base> is the 16-hex-digit LSN (log sequence number — a dense record
// index, starting at 0) of the segment's first record. Each record is
//
//	[uint32 LE payload length][uint32 LE CRC32-C of payload][payload]
//
// Segments rotate at Options.SegmentBytes; completed checkpoints call
// TruncateBefore to delete segments made obsolete (every record below the
// checkpoint's LSN).
//
// Crash semantics, the heart of the package: a torn append — the process
// or machine died mid-write — can only ever damage the *tail* of the
// *last* segment. Open therefore truncates the last segment at the first
// record that is short or fails its checksum **iff nothing readable
// follows it** (the torn-write signature), and refuses to open — with a
// typed, errors.Is-able error — on any damage that a torn write cannot
// explain: a bad checksum with valid bytes after it, a short or
// checksum-bad record in a non-final segment, a gap in the segment
// sequence. Truncating at the torn record and never past it is what keeps
// "replay the tail" honest: every record the log returns was written in
// full, and no record that was written in full is ever dropped.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fsx"
)

// FsyncPolicy says when Append makes records durable against power
// failure. Against a process crash (kill -9) every completed Append is
// durable under every policy — the bytes are in the kernel regardless.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs the segment before Append returns: an acked
	// record survives power failure. The strictest and slowest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs at most every Options.SyncInterval, piggybacked
	// on Append (and forced by Sync): bounded post-power-failure loss.
	FsyncInterval
	// FsyncNever leaves syncing to the OS (and to explicit Sync calls,
	// which checkpoints issue): crash-safe, power-failure lossy.
	FsyncNever
)

// ParsePolicy maps the CLI vocabulary ("always", "interval", "never")
// onto a policy.
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Typed open/replay failures. Wrapped with file and offset context; test
// with errors.Is.
var (
	// ErrCorrupt reports damage a torn write cannot explain: a bad
	// checksum mid-segment, a short record in a non-final segment, or an
	// empty non-final segment. The log refuses to open — counting on top
	// of silently dropped acked records would be worse than not starting.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrGap reports a hole in the segment sequence (a segment's base LSN
	// does not continue its predecessor): records are missing wholesale.
	ErrGap = errors.New("wal: gap in segment sequence")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("wal: log is closed")
)

// Options dimensions a Log. Dir is required; everything else defaults.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rotates segments at this size (0 = 64 MiB). A single
	// record larger than the cap still lands in one segment — the cap
	// bounds rotation, not record size.
	SegmentBytes int64
	// Policy says when appends fsync; see FsyncPolicy.
	Policy FsyncPolicy
	// SyncInterval is FsyncInterval's cadence (0 = 100 ms).
	SyncInterval time.Duration
}

// DefaultSegmentBytes is the segment rotation size when unset.
const DefaultSegmentBytes = 64 << 20

// DefaultSyncInterval is FsyncInterval's cadence when unset.
const DefaultSyncInterval = 100 * time.Millisecond

// recHeaderBytes is the per-record framing cost: length + CRC.
const recHeaderBytes = 8

// RecordOverhead is the on-disk framing cost per record beyond its
// payload — exported so callers can account pending-replay bytes exactly.
const RecordOverhead = recHeaderBytes

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segInfo is one on-disk segment: its first LSN, record count, and size.
type segInfo struct {
	base    uint64
	records uint64
	bytes   int64
	path    string
}

func (s segInfo) end() uint64 { return s.base + s.records }

// Stats is a point-in-time observability snapshot of the log.
type Stats struct {
	// Segments and Bytes describe the on-disk footprint (all segments,
	// including the active one).
	Segments int
	Bytes    int64
	// NextLSN is the LSN the next Append will get (== records ever
	// appended, counting those already truncated away).
	NextLSN uint64
	// AppendedBytes counts bytes ever appended (headers included),
	// monotone across the process lifetime, initialized at Open to the
	// bytes already on disk. TruncateBefore does not decrease it.
	AppendedBytes int64
	// UnsyncedBytes counts bytes appended since the last fsync;
	// OldestUnsyncedUnixNano stamps the first of them (0 when none) —
	// together they bound what a power failure right now could lose.
	UnsyncedBytes          int64
	OldestUnsyncedUnixNano int64
	LastSyncUnixNano       int64
	// TailTruncatedBytes reports how many torn-tail bytes Open discarded
	// (0 on a clean open).
	TailTruncatedBytes int64
}

// Log is an open write-ahead log. Append/Sync/NextLSN/Stats are safe for
// concurrent use; Replay and TruncateBefore serialize against appends.
type Log struct {
	opts Options

	mu        sync.Mutex
	f         *os.File  // active segment (last in segs)
	segs      []segInfo // all live segments, ascending base; last is active
	nextLSN   uint64
	appended  int64 // lifetime bytes, incl. pre-existing at Open
	unsynced  int64
	oldestUns time.Time
	lastSync  time.Time
	truncated int64 // torn-tail bytes discarded at Open
	buf       []byte
	closed    bool
}

// segName renders a segment file name for its base LSN.
func segName(base uint64) string { return fmt.Sprintf("wal-%016x.seg", base) }

// parseSegName inverts segName; ok is false for foreign files.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Open scans Dir, validates every segment, truncates a torn tail in the
// final segment (never anything else — see the package comment for the
// refusal rules), and returns a Log positioned to append after the last
// intact record.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < 0 {
		return nil, fmt.Errorf("wal: segment size %d < 0", opts.SegmentBytes)
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if opts.SyncInterval < 0 {
		return nil, fmt.Errorf("wal: sync interval %v < 0", opts.SyncInterval)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		base, ok := parseSegName(e.Name())
		if !ok {
			continue // foreign file (manifest, tmp, ...): not ours to judge
		}
		segs = append(segs, segInfo{base: base, path: filepath.Join(opts.Dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })

	l := &Log{opts: opts, lastSync: time.Now()}
	for i := range segs {
		final := i == len(segs)-1
		if i > 0 && segs[i].base != segs[i-1].end() {
			return nil, fmt.Errorf("%w: segment %s starts at lsn %d, previous ends at %d",
				ErrGap, filepath.Base(segs[i].path), segs[i].base, segs[i-1].end())
		}
		if err := l.scanSegment(&segs[i], final); err != nil {
			return nil, err
		}
		if !final && segs[i].records == 0 {
			// An empty *final* segment is a benign crash artifact (created,
			// died before the first append); an empty interior one means the
			// records the next segment's base promises are gone.
			return nil, fmt.Errorf("%w: segment %s is empty but not last",
				ErrCorrupt, filepath.Base(segs[i].path))
		}
	}
	l.segs = segs
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		l.nextLSN = last.end()
		// Reopen the final segment for appending.
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
	}
	for _, s := range l.segs {
		l.appended += s.bytes
	}
	return l, nil
}

// scanSegment walks one segment file, counting records and validating
// checksums. For the final segment a torn tail is truncated in place;
// anywhere else, damage is a typed refusal.
func (l *Log) scanSegment(s *segInfo, final bool) error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	name := filepath.Base(s.path)
	var hdr [recHeaderBytes]byte
	var payload []byte
	off := int64(0)
	// torn marks damage only a torn write can explain: the broken record
	// runs to end-of-file, nothing readable after it.
	truncateTail := func(reason string) error {
		if !final {
			return fmt.Errorf("%w: %s at %s offset %d in non-final segment", ErrCorrupt, reason, name, off)
		}
		if err := os.Truncate(s.path, off); err != nil {
			return fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
		}
		if err := fsx.SyncDir(l.opts.Dir); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.truncated += size - off
		size = off
		return nil
	}
	for off < size {
		rem := size - off
		if rem < recHeaderBytes {
			if err := truncateTail("short record header"); err != nil {
				return err
			}
			break
		}
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return fmt.Errorf("wal: reading %s: %w", name, err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:4]))
		want := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 {
			// A zero-length record is never written; its "header" is torn
			// garbage at the tail and corruption anywhere else.
			if err := truncateTail("zero-length record"); err != nil {
				return err
			}
			break
		}
		if recHeaderBytes+n > rem {
			if err := truncateTail("record past end of segment"); err != nil {
				return err
			}
			break
		}
		if int64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("wal: reading %s: %w", name, err)
		}
		if crc32.Checksum(payload, castagnoli) != want {
			if recHeaderBytes+n == rem {
				// The bad record is the last thing in the file: a torn
				// payload write. Anything after it could not have been
				// written by a later append, so damage here is corruption.
				if err := truncateTail("checksum mismatch in final record"); err != nil {
					return err
				}
				break
			}
			return fmt.Errorf("%w: checksum mismatch at %s offset %d (lsn %d), valid data follows",
				ErrCorrupt, name, off, s.base+s.records)
		}
		off += recHeaderBytes + n
		s.records++
	}
	s.bytes = size
	return nil
}

// Append writes one record whose payload is the concatenation of parts,
// fsyncing per the policy, and returns the record's LSN. The multi-part
// form lets a caller prepend a type tag to a borrowed frame buffer
// without copying either. Safe for concurrent use; concurrent appends
// serialize.
func (l *Log) Append(parts ...[]byte) (uint64, error) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return 0, errors.New("wal: empty record")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.f == nil || l.segs[len(l.segs)-1].bytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	// One buffered write per record: header + parts assembled contiguously
	// so a record hits the kernel in a single syscall (the torn-tail scan
	// depends only on ordering within the file, which O_APPEND gives us).
	if cap(l.buf) < recHeaderBytes+total {
		l.buf = make([]byte, 0, recHeaderBytes+total)
	}
	buf := l.buf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(total))
	crc := uint32(0)
	for _, p := range parts {
		crc = crc32.Update(crc, castagnoli, p)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	for _, p := range parts {
		buf = append(buf, p...)
	}
	if _, err := l.f.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	// A oversized record must not pin its buffer in the log forever.
	if cap(buf) <= 1<<20 {
		l.buf = buf
	} else {
		l.buf = nil
	}
	lsn := l.nextLSN
	l.nextLSN++
	seg := &l.segs[len(l.segs)-1]
	seg.records++
	seg.bytes += int64(recHeaderBytes + total)
	l.appended += int64(recHeaderBytes + total)
	if l.unsynced == 0 {
		l.oldestUns = time.Now()
	}
	l.unsynced += int64(recHeaderBytes + total)
	switch l.opts.Policy {
	case FsyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case FsyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncInterval {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment (fsync + close) and starts a new
// one named by the next LSN, fsyncing the directory so the new segment's
// existence survives power loss.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		l.f = nil
	}
	path := filepath.Join(l.opts.Dir, segName(l.nextLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: new segment: %w", err)
	}
	if err := fsx.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segs = append(l.segs, segInfo{base: l.nextLSN, path: path})
	return nil
}

func (l *Log) syncLocked() error {
	if l.f != nil && l.unsynced > 0 {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	l.unsynced = 0
	l.oldestUns = time.Time{}
	l.lastSync = time.Now()
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// NextLSN returns the LSN the next Append will assign — equivalently, the
// number of records ever appended. A checkpoint captures this under its
// barrier: the snapshot then covers exactly the records below it.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Replay streams every record with lsn >= from, in order, to fn. The
// payload slice is reused between calls — fn must not retain it. An fn
// error aborts the replay and is returned verbatim. Replay reads the
// segment files independently of the append handle; it is meant to run
// before serving starts.
func (l *Log) Replay(from uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	l.mu.Unlock()
	var payload []byte
	var hdr [recHeaderBytes]byte
	for _, s := range segs {
		if s.end() <= from {
			continue
		}
		f, err := os.Open(s.path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		lsn := s.base
		for rec := uint64(0); rec < s.records; rec++ {
			if _, err := io.ReadFull(f, hdr[:]); err != nil {
				f.Close()
				return fmt.Errorf("wal: replay %s: %w", filepath.Base(s.path), err)
			}
			n := int(binary.LittleEndian.Uint32(hdr[:4]))
			if cap(payload) < n {
				payload = make([]byte, n)
			}
			payload = payload[:n]
			if _, err := io.ReadFull(f, payload); err != nil {
				f.Close()
				return fmt.Errorf("wal: replay %s: %w", filepath.Base(s.path), err)
			}
			if lsn >= from {
				// Checksums were verified at Open; a record mutated between
				// Open and Replay would be caught here too, cheaply.
				if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
					f.Close()
					return fmt.Errorf("%w: checksum mismatch at lsn %d during replay", ErrCorrupt, lsn)
				}
				if err := fn(lsn, payload); err != nil {
					f.Close()
					return err
				}
			}
			lsn++
		}
		f.Close()
	}
	return nil
}

// TruncateBefore deletes segments whose every record is below lsn —
// called after a checkpoint covering those records became durable. The
// active segment is never deleted (rotation retires it first). Deletion
// is fsynced into the directory.
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	kept := l.segs[:0]
	removed := false
	for i, s := range l.segs {
		if s.end() <= lsn && i < len(l.segs)-1 {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	if removed {
		return fsx.SyncDir(l.opts.Dir)
	}
	return nil
}

// Stats returns a point-in-time observability snapshot.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:           len(l.segs),
		NextLSN:            l.nextLSN,
		AppendedBytes:      l.appended,
		UnsyncedBytes:      l.unsynced,
		TailTruncatedBytes: l.truncated,
	}
	for _, s := range l.segs {
		st.Bytes += s.bytes
	}
	if !l.lastSync.IsZero() {
		st.LastSyncUnixNano = l.lastSync.UnixNano()
	}
	if !l.oldestUns.IsZero() {
		st.OldestUnsyncedUnixNano = l.oldestUns.UnixNano()
	}
	return st
}

// Close fsyncs and closes the active segment. The log is unusable after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
