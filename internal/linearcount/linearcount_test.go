package linearcount

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestEmptyAndSmall(t *testing.T) {
	s := New(1000, 1)
	if s.Estimate() != 0 {
		t.Errorf("empty estimate = %g, want 0", s.Estimate())
	}
	if s.Saturated() {
		t.Error("empty sketch saturated")
	}
	s.AddUint64(42)
	// One distinct item: exactly one bucket set, estimate m·ln(m/(m-1)) ≈ 1.
	if got := s.Estimate(); math.Abs(got-1) > 0.01 {
		t.Errorf("single-item estimate = %g, want ≈1", got)
	}
	if s.Ones() != 1 {
		t.Errorf("Ones = %d, want 1", s.Ones())
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	s := New(500, 2)
	for i := 0; i < 100; i++ {
		s.AddUint64(7)
		s.AddString("")
		_ = s.Add([]byte("x"))
	}
	if s.Ones() > 3 {
		t.Errorf("duplicates set %d buckets, want ≤ 3", s.Ones())
	}
}

func TestAccuracyAtModerateLoad(t *testing.T) {
	// At load n/m = 1 linear counting should achieve roughly the Whang
	// standard error; verify RRMSE across replicates is within 2× theory.
	const m, n, reps = 4096, 4096, 200
	var sum stats.ErrorSummary
	for rep := 0; rep < reps; rep++ {
		s := New(m, uint64(rep)+11)
		base := uint64(rep) << 40
		for i := 0; i < n; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), n)
	}
	rho := float64(n) / float64(m)
	theory := math.Sqrt((math.Exp(rho) - rho - 1) / (rho * rho * float64(m)))
	if got := sum.RRMSE(); got > 2*theory || got < theory/3 {
		t.Errorf("RRMSE = %.4f, theory ≈ %.4f", got, theory)
	}
	if bias := sum.Bias(); math.Abs(bias) > 3*theory/math.Sqrt(reps)+0.005 {
		t.Errorf("bias = %.4f, want ≈ 0", bias)
	}
}

func TestSaturation(t *testing.T) {
	s := New(64, 3)
	for i := uint64(0); i < 100000; i++ {
		s.AddUint64(i)
	}
	if !s.Saturated() {
		t.Fatalf("sketch not saturated after 100k items into 64 bits (ones=%d)", s.Ones())
	}
	want := 64 * math.Log(64)
	if got := s.Estimate(); got != want {
		t.Errorf("saturated estimate = %g, want cap %g", got, want)
	}
	if !math.IsNaN(s.StdErr()) {
		t.Error("saturated StdErr should be NaN")
	}
}

func TestStdErrFinite(t *testing.T) {
	s := New(1024, 5)
	for i := uint64(0); i < 500; i++ {
		s.AddUint64(i)
	}
	se := s.StdErr()
	if math.IsNaN(se) || se <= 0 || se > 1 {
		t.Errorf("StdErr = %g, want sensible positive value", se)
	}
}

func TestMergeEqualsUnionStream(t *testing.T) {
	// Merging two sketches over disjoint streams must equal one sketch
	// over the concatenated stream (same hasher).
	a := New(2048, 9)
	b := New(2048, 9)
	all := New(2048, 9)
	r := xrand.New(4)
	for i := 0; i < 1000; i++ {
		x := r.Uint64()
		a.AddUint64(x)
		all.AddUint64(x)
	}
	for i := 0; i < 1000; i++ {
		x := r.Uint64()
		b.AddUint64(x)
		all.AddUint64(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != all.Estimate() {
		t.Errorf("merge estimate %g != union stream estimate %g", a.Estimate(), all.Estimate())
	}
	if err := a.Merge(New(64, 9)); err == nil {
		t.Error("merge of different sizes did not error")
	}
}

func TestMemoryForMonotone(t *testing.T) {
	// More accuracy or more items must never need less memory.
	prev := 0
	for _, n := range []float64{1e3, 1e4, 1e5} {
		m := MemoryFor(n, 0.01)
		if m <= prev {
			t.Errorf("MemoryFor(%g) = %d not increasing", n, m)
		}
		prev = m
	}
	if MemoryFor(1e4, 0.01) <= MemoryFor(1e4, 0.05) {
		t.Error("tighter eps should need more memory")
	}
	if MemoryFor(0.5, 0.01) < 1 {
		t.Error("degenerate n should still return positive memory")
	}
}

func TestResetAndSize(t *testing.T) {
	s := New(256, 1)
	for i := uint64(0); i < 100; i++ {
		s.AddUint64(i)
	}
	s.Reset()
	if s.Ones() != 0 || s.Estimate() != 0 {
		t.Error("reset did not clear sketch")
	}
	if s.SizeBits() != 256 {
		t.Errorf("SizeBits = %d, want 256", s.SizeBits())
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m < 1")
		}
	}()
	New(0, 1)
}

func BenchmarkAddUint64(b *testing.B) {
	s := New(1<<16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}
