// Package linearcount implements linear (probabilistic) counting from
// Whang, Vander-Zanden & Taylor (1990), the first baseline reviewed in
// Section 2.2 of the S-bitmap paper.
//
// Distinct items are hashed uniformly into a bitmap of m bits; with Z empty
// buckets remaining, the maximum-likelihood cardinality estimate is
//
//	n̂ = m · ln(m / Z).
//
// Linear counting is accurate while the bitmap load n/m stays moderate
// (memory grows almost linearly in n, hence the name) and degrades sharply
// as the bitmap saturates; the S-bitmap paper uses it both as a baseline
// and as the estimation primitive inside virtual and multiresolution
// bitmaps.
package linearcount

import (
	"fmt"
	"math"
	"math/bits"
	"unsafe"

	"repro/internal/bitvec"
	"repro/internal/uhash"
)

// Sketch is a linear counting bitmap. Not safe for concurrent use.
type Sketch struct {
	v   *bitvec.Vector
	h   uhash.Hasher
	scr uhash.Scratch // reusable batch hash buffers (not serialized)
}

// New returns a linear counting sketch with m bits, hashing with the
// default Mixer seeded by seed. It panics if m < 1.
func New(m int, seed uint64) *Sketch {
	return NewWithHasher(m, uhash.NewMixer(seed))
}

// NewWithHasher returns a linear counting sketch with m bits and an
// explicit hash function.
func NewWithHasher(m int, h uhash.Hasher) *Sketch {
	if m < 1 {
		panic(fmt.Sprintf("linearcount: bitmap size %d < 1", m))
	}
	return &Sketch{v: bitvec.New(m), h: h}
}

// MemoryFor returns the bitmap size (in bits) needed to count up to n with
// relative standard error roughly eps, from Whang et al.'s analysis:
// SE(n̂)/n = sqrt((e^ρ − ρ − 1)/(ρ·n)) at load ρ = n/m, solved for the
// largest admissible load by bisection. This is the "memory almost linear
// in n" cost that names the method.
func MemoryFor(n float64, eps float64) int {
	if n < 1 {
		n = 1
	}
	// (e^ρ − ρ − 1)/ρ is increasing in ρ; the largest feasible load
	// satisfies (e^ρ − ρ − 1)/(ρ·n) = eps².
	f := func(rho float64) float64 {
		return (math.Exp(rho) - rho - 1) / (rho * n)
	}
	lo, hi := 1e-9, 60.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if f(mid) > eps*eps {
			hi = mid
		} else {
			lo = mid
		}
	}
	return int(math.Ceil(n / lo))
}

// Add offers an item to the sketch and reports whether a bucket changed.
func (s *Sketch) Add(item []byte) bool {
	hi, _ := s.h.Sum128(item)
	return s.insert(hi)
}

// AddUint64 offers a 64-bit item (equivalent to its 8-byte LE encoding).
func (s *Sketch) AddUint64(item uint64) bool {
	hi, _ := s.h.Sum128Uint64(item)
	return s.insert(hi)
}

// AddString offers a string item; it hashes identically to Add of the
// string's bytes but avoids the []byte conversion.
func (s *Sketch) AddString(item string) bool {
	hi, _ := s.h.Sum128String(item)
	return s.insert(hi)
}

func (s *Sketch) insert(word uint64) bool {
	j, _ := bits.Mul64(word, uint64(s.v.Len()))
	return s.v.Set(int(j))
}

// AddBatch64 offers a slice of 64-bit items and returns how many set a
// fresh bucket; state-equivalent to AddUint64 on each item in order, with
// chunked hashing and unchecked bit sets (the multiply-shift bucket index
// is in range by construction).
func (s *Sketch) AddBatch64(items []uint64) int {
	return uhash.Batch64(s.h, &s.scr, items, s.insertBatch)
}

// AddBatchString is AddBatch64 for string items.
func (s *Sketch) AddBatchString(items []string) int {
	return uhash.BatchString(s.h, &s.scr, items, s.insertBatch)
}

func (s *Sketch) insertBatch(hi, _ []uint64) int {
	v := s.v
	mm := uint64(v.Len())
	changed := 0
	for _, h := range hi {
		j, _ := bits.Mul64(h, mm)
		if v.SetUnchecked(int(j)) {
			changed++
		}
	}
	return changed
}

// Ones returns the number of set buckets.
func (s *Sketch) Ones() int { return s.v.Ones() }

// Saturated reports whether every bucket is set, in which case Estimate
// returns the (finite) saturation cap m·ln(m) rather than +Inf.
func (s *Sketch) Saturated() bool { return s.v.Zeros() == 0 }

// Estimate returns n̂ = m·ln(m/Z). A saturated bitmap returns m·ln(m),
// the largest value the estimator can justify.
func (s *Sketch) Estimate() float64 {
	m := float64(s.v.Len())
	z := float64(s.v.Zeros())
	if z == 0 {
		return m * math.Log(m)
	}
	return m * math.Log(m/z)
}

// StdErr returns the analytical standard error of the estimate at the
// current load t = n̂/m: sqrt(m)·sqrt(e^t − t − 1)/n̂ (Whang et al., Eq. 4.1
// region). It is NaN for an empty or saturated sketch.
func (s *Sketch) StdErr() float64 {
	est := s.Estimate()
	if est == 0 || s.Saturated() {
		return math.NaN()
	}
	m := float64(s.v.Len())
	t := est / m
	return math.Sqrt(m*(math.Exp(t)-t-1)) / est
}

// Merge ORs another linear counting sketch into s. Both must have the same
// size and (for meaningful results) the same hash function; the merged
// sketch estimates the cardinality of the union of the two streams.
func (s *Sketch) Merge(o *Sketch) error {
	return s.v.UnionWith(o.vector())
}

func (s *Sketch) vector() *bitvec.Vector { return s.v }

// SizeBits returns the summary memory footprint in bits.
func (s *Sketch) SizeBits() int { return s.v.Len() }

// Footprint returns the sketch's resident process memory in bytes: the
// struct, the bitmap words, and the batch-hash scratch.
func (s *Sketch) Footprint() int {
	return int(unsafe.Sizeof(*s)) + s.v.Footprint() + s.scr.Footprint()
}

// Reset clears the sketch for reuse.
func (s *Sketch) Reset() { s.v.Reset() }

// MarshalBinary serializes the bitmap. The hash function is not serialized;
// pass the original hasher to Unmarshal to continue counting.
func (s *Sketch) MarshalBinary() ([]byte, error) { return s.v.MarshalBinary() }

// UnmarshalBinary reconstructs the sketch in place from MarshalBinary
// output. A nil hasher field is replaced by the default Mixer with seed 1.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	v := &bitvec.Vector{}
	if err := v.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("linearcount: %w", err)
	}
	if v.Len() < 1 {
		return fmt.Errorf("linearcount: serialized bitmap is empty")
	}
	s.v = v
	if s.h == nil {
		s.h = uhash.NewMixer(1)
	}
	return nil
}

// Unmarshal reconstructs a sketch from MarshalBinary output, hashing with h
// (nil selects the default Mixer with seed 1).
func Unmarshal(data []byte, h uhash.Hasher) (*Sketch, error) {
	s := &Sketch{h: h}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}
