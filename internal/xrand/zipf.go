package xrand

import "math"

// Zipf samples integers k in [0, n) with probability proportional to
// (k+1)^(-s), s > 1 not required: any s >= 0 is supported (s = 0 is
// uniform). It uses rejection-inversion (Hörmann & Derflinger 1996), the
// same construction as math/rand's Zipf but reimplemented so that streams
// are stable across Go releases and so that s values in (0, 1] — common for
// flow-size popularity models — are accepted.
type Zipf struct {
	r            *Rand
	s            float64
	n            float64
	oneMinusS    float64
	hIntegralX1  float64
	hIntegralNum float64
	ss           float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s >= 0.
// It panics if n <= 0 or s < 0.
func NewZipf(r *Rand, s float64, n uint64) *Zipf {
	if n == 0 {
		panic("xrand: NewZipf with n == 0")
	}
	if s < 0 {
		panic("xrand: NewZipf with s < 0")
	}
	z := &Zipf{r: r, s: s, n: float64(n), oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNum = z.hIntegral(z.n + 0.5)
	z.ss = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

// h is the (unnormalized) density x^-s evaluated away from the lattice.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

// hIntegral is an antiderivative of h.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

// hIntegralInv is the inverse of hIntegral.
func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series fallback near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a series fallback near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next returns the next Zipf variate in [0, n).
func (z *Zipf) Next() uint64 {
	if z.s == 0 {
		return z.r.Uint64n(uint64(z.n))
	}
	for {
		u := z.hIntegralNum + z.r.Float64()*(z.hIntegralX1-z.hIntegralNum)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.ss || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}
