package xrand

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the public-domain splitmix64.c.
	sm := NewSplitMix64(1234567)
	got := []uint64{sm.Next(), sm.Next(), sm.Next()}
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitmix64 output %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Mix64 must be injective; sample a window of structured inputs and
	// verify no collisions, plus spot-check avalanche on one bit flip.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d both map to %d", prev, i, h)
		}
		seen[h] = i
	}
	flips := bits.OnesCount64(Mix64(42) ^ Mix64(43))
	if flips < 16 || flips > 48 {
		t.Errorf("avalanche of one-bit flip changed %d bits, want near 32", flips)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("same-seed generators diverged at step %d: %d != %d", i, x, y)
		}
	}
	c := New(100)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different-seed generators matched %d/1000 outputs", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 2000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square test over 10 cells; threshold is the 99.9% quantile of
	// chi2 with 9 dof (27.88), padded for safety.
	r := New(11)
	const cells, samples = 10, 100000
	var counts [cells]int
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(cells)]++
	}
	expected := float64(samples) / cells
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 30 {
		t.Errorf("Uint64n chi-square = %.2f, want < 30 (counts %v)", chi2, counts)
	}
}

func TestMul128MatchesBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul128(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %.4f, want 0.5±0.01", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %.4f, want 0±0.02", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %.4f, want 1±0.05", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %.4f, want 1±0.02", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, lambda := range []float64{0.5, 4, 32, 200} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		tol := 4 * math.Sqrt(lambda/n) // 4 sigma of the sample mean
		if math.Abs(mean-lambda) > tol+0.51 {
			t.Errorf("Poisson(%v) mean = %.3f, want %v±%.3f", lambda, mean, lambda, tol)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(23)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(3, 1.5)
	}
	// Median of LogNormal(mu, sigma) is exp(mu); use a selection-free
	// estimate: count how many fall below exp(3).
	below := 0
	for _, v := range vals {
		if v < math.Exp(3) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("LogNormal median check: %.4f below exp(mu), want 0.5±0.01", frac)
	}
}

func TestJumpDisjointStreams(t *testing.T) {
	a := New(1)
	b := New(1)
	b.Jump()
	matches := 0
	for i := 0; i < 10000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Errorf("jumped stream matched base stream %d/10000 times", matches)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(42)
	child := parent.Split()
	matches := 0
	for i := 0; i < 10000; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Errorf("split streams matched %d/10000 times", matches)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	// Each element should land in position 0 with probability 1/4.
	r := New(29)
	const trials = 40000
	var counts [4]int
	for i := 0; i < trials; i++ {
		a := []int{0, 1, 2, 3}
		r.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a[0]]++
	}
	for v, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("element %d at position 0 with frequency %.3f, want 0.25±0.02", v, frac)
		}
	}
}

func TestZipfExponentZeroIsUniform(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 0, 8)
	var counts [8]int
	const n = 80000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.125) > 0.01 {
			t.Errorf("Zipf(s=0) P(%d) = %.4f, want 0.125±0.01", k, frac)
		}
	}
}

func TestZipfFrequencyRatios(t *testing.T) {
	// For Zipf with exponent s, P(0)/P(1) should be 2^s.
	for _, s := range []float64{0.8, 1.2, 2.0} {
		r := New(37)
		z := NewZipf(r, s, 1000)
		counts := make(map[uint64]int)
		const n = 400000
		for i := 0; i < n; i++ {
			counts[z.Next()]++
		}
		ratio := float64(counts[0]) / float64(counts[1])
		want := math.Pow(2, s)
		if math.Abs(ratio-want)/want > 0.1 {
			t.Errorf("Zipf(s=%v) P(0)/P(1) = %.3f, want %.3f±10%%", s, ratio, want)
		}
	}
}

func TestZipfRange(t *testing.T) {
	r := New(41)
	z := NewZipf(r, 1.1, 50)
	for i := 0; i < 20000; i++ {
		if v := z.Next(); v >= 50 {
			t.Fatalf("Zipf value %d out of range [0,50)", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(1)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero n", func() { NewZipf(r, 1, 0) }},
		{"negative s", func() { NewZipf(r, -1, 10) }},
		{"Uint64n zero", func() { r.Uint64n(0) }},
		{"Intn zero", func() { r.Intn(0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestParetoTail(t *testing.T) {
	// P(X > 2*xm) = 2^-alpha for Pareto(xm, alpha).
	r := New(43)
	const n = 200000
	xm, alpha := 1.0, 1.5
	over := 0
	for i := 0; i < n; i++ {
		if r.Pareto(xm, alpha) > 2*xm {
			over++
		}
	}
	frac := float64(over) / n
	want := math.Pow(2, -alpha)
	if math.Abs(frac-want) > 0.01 {
		t.Errorf("Pareto tail P(X>2xm) = %.4f, want %.4f±0.01", frac, want)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1.2, 1<<20)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = z.Next()
	}
	_ = sink
}
