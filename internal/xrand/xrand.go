// Package xrand provides deterministic pseudo-random number generation for
// the simulation and benchmark harnesses.
//
// The experiments in this repository must be reproducible bit-for-bit across
// runs and platforms, so we implement our own generators rather than relying
// on math/rand (whose default source and shuffle algorithms have changed
// across Go releases). Two generators are provided:
//
//   - splitmix64: a tiny, fast generator used for seeding and for cheap
//     one-shot mixing. Passes BigCrush when used as a stream.
//   - xoshiro256**: the main workhorse generator (Blackman & Vigna 2018),
//     with 256 bits of state and a 2^128 jump function that yields
//     independent sub-streams for parallel replication.
//
// On top of the raw generators, the package offers the samplers the paper's
// workloads need: uniform integers without modulo bias, floats in [0,1),
// Zipf (rejection-inversion), log-normal, Pareto, Poisson, and exponential
// variates, plus Fisher-Yates shuffling.
package xrand

import "math"

// SplitMix64 is a 64-bit generator with 64 bits of state. It is primarily
// used to expand a single user seed into the larger state vectors required
// by xoshiro256**, and as a convenient stateless mixer.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a stateless bijective
// mixing function: distinct inputs produce distinct outputs, and the output
// bits are well distributed even for structured inputs such as counters.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, as recommended by
// the xoshiro authors (consecutive integer seeds give uncorrelated streams).
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// Guard against the (astronomically unlikely) all-zero state, which is a
	// fixed point of the xoshiro transition.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls to
// Uint64. Starting from a common seed, repeated jumps partition the period
// into non-overlapping sub-sequences for parallel workers.
func (r *Rand) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := uint(0); b < 64; b++ {
			if j&(1<<b) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Split returns a new generator whose stream is independent of r's future
// output. It is implemented by copying the state and jumping the child,
// then jumping the parent once more so neither overlaps the other.
func (r *Rand) Split() *Rand {
	child := &Rand{s: r.s}
	child.Jump()
	r.Jump()
	r.Jump() // keep parent ahead of the child's 2^128 window
	return child
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	for {
		v := r.Uint64()
		hi, lo := mul128(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + t>>32
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns exp(mu + sigma*Z) for standard normal Z.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a Pareto(xm, alpha) variate: xm * U^(-1/alpha).
func (r *Rand) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm * math.Pow(u, -1/alpha)
		}
	}
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda the PTRS transformed-rejection
// method would be overkill here, so it falls back to a normal approximation
// with continuity correction, which is accurate to well under the noise
// floor of our workloads for lambda > 64.
func (r *Rand) Poisson(lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda <= 64 {
		limit := math.Exp(-lambda)
		p := 1.0
		var k int64 = -1
		for p > limit {
			p *= r.Float64()
			k++
		}
		return k
	}
	v := math.Floor(lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5)
	if v < 0 {
		return 0
	}
	return int64(v)
}

// Shuffle permutes the first n elements using swap, via Fisher-Yates.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
