package stream

import (
	"testing"
)

func testScanCfg() ScanTraceConfig {
	return ScanTraceConfig{
		BackgroundKeys: 500, BackgroundMax: 100,
		Borderline: 20, BorderlineLo: 150, BorderlineHi: 400,
		Scanners: 5, ScannerLo: 1000, ScannerHi: 2000,
		Dup: 1.5, Seed: 42,
	}
}

// TestScanTraceGroundTruth: draining the trace and counting exact
// per-key distincts reproduces Spread(k) for every key — the ground
// truth the detection bench scores against is real.
func TestScanTraceGroundTruth(t *testing.T) {
	tr := NewScanTrace(testScanCfg())
	type keyCount struct {
		distinct map[uint64]struct{}
		records  int
	}
	seen := map[uint64]*keyCount{}
	total := 0
	ForEachRecord(tr, func(key, item uint64) {
		kc := seen[key]
		if kc == nil {
			kc = &keyCount{distinct: map[uint64]struct{}{}}
			seen[key] = kc
		}
		kc.distinct[item] = struct{}{}
		kc.records++
		total++
	})
	if total != tr.Records() {
		t.Fatalf("drained %d records, Records() says %d", total, tr.Records())
	}
	if len(seen) != tr.Keys() || tr.Keys() != tr.NumKeys() {
		t.Fatalf("drained %d keys, Keys()=%d NumKeys()=%d", len(seen), tr.Keys(), tr.NumKeys())
	}
	for k := 0; k < tr.NumKeys(); k++ {
		kc := seen[tr.Key(k)]
		if kc == nil {
			t.Fatalf("key index %d never emitted", k)
		}
		if len(kc.distinct) != tr.Spread(k) {
			t.Fatalf("key %d: %d distinct items, Spread says %d", k, len(kc.distinct), tr.Spread(k))
		}
	}
}

// TestScanTracePopulations: scanners sit in their configured range and
// above every background key; TruePositives with a threshold inside the
// borderline band includes all scanners and only above-threshold keys.
func TestScanTracePopulations(t *testing.T) {
	cfg := testScanCfg()
	tr := NewScanTrace(cfg)
	for k := 0; k < tr.NumKeys(); k++ {
		s := tr.Spread(k)
		switch {
		case tr.IsScanner(k):
			if s < cfg.ScannerLo || s > cfg.ScannerHi {
				t.Fatalf("scanner %d spread %d outside [%d, %d]", k, s, cfg.ScannerLo, cfg.ScannerHi)
			}
		case k < cfg.BackgroundKeys:
			if s < 1 || s > cfg.BackgroundMax {
				t.Fatalf("background %d spread %d outside [1, %d]", k, s, cfg.BackgroundMax)
			}
		default:
			if s < cfg.BorderlineLo || s > cfg.BorderlineHi {
				t.Fatalf("borderline %d spread %d outside [%d, %d]", k, s, cfg.BorderlineLo, cfg.BorderlineHi)
			}
		}
	}
	const T = 250
	pos := tr.TruePositives(T)
	scanners := 0
	for _, k := range pos {
		if float64(tr.Spread(k)) <= T {
			t.Fatalf("true positive %d has spread %d <= %v", k, tr.Spread(k), float64(T))
		}
		if tr.IsScanner(k) {
			scanners++
		}
	}
	if scanners != cfg.Scanners {
		t.Fatalf("%d of %d scanners above threshold %v", scanners, cfg.Scanners, float64(T))
	}
	if len(pos) == cfg.Scanners {
		t.Fatal("no borderline key above the threshold: the band does not straddle it")
	}
}

// TestScanTraceDeterminism: same seed, same trace; different seed,
// different identities.
func TestScanTraceDeterminism(t *testing.T) {
	a, b := NewScanTrace(testScanCfg()), NewScanTrace(testScanCfg())
	for i := 0; i < 1000; i++ {
		ak, ai, aok := a.NextRecord()
		bk, bi, bok := b.NextRecord()
		if ak != bk || ai != bi || aok != bok {
			t.Fatalf("record %d diverged: (%x, %x, %v) vs (%x, %x, %v)", i, ak, ai, aok, bk, bi, bok)
		}
	}
	cfg := testScanCfg()
	cfg.Seed = 43
	c := NewScanTrace(cfg)
	if c.Key(0) == a.Key(0) {
		t.Fatal("different seeds share key identities")
	}
}

func TestScanTracePanics(t *testing.T) {
	bad := []ScanTraceConfig{
		{BackgroundKeys: -1, Dup: 1},
		{BackgroundKeys: 10, BackgroundMax: 0, Dup: 1},
		{Borderline: 5, BorderlineLo: 10, BorderlineHi: 5, Dup: 1},
		{Scanners: 5, ScannerLo: 0, ScannerHi: 5, Dup: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d accepted: %+v", i, cfg)
				}
			}()
			NewScanTrace(cfg)
		}()
	}
}
