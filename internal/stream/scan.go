package stream

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// ScanTrace is the synthetic scan/superspreader detection workload: a
// sea of benign background flows (small, log-uniform spreads), a thin
// borderline band straddling the detection threshold (so precision and
// recall are measured where detection is actually hard, not on a
// cleanly separated population), and injected scanners whose spreads
// sit decisively above it — Estan et al.'s port-scan setting with known
// ground truth. The trace is a KeyedSpread underneath: deterministic
// for a seed, exact per-key spreads, round-interleaved emission (the
// scanners, having the most records, persist through the whole trace
// the way a real scan rides alongside background traffic).
type ScanTrace struct {
	*KeyedSpread
	cfg ScanTraceConfig
}

// ScanTraceConfig shapes a ScanTrace. Key indexes are laid out
// background first, then borderline, then scanners.
type ScanTraceConfig struct {
	// BackgroundKeys benign sources with log-uniform spreads in
	// [1, BackgroundMax] — mostly tiny, a few mid-sized, the shape of
	// real per-source fan-out.
	BackgroundKeys int
	BackgroundMax  int
	// Borderline keys with spreads uniform in [BorderlineLo,
	// BorderlineHi]; place the detection threshold inside this band.
	Borderline                 int
	BorderlineLo, BorderlineHi int
	// Scanners keys with spreads uniform in [ScannerLo, ScannerHi],
	// well above the threshold.
	Scanners             int
	ScannerLo, ScannerHi int
	// Dup is the record duplication factor (>= 1): a spread-s key emits
	// about s·Dup records, duplicates uniform over its items.
	Dup float64
	// Seed makes the whole trace (spreads, identities, interleaving)
	// deterministic.
	Seed uint64
}

// NewScanTrace builds the trace. Panics on a nonsensical config
// (negative counts, inverted ranges, Dup < 1) — configs are code, not
// input.
func NewScanTrace(cfg ScanTraceConfig) *ScanTrace {
	if cfg.BackgroundKeys < 0 || cfg.Borderline < 0 || cfg.Scanners < 0 {
		panic(fmt.Sprintf("stream: negative ScanTrace population %+v", cfg))
	}
	if cfg.BackgroundKeys > 0 && cfg.BackgroundMax < 1 {
		panic(fmt.Sprintf("stream: ScanTrace background max %d < 1", cfg.BackgroundMax))
	}
	if cfg.Borderline > 0 && (cfg.BorderlineLo < 1 || cfg.BorderlineHi < cfg.BorderlineLo) {
		panic(fmt.Sprintf("stream: ScanTrace borderline range [%d, %d]", cfg.BorderlineLo, cfg.BorderlineHi))
	}
	if cfg.Scanners > 0 && (cfg.ScannerLo < 1 || cfg.ScannerHi < cfg.ScannerLo) {
		panic(fmt.Sprintf("stream: ScanTrace scanner range [%d, %d]", cfg.ScannerLo, cfg.ScannerHi))
	}
	spreads := make([]int, 0, cfg.BackgroundKeys+cfg.Borderline+cfg.Scanners)
	roll := xrand.New(cfg.Seed ^ 0x5ca17ace)
	for i := 0; i < cfg.BackgroundKeys; i++ {
		// Log-uniform in [1, max]: most sources touch a handful of
		// targets, a few fan out to hundreds.
		s := int(math.Exp(roll.Float64() * math.Log(float64(cfg.BackgroundMax))))
		if s < 1 {
			s = 1
		}
		if s > cfg.BackgroundMax {
			s = cfg.BackgroundMax
		}
		spreads = append(spreads, s)
	}
	for i := 0; i < cfg.Borderline; i++ {
		spreads = append(spreads, cfg.BorderlineLo+roll.Intn(cfg.BorderlineHi-cfg.BorderlineLo+1))
	}
	for i := 0; i < cfg.Scanners; i++ {
		spreads = append(spreads, cfg.ScannerLo+roll.Intn(cfg.ScannerHi-cfg.ScannerLo+1))
	}
	return &ScanTrace{
		KeyedSpread: NewKeyedSpread(spreads, cfg.Dup, cfg.Seed),
		cfg:         cfg,
	}
}

// Config returns the trace's configuration.
func (t *ScanTrace) Config() ScanTraceConfig { return t.cfg }

// NumKeys returns the total key population (background + borderline +
// scanners), indexable by the methods below.
func (t *ScanTrace) NumKeys() int {
	return t.cfg.BackgroundKeys + t.cfg.Borderline + t.cfg.Scanners
}

// IsScanner reports whether key index k is one of the injected
// scanners.
func (t *ScanTrace) IsScanner(k int) bool {
	return k >= t.cfg.BackgroundKeys+t.cfg.Borderline
}

// TruePositives returns the key indexes whose exact spread exceeds
// threshold — the detection ground truth. With the threshold inside the
// borderline band this includes every scanner, the upper part of the
// band, and nothing else.
func (t *ScanTrace) TruePositives(threshold float64) []int {
	var out []int
	for k := 0; k < t.NumKeys(); k++ {
		if float64(t.Spread(k)) > threshold {
			out = append(out, k)
		}
	}
	return out
}

// KeyString is the canonical string form of a trace key for the keyed
// HTTP/NDJSON surfaces (the Store's string keys): 16 hex digits. Both
// sbench and flowgen emit this form, so their traffic and ground truth
// agree.
func KeyString(key uint64) string { return fmt.Sprintf("%016x", key) }
