// Package stream generates the synthetic item streams the experiments
// consume: streams with a known number of distinct items under several
// duplication models (none, uniform replication, Zipf popularity), plus a
// word-stream helper for the text examples.
//
// Every generator is deterministic given its seed and emits 64-bit item
// identifiers; sketches hash these through their own universal hash, so the
// identifiers' structure is irrelevant (verified by the core package's
// hash-ablation tests). Identifiers are drawn from disjoint per-seed spaces
// so replicated experiments see independent populations.
package stream

import (
	"fmt"

	"repro/internal/xrand"
)

// Stream yields a finite sequence of items. Next returns the next item and
// whether one was available.
type Stream interface {
	Next() (item uint64, ok bool)
	// Distinct returns the exact number of distinct items the full stream
	// contains (ground truth for error measurement).
	Distinct() int
}

// ForEach drains s, invoking fn on every item.
func ForEach(s Stream, fn func(uint64)) {
	for {
		item, ok := s.Next()
		if !ok {
			return
		}
		fn(item)
	}
}

// BatchStream is optionally implemented by streams that can fill a caller
// buffer in one call, avoiding an interface dispatch per item. NextBatch
// must yield exactly the items Next would, in order.
type BatchStream interface {
	Stream
	// NextBatch fills dst with up to len(dst) items and returns how many
	// were produced; 0 means the stream is exhausted (given len(dst) > 0).
	NextBatch(dst []uint64) int
}

// ForEachBatch drains s through fn in batches of at most len(buf) items,
// using the stream's native NextBatch when it has one. The batch passed to
// fn aliases buf and is only valid until fn returns. Panics if buf is
// empty.
func ForEachBatch(s Stream, buf []uint64, fn func(batch []uint64)) {
	if len(buf) == 0 {
		panic("stream: ForEachBatch with empty buffer")
	}
	if bs, ok := s.(BatchStream); ok {
		for {
			n := bs.NextBatch(buf)
			if n == 0 {
				return
			}
			fn(buf[:n])
		}
	}
	for {
		n := 0
		for n < len(buf) {
			item, ok := s.Next()
			if !ok {
				break
			}
			buf[n] = item
			n++
		}
		if n == 0 {
			return
		}
		fn(buf[:n])
	}
}

// Distinct is a stream of exactly n distinct items, each appearing once.
// Item identities are scrambled mixes of a per-stream base, so two streams
// with different seeds are disjoint with overwhelming probability.
type Distinct struct {
	n    int
	i    int
	base uint64
}

// NewDistinct returns a stream of n distinct items derived from seed.
// It panics if n < 0.
func NewDistinct(n int, seed uint64) *Distinct {
	if n < 0 {
		panic(fmt.Sprintf("stream: negative cardinality %d", n))
	}
	return &Distinct{n: n, base: xrand.Mix64(seed) << 24}
}

// Next implements Stream.
func (d *Distinct) Next() (uint64, bool) {
	if d.i >= d.n {
		return 0, false
	}
	// Mix64 is bijective, so base+i are n distinct inputs and therefore n
	// distinct items.
	item := xrand.Mix64(d.base + uint64(d.i))
	d.i++
	return item, true
}

// NextBatch implements BatchStream: the whole chunk is generated in one
// mixing loop with no per-item dispatch.
func (d *Distinct) NextBatch(dst []uint64) int {
	n := d.n - d.i
	if n <= 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	base := d.base + uint64(d.i)
	for k := range dst[:n] {
		dst[k] = xrand.Mix64(base + uint64(k))
	}
	d.i += n
	return n
}

// Distinct implements Stream.
func (d *Distinct) Distinct() int { return d.n }

// Reset rewinds the stream to its beginning.
func (d *Distinct) Reset() { d.i = 0 }

// Duplicated replays a population of n distinct items for a total of
// length occurrences. The first n emissions cover every distinct item once
// (guaranteeing the ground truth); the remaining length−n are duplicates
// chosen by the popularity model.
type Duplicated struct {
	items  []uint64
	length int
	i      int
	r      *xrand.Rand
	pick   func() uint64
}

// DupModel selects how duplicate occurrences are distributed across the
// population.
type DupModel int

const (
	// DupUniform picks duplicate occurrences uniformly across items.
	DupUniform DupModel = iota
	// DupZipf picks duplicates with Zipf(1.1) popularity — a few heavy
	// items dominate, as in network flow traffic.
	DupZipf
)

// NewDuplicated returns a stream of length occurrences covering exactly n
// distinct items (length ≥ n required) with duplicates drawn per model.
func NewDuplicated(n, length int, model DupModel, seed uint64) *Duplicated {
	if n < 1 || length < n {
		panic(fmt.Sprintf("stream: invalid duplicated stream n=%d length=%d", n, length))
	}
	r := xrand.New(seed)
	base := xrand.Mix64(seed^0xd1b54a32d192ed03) << 24
	items := make([]uint64, n)
	for i := range items {
		items[i] = xrand.Mix64(base + uint64(i))
	}
	d := &Duplicated{items: items, length: length, r: r}
	switch model {
	case DupUniform:
		d.pick = func() uint64 { return items[r.Intn(n)] }
	case DupZipf:
		z := xrand.NewZipf(r, 1.1, uint64(n))
		d.pick = func() uint64 { return items[z.Next()] }
	default:
		panic(fmt.Sprintf("stream: unknown duplication model %d", model))
	}
	return d
}

// Next implements Stream.
func (d *Duplicated) Next() (uint64, bool) {
	if d.i >= d.length {
		return 0, false
	}
	var item uint64
	if d.i < len(d.items) {
		item = d.items[d.i] // cover each distinct item once, first
	} else {
		item = d.pick()
	}
	d.i++
	return item, true
}

// NextBatch implements BatchStream.
func (d *Duplicated) NextBatch(dst []uint64) int {
	n := 0
	for n < len(dst) && d.i < d.length {
		if d.i < len(d.items) {
			dst[n] = d.items[d.i] // cover each distinct item once, first
		} else {
			dst[n] = d.pick()
		}
		d.i++
		n++
	}
	return n
}

// Distinct implements Stream.
func (d *Duplicated) Distinct() int { return len(d.items) }

// Interleaved shuffles a Duplicated stream's emission order so duplicates
// and first occurrences interleave arbitrarily (the harder, realistic
// case). It materializes the stream once at construction.
type Interleaved struct {
	items []uint64
	n     int
	i     int
}

// NewInterleaved builds a fully shuffled stream with the same contents as
// NewDuplicated(n, length, model, seed).
func NewInterleaved(n, length int, model DupModel, seed uint64) *Interleaved {
	src := NewDuplicated(n, length, model, seed)
	buf := make([]uint64, 0, length)
	ForEach(src, func(x uint64) { buf = append(buf, x) })
	r := xrand.New(seed ^ 0x8e9d5aab)
	r.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
	return &Interleaved{items: buf, n: n}
}

// Next implements Stream.
func (s *Interleaved) Next() (uint64, bool) {
	if s.i >= len(s.items) {
		return 0, false
	}
	item := s.items[s.i]
	s.i++
	return item, true
}

// NextBatch implements BatchStream: a straight copy out of the
// materialized stream.
func (s *Interleaved) NextBatch(dst []uint64) int {
	n := copy(dst, s.items[s.i:])
	s.i += n
	return n
}

// Distinct implements Stream.
func (s *Interleaved) Distinct() int { return s.n }

// Words yields a stream of synthetic "words": Zipf-distributed tokens from
// a vocabulary of v words, emulating natural-language token frequencies
// (the book example of the paper's Section 2.1). The exact distinct count
// is the number of vocabulary words actually emitted.
type Words struct {
	vocab   int
	z       *xrand.Zipf
	length  int
	i       int
	seen    map[int]bool
	prefix  string
	current string
}

// NewWords returns a word stream of the given length over a vocabulary of
// vocab words, Zipf exponent 1.05 (typical for text). The seed determines
// both the vocabulary identity and the draw sequence.
func NewWords(vocab, length int, seed uint64) *Words {
	return NewWordsShared(vocab, length, seed, seed)
}

// NewWordsShared returns a word stream whose vocabulary identity comes
// from vocabSeed while the token draws come from drawSeed: streams sharing
// vocabSeed draw overlapping word sets (e.g. two volumes of one book),
// with the overlap governed by Zipf coverage rather than being all or
// nothing.
func NewWordsShared(vocab, length int, vocabSeed, drawSeed uint64) *Words {
	if vocab < 1 || length < 0 {
		panic(fmt.Sprintf("stream: invalid word stream vocab=%d length=%d", vocab, length))
	}
	r := xrand.New(drawSeed)
	return &Words{
		vocab:  vocab,
		z:      xrand.NewZipf(r, 1.05, uint64(vocab)),
		length: length,
		seen:   make(map[int]bool),
		prefix: fmt.Sprintf("w%x-", xrand.Mix64(vocabSeed)&0xffff),
	}
}

// NextWord returns the next word and whether one was available.
func (w *Words) NextWord() (string, bool) {
	if w.i >= w.length {
		return "", false
	}
	k := int(w.z.Next())
	w.seen[k] = true
	w.i++
	w.current = fmt.Sprintf("%s%d", w.prefix, k)
	return w.current, true
}

// DistinctSoFar returns the exact number of distinct words emitted so far.
func (w *Words) DistinctSoFar() int { return len(w.seen) }
