package stream

import (
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// Keyed record streams: the spread-estimation workload (Estan et al.
// 2006; the paper's Section 7 per-link flow counting) is a stream of
// (key, item) records — one tiny distinct counter per key — rather than
// one flat stream. KeyedStream is that shape; KeyedSpread generates it
// with exact per-key ground truth, lazily, for key populations in the
// millions.

// KeyedStream yields a finite sequence of (key, item) records.
type KeyedStream interface {
	// NextRecord returns the next record and whether one was available.
	NextRecord() (key, item uint64, ok bool)
	// Keys returns the number of distinct keys the full stream contains.
	Keys() int
}

// KeyedBatchStream is optionally implemented by keyed streams that can
// fill caller buffers in one call. NextRecordBatch must yield exactly the
// records NextRecord would, in order.
type KeyedBatchStream interface {
	KeyedStream
	// NextRecordBatch fills keys and items (equal-length buffers) with up
	// to len(keys) records and returns how many were produced; 0 means
	// the stream is exhausted (given len(keys) > 0).
	NextRecordBatch(keys, items []uint64) int
}

// ForEachRecord drains s, invoking fn on every record.
func ForEachRecord(s KeyedStream, fn func(key, item uint64)) {
	for {
		key, item, ok := s.NextRecord()
		if !ok {
			return
		}
		fn(key, item)
	}
}

// ForEachRecordBatch drains s through fn in batches of at most len(keys)
// records, using the stream's native batch path when it has one. The
// slices passed to fn alias the buffers and are only valid until fn
// returns. Panics if the buffers are empty or of different lengths.
func ForEachRecordBatch(s KeyedStream, keys, items []uint64, fn func(keys, items []uint64)) {
	if len(keys) == 0 || len(keys) != len(items) {
		panic(fmt.Sprintf("stream: ForEachRecordBatch with buffer lengths %d, %d", len(keys), len(items)))
	}
	if bs, ok := s.(KeyedBatchStream); ok {
		for {
			n := bs.NextRecordBatch(keys, items)
			if n == 0 {
				return
			}
			fn(keys[:n], items[:n])
		}
	}
	for {
		n := 0
		for n < len(keys) {
			key, item, ok := s.NextRecord()
			if !ok {
				break
			}
			keys[n], items[n] = key, item
			n++
		}
		if n == 0 {
			return
		}
		fn(keys[:n], items[:n])
	}
}

// KeyedSpread is a deterministic keyed record stream with exact per-key
// ground truth: key k carries exactly Spread(k) distinct items, plus
// duplicate records up to a configurable duplication factor. Records
// interleave across keys — each emission round sweeps every key that
// still has records left (largest spreads last the longest), so a
// counter store sees the adversarial pattern of consecutive records
// almost never sharing a key, as in real exporter traffic.
//
// Generation is lazy and O(1) per record after an O(K log K) setup, so
// million-key workloads need no materialized record buffer.
type KeyedSpread struct {
	spreads []int // per original key index: distinct items (ground truth)
	recs    []int // per original key index: total records incl. duplicates
	keyBase uint64
	dupSalt uint64

	// byRecs orders key indexes by descending record count, so round r
	// touches exactly the prefix with recs > r.
	byRecs []int32
	total  int

	// Cursor: emitting round `round`, position `pos` within the active
	// prefix of byRecs (length `active`).
	round  int
	pos    int
	active int
}

// NewKeyedSpread returns a keyed stream over len(spreads) keys where key
// k has exactly spreads[k] distinct items, replicated to about
// spreads[k]·dup records (dup ≥ 1; duplicates are uniform over the key's
// items). Keys with spread 0 emit nothing. Panics on negative spreads or
// dup < 1.
func NewKeyedSpread(spreads []int, dup float64, seed uint64) *KeyedSpread {
	if dup < 1 {
		panic(fmt.Sprintf("stream: duplication factor %v < 1", dup))
	}
	ks := &KeyedSpread{
		spreads: spreads,
		recs:    make([]int, len(spreads)),
		keyBase: xrand.Mix64(seed^0x5eed*2654435761) << 20,
		dupSalt: xrand.Mix64(seed ^ 0xd0b1e5),
	}
	for k, s := range spreads {
		if s < 0 {
			panic(fmt.Sprintf("stream: negative spread %d for key %d", s, k))
		}
		if s == 0 {
			continue
		}
		r := int(float64(s)*dup + 0.5)
		if r < s {
			r = s
		}
		ks.recs[k] = r
		ks.total += r
	}
	ks.byRecs = make([]int32, 0, len(spreads))
	for k := range spreads {
		if ks.recs[k] > 0 {
			ks.byRecs = append(ks.byRecs, int32(k))
		}
	}
	sort.Slice(ks.byRecs, func(i, j int) bool {
		a, b := ks.byRecs[i], ks.byRecs[j]
		if ks.recs[a] != ks.recs[b] {
			return ks.recs[a] > ks.recs[b]
		}
		return a < b
	})
	ks.Reset()
	return ks
}

// Keys implements KeyedStream: the number of keys with at least one
// record.
func (ks *KeyedSpread) Keys() int { return len(ks.byRecs) }

// Records returns the total record count (distinct items + duplicates).
func (ks *KeyedSpread) Records() int { return ks.total }

// Key returns the stream identity of original key index k (stable across
// Reset; distinct per index).
func (ks *KeyedSpread) Key(k int) uint64 {
	// Mix64 is bijective, so distinct indexes yield distinct identities.
	return xrand.Mix64(ks.keyBase + uint64(k))
}

// Spread returns the exact distinct-item count of key index k — the
// ground truth for error measurement.
func (ks *KeyedSpread) Spread(k int) int { return ks.spreads[k] }

// item returns key index k's j-th distinct item (j < spreads[k]).
func (ks *KeyedSpread) item(k int, j int) uint64 {
	return xrand.Mix64(ks.Key(k)<<1 + uint64(j))
}

// Reset rewinds the stream to its beginning.
func (ks *KeyedSpread) Reset() {
	ks.round, ks.pos = 0, 0
	ks.active = len(ks.byRecs)
	ks.trimActive()
}

// trimActive shrinks the active prefix to the keys still emitting in the
// current round (byRecs is sorted by descending record count).
func (ks *KeyedSpread) trimActive() {
	for ks.active > 0 && ks.recs[ks.byRecs[ks.active-1]] <= ks.round {
		ks.active--
	}
}

// NextRecord implements KeyedStream.
func (ks *KeyedSpread) NextRecord() (key, item uint64, ok bool) {
	if ks.pos >= ks.active {
		if ks.active == 0 {
			return 0, 0, false
		}
		ks.round++
		ks.pos = 0
		ks.trimActive()
		if ks.active == 0 {
			return 0, 0, false
		}
	}
	k := int(ks.byRecs[ks.pos])
	ks.pos++
	s := ks.spreads[k]
	j := ks.round
	if j >= s {
		// Duplicate rounds replay a pseudo-random earlier item.
		j = int(xrand.Mix64(ks.Key(k)^(ks.dupSalt+uint64(ks.round))) % uint64(s))
	}
	return ks.Key(k), ks.item(k, j), true
}

// NextRecordBatch implements KeyedBatchStream: whole rounds are emitted
// with no per-record interface dispatch. Panics if the buffers' lengths
// differ.
func (ks *KeyedSpread) NextRecordBatch(keys, items []uint64) int {
	if len(keys) != len(items) {
		panic(fmt.Sprintf("stream: NextRecordBatch with buffer lengths %d, %d", len(keys), len(items)))
	}
	n := 0
	for n < len(keys) {
		if ks.pos >= ks.active {
			if ks.active == 0 {
				break
			}
			ks.round++
			ks.pos = 0
			ks.trimActive()
			continue
		}
		span := ks.active - ks.pos
		if span > len(keys)-n {
			span = len(keys) - n
		}
		for i := 0; i < span; i++ {
			k := int(ks.byRecs[ks.pos+i])
			s := ks.spreads[k]
			j := ks.round
			if j >= s {
				j = int(xrand.Mix64(ks.Key(k)^(ks.dupSalt+uint64(ks.round))) % uint64(s))
			}
			keys[n+i] = ks.Key(k)
			items[n+i] = ks.item(k, j)
		}
		ks.pos += span
		n += span
	}
	return n
}

var (
	_ KeyedStream      = (*KeyedSpread)(nil)
	_ KeyedBatchStream = (*KeyedSpread)(nil)
)
