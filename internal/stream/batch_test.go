package stream

import "testing"

// drainBatch collects a stream through ForEachBatch with the given buffer
// size.
func drainBatch(s Stream, bufLen int) []uint64 {
	var out []uint64
	ForEachBatch(s, make([]uint64, bufLen), func(b []uint64) {
		out = append(out, b...)
	})
	return out
}

// drainItems collects a stream through per-item Next.
func drainItems(s Stream) []uint64 {
	var out []uint64
	ForEach(s, func(x uint64) { out = append(out, x) })
	return out
}

func TestNextBatchMatchesNext(t *testing.T) {
	mk := map[string]func() Stream{
		"distinct":    func() Stream { return NewDistinct(1000, 7) },
		"duplicated":  func() Stream { return NewDuplicated(300, 1000, DupZipf, 7) },
		"interleaved": func() Stream { return NewInterleaved(300, 1000, DupUniform, 7) },
		"empty":       func() Stream { return NewDistinct(0, 7) },
	}
	for name, f := range mk {
		want := drainItems(f())
		for _, bufLen := range []int{1, 7, 256, 4096} {
			got := drainBatch(f(), bufLen)
			if len(got) != len(want) {
				t.Fatalf("%s bufLen=%d: batch drained %d items, per-item %d", name, bufLen, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s bufLen=%d: item %d = %#x, want %#x", name, bufLen, i, got[i], want[i])
				}
			}
		}
	}
}

// fallbackStream deliberately lacks NextBatch to exercise ForEachBatch's
// per-item fallback.
type fallbackStream struct{ d *Distinct }

func (f *fallbackStream) Next() (uint64, bool) { return f.d.Next() }
func (f *fallbackStream) Distinct() int        { return f.d.Distinct() }

func TestForEachBatchFallback(t *testing.T) {
	want := drainItems(NewDistinct(100, 3))
	got := drainBatch(&fallbackStream{NewDistinct(100, 3)}, 33)
	if len(got) != len(want) {
		t.Fatalf("fallback drained %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fallback item %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestForEachBatchEmptyBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty buffer")
		}
	}()
	ForEachBatch(NewDistinct(1, 1), nil, func([]uint64) {})
}

func BenchmarkDistinctNext(b *testing.B) {
	s := NewDistinct(1<<30, 1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		x, _ := s.Next()
		sink ^= x
	}
	_ = sink
}

func BenchmarkDistinctNextBatch(b *testing.B) {
	s := NewDistinct(1<<30, 1)
	buf := make([]uint64, 1024)
	for rem := b.N; rem > 0; {
		n := len(buf)
		if rem < n {
			n = rem
		}
		s.NextBatch(buf[:n])
		rem -= n
	}
}
