package stream

import (
	"testing"
	"testing/quick"
)

func countDistinct(s Stream) int {
	seen := make(map[uint64]bool)
	ForEach(s, func(x uint64) { seen[x] = true })
	return len(seen)
}

func TestDistinctExactCount(t *testing.T) {
	for _, n := range []int{0, 1, 100, 10000} {
		s := NewDistinct(n, 42)
		if got := countDistinct(s); got != n {
			t.Errorf("NewDistinct(%d): %d distinct items", n, got)
		}
		if s.Distinct() != n {
			t.Errorf("Distinct() = %d, want %d", s.Distinct(), n)
		}
	}
}

func TestDistinctReset(t *testing.T) {
	s := NewDistinct(10, 1)
	first := make([]uint64, 0, 10)
	ForEach(s, func(x uint64) { first = append(first, x) })
	s.Reset()
	i := 0
	ForEach(s, func(x uint64) {
		if x != first[i] {
			t.Fatalf("replay diverged at %d", i)
		}
		i++
	})
	if i != 10 {
		t.Fatalf("replay length %d, want 10", i)
	}
}

func TestDistinctSeedsDisjoint(t *testing.T) {
	a := make(map[uint64]bool)
	ForEach(NewDistinct(5000, 1), func(x uint64) { a[x] = true })
	overlap := 0
	ForEach(NewDistinct(5000, 2), func(x uint64) {
		if a[x] {
			overlap++
		}
	})
	if overlap > 0 {
		t.Errorf("streams with different seeds share %d items", overlap)
	}
}

func TestDuplicatedGroundTruth(t *testing.T) {
	for _, model := range []DupModel{DupUniform, DupZipf} {
		s := NewDuplicated(500, 5000, model, 7)
		total := 0
		seen := make(map[uint64]bool)
		ForEach(s, func(x uint64) { seen[x] = true; total++ })
		if len(seen) != 500 {
			t.Errorf("model %d: %d distinct, want 500", model, len(seen))
		}
		if total != 5000 {
			t.Errorf("model %d: length %d, want 5000", model, total)
		}
		if s.Distinct() != 500 {
			t.Errorf("model %d: Distinct() = %d", model, s.Distinct())
		}
	}
}

func TestZipfDuplicationIsSkewed(t *testing.T) {
	s := NewDuplicated(1000, 50000, DupZipf, 11)
	counts := make(map[uint64]int)
	ForEach(s, func(x uint64) { counts[x]++ })
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Under Zipf(1.1) the most popular of 1000 items should absorb far
	// more than the uniform share (49 duplicates + 1).
	if max < 200 {
		t.Errorf("max multiplicity %d; expected heavy skew (> 200)", max)
	}
}

func TestInterleavedSameContents(t *testing.T) {
	f := func(seed uint64) bool {
		ref := make(map[uint64]int)
		ForEach(NewDuplicated(50, 300, DupUniform, seed), func(x uint64) { ref[x]++ })
		got := make(map[uint64]int)
		il := NewInterleaved(50, 300, DupUniform, seed)
		ForEach(il, func(x uint64) { got[x]++ })
		if il.Distinct() != 50 || len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWordsStream(t *testing.T) {
	w := NewWords(1000, 20000, 3)
	n := 0
	for {
		word, ok := w.NextWord()
		if !ok {
			break
		}
		if word == "" {
			t.Fatal("empty word emitted")
		}
		n++
	}
	if n != 20000 {
		t.Errorf("emitted %d words, want 20000", n)
	}
	d := w.DistinctSoFar()
	if d < 100 || d > 1000 {
		t.Errorf("distinct words = %d, want within (100, 1000]", d)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative distinct":   func() { NewDistinct(-1, 0) },
		"length < n":          func() { NewDuplicated(10, 5, DupUniform, 0) },
		"zero population":     func() { NewDuplicated(0, 5, DupUniform, 0) },
		"bad model":           func() { NewDuplicated(5, 10, DupModel(99), 0) },
		"words zero vocab":    func() { NewWords(0, 10, 0) },
		"words negative text": func() { NewWords(10, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
