package stream

import (
	"testing"

	"repro/internal/xrand"
)

func TestKeyedSpreadGroundTruth(t *testing.T) {
	spreads := []int{5, 0, 1, 17, 3, 17, 100}
	ks := NewKeyedSpread(spreads, 2.5, 42)

	wantKeys := 0
	wantRecs := 0
	for _, s := range spreads {
		if s > 0 {
			wantKeys++
			wantRecs += int(float64(s)*2.5 + 0.5)
		}
	}
	if ks.Keys() != wantKeys {
		t.Errorf("Keys = %d, want %d", ks.Keys(), wantKeys)
	}
	if ks.Records() != wantRecs {
		t.Errorf("Records = %d, want %d", ks.Records(), wantRecs)
	}

	// Drain per-record; per-key distinct items must equal the spread
	// exactly, and total records must match.
	perKey := map[uint64]map[uint64]bool{}
	recs := 0
	ForEachRecord(ks, func(key, item uint64) {
		if perKey[key] == nil {
			perKey[key] = map[uint64]bool{}
		}
		perKey[key][item] = true
		recs++
	})
	if recs != wantRecs {
		t.Errorf("drained %d records, want %d", recs, wantRecs)
	}
	if len(perKey) != wantKeys {
		t.Errorf("drained %d keys, want %d", len(perKey), wantKeys)
	}
	for k, s := range spreads {
		if s == 0 {
			if perKey[ks.Key(k)] != nil {
				t.Errorf("key %d (spread 0) emitted records", k)
			}
			continue
		}
		if got := len(perKey[ks.Key(k)]); got != s {
			t.Errorf("key %d: %d distinct items, want %d", k, got, s)
		}
		if ks.Spread(k) != s {
			t.Errorf("Spread(%d) = %d, want %d", k, ks.Spread(k), s)
		}
	}

	// Exhausted stream stays exhausted.
	if _, _, ok := ks.NextRecord(); ok {
		t.Error("record after exhaustion")
	}
}

func TestKeyedSpreadBatchMatchesPerRecord(t *testing.T) {
	spreads := make([]int, 300)
	r := xrand.New(9)
	for i := range spreads {
		spreads[i] = r.Intn(20) // including zeros
	}
	one := NewKeyedSpread(spreads, 1.8, 7)
	bat := NewKeyedSpread(spreads, 1.8, 7)

	var wantK, wantI []uint64
	ForEachRecord(one, func(key, item uint64) {
		wantK = append(wantK, key)
		wantI = append(wantI, item)
	})
	var gotK, gotI []uint64
	kbuf, ibuf := make([]uint64, 97), make([]uint64, 97)
	ForEachRecordBatch(bat, kbuf, ibuf, func(keys, items []uint64) {
		gotK = append(gotK, keys...)
		gotI = append(gotI, items...)
	})
	if len(gotK) != len(wantK) {
		t.Fatalf("batch drained %d records, per-record %d", len(gotK), len(wantK))
	}
	for i := range wantK {
		if gotK[i] != wantK[i] || gotI[i] != wantI[i] {
			t.Fatalf("record %d differs: (%x,%x) vs (%x,%x)", i, gotK[i], gotI[i], wantK[i], wantI[i])
		}
	}

	// Reset replays identically.
	bat.Reset()
	n := bat.NextRecordBatch(kbuf, ibuf)
	for i := 0; i < n; i++ {
		if kbuf[i] != wantK[i] || ibuf[i] != wantI[i] {
			t.Fatalf("after Reset, record %d differs", i)
		}
	}
}

func TestKeyedSpreadInterleaves(t *testing.T) {
	// Equal spreads: every round sweeps all keys, so consecutive records
	// never share a key until the stream is nearly done.
	ks := NewKeyedSpread([]int{4, 4, 4}, 1, 1)
	var keys []uint64
	ForEachRecord(ks, func(key, _ uint64) { keys = append(keys, key) })
	if len(keys) != 12 {
		t.Fatalf("%d records", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			t.Errorf("records %d and %d share key %x (no interleaving)", i-1, i, keys[i])
		}
	}
}

func TestKeyedSpreadDeterminismAndSeeds(t *testing.T) {
	spreads := []int{3, 9, 27}
	a := NewKeyedSpread(spreads, 2, 5)
	b := NewKeyedSpread(spreads, 2, 5)
	c := NewKeyedSpread(spreads, 2, 6)
	ak, _, _ := a.NextRecord()
	bk, _, _ := b.NextRecord()
	ck, _, _ := c.NextRecord()
	if ak != bk {
		t.Error("same seed produced different streams")
	}
	if ak == ck {
		t.Error("different seeds share key identities")
	}
}

func TestKeyedSpreadPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dup<1":           func() { NewKeyedSpread([]int{1}, 0.5, 1) },
		"negative spread": func() { NewKeyedSpread([]int{-1}, 1, 1) },
		"batch mismatch": func() {
			NewKeyedSpread([]int{1}, 1, 1).NextRecordBatch(make([]uint64, 2), make([]uint64, 3))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKeyedSpreadLargeSkew(t *testing.T) {
	// One heavy key among many light ones: total work must stay linear in
	// the record count (the sorted-prefix cursor skips finished keys).
	spreads := make([]int, 50_000)
	for i := range spreads {
		spreads[i] = 1
	}
	spreads[0] = 10_000
	ks := NewKeyedSpread(spreads, 1, 3)
	n := 0
	kbuf, ibuf := make([]uint64, 4096), make([]uint64, 4096)
	ForEachRecordBatch(ks, kbuf, ibuf, func(keys, _ []uint64) { n += len(keys) })
	if want := 50_000 - 1 + 10_000; n != want {
		t.Errorf("drained %d records, want %d", n, want)
	}
}
