// Package rules is the standing-query engine: continuous queries
// evaluated against a live keyed Store, turning the counting service
// into a monitor. The paper's motivating workload (Section 7, online
// per-link monitoring) estimates per-source spread in order to *detect*
// things — port scanners and superspreaders are exactly keys whose
// distinct-count crosses a threshold or jumps between reporting
// intervals — and a rule is that detection criterion kept resident:
//
//   - threshold: watch one key, fire when its estimate crosses T
//     (with hysteresis and cooldown, because a sketch estimate is noisy
//     around T and a naive comparator would flap);
//   - prefix: scan every key, or every key matching a prefix, for
//     estimates above T — the superspreader / port-scan detector;
//   - movers: rank the largest estimate increases between consecutive
//     evaluation ticks (per-interval change detection), optionally over
//     a sliding window via EstimateWindow.
//
// Evaluation is incremental: each tick rescans only the stripes the
// Store dirtied since the previous tick (Store.ForEachDirty, the same
// per-stripe generation protocol incremental checkpoints use), so a
// quiet store costs nothing to watch and a busy one costs in proportion
// to its write footprint. Single-key threshold rules additionally get an
// on-ingest hot path (Engine.ObserveIngest) so a spike fires within the
// ingest call that caused it rather than a tick later.
package rules

import (
	"errors"
	"fmt"
	"time"

	sbitmap "repro"
)

// Rule types.
const (
	// TypeThreshold watches a single key: fire when estimate(key) > T.
	TypeThreshold = "threshold"
	// TypePrefix scans all keys (or keys matching Prefix): fire per key
	// whose estimate exceeds T — the superspreader detector.
	TypePrefix = "prefix"
	// TypeMovers ranks the top-K largest estimate increases between
	// consecutive evaluation ticks.
	TypeMovers = "movers"
)

// Alert states.
const (
	// StateFiring marks a threshold crossing (and every movers hit —
	// movers alerts are one-shot and never resolve).
	StateFiring = "firing"
	// StateResolved marks a firing key whose estimate fell back below
	// the hysteresis band (threshold and prefix rules only).
	StateResolved = "resolved"
)

// Defaults.
const (
	// DefaultHysteresis is the resolve band when a rule does not set
	// one: a firing key resolves only when its estimate falls below
	// T × (1 − 0.1). Distinct-count estimates are monotone per key in
	// steady state but windowed estimates and evictions move both ways;
	// the band keeps ±ε estimator noise around T from flapping
	// fire/resolve pairs into the alert stream.
	DefaultHysteresis = 0.1
	// DefaultRingSize is the alert history ring capacity when the
	// engine's Config does not set one.
	DefaultRingSize = 1024
	// maxIDLen bounds rule IDs; they appear in URLs and alert records.
	maxIDLen = 128
)

// Spec is the JSON rule specification accepted by PUT /v1/rules.
type Spec struct {
	// ID names the rule; it keys updates and deletes and stamps every
	// alert the rule emits. Required, at most 128 bytes.
	ID string `json:"id"`
	// Type is one of "threshold", "prefix", "movers".
	Type string `json:"type"`
	// Key is the single key a threshold rule watches. Required for
	// threshold rules, invalid elsewhere.
	Key string `json:"key,omitempty"`
	// Prefix restricts prefix and movers rules to keys with this
	// prefix; empty scans every key. Invalid for threshold rules.
	Prefix string `json:"prefix,omitempty"`
	// Threshold is T: fire when estimate > T. Required (> 0) for
	// threshold and prefix rules, invalid for movers.
	Threshold float64 `json:"threshold,omitempty"`
	// Hysteresis is the resolve band as a fraction of T: a firing key
	// resolves when its estimate falls below T × (1 − Hysteresis).
	// In [0, 1); omitted means DefaultHysteresis, an explicit 0
	// disables the band.
	Hysteresis *float64 `json:"hysteresis,omitempty"`
	// Cooldown is the minimum time between consecutive firings of the
	// same (rule, key), as a Go duration string ("30s"). It caps alert
	// volume per key; empty means no cooldown.
	Cooldown string `json:"cooldown,omitempty"`
	// Window evaluates the rule over the trailing sliding window of
	// this span (a Go duration string) via EstimateWindow instead of
	// the all-time estimate. Requires a windowed store spec; the span
	// must not exceed its retention.
	Window string `json:"window,omitempty"`
	// K is how many movers a movers rule reports per tick. Required
	// (>= 1) for movers, invalid elsewhere.
	K int `json:"k,omitempty"`
	// MinDelta filters movers: only estimate increases of at least this
	// much rank. Movers only; 0 means any positive increase.
	MinDelta float64 `json:"min_delta,omitempty"`
}

// BadRuleError reports a rule spec that failed validation; the server
// maps it to HTTP 400 with code "bad_rule".
type BadRuleError struct {
	Field  string // the offending Spec field, lower-case JSON name
	Reason string
}

func (e *BadRuleError) Error() string {
	return fmt.Sprintf("rules: bad rule: %s: %s", e.Field, e.Reason)
}

func badRule(field, format string, args ...any) error {
	return &BadRuleError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Alert is one entry in the alert history: a (rule, key) state
// transition with the estimate that caused it.
type Alert struct {
	// ID is monotone over the engine's lifetime (it survives restarts
	// via State); SSE consumers use it to dedup replays.
	ID   int64  `json:"id"`
	Rule string `json:"rule"`
	Key  string `json:"key"`
	// State is StateFiring or StateResolved.
	State string `json:"state"`
	// Estimate is the value that drove the transition (windowed when
	// the rule has a Window).
	Estimate  float64 `json:"estimate"`
	Threshold float64 `json:"threshold,omitempty"`
	// Delta is the between-tick estimate increase (movers alerts only).
	Delta    float64 `json:"delta,omitempty"`
	UnixNano int64   `json:"unix_nano"`
}

// State is the engine's restartable state, embedded in the checkpoint
// manifest: the installed rule specs with their per-key firing state
// (so a key still above threshold does not re-fire spuriously after
// recovery), the alert history ring oldest-first, and the alert ID
// cursor. Movers baselines are deliberately not persisted — they are
// per-tick deltas; after restart the first tick re-baselines silently.
type State struct {
	Rules       []RuleState `json:"rules,omitempty"`
	Alerts      []Alert     `json:"alerts,omitempty"`
	NextAlertID int64       `json:"next_alert_id,omitempty"`
}

// RuleState is one installed rule plus its firing keys.
type RuleState struct {
	Spec   Spec        `json:"spec"`
	Firing []KeyFiring `json:"firing,omitempty"`
}

// KeyFiring is one currently-firing (or cooling-down) key of a rule.
type KeyFiring struct {
	Key               string `json:"key"`
	Firing            bool   `json:"firing"`
	LastFiredUnixNano int64  `json:"last_fired_unix_nano,omitempty"`
}

// rule is a compiled Spec: durations parsed, defaults resolved, plus the
// engine's per-key runtime state.
type rule struct {
	spec       Spec
	threshold  float64
	hysteresis float64
	cooldown   time.Duration
	window     time.Duration // 0 = all-time estimate
	k          int
	minDelta   float64
	prefix     string

	// keys tracks per-key firing/cooldown state. A threshold rule holds
	// exactly its watched key forever; prefix and movers rules hold
	// only keys that have fired and drop them once resolved and out of
	// cooldown.
	keys map[string]*keyState
	// prev is a movers rule's baseline: each tracked key's value at the
	// previous tick. nil for other types.
	prev map[string]float64
	// baselined is false until a movers rule's first scan has seeded
	// prev; that scan emits nothing (otherwise installing the rule over
	// an already-populated store would report every key as a mover).
	baselined bool
}

type keyState struct {
	firing    bool
	lastFired int64 // unix nanos of the last firing transition
}

// compile validates spec against the store's Spec and returns the
// runtime rule. All validation failures are *BadRuleError except a
// windowed rule on an unwindowed store, which wraps
// sbitmap.ErrNotWindowed so the server can answer with the same typed
// window_not_configured error the query paths use.
func compile(spec Spec, store sbitmap.Spec) (*rule, error) {
	if spec.ID == "" {
		return nil, badRule("id", "required")
	}
	if len(spec.ID) > maxIDLen {
		return nil, badRule("id", "longer than %d bytes", maxIDLen)
	}
	r := &rule{
		spec:       spec,
		threshold:  spec.Threshold,
		hysteresis: DefaultHysteresis,
		k:          spec.K,
		minDelta:   spec.MinDelta,
		prefix:     spec.Prefix,
		keys:       make(map[string]*keyState),
	}
	if spec.Hysteresis != nil {
		h := *spec.Hysteresis
		if h < 0 || h >= 1 {
			return nil, badRule("hysteresis", "%v outside [0, 1)", h)
		}
		r.hysteresis = h
	}
	if spec.Cooldown != "" {
		d, err := time.ParseDuration(spec.Cooldown)
		if err != nil || d < 0 {
			return nil, badRule("cooldown", "%q is not a non-negative duration", spec.Cooldown)
		}
		r.cooldown = d
	}
	if spec.Window != "" {
		d, err := time.ParseDuration(spec.Window)
		if err != nil || d <= 0 {
			return nil, badRule("window", "%q is not a positive duration", spec.Window)
		}
		if !store.Windowed() {
			return nil, fmt.Errorf("rules: rule %q has window %q but %w", spec.ID, spec.Window, sbitmap.ErrNotWindowed)
		}
		if ret := store.Retention(); d > ret {
			return nil, badRule("window", "%s exceeds the store's retention %s", d, ret)
		}
		r.window = d
	}
	switch spec.Type {
	case TypeThreshold:
		if spec.Key == "" {
			return nil, badRule("key", "required for threshold rules")
		}
		if spec.Prefix != "" {
			return nil, badRule("prefix", "only valid for prefix and movers rules")
		}
		if spec.Threshold <= 0 {
			return nil, badRule("threshold", "must be > 0")
		}
		if spec.K != 0 || spec.MinDelta != 0 {
			return nil, badRule("k", "k/min_delta only valid for movers rules")
		}
		// The watched key is tracked from birth so the hot path and the
		// tick never have to discover it.
		r.keys[spec.Key] = &keyState{}
	case TypePrefix:
		if spec.Key != "" {
			return nil, badRule("key", "only valid for threshold rules (use prefix)")
		}
		if spec.Threshold <= 0 {
			return nil, badRule("threshold", "must be > 0")
		}
		if spec.K != 0 || spec.MinDelta != 0 {
			return nil, badRule("k", "k/min_delta only valid for movers rules")
		}
	case TypeMovers:
		if spec.Key != "" {
			return nil, badRule("key", "only valid for threshold rules (use prefix)")
		}
		if spec.Threshold != 0 {
			return nil, badRule("threshold", "only valid for threshold and prefix rules (use min_delta)")
		}
		if spec.K < 1 {
			return nil, badRule("k", "must be >= 1")
		}
		if spec.MinDelta < 0 {
			return nil, badRule("min_delta", "must be >= 0")
		}
		r.prev = make(map[string]float64)
	case "":
		return nil, badRule("type", "required")
	default:
		return nil, badRule("type", "%q is not threshold, prefix, or movers", spec.Type)
	}
	return r, nil
}

// ErrUnknownRule reports a Get/Delete of a rule ID that is not
// installed; the server maps it to HTTP 404 with code "unknown_rule".
var ErrUnknownRule = errors.New("rules: no such rule")
