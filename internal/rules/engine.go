package rules

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	sbitmap "repro"
	"repro/internal/pstats"
)

// Config configures an Engine.
type Config struct {
	// RingSize caps the in-memory alert history ring (GET /v1/alerts);
	// overflow drops the oldest alerts. 0 means DefaultRingSize.
	RingSize int
}

// Engine evaluates standing queries against one live Store[string].
// Construct with New, install rules with Put, and drive evaluation with
// Tick (a server runs it on a timer; tests and benches call it
// directly). All methods are safe for concurrent use.
type Engine struct {
	store *sbitmap.Store[string]

	// mu guards the rule set, all per-rule state, the alert ring, and
	// the tick cursor. Ticks hold it for the whole evaluation, so rule
	// CRUD briefly queues behind a tick — by design: a rule is added or
	// removed at a tick boundary, never mid-scan.
	mu    sync.RWMutex
	rules map[string]*rule
	// hotKeys indexes single-key threshold rules by watched key for the
	// on-ingest hot path; hot mirrors len over all entries so
	// ObserveIngest can bail without a lock when no such rules exist.
	hotKeys map[string][]*rule
	hot     atomic.Int32

	// ring is the alert history: a fixed circular buffer, ring[total %
	// len] the next write slot. IDs are monotone and survive restarts.
	ring   []Alert
	total  int64
	nextID int64

	// lastCut is the store generation cut of the previous tick's dirty
	// scan; 0 forces the next tick to scan every stripe (set when a
	// scanning rule is installed, so a rule added mid-ingest sees keys
	// that stopped moving before it existed).
	lastCut uint64
	scan    []scanEntry // reusable dirty-scan buffer

	// subs are live SSE subscribers. A separate lock so publishing
	// (under mu) and subscribing never deadlock; Subscribe only ever
	// takes subMu.
	subMu  sync.Mutex
	subs   map[int]chan Alert
	subSeq int

	// Counters for /v1/stats. fired/resolved/hotEvals are pstats
	// (padded, sharded) because the hot path bumps them from concurrent
	// ingest goroutines.
	fired      pstats.Counter
	resolved   pstats.Counter
	hotEvals   pstats.Counter
	dropped    pstats.Counter
	ticks      atomic.Int64
	lastTickNs atomic.Int64
	lastKeys   atomic.Int64
}

type scanEntry struct {
	key string
	est float64
}

// New returns an engine watching store. cfg.RingSize caps alert history.
func New(store *sbitmap.Store[string], cfg Config) *Engine {
	ring := cfg.RingSize
	if ring <= 0 {
		ring = DefaultRingSize
	}
	return &Engine{
		store:   store,
		rules:   make(map[string]*rule),
		hotKeys: make(map[string][]*rule),
		ring:    make([]Alert, ring),
		nextID:  1,
		subs:    make(map[int]chan Alert),
	}
}

// Put validates spec and installs it, replacing any rule with the same
// ID. Replacing a rule resets its per-key state (firing keys, movers
// baseline): it is a new query that happens to reuse the name. Returns
// the installed spec.
func (e *Engine) Put(spec Spec) (Spec, error) {
	r, err := compile(spec, e.store.Spec())
	if err != nil {
		return Spec{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.installLocked(r)
	return spec, nil
}

func (e *Engine) installLocked(r *rule) {
	e.rules[r.spec.ID] = r
	if r.spec.Type != TypeThreshold {
		// Scanning rules must see keys that were ingested (and went
		// quiet) before the rule existed: force the next tick to a full
		// scan.
		e.lastCut = 0
	}
	e.rebuildHotLocked()
}

// Delete removes the rule; ErrUnknownRule if it is not installed.
// Firing keys disappear without resolved alerts — the query is gone,
// not answered.
func (e *Engine) Delete(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.rules[id]; !ok {
		return ErrUnknownRule
	}
	delete(e.rules, id)
	e.rebuildHotLocked()
	return nil
}

// Get returns the installed spec for id, or ErrUnknownRule.
func (e *Engine) Get(id string) (Spec, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.rules[id]
	if !ok {
		return Spec{}, ErrUnknownRule
	}
	return r.spec, nil
}

// List returns every installed spec, sorted by ID.
func (e *Engine) List() []Spec {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]Spec, 0, len(e.rules))
	for _, r := range e.rules {
		out = append(out, r.spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of installed rules.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.rules)
}

func (e *Engine) rebuildHotLocked() {
	hk := make(map[string][]*rule, len(e.rules))
	n := 0
	for _, r := range e.rules {
		if r.spec.Type == TypeThreshold {
			hk[r.spec.Key] = append(hk[r.spec.Key], r)
			n++
		}
	}
	e.hotKeys = hk
	e.hot.Store(int32(n))
}

// TickResult summarizes one evaluation pass.
type TickResult struct {
	// Scanned is how many keys the dirty-stripe scan visited (0 when no
	// prefix or movers rules are installed, or nothing was written
	// since the last tick).
	Scanned  int
	Fired    int
	Resolved int
	Elapsed  time.Duration
}

// Tick runs one evaluation pass at logical time now: re-evaluates every
// tracked key (resolving keys that fell back below the band), rescans
// the stripes dirtied since the previous tick for prefix and movers
// rules, and appends the resulting alerts to the ring and to every
// subscriber. now stamps alerts and drives cooldowns — the server
// passes time.Now(); tests pass synthetic clocks.
func (e *Engine) Tick(now time.Time) TickResult {
	start := time.Now()
	nowN := now.UnixNano()
	var res TickResult

	e.mu.Lock()
	defer e.mu.Unlock()

	// Phase 1: tracked keys. Every key with live firing/cooldown state
	// is re-read directly — this is what resolves alerts, and it works
	// even when the key's stripe was not dirtied (an idle key's
	// windowed estimate still decays as the ring rotates) or when the
	// key was evicted (a vanished key reads as 0 and resolves).
	needScan := false
	for _, r := range e.rules {
		switch r.spec.Type {
		case TypePrefix, TypeMovers:
			needScan = true
		}
		if r.spec.Type == TypeMovers {
			continue // movers state is cooldown-only, handled in the scan
		}
		for key, ks := range r.keys {
			val, _ := e.value(r, key)
			f, rv := e.transitionLocked(r, key, ks, val, nowN)
			res.Fired += f
			res.Resolved += rv
			// Prefix rules drop resolved, out-of-cooldown keys; they
			// will be rediscovered by the scan if they cross again.
			if r.spec.Type == TypePrefix && !ks.firing && nowN-ks.lastFired >= int64(r.cooldown) {
				delete(r.keys, key)
			}
		}
	}

	// Phase 2: dirty scan for scanning rules. One pass over the stripes
	// written since the last tick collects (key, estimate) pairs; rules
	// are evaluated against the collected batch afterwards, outside the
	// stripe locks, because windowed rules must call EstimateWindow
	// (a Store method — forbidden inside the ForEachDirty callback).
	if needScan {
		e.scan = e.scan[:0]
		e.lastCut = e.store.ForEachDirty(e.lastCut, func(k string, c sbitmap.Counter) bool {
			e.scan = append(e.scan, scanEntry{key: k, est: c.Estimate()})
			return true
		})
		res.Scanned = len(e.scan)

		for _, r := range e.rules {
			switch r.spec.Type {
			case TypePrefix:
				f, rv := e.scanPrefixLocked(r, nowN)
				res.Fired += f
				res.Resolved += rv
			case TypeMovers:
				res.Fired += e.scanMoversLocked(r, nowN)
			}
		}
	}

	e.ticks.Add(1)
	e.lastKeys.Store(int64(res.Scanned))
	res.Elapsed = time.Since(start)
	e.lastTickNs.Store(int64(res.Elapsed))
	return res
}

// value reads the rule's evaluation value for key: the sliding-window
// estimate when the rule has a window, the all-time estimate otherwise.
// A missing key (or a window error, impossible after compile-time
// validation) reads as (0, false).
func (e *Engine) value(r *rule, key string) (float64, bool) {
	if r.window > 0 {
		we, ok, err := e.store.EstimateWindow(key, r.window)
		if err != nil || !ok {
			return 0, false
		}
		return we.Estimate, true
	}
	return e.store.Estimate(key)
}

// transitionLocked applies one (rule, key, value) observation to the
// key's state machine and emits the resulting alert, if any.
func (e *Engine) transitionLocked(r *rule, key string, ks *keyState, val float64, nowN int64) (fired, resolved int) {
	if ks.firing {
		if val < r.threshold*(1-r.hysteresis) {
			ks.firing = false
			e.emitLocked(Alert{
				Rule: r.spec.ID, Key: key, State: StateResolved,
				Estimate: val, Threshold: r.threshold, UnixNano: nowN,
			})
			e.resolved.Add(uintptr(unsafe.Pointer(r)), 1)
			return 0, 1
		}
		return 0, 0
	}
	if val > r.threshold && nowN-ks.lastFired >= int64(r.cooldown) {
		ks.firing = true
		ks.lastFired = nowN
		e.emitLocked(Alert{
			Rule: r.spec.ID, Key: key, State: StateFiring,
			Estimate: val, Threshold: r.threshold, UnixNano: nowN,
		})
		e.fired.Add(uintptr(unsafe.Pointer(r)), 1)
		return 1, 0
	}
	return 0, 0
}

// scanPrefixLocked evaluates a prefix rule against this tick's dirty
// keys. Only keys above threshold start being tracked — the rule's
// memory stays proportional to its firing set, not the key population.
func (e *Engine) scanPrefixLocked(r *rule, nowN int64) (fired, resolved int) {
	for _, se := range e.scan {
		if r.prefix != "" && !strings.HasPrefix(se.key, r.prefix) {
			continue
		}
		val := se.est
		if r.window > 0 {
			val, _ = e.value(r, se.key)
		}
		ks, tracked := r.keys[se.key]
		if !tracked {
			if val <= r.threshold {
				continue
			}
			ks = &keyState{}
			r.keys[se.key] = ks
		}
		f, rv := e.transitionLocked(r, se.key, ks, val, nowN)
		fired += f
		resolved += rv
	}
	return fired, resolved
}

// scanMoversLocked ranks this tick's largest estimate increases. The
// first scan after install (or restore) only seeds the baseline; a key
// with no baseline thereafter is new, and its whole estimate counts as
// its delta — a source that appeared with thousands of distinct targets
// since the last tick is precisely what the rule looks for.
func (e *Engine) scanMoversLocked(r *rule, nowN int64) (fired int) {
	type mover struct {
		key   string
		val   float64
		delta float64
	}
	var cands []mover
	for _, se := range e.scan {
		if r.prefix != "" && !strings.HasPrefix(se.key, r.prefix) {
			continue
		}
		val := se.est
		if r.window > 0 {
			val, _ = e.value(r, se.key)
		}
		delta := val - r.prev[se.key]
		r.prev[se.key] = val
		if !r.baselined || delta <= 0 || delta < r.minDelta {
			continue
		}
		cands = append(cands, mover{key: se.key, val: val, delta: delta})
	}
	if !r.baselined {
		r.baselined = true
		return 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].delta != cands[j].delta {
			return cands[i].delta > cands[j].delta
		}
		return cands[i].key < cands[j].key
	})
	if len(cands) > r.k {
		cands = cands[:r.k]
	}
	for _, m := range cands {
		ks, ok := r.keys[m.key]
		if !ok {
			ks = &keyState{}
			r.keys[m.key] = ks
		}
		if ks.lastFired != 0 && nowN-ks.lastFired < int64(r.cooldown) {
			continue
		}
		ks.lastFired = nowN
		e.emitLocked(Alert{
			Rule: r.spec.ID, Key: m.key, State: StateFiring,
			Estimate: m.val, Delta: m.delta, UnixNano: nowN,
		})
		e.fired.Add(uintptr(unsafe.Pointer(r)), 1)
		fired++
	}
	// Movers keys are cooldown bookkeeping only; drop expired entries
	// so the map tracks recent movers, not history.
	for key, ks := range r.keys {
		if nowN-ks.lastFired >= int64(r.cooldown) {
			delete(r.keys, key)
		}
	}
	return fired
}

// ObserveIngest gives single-key threshold rules their on-ingest hot
// path: the server calls it with every ingested batch's keys (after the
// records are applied), and any watched key gets its rule evaluated
// immediately instead of at the next tick. Only firing transitions
// happen here — resolution needs the estimate to fall, which ingest
// never causes; ticks handle it. Returns without locking when no
// threshold rules are installed, so the common no-rules ingest path
// pays one atomic load. keys may alias a transport buffer the caller
// reuses; the engine clones anything it retains. affinity shards the
// stats counters (pass a per-request pointer, as pstats documents).
func (e *Engine) ObserveIngest(keys []string, now time.Time, affinity uintptr) {
	if e.hot.Load() == 0 {
		return
	}
	nowN := now.UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, k := range keys {
		rs, ok := e.hotKeys[k]
		if !ok {
			continue
		}
		for _, r := range rs {
			ks := r.keys[r.spec.Key] // pre-created at compile
			if ks.firing || nowN-ks.lastFired < int64(r.cooldown) {
				continue
			}
			e.hotEvals.Add(affinity, 1)
			val, ok := e.value(r, r.spec.Key)
			if !ok {
				continue
			}
			e.transitionLocked(r, r.spec.Key, ks, val, nowN)
		}
	}
}

// emitLocked stamps, records, and publishes one alert.
func (e *Engine) emitLocked(a Alert) {
	a.ID = e.nextID
	e.nextID++
	e.ring[e.total%int64(len(e.ring))] = a
	e.total++
	e.subMu.Lock()
	for _, ch := range e.subs {
		select {
		case ch <- a:
		default:
			// A slow subscriber loses alerts rather than stalling the
			// tick; the drop is counted and the subscriber can re-sync
			// from GET /v1/alerts by ID.
			e.dropped.Add(uintptr(unsafe.Pointer(e)), 1)
		}
	}
	e.subMu.Unlock()
}

// Alerts returns up to limit recent alerts, newest first (limit <= 0
// means everything the ring holds).
func (e *Engine) Alerts(limit int) []Alert {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := e.total
	if n > int64(len(e.ring)) {
		n = int64(len(e.ring))
	}
	if limit > 0 && int64(limit) < n {
		n = int64(limit)
	}
	out := make([]Alert, n)
	for i := int64(0); i < n; i++ {
		out[i] = e.ring[(e.total-1-i)%int64(len(e.ring))]
	}
	return out
}

// Subscribe registers a live alert feed with the given channel buffer
// (the SSE handler's backlog tolerance) and returns the channel plus a
// cancel func that unregisters and closes it. Alerts emitted while the
// buffer is full are dropped from this feed (counted in Stats), never
// from the ring.
func (e *Engine) Subscribe(buf int) (<-chan Alert, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Alert, buf)
	e.subMu.Lock()
	e.subSeq++
	id := e.subSeq
	e.subs[id] = ch
	e.subMu.Unlock()
	return ch, func() {
		e.subMu.Lock()
		if _, ok := e.subs[id]; ok {
			delete(e.subs, id)
			close(ch)
		}
		e.subMu.Unlock()
	}
}

// Snapshot captures the engine's restartable state for the checkpoint
// manifest. Rules are sorted by ID, firing keys by key, alerts oldest
// first — deterministic bytes for a given state.
func (e *Engine) Snapshot() State {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := State{NextAlertID: e.nextID}
	for _, r := range e.rules {
		rs := RuleState{Spec: r.spec}
		for key, ks := range r.keys {
			if !ks.firing && ks.lastFired == 0 {
				continue
			}
			rs.Firing = append(rs.Firing, KeyFiring{
				Key: key, Firing: ks.firing, LastFiredUnixNano: ks.lastFired,
			})
		}
		sort.Slice(rs.Firing, func(i, j int) bool { return rs.Firing[i].Key < rs.Firing[j].Key })
		st.Rules = append(st.Rules, rs)
	}
	sort.Slice(st.Rules, func(i, j int) bool { return st.Rules[i].Spec.ID < st.Rules[j].Spec.ID })
	n := e.total
	if n > int64(len(e.ring)) {
		n = int64(len(e.ring))
	}
	for i := n; i > 0; i-- {
		st.Alerts = append(st.Alerts, e.ring[(e.total-i)%int64(len(e.ring))])
	}
	return st
}

// Restore loads a Snapshot into a fresh engine: rule specs recompile
// (against the current store spec — a spec change that invalidates a
// rule fails the restore rather than silently dropping it), firing
// state reattaches, and the alert ring and ID cursor resume. Call
// before concurrent use.
func (e *Engine) Restore(st State) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range st.Rules {
		r, err := compile(rs.Spec, e.store.Spec())
		if err != nil {
			return fmt.Errorf("rules: restoring rule %q: %w", rs.Spec.ID, err)
		}
		for _, kf := range rs.Firing {
			r.keys[kf.Key] = &keyState{firing: kf.Firing, lastFired: kf.LastFiredUnixNano}
		}
		e.installLocked(r)
	}
	for _, a := range st.Alerts {
		e.ring[e.total%int64(len(e.ring))] = a
		e.total++
	}
	if st.NextAlertID > e.nextID {
		e.nextID = st.NextAlertID
	}
	return nil
}

// Stats is the /v1/stats "rules" block.
type Stats struct {
	Rules          int   `json:"rules"`
	Firing         int   `json:"firing"`
	Ticks          int64 `json:"evaluations"`
	LastTickMicros int64 `json:"last_tick_micros"`
	LastTickKeys   int64 `json:"last_tick_keys"`
	AlertsFired    int64 `json:"alerts_fired"`
	AlertsResolved int64 `json:"alerts_resolved"`
	HotPathEvals   int64 `json:"hot_path_evals"`
	StreamDropped  int64 `json:"stream_dropped,omitempty"`
}

// Stats returns current counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	firing := 0
	nRules := len(e.rules)
	for _, r := range e.rules {
		for _, ks := range r.keys {
			if ks.firing {
				firing++
			}
		}
	}
	e.mu.RUnlock()
	return Stats{
		Rules:          nRules,
		Firing:         firing,
		Ticks:          e.ticks.Load(),
		LastTickMicros: e.lastTickNs.Load() / int64(time.Microsecond),
		LastTickKeys:   e.lastKeys.Load(),
		AlertsFired:    e.fired.Load(),
		AlertsResolved: e.resolved.Load(),
		HotPathEvals:   e.hotEvals.Load(),
		StreamDropped:  e.dropped.Load(),
	}
}
