package rules

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	sbitmap "repro"
)

func newStore(t *testing.T, spec string) *sbitmap.Store[string] {
	t.Helper()
	s, err := sbitmap.NewStore[string](sbitmap.MustSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// addDistinct feeds key n distinct items tagged by salt, so repeated
// calls with different salts keep adding new distinct items.
func addDistinct(s *sbitmap.Store[string], key string, n int, salt string) {
	for i := 0; i < n; i++ {
		s.AddString(key, fmt.Sprintf("%s-item-%d", salt, i))
	}
}

func f64(v float64) *float64 { return &v }

func TestSpecValidation(t *testing.T) {
	plain := sbitmap.MustSpec("exact")
	windowed := sbitmap.MustSpec("exact/windowed(width=1m,ring=5)")
	cases := []struct {
		name  string
		spec  Spec
		store sbitmap.Spec
		field string // expected BadRuleError field; "" = valid
	}{
		{"threshold ok", Spec{ID: "r", Type: TypeThreshold, Key: "k", Threshold: 10}, plain, ""},
		{"prefix ok", Spec{ID: "r", Type: TypePrefix, Prefix: "10.", Threshold: 10}, plain, ""},
		{"prefix all keys ok", Spec{ID: "r", Type: TypePrefix, Threshold: 10}, plain, ""},
		{"movers ok", Spec{ID: "r", Type: TypeMovers, K: 5, MinDelta: 2}, plain, ""},
		{"windowed threshold ok", Spec{ID: "r", Type: TypeThreshold, Key: "k", Threshold: 10, Window: "3m"}, windowed, ""},
		{"missing id", Spec{Type: TypeThreshold, Key: "k", Threshold: 10}, plain, "id"},
		{"missing type", Spec{ID: "r", Key: "k", Threshold: 10}, plain, "type"},
		{"bad type", Spec{ID: "r", Type: "sometimes", Threshold: 10}, plain, "type"},
		{"threshold missing key", Spec{ID: "r", Type: TypeThreshold, Threshold: 10}, plain, "key"},
		{"threshold with prefix", Spec{ID: "r", Type: TypeThreshold, Key: "k", Prefix: "p", Threshold: 10}, plain, "prefix"},
		{"threshold not positive", Spec{ID: "r", Type: TypeThreshold, Key: "k"}, plain, "threshold"},
		{"threshold with k", Spec{ID: "r", Type: TypeThreshold, Key: "k", Threshold: 10, K: 3}, plain, "k"},
		{"prefix with key", Spec{ID: "r", Type: TypePrefix, Key: "k", Threshold: 10}, plain, "key"},
		{"movers without k", Spec{ID: "r", Type: TypeMovers}, plain, "k"},
		{"movers with threshold", Spec{ID: "r", Type: TypeMovers, K: 3, Threshold: 5}, plain, "threshold"},
		{"movers negative min_delta", Spec{ID: "r", Type: TypeMovers, K: 3, MinDelta: -1}, plain, "min_delta"},
		{"hysteresis out of range", Spec{ID: "r", Type: TypeThreshold, Key: "k", Threshold: 10, Hysteresis: f64(1)}, plain, "hysteresis"},
		{"negative hysteresis", Spec{ID: "r", Type: TypeThreshold, Key: "k", Threshold: 10, Hysteresis: f64(-0.1)}, plain, "hysteresis"},
		{"bad cooldown", Spec{ID: "r", Type: TypeThreshold, Key: "k", Threshold: 10, Cooldown: "soon"}, plain, "cooldown"},
		{"bad window", Spec{ID: "r", Type: TypeThreshold, Key: "k", Threshold: 10, Window: "-1m"}, windowed, "window"},
		{"window beyond retention", Spec{ID: "r", Type: TypeThreshold, Key: "k", Threshold: 10, Window: "6m"}, windowed, "window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := compile(tc.spec, tc.store)
			if tc.field == "" {
				if err != nil {
					t.Fatalf("valid spec rejected: %v", err)
				}
				return
			}
			var bad *BadRuleError
			if !errors.As(err, &bad) {
				t.Fatalf("got %v, want *BadRuleError", err)
			}
			if bad.Field != tc.field {
				t.Fatalf("rejected on field %q (%s), want %q", bad.Field, bad.Reason, tc.field)
			}
		})
	}
}

// TestWindowRuleOnUnwindowedStore: the typed error the server maps to
// window_not_configured, distinct from plain bad_rule.
func TestWindowRuleOnUnwindowedStore(t *testing.T) {
	e := New(newStore(t, "exact"), Config{})
	_, err := e.Put(Spec{ID: "w", Type: TypeThreshold, Key: "k", Threshold: 10, Window: "1m"})
	if !errors.Is(err, sbitmap.ErrNotWindowed) {
		t.Fatalf("got %v, want ErrNotWindowed", err)
	}
	var bad *BadRuleError
	if errors.As(err, &bad) {
		t.Fatal("window-on-unwindowed must not be a generic BadRuleError")
	}
}

func TestThresholdFireAndResolve(t *testing.T) {
	st := newStore(t, "exact")
	e := New(st, Config{})
	if _, err := e.Put(Spec{ID: "t", Type: TypeThreshold, Key: "alice", Threshold: 100}); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)

	// Below threshold: nothing.
	addDistinct(st, "alice", 50, "a")
	if r := e.Tick(now); r.Fired != 0 {
		t.Fatalf("fired %d below threshold", r.Fired)
	}
	// Crossing fires exactly once; staying above does not re-fire.
	addDistinct(st, "alice", 100, "b")
	if r := e.Tick(now.Add(time.Second)); r.Fired != 1 {
		t.Fatalf("crossing fired %d alerts, want 1", r.Fired)
	}
	if r := e.Tick(now.Add(2 * time.Second)); r.Fired != 0 {
		t.Fatalf("steady state fired %d", r.Fired)
	}
	alerts := e.Alerts(0)
	if len(alerts) != 1 || alerts[0].State != StateFiring || alerts[0].Rule != "t" || alerts[0].Key != "alice" {
		t.Fatalf("unexpected alerts: %+v", alerts)
	}
	if alerts[0].Estimate != 150 || alerts[0].Threshold != 100 {
		t.Fatalf("alert payload: %+v", alerts[0])
	}
	// The key vanishing reads as estimate 0 and resolves.
	st.Remove("alice")
	if r := e.Tick(now.Add(3 * time.Second)); r.Resolved != 1 {
		t.Fatalf("removal resolved %d, want 1", r.Resolved)
	}
	if got := e.Alerts(0); got[0].State != StateResolved {
		t.Fatalf("newest alert %+v, want resolved", got[0])
	}
}

// TestHysteresisPreventsFlapping drives a windowed (tumbling) estimate
// that oscillates ±1 around T=100: 101, 99, 101, 99... With the default
// 10% hysteresis band the rule fires once and never resolves (99 is
// inside the band); with hysteresis 0 the same trace flaps a
// fire/resolve pair per oscillation.
func TestHysteresisPreventsFlapping(t *testing.T) {
	run := func(t *testing.T, hysteresis *float64) (fired, resolved int) {
		st := newStore(t, "exact/windowed(width=1m,ring=5)")
		e := New(st, Config{})
		spec := Spec{ID: "h", Type: TypeThreshold, Key: "k", Threshold: 100,
			Window: "1m", Hysteresis: hysteresis}
		if _, err := e.Put(spec); err != nil {
			t.Fatal(err)
		}
		// Tumbling semantics: the queryable value is the last COMPLETE
		// sub-window, so ingesting window w makes window w-1 readable.
		counts := []int{101, 99, 101, 99, 101, 99, 101}
		for w, n := range counts {
			ts := time.Unix(0, int64(100+w)*int64(time.Minute)+int64(30*time.Second))
			for i := 0; i < n; i++ {
				st.AddStringAt(ts, "k", fmt.Sprintf("w%d-item-%d", w, i))
			}
			r := e.Tick(time.Unix(int64(2000+w), 0))
			fired += r.Fired
			resolved += r.Resolved
		}
		return fired, resolved
	}
	t.Run("default band", func(t *testing.T) {
		fired, resolved := run(t, nil)
		if fired != 1 || resolved != 0 {
			t.Fatalf("default hysteresis: %d fired / %d resolved, want 1/0", fired, resolved)
		}
	})
	t.Run("no band flaps", func(t *testing.T) {
		fired, resolved := run(t, f64(0))
		if fired < 2 || resolved < 1 {
			t.Fatalf("zero hysteresis: %d fired / %d resolved, want a flapping pair", fired, resolved)
		}
	})
}

func TestPrefixSuperspreaderDetection(t *testing.T) {
	st := newStore(t, "exact")
	e := New(st, Config{})
	// Populate BEFORE the rule exists: installation must force a full
	// scan, not just the stripes dirtied after it (rule added
	// mid-ingest sees pre-existing keys).
	addDistinct(st, "10.0.0.1", 250, "a")    // matches, above T
	addDistinct(st, "10.0.0.2", 30, "b")     // matches, below T
	addDistinct(st, "192.168.0.9", 999, "c") // above T but wrong prefix
	if _, err := e.Put(Spec{ID: "scan", Type: TypePrefix, Prefix: "10.", Threshold: 100}); err != nil {
		t.Fatal(err)
	}
	r := e.Tick(time.Unix(3000, 0))
	if r.Fired != 1 {
		t.Fatalf("fired %d, want 1 (only 10.0.0.1)", r.Fired)
	}
	if a := e.Alerts(1); a[0].Key != "10.0.0.1" {
		t.Fatalf("fired on %q", a[0].Key)
	}
	if r.Scanned != st.Len() {
		t.Fatalf("install did not force a full scan: scanned %d of %d", r.Scanned, st.Len())
	}

	// Quiescent tick scans nothing and changes nothing.
	r = e.Tick(time.Unix(3001, 0))
	if r.Scanned != 0 || r.Fired != 0 {
		t.Fatalf("quiescent tick: %+v", r)
	}

	// A second key crossing is caught incrementally.
	addDistinct(st, "10.0.0.2", 200, "d")
	r = e.Tick(time.Unix(3002, 0))
	if r.Fired != 1 || r.Scanned >= st.Len() {
		t.Fatalf("incremental detection: %+v (store %d keys)", r, st.Len())
	}
	if a := e.Alerts(1); a[0].Key != "10.0.0.2" {
		t.Fatalf("fired on %q", a[0].Key)
	}
}

func TestMoversBaselineAndDetection(t *testing.T) {
	st := newStore(t, "exact")
	e := New(st, Config{})
	addDistinct(st, "quiet", 500, "a")
	addDistinct(st, "jumper", 100, "b")
	if _, err := e.Put(Spec{ID: "m", Type: TypeMovers, K: 2, MinDelta: 50}); err != nil {
		t.Fatal(err)
	}
	// First tick only baselines: pre-existing bulk must not read as
	// movement.
	if r := e.Tick(time.Unix(4000, 0)); r.Fired != 0 {
		t.Fatalf("baseline tick fired %d", r.Fired)
	}
	// jumper +200, quiet +10 (< min_delta), brandnew appears with 300.
	addDistinct(st, "jumper", 200, "c")
	addDistinct(st, "quiet", 10, "d")
	addDistinct(st, "brandnew", 300, "e")
	r := e.Tick(time.Unix(4010, 0))
	if r.Fired != 2 {
		t.Fatalf("fired %d, want 2 (jumper, brandnew)", r.Fired)
	}
	got := map[string]float64{}
	for _, a := range e.Alerts(0) {
		got[a.Key] = a.Delta
	}
	if got["jumper"] != 200 || got["brandnew"] != 300 {
		t.Fatalf("mover deltas: %v", got)
	}
	// No further movement: silence.
	if r := e.Tick(time.Unix(4020, 0)); r.Fired != 0 {
		t.Fatalf("still-water tick fired %d", r.Fired)
	}
}

func TestCooldownSuppressesRefire(t *testing.T) {
	st := newStore(t, "exact/windowed(width=1m,ring=5)")
	e := New(st, Config{})
	spec := Spec{ID: "c", Type: TypeThreshold, Key: "k", Threshold: 100,
		Window: "1m", Hysteresis: f64(0), Cooldown: "1h"}
	if _, err := e.Put(spec); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(10000, 0)
	// Window counts 150, 10, 150, 10: fire, resolve, then the re-cross
	// lands inside the 1h cooldown and is suppressed.
	counts := []int{150, 10, 150, 10}
	fired := 0
	for w, n := range counts {
		ts := time.Unix(0, int64(200+w)*int64(time.Minute)+int64(30*time.Second))
		for i := 0; i < n; i++ {
			st.AddStringAt(ts, "k", fmt.Sprintf("w%d-item-%d", w, i))
		}
		fired += e.Tick(base.Add(time.Duration(w) * time.Second)).Fired
	}
	if fired != 1 {
		t.Fatalf("fired %d inside cooldown, want 1", fired)
	}
	// The same re-cross an hour later fires.
	ts := time.Unix(0, 204*int64(time.Minute)+int64(30*time.Second))
	for i := 0; i < 150; i++ {
		st.AddStringAt(ts, "k", fmt.Sprintf("w4-item-%d", i))
	}
	ts = time.Unix(0, 205*int64(time.Minute))
	st.AddStringAt(ts, "k", "w5-item-0")
	if r := e.Tick(base.Add(2 * time.Hour)); r.Fired != 1 {
		t.Fatalf("post-cooldown re-cross fired %d, want 1", r.Fired)
	}
}

// TestAlertRingOverflow: the ring keeps the newest alerts, Alerts()
// returns newest-first, and IDs stay monotone across the wrap.
func TestAlertRingOverflow(t *testing.T) {
	st := newStore(t, "exact")
	e := New(st, Config{RingSize: 4})
	if _, err := e.Put(Spec{ID: "o", Type: TypePrefix, Threshold: 10, Hysteresis: f64(0)}); err != nil {
		t.Fatal(err)
	}
	// 10 keys cross: 10 firing alerts through a 4-slot ring.
	for i := 0; i < 10; i++ {
		addDistinct(st, fmt.Sprintf("key-%d", i), 20, "x")
		e.Tick(time.Unix(int64(5000+i), 0))
	}
	alerts := e.Alerts(0)
	if len(alerts) != 4 {
		t.Fatalf("ring holds %d alerts, want 4", len(alerts))
	}
	for i := 1; i < len(alerts); i++ {
		if alerts[i-1].ID <= alerts[i].ID {
			t.Fatalf("not newest-first: %+v", alerts)
		}
	}
	if alerts[0].Key != "key-9" {
		t.Fatalf("newest alert is %q, want key-9", alerts[0].Key)
	}
	if got := e.Alerts(2); len(got) != 2 || got[0].ID != alerts[0].ID {
		t.Fatalf("limited read: %+v", got)
	}
}

func TestSubscribe(t *testing.T) {
	st := newStore(t, "exact")
	e := New(st, Config{})
	ch, cancel := e.Subscribe(8)
	defer cancel()
	if _, err := e.Put(Spec{ID: "s", Type: TypeThreshold, Key: "k", Threshold: 10}); err != nil {
		t.Fatal(err)
	}
	addDistinct(st, "k", 50, "a")
	e.Tick(time.Unix(6000, 0))
	select {
	case a := <-ch:
		if a.Key != "k" || a.State != StateFiring {
			t.Fatalf("streamed alert %+v", a)
		}
	default:
		t.Fatal("no alert on the subscription channel")
	}
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	cancel() // second cancel is a no-op, not a double close
}

// TestObserveIngestHotPath: a single-key threshold rule fires inside the
// ingest observation, no tick needed; unmatched keys cost nothing.
func TestObserveIngestHotPath(t *testing.T) {
	st := newStore(t, "exact")
	e := New(st, Config{})
	if _, err := e.Put(Spec{ID: "hot", Type: TypeThreshold, Key: "spike", Threshold: 100}); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(7000, 0)
	addDistinct(st, "spike", 50, "a")
	e.ObserveIngest([]string{"spike", "other"}, now, 0xbeef)
	if got := e.Alerts(0); len(got) != 0 {
		t.Fatalf("fired below threshold: %+v", got)
	}
	addDistinct(st, "spike", 100, "b")
	e.ObserveIngest([]string{"spike"}, now, 0xbeef)
	got := e.Alerts(0)
	if len(got) != 1 || got[0].State != StateFiring || got[0].Key != "spike" {
		t.Fatalf("hot path alerts: %+v", got)
	}
	if e.Stats().HotPathEvals == 0 {
		t.Fatal("hot path evals not counted")
	}
	// Already firing: the next observation is a no-op.
	e.ObserveIngest([]string{"spike"}, now.Add(time.Second), 0xbeef)
	if got := e.Alerts(0); len(got) != 1 {
		t.Fatalf("re-fired while firing: %+v", got)
	}
}

// TestSnapshotRestore: rules, firing state, alert history, and the ID
// cursor all survive; a restored still-above-threshold key does NOT
// re-fire on the first post-restore tick.
func TestSnapshotRestore(t *testing.T) {
	st := newStore(t, "exact")
	e := New(st, Config{})
	if _, err := e.Put(Spec{ID: "a", Type: TypeThreshold, Key: "k", Threshold: 100, Cooldown: "30s"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Put(Spec{ID: "b", Type: TypePrefix, Prefix: "10.", Threshold: 50}); err != nil {
		t.Fatal(err)
	}
	addDistinct(st, "k", 200, "x")
	addDistinct(st, "10.9.9.9", 80, "y")
	e.Tick(time.Unix(8000, 0))
	before := e.Alerts(0)
	if len(before) != 2 {
		t.Fatalf("setup fired %d alerts, want 2", len(before))
	}

	snap := e.Snapshot()
	e2 := New(st, Config{})
	if err := e2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := e2.List(); len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("restored rules: %+v", got)
	}
	after := e2.Alerts(0)
	if len(after) != len(before) {
		t.Fatalf("restored %d alerts, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("alert %d changed across restore: %+v vs %+v", i, after[i], before[i])
		}
	}
	// Keys are still above threshold; the restored firing state must
	// suppress duplicate firings.
	if r := e2.Tick(time.Unix(8060, 0)); r.Fired != 0 {
		t.Fatalf("restored engine re-fired %d alerts", r.Fired)
	}
	// New alerts continue the ID sequence.
	addDistinct(st, "10.1.1.1", 80, "z")
	e2.Tick(time.Unix(8120, 0))
	newest := e2.Alerts(1)[0]
	if newest.ID <= before[0].ID {
		t.Fatalf("restored ID cursor went backwards: %d after %d", newest.ID, before[0].ID)
	}

	// A snapshot whose rule no longer compiles fails the restore.
	snap.Rules[0].Spec.Window = "1m" // store is not windowed
	if err := New(st, Config{}).Restore(snap); err == nil {
		t.Fatal("invalid restored rule accepted")
	}
}

// TestRuleAddedMidIngest: installing, evaluating, and deleting rules
// while ingest hammers the store must be race-free and still detect the
// crossing key (run under -race in CI).
func TestRuleAddedMidIngest(t *testing.T) {
	st := newStore(t, "exact")
	e := New(st, Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("bg-%d", i%64)
			st.AddString(key, fmt.Sprintf("item-%d", i))
			e.ObserveIngest([]string{key}, time.Unix(9000, int64(i)), 0xbeef)
		}
	}()

	addDistinct(st, "target", 500, "t")
	if _, err := e.Put(Spec{ID: "mid", Type: TypePrefix, Prefix: "targ", Threshold: 100}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	detected := false
	for i := 0; time.Now().Before(deadline); i++ {
		if e.Tick(time.Unix(int64(9100+i), 0)).Fired > 0 {
			detected = true
			break
		}
	}
	close(stop)
	wg.Wait()
	if !detected {
		t.Fatal("rule added mid-ingest never detected the pre-existing key")
	}
	if err := e.Delete("mid"); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("mid"); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStats(t *testing.T) {
	st := newStore(t, "exact")
	e := New(st, Config{})
	if _, err := e.Put(Spec{ID: "s1", Type: TypeThreshold, Key: "k", Threshold: 10}); err != nil {
		t.Fatal(err)
	}
	addDistinct(st, "k", 50, "a")
	e.Tick(time.Unix(11000, 0))
	s := e.Stats()
	if s.Rules != 1 || s.Firing != 1 || s.Ticks != 1 || s.AlertsFired != 1 {
		t.Fatalf("stats: %+v", s)
	}
	st.Remove("k")
	e.Tick(time.Unix(11001, 0))
	s = e.Stats()
	if s.Firing != 0 || s.AlertsResolved != 1 {
		t.Fatalf("post-resolve stats: %+v", s)
	}
}
