package loglog

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestAlphaConvergesToAsymptote(t *testing.T) {
	// Durand & Flajolet: α_m → 0.39701 as m → ∞.
	if a := Alpha(1 << 16); math.Abs(a-0.39701) > 0.0005 {
		t.Errorf("Alpha(65536) = %.5f, want ≈ 0.39701", a)
	}
	// α_m must be positive and increasing toward the limit for large m.
	prev := 0.0
	for _, k := range []int{16, 64, 256, 1024} {
		a := Alpha(k)
		if a <= 0 || a > 1 {
			t.Fatalf("Alpha(%d) = %g out of range", k, a)
		}
		_ = prev
		prev = a
	}
}

func TestAccuracyMatchesTheory(t *testing.T) {
	// RRMSE should be ≈ 1.30/√m for cardinalities ≫ m.
	const kBits, n, reps = 8, 100000, 150 // m = 256
	var sum stats.ErrorSummary
	for rep := 0; rep < reps; rep++ {
		s := New(kBits, uint64(rep)+3)
		base := uint64(rep) << 36
		for i := 0; i < n; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), n)
	}
	theory := 1.30 / math.Sqrt(1<<kBits)
	if got := sum.RRMSE(); got > 1.4*theory || got < theory/2 {
		t.Errorf("RRMSE = %.4f, theory %.4f", got, theory)
	}
	if bias := sum.Bias(); math.Abs(bias) > 0.04 {
		t.Errorf("bias = %.4f, want ≈ 0", bias)
	}
	s := New(kBits, 1)
	if math.Abs(s.StdErrTheory()-theory) > 1e-12 {
		t.Errorf("StdErrTheory = %g, want %g", s.StdErrTheory(), theory)
	}
}

func TestSmallCardinalityWeakness(t *testing.T) {
	// LogLog's documented weakness (why HLL has the small-range
	// correction and why Fig 4's LLog curve starts high): with n ≪ m the
	// estimate is strongly biased. Assert the bias really is large so the
	// Figure 4 reproduction's shape is explained by the implementation.
	const kBits = 10 // m = 1024
	var sum stats.ErrorSummary
	for rep := 0; rep < 100; rep++ {
		s := New(kBits, uint64(rep)+17)
		base := uint64(rep) << 36
		for i := 0; i < 30; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), 30)
	}
	if bias := sum.Bias(); bias < 0.5 {
		t.Errorf("small-n bias = %.3f; expected the classic large positive bias", bias)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	s := New(6, 2)
	s.AddUint64(12345)
	before := s.Estimate()
	for i := 0; i < 500; i++ {
		if s.AddUint64(12345) {
			t.Fatal("duplicate grew a register")
		}
	}
	if s.Estimate() != before {
		t.Error("duplicates changed the estimate")
	}
}

func TestMergeEqualsUnionStream(t *testing.T) {
	a, b, all := New(7, 9), New(7, 9), New(7, 9)
	r := xrand.New(8)
	for i := 0; i < 20000; i++ {
		x := r.Uint64()
		if i%2 == 0 {
			a.AddUint64(x)
		} else {
			b.AddUint64(x)
		}
		all.AddUint64(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != all.Estimate() {
		t.Errorf("merged %g != union %g", a.Estimate(), all.Estimate())
	}
	if err := a.Merge(New(6, 9)); err == nil {
		t.Error("merge of mismatched m did not error")
	}
}

func TestKBitsForBudget(t *testing.T) {
	cases := []struct {
		mbits int
		want  uint
	}{
		{40000, 12}, // 2^12·5 = 20480 ≤ 40000 < 2^13·5
		{3200, 9},   // 2^9·5 = 2560 ≤ 3200 < 2^10·5 = 5120
		{800, 7},    // 2^7·5 = 640 ≤ 800 < 1280
		{1, 2},      // floor
	}
	for _, c := range cases {
		if got := KBitsForBudget(c.mbits); got != c.want {
			t.Errorf("KBitsForBudget(%d) = %d, want %d", c.mbits, got, c.want)
		}
	}
}

func TestSizeResetPanics(t *testing.T) {
	s := New(8, 1)
	if s.M() != 256 || s.SizeBits() != 256*RegisterBits {
		t.Errorf("M=%d SizeBits=%d", s.M(), s.SizeBits())
	}
	for i := uint64(0); i < 1000; i++ {
		s.AddUint64(i)
	}
	s.Reset()
	empty := New(8, 1)
	if s.Estimate() != empty.Estimate() {
		t.Error("reset did not restore empty state")
	}
	for _, k := range []uint{1, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("kBits=%d: expected panic", k)
				}
			}()
			New(k, 1)
		}()
	}
}

func BenchmarkAddUint64(b *testing.B) {
	s := New(12, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}
