// Package loglog implements LogLog counting (Durand & Flajolet 2003), one
// of the two "loglog-counting" baselines the S-bitmap paper compares
// against in Section 6.
//
// Each of m = 2^k registers stores the maximum geometric value observed in
// its substream — the position (1-based) of the first 1 bit of the hashed
// suffix — which needs only ⌈log₂ log₂ N⌉ ≈ 5 bits. The estimate is the
// bias-corrected geometric mean
//
//	n̂ = α_m · m · 2^(ΣM_j / m),
//
// with α_m = (Γ(−1/m)·(1−2^{1/m})/ln 2)^{−m} (Durand & Flajolet, Theorem
// 1), which converges to ≈ 0.39701 as m grows.
package loglog

import (
	"fmt"
	"math"
	"math/bits"
	"unsafe"

	"repro/internal/uhash"
)

// RegisterBits is the register width used for memory accounting. Five bits
// hold max-ranks up to 31, i.e. cardinalities toward 2^31 per substream —
// matching the α = 5 accounting the paper applies for N < 2^32.
const RegisterBits = 5

// maxRank is the largest storable rank with 5-bit registers.
const maxRank = 1<<RegisterBits - 1

// Sketch is a LogLog counter. Not safe for concurrent use.
type Sketch struct {
	reg   []uint8
	kBits uint // m = 2^kBits
	alpha float64
	h     uhash.Hasher
	scr   uhash.Scratch // reusable batch hash buffers (not serialized)
}

// New returns a LogLog sketch with m = 2^kBits registers, hashing with the
// default Mixer seeded by seed. It panics if kBits is outside [2, 24].
func New(kBits uint, seed uint64) *Sketch {
	return NewWithHasher(kBits, uhash.NewMixer(seed))
}

// NewWithHasher returns a LogLog sketch with an explicit hash function.
func NewWithHasher(kBits uint, h uhash.Hasher) *Sketch {
	if kBits < 2 || kBits > 24 {
		panic(fmt.Sprintf("loglog: kBits = %d outside [2, 24]", kBits))
	}
	m := 1 << kBits
	return &Sketch{reg: make([]uint8, m), kBits: kBits, alpha: Alpha(m), h: h}
}

// KBitsForBudget returns the largest register-count exponent k such that
// 2^k 5-bit registers fit in mbits bits — the accounting used when all
// algorithms share one memory budget (Section 6.2).
func KBitsForBudget(mbits int) uint {
	k := uint(2)
	for (1<<(k+1))*RegisterBits <= mbits && k+1 <= 24 {
		k++
	}
	return k
}

// Alpha returns the exact bias-correction constant α_m from Durand &
// Flajolet: (Γ(−1/m)·(1−2^{1/m})/ln 2)^{−m}.
func Alpha(m int) float64 {
	fm := float64(m)
	g := math.Gamma(-1 / fm)
	base := g * (1 - math.Pow(2, 1/fm)) / math.Ln2
	return math.Pow(base, -fm)
}

// Add offers an item to the sketch; it reports whether a register grew.
func (s *Sketch) Add(item []byte) bool {
	hi, lo := s.h.Sum128(item)
	return s.insert(hi, lo)
}

// AddUint64 offers a 64-bit item.
func (s *Sketch) AddUint64(item uint64) bool {
	hi, lo := s.h.Sum128Uint64(item)
	return s.insert(hi, lo)
}

// AddString offers a string item; it hashes identically to Add of the
// string's bytes but avoids the []byte conversion.
func (s *Sketch) AddString(item string) bool {
	hi, lo := s.h.Sum128String(item)
	return s.insert(hi, lo)
}

func (s *Sketch) insert(bucketWord, geoWord uint64) bool {
	j := bucketWord >> (64 - s.kBits)
	// rank = 1 + number of leading zeros of the remaining bits: the
	// 1-based position of the leftmost 1, P(rank = k) = 2^-k.
	rank := bits.LeadingZeros64(geoWord) + 1
	if rank > maxRank {
		rank = maxRank
	}
	if uint8(rank) <= s.reg[j] {
		return false
	}
	s.reg[j] = uint8(rank)
	return true
}

// AddBatch64 offers a slice of 64-bit items and returns how many grew a
// register; state-equivalent to AddUint64 on each item in order, with
// chunked hashing and the register array in a local.
func (s *Sketch) AddBatch64(items []uint64) int {
	return uhash.Batch64(s.h, &s.scr, items, s.insertBatch)
}

// AddBatchString is AddBatch64 for string items.
func (s *Sketch) AddBatchString(items []string) int {
	return uhash.BatchString(s.h, &s.scr, items, s.insertBatch)
}

// insertBatch replays insert over a chunk of hashed items; the bucket
// index is a kBits-bit prefix, in range of the register array by
// construction.
func (s *Sketch) insertBatch(hi, lo []uint64) int {
	lo = lo[:len(hi)] // one bounds proof for the whole chunk
	reg := s.reg
	shift := 64 - s.kBits
	changed := 0
	for i, h := range hi {
		j := h >> shift
		rank := bits.LeadingZeros64(lo[i]) + 1
		if rank > maxRank {
			rank = maxRank
		}
		if uint8(rank) > reg[j] {
			reg[j] = uint8(rank)
			changed++
		}
	}
	return changed
}

// M returns the number of registers.
func (s *Sketch) M() int { return len(s.reg) }

// Estimate returns n̂ = α_m · m · 2^(mean rank).
func (s *Sketch) Estimate() float64 {
	m := len(s.reg)
	sum := 0
	for _, r := range s.reg {
		sum += int(r)
	}
	return s.alpha * float64(m) * math.Pow(2, float64(sum)/float64(m))
}

// StdErrTheory returns the asymptotic relative standard error 1.30/√m
// (Durand & Flajolet, Theorem 2).
func (s *Sketch) StdErrTheory() float64 { return 1.30 / math.Sqrt(float64(len(s.reg))) }

// Merge takes the register-wise maximum with another sketch; the result
// summarizes the union of the two streams. Register counts must match.
func (s *Sketch) Merge(o *Sketch) error {
	if len(s.reg) != len(o.reg) {
		return fmt.Errorf("loglog: merge of m=%d with m=%d", len(s.reg), len(o.reg))
	}
	for j := range s.reg {
		if o.reg[j] > s.reg[j] {
			s.reg[j] = o.reg[j]
		}
	}
	return nil
}

// SizeBits returns the summary memory footprint in bits (5 per register).
func (s *Sketch) SizeBits() int { return len(s.reg) * RegisterBits }

// Footprint returns the sketch's resident process memory in bytes: the
// struct, the register array at capacity, and the batch-hash scratch.
func (s *Sketch) Footprint() int {
	return int(unsafe.Sizeof(*s)) + cap(s.reg) + s.scr.Footprint()
}

// MarshalBinary serializes the register array (one byte per register,
// preceded by the register-count exponent). The hash function is not
// serialized; pass the original hasher to Unmarshal to continue counting.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 1+len(s.reg))
	buf = append(buf, byte(s.kBits))
	buf = append(buf, s.reg...)
	return buf, nil
}

// UnmarshalBinary reconstructs the sketch in place from MarshalBinary
// output. A nil hasher field is replaced by the default Mixer with seed 1.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("loglog: truncated serialization")
	}
	kBits := uint(data[0])
	if kBits < 2 || kBits > 24 {
		return fmt.Errorf("loglog: serialized kBits = %d outside [2, 24]", kBits)
	}
	m := 1 << kBits
	if len(data) != 1+m {
		return fmt.Errorf("loglog: register body %d bytes, want %d", len(data)-1, m)
	}
	for _, r := range data[1:] {
		if r > maxRank {
			return fmt.Errorf("loglog: serialized rank %d exceeds register width", r)
		}
	}
	s.reg = append([]uint8(nil), data[1:]...)
	s.kBits = kBits
	s.alpha = Alpha(m)
	if s.h == nil {
		s.h = uhash.NewMixer(1)
	}
	return nil
}

// Unmarshal reconstructs a sketch from MarshalBinary output, hashing with h
// (nil selects the default Mixer with seed 1).
func Unmarshal(data []byte, h uhash.Hasher) (*Sketch, error) {
	s := &Sketch{h: h}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset clears the sketch for reuse.
func (s *Sketch) Reset() {
	for j := range s.reg {
		s.reg[j] = 0
	}
}
