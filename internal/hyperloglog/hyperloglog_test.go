package hyperloglog

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestAccuracyMatchesTheory(t *testing.T) {
	// RRMSE ≈ 1.04/√m in the harmonic-mean regime.
	const kBits, n, reps = 8, 100000, 150 // m = 256
	var sum stats.ErrorSummary
	for rep := 0; rep < reps; rep++ {
		s := New(kBits, uint64(rep)+3)
		base := uint64(rep) << 36
		for i := 0; i < n; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), n)
	}
	theory := 1.04 / math.Sqrt(1<<kBits)
	if got := sum.RRMSE(); got > 1.4*theory || got < theory/2 {
		t.Errorf("RRMSE = %.4f, theory %.4f", got, theory)
	}
	if bias := sum.Bias(); math.Abs(bias) > 0.03 {
		t.Errorf("bias = %.4f, want ≈ 0", bias)
	}
}

func TestSmallRangeCorrection(t *testing.T) {
	// With n ≪ m the estimator must fall back to linear counting over
	// registers, giving near-exact answers — HLL's fix for LogLog's
	// small-n failure.
	const kBits = 10 // m = 1024
	var sum stats.ErrorSummary
	for rep := 0; rep < 100; rep++ {
		s := New(kBits, uint64(rep)+17)
		base := uint64(rep) << 36
		for i := 0; i < 50; i++ {
			s.AddUint64(base + uint64(i))
		}
		sum.AddEstimate(s.Estimate(), 50)
	}
	if got := sum.RRMSE(); got > 0.2 {
		t.Errorf("small-n RRMSE = %.4f; small-range correction broken?", got)
	}
}

func TestEstimateContinuityAcrossCorrection(t *testing.T) {
	// Walk n across the 2.5m correction boundary and verify no wild jump
	// in a single sketch's estimate sequence.
	s := New(8, 5) // m=256, boundary at 640
	prev := 0.0
	for i := uint64(0); i < 2000; i++ {
		s.AddUint64(i)
		est := s.Estimate()
		if i > 100 && est < prev*0.5 {
			t.Fatalf("estimate collapsed at n=%d: %g -> %g", i+1, prev, est)
		}
		prev = est
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	s := New(6, 2)
	s.AddUint64(999)
	before := s.Estimate()
	for i := 0; i < 500; i++ {
		if s.AddUint64(999) {
			t.Fatal("duplicate grew a register")
		}
	}
	if s.Estimate() != before {
		t.Error("duplicates changed the estimate")
	}
}

func TestMergeEqualsUnionStream(t *testing.T) {
	a, b, all := New(7, 9), New(7, 9), New(7, 9)
	r := xrand.New(8)
	for i := 0; i < 20000; i++ {
		x := r.Uint64()
		if i%3 == 0 {
			a.AddUint64(x)
		} else {
			b.AddUint64(x)
		}
		all.AddUint64(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != all.Estimate() {
		t.Errorf("merged %g != union %g", a.Estimate(), all.Estimate())
	}
	if err := a.Merge(New(6, 9)); err == nil {
		t.Error("merge of mismatched m did not error")
	}
}

func TestMemoryBitsForPaperTable2(t *testing.T) {
	// Table 2's HLLog column (unit: 100 bits): (1.04/ε)² registers of α
	// bits; e.g. N = 10³, ε = 1% gives 1.04²·10⁴·4 bits = 432.6.
	printed := []struct {
		n, eps, want float64
	}{
		{1e3, 0.01, 432.6}, {1e4, 0.01, 432.6}, {1e5, 0.01, 540.8},
		{1e6, 0.01, 540.8}, {1e7, 0.01, 540.8},
		{1e3, 0.03, 48.1}, {1e6, 0.03, 60.1},
		{1e3, 0.09, 5.3}, {1e6, 0.09, 6.7},
	}
	for _, c := range printed {
		bits, err := MemoryBitsFor(c.n, c.eps)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(bits) / 100
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("MemoryBitsFor(%g, %g) = %.1f hundred-bits, paper %.1f", c.n, c.eps, got, c.want)
		}
	}
}

func TestRegisterWidthSwitching(t *testing.T) {
	// α = 4 for 2^8 ≤ N < 2^16, α = 5 for 2^16 ≤ N < 2^32.
	if w := registerWidthFor(1000); w != 4 {
		t.Errorf("width(1000) = %d, want 4", w)
	}
	if w := registerWidthFor(1e5); w != 5 {
		t.Errorf("width(1e5) = %d, want 5", w)
	}
	if w := registerWidthFor(1e9); w != 5 {
		t.Errorf("width(1e9) = %d, want 5", w)
	}
	if w := registerWidthFor(100); w != 3 {
		t.Errorf("width(100) = %d, want 3 (clamp)", w)
	}
}

func TestMemoryBitsForErrors(t *testing.T) {
	if _, err := MemoryBitsFor(1e4, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := MemoryBitsFor(1e4, 1); err == nil {
		t.Error("eps=1 accepted")
	}
}

func TestAlphaConstants(t *testing.T) {
	// The original paper's tabulated constants for small m plus the
	// closed form for large m.
	cases := []struct {
		m    int
		want float64
	}{
		{16, 0.673}, {32, 0.697}, {64, 0.709},
		{128, 0.7213 / (1 + 1.079/128)},
		{4096, 0.7213 / (1 + 1.079/4096)},
	}
	for _, c := range cases {
		if got := alpha(c.m); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("alpha(%d) = %v, want %v", c.m, got, c.want)
		}
	}
	// Exercise the small-m constructors end to end.
	for _, k := range []uint{4, 5, 6} {
		s := New(k, 1)
		for i := uint64(0); i < 100000; i++ {
			s.AddUint64(i)
		}
		if rel := math.Abs(s.Estimate()/100000 - 1); rel > 5*s.StdErrTheory() {
			t.Errorf("kBits=%d: estimate %.0f for n=100000 (rel %.3f)", k, s.Estimate(), rel)
		}
	}
}

func TestKBitsForBudget(t *testing.T) {
	cases := []struct {
		mbits int
		want  uint
	}{
		{40000, 12}, {3200, 9}, {800, 7}, {1, 4},
	}
	for _, c := range cases {
		if got := KBitsForBudget(c.mbits); got != c.want {
			t.Errorf("KBitsForBudget(%d) = %d, want %d", c.mbits, got, c.want)
		}
	}
}

func TestSizeResetPanics(t *testing.T) {
	s := New(8, 1)
	if s.M() != 256 || s.SizeBits() != 256*RegisterBits {
		t.Errorf("M=%d SizeBits=%d", s.M(), s.SizeBits())
	}
	if math.Abs(s.StdErrTheory()-1.04/16) > 1e-12 {
		t.Errorf("StdErrTheory = %g", s.StdErrTheory())
	}
	for i := uint64(0); i < 1000; i++ {
		s.AddUint64(i)
	}
	s.Reset()
	if s.Estimate() != 0 {
		t.Errorf("estimate after reset = %g, want 0 (all registers empty → LC of m/m)", s.Estimate())
	}
	for _, k := range []uint{3, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("kBits=%d: expected panic", k)
				}
			}()
			New(k, 1)
		}()
	}
}

func BenchmarkAddUint64(b *testing.B) {
	s := New(12, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}
